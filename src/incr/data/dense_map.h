// DenseMap: a flat open-addressing hash map with a dense entry array and a
// SwissTable-style group-probing slot table.
//
// This is the workhorse container behind relations, views, and indexes. The
// IVM data-structure contract from paper §2 is exactly its design brief:
//   * lookup / insert / erase in amortized constant time,
//   * enumeration of entries with constant delay (dense array scan, no
//     skipping over empty buckets as in node- or bucket-based maps).
//
// Layout (three flat arrays; see DESIGN.md "Flat hash core"):
//
//   entries_  dense vector of {key, value} — insertion order, swap-remove
//             on erase, never a hole; enumeration is a linear scan.
//   hashes_   the full 64-bit hash of each dense entry, cached at insert so
//             rehashing and swap-remove slot patching never re-hash a key.
//   ctrl_     one control byte per slot: kEmpty, kDeleted, or the low 7
//             bits of the entry's hash (its H2 fragment). Probing tests 16
//             control bytes at a time with one SSE2/NEON compare (scalar
//             SWAR fallback), so a lookup usually touches one 16-byte
//             control line plus one key — not a chain of full entries.
//   slots_    the entry index per slot, consulted only on a control match.
//
// The table is a power of two >= 16 slots, organized as aligned 16-slot
// groups. Probing walks groups in a triangular sequence (g, g+1, g+3, ...),
// which visits every group exactly once when the group count is a power of
// two. A probe stops at the first group containing an empty slot — deleted
// slots (tombstones) keep probe chains alive until a rebuild purges them.
// The table is rebuilt when live + tombstone load exceeds 7/8 (growing only
// when live load alone exceeds 1/2).
//
// Determinism: the dense order of entries_ after any operation sequence
// depends only on that sequence (insert appends; erase swap-removes), never
// on the slot table's layout — snapshot serialization and the parallel
// batch path rely on this.
//
// References returned by Find/GetOrInsert are invalidated by any mutation.
#ifndef INCR_DATA_DENSE_MAP_H_
#define INCR_DATA_DENSE_MAP_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

#include "incr/util/check.h"

namespace incr {

namespace detail {

/// A 16-bit mask of matching slots within one 16-slot control group, plus
/// the one-shot probes that produce it. Bit i set <=> control byte i
/// matched. Iterate with NextBit.
struct GroupProbe {
  static constexpr size_t kWidth = 16;

  /// Slots whose control byte equals `h2` (a 7-bit hash fragment).
  static inline uint32_t MatchH2(const int8_t* ctrl, int8_t h2) {
#if defined(__SSE2__)
    const __m128i g =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
    return static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(g, _mm_set1_epi8(h2))));
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
    const uint8x16_t g = vld1q_u8(reinterpret_cast<const uint8_t*>(ctrl));
    const uint8x16_t eq = vceqq_u8(g, vdupq_n_u8(static_cast<uint8_t>(h2)));
    // Collapse each byte's MSB into a 16-bit mask (one bit per lane).
    const uint8x8_t bits = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
    const uint64_t packed = vget_lane_u64(vreinterpret_u64_u8(bits), 0);
    // Each original byte is now a nibble (0x0 or 0xF); keep one bit each.
    uint32_t mask = 0;
    for (int i = 0; i < 16; ++i) {
      mask |= static_cast<uint32_t>((packed >> (i * 4)) & 1) << i;
    }
    return mask;
#else
    return MatchByteSwar(ctrl, static_cast<uint8_t>(h2));
#endif
  }

  /// Slots whose control byte is kEmpty (0x80). Works because no full slot
  /// (0..127) and no deleted slot (0xFE) has that exact value.
  static inline uint32_t MatchEmpty(const int8_t* ctrl, int8_t empty) {
    return MatchH2(ctrl, empty);
  }

  /// Index of the lowest set bit; callers guarantee mask != 0.
  static inline unsigned NextBit(uint32_t mask) {
    return static_cast<unsigned>(__builtin_ctz(mask));
  }

 private:
  // Portable SWAR fallback: classic zero-byte detection over two 64-bit
  // halves of the group.
  static inline uint32_t MatchByteSwar(const int8_t* ctrl, uint8_t b) {
    const uint64_t pattern = 0x0101010101010101ULL * b;
    uint32_t mask = 0;
    for (int half = 0; half < 2; ++half) {
      uint64_t word;
      std::memcpy(&word, ctrl + half * 8, 8);
      const uint64_t x = word ^ pattern;
      const uint64_t zero =
          (x - 0x0101010101010101ULL) & ~x & 0x8080808080808080ULL;
      // One bit per matching byte.
      uint64_t bits = zero >> 7;
      for (int i = 0; i < 8; ++i) {
        mask |= static_cast<uint32_t>((bits >> (i * 8)) & 1)
                << (half * 8 + i);
      }
    }
    return mask;
  }
};

}  // namespace detail

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class DenseMap {
 public:
  struct Entry {
    K key;
    V value;
  };

  DenseMap() { InitTable(kMinCapacity); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Dense, constant-delay iteration over all entries.
  const Entry* begin() const { return entries_.data(); }
  const Entry* end() const { return entries_.data() + entries_.size(); }

  /// Entry at dense position `i` (0 <= i < size()). Positions are stable
  /// only between mutations.
  const Entry& at(size_t i) const {
    INCR_DCHECK(i < entries_.size());
    return entries_[i];
  }

  void clear() {
    entries_.clear();
    hashes_.clear();
    InitTable(kMinCapacity);
    tombstones_ = 0;
  }

  void Reserve(size_t n) {
    size_t needed = NextPow2(n * 8 / 7 + 1);
    if (needed > Capacity()) Rebuild(needed);
    entries_.reserve(n);
    hashes_.reserve(n);
  }

  /// Number of slot-table rebuilds (growth, tombstone purges, and Reserve)
  /// since construction. Feeds the relation rehash counters.
  size_t rehashes() const { return rehashes_; }

  /// Approximate heap footprint in bytes: the dense entry array, the cached
  /// hashes, and the slot table (control bytes + entry indexes).
  /// Out-of-line key/value allocations (e.g. SmallVector spill) are not
  /// counted; this feeds the snapshot memory gauges, which only need the
  /// dominant terms.
  size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(Entry) +
           hashes_.capacity() * sizeof(uint64_t) +
           ctrl_.capacity() * sizeof(int8_t) +
           slots_.capacity() * sizeof(uint32_t);
  }

  /// Returns a pointer to the value for `key`, or nullptr.
  V* Find(const K& key) {
    size_t slot = FindSlot(key, hash_(key));
    if (slot == kNoSlot) return nullptr;
    return &entries_[slots_[slot]].value;
  }
  const V* Find(const K& key) const {
    size_t slot = FindSlot(key, hash_(key));
    if (slot == kNoSlot) return nullptr;
    return &entries_[slots_[slot]].value;
  }

  /// Returns the value for `key`, inserting `def` first if absent.
  V& GetOrInsert(const K& key, V def = V{}) {
    MaybeRebuild();
    const uint64_t h = hash_(key);
    const int8_t h2 = H2(h);
    const size_t group_mask = NumGroups() - 1;
    size_t g = H1(h) & group_mask;
    size_t first_deleted = kNoSlot;
    for (size_t step = 1;; ++step) {
      const int8_t* gc = ctrl_.data() + g * kGroupWidth;
      uint32_t match = detail::GroupProbe::MatchH2(gc, h2);
      while (match != 0) {
        const unsigned bit = detail::GroupProbe::NextBit(match);
        const size_t slot = g * kGroupWidth + bit;
        if (eq_(entries_[slots_[slot]].key, key)) {
          return entries_[slots_[slot]].value;
        }
        match &= match - 1;
      }
      if (first_deleted == kNoSlot) {
        uint32_t deleted = detail::GroupProbe::MatchH2(gc, kDeleted);
        if (deleted != 0) {
          first_deleted =
              g * kGroupWidth + detail::GroupProbe::NextBit(deleted);
        }
      }
      const uint32_t empty = detail::GroupProbe::MatchEmpty(gc, kEmpty);
      if (empty != 0) {
        size_t target;
        if (first_deleted != kNoSlot) {
          target = first_deleted;
          --tombstones_;
        } else {
          target = g * kGroupWidth + detail::GroupProbe::NextBit(empty);
        }
        ctrl_[target] = h2;
        slots_[target] = static_cast<uint32_t>(entries_.size());
        entries_.push_back(Entry{key, std::move(def)});
        hashes_.push_back(h);
        return entries_.back().value;
      }
      g = (g + step) & group_mask;  // triangular: visits every group once
    }
  }

  /// Removes `key`. Returns true if it was present.
  bool Erase(const K& key) {
    size_t slot = FindSlot(key, hash_(key));
    if (slot == kNoSlot) return false;
    const uint32_t idx = slots_[slot];
    ctrl_[slot] = kDeleted;
    ++tombstones_;
    const uint32_t last = static_cast<uint32_t>(entries_.size()) - 1;
    if (idx != last) {
      // Swap-remove: move the last dense entry into the hole and repoint
      // its slot — found via its cached hash, no key re-hash or compare.
      const size_t moved_slot = FindSlotOfEntry(last);
      INCR_DCHECK(moved_slot != kNoSlot);
      entries_[idx] = std::move(entries_[last]);
      hashes_[idx] = hashes_[last];
      slots_[moved_slot] = idx;
    }
    entries_.pop_back();
    hashes_.pop_back();
    return true;
  }

 private:
  static constexpr size_t kGroupWidth = detail::GroupProbe::kWidth;
  // Control byte values. Full slots hold the entry's 7-bit H2 fragment
  // (0..127, i.e. non-negative); the specials have the sign bit set.
  static constexpr int8_t kEmpty = static_cast<int8_t>(0x80);    // -128
  static constexpr int8_t kDeleted = static_cast<int8_t>(0xFE);  // -2
  static constexpr size_t kNoSlot = SIZE_MAX;
  static constexpr size_t kMinCapacity = 16;  // one group

  /// Group-selection bits: everything above the 7 H2 bits.
  static size_t H1(uint64_t h) { return static_cast<size_t>(h >> 7); }
  /// The 7-bit fragment cached in the control byte.
  static int8_t H2(uint64_t h) { return static_cast<int8_t>(h & 0x7f); }

  size_t Capacity() const { return ctrl_.size(); }
  size_t NumGroups() const { return ctrl_.size() / kGroupWidth; }

  static size_t NextPow2(size_t n) {
    size_t p = kMinCapacity;
    while (p < n) p <<= 1;
    return p;
  }

  void InitTable(size_t capacity) {
    ctrl_.assign(capacity, kEmpty);
    slots_.assign(capacity, 0);
  }

  /// Probe shared by Find and Erase: the slot holding `key`, or kNoSlot.
  size_t FindSlot(const K& key, uint64_t h) const {
    const int8_t h2 = H2(h);
    const size_t group_mask = NumGroups() - 1;
    size_t g = H1(h) & group_mask;
    for (size_t step = 1;; ++step) {
      const int8_t* gc = ctrl_.data() + g * kGroupWidth;
      uint32_t match = detail::GroupProbe::MatchH2(gc, h2);
      while (match != 0) {
        const unsigned bit = detail::GroupProbe::NextBit(match);
        const size_t slot = g * kGroupWidth + bit;
        if (eq_(entries_[slots_[slot]].key, key)) return slot;
        match &= match - 1;
      }
      if (detail::GroupProbe::MatchEmpty(gc, kEmpty) != 0) return kNoSlot;
      g = (g + step) & group_mask;
    }
  }

  /// The slot pointing at dense entry `idx`, located by its cached hash —
  /// compares slot values instead of keys, so moved-entry patching during
  /// swap-remove costs one probe chain and zero key operations.
  size_t FindSlotOfEntry(uint32_t idx) const {
    const uint64_t h = hashes_[idx];
    const int8_t h2 = H2(h);
    const size_t group_mask = NumGroups() - 1;
    size_t g = H1(h) & group_mask;
    for (size_t step = 1;; ++step) {
      const int8_t* gc = ctrl_.data() + g * kGroupWidth;
      uint32_t match = detail::GroupProbe::MatchH2(gc, h2);
      while (match != 0) {
        const unsigned bit = detail::GroupProbe::NextBit(match);
        const size_t slot = g * kGroupWidth + bit;
        if (slots_[slot] == idx) return slot;
        match &= match - 1;
      }
      if (detail::GroupProbe::MatchEmpty(gc, kEmpty) != 0) return kNoSlot;
      g = (g + step) & group_mask;
    }
  }

  void MaybeRebuild() {
    // Keep live + tombstone load under 7/8; grow only if live load alone
    // exceeds 1/2, otherwise rebuild at the same size to purge tombstones.
    size_t used = entries_.size() + tombstones_ + 1;
    if (used * 8 < Capacity() * 7) return;
    size_t cap = Capacity();
    if ((entries_.size() + 1) * 2 >= cap) cap <<= 1;
    Rebuild(cap);
  }

  void Rebuild(size_t capacity) {
    ++rehashes_;
    InitTable(capacity);
    tombstones_ = 0;
    const size_t group_mask = capacity / kGroupWidth - 1;
    for (uint32_t idx = 0; idx < entries_.size(); ++idx) {
      // Cached hash: a rebuild never re-hashes a key.
      const uint64_t h = hashes_[idx];
      size_t g = H1(h) & group_mask;
      for (size_t step = 1;; ++step) {
        const int8_t* gc = ctrl_.data() + g * kGroupWidth;
        const uint32_t empty = detail::GroupProbe::MatchEmpty(gc, kEmpty);
        if (empty != 0) {
          const size_t slot =
              g * kGroupWidth + detail::GroupProbe::NextBit(empty);
          ctrl_[slot] = H2(h);
          slots_[slot] = idx;
          break;
        }
        g = (g + step) & group_mask;
      }
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint64_t> hashes_;  // full hash per dense entry (same order)
  std::vector<int8_t> ctrl_;      // one control byte per slot
  std::vector<uint32_t> slots_;   // entry index per slot
  size_t tombstones_ = 0;
  size_t rehashes_ = 0;
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

}  // namespace incr

#endif  // INCR_DATA_DENSE_MAP_H_
