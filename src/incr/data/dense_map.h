// DenseMap: an open-addressing hash map with a dense entry array.
//
// This is the workhorse container behind relations, views, and indexes. The
// IVM data-structure contract from paper §2 is exactly its design brief:
//   * lookup / insert / erase in amortized constant time,
//   * enumeration of entries with constant delay (dense array scan, no
//     skipping over empty buckets as in node- or bucket-based maps).
//
// Layout: `entries_` is a dense vector of {key, value}; `slots_` is a
// power-of-two open-addressing table (linear probing) storing indexes into
// `entries_`, with tombstones for deletions. Erase swap-removes from the
// dense array and patches the moved entry's slot, so the dense array never
// has holes. The table is rebuilt when live+tombstone load exceeds 7/8.
//
// References returned by Find/GetOrInsert are invalidated by any mutation.
#ifndef INCR_DATA_DENSE_MAP_H_
#define INCR_DATA_DENSE_MAP_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "incr/util/check.h"

namespace incr {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class DenseMap {
 public:
  struct Entry {
    K key;
    V value;
  };

  DenseMap() { InitTable(kMinCapacity); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Dense, constant-delay iteration over all entries.
  const Entry* begin() const { return entries_.data(); }
  const Entry* end() const { return entries_.data() + entries_.size(); }

  /// Entry at dense position `i` (0 <= i < size()). Positions are stable
  /// only between mutations.
  const Entry& at(size_t i) const {
    INCR_DCHECK(i < entries_.size());
    return entries_[i];
  }

  void clear() {
    entries_.clear();
    InitTable(kMinCapacity);
    tombstones_ = 0;
  }

  void Reserve(size_t n) {
    size_t needed = NextPow2(n * 8 / 7 + 1);
    if (needed > slots_.size()) Rebuild(needed);
    entries_.reserve(n);
  }

  /// Number of slot-table rebuilds (growth, tombstone purges, and Reserve)
  /// since construction. Feeds the relation rehash counters.
  size_t rehashes() const { return rehashes_; }

  /// Approximate heap footprint in bytes: the dense entry array plus the
  /// slot table. Out-of-line key/value allocations (e.g. SmallVector spill)
  /// are not counted; this feeds the snapshot memory gauges, which only
  /// need the dominant terms.
  size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(Entry) +
           slots_.capacity() * sizeof(uint32_t);
  }

  /// Returns a pointer to the value for `key`, or nullptr.
  V* Find(const K& key) {
    size_t slot = FindSlot(key);
    if (slot == kNoSlot) return nullptr;
    return &entries_[slots_[slot]].value;
  }
  const V* Find(const K& key) const {
    size_t slot = FindSlot(key);
    if (slot == kNoSlot) return nullptr;
    return &entries_[slots_[slot]].value;
  }

  /// Returns the value for `key`, inserting `def` first if absent.
  V& GetOrInsert(const K& key, V def = V{}) {
    MaybeRebuild();
    uint64_t h = hash_(key);
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    size_t first_tombstone = kNoSlot;
    for (;;) {
      uint32_t s = slots_[i];
      if (s == kEmpty) {
        size_t target = first_tombstone != kNoSlot ? first_tombstone : i;
        if (first_tombstone != kNoSlot) --tombstones_;
        slots_[target] = static_cast<uint32_t>(entries_.size());
        entries_.push_back(Entry{key, std::move(def)});
        return entries_.back().value;
      }
      if (s == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = i;
      } else if (eq_(entries_[s].key, key)) {
        return entries_[s].value;
      }
      i = (i + 1) & mask;
    }
  }

  /// Removes `key`. Returns true if it was present.
  bool Erase(const K& key) {
    size_t slot = FindSlot(key);
    if (slot == kNoSlot) return false;
    uint32_t idx = slots_[slot];
    slots_[slot] = kTombstone;
    ++tombstones_;
    uint32_t last = static_cast<uint32_t>(entries_.size()) - 1;
    if (idx != last) {
      // Swap-remove: move the last dense entry into the hole and repoint
      // its slot.
      size_t moved_slot = FindSlot(entries_[last].key);
      INCR_DCHECK(moved_slot != kNoSlot);
      INCR_DCHECK(slots_[moved_slot] == last);
      entries_[idx] = std::move(entries_[last]);
      slots_[moved_slot] = idx;
    }
    entries_.pop_back();
    return true;
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;
  static constexpr uint32_t kTombstone = UINT32_MAX - 1;
  static constexpr size_t kNoSlot = SIZE_MAX;
  static constexpr size_t kMinCapacity = 16;

  static size_t NextPow2(size_t n) {
    size_t p = kMinCapacity;
    while (p < n) p <<= 1;
    return p;
  }

  void InitTable(size_t capacity) {
    slots_.assign(capacity, kEmpty);
  }

  size_t FindSlot(const K& key) const {
    uint64_t h = hash_(key);
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    for (;;) {
      uint32_t s = slots_[i];
      if (s == kEmpty) return kNoSlot;
      if (s != kTombstone && eq_(entries_[s].key, key)) return i;
      i = (i + 1) & mask;
    }
  }

  void MaybeRebuild() {
    // Keep live + tombstone load under 7/8; grow only if live load alone
    // exceeds 1/2, otherwise rebuild at the same size to purge tombstones.
    size_t used = entries_.size() + tombstones_ + 1;
    if (used * 8 < slots_.size() * 7) return;
    size_t cap = slots_.size();
    if ((entries_.size() + 1) * 2 >= cap) cap <<= 1;
    Rebuild(cap);
  }

  void Rebuild(size_t capacity) {
    ++rehashes_;
    slots_.assign(capacity, kEmpty);
    tombstones_ = 0;
    size_t mask = capacity - 1;
    for (uint32_t idx = 0; idx < entries_.size(); ++idx) {
      size_t i = static_cast<size_t>(hash_(entries_[idx].key)) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = idx;
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> slots_;
  size_t tombstones_ = 0;
  size_t rehashes_ = 0;
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

}  // namespace incr

#endif  // INCR_DATA_DENSE_MAP_H_
