// Relation over a ring (paper §2): a finite map from tuples over a schema to
// non-zero ring payloads, implemented as a DenseMap, with optional grouped
// indexes kept in sync on every change. Payloads that become zero are
// physically removed, so |R| is always the number of non-zero tuples.
#ifndef INCR_DATA_RELATION_H_
#define INCR_DATA_RELATION_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "incr/data/dense_map.h"
#include "incr/data/grouped_index.h"
#include "incr/data/schema.h"
#include "incr/data/tuple.h"
#include "incr/obs/metrics.h"
#include "incr/ring/ring.h"
#include "incr/util/thread_pool.h"

namespace incr {

namespace detail {
// Batch-path metric handles, shared by every Relation<R> instantiation.
// The single-tuple Apply() is deliberately left unhooked: it is the O(1)
// per-update path whose latency the paper's claims are about.
struct RelationMetricHandles {
  obs::Counter* batch_deltas;   // entries seen by ApplyBatch
  obs::Counter* batch_upserts;  // new tuples inserted
  obs::Counter* batch_erases;   // tuples whose payload reached zero
  obs::Counter* rehashes;       // DenseMap slot-table rebuilds during batches
};
inline const RelationMetricHandles& RelationMetrics() {
  static const RelationMetricHandles h = [] {
    auto& r = obs::MetricsRegistry::Global();
    return RelationMetricHandles{
        r.GetCounter("relation.batch_deltas"),
        r.GetCounter("relation.batch_upserts"),
        r.GetCounter("relation.batch_erases"),
        r.GetCounter("relation.rehashes"),
    };
  }();
  return h;
}
}  // namespace detail

template <RingType R>
class Relation {
 public:
  using RV = typename R::Value;
  using Entry = typename DenseMap<Tuple, RV, TupleHash, TupleEq>::Entry;

  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// Deep copy, for snapshot versioning: the DenseMap copy preserves the
  /// exact slot/entry layout (it is a plain member-wise vector copy), and
  /// indexes are cloned in registration order, so a copy is bit-identical
  /// to the original under DumpState-style serialization.
  Relation(const Relation& o) : schema_(o.schema_), data_(o.data_) {
    indexes_.reserve(o.indexes_.size());
    for (const auto& idx : o.indexes_) {
      indexes_.push_back(std::make_unique<GroupedIndex>(*idx));
    }
  }
  Relation& operator=(const Relation& o) {
    if (this != &o) {
      Relation copy(o);
      *this = std::move(copy);
    }
    return *this;
  }
  Relation(Relation&&) noexcept = default;
  Relation& operator=(Relation&&) noexcept = default;

  const Schema& schema() const { return schema_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Payload of `t`; Zero if absent.
  RV Payload(const Tuple& t) const {
    const RV* v = data_.Find(t);
    return v == nullptr ? R::Zero() : *v;
  }

  bool Contains(const Tuple& t) const { return data_.Find(t) != nullptr; }

  /// Applies a delta: payload(t) += d, removing t if the result is zero.
  /// This is the single mutation entry point; all indexes stay in sync.
  void Apply(const Tuple& t, const RV& d) {
    INCR_DCHECK(t.size() == schema_.size());
    if (R::IsZero(d)) return;
    RV* existing = data_.Find(t);
    if (existing == nullptr) {
      data_.GetOrInsert(t, d);
      for (auto& idx : indexes_) idx->Insert(t);
      return;
    }
    *existing = R::Add(*existing, d);
    if (R::IsZero(*existing)) {
      data_.Erase(t);
      for (auto& idx : indexes_) idx->Erase(t);
    }
  }

  /// Bulk delta application. Pre-reserves the map and every grouped index
  /// for the incoming batch, applies the deltas, and replays the resulting
  /// insert/erase stream once per index (one index at a time, instead of
  /// fanning each tuple out across all indexes). Entries may repeat a
  /// tuple; they are applied in order, so the net effect equals sequential
  /// Apply() calls. With a pool, the per-index replays run in parallel —
  /// indexes are independent of one another and the op stream is fixed by
  /// then, so this is safe and deterministic.
  void ApplyBatch(std::span<const Entry> batch, ThreadPool* pool = nullptr) {
    const bool obs_on = obs::Enabled();
    const size_t rehashes_before = obs_on ? data_.rehashes() : 0;
    data_.Reserve(data_.size() + batch.size());
    if (indexes_.empty()) {
      size_t upserts = 0;
      size_t erases = 0;
      for (const Entry& e : batch) {
        int net = ApplyUnindexed(e.key, e.value);
        if (net > 0) ++upserts;
        if (net < 0) ++erases;
      }
      if (obs_on) {
        const auto& m = detail::RelationMetrics();
        m.batch_deltas->Add(batch.size());
        m.batch_upserts->Add(upserts);
        m.batch_erases->Add(erases);
        m.rehashes->Add(data_.rehashes() - rehashes_before);
      }
      return;
    }
    // (entry index, is_insert) event stream; tuples are read back from the
    // batch so no copies are made.
    std::vector<std::pair<uint32_t, bool>> ops;
    ops.reserve(batch.size());
    size_t inserts = 0;
    for (uint32_t i = 0; i < batch.size(); ++i) {
      const Entry& e = batch[i];
      if (R::IsZero(e.value)) continue;
      RV* existing = data_.Find(e.key);
      if (existing == nullptr) {
        data_.GetOrInsert(e.key, e.value);
        ops.emplace_back(i, true);
        ++inserts;
        continue;
      }
      *existing = R::Add(*existing, e.value);
      if (R::IsZero(*existing)) {
        data_.Erase(e.key);
        ops.emplace_back(i, false);
      }
    }
    if (obs_on) {
      const auto& m = detail::RelationMetrics();
      m.batch_deltas->Add(batch.size());
      m.batch_upserts->Add(inserts);
      m.batch_erases->Add(ops.size() - inserts);
      m.rehashes->Add(data_.rehashes() - rehashes_before);
    }
    auto replay = [&](size_t k) {
      GroupedIndex& idx = *indexes_[k];
      // Reserve only for the inserts: a delete-heavy batch must not grow
      // the index tables it is about to shrink.
      idx.Reserve(idx.NumEntries() + inserts);
      for (const auto& [i, is_insert] : ops) {
        if (is_insert) {
          idx.Insert(batch[i].key);
        } else {
          idx.Erase(batch[i].key);
        }
      }
    };
    if (pool != nullptr && indexes_.size() > 1) {
      pool->ParallelFor(indexes_.size(), replay);
    } else {
      for (size_t k = 0; k < indexes_.size(); ++k) replay(k);
    }
  }

  /// Constant-delay iteration over (tuple, payload) entries.
  const Entry* begin() const { return data_.begin(); }
  const Entry* end() const { return data_.end(); }
  const Entry& at(size_t i) const { return data_.at(i); }

  /// Registers a grouped index on `key` columns; returns its id. Existing
  /// contents are indexed immediately.
  size_t AddIndex(const Schema& key) {
    auto idx = std::make_unique<GroupedIndex>(schema_, key);
    for (const Entry& e : data_) idx->Insert(e.key);
    indexes_.push_back(std::move(idx));
    return indexes_.size() - 1;
  }

  const GroupedIndex& index(size_t id) const {
    INCR_DCHECK(id < indexes_.size());
    return *indexes_[id];
  }

  size_t num_indexes() const { return indexes_.size(); }

  /// Removes all tuples (indexes are emptied, not dropped).
  void Clear() {
    data_.clear();
    for (auto& idx : indexes_) idx->Clear();
  }

  /// Pre-sizes the underlying DenseMap (and nothing else) for `n` total
  /// entries; bulk loaders call this to avoid rehash storms.
  void Reserve(size_t n) { data_.Reserve(n); }

  /// Approximate heap footprint in bytes (map plus all grouped indexes).
  size_t MemoryBytes() const {
    size_t n = data_.MemoryBytes();
    for (const auto& idx : indexes_) n += idx->MemoryBytes();
    return n;
  }

 private:
  // Returns +1 for a fresh insert, -1 for an erase-to-zero, 0 otherwise.
  int ApplyUnindexed(const Tuple& t, const RV& d) {
    if (R::IsZero(d)) return 0;
    RV* existing = data_.Find(t);
    if (existing == nullptr) {
      data_.GetOrInsert(t, d);
      return 1;
    }
    *existing = R::Add(*existing, d);
    if (R::IsZero(*existing)) {
      data_.Erase(t);
      return -1;
    }
    return 0;
  }

  Schema schema_;
  DenseMap<Tuple, RV, TupleHash, TupleEq> data_;
  std::vector<std::unique_ptr<GroupedIndex>> indexes_;
};

}  // namespace incr

#endif  // INCR_DATA_RELATION_H_
