// Plain-text serialization of integer-payload relations and databases:
// snapshot/restore for examples, tooling, and long-lived maintenance
// sessions.
//
// Format (line-oriented, '#' comments ignored):
//   relation <name> <arity>
//   <v1> <v2> ... <varity> <payload>
//   ...
//   end
#ifndef INCR_DATA_IO_H_
#define INCR_DATA_IO_H_

#include <iosfwd>
#include <string>

#include "incr/data/database.h"
#include "incr/ring/int_ring.h"
#include "incr/util/status.h"

namespace incr {

/// Writes one relation section.
void WriteRelation(std::ostream& out, const std::string& name,
                   const Relation<IntRing>& rel);

/// Reads one relation section into `rel` (applied as deltas; `rel` is not
/// cleared first). The stream must be positioned at a "relation" line for
/// `expected_name`; arity must match rel's schema.
Status ReadRelation(std::istream& in, const std::string& expected_name,
                    Relation<IntRing>* rel);

/// Writes every relation of the database.
void WriteDatabase(std::ostream& out, const Database<IntRing>& db);

/// Reads relation sections until EOF, applying each to the same-named
/// relation of `db` (which must exist with matching arity). Errors carry
/// the 1-based line number of the offending line.
Status ReadDatabase(std::istream& in, Database<IntRing>* db);

/// Writes the whole database to `path`; open and write failures are
/// returned, never aborted on.
Status WriteDatabaseFile(const std::string& path, const Database<IntRing>& db);

/// Reads `path` into `db`. A missing file is NotFound; parse errors are
/// InvalidArgument prefixed with "<path>:<line>".
Status ReadDatabaseFile(const std::string& path, Database<IntRing>* db);

}  // namespace incr

#endif  // INCR_DATA_IO_H_
