#include "incr/data/io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace incr {

namespace {

// Reads the next non-empty, non-comment line; false on EOF.
bool NextLine(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void WriteRelation(std::ostream& out, const std::string& name,
                   const Relation<IntRing>& rel) {
  out << "relation " << name << " " << rel.schema().size() << "\n";
  for (const auto& e : rel) {
    for (Value v : e.key) out << v << " ";
    out << e.value << "\n";
  }
  out << "end\n";
}

Status ReadRelation(std::istream& in, const std::string& expected_name,
                    Relation<IntRing>* rel) {
  std::string line;
  if (!NextLine(in, &line)) {
    return Status::InvalidArgument("unexpected end of stream");
  }
  std::istringstream header(line);
  std::string keyword, name;
  size_t arity = 0;
  header >> keyword >> name >> arity;
  if (keyword != "relation" || header.fail()) {
    return Status::InvalidArgument("expected 'relation <name> <arity>'");
  }
  if (name != expected_name) {
    return Status::InvalidArgument("expected relation '" + expected_name +
                                   "', found '" + name + "'");
  }
  if (arity != rel->schema().size()) {
    return Status::InvalidArgument("arity mismatch for '" + name + "'");
  }
  // Buffer the parsed rows and apply them as one batch: ApplyBatch
  // pre-reserves the map and the grouped indexes, so bulk loads avoid the
  // incremental rehashing of tuple-at-a-time Apply.
  std::vector<Relation<IntRing>::Entry> rows;
  while (NextLine(in, &line)) {
    if (line.rfind("end", 0) == 0) {
      rel->ApplyBatch(rows);
      return Status::Ok();
    }
    std::istringstream row(line);
    Tuple t;
    for (size_t i = 0; i < arity; ++i) {
      Value v;
      row >> v;
      t.push_back(v);
    }
    int64_t payload;
    row >> payload;
    if (row.fail()) {
      return Status::InvalidArgument("malformed row: " + line);
    }
    rows.push_back({std::move(t), payload});
  }
  return Status::InvalidArgument("missing 'end' for relation " + name);
}

void WriteDatabase(std::ostream& out, const Database<IntRing>& db) {
  for (RelId id = 0; id < db.NumRelations(); ++id) {
    WriteRelation(out, db.Name(id), db.relation(id));
  }
}

Status ReadDatabase(std::istream& in, Database<IntRing>* db) {
  std::string line;
  while (NextLine(in, &line)) {
    std::istringstream header(line);
    std::string keyword, name;
    header >> keyword >> name;
    if (keyword != "relation") {
      return Status::InvalidArgument("expected 'relation', got: " + line);
    }
    Relation<IntRing>* rel = db->Find(name);
    if (rel == nullptr) {
      return Status::NotFound("unknown relation '" + name + "'");
    }
    // Re-parse the section with the single-relation reader.
    std::string section = line + "\n";
    while (std::getline(in, line)) {
      section += line + "\n";
      if (line.rfind("end", 0) == 0) break;
    }
    std::istringstream section_in(section);
    Status st = ReadRelation(section_in, name, rel);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace incr
