#include "incr/data/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace incr {

namespace {

// Reads the next non-empty, non-comment line, counting every consumed line
// (blank and comment lines included) in *lineno; false on EOF.
bool NextLine(std::istream& in, std::string* line, size_t* lineno) {
  while (std::getline(in, *line)) {
    ++*lineno;
    size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    return true;
  }
  return false;
}

Status LineError(size_t lineno, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                 what);
}

Status ParseHeader(const std::string& line, size_t lineno, std::string* name,
                   size_t* arity) {
  std::istringstream header(line);
  std::string keyword;
  header >> keyword >> *name >> *arity;
  if (keyword != "relation" || header.fail()) {
    return LineError(lineno, "expected 'relation <name> <arity>', got: " +
                                 line);
  }
  return Status::Ok();
}

// Reads the data rows of one section (up to and including its "end" line)
// into `rel`, applied as one batch: ApplyBatch pre-reserves the map and the
// grouped indexes, so bulk loads avoid incremental rehashing.
Status ReadRows(std::istream& in, const std::string& name, size_t arity,
                Relation<IntRing>* rel, size_t* lineno) {
  std::vector<Relation<IntRing>::Entry> rows;
  std::string line;
  while (NextLine(in, &line, lineno)) {
    if (line.rfind("end", 0) == 0) {
      rel->ApplyBatch(rows);
      return Status::Ok();
    }
    std::istringstream row(line);
    Tuple t;
    for (size_t i = 0; i < arity; ++i) {
      Value v;
      row >> v;
      t.push_back(v);
    }
    int64_t payload;
    row >> payload;
    if (row.fail()) {
      return LineError(*lineno, "malformed row: " + line);
    }
    rows.push_back({std::move(t), payload});
  }
  return LineError(*lineno, "missing 'end' for relation " + name);
}

Status ReadDatabaseLines(std::istream& in, Database<IntRing>* db,
                         size_t* lineno) {
  std::string line;
  while (NextLine(in, &line, lineno)) {
    std::string name;
    size_t arity = 0;
    Status st = ParseHeader(line, *lineno, &name, &arity);
    if (!st.ok()) return st;
    Relation<IntRing>* rel = db->Find(name);
    if (rel == nullptr) {
      return Status::NotFound("line " + std::to_string(*lineno) +
                              ": unknown relation '" + name + "'");
    }
    if (arity != rel->schema().size()) {
      return LineError(*lineno, "arity mismatch for '" + name + "': file " +
                                    "says " + std::to_string(arity) +
                                    ", schema has " +
                                    std::to_string(rel->schema().size()));
    }
    st = ReadRows(in, name, arity, rel, lineno);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

// Re-codes `st` with its message prefixed by the file path, so a caller
// sees "<path>:line N: ..." for parse errors.
Status PrefixPath(const Status& st, const std::string& path) {
  if (st.ok()) return st;
  const std::string msg = path + ": " + st.message();
  switch (st.code()) {
    case StatusCode::kNotFound:
      return Status::NotFound(msg);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    default:
      return Status::Internal(msg);
  }
}

}  // namespace

void WriteRelation(std::ostream& out, const std::string& name,
                   const Relation<IntRing>& rel) {
  out << "relation " << name << " " << rel.schema().size() << "\n";
  for (const auto& e : rel) {
    for (Value v : e.key) out << v << " ";
    out << e.value << "\n";
  }
  out << "end\n";
}

Status ReadRelation(std::istream& in, const std::string& expected_name,
                    Relation<IntRing>* rel) {
  size_t lineno = 0;
  std::string line;
  if (!NextLine(in, &line, &lineno)) {
    return Status::InvalidArgument("unexpected end of stream");
  }
  std::string name;
  size_t arity = 0;
  Status st = ParseHeader(line, lineno, &name, &arity);
  if (!st.ok()) return st;
  if (name != expected_name) {
    return Status::InvalidArgument("expected relation '" + expected_name +
                                   "', found '" + name + "'");
  }
  if (arity != rel->schema().size()) {
    return Status::InvalidArgument("arity mismatch for '" + name + "'");
  }
  return ReadRows(in, name, arity, rel, &lineno);
}

void WriteDatabase(std::ostream& out, const Database<IntRing>& db) {
  for (RelId id = 0; id < db.NumRelations(); ++id) {
    WriteRelation(out, db.Name(id), db.relation(id));
  }
}

Status ReadDatabase(std::istream& in, Database<IntRing>* db) {
  size_t lineno = 0;
  return ReadDatabaseLines(in, db, &lineno);
}

Status WriteDatabaseFile(const std::string& path,
                         const Database<IntRing>& db) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  WriteDatabase(out, db);
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

Status ReadDatabaseFile(const std::string& path, Database<IntRing>* db) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  size_t lineno = 0;
  return PrefixPath(ReadDatabaseLines(in, db, &lineno), path);
}

}  // namespace incr
