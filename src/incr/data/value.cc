#include "incr/data/value.h"

namespace incr {

Value Dictionary::Intern(std::string_view s) {
  auto it = codes_.find(std::string(s));
  if (it != codes_.end()) return it->second;
  Value code = static_cast<Value>(strings_.size());
  strings_.emplace_back(s);
  codes_.emplace(strings_.back(), code);
  return code;
}

const std::string* Dictionary::Lookup(Value code) const {
  if (code < 0 || static_cast<size_t>(code) >= strings_.size()) return nullptr;
  return &strings_[static_cast<size_t>(code)];
}

}  // namespace incr
