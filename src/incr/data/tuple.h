// Tuples: short inline vectors of Values, hashed with full avalanche.
#ifndef INCR_DATA_TUPLE_H_
#define INCR_DATA_TUPLE_H_

#include <cstdint>
#include <string>

#include "incr/data/value.h"
#include "incr/util/hash.h"
#include "incr/util/small_vector.h"

namespace incr {

/// A tuple of data values. Inline storage for up to 4 values covers the
/// arities in all workloads here without heap allocation.
using Tuple = SmallVector<Value, 4>;

struct TupleHash {
  uint64_t operator()(const Tuple& t) const {
    return HashSpan64(reinterpret_cast<const uint64_t*>(t.data()), t.size());
  }
};

struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
};

/// Projects `t` onto the positions in `positions` (in that order).
inline Tuple ProjectTuple(const Tuple& t, const SmallVector<uint32_t, 4>& positions) {
  Tuple out;
  out.reserve(positions.size());
  for (uint32_t p : positions) out.push_back(t[p]);
  return out;
}

/// Concatenates two tuples.
inline Tuple ConcatTuple(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  for (Value v : a) out.push_back(v);
  for (Value v : b) out.push_back(v);
  return out;
}

/// Renders e.g. "(1, 7, 3)" for debugging and examples.
std::string TupleToString(const Tuple& t);

}  // namespace incr

#endif  // INCR_DATA_TUPLE_H_
