#include "incr/data/schema.h"

#include "incr/util/check.h"

namespace incr {

Var VarRegistry::GetOrCreate(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  Var id = static_cast<Var>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::optional<Var> VarRegistry::Get(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string VarRegistry::Name(Var v) const {
  if (v < names_.size()) return names_[v];
  return "?" + std::to_string(v);
}

std::optional<uint32_t> FindVar(const Schema& schema, Var v) {
  for (uint32_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == v) return i;
  }
  return std::nullopt;
}

bool SchemaContains(const Schema& schema, Var v) {
  return FindVar(schema, v).has_value();
}

bool SchemaSubset(const Schema& a, const Schema& b) {
  for (Var v : a) {
    if (!SchemaContains(b, v)) return false;
  }
  return true;
}

Schema SchemaIntersect(const Schema& a, const Schema& b) {
  Schema out;
  for (Var v : a) {
    if (SchemaContains(b, v)) out.push_back(v);
  }
  return out;
}

Schema SchemaUnion(const Schema& a, const Schema& b) {
  Schema out = a;
  for (Var v : b) {
    if (!SchemaContains(out, v)) out.push_back(v);
  }
  return out;
}

Schema SchemaMinus(const Schema& a, const Schema& b) {
  Schema out;
  for (Var v : a) {
    if (!SchemaContains(b, v)) out.push_back(v);
  }
  return out;
}

SmallVector<uint32_t, 4> ProjectionPositions(const Schema& from,
                                             const Schema& to) {
  SmallVector<uint32_t, 4> out;
  out.reserve(to.size());
  for (Var v : to) {
    auto pos = FindVar(from, v);
    INCR_CHECK(pos.has_value());
    out.push_back(*pos);
  }
  return out;
}

std::string SchemaToString(const Schema& schema, const VarRegistry& vars) {
  std::string out = "(";
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out += ", ";
    out += vars.Name(schema[i]);
  }
  out += ")";
  return out;
}

}  // namespace incr
