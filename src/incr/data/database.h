// A database: named relations over the same ring (paper §2). Relations are
// addressed by dense RelId handles; engines hold RelIds, not names.
#ifndef INCR_DATA_DATABASE_H_
#define INCR_DATA_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "incr/data/relation.h"
#include "incr/util/check.h"

namespace incr {

/// Handle of a relation within a Database.
using RelId = uint32_t;

template <RingType R>
class Database {
 public:
  /// Creates an empty relation; the name must be fresh.
  RelId AddRelation(const std::string& name, Schema schema) {
    INCR_CHECK(ids_.find(name) == ids_.end());
    RelId id = static_cast<RelId>(relations_.size());
    relations_.push_back(std::make_unique<Relation<R>>(std::move(schema)));
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }

  Relation<R>& relation(RelId id) {
    INCR_DCHECK(id < relations_.size());
    return *relations_[id];
  }
  const Relation<R>& relation(RelId id) const {
    INCR_DCHECK(id < relations_.size());
    return *relations_[id];
  }

  /// Relation by name; nullptr if unknown.
  Relation<R>* Find(const std::string& name) {
    auto it = ids_.find(name);
    return it == ids_.end() ? nullptr : relations_[it->second].get();
  }

  /// RelId by name; the name must exist.
  RelId Id(const std::string& name) const {
    auto it = ids_.find(name);
    INCR_CHECK(it != ids_.end());
    return it->second;
  }

  const std::string& Name(RelId id) const {
    INCR_DCHECK(id < names_.size());
    return names_[id];
  }

  size_t NumRelations() const { return relations_.size(); }

  /// Sum of relation sizes: |D| in the paper's complexity statements.
  size_t TotalSize() const {
    size_t n = 0;
    for (const auto& r : relations_) n += r->size();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Relation<R>>> relations_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, RelId> ids_;
};

}  // namespace incr

#endif  // INCR_DATA_DATABASE_H_
