// Variables and schemas. A schema is an ordered tuple of variables (paper
// §2); variable identity is a dense integer id issued by VarRegistry so that
// set operations are cheap.
#ifndef INCR_DATA_SCHEMA_H_
#define INCR_DATA_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "incr/util/small_vector.h"

namespace incr {

/// A query variable, identified by a dense id.
using Var = uint32_t;

/// An ordered list of variables: the schema of a relation or view.
using Schema = SmallVector<Var, 4>;

/// Issues dense Var ids for names and maps them back (for display).
class VarRegistry {
 public:
  /// Returns the id for `name`, registering it if new.
  Var GetOrCreate(const std::string& name);

  /// Returns the id for `name` if registered.
  std::optional<Var> Get(const std::string& name) const;

  /// Name of a registered variable; "?<id>" if unknown.
  std::string Name(Var v) const;

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Var> ids_;
  std::vector<std::string> names_;
};

/// Position of `v` in `schema`, or nullopt.
std::optional<uint32_t> FindVar(const Schema& schema, Var v);

/// True if `schema` contains `v`.
bool SchemaContains(const Schema& schema, Var v);

/// True if every variable of `a` occurs in `b`.
bool SchemaSubset(const Schema& a, const Schema& b);

/// Variables of `a` that also occur in `b`, in `a`'s order.
Schema SchemaIntersect(const Schema& a, const Schema& b);

/// `a` followed by the variables of `b` not already in `a`.
Schema SchemaUnion(const Schema& a, const Schema& b);

/// Variables of `a` not in `b`, in `a`'s order.
Schema SchemaMinus(const Schema& a, const Schema& b);

/// Positions in `from` of each variable of `to`; all must be present.
SmallVector<uint32_t, 4> ProjectionPositions(const Schema& from,
                                             const Schema& to);

/// Renders e.g. "(A, B)" using the registry's names.
std::string SchemaToString(const Schema& schema, const VarRegistry& vars);

}  // namespace incr

#endif  // INCR_DATA_SCHEMA_H_
