// ShardedRelation<R>: a Relation split into disjoint hash shards on a key
// prefix — the storage layout that lets the parallel batch path apply W-view
// deltas lock-free. Every tuple lives in exactly one shard, chosen by the
// hash of its first `key_prefix` columns (a node's group-by key), so two
// tuples with the same key prefix always share a shard: shard-parallel
// writers partitioned by the same hash never touch the same DenseMap, and a
// grouped-index lookup by key needs to consult only one shard.
//
// The default is a single shard, which behaves exactly like a plain Relation
// (routing short-circuits before hashing). The shard count is a layout
// property set by Reshard(), deliberately decoupled from the thread count:
// parallel results must not depend on how many threads exist, so callers fix
// the shard count and let threads pick up shards dynamically. The view tree
// sizes its sharded W storage from NumShards() in data/delta.h (INCR_SHARDS
// env var, default 16).
#ifndef INCR_DATA_SHARDED_RELATION_H_
#define INCR_DATA_SHARDED_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "incr/data/relation.h"
#include "incr/data/schema.h"
#include "incr/data/tuple.h"
#include "incr/ring/ring.h"
#include "incr/util/check.h"
#include "incr/util/hash.h"

namespace incr {

template <RingType R>
class ShardedRelation {
 public:
  using RV = typename R::Value;
  using Entry = typename Relation<R>::Entry;

  /// A relation over `schema` sharded by the hash of the first `key_prefix`
  /// columns. key_prefix == 0 degenerates to one effective shard (the empty
  /// span hashes to a constant), which is still correct.
  ShardedRelation(Schema schema, size_t key_prefix, size_t num_shards = 1)
      : schema_(std::move(schema)), key_prefix_(key_prefix) {
    INCR_CHECK(key_prefix_ <= schema_.size());
    if (num_shards == 0) num_shards = 1;
    shards_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) shards_.emplace_back(schema_);
  }

  const Schema& schema() const { return schema_; }
  size_t key_prefix() const { return key_prefix_; }
  size_t num_shards() const { return shards_.size(); }

  Relation<R>& shard(size_t s) { return shards_[s]; }
  const Relation<R>& shard(size_t s) const { return shards_[s]; }

  /// Shard of a full tuple (routes by its key prefix).
  size_t ShardOf(const Tuple& t) const {
    INCR_DCHECK(t.size() >= key_prefix_);
    return ShardOfPrefix(t);
  }

  /// Shard of a bare key tuple (exactly the key-prefix columns).
  size_t ShardOfKey(const Tuple& key) const {
    INCR_DCHECK(key.size() == key_prefix_);
    return ShardOfPrefix(key);
  }

  size_t size() const {
    size_t n = 0;
    for (const Relation<R>& s : shards_) n += s.size();
    return n;
  }
  bool empty() const { return size() == 0; }

  RV Payload(const Tuple& t) const { return shards_[ShardOf(t)].Payload(t); }
  bool Contains(const Tuple& t) const {
    return shards_[ShardOf(t)].Contains(t);
  }

  void Apply(const Tuple& t, const RV& d) { shards_[ShardOf(t)].Apply(t, d); }

  /// Registers a grouped index on `key` columns on every shard; returns its
  /// (shard-uniform) id. The schema is remembered so Reshard can re-register.
  size_t AddIndex(const Schema& key) {
    for (Relation<R>& s : shards_) s.AddIndex(key);
    index_schemas_.push_back(key);
    return index_schemas_.size() - 1;
  }

  /// Group lookup in index `id` by a tuple of exactly the key-prefix
  /// columns: only the owning shard can hold matches. Requires the index
  /// key to be (a permutation of nothing but) the shard key prefix — in
  /// this codebase, W views only ever carry index 0 on the node key.
  const std::vector<Tuple>* GroupByKey(size_t id, const Tuple& key) const {
    return shards_[ShardOfKey(key)].index(id).Group(key);
  }

  void Clear() {
    for (Relation<R>& s : shards_) s.Clear();
  }

  /// Approximate heap footprint in bytes, summed over shards.
  size_t MemoryBytes() const {
    size_t n = 0;
    for (const Relation<R>& s : shards_) n += s.MemoryBytes();
    return n;
  }

  /// Pre-sizes every shard for its expected slice of `n` total entries.
  void Reserve(size_t n) {
    size_t per = (n + shards_.size() - 1) / shards_.size();
    for (Relation<R>& s : shards_) s.Reserve(per);
  }

  /// Rebuilds the relation with `n` shards, redistributing every entry and
  /// re-registering all indexes. O(size); a no-op if n already matches.
  void Reshard(size_t n) {
    if (n == 0) n = 1;
    if (n == shards_.size()) return;
    std::vector<Relation<R>> old = std::move(shards_);
    shards_.clear();
    shards_.reserve(n);
    size_t total = 0;
    for (const Relation<R>& s : old) total += s.size();
    for (size_t s = 0; s < n; ++s) {
      shards_.emplace_back(schema_);
      for (const Schema& key : index_schemas_) shards_.back().AddIndex(key);
    }
    Reserve(total);
    for (const Relation<R>& s : old) {
      for (const Entry& e : s) Apply(e.key, e.value);
    }
  }

  /// Iteration over all entries, shard 0 first (order is a layout detail —
  /// it changes under Reshard — but is deterministic for a fixed layout).
  class const_iterator {
   public:
    const Entry& operator*() const { return *cur_; }
    const Entry* operator->() const { return cur_; }
    const_iterator& operator++() {
      ++cur_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return shard_ == o.shard_ && cur_ == o.cur_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    friend class ShardedRelation;
    const_iterator(const std::vector<Relation<R>>* shards, size_t shard)
        : shards_(shards), shard_(shard) {
      cur_ = shard_ < shards_->size() ? (*shards_)[shard_].begin() : nullptr;
      SkipEmpty();
    }
    void SkipEmpty() {
      while (shard_ < shards_->size() && cur_ == (*shards_)[shard_].end()) {
        ++shard_;
        cur_ = shard_ < shards_->size() ? (*shards_)[shard_].begin() : nullptr;
      }
    }
    const std::vector<Relation<R>>* shards_;
    size_t shard_;
    const Entry* cur_;
  };

  const_iterator begin() const { return const_iterator(&shards_, 0); }
  const_iterator end() const { return const_iterator(&shards_, shards_.size()); }

 private:
  size_t ShardOfPrefix(const Tuple& t) const {
    if (shards_.size() == 1) return 0;
    uint64_t h = HashSpan64(reinterpret_cast<const uint64_t*>(t.data()),
                            key_prefix_);
    return ShardOfHash(h, shards_.size());
  }

  Schema schema_;
  size_t key_prefix_;
  std::vector<Relation<R>> shards_;
  std::vector<Schema> index_schemas_;
};

}  // namespace incr

#endif  // INCR_DATA_SHARDED_RELATION_H_
