// Values are dictionary-encoded 64-bit integers. Workloads generate integer
// keys directly; string domains (e.g. company names in the IMDB-like
// workload) are interned through Dictionary.
#ifndef INCR_DATA_VALUE_H_
#define INCR_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace incr {

/// A data value: either a raw integer or a dictionary code for a string.
using Value = int64_t;

/// Interns strings to dense Value codes and back.
class Dictionary {
 public:
  /// Returns the code of `s`, interning it if new. Codes are dense from 0.
  Value Intern(std::string_view s);

  /// Looks up a previously interned string; returns nullptr if unknown.
  const std::string* Lookup(Value code) const;

  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, Value> codes_;
  std::vector<std::string> strings_;
};

}  // namespace incr

#endif  // INCR_DATA_VALUE_H_
