// First-class deltas (paper §2): an update to a ring-valued database is
// itself a (small) ring-valued database. Single-tuple deltas carry one
// (tuple, ring value) pair; a DeltaBatch groups many of them per atom and
// merges duplicates by ring addition, so every downstream consumer sees at
// most one delta per (atom, tuple) and never sees a zero payload — the
// §2 batch-commutativity argument makes this pre-summing sound: applying
// the merged batch yields the same final state as applying the original
// sequence in any order.
#ifndef INCR_DATA_DELTA_H_
#define INCR_DATA_DELTA_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "incr/data/dense_map.h"
#include "incr/data/tuple.h"
#include "incr/ring/ring.h"

namespace incr {

/// A single-tuple delta addressed to an atom by position (the engines'
/// internal currency: atom ids index Query::atoms()).
template <RingType R>
struct AtomDelta {
  size_t atom;
  Tuple tuple;
  typename R::Value delta;
};

/// A single-tuple delta addressed by relation name (the external currency:
/// loaders, REPL, and the unified IvmEngine interface route by name; one
/// named delta fans out to every atom occurrence of that relation,
/// realizing the product rule of Eq. (2) for self-joins).
template <RingType R>
struct Delta {
  std::string relation;
  Tuple tuple;
  typename R::Value delta;
};

/// A batch of deltas grouped per atom, with ring-payload merging: duplicate
/// tuples within an atom are pre-summed on insertion and deltas whose
/// merged payload is zero are dropped. `size()` counts the surviving
/// merged deltas, not the raw insertions.
template <RingType R>
class DeltaBatch {
 public:
  using RV = typename R::Value;
  using Map = DenseMap<Tuple, RV, TupleHash, TupleEq>;
  using Entry = typename Map::Entry;

  DeltaBatch() = default;
  explicit DeltaBatch(size_t num_atoms) : per_atom_(num_atoms) {}

  /// Merges one single-tuple delta into the batch.
  void Add(size_t atom, const Tuple& t, const RV& d) {
    if (R::IsZero(d)) return;
    if (atom >= per_atom_.size()) per_atom_.resize(atom + 1);
    Map& m = per_atom_[atom];
    RV* existing = m.Find(t);
    if (existing == nullptr) {
      m.GetOrInsert(t, d);
      ++size_;
      return;
    }
    *existing = R::Add(*existing, d);
    if (R::IsZero(*existing)) {
      m.Erase(t);
      --size_;
    }
  }

  void Add(const AtomDelta<R>& e) { Add(e.atom, e.tuple, e.delta); }

  void AddAll(std::span<const AtomDelta<R>> batch) {
    for (const AtomDelta<R>& e : batch) Add(e);
  }

  /// Number of atom groups (>= highest atom id added + 1).
  size_t num_atoms() const { return per_atom_.size(); }

  /// Total number of merged, non-zero deltas across all atoms.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The merged deltas of one atom (empty map if none were added).
  const Map& of(size_t atom) const {
    static const Map kEmpty;
    return atom < per_atom_.size() ? per_atom_[atom] : kEmpty;
  }

  /// The merged deltas of one atom as a contiguous span of entries.
  std::span<const Entry> entries(size_t atom) const {
    const Map& m = of(atom);
    return {m.begin(), m.size()};
  }

  void Clear() {
    for (Map& m : per_atom_) m.clear();
    size_ = 0;
  }

 private:
  std::vector<Map> per_atom_;
  size_t size_ = 0;
};

}  // namespace incr

#endif  // INCR_DATA_DELTA_H_
