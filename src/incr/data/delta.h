// First-class deltas (paper §2): an update to a ring-valued database is
// itself a (small) ring-valued database. Single-tuple deltas carry one
// (tuple, ring value) pair; a DeltaBatch groups many of them per atom and
// merges duplicates by ring addition, so every downstream consumer sees at
// most one delta per (atom, tuple) and never sees a zero payload — the
// §2 batch-commutativity argument makes this pre-summing sound: applying
// the merged batch yields the same final state as applying the original
// sequence in any order.
#ifndef INCR_DATA_DELTA_H_
#define INCR_DATA_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "incr/data/dense_map.h"
#include "incr/data/tuple.h"
#include "incr/obs/metrics.h"
#include "incr/ring/ring.h"
#include "incr/util/hash.h"

namespace incr {

/// Process-wide shard count for delta partitioning and sharded W storage
/// (DeltaShards, ShardedRelation, ViewTree::DefaultDeltaShards): the
/// INCR_SHARDS environment variable if set to a positive integer, else 16.
/// Read once at first use, then fixed for the process — results must never
/// depend on shard count changing mid-run — and recorded as the
/// "config.shards" gauge so every StatsSnapshot documents it.
inline size_t NumShards() {
  static const size_t kNumShards = [] {
    size_t shards = 16;
    if (const char* env = std::getenv("INCR_SHARDS")) {
      char* end = nullptr;
      long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        shards = static_cast<size_t>(v);
      }
    }
    obs::MetricsRegistry::Global().GetGauge("config.shards")->Set(
        static_cast<int64_t>(shards));
    return shards;
  }();
  return kNumShards;
}

/// A single-tuple delta addressed to an atom by position (the engines'
/// internal currency: atom ids index Query::atoms()).
template <RingType R>
struct AtomDelta {
  size_t atom;
  Tuple tuple;
  typename R::Value delta;
};

/// A single-tuple delta addressed by relation name (the external currency:
/// loaders, REPL, and the unified IvmEngine interface route by name; one
/// named delta fans out to every atom occurrence of that relation,
/// realizing the product rule of Eq. (2) for self-joins).
template <RingType R>
struct Delta {
  std::string relation;
  Tuple tuple;
  typename R::Value delta;
};

/// A batch of deltas grouped per atom, with ring-payload merging: duplicate
/// tuples within an atom are pre-summed on insertion and deltas whose
/// merged payload is zero are dropped. `size()` counts the surviving
/// merged deltas, not the raw insertions.
template <RingType R>
class DeltaBatch {
 public:
  using RV = typename R::Value;
  using Map = DenseMap<Tuple, RV, TupleHash, TupleEq>;
  using Entry = typename Map::Entry;

  DeltaBatch() = default;
  explicit DeltaBatch(size_t num_atoms) : per_atom_(num_atoms) {}

  /// Merges one single-tuple delta into the batch.
  void Add(size_t atom, const Tuple& t, const RV& d) {
    if (R::IsZero(d)) return;
    if (atom >= per_atom_.size()) per_atom_.resize(atom + 1);
    Map& m = per_atom_[atom];
    RV* existing = m.Find(t);
    if (existing == nullptr) {
      m.GetOrInsert(t, d);
      ++size_;
      return;
    }
    *existing = R::Add(*existing, d);
    if (R::IsZero(*existing)) {
      m.Erase(t);
      --size_;
    }
  }

  void Add(const AtomDelta<R>& e) { Add(e.atom, e.tuple, e.delta); }

  void AddAll(std::span<const AtomDelta<R>> batch) {
    for (const AtomDelta<R>& e : batch) Add(e);
  }

  /// Number of atom groups (>= highest atom id added + 1).
  size_t num_atoms() const { return per_atom_.size(); }

  /// Total number of merged, non-zero deltas across all atoms.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The merged deltas of one atom (empty map if none were added).
  const Map& of(size_t atom) const {
    static const Map kEmpty;
    return atom < per_atom_.size() ? per_atom_[atom] : kEmpty;
  }

  /// The merged deltas of one atom as a contiguous span of entries.
  std::span<const Entry> entries(size_t atom) const {
    const Map& m = of(atom);
    return {m.begin(), m.size()};
  }

  void Clear() {
    for (Map& m : per_atom_) m.clear();
    size_ = 0;
  }

  /// Merges every delta of `other` into this batch (ring addition on
  /// duplicates, zero results dropped). Together with per-chunk local
  /// batches this gives a parallel batch merge: partition the input into
  /// contiguous chunks, build one DeltaBatch per chunk concurrently, then
  /// MergeFrom the chunks in input order — per (atom, tuple) the additions
  /// happen in original input order, so the result is identical to a
  /// sequential merge even for non-associative float payloads.
  void MergeFrom(const DeltaBatch& other) {
    for (size_t a = 0; a < other.num_atoms(); ++a) {
      for (const Entry& e : other.of(a)) Add(a, e.key, e.value);
    }
  }

 private:
  std::vector<Map> per_atom_;
  size_t size_ = 0;
};

/// A hash partition of one atom's merged deltas into per-shard sub-batches —
/// the unit of parallelism for shard-parallel ApplyBatch. Two partitioning
/// modes:
///
///   * ByKey: shard by the hash of a projection of each tuple (the columns
///     feeding the target node's group-by key). Shards then touch disjoint
///     keys of the target, so they can be applied lock-free in parallel;
///     within a shard, tuples keep their input order (stable partition), so
///     per-key processing order is the sequential order restricted to the
///     shard — the determinism argument of DESIGN.md.
///   * ByRange: contiguous chunks of the input in order (zero-copy spans).
///     The fallback when the source does not determine the node key; each
///     chunk's results are accumulated shard-locally and merged via R::Add.
///
/// Shard count is a caller-fixed constant independent of thread count —
/// results must never depend on how many threads execute the shards.
template <RingType R>
class DeltaShards {
 public:
  using Entry = typename DeltaBatch<R>::Entry;

  /// Stable hash partition: entry e goes to shard
  /// ShardOfHash(HashSpan64(e.key[proj[0]], .., e.key[proj[k-1]]), n).
  /// An empty projection sends every entry to one shard (hash of the empty
  /// span is a constant) — degenerate but correct.
  static DeltaShards ByKey(std::span<const Entry> entries,
                           std::span<const uint32_t> proj, size_t n) {
    DeltaShards out;
    out.owned_.resize(n);
    Tuple key;
    for (const Entry& e : entries) {
      key.clear();
      for (uint32_t c : proj) key.push_back(e.key[c]);
      uint64_t h = HashSpan64(reinterpret_cast<const uint64_t*>(key.data()),
                              key.size());
      out.owned_[ShardOfHash(h, n)].push_back(e);
    }
    out.spans_.reserve(n);
    for (const auto& shard : out.owned_) {
      out.spans_.emplace_back(shard.data(), shard.size());
    }
    return out;
  }

  /// Contiguous chunking: n spans covering `entries` in order (some may be
  /// empty when the input is smaller than the shard count).
  static DeltaShards ByRange(std::span<const Entry> entries, size_t n) {
    DeltaShards out;
    out.spans_.reserve(n);
    size_t per = entries.size() / n;
    size_t extra = entries.size() % n;
    size_t begin = 0;
    for (size_t s = 0; s < n; ++s) {
      size_t len = per + (s < extra ? 1 : 0);
      out.spans_.push_back(entries.subspan(begin, len));
      begin += len;
    }
    return out;
  }

  size_t num_shards() const { return spans_.size(); }
  std::span<const Entry> shard(size_t s) const { return spans_[s]; }

 private:
  std::vector<std::vector<Entry>> owned_;  // backing storage (ByKey only)
  std::vector<std::span<const Entry>> spans_;
};

}  // namespace incr

#endif  // INCR_DATA_DELTA_H_
