// GroupedIndex: for a relation over schema S and a key subset K of S, an
// index that, given a key tuple over K, enumerates with constant delay all
// relation tuples agreeing with it, and supports amortized-constant insert
// and delete of index entries — the index structure required by paper §2.
//
// Implementation: key -> dense vector of member tuples, plus a position map
// (full tuple -> offset in its group) so deletion is a swap-remove.
#ifndef INCR_DATA_GROUPED_INDEX_H_
#define INCR_DATA_GROUPED_INDEX_H_

#include <vector>

#include "incr/data/dense_map.h"
#include "incr/data/schema.h"
#include "incr/data/tuple.h"

namespace incr {

class GroupedIndex {
 public:
  /// `base` is the indexed relation's schema, `key` the grouping columns
  /// (each must occur in `base`).
  GroupedIndex(const Schema& base, const Schema& key)
      : key_schema_(key), key_positions_(ProjectionPositions(base, key)) {}

  const Schema& key_schema() const { return key_schema_; }

  /// The group key of a full tuple.
  Tuple KeyOf(const Tuple& t) const { return ProjectTuple(t, key_positions_); }

  /// Adds `t` to its group. Must not already be present.
  void Insert(const Tuple& t) {
    auto& group = groups_.GetOrInsert(KeyOf(t));
    positions_.GetOrInsert(t) = static_cast<uint32_t>(group.size());
    group.push_back(t);
  }

  /// Removes `t` from its group. Returns true if it was present.
  bool Erase(const Tuple& t) {
    uint32_t* pos = positions_.Find(t);
    if (pos == nullptr) return false;
    Tuple key = KeyOf(t);
    std::vector<Tuple>* group = groups_.Find(key);
    INCR_DCHECK(group != nullptr);
    uint32_t idx = *pos;
    uint32_t last = static_cast<uint32_t>(group->size()) - 1;
    if (idx != last) {
      (*group)[idx] = std::move((*group)[last]);
      *positions_.Find((*group)[idx]) = idx;
    }
    group->pop_back();
    positions_.Erase(t);
    if (group->empty()) groups_.Erase(key);
    return true;
  }

  /// The tuples in the group of `key`; nullptr if the group is empty.
  /// The pointer is invalidated by any mutation of the index.
  const std::vector<Tuple>* Group(const Tuple& key) const {
    return groups_.Find(key);
  }

  /// Number of tuples in the group of `key` (its degree).
  size_t GroupSize(const Tuple& key) const {
    const auto* g = groups_.Find(key);
    return g == nullptr ? 0 : g->size();
  }

  /// Number of distinct non-empty groups.
  size_t NumGroups() const { return groups_.size(); }

  /// Total number of indexed tuples.
  size_t NumEntries() const { return positions_.size(); }

  /// Constant-delay iteration over the distinct group keys.
  const DenseMap<Tuple, std::vector<Tuple>, TupleHash, TupleEq>& groups()
      const {
    return groups_;
  }

  /// Pre-sizes the position map for `n` total entries (bulk insertion).
  /// Group vectors grow on demand; the position map is the rehash hotspot.
  void Reserve(size_t n) { positions_.Reserve(n); }

  void Clear() {
    groups_.clear();
    positions_.clear();
  }

  /// Approximate heap footprint in bytes (group vectors counted by
  /// capacity; tuple spill allocations are not).
  size_t MemoryBytes() const {
    size_t n = groups_.MemoryBytes() + positions_.MemoryBytes();
    for (const auto& e : groups_) n += e.value.capacity() * sizeof(Tuple);
    return n;
  }

 private:
  Schema key_schema_;
  SmallVector<uint32_t, 4> key_positions_;
  DenseMap<Tuple, std::vector<Tuple>, TupleHash, TupleEq> groups_;
  DenseMap<Tuple, uint32_t, TupleHash, TupleEq> positions_;
};

}  // namespace incr

#endif  // INCR_DATA_GROUPED_INDEX_H_
