#include "incr/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numbers>

#include "incr/util/stats.h"
#include "incr/version.h"

namespace incr::obs {

#ifndef INCR_OBS_DISABLED
namespace internal {
namespace {
bool EnabledFromEnv() {
  const char* v = std::getenv("INCR_OBS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0 || std::strcmp(v, "OFF") == 0);
}
}  // namespace

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}
}  // namespace internal
#endif

size_t ThreadSlot() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  static_assert((kStripes & (kStripes - 1)) == 0, "kStripes power of two");
  return slot & (kStripes - 1);
}

void Histogram::Record(uint64_t v) {
  Cell& c = cells_[ThreadSlot()];
  c.buckets[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(v, std::memory_order_relaxed);
  // Relaxed CAS loops; bounded because min/max move monotonically.
  uint64_t cur = c.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !c.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = c.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !c.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramStats Histogram::Stats() const {
  HistogramStats s;
  uint64_t min = UINT64_MAX;
  for (const auto& c : cells_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      uint64_t n = c.buckets[b].load(std::memory_order_relaxed);
      s.buckets[b] += n;
      s.count += n;
    }
    s.sum += c.sum.load(std::memory_order_relaxed);
    min = std::min(min, c.min.load(std::memory_order_relaxed));
    s.max = std::max(s.max, c.max.load(std::memory_order_relaxed));
  }
  s.min = (s.count == 0) ? 0 : min;
  return s;
}

void Histogram::Reset() {
  for (auto& c : cells_) {
    for (auto& b : c.buckets) b.store(0, std::memory_order_relaxed);
    c.sum.store(0, std::memory_order_relaxed);
    c.min.store(UINT64_MAX, std::memory_order_relaxed);
    c.max.store(0, std::memory_order_relaxed);
  }
}

double HistogramStats::Quantile(double p) const {
  if (count == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min);
  if (p >= 100.0) return static_cast<double>(max);
  // Walk buckets until we pass the same nearest-rank index Percentile
  // would select on the raw samples.
  const size_t rank = NearestRank(count, p);
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) {
      if (b == 0) return 0.0;
      // Bucket b holds [2^(b-1), 2^b - 1]; report the geometric midpoint,
      // clamped to the observed range.
      double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      double rep = lo * std::numbers::sqrt2;
      rep = std::max(rep, static_cast<double>(min));
      rep = std::min(rep, static_cast<double>(max));
      return rep;
    }
  }
  return static_cast<double>(max);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed
  return *g;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

StatsSnapshot MetricsRegistry::Snapshot() const {
  StatsSnapshot s;
  s.build_json = BuildInfoJson();
  std::lock_guard<std::mutex> lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->Value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->Value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) s.histograms.emplace_back(name, h->Stats());
  return s;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
}  // namespace

std::string StatsSnapshot::ToJson() const {
  std::string out = "{\"build\": " + build_json;
  out += ", \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(counters[i].first) +
           "\": " + std::to_string(counters[i].second);
  }
  out += "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(gauges[i].first) +
           "\": " + std::to_string(gauges[i].second);
  }
  out += "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out += ", ";
    const auto& [name, h] = histograms[i];
    out += "\"" + JsonEscape(name) + "\": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"min\": " + std::to_string(h.min);
    out += ", \"max\": " + std::to_string(h.max);
    out += ", \"mean\": " + FmtDouble(h.Mean());
    out += ", \"p50\": " + FmtDouble(h.Quantile(50));
    out += ", \"p90\": " + FmtDouble(h.Quantile(90));
    out += ", \"p99\": " + FmtDouble(h.Quantile(99));
    out += "}";
  }
  out += "}}";
  return out;
}

std::string StatsSnapshot::ToText() const {
  std::string out;
  char buf[256];
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : counters) {
      std::snprintf(buf, sizeof(buf), "  %-44s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += buf;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, v] : gauges) {
      std::snprintf(buf, sizeof(buf), "  %-44s %12lld\n", name.c_str(),
                    static_cast<long long>(v));
      out += buf;
    }
  }
  if (!histograms.empty()) {
    out += "histograms:                                     "
           "       count         mean          p50          p99          max\n";
    for (const auto& [name, h] : histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-44s %12llu %12.4g %12.4g %12.4g %12llu\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    h.Mean(), h.Quantile(50), h.Quantile(99),
                    static_cast<unsigned long long>(h.max));
      out += buf;
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

}  // namespace incr::obs
