#include "incr/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "incr/version.h"

namespace incr::obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
uint32_t LocalTid() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t tid = next.fetch_add(1);
  return tid;
}
}  // namespace

Tracer& Tracer::Global() {
  static Tracer* g = new Tracer();  // never destroyed
  return *g;
}

Tracer::Tracer() {
  // INCR_TRACE=<path> starts a session immediately and flushes it at
  // process exit, so one env var is enough to trace any binary.
  const char* path = std::getenv("INCR_TRACE");
  if (path != nullptr && path[0] != '\0' && Enabled()) {
    std::atexit([] { Tracer::Global().StopSession(); });
    StartSession(path);
  }
}

Tracer::Buffer& Tracer::LocalBuffer() {
  thread_local std::shared_ptr<Buffer> local;
  if (!local) {
    local = std::make_shared<Buffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(local);
  }
  return *local;
}

bool Tracer::StartSession(const std::string& path) {
  if (!Enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (active_.load(std::memory_order_relaxed)) return false;
  path_ = path;
  // Drop anything buffered after the previous session stopped.
  for (auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
  }
  active_.store(true, std::memory_order_relaxed);
  return true;
}

bool Tracer::StopSession() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_.load(std::memory_order_relaxed)) return false;
  // Stop recording first so in-flight spans closing during the merge are
  // dropped rather than racing the drain.
  active_.store(false, std::memory_order_relaxed);

  std::vector<Event> all;
  for (auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    all.insert(all.end(), std::make_move_iterator(b->events.begin()),
               std::make_move_iterator(b->events.end()));
    b->events.clear();
  }
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.start_ns < b.start_ns;
  });

  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"traceEvents\": [\n");
  for (size_t i = 0; i < all.size(); ++i) {
    const Event& e = all[i];
    // Chrome expects ts/dur in microseconds; fractional values keep the
    // nanosecond resolution.
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                 "\"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                 JsonEscape(e.name).c_str(),
                 static_cast<double>(e.start_ns) / 1000.0,
                 static_cast<double>(e.dur_ns) / 1000.0, e.tid);
    if (!e.args_json.empty()) {
      std::fprintf(f, ", \"args\": {%s}", e.args_json.c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "], \"displayTimeUnit\": \"ms\", \"otherData\": %s}\n",
               BuildInfoJson().c_str());
  std::fclose(f);
  return true;
}

void Tracer::EmitComplete(const char* name, uint64_t start_ns,
                          uint64_t dur_ns, std::string args_json) {
  if (!Active()) return;  // session ended while the span was open
  Buffer& b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b.mu);
  b.events.push_back(
      Event{name, start_ns, dur_ns, LocalTid(), std::move(args_json)});
}

}  // namespace incr::obs
