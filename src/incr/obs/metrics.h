// Process-wide metrics registry for the IVM pipeline: named counters,
// gauges, and log-bucketed latency histograms (see DESIGN.md §obs).
//
// Hot-path writes are contention-free: every metric is striped across
// kStripes cache-line-aligned cells, and each thread picks a fixed stripe
// once (ThreadSlot), so concurrent Add/Record calls from different threads
// touch different cache lines and never loop on a shared location. All
// cells are relaxed atomics — the merge on read (Value/Stats/Snapshot) is a
// sum over stripes, which tolerates torn *sets* of counters (a snapshot
// taken mid-update is simply a valid earlier-or-later total). This keeps
// the hooks TSan-clean without any locks on the write side.
//
// Toggles, layered:
//   - compile time: configure with -DINCR_OBS=OFF (defines
//     INCR_OBS_DISABLED) and Enabled() folds to constant false, so every
//     `if (obs::Enabled())` hook is dead code.
//   - run time: INCR_OBS=off|0|false in the environment, or SetEnabled().
// Registration (GetCounter etc.) stays available in both modes so callers
// can cache handles unconditionally; only recording is gated.
#ifndef INCR_OBS_METRICS_H_
#define INCR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace incr::obs {

// Number of stripes per metric. Power of two; threads beyond this many
// share stripes (still correct, slightly more contention).
inline constexpr size_t kStripes = 32;

#ifdef INCR_OBS_DISABLED
inline constexpr bool kObsCompiledIn = false;
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
inline constexpr bool kObsCompiledIn = true;
namespace internal {
std::atomic<bool>& EnabledFlag();
}  // namespace internal
/// True when metric/trace hooks should record. Initialized once from the
/// INCR_OBS environment variable ("off"/"0"/"false" disable); flip at run
/// time with SetEnabled. A single relaxed load — cheap enough to guard
/// every hook.
inline bool Enabled() {
  return internal::EnabledFlag().load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::EnabledFlag().store(on, std::memory_order_relaxed);
}
#endif

/// Stripe index for the calling thread: assigned once per thread from a
/// global counter, folded into [0, kStripes). Stable for the thread's
/// lifetime and never reused concurrently, so two live threads only share
/// a stripe when more than kStripes threads exist.
size_t ThreadSlot();

/// Monotonic counter. Add/Inc are wait-free relaxed increments on the
/// caller's stripe; Value() sums all stripes.
class Counter {
 public:
  void Add(uint64_t n) {
    cells_[ThreadSlot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Last-writer-wins instantaneous value (shard count, thread count,
/// view cardinality). Not striped: sets are rare.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

// Histograms bucket by bit width: value v lands in bucket bit_width(v),
// i.e. bucket 0 holds v=0 and bucket b>=1 holds v in [2^(b-1), 2^b - 1].
// 64-bit values need 65 buckets.
inline constexpr size_t kHistogramBuckets = 65;

/// Merged, immutable view of a Histogram at snapshot time.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Approximate p-th percentile: exact min/max at p<=0 / p>=100, otherwise
  /// the geometric midpoint of the bucket containing the nearest-rank
  /// sample (rank shared with incr::Percentile via incr::NearestRank).
  double Quantile(double p) const;
};

/// Log-bucketed histogram of non-negative 64-bit samples (latencies in ns,
/// sizes in tuples). Record is wait-free and allocation-free.
class Histogram {
 public:
  void Record(uint64_t v);
  HistogramStats Stats() const;
  void Reset();

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Point-in-time copy of every registered metric plus build provenance.
struct StatsSnapshot {
  std::string build_json;  // incr::BuildInfoJson() at snapshot time
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  /// One JSON object: {"build":{...},"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,mean,p50,p90,p99}}}.
  std::string ToJson() const;
  /// Human-readable listing for the REPL `stats` command.
  std::string ToText() const;
};

/// Owns every metric for the process. Get* registers on first use and
/// returns a pointer that stays valid for the program's lifetime, so hot
/// paths cache the handle once and never re-lock.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Merged copy of all metrics, names sorted. Zero-valued counters and
  /// empty histograms are included — presence documents the hook.
  StatsSnapshot Snapshot() const;

  /// Zeroes every metric (gauges too). Registration is preserved.
  void Reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  // std::map: stable pointers across inserts, names pre-sorted for
  // Snapshot. The mutex guards registration and snapshot only — never the
  // recording hot path.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes '"', '\' and control characters for embedding in JSON strings.
std::string JsonEscape(const std::string& s);

}  // namespace incr::obs

#endif  // INCR_OBS_METRICS_H_
