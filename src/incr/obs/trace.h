// Scoped-span tracing to Chrome trace_event JSON (load the output in
// chrome://tracing or https://ui.perfetto.dev). See DESIGN.md §obs for the
// span taxonomy.
//
// Usage:
//   obs::TraceSpan span("viewtree.apply_batch");
//   span.AddArg("deltas", n);
//   ... work ...   // span closes at scope exit
//
// Sessions are explicit: Tracer::Global().StartSession(path) begins
// recording, StopSession() merges every thread's buffer, sorts by start
// time, and writes the file. Setting INCR_TRACE=<path> in the environment
// starts a session at first use and flushes it at process exit. When no
// session is active (or obs is disabled) span construction is a pair of
// relaxed loads and records nothing.
#ifndef INCR_OBS_TRACE_H_
#define INCR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "incr/obs/metrics.h"

namespace incr::obs {

/// Monotonic clock in nanoseconds (steady_clock).
uint64_t NowNs();

class Tracer {
 public:
  static Tracer& Global();

  /// Begins a recording session writing to `path` on StopSession. Drops
  /// any events buffered since the previous session. Returns false (and
  /// does nothing) if a session is already active or obs is disabled.
  bool StartSession(const std::string& path);

  /// Ends the session: merges all per-thread buffers, sorts events by
  /// start time, writes Chrome trace_event JSON. Returns false when no
  /// session is active or the file cannot be written.
  bool StopSession();

  bool Active() const { return active_.load(std::memory_order_relaxed); }

  /// Appends one complete ("ph":"X") event from the calling thread.
  /// `args_json` is the inner body of the args object ("" for none).
  void EmitComplete(const char* name, uint64_t start_ns, uint64_t dur_ns,
                    std::string args_json);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();

  struct Event {
    std::string name;
    uint64_t start_ns;
    uint64_t dur_ns;
    uint32_t tid;
    std::string args_json;
  };
  // One buffer per thread, owned jointly by the thread (thread_local
  // shared_ptr) and the registry, so buffers survive thread exit until
  // the session flushes. The per-buffer mutex is only contended at
  // session boundaries.
  struct Buffer {
    std::mutex mu;
    std::vector<Event> events;
  };

  Buffer& LocalBuffer();

  std::atomic<bool> active_{false};
  std::mutex mu_;  // guards path_ and buffers_ registration
  std::string path_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

#ifdef INCR_OBS_DISABLED
/// Compile-time-disabled spans: everything folds away.
class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  void AddArg(const char*, uint64_t) {}
  void AddArg(const char*, const std::string&) {}
};
#else
/// RAII scoped span. Construction with no active session is two relaxed
/// loads; with a session it timestamps and the destructor appends one
/// complete event to the thread's buffer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!Enabled()) return;
    Tracer& t = Tracer::Global();
    if (!t.Active()) return;
    name_ = name;
    start_ns_ = NowNs();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::Global().EmitComplete(name_, start_ns_, NowNs() - start_ns_,
                                    std::move(args_));
    }
  }

  void AddArg(const char* key, uint64_t v) {
    if (name_ == nullptr) return;
    AppendKey(key);
    args_ += std::to_string(v);
  }
  void AddArg(const char* key, const std::string& v) {
    if (name_ == nullptr) return;
    AppendKey(key);
    args_ += "\"" + JsonEscape(v) + "\"";
  }

 private:
  void AppendKey(const char* key) {
    if (!args_.empty()) args_ += ", ";
    args_ += "\"";
    args_ += key;
    args_ += "\": ";
  }

  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  std::string args_;
};
#endif

}  // namespace incr::obs

#endif  // INCR_OBS_TRACE_H_
