#include "incr/engines/leapfrog.h"

#include <algorithm>

#include "incr/util/check.h"

namespace incr {

namespace {

// Position of v in `order`; relations' columns are sorted by this.
size_t OrderPos(const std::vector<Var>& order, Var v) {
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == v) return i;
  }
  INCR_CHECK(false);
  return 0;
}

}  // namespace

TrieRelation::TrieRelation(const Schema& schema,
                           const std::vector<Var>& var_order,
                           const Relation<IntRing>& rel) {
  // Reorder the schema by the global variable order.
  depth_vars_ = schema;
  std::sort(depth_vars_.begin(), depth_vars_.end(), [&](Var a, Var b) {
    return OrderPos(var_order, a) < OrderPos(var_order, b);
  });
  auto positions = ProjectionPositions(schema, depth_vars_);
  std::vector<std::pair<Tuple, int64_t>> rows;
  rows.reserve(rel.size());
  for (const auto& e : rel) {
    rows.emplace_back(ProjectTuple(e.key, positions), e.value);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  tuples_.reserve(rows.size());
  payloads_.reserve(rows.size());
  for (auto& [t, p] : rows) {
    tuples_.push_back(std::move(t));
    payloads_.push_back(p);
  }
}

namespace {

// Per-atom iterator state: the current tuple range [begin, end) agreeing
// with the values chosen so far, and the atom's current trie level.
struct AtomState {
  const TrieRelation* trie;
  size_t begin = 0;
  size_t end = 0;
  size_t level = 0;  // next trie level to bind
};

// Within [st.begin, st.end) at level st.level, the subrange whose value at
// that level is >= v starts at:
size_t SeekLower(const AtomState& st, Value v) {
  const auto& tuples = st.trie->tuples();
  size_t lo = st.begin, hi = st.end;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (tuples[mid][st.level] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t SeekUpper(const AtomState& st, Value v) {
  const auto& tuples = st.trie->tuples();
  size_t lo = st.begin, hi = st.end;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (tuples[mid][st.level] <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

struct Frame {
  size_t atom;
  size_t saved_begin, saved_end, saved_level;
};

class Leapfrog {
 public:
  Leapfrog(const Query& q, const std::vector<const Relation<IntRing>*>& rels,
           const std::vector<Var>& order,
           const std::function<void(const Tuple&, int64_t)>& sink)
      : order_(order), sink_(sink) {
    tries_.reserve(q.atoms().size());
    for (size_t a = 0; a < q.atoms().size(); ++a) {
      tries_.emplace_back(q.atoms()[a].schema, order, *rels[a]);
    }
    states_.resize(tries_.size());
    for (size_t a = 0; a < tries_.size(); ++a) {
      states_[a].trie = &tries_[a];
      states_[a].end = tries_[a].tuples().size();
    }
    // Atoms participating at each depth.
    at_depth_.resize(order.size());
    for (size_t a = 0; a < tries_.size(); ++a) {
      for (size_t d = 0; d < tries_[a].depth(); ++d) {
        at_depth_[OrderPos(order, tries_[a].var_at(d))].push_back(a);
      }
    }
    assign_.resize(order.size(), 0);
  }

  int64_t Run() {
    Recurse(0, 1);
    return total_;
  }

 private:
  void Recurse(size_t depth, int64_t acc) {
    if (depth == order_.size()) {
      total_ += acc;
      if (sink_) sink_(assign_, acc);
      return;
    }
    const auto& atoms = at_depth_[depth];
    if (atoms.empty()) {
      // Variable not in any atom (cannot happen for safe queries).
      Recurse(depth + 1, acc);
      return;
    }
    // Save the entry state of every participating atom; restored at exit.
    std::vector<Frame> entry;
    entry.reserve(atoms.size());
    for (size_t a : atoms) {
      entry.push_back(
          Frame{a, states_[a].begin, states_[a].end, states_[a].level});
    }
    // Iterate the leapfrog intersection of the atoms' value lists.
    for (;;) {
      bool exhausted = false;
      for (size_t a : atoms) {
        if (states_[a].begin >= states_[a].end) {
          exhausted = true;
          break;
        }
      }
      if (exhausted) break;
      Value v = states_[atoms[0]].trie->tuples()[states_[atoms[0]].begin]
                                                [states_[atoms[0]].level];
      size_t agree = 1;  // consecutive atoms agreeing on v
      size_t i = 1 % atoms.size();
      while (agree < atoms.size()) {
        AtomState& st = states_[atoms[i]];
        size_t pos = SeekLower(st, v);
        if (pos >= st.end) {
          exhausted = true;
          break;
        }
        Value found = st.trie->tuples()[pos][st.level];
        if (found == v) {
          ++agree;
        } else {
          v = found;
          agree = 1;
        }
        st.begin = pos;  // permanent narrowing is fine: values only grow
        i = (i + 1) % atoms.size();
      }
      if (exhausted) break;
      // All atoms agree on v: bind it, narrow to v's subranges, recurse.
      assign_[depth] = v;
      std::vector<Frame> frames;
      frames.reserve(atoms.size());
      int64_t next_acc = acc;
      for (size_t a : atoms) {
        AtomState& st = states_[a];
        frames.push_back(Frame{a, st.begin, st.end, st.level});
        size_t lo = SeekLower(st, v);
        size_t hi = SeekUpper(st, v);
        st.begin = lo;
        st.end = hi;
        ++st.level;
        if (st.level == st.trie->depth()) {
          // Atom fully bound: unique key => single tuple.
          next_acc *= st.trie->payload(lo);
        }
      }
      Recurse(depth + 1, next_acc);
      // Restore ends/levels and advance past v.
      for (const Frame& f : frames) {
        AtomState& st = states_[f.atom];
        st.end = f.saved_end;
        st.level = f.saved_level;
        st.begin = SeekUpper(st, v);  // skip v at this level
      }
    }
    for (const Frame& f : entry) {
      states_[f.atom].begin = f.saved_begin;
      states_[f.atom].end = f.saved_end;
      states_[f.atom].level = f.saved_level;
    }
  }

  const std::vector<Var>& order_;
  const std::function<void(const Tuple&, int64_t)>& sink_;
  std::vector<TrieRelation> tries_;
  std::vector<AtomState> states_;
  std::vector<std::vector<size_t>> at_depth_;
  Tuple assign_;
  int64_t total_ = 0;
};

}  // namespace

int64_t LeapfrogJoin(
    const Query& q, const std::vector<const Relation<IntRing>*>& rels,
    const std::vector<Var>& var_order,
    const std::function<void(const Tuple&, int64_t)>& sink) {
  INCR_CHECK(rels.size() == q.atoms().size());
  for (const Atom& a : q.atoms()) {
    INCR_CHECK(a.schema.size() > 0);
    for (Var v : a.schema) {
      bool found = false;
      for (Var o : var_order) found = found || o == v;
      INCR_CHECK(found);
    }
  }
  Leapfrog lf(q, rels, var_order, sink);
  return lf.Run();
}

int64_t LeapfrogCount(const Query& q,
                      const std::vector<const Relation<IntRing>*>& rels,
                      const std::vector<Var>& var_order) {
  return LeapfrogJoin(q, rels, var_order, nullptr);
}

}  // namespace incr
