// From-scratch query evaluation: the oracle the property tests compare
// incremental engines against, and the recomputation core of the lazy-list
// strategy (paper §4.1, Fig. 4) and of the naive baselines.
//
// EvaluateQuery computes Q(free) = SUM_bound PROD_i R_i(S_i) by backtracking
// over the atoms with index-accelerated probes: at each atom, columns bound
// by the current partial assignment are used as a hash probe when possible.
// This is not worst-case optimal, but it is exact and fast enough to serve
// as ground truth and as the lazy recomputation baseline.
#ifndef INCR_ENGINES_JOIN_H_
#define INCR_ENGINES_JOIN_H_

#include <functional>
#include <map>
#include <vector>

#include "incr/data/relation.h"
#include "incr/query/query.h"
#include "incr/ring/ring.h"
#include "incr/util/check.h"

namespace incr {

/// Optional lifting functions by variable; applied when the variable is
/// aggregated away (i.e. not free in the query).
template <RingType R>
using LiftMap = std::map<Var, std::function<typename R::Value(Value)>>;

/// Evaluates `q` over the given atom relations (parallel to q.atoms()).
/// Returns the output relation over schema q.free().
template <RingType R>
Relation<R> EvaluateQuery(const Query& q,
                          const std::vector<const Relation<R>*>& rels,
                          const LiftMap<R>* lifts = nullptr) {
  using RV = typename R::Value;
  INCR_CHECK(rels.size() == q.atoms().size());
  Relation<R> out(q.free());

  Schema all = q.AllVars();
  std::vector<Value> assign(all.size(), 0);
  std::vector<bool> known(all.size(), false);
  auto pos_of = [&](Var v) {
    auto p = FindVar(all, v);
    INCR_CHECK(p.has_value());
    return *p;
  };

  SmallVector<uint32_t, 4> free_pos;
  for (Var v : q.free()) free_pos.push_back(pos_of(v));
  SmallVector<uint32_t, 4> lifted_pos;
  std::vector<std::function<RV(Value)>> lifted_fns;
  if (lifts != nullptr) {
    for (const auto& [v, fn] : *lifts) {
      if (!q.IsFree(v) && SchemaContains(all, v)) {
        lifted_pos.push_back(pos_of(v));
        lifted_fns.push_back(fn);
      }
    }
  }

  // Backtracking over atoms in the given order.
  std::function<void(size_t, RV)> recurse = [&](size_t ai, RV acc) {
    if (R::IsZero(acc)) return;
    if (ai == q.atoms().size()) {
      for (size_t i = 0; i < lifted_pos.size(); ++i) {
        acc = R::Mul(acc, lifted_fns[i](assign[lifted_pos[i]]));
      }
      Tuple key;
      key.reserve(free_pos.size());
      for (uint32_t p : free_pos) key.push_back(assign[p]);
      out.Apply(key, acc);
      return;
    }
    const Schema& s = q.atoms()[ai].schema;
    const Relation<R>& rel = *rels[ai];
    // Fully bound: single lookup.
    bool full = true;
    for (Var v : s) full = full && known[pos_of(v)];
    if (full) {
      Tuple probe;
      probe.reserve(s.size());
      for (Var v : s) probe.push_back(assign[pos_of(v)]);
      recurse(ai + 1, R::Mul(acc, rel.Payload(probe)));
      return;
    }
    // Scan and filter (oracle simplicity over speed).
    SmallVector<uint32_t, 4> positions;
    for (Var v : s) positions.push_back(static_cast<uint32_t>(pos_of(v)));
    for (const auto& e : rel) {
      bool match = true;
      for (size_t c = 0; c < s.size(); ++c) {
        if (known[positions[c]] && assign[positions[c]] != e.key[c]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      SmallVector<uint32_t, 4> newly;
      for (size_t c = 0; c < s.size(); ++c) {
        if (!known[positions[c]]) {
          known[positions[c]] = true;
          assign[positions[c]] = e.key[c];
          newly.push_back(positions[c]);
        }
      }
      recurse(ai + 1, R::Mul(acc, e.value));
      for (uint32_t p : newly) known[p] = false;
    }
  };
  recurse(0, R::One());
  return out;
}

}  // namespace incr

#endif  // INCR_ENGINES_JOIN_H_
