#include "incr/engines/engine_options.h"

#include <cstdio>
#include <cstdlib>

namespace incr {

namespace {

// Parses a non-negative integer environment value in [min, max]. Returns
// false (leaving *out untouched) with a stderr warning when the variable is
// malformed or out of range — the caller keeps its default.
bool ParseEnvInt(const char* name, const char* value, long long min,
                 long long max, long long* out) {
  char* end = nullptr;
  long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "incr: ignoring %s='%s' (not an integer)\n", name,
                 value);
    return false;
  }
  if (v < min || v > max) {
    std::fprintf(stderr,
                 "incr: ignoring %s=%lld (outside [%lld, %lld])\n", name, v,
                 min, max);
    return false;
  }
  *out = v;
  return true;
}

bool EnvFlagOff(const char* value) {
  std::string v(value);
  return v == "off" || v == "0" || v == "false";
}

}  // namespace

EngineOptions EngineOptions::FromEnv() {
  EngineOptions opts;
  long long v = 0;
  if (const char* env = std::getenv("INCR_THREADS")) {
    if (ParseEnvInt("INCR_THREADS", env, 0,
                    static_cast<long long>(kMaxThreads), &v)) {
      opts.threads = static_cast<size_t>(v);
    }
  }
  if (const char* env = std::getenv("INCR_SHARDS")) {
    if (ParseEnvInt("INCR_SHARDS", env, 1,
                    static_cast<long long>(kMaxShards), &v)) {
      opts.shards = static_cast<size_t>(v);
    }
  }
  if (const char* env = std::getenv("INCR_MORSEL_BYTES")) {
    if (ParseEnvInt("INCR_MORSEL_BYTES", env, 0,
                    static_cast<long long>(kMaxMorselBytes), &v)) {
      opts.morsel_bytes = static_cast<size_t>(v);
    }
  }
  if (const char* env = std::getenv("INCR_OBS")) {
    opts.obs = !EnvFlagOff(env);
  }
  if (const char* env = std::getenv("INCR_FSYNC")) {
    opts.fsync = !EnvFlagOff(env);
  }
  if (const char* env = std::getenv("INCR_WAL_BUFFER_BYTES")) {
    if (ParseEnvInt("INCR_WAL_BUFFER_BYTES", env, 1,
                    static_cast<long long>(kMaxWalBufferBytes), &v)) {
      opts.wal_buffer_bytes = static_cast<size_t>(v);
    }
  }
  if (const char* env = std::getenv("INCR_GROUP_COMMIT_US")) {
    if (ParseEnvInt("INCR_GROUP_COMMIT_US", env, 0,
                    static_cast<long long>(kMaxGroupCommitUs), &v)) {
      opts.group_commit_window_us = static_cast<uint32_t>(v);
    }
  }
  if (const char* env = std::getenv("INCR_SNAPSHOT_READS")) {
    opts.snapshot_reads = !EnvFlagOff(env);
  }
  if (const char* env = std::getenv("INCR_MAX_RETAINED_EPOCHS")) {
    if (ParseEnvInt("INCR_MAX_RETAINED_EPOCHS", env, 2,
                    static_cast<long long>(kMaxRetainedEpochs), &v)) {
      opts.max_retained_epochs = static_cast<size_t>(v);
    }
  }
  return opts;
}

}  // namespace incr
