// IvmEngine<R>: the unified maintenance-engine interface.
//
// Every maintenance engine in the library — the four Fig. 4 strategies,
// the mixed static/dynamic engine (§4.5), the shattered small-domain
// engine (§4.4), the cascade engine (§4.2), the CQAP access engine (§4.3)
// and the insert-only engine (§4.6) — implements this interface, so
// benches, examples, and the REPL can drive any of them uniformly:
//
//   * Update(rel, t, d): a single-tuple delta, routed by relation name to
//     every atom occurrence (realizing the product rule for self-joins);
//   * ApplyBatch(deltas): a batch of named deltas; the default forwards
//     tuple-at-a-time, engines with a bulk path (node-at-a-time view-tree
//     propagation) override it;
//   * Enumerate(sink): the engine's primary output. Engines that only
//     maintain an aggregate, or that need per-request inputs (CQAP access
//     requests), return 0 and expose their richer native calls alongside.
#ifndef INCR_ENGINES_ENGINE_H_
#define INCR_ENGINES_ENGINE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "incr/core/view_tree.h"
#include "incr/data/delta.h"
#include "incr/query/query.h"
#include "incr/ring/ring.h"
#include "incr/util/thread_pool.h"

namespace incr {

/// Calls `fn(atom_id)` for every atom of relation `rel`; returns how many
/// matched. The single name-to-atom routing helper every engine shares.
template <typename Fn>
size_t ForEachAtomNamed(const Query& q, const std::string& rel, Fn&& fn) {
  size_t matched = 0;
  for (size_t a = 0; a < q.atoms().size(); ++a) {
    if (q.atoms()[a].relation == rel) {
      fn(a);
      ++matched;
    }
  }
  return matched;
}

/// Merges a named-delta batch into an atom-addressed DeltaBatch, fanning
/// each delta out to every atom occurrence of its relation (the product
/// rule for self-joins). When `tree` runs parallel, the merge itself is
/// parallel too: the input is cut into a fixed number of contiguous chunks,
/// each chunk builds a thread-local DeltaBatch, and the chunks merge in
/// input order — per (atom, tuple) the ring additions still happen in input
/// order, so the result is identical to a sequential merge.
template <RingType R>
DeltaBatch<R> MergeNamedBatch(const ViewTree<R>& tree,
                              std::span<const Delta<R>> batch) {
  const Query& q = tree.query();
  DeltaBatch<R> merged(q.atoms().size());
  auto add_range = [&](DeltaBatch<R>* out, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Delta<R>& e = batch[i];
      size_t n = ForEachAtomNamed(
          q, e.relation, [&](size_t a) { out->Add(a, e.tuple, e.delta); });
      INCR_CHECK(n > 0);
    }
  };
  ThreadPool* pool = tree.pool();
  constexpr size_t kChunks = ViewTree<R>::kDefaultDeltaShards;
  if (pool == nullptr || batch.size() < 2 * kChunks) {
    add_range(&merged, 0, batch.size());
    return merged;
  }
  std::vector<DeltaBatch<R>> locals(kChunks, DeltaBatch<R>(q.atoms().size()));
  size_t per = batch.size() / kChunks;
  size_t extra = batch.size() % kChunks;
  pool->ParallelFor(kChunks, [&](size_t c) {
    size_t begin = c * per + std::min(c, extra);
    size_t end = begin + per + (c < extra ? 1 : 0);
    add_range(&locals[c], begin, end);
  });
  for (const DeltaBatch<R>& local : locals) merged.MergeFrom(local);
  return merged;
}

template <RingType R>
class IvmEngine {
 public:
  using RV = typename R::Value;
  using Sink = std::function<void(const Tuple&, const RV&)>;
  using Batch = std::span<const Delta<R>>;

  virtual ~IvmEngine() = default;

  virtual const char* name() const = 0;

  /// Applies a single-tuple delta to every atom of relation `rel`.
  virtual void Update(const std::string& rel, const Tuple& t,
                      const RV& d) = 0;

  /// Applies a batch of deltas. Default: sequential per-tuple application;
  /// engines with a bulk path override this.
  virtual void ApplyBatch(Batch batch) {
    for (const Delta<R>& e : batch) Update(e.relation, e.tuple, e.delta);
  }

  /// Requests batch maintenance on `threads` threads (0 = the default from
  /// INCR_THREADS / hardware_concurrency; 1 = sequential). Results must not
  /// depend on the thread count. Default: ignored — engines without a bulk
  /// path have nothing to parallelize.
  virtual void SetThreads(size_t threads) { (void)threads; }

  /// Enumerates the engine's current output; returns the number of tuples.
  /// Pass a null sink to only count. Aggregate-only and per-request
  /// engines return 0 (their native calls expose the richer output).
  virtual size_t Enumerate(const Sink& sink) = 0;
};

/// The plainest engine: a bare view tree driven eagerly. Unlike
/// EagerFactStrategy it does not require an enumerable plan — Enumerate()
/// degrades to 0 for aggregate-only plans — which makes it the universal
/// fallback for drivers (the REPL uses it for non-hierarchical queries
/// maintained under a path order).
template <RingType R>
class ViewTreeEngine : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  using typename IvmEngine<R>::Sink;
  using typename IvmEngine<R>::Batch;

  explicit ViewTreeEngine(ViewTree<R> tree) : tree_(std::move(tree)) {}

  const char* name() const override { return "view-tree"; }

  void Update(const std::string& rel, const Tuple& t, const RV& d) override {
    tree_.Update(rel, t, d);
  }

  void ApplyBatch(Batch batch) override {
    tree_.ApplyBatch(MergeNamedBatch(tree_, batch));
  }

  void SetThreads(size_t threads) override { tree_.SetThreads(threads); }

  size_t Enumerate(const Sink& sink) override {
    if (!tree_.plan().CanEnumerate().ok()) return 0;
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(tree_); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

  ViewTree<R>& tree() { return tree_; }
  const ViewTree<R>& tree() const { return tree_; }

 private:
  ViewTree<R> tree_;
};

}  // namespace incr

#endif  // INCR_ENGINES_ENGINE_H_
