// IvmEngine<R>: the unified maintenance-engine interface.
//
// Every maintenance engine in the library — the four Fig. 4 strategies,
// the mixed static/dynamic engine (§4.5), the shattered small-domain
// engine (§4.4), the cascade engine (§4.2), the CQAP access engine (§4.3)
// and the insert-only engine (§4.6) — implements this interface, so
// benches, examples, and the REPL can drive any of them uniformly:
//
//   * Update(rel, t, d): a single-tuple delta, routed by relation name to
//     every atom occurrence (realizing the product rule for self-joins);
//   * ApplyBatch(deltas): a batch of named deltas; the default forwards
//     tuple-at-a-time, engines with a bulk path (node-at-a-time view-tree
//     propagation) override it;
//   * Enumerate(sink): the engine's primary output. Engines that only
//     maintain an aggregate, or that need per-request inputs (CQAP access
//     requests), return 0 and expose their richer native calls alongside.
#ifndef INCR_ENGINES_ENGINE_H_
#define INCR_ENGINES_ENGINE_H_

#include <functional>
#include <span>
#include <string>

#include "incr/core/view_tree.h"
#include "incr/data/delta.h"
#include "incr/query/query.h"
#include "incr/ring/ring.h"

namespace incr {

/// Calls `fn(atom_id)` for every atom of relation `rel`; returns how many
/// matched. The single name-to-atom routing helper every engine shares.
template <typename Fn>
size_t ForEachAtomNamed(const Query& q, const std::string& rel, Fn&& fn) {
  size_t matched = 0;
  for (size_t a = 0; a < q.atoms().size(); ++a) {
    if (q.atoms()[a].relation == rel) {
      fn(a);
      ++matched;
    }
  }
  return matched;
}

template <RingType R>
class IvmEngine {
 public:
  using RV = typename R::Value;
  using Sink = std::function<void(const Tuple&, const RV&)>;
  using Batch = std::span<const Delta<R>>;

  virtual ~IvmEngine() = default;

  virtual const char* name() const = 0;

  /// Applies a single-tuple delta to every atom of relation `rel`.
  virtual void Update(const std::string& rel, const Tuple& t,
                      const RV& d) = 0;

  /// Applies a batch of deltas. Default: sequential per-tuple application;
  /// engines with a bulk path override this.
  virtual void ApplyBatch(Batch batch) {
    for (const Delta<R>& e : batch) Update(e.relation, e.tuple, e.delta);
  }

  /// Enumerates the engine's current output; returns the number of tuples.
  /// Pass a null sink to only count. Aggregate-only and per-request
  /// engines return 0 (their native calls expose the richer output).
  virtual size_t Enumerate(const Sink& sink) = 0;
};

/// The plainest engine: a bare view tree driven eagerly. Unlike
/// EagerFactStrategy it does not require an enumerable plan — Enumerate()
/// degrades to 0 for aggregate-only plans — which makes it the universal
/// fallback for drivers (the REPL uses it for non-hierarchical queries
/// maintained under a path order).
template <RingType R>
class ViewTreeEngine : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  using typename IvmEngine<R>::Sink;
  using typename IvmEngine<R>::Batch;

  explicit ViewTreeEngine(ViewTree<R> tree) : tree_(std::move(tree)) {}

  const char* name() const override { return "view-tree"; }

  void Update(const std::string& rel, const Tuple& t, const RV& d) override {
    tree_.Update(rel, t, d);
  }

  void ApplyBatch(Batch batch) override {
    DeltaBatch<R> merged(tree_.query().atoms().size());
    for (const Delta<R>& e : batch) {
      size_t n = ForEachAtomNamed(tree_.query(), e.relation, [&](size_t a) {
        merged.Add(a, e.tuple, e.delta);
      });
      INCR_CHECK(n > 0);
    }
    tree_.ApplyBatch(merged);
  }

  size_t Enumerate(const Sink& sink) override {
    if (!tree_.plan().CanEnumerate().ok()) return 0;
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(tree_); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

  ViewTree<R>& tree() { return tree_; }
  const ViewTree<R>& tree() const { return tree_; }

 private:
  ViewTree<R> tree_;
};

}  // namespace incr

#endif  // INCR_ENGINES_ENGINE_H_
