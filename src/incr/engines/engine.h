// IvmEngine<R>: the unified maintenance-engine interface.
//
// Every maintenance engine in the library — the four Fig. 4 strategies,
// the mixed static/dynamic engine (§4.5), the shattered small-domain
// engine (§4.4), the cascade engine (§4.2), the CQAP access engine (§4.3)
// and the insert-only engine (§4.6) — implements this interface, so
// benches, examples, and the REPL can drive any of them uniformly:
//
//   * Update(rel, t, d): a single-tuple delta, routed by relation name to
//     every atom occurrence (realizing the product rule for self-joins);
//   * ApplyBatch(deltas): a batch of named deltas; the default forwards
//     tuple-at-a-time, engines with a bulk path (node-at-a-time view-tree
//     propagation) override it;
//   * Enumerate(sink): the engine's primary output. Engines that only
//     maintain an aggregate, or that need per-request inputs (CQAP access
//     requests), return 0 and expose their richer native calls alongside.
//
// The public entry points are non-virtual instrumented wrappers; engines
// implement the protected *Impl virtuals. With obs enabled, every engine
// gets a per-update latency histogram ("engine.<name>.update_ns"), batch
// latency and size ("engine.<name>.batch_ns" / ".batch_deltas"), and an
// enumeration-delay histogram ("engine.<name>.enum_delay_ns" — total
// enumeration time divided by tuples produced, the paper's constant-delay
// claim made measurable). With obs disabled each wrapper is one predicted
// branch in front of the virtual call.
#ifndef INCR_ENGINES_ENGINE_H_
#define INCR_ENGINES_ENGINE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "incr/core/view_tree.h"
#include "incr/data/delta.h"
#include "incr/engines/engine_options.h"
#include "incr/obs/metrics.h"
#include "incr/obs/trace.h"
#include "incr/query/query.h"
#include "incr/ring/ring.h"
#include "incr/store/serde.h"
#include "incr/util/status.h"
#include "incr/util/thread_pool.h"

namespace incr {

/// Calls `fn(atom_id)` for every atom of relation `rel`; returns how many
/// matched. The single name-to-atom routing helper every engine shares.
template <typename Fn>
size_t ForEachAtomNamed(const Query& q, const std::string& rel, Fn&& fn) {
  size_t matched = 0;
  for (size_t a = 0; a < q.atoms().size(); ++a) {
    if (q.atoms()[a].relation == rel) {
      fn(a);
      ++matched;
    }
  }
  return matched;
}

/// Merges a named-delta batch into an atom-addressed DeltaBatch, fanning
/// each delta out to every atom occurrence of its relation (the product
/// rule for self-joins). When `tree` runs parallel, the merge itself is
/// parallel too: the input is cut into a fixed number of contiguous chunks,
/// each chunk builds a thread-local DeltaBatch, and the chunks merge in
/// input order — per (atom, tuple) the ring additions still happen in input
/// order, so the result is identical to a sequential merge.
template <RingType R>
DeltaBatch<R> MergeNamedBatch(const ViewTree<R>& tree,
                              std::span<const Delta<R>> batch) {
  const Query& q = tree.query();
  DeltaBatch<R> merged(q.atoms().size());
  auto add_range = [&](DeltaBatch<R>* out, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Delta<R>& e = batch[i];
      size_t n = ForEachAtomNamed(
          q, e.relation, [&](size_t a) { out->Add(a, e.tuple, e.delta); });
      INCR_CHECK(n > 0);
    }
  };
  ThreadPool* pool = tree.pool();
  const size_t kChunks = ViewTree<R>::DefaultDeltaShards();
  if (pool == nullptr || batch.size() < 2 * kChunks) {
    add_range(&merged, 0, batch.size());
    return merged;
  }
  std::vector<DeltaBatch<R>> locals(kChunks, DeltaBatch<R>(q.atoms().size()));
  size_t per = batch.size() / kChunks;
  size_t extra = batch.size() % kChunks;
  pool->ParallelFor(kChunks, [&](size_t c) {
    size_t begin = c * per + std::min(c, extra);
    size_t end = begin + per + (c < extra ? 1 : 0);
    add_range(&locals[c], begin, end);
  });
  for (const DeltaBatch<R>& local : locals) merged.MergeFrom(local);
  return merged;
}

template <RingType R>
class IvmEngine {
 public:
  using RV = typename R::Value;
  using Sink = std::function<void(const Tuple&, const RV&)>;
  using Batch = std::span<const Delta<R>>;

  virtual ~IvmEngine() = default;

  // Movable, but the lazily-resolved metric handles (and their once_flag)
  // deliberately do not transfer: the destination re-resolves them on its
  // first instrumented call. Engines are only moved during construction,
  // before any concurrent use, so dropping the caches is safe.
  IvmEngine() = default;
  IvmEngine(IvmEngine&&) noexcept {}
  IvmEngine& operator=(IvmEngine&&) noexcept { return *this; }

  virtual const char* name() const = 0;

  /// Applies a single-tuple delta to every atom of relation `rel`.
  /// Instrumented facade over UpdateImpl: records the per-update latency
  /// histogram. No trace span — single updates are too fine-grained for
  /// span-per-call (the histogram carries the distribution instead).
  void Update(const std::string& rel, const Tuple& t, const RV& d) {
    if (!obs::Enabled()) {
      UpdateImpl(rel, t, d);
      return;
    }
    EnsureObsHandles();
    const uint64_t t0 = obs::NowNs();
    UpdateImpl(rel, t, d);
    update_ns_->Record(obs::NowNs() - t0);
  }

  /// Applies a batch of deltas (facade over ApplyBatchImpl): one trace
  /// span plus batch latency/size metrics per call.
  void ApplyBatch(Batch batch) {
    if (!obs::Enabled()) {
      ApplyBatchImpl(batch);
      return;
    }
    EnsureObsHandles();
    obs::TraceSpan span(batch_span_name_.c_str());
    span.AddArg("deltas", static_cast<uint64_t>(batch.size()));
    const uint64_t t0 = obs::NowNs();
    ApplyBatchImpl(batch);
    batch_ns_->Record(obs::NowNs() - t0);
    batch_deltas_->Add(batch.size());
  }

  /// Enumerates the engine's current output; returns the number of tuples.
  /// Pass a null sink to only count. Aggregate-only and per-request
  /// engines return 0 (their native calls expose the richer output).
  /// Facade over EnumerateImpl: records total time and per-tuple delay.
  size_t Enumerate(const Sink& sink) {
    if (!obs::Enabled()) return EnumerateImpl(sink);
    EnsureObsHandles();
    obs::TraceSpan span(enum_span_name_.c_str());
    const uint64_t t0 = obs::NowNs();
    size_t n = EnumerateImpl(sink);
    const uint64_t dur = obs::NowNs() - t0;
    enum_ns_->Record(dur);
    if (n > 0) enum_delay_ns_->Record(dur / n);
    span.AddArg("tuples", static_cast<uint64_t>(n));
    return n;
  }

  /// Enumerates a consistent snapshot of the engine's output; returns the
  /// number of tuples. Engines configured with snapshot_reads serve this
  /// from an epoch-pinned immutable version, so it is safe to call from
  /// any number of reader threads while ONE maintainer thread keeps
  /// applying updates. The default implementation falls back to exclusive
  /// EnumerateImpl — correct results, but callers must then synchronize
  /// externally as before. No trace span: this is the hot concurrent read
  /// path, and the histograms (thread-safe) carry the distribution.
  size_t EnumerateSnapshot(const Sink& sink) {
    if (!obs::Enabled()) return EnumerateSnapshotImpl(sink);
    EnsureObsHandles();
    const uint64_t t0 = obs::NowNs();
    size_t n = EnumerateSnapshotImpl(sink);
    const uint64_t dur = obs::NowNs() - t0;
    snapshot_enum_ns_->Record(dur);
    if (n > 0) snapshot_enum_delay_ns_->Record(dur / n);
    return n;
  }

  /// Applies an options struct: observability override first (so the
  /// remaining configuration is observed or not per the caller's wish),
  /// then parallelism. Engines that understand more fields (shard counts,
  /// durability) override. This is the one configuration entry point of
  /// the public API; the per-knob setters below are shims kept for source
  /// compatibility.
  virtual void Configure(const EngineOptions& opts) {
    if (opts.obs.has_value()) obs::SetEnabled(*opts.obs);
    SetThreads(opts.threads);
  }

  /// Deprecated shim — prefer Configure(EngineOptions). Requests batch
  /// maintenance on `threads` threads (0 = the default from INCR_THREADS /
  /// hardware_concurrency; 1 = sequential). Results must not depend on the
  /// thread count. Default: ignored — engines without a bulk path have
  /// nothing to parallelize.
  virtual void SetThreads(size_t threads) { (void)threads; }

  /// Serializes the engine's full dynamic state for checkpointing. May
  /// force pending work (lazy engines flush their buffers) — hence
  /// non-const. Engines without checkpoint support keep the default and
  /// remain durable via full-log replay only.
  virtual Status DumpState(store::ByteWriter& w) {
    (void)w;
    return Status::Unimplemented(std::string(name()) +
                                 " does not support state dump");
  }

  /// Restores state produced by DumpState on an engine built over the same
  /// query/plan. Existing state is replaced.
  virtual Status LoadState(store::ByteReader& r) {
    (void)r;
    return Status::Unimplemented(std::string(name()) +
                                 " does not support state load");
  }

 protected:
  /// Engine implementations. ApplyBatchImpl's default is a sequential
  /// per-tuple loop over UpdateImpl (not Update — the facade must not
  /// count each batched tuple as a standalone update).
  virtual void UpdateImpl(const std::string& rel, const Tuple& t,
                          const RV& d) = 0;
  virtual void ApplyBatchImpl(Batch batch) {
    for (const Delta<R>& e : batch) UpdateImpl(e.relation, e.tuple, e.delta);
  }
  virtual size_t EnumerateImpl(const Sink& sink) = 0;

  /// Snapshot-read hook. Engines with a real snapshot path (view-tree
  /// family) override; the default degrades to the exclusive enumeration.
  virtual size_t EnumerateSnapshotImpl(const Sink& sink) {
    return EnumerateImpl(sink);
  }

 private:
  /// Lazily resolves the per-engine metric handles ("engine.<name>.*") —
  /// lazy because name() is virtual and unavailable during construction.
  /// call_once because EnumerateSnapshot may race with the maintainer
  /// thread's first instrumented update.
  void EnsureObsHandles() {
    std::call_once(obs_once_, [&] {
      auto& r = obs::MetricsRegistry::Global();
      const std::string prefix = std::string("engine.") + name() + ".";
      update_ns_ = r.GetHistogram(prefix + "update_ns");
      batch_ns_ = r.GetHistogram(prefix + "batch_ns");
      batch_deltas_ = r.GetCounter(prefix + "batch_deltas");
      enum_ns_ = r.GetHistogram(prefix + "enum_ns");
      enum_delay_ns_ = r.GetHistogram(prefix + "enum_delay_ns");
      snapshot_enum_ns_ = r.GetHistogram(prefix + "snapshot_enum_ns");
      snapshot_enum_delay_ns_ =
          r.GetHistogram(prefix + "snapshot_enum_delay_ns");
      // Span names live in the engine so TraceSpan's const char* stays
      // valid for the span's (scope-bound) lifetime.
      batch_span_name_ = prefix + "apply_batch";
      enum_span_name_ = prefix + "enumerate";
    });
  }

  std::once_flag obs_once_;
  obs::Histogram* update_ns_ = nullptr;
  obs::Histogram* batch_ns_ = nullptr;
  obs::Counter* batch_deltas_ = nullptr;
  obs::Histogram* enum_ns_ = nullptr;
  obs::Histogram* enum_delay_ns_ = nullptr;
  obs::Histogram* snapshot_enum_ns_ = nullptr;
  obs::Histogram* snapshot_enum_delay_ns_ = nullptr;
  std::string batch_span_name_;
  std::string enum_span_name_;
};

/// The plainest engine: a bare view tree driven eagerly. Unlike
/// EagerFactStrategy it does not require an enumerable plan — Enumerate()
/// degrades to 0 for aggregate-only plans — which makes it the universal
/// fallback for drivers (the REPL uses it for non-hierarchical queries
/// maintained under a path order).
template <RingType R>
class ViewTreeEngine : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  using typename IvmEngine<R>::Sink;
  using typename IvmEngine<R>::Batch;

  explicit ViewTreeEngine(ViewTree<R> tree) : tree_(std::move(tree)) {}

  ViewTreeEngine(ViewTree<R> tree, const EngineOptions& opts)
      : ViewTreeEngine(std::move(tree)) {
    Configure(opts);
  }

  const char* name() const override { return "view-tree"; }

  void Configure(const EngineOptions& opts) override {
    if (opts.obs.has_value()) obs::SetEnabled(*opts.obs);
    tree_.SetThreads(opts.threads, opts.shards);
    tree_.SetMorselBytes(opts.morsel_bytes);
    if (opts.snapshot_reads) {
      tree_.EnableSnapshots(opts.max_retained_epochs);
    }
  }

  void SetThreads(size_t threads) override { tree_.SetThreads(threads); }

  Status DumpState(store::ByteWriter& w) override {
    tree_.DumpState(w);
    return Status::Ok();
  }

  Status LoadState(store::ByteReader& r) override {
    return tree_.LoadState(r);
  }

  ViewTree<R>& tree() { return tree_; }
  const ViewTree<R>& tree() const { return tree_; }

 protected:
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const RV& d) override {
    tree_.Update(rel, t, d);
  }

  void ApplyBatchImpl(Batch batch) override {
    // Skip empty calls BEFORE the tree sees them: in snapshot mode a
    // non-empty batch publishes exactly one epoch even when its deltas
    // merge to zero, but an empty call must not publish at all.
    if (batch.empty()) return;
    tree_.ApplyBatch(MergeNamedBatch(tree_, batch));
  }

  size_t EnumerateImpl(const Sink& sink) override {
    if (!tree_.plan().CanEnumerate().ok()) return 0;
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(tree_); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

  size_t EnumerateSnapshotImpl(const Sink& sink) override {
    if (!tree_.snapshots_enabled()) return EnumerateImpl(sink);
    if (!tree_.plan().CanEnumerate().ok()) return 0;
    ViewTreeSnapshot<R> snap = tree_.Snapshot();
    size_t n = 0;
    for (ViewTreeEnumerator<R> it = snap.Enumerate(); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

 private:
  ViewTree<R> tree_;
};

}  // namespace incr

#endif  // INCR_ENGINES_ENGINE_H_
