// DurableEngine<R>: the durability decorator of the engine API. Wraps any
// IvmEngine and logs every update to a write-ahead delta log *before*
// applying it, so that after a crash the wrapped engine's state can be
// reconstructed exactly: load the latest checkpoint snapshot, then replay
// the WAL tail through the same Update/ApplyBatch path a live engine uses
// (store/recover.h — replaying inputs, not outputs, is what makes recovery
// bit-identical under float rings).
//
// Durability protocol (DESIGN.md §durability):
//   1. Open(): recover snapshot + WAL tail (records with lsn > snapshot
//      lsn), then open the log for appending where the valid prefix ends.
//   2. Update/ApplyBatch: encode the delta, append (group-commit buffered),
//      apply to the inner engine. A crash loses only the buffered suffix.
//   3. Checkpoint(): DumpState the inner engine, atomically write the
//      snapshot, then truncate the log (Wal::Restart — LSNs continue).
#ifndef INCR_ENGINES_DURABLE_ENGINE_H_
#define INCR_ENGINES_DURABLE_ENGINE_H_

#include <memory>
#include <string>
#include <utility>

#include "incr/data/value.h"
#include "incr/engines/engine.h"
#include "incr/engines/engine_options.h"
#include "incr/store/checkpoint.h"
#include "incr/store/recover.h"
#include "incr/store/serde.h"
#include "incr/store/wal.h"

namespace incr {

template <RingType R>
class DurableEngine : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  using typename IvmEngine<R>::Sink;
  using typename IvmEngine<R>::Batch;

  /// Opens a durable engine over `inner` in opts.durability_dir (created if
  /// missing). With opts.recover_on_open, restores the snapshot (if any)
  /// into `inner`, replays the WAL tail, and — when `dict` is non-null —
  /// restores the dictionary from the snapshot as well. The same `dict` is
  /// then serialized into future snapshots.
  static StatusOr<std::unique_ptr<DurableEngine>> Open(
      std::unique_ptr<IvmEngine<R>> inner, const EngineOptions& opts,
      Dictionary* dict = nullptr) {
    if (opts.durability_dir.empty()) {
      return Status::InvalidArgument(
          "DurableEngine::Open needs EngineOptions::durability_dir");
    }
    Status st = store::EnsureDir(opts.durability_dir);
    if (!st.ok()) return st;
    const std::string ring = store::RingSerdeName<R>();
    const std::string wal_path = store::WalPath(opts.durability_dir);
    const std::string snap_path = store::SnapshotPath(opts.durability_dir);

    store::RecoveryInfo info;
    if (opts.recover_on_open) {
      auto snap = store::ReadSnapshotFile(snap_path);
      if (snap.ok()) {
        if (snap->ring_name != ring) {
          return Status::FailedPrecondition(
              "snapshot '" + snap_path + "' was written under ring '" +
              snap->ring_name + "', engine uses '" + ring + "'");
        }
        if (!snap->dict_blob.empty() && dict != nullptr) {
          store::ByteReader dr(snap->dict_blob);
          st = store::ReadDictionary(dr, dict);
          if (!st.ok()) return st;
        }
        store::ByteReader sr(snap->state);
        st = inner->LoadState(sr);
        if (!st.ok()) return st;
        info.snapshot_loaded = true;
        info.snapshot_lsn = snap->lsn;
        info.last_lsn = snap->lsn;
      } else if (snap.status().code() != StatusCode::kNotFound) {
        return snap.status();
      }
      auto scan = store::ScanWal(wal_path);
      if (scan.ok()) {
        info.wal_torn_tail = scan->torn_tail;
        info.wal_corrupt = scan->corrupt;
        st = store::ReplayWal<R>(*scan, info.snapshot_lsn, inner.get(),
                                 &info, dict);
        if (!st.ok()) return st;
        if (info.last_lsn == 0 && !scan->records.empty()) {
          info.last_lsn = scan->records.back().lsn;
        }
      } else if (scan.status().code() != StatusCode::kNotFound) {
        return scan.status();
      }
    }

    store::WalOptions wal_opts;
    wal_opts.buffer_bytes = opts.wal_buffer_bytes;
    wal_opts.group_commit_window_us = opts.group_commit_window_us;
    wal_opts.fsync = opts.fsync;
    auto wal = store::Wal::Open(wal_path, ring, wal_opts);
    if (!wal.ok()) return wal.status();

    auto engine = std::unique_ptr<DurableEngine>(new DurableEngine(
        std::move(inner), *std::move(wal), opts.durability_dir, dict, info));
    engine->Configure(opts);
    return engine;
  }

  const char* name() const override { return name_.c_str(); }

  /// Snapshots the inner engine's state (plus the dictionary, if attached)
  /// and truncates the log. After success, recovery needs only the new
  /// snapshot and whatever is appended later.
  Status Checkpoint() {
    store::ByteWriter state;
    Status st = inner_->DumpState(state);
    if (!st.ok()) return st;
    store::SnapshotData snap;
    snap.ring_name = store::RingSerdeName<R>();
    snap.lsn = wal_->last_lsn();
    if (dict_ != nullptr) {
      store::ByteWriter dw;
      store::WriteDictionary(dw, *dict_);
      snap.dict_blob = dw.Take();
      dict_synced_ = dict_->size();  // the snapshot now covers all of it
    }
    snap.state = state.Take();
    st = store::WriteSnapshotFile(store::SnapshotPath(dir_), snap);
    if (!st.ok()) return st;
    st = wal_->Restart();
    if (!st.ok()) return st;
    if (obs::Enabled()) {
      auto& r = obs::MetricsRegistry::Global();
      r.GetCounter("durable.checkpoints")->Inc();
      r.GetCounter("durable.checkpoint_bytes")->Add(snap.state.size());
      r.GetGauge("durable.wal_bytes")
          ->Set(static_cast<int64_t>(wal_->SizeBytes()));
    }
    return Status::Ok();
  }

  /// Forces everything appended so far onto disk (flush + fsync).
  Status Sync() { return wal_->Sync(); }

  /// What Open()'s recovery pass found and replayed.
  const store::RecoveryInfo& recovery_info() const { return info_; }

  uint64_t last_lsn() const { return wal_->last_lsn(); }
  size_t wal_bytes() const { return wal_->SizeBytes(); }

  IvmEngine<R>& inner() { return *inner_; }
  const IvmEngine<R>& inner() const { return *inner_; }

  void Configure(const EngineOptions& opts) override {
    inner_->Configure(opts);
  }

  void SetThreads(size_t threads) override { inner_->SetThreads(threads); }

  Status DumpState(store::ByteWriter& w) override {
    return inner_->DumpState(w);
  }

  Status LoadState(store::ByteReader& r) override {
    return inner_->LoadState(r);
  }

 protected:
  // Log-then-apply. The inner engine's instrumented public entry points are
  // used deliberately: replay drives the same ones, and the inner engine's
  // own metrics ("engine.<inner>.*") stay meaningful under the wrapper.
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const RV& d) override {
    MaybeLogDictGrowth();
    enc_.Clear();
    store::EncodeUpdatePayload<R>(enc_, rel, t, d);
    wal_->Append(store::WalRecordType::kUpdate, enc_.data());
    inner_->Update(rel, t, d);
  }

  void ApplyBatchImpl(Batch batch) override {
    MaybeLogDictGrowth();
    enc_.Clear();
    store::EncodeBatchPayload<R>(enc_, batch);
    wal_->Append(store::WalRecordType::kBatch, enc_.data());
    inner_->ApplyBatch(batch);
  }

  size_t EnumerateImpl(const Sink& sink) override {
    return inner_->Enumerate(sink);
  }

  // Snapshot reads pass straight through: the WAL only sees writes, and
  // the inner engine (via its public facade, so its metrics stay
  // meaningful) serves the epoch-pinned version. Checkpoint() remains a
  // maintainer-thread operation; it serializes the published epoch because
  // the inner tree's build state is caught up between maintainer calls.
  size_t EnumerateSnapshotImpl(const Sink& sink) override {
    return inner_->EnumerateSnapshot(sink);
  }

 private:
  DurableEngine(std::unique_ptr<IvmEngine<R>> inner,
                std::unique_ptr<store::Wal> wal, std::string dir,
                Dictionary* dict, store::RecoveryInfo info)
      : inner_(std::move(inner)),
        wal_(std::move(wal)),
        dir_(std::move(dir)),
        dict_(dict),
        dict_synced_(dict == nullptr ? 0 : dict->size()),
        info_(info),
        name_(std::string("durable:") + inner_->name()) {}

  // Strings the caller interned since the last logged/snapshotted
  // dictionary prefix exist nowhere on disk; persist them in a kDict record
  // *before* the delta that references them, so the sequential log makes
  // the string durable no later than any tuple encoding its code.
  void MaybeLogDictGrowth() {
    if (dict_ == nullptr || dict_->size() <= dict_synced_) return;
    enc_.Clear();
    store::EncodeDictDeltaPayload(enc_, *dict_, dict_synced_);
    wal_->Append(store::WalRecordType::kDict, enc_.data());
    dict_synced_ = dict_->size();
  }

  std::unique_ptr<IvmEngine<R>> inner_;
  std::unique_ptr<store::Wal> wal_;
  std::string dir_;
  Dictionary* dict_;  // not owned; may be null
  size_t dict_synced_;  // dict prefix already durable (snapshot or kDict)
  store::RecoveryInfo info_;
  std::string name_;
  store::ByteWriter enc_;  // reused per-record encode buffer
};

}  // namespace incr

#endif  // INCR_ENGINES_DURABLE_ENGINE_H_
