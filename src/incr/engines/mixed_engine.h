// MixedStaticDynamicEngine<R>: maintenance of a query over a mix of static
// and dynamic relations (paper §4.5, Ex. 4.14).
//
// Lifecycle: construct via Make (which searches for a mixed-tractable
// variable order), LoadStatic/LoadDynamic the initial database, Seal()
// (O(|D|)-style preprocessing: bulk view build), then stream UpdateDynamic.
// Updates to static atoms are rejected with FailedPrecondition.
#ifndef INCR_ENGINES_MIXED_ENGINE_H_
#define INCR_ENGINES_MIXED_ENGINE_H_

#include <utility>
#include <vector>

#include "incr/core/view_tree.h"
#include "incr/query/static_dynamic.h"

namespace incr {

template <RingType R>
class MixedStaticDynamicEngine {
 public:
  using RV = typename R::Value;

  static StatusOr<MixedStaticDynamicEngine> Make(
      const Query& q, std::vector<bool> is_static) {
    auto vo = FindMixedOrder(q, is_static);
    if (!vo.ok()) return vo.status();
    auto tree = ViewTree<R>::Make(q, *std::move(vo));
    if (!tree.ok()) return tree.status();
    return MixedStaticDynamicEngine(*std::move(tree), std::move(is_static));
  }

  /// Loads initial tuples (static or dynamic atoms) before Seal().
  void Load(size_t atom_id, const Tuple& t, const RV& m) {
    INCR_CHECK(!sealed_);
    tree_.LoadAtom(atom_id, t, m);
  }

  /// Preprocessing: builds all views bottom-up.
  void Seal() {
    INCR_CHECK(!sealed_);
    tree_.Rebuild();
    sealed_ = true;
  }

  /// Single-tuple update to a dynamic atom; O(1) by construction of the
  /// mixed order. Static atoms are rejected.
  Status UpdateDynamic(size_t atom_id, const Tuple& t, const RV& m) {
    INCR_CHECK(sealed_);
    if (is_static_[atom_id]) {
      return Status::FailedPrecondition(
          "atom is adorned static; updates are not supported in this "
          "maintenance window");
    }
    tree_.UpdateAtom(atom_id, t, m);
    return Status::Ok();
  }

  const ViewTree<R>& tree() const { return tree_; }
  RV Aggregate() const { return tree_.Aggregate(); }

 private:
  MixedStaticDynamicEngine(ViewTree<R> tree, std::vector<bool> is_static)
      : tree_(std::move(tree)), is_static_(std::move(is_static)) {}

  ViewTree<R> tree_;
  std::vector<bool> is_static_;
  bool sealed_ = false;
};

}  // namespace incr

#endif  // INCR_ENGINES_MIXED_ENGINE_H_
