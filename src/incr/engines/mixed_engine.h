// MixedStaticDynamicEngine<R>: maintenance of a query over a mix of static
// and dynamic relations (paper §4.5, Ex. 4.14).
//
// Lifecycle: construct via Make (which searches for a mixed-tractable
// variable order), LoadStatic/LoadDynamic the initial database, Seal()
// (O(|D|)-style preprocessing: bulk view build), then stream UpdateDynamic.
// Updates to static atoms are rejected with FailedPrecondition.
#ifndef INCR_ENGINES_MIXED_ENGINE_H_
#define INCR_ENGINES_MIXED_ENGINE_H_

#include <string>
#include <utility>
#include <vector>

#include "incr/core/view_tree.h"
#include "incr/engines/engine.h"
#include "incr/query/static_dynamic.h"

namespace incr {

template <RingType R>
class MixedStaticDynamicEngine : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  using typename IvmEngine<R>::Sink;

  static StatusOr<MixedStaticDynamicEngine> Make(
      const Query& q, std::vector<bool> is_static) {
    auto vo = FindMixedOrder(q, is_static);
    if (!vo.ok()) return vo.status();
    auto tree = ViewTree<R>::Make(q, *std::move(vo));
    if (!tree.ok()) return tree.status();
    return MixedStaticDynamicEngine(*std::move(tree), std::move(is_static));
  }

  /// Loads initial tuples (static or dynamic atoms) before Seal().
  void Load(size_t atom_id, const Tuple& t, const RV& m) {
    INCR_CHECK(!sealed_);
    tree_.LoadAtom(atom_id, t, m);
  }

  /// Preprocessing: builds all views bottom-up.
  void Seal() {
    INCR_CHECK(!sealed_);
    tree_.Rebuild();
    sealed_ = true;
  }

  /// Single-tuple update to a dynamic atom; O(1) by construction of the
  /// mixed order. Static atoms are rejected.
  Status UpdateDynamic(size_t atom_id, const Tuple& t, const RV& m) {
    INCR_CHECK(sealed_);
    if (is_static_[atom_id]) {
      return Status::FailedPrecondition(
          "atom is adorned static; updates are not supported in this "
          "maintenance window");
    }
    tree_.UpdateAtom(atom_id, t, m);
    return Status::Ok();
  }

  // IvmEngine: name-routed dynamic updates (updates addressed to a static
  // atom are a caller bug and CHECK-fail; use UpdateDynamic for the
  // Status-returning variant) and enumeration when the mixed plan allows
  // it (aggregate-only plans return 0).
  const char* name() const override { return "mixed-static-dynamic"; }

  void Configure(const EngineOptions& opts) override {
    if (opts.obs.has_value()) obs::SetEnabled(*opts.obs);
    tree_.SetThreads(opts.threads, opts.shards);
    tree_.SetMorselBytes(opts.morsel_bytes);
    if (opts.snapshot_reads) {
      tree_.EnableSnapshots(opts.max_retained_epochs);
    }
  }

  void SetThreads(size_t threads) override { tree_.SetThreads(threads); }

  const ViewTree<R>& tree() const { return tree_; }
  RV Aggregate() const { return tree_.Aggregate(); }

 protected:
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const RV& m) override {
    size_t n = ForEachAtomNamed(tree_.query(), rel, [&](size_t a) {
      Status st = UpdateDynamic(a, t, m);
      INCR_CHECK(st.ok());
    });
    INCR_CHECK(n > 0);
  }

  /// Bulk path: one node-at-a-time traversal for the whole batch (parallel
  /// under SetThreads). Every named delta must address a dynamic atom only.
  void ApplyBatchImpl(typename IvmEngine<R>::Batch batch) override {
    INCR_CHECK(sealed_);
    if (batch.empty()) return;  // an empty call must not publish an epoch
    DeltaBatch<R> merged = MergeNamedBatch(tree_, batch);
    for (size_t a = 0; a < merged.num_atoms(); ++a) {
      INCR_CHECK(merged.of(a).empty() || !is_static_[a]);
    }
    tree_.ApplyBatch(merged);
  }

  size_t EnumerateImpl(const Sink& sink) override {
    if (!tree_.plan().CanEnumerate().ok()) return 0;
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(tree_); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

  size_t EnumerateSnapshotImpl(const Sink& sink) override {
    if (!tree_.snapshots_enabled()) return EnumerateImpl(sink);
    if (!tree_.plan().CanEnumerate().ok()) return 0;
    ViewTreeSnapshot<R> snap = tree_.Snapshot();
    size_t n = 0;
    for (ViewTreeEnumerator<R> it = snap.Enumerate(); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

 private:
  MixedStaticDynamicEngine(ViewTree<R> tree, std::vector<bool> is_static)
      : tree_(std::move(tree)), is_static_(std::move(is_static)) {}

  ViewTree<R> tree_;
  std::vector<bool> is_static_;
  bool sealed_ = false;
};

}  // namespace incr

#endif  // INCR_ENGINES_MIXED_ENGINE_H_
