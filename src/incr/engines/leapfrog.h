// Leapfrog Triejoin (Veldhuizen; paper §4.6): a worst-case optimal
// multi-way join. Used here as the recomputation core that, combined with
// delta queries, achieves the best known update time for arbitrary join
// queries in the insert-only setting, and as an independent oracle for the
// maintenance engines.
//
// Each relation is materialized as a trie: its tuples sorted by the global
// variable order restricted to the relation's schema. The join proceeds
// variable by variable, leapfrogging the participating tries through their
// current ranges with galloping seeks.
#ifndef INCR_ENGINES_LEAPFROG_H_
#define INCR_ENGINES_LEAPFROG_H_

#include <functional>
#include <vector>

#include "incr/data/relation.h"
#include "incr/query/query.h"
#include "incr/ring/int_ring.h"

namespace incr {

/// A relation materialized as a sorted trie over a variable order.
class TrieRelation {
 public:
  /// `schema` is the relation's schema; `var_order` the global variable
  /// order (every schema variable must occur in it). Tuples are reordered
  /// to follow `var_order` and sorted.
  TrieRelation(const Schema& schema, const std::vector<Var>& var_order,
               const Relation<IntRing>& rel);

  /// Depth (number of trie levels) = arity.
  size_t depth() const { return depth_vars_.size(); }

  /// The variable at trie level d (in global-order position).
  Var var_at(size_t d) const { return depth_vars_[d]; }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  int64_t payload(size_t idx) const { return payloads_[idx]; }

 private:
  Schema depth_vars_;  // schema reordered by the global order
  std::vector<Tuple> tuples_;  // reordered + sorted
  std::vector<int64_t> payloads_;
};

/// Enumerates the natural join of `rels` (parallel to q.atoms()) over
/// `var_order`, calling `sink(assignment, payload)` with assignments over
/// `var_order`. Returns the total payload (the count aggregate). `sink`
/// may be null.
int64_t LeapfrogJoin(
    const Query& q, const std::vector<const Relation<IntRing>*>& rels,
    const std::vector<Var>& var_order,
    const std::function<void(const Tuple&, int64_t)>& sink);

/// Worst-case-optimal count SUM PROD R_i for the query (all variables
/// aggregated).
int64_t LeapfrogCount(const Query& q,
                      const std::vector<const Relation<IntRing>*>& rels,
                      const std::vector<Var>& var_order);

}  // namespace incr

#endif  // INCR_ENGINES_LEAPFROG_H_
