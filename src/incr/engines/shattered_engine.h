// ShatteredEngine<R>: maintenance under small-domain constraints (paper
// §4.4's pointer [5]): variables declared small-domain (constantly many
// values) shatter the query into one residual view tree per assignment of
// the small variables.
//
// For each assignment s (a tuple over the small variables, drawn from the
// cross product of the observed per-variable domains) the engine maintains
// the residual query — the original query with the small variables deleted
// — over the base tuples matching s. Atoms whose schema is entirely small
// degenerate to per-shard scalars, looked up on demand. With a
// q-hierarchical residual every shard gives O(1) updates and delay; an
// update touches at most (domain size)^k shards and a new shard costs one
// O(N) rebuild, amortized into the constants the small-domain assumption
// bounds.
#ifndef INCR_ENGINES_SHATTERED_ENGINE_H_
#define INCR_ENGINES_SHATTERED_ENGINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "incr/core/view_tree.h"
#include "incr/engines/engine.h"
#include "incr/query/degree_constraints.h"
#include "incr/query/properties.h"

namespace incr {

template <RingType R>
class ShatteredEngine : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  using typename IvmEngine<R>::Sink;
  /// Receives (small-variable assignment, residual output tuple, payload).
  using ShardSink =
      std::function<void(const Tuple&, const Tuple&, const RV&)>;
  // The atom-addressed Update and the ShardSink Enumerate below would
  // otherwise hide the instrumented name-routed facades.
  using IvmEngine<R>::Update;
  using IvmEngine<R>::Enumerate;

  static StatusOr<ShatteredEngine> Make(const Query& q, Schema small) {
    if (small.empty()) {
      return Status::InvalidArgument("no small-domain variables given");
    }
    if (!IsQHierarchicalUnderSmallDomains(q, small)) {
      return Status::FailedPrecondition(
          "residual query is not q-hierarchical; small domains do not give "
          "the best possible maintenance here");
    }
    ShatteredEngine e;
    e.query_ = q;
    e.small_ = std::move(small);
    e.residual_ = ShatterSmallDomains(q, e.small_);
    e.domains_.resize(e.small_.size());
    for (const Atom& a : q.atoms()) {
      e.base_.push_back(std::make_unique<Relation<R>>(a.schema));
      AtomInfo info;
      for (uint32_t c = 0; c < a.schema.size(); ++c) {
        auto pos = FindVar(e.small_, a.schema[c]);
        if (pos.has_value()) {
          info.small_cols.push_back(c);
          info.small_slots.push_back(*pos);
        } else {
          info.residual_cols.push_back(c);
        }
      }
      info.dropped = info.residual_cols.empty();
      e.atoms_.push_back(std::move(info));
    }
    // Residual atom ids, parallel to the original atoms (dropped = -1).
    int next = 0;
    for (const AtomInfo& info : e.atoms_) {
      e.residual_atom_.push_back(info.dropped ? -1 : next++);
    }
    return e;
  }

  const Query& residual_query() const { return residual_; }
  size_t NumShards() const { return shards_.size(); }

  /// Single-tuple update. Touches every matching shard (constantly many by
  /// the small-domain assumption) and creates newly activated shards.
  void Update(size_t atom_id, const Tuple& t, const RV& m) {
    const AtomInfo& info = atoms_[atom_id];
    // 1. Extend the observed domains; collect brand-new values.
    bool new_value = false;
    for (size_t i = 0; i < info.small_cols.size(); ++i) {
      auto& domain = domains_[info.small_slots[i]];
      if (domain.Find(t[info.small_cols[i]]) == nullptr) {
        domain.GetOrInsert(t[info.small_cols[i]], 1);
        new_value = true;
      }
    }
    // 2. Materialize newly activated shards from the pre-update base.
    if (new_value) CreateMissingShards();
    // 3. Base first, then every matching shard.
    base_[atom_id]->Apply(t, m);
    for (const auto& entry : shards_) {
      if (!Matches(info, t, entry.key)) continue;
      if (info.dropped) continue;  // scalar factors read the base lazily
      entry.value.tree->UpdateAtom(
          static_cast<size_t>(residual_atom_[atom_id]),
          ProjectTuple(t, info.residual_cols), m);
    }
  }

  /// The scalar factor of shard `assignment`: the product of the dropped
  /// atoms' payloads at that assignment.
  RV ShardScalar(const Tuple& assignment) const {
    RV acc = R::One();
    for (size_t a = 0; a < atoms_.size(); ++a) {
      if (!atoms_[a].dropped) continue;
      Tuple probe;
      for (size_t i = 0; i < atoms_[a].small_cols.size(); ++i) {
        probe.push_back(assignment[atoms_[a].small_slots[i]]);
      }
      acc = R::Mul(acc, base_[a]->Payload(probe));
    }
    return acc;
  }

  /// Full aggregate: SUM over shards of scalar * residual aggregate.
  RV Aggregate() const {
    RV total = R::Zero();
    for (const auto& entry : shards_) {
      total = R::Add(total, R::Mul(ShardScalar(entry.key),
                                   entry.value.tree->Aggregate()));
    }
    return total;
  }

  /// Enumerates every shard's residual output; returns the tuple count.
  size_t Enumerate(const ShardSink& sink) const {
    size_t n = 0;
    for (const auto& entry : shards_) {
      RV scalar = ShardScalar(entry.key);
      if (R::IsZero(scalar)) continue;
      for (ViewTreeEnumerator<R> it(*entry.value.tree); it.Valid();
           it.Next()) {
        if (sink) sink(entry.key, it.tuple(), R::Mul(scalar, it.payload()));
        ++n;
      }
    }
    return n;
  }

  // IvmEngine: name-routed updates and flattened enumeration — each output
  // tuple is the small-variable assignment concatenated with the residual
  // tuple.
  const char* name() const override { return "shattered"; }

 protected:
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const RV& m) override {
    size_t n =
        ForEachAtomNamed(query_, rel, [&](size_t a) { Update(a, t, m); });
    INCR_CHECK(n > 0);
  }

  size_t EnumerateImpl(const Sink& sink) override {
    return Enumerate([&](const Tuple& small, const Tuple& rest,
                         const RV& p) {
      if (sink) sink(ConcatTuple(small, rest), p);
    });
  }

 private:
  struct AtomInfo {
    SmallVector<uint32_t, 4> small_cols;     // columns holding small vars
    SmallVector<uint32_t, 4> small_slots;    // their position in small_
    SmallVector<uint32_t, 4> residual_cols;  // the other columns
    bool dropped = false;
  };

  struct Shard {
    std::unique_ptr<ViewTree<R>> tree;
  };

  bool Matches(const AtomInfo& info, const Tuple& t,
               const Tuple& assignment) const {
    for (size_t i = 0; i < info.small_cols.size(); ++i) {
      if (t[info.small_cols[i]] != assignment[info.small_slots[i]]) {
        return false;
      }
    }
    return true;
  }

  void CreateMissingShards() {
    // Cross product of the observed domains; skip existing assignments.
    Tuple assignment;
    assignment.resize(small_.size(), 0);
    BuildShardsRec(0, &assignment);
  }

  void BuildShardsRec(size_t i, Tuple* assignment) {
    if (i == small_.size()) {
      if (shards_.Find(*assignment) != nullptr) return;
      auto tree_or = ViewTree<R>::Make(residual_);
      INCR_CHECK(tree_or.ok());
      auto tree = std::make_unique<ViewTree<R>>(*std::move(tree_or));
      // Load the matching base tuples and rebuild bottom-up.
      for (size_t a = 0; a < atoms_.size(); ++a) {
        if (atoms_[a].dropped) continue;
        for (const auto& e : *base_[a]) {
          if (Matches(atoms_[a], e.key, *assignment)) {
            tree->LoadAtom(static_cast<size_t>(residual_atom_[a]),
                           ProjectTuple(e.key, atoms_[a].residual_cols),
                           e.value);
          }
        }
      }
      tree->Rebuild();
      shards_.GetOrInsert(*assignment, Shard{std::move(tree)});
      return;
    }
    for (const auto& v : domains_[i]) {
      (*assignment)[i] = v.key;
      BuildShardsRec(i + 1, assignment);
    }
  }

  Query query_;
  Schema small_;
  Query residual_;
  std::vector<std::unique_ptr<Relation<R>>> base_;
  std::vector<AtomInfo> atoms_;
  std::vector<int> residual_atom_;
  std::vector<DenseMap<Value, char>> domains_;  // per small variable
  DenseMap<Tuple, Shard, TupleHash, TupleEq> shards_;
};

}  // namespace incr

#endif  // INCR_ENGINES_SHATTERED_ENGINE_H_
