// EngineOptions: the single configuration struct of the public API. Every
// knob that used to live in its own setter, environment variable, or
// constructor argument — thread count, shard count, observability,
// durability — is a field here, and every IvmEngine constructor (and the
// REPL) accepts one. Engines read the fields they understand and ignore the
// rest, so options written for one engine kind work unchanged on another.
#ifndef INCR_ENGINES_ENGINE_OPTIONS_H_
#define INCR_ENGINES_ENGINE_OPTIONS_H_

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace incr {

struct EngineOptions {
  /// Threads for batch maintenance: 1 = sequential (the default), 0 = pick
  /// automatically (INCR_THREADS / hardware concurrency), n > 1 = that many.
  size_t threads = 1;

  /// Hash shards for the parallel batch path; 0 = the process default
  /// (INCR_SHARDS, default 16). Ignored when threads resolve to 1.
  size_t shards = 0;

  /// Force observability on/off; unset leaves the process-level setting
  /// (INCR_OBS / obs::SetEnabled) untouched.
  std::optional<bool> obs;

  /// Directory for the write-ahead log and checkpoint snapshot. Empty (the
  /// default) means no durability; non-empty is consumed by
  /// DurableEngine::Open / MakeEngine, which log every update there.
  std::string durability_dir;

  /// Group-commit window in microseconds: an appended WAL record may sit
  /// buffered this long before a flush groups it with its neighbors.
  /// 0 = flush (and fsync, if enabled) every update.
  uint32_t group_commit_window_us = 1000;

  /// WAL buffer capacity; the buffer is flushed when it fills regardless of
  /// the group-commit window.
  size_t wal_buffer_bytes = 1 << 20;

  /// fsync(2) the WAL on flush. Off: flushed records survive process death
  /// but not power loss (the right trade for tests and benches).
  bool fsync = true;

  /// On DurableEngine::Open, load the latest snapshot and replay the WAL
  /// tail. Off: open the log for appending but start from the engine's
  /// current (usually empty) state.
  bool recover_on_open = true;

  /// Reads the INCR_THREADS / INCR_SHARDS / INCR_OBS environment variables
  /// into an options struct (unset variables keep the defaults above) —
  /// the bridge from the pre-EngineOptions configuration surface.
  static EngineOptions FromEnv() {
    EngineOptions opts;
    if (const char* env = std::getenv("INCR_THREADS")) {
      char* end = nullptr;
      long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 0) {
        opts.threads = static_cast<size_t>(v);
      }
    }
    if (const char* env = std::getenv("INCR_SHARDS")) {
      char* end = nullptr;
      long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        opts.shards = static_cast<size_t>(v);
      }
    }
    if (const char* env = std::getenv("INCR_OBS")) {
      std::string v(env);
      opts.obs = !(v == "off" || v == "0" || v == "false");
    }
    return opts;
  }
};

}  // namespace incr

#endif  // INCR_ENGINES_ENGINE_OPTIONS_H_
