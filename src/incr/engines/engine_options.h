// EngineOptions: the single configuration struct of the public API. Every
// knob that used to live in its own setter, environment variable, or
// constructor argument — thread count, shard count, observability,
// durability — is a field here, and every IvmEngine constructor (and the
// REPL) accepts one. Engines read the fields they understand and ignore the
// rest, so options written for one engine kind work unchanged on another.
#ifndef INCR_ENGINES_ENGINE_OPTIONS_H_
#define INCR_ENGINES_ENGINE_OPTIONS_H_

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace incr {

struct EngineOptions {
  /// Threads for batch maintenance: 1 = sequential (the default), 0 = pick
  /// automatically (INCR_THREADS / hardware concurrency), n > 1 = that many.
  size_t threads = 1;

  /// Hash shards for the parallel batch path; 0 = the process default
  /// (INCR_SHARDS, default 16). Ignored when threads resolve to 1.
  size_t shards = 0;

  /// Morsel granularity of the parallel batch path: bytes of input delta
  /// entries per work-stealing morsel (ViewTree::SetMorselBytes). 0 = the
  /// built-in cache-sized default. Scheduling only — results are
  /// bit-identical at every value. Ignored when threads resolve to 1.
  size_t morsel_bytes = 0;

  /// Force observability on/off; unset leaves the process-level setting
  /// (INCR_OBS / obs::SetEnabled) untouched.
  std::optional<bool> obs;

  /// Directory for the write-ahead log and checkpoint snapshot. Empty (the
  /// default) means no durability; non-empty is consumed by
  /// DurableEngine::Open / MakeEngine, which log every update there.
  std::string durability_dir;

  /// Group-commit window in microseconds: an appended WAL record may sit
  /// buffered this long before a flush groups it with its neighbors.
  /// 0 = flush (and fsync, if enabled) every update.
  uint32_t group_commit_window_us = 1000;

  /// WAL buffer capacity; the buffer is flushed when it fills regardless of
  /// the group-commit window.
  size_t wal_buffer_bytes = 1 << 20;

  /// fsync(2) the WAL on flush. Off: flushed records survive process death
  /// but not power loss (the right trade for tests and benches).
  bool fsync = true;

  /// On DurableEngine::Open, load the latest snapshot and replay the WAL
  /// tail. Off: open the log for appending but start from the engine's
  /// current (usually empty) state.
  bool recover_on_open = true;

  /// Snapshot-isolated reads: engines of the view-tree family publish
  /// every batch as an immutable epoch-tagged version, and
  /// EnumerateSnapshot serves reader threads from a pinned version while
  /// ONE maintainer thread keeps writing. Off (the default), reads and
  /// writes must be externally synchronized as before.
  bool snapshot_reads = false;

  /// Maximum published versions retained for concurrent readers (snapshot
  /// mode only; clamped to >= 2). The maintainer waits when every
  /// retained version is still pinned, so size this to cover the longest
  /// snapshot a reader holds across publishes. Memory cost is up to
  /// max_retained_epochs + 1 copies of the view state.
  size_t max_retained_epochs = 3;

  /// Reads the INCR_THREADS / INCR_SHARDS / INCR_MORSEL_BYTES / INCR_OBS /
  /// INCR_FSYNC / INCR_WAL_BUFFER_BYTES / INCR_GROUP_COMMIT_US /
  /// INCR_SNAPSHOT_READS / INCR_MAX_RETAINED_EPOCHS environment variables
  /// into an options struct — the bridge from the pre-EngineOptions
  /// configuration surface. Unset variables keep the defaults above;
  /// malformed or out-of-range values are ignored with a one-line warning
  /// on stderr and never abort (env vars reach us from shells and CI
  /// configs, where a typo must not take the process down).
  static EngineOptions FromEnv();

  // Sanity ceilings for environment-supplied values. Generous — they exist
  // to catch unit mistakes (e.g. a byte count in a microsecond knob), not
  // to police reasonable configurations.
  static constexpr size_t kMaxThreads = 1024;
  static constexpr size_t kMaxShards = 1 << 16;
  static constexpr size_t kMaxMorselBytes = size_t{1} << 30;  // 1 GiB
  static constexpr size_t kMaxWalBufferBytes = size_t{1} << 30;  // 1 GiB
  static constexpr uint32_t kMaxGroupCommitUs = 60 * 1000 * 1000;  // 1 min
  static constexpr size_t kMaxRetainedEpochs = 1 << 20;
};

}  // namespace incr

#endif  // INCR_ENGINES_ENGINE_OPTIONS_H_
