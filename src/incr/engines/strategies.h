// The four IVM strategies compared in paper §4.1 (Fig. 4), all built over
// the same (best) view tree, differing along two axes:
//
//   eager vs lazy:  propagate updates through the view tree immediately, or
//                   buffer them and only touch base relations until an
//                   enumeration request arrives;
//   fact vs list:   keep the query output factorized over the views, or
//                   materialize it as a flat list of tuples.
//
//   EagerFactStrategy  (F-IVM):      O(1)/update for q-hierarchical,
//                                    constant-delay factorized enumeration.
//   EagerListStrategy  (DBToaster):  every update also refreshes a
//                                    materialized output list via delta
//                                    enumeration — pays O(|affected output|)
//                                    per update.
//   LazyFactStrategy   (hybrid):     updates are buffered; an enumeration
//                                    request flushes them through the view
//                                    tree, then enumerates factorized.
//   LazyListStrategy   (delta-style recompute): only base relations are
//                                    maintained; an enumeration request
//                                    rebuilds the output from scratch.
//
// All four implement the unified IvmEngine<R> interface (engine.h) and
// additionally expose the atom-id addressed Update/ApplyBatch that the
// benches drive directly. Batches take the node-at-a-time bulk path where
// the strategy semantics allow it (eager-fact, lazy-*).
#ifndef INCR_ENGINES_STRATEGIES_H_
#define INCR_ENGINES_STRATEGIES_H_

#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "incr/core/view_tree.h"
#include "incr/engines/engine.h"
#include "incr/ring/ring.h"

namespace incr {

/// Common interface of the Fig. 4 strategies: IvmEngine plus atom-id
/// addressed updates and batches (the internal currency of the benches).
template <RingType R>
class IvmStrategy : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  using typename IvmEngine<R>::Sink;
  using AtomBatch = std::span<const AtomDelta<R>>;
  // Keep the instrumented name-routed facade visible next to the
  // atom-addressed overloads declared below.
  using IvmEngine<R>::Update;
  using IvmEngine<R>::ApplyBatch;

  /// The query the strategy maintains (used for name -> atom routing).
  virtual const Query& query() const = 0;

  /// Applies a single-tuple delta to an atom's relation. This is the
  /// benches' hot path and is deliberately not wrapped by the facade —
  /// benches time it themselves.
  virtual void Update(size_t atom_id, const Tuple& t, const RV& m) = 0;

  /// Applies a batch of atom-addressed deltas. Default: per-tuple loop;
  /// strategies with a bulk path override.
  virtual void ApplyBatch(AtomBatch batch) {
    for (const AtomDelta<R>& e : batch) Update(e.atom, e.tuple, e.delta);
  }

 protected:
  // IvmEngine implementation: route relation names to atom occurrences.
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const RV& m) override {
    size_t n =
        ForEachAtomNamed(query(), rel, [&](size_t a) { Update(a, t, m); });
    INCR_CHECK(n > 0);
  }

  void ApplyBatchImpl(typename IvmEngine<R>::Batch batch) override {
    std::vector<AtomDelta<R>> resolved;
    resolved.reserve(batch.size());
    for (const Delta<R>& e : batch) {
      size_t n = ForEachAtomNamed(query(), e.relation, [&](size_t a) {
        resolved.push_back({a, e.tuple, e.delta});
      });
      INCR_CHECK(n > 0);
    }
    ApplyBatch(AtomBatch(resolved));
  }
};

/// F-IVM: eager propagation, factorized output. Batches take the
/// node-at-a-time path through the view tree.
template <RingType R>
class EagerFactStrategy : public IvmStrategy<R> {
 public:
  using RV = typename R::Value;
  using typename IvmStrategy<R>::Sink;
  using typename IvmStrategy<R>::AtomBatch;
  using IvmStrategy<R>::Update;
  using IvmStrategy<R>::ApplyBatch;

  explicit EagerFactStrategy(ViewTree<R> tree) : tree_(std::move(tree)) {
    INCR_CHECK(tree_.plan().CanEnumerate().ok());
  }

  EagerFactStrategy(ViewTree<R> tree, const EngineOptions& opts)
      : EagerFactStrategy(std::move(tree)) {
    Configure(opts);
  }

  const Query& query() const override { return tree_.query(); }

  void Update(size_t atom_id, const Tuple& t, const RV& m) override {
    tree_.UpdateAtom(atom_id, t, m);
  }

  void ApplyBatch(AtomBatch batch) override { tree_.ApplyBatch(batch); }

  void Configure(const EngineOptions& opts) override {
    if (opts.obs.has_value()) obs::SetEnabled(*opts.obs);
    tree_.SetThreads(opts.threads, opts.shards);
    tree_.SetMorselBytes(opts.morsel_bytes);
  }

  void SetThreads(size_t threads) override { tree_.SetThreads(threads); }

  Status DumpState(store::ByteWriter& w) override {
    tree_.DumpState(w);
    return Status::Ok();
  }

  Status LoadState(store::ByteReader& r) override {
    return tree_.LoadState(r);
  }

  const char* name() const override { return "eager-fact"; }

  const ViewTree<R>& tree() const { return tree_; }

 protected:
  size_t EnumerateImpl(const Sink& sink) override {
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(tree_); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

 private:
  ViewTree<R> tree_;
};

/// DBToaster-style: eager propagation plus a materialized output list,
/// refreshed per update by enumerating the affected output tuples (those
/// agreeing with the update on the atom's free variables) before and after
/// the propagation. Batches stay per-tuple: the output list must observe
/// every intermediate output state, so there is no bulk shortcut.
template <RingType R>
class EagerListStrategy : public IvmStrategy<R> {
 public:
  using RV = typename R::Value;
  using typename IvmStrategy<R>::Sink;
  using IvmStrategy<R>::Update;
  using IvmStrategy<R>::ApplyBatch;

  explicit EagerListStrategy(ViewTree<R> tree)
      : tree_(std::move(tree)), out_(tree_.OutputSchema()) {
    INCR_CHECK(tree_.plan().CanEnumerate().ok());
  }

  EagerListStrategy(ViewTree<R> tree, const EngineOptions& opts)
      : EagerListStrategy(std::move(tree)) {
    this->Configure(opts);
  }

  const Query& query() const override { return tree_.query(); }

  // The materialized output list is part of the dynamic state: it is
  // maintained per update, not derivable in dump order from the tree.
  Status DumpState(store::ByteWriter& w) override {
    tree_.DumpState(w);
    store::WriteRelation(w, out_);
    return Status::Ok();
  }

  Status LoadState(store::ByteReader& r) override {
    Status st = tree_.LoadState(r);
    if (!st.ok()) return st;
    return store::ReadRelationInto(r, &out_);
  }

  void Update(size_t atom_id, const Tuple& t, const RV& m) override {
    tree_.UpdateAtomWithDeltaEnum(
        atom_id, t, m,
        [&](const Tuple& out, const RV& before, const RV& now) {
          out_.Apply(out, R::Add(now, R::Neg(before)));
        });
  }

  const char* name() const override { return "eager-list"; }

  const Relation<R>& output() const { return out_; }

 protected:
  size_t EnumerateImpl(const Sink& sink) override {
    if (sink) {
      for (const auto& e : out_) sink(e.key, e.value);
    }
    return out_.size();
  }

 private:
  static_assert(R::kHasNegation,
                "eager-list needs additive inverses to retract old output");
  ViewTree<R> tree_;
  Relation<R> out_;
};

/// Hybrid of F-IVM and delta queries: buffer updates, flush through the
/// view tree on demand, enumerate factorized. The flush itself is one
/// node-at-a-time batch.
template <RingType R>
class LazyFactStrategy : public IvmStrategy<R> {
 public:
  using RV = typename R::Value;
  using typename IvmStrategy<R>::Sink;
  using typename IvmStrategy<R>::AtomBatch;
  using IvmStrategy<R>::Update;
  using IvmStrategy<R>::ApplyBatch;

  explicit LazyFactStrategy(ViewTree<R> tree) : tree_(std::move(tree)) {
    INCR_CHECK(tree_.plan().CanEnumerate().ok());
  }

  LazyFactStrategy(ViewTree<R> tree, const EngineOptions& opts)
      : LazyFactStrategy(std::move(tree)) {
    Configure(opts);
  }

  const Query& query() const override { return tree_.query(); }

  void Update(size_t atom_id, const Tuple& t, const RV& m) override {
    buffer_.Add(atom_id, t, m);
  }

  void ApplyBatch(AtomBatch batch) override { buffer_.AddAll(batch); }

  void Configure(const EngineOptions& opts) override {
    if (opts.obs.has_value()) obs::SetEnabled(*opts.obs);
    tree_.SetThreads(opts.threads, opts.shards);
    tree_.SetMorselBytes(opts.morsel_bytes);
  }

  void SetThreads(size_t threads) override { tree_.SetThreads(threads); }

  // Dumping flushes the buffer first: a snapshot must capture the effect of
  // every logged update, and buffered deltas have no stable on-disk shape
  // of their own (this is also why DumpState is non-const API-wide).
  Status DumpState(store::ByteWriter& w) override {
    tree_.ApplyBatch(buffer_);
    buffer_.Clear();
    tree_.DumpState(w);
    return Status::Ok();
  }

  Status LoadState(store::ByteReader& r) override {
    buffer_.Clear();
    return tree_.LoadState(r);
  }

  const char* name() const override { return "lazy-fact"; }

 protected:
  size_t EnumerateImpl(const Sink& sink) override {
    tree_.ApplyBatch(buffer_);
    buffer_.Clear();
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(tree_); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

 private:
  ViewTree<R> tree_;
  DeltaBatch<R> buffer_;
};

/// Delta-query recomputation: maintain only the base relations (O(1) per
/// update); rebuild the full output from scratch (fresh view tree + list
/// materialization) on every enumeration request.
template <RingType R>
class LazyListStrategy : public IvmStrategy<R> {
 public:
  using RV = typename R::Value;
  using typename IvmStrategy<R>::Sink;
  using typename IvmStrategy<R>::AtomBatch;
  using IvmStrategy<R>::Update;
  using IvmStrategy<R>::ApplyBatch;

  explicit LazyListStrategy(ViewTree<R> tree) : tree_(std::move(tree)) {
    INCR_CHECK(tree_.plan().CanEnumerate().ok());
  }

  LazyListStrategy(ViewTree<R> tree, const EngineOptions& opts)
      : LazyListStrategy(std::move(tree)) {
    Configure(opts);
  }

  const Query& query() const override { return tree_.query(); }

  void Update(size_t atom_id, const Tuple& t, const RV& m) override {
    tree_.LoadAtom(atom_id, t, m);  // base relation only, no propagation
  }

  void Configure(const EngineOptions& opts) override {
    if (opts.obs.has_value()) obs::SetEnabled(*opts.obs);
    tree_.SetThreads(opts.threads, opts.shards);
    tree_.SetMorselBytes(opts.morsel_bytes);
  }

  void SetThreads(size_t threads) override { tree_.SetThreads(threads); }

  Status DumpState(store::ByteWriter& w) override {
    tree_.DumpState(w);
    return Status::Ok();
  }

  Status LoadState(store::ByteReader& r) override {
    return tree_.LoadState(r);
  }

  const char* name() const override { return "lazy-list"; }

 protected:
  size_t EnumerateImpl(const Sink& sink) override {
    tree_.Rebuild();
    size_t n = 0;
    std::vector<std::pair<Tuple, RV>> list;
    for (ViewTreeEnumerator<R> it(tree_); it.Valid(); it.Next()) {
      list.emplace_back(it.tuple(), it.payload());  // materialize the list
      ++n;
    }
    if (sink) {
      for (const auto& [t, p] : list) sink(t, p);
    }
    return n;
  }

 private:
  ViewTree<R> tree_;
};

/// Builds all four strategies over the same view tree (the canonical order
/// when `vo` is null).
template <RingType R>
std::vector<std::unique_ptr<IvmStrategy<R>>> MakeAllStrategies(
    const Query& q, const VariableOrder* vo = nullptr) {
  std::vector<std::unique_ptr<IvmStrategy<R>>> out;
  auto make_tree = [&] {
    auto t = vo == nullptr ? ViewTree<R>::Make(q) : ViewTree<R>::Make(q, *vo);
    INCR_CHECK(t.ok());
    return *std::move(t);
  };
  out.push_back(std::make_unique<EagerListStrategy<R>>(make_tree()));
  out.push_back(std::make_unique<EagerFactStrategy<R>>(make_tree()));
  out.push_back(std::make_unique<LazyListStrategy<R>>(make_tree()));
  out.push_back(std::make_unique<LazyFactStrategy<R>>(make_tree()));
  return out;
}

}  // namespace incr

#endif  // INCR_ENGINES_STRATEGIES_H_
