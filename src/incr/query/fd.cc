#include "incr/query/fd.h"

#include "incr/query/properties.h"

namespace incr {

Schema FdClosure(const FdSet& fds, const Schema& vars) {
  Schema closure = vars;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      if (!SchemaSubset(fd.lhs, closure)) continue;
      for (Var v : fd.rhs) {
        if (!SchemaContains(closure, v)) {
          closure.push_back(v);
          changed = true;
        }
      }
    }
  }
  return closure;
}

Query SigmaReduct(const Query& q, const FdSet& fds) {
  std::vector<Atom> atoms;
  atoms.reserve(q.atoms().size());
  for (const Atom& a : q.atoms()) {
    atoms.push_back(Atom{a.relation, FdClosure(fds, a.schema)});
  }
  return Query(q.name() + "_reduct", FdClosure(fds, q.free()),
               std::move(atoms));
}

bool IsQHierarchicalUnderFds(const Query& q, const FdSet& fds) {
  return IsQHierarchical(SigmaReduct(q, fds));
}

StatusOr<VariableOrder> FdGuidedOrder(const Query& q, const FdSet& fds) {
  Query reduct = SigmaReduct(q, fds);
  if (!IsHierarchical(reduct)) {
    return Status::FailedPrecondition(
        "Sigma-reduct is not hierarchical; FDs do not help this query");
  }
  return VariableOrder::CanonicalFor(reduct, q);
}

}  // namespace incr
