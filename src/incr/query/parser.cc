#include "incr/query/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace incr {

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  /// Consumes `c` if it is next; returns whether it was.
  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes an identifier ([A-Za-z_][A-Za-z0-9_]*); empty on failure.
  std::string Ident() {
    SkipWs();
    size_t start = pos_;
    auto is_start = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto is_cont = [&](char c) {
      return is_start(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    if (pos_ < text_.size() && is_start(text_[pos_])) {
      ++pos_;
      while (pos_ < text_.size() && is_cont(text_[pos_])) ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  size_t pos() const { return pos_; }

  /// 1-based line and column of the current position, for error messages
  /// (query text arrives from REPL input and .repro files, where "line 3,
  /// column 7" is actionable and a byte offset is not).
  std::pair<size_t, size_t> LineCol() const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return {line, col};
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status SyntaxError(const Lexer& lex, const std::string& what) {
  auto [line, col] = lex.LineCol();
  return Status::InvalidArgument("parse error at line " +
                                 std::to_string(line) + ", column " +
                                 std::to_string(col) + ": " + what);
}

// Parses "( v1, v2, ... )" (possibly empty); appends to `out`.
Status ParseVarList(Lexer& lex, VarRegistry* vars, Schema* out,
                    char terminator) {
  bool first = true;
  for (;;) {
    if (lex.Eat(terminator)) return Status::Ok();
    if (!first && !lex.Eat(',')) {
      return SyntaxError(lex, "expected ',' or terminator in variable list");
    }
    std::string name = lex.Ident();
    if (name.empty()) return SyntaxError(lex, "expected variable name");
    out->push_back(vars->GetOrCreate(name));
    first = false;
  }
}

struct Head {
  std::string name;
  Schema output;
  Schema input;
  bool has_pipe = false;
};

StatusOr<Head> ParseHead(Lexer& lex, VarRegistry* vars) {
  Head head;
  head.name = lex.Ident();
  if (head.name.empty()) return SyntaxError(lex, "expected query name");
  if (!lex.Eat('(')) return SyntaxError(lex, "expected '(' after name");
  // Output vars until ')' or '|'.
  bool first = true;
  for (;;) {
    if (lex.Eat(')')) return head;
    if (lex.Eat('|')) {
      head.has_pipe = true;
      break;
    }
    if (!first && !lex.Eat(',')) {
      return SyntaxError(lex, "expected ',', '|' or ')' in head");
    }
    std::string name = lex.Ident();
    if (name.empty()) return SyntaxError(lex, "expected variable in head");
    head.output.push_back(vars->GetOrCreate(name));
    first = false;
  }
  Status st = ParseVarList(lex, vars, &head.input, ')');
  if (!st.ok()) return st;
  return head;
}

StatusOr<std::vector<Atom>> ParseBody(Lexer& lex, VarRegistry* vars) {
  if (!lex.Eat('=')) return SyntaxError(lex, "expected '='");
  std::vector<Atom> atoms;
  for (;;) {
    std::string rel = lex.Ident();
    if (rel.empty()) return SyntaxError(lex, "expected relation name");
    if (!lex.Eat('(')) return SyntaxError(lex, "expected '(' after relation");
    Atom atom;
    atom.relation = rel;
    Status st = ParseVarList(lex, vars, &atom.schema, ')');
    if (!st.ok()) return st;
    if (atom.schema.empty()) {
      return SyntaxError(lex, "atoms need at least one variable");
    }
    // A variable may not repeat inside one atom: relation schemas bind each
    // column to a distinct variable, and the storage layer keys tuples by
    // position — R(A, A) would silently drop the implied equality.
    for (size_t i = 0; i < atom.schema.size(); ++i) {
      for (size_t j = i + 1; j < atom.schema.size(); ++j) {
        if (atom.schema[i] == atom.schema[j]) {
          return SyntaxError(lex, "variable '" +
                                      vars->Name(atom.schema[i]) +
                                      "' repeats within atom '" + rel + "'");
        }
      }
    }
    // Atoms naming the same relation are self-joins over one stored copy,
    // so their arities must agree (the engines and the recompute oracle
    // alias them by name).
    for (const Atom& prev : atoms) {
      if (prev.relation == rel && prev.schema.size() != atom.schema.size()) {
        return SyntaxError(
            lex, "relation '" + rel + "' used with arity " +
                     std::to_string(atom.schema.size()) +
                     " after earlier arity " +
                     std::to_string(prev.schema.size()));
      }
    }
    atoms.push_back(std::move(atom));
    if (lex.AtEnd()) return atoms;
    if (!lex.Eat(',') && !lex.Eat('*')) {
      return SyntaxError(lex, "expected ',' between atoms");
    }
  }
}

// Every head variable must be bound by some body atom: an unbound one has
// no defining occurrence, and the planner would abort building a variable
// order for it. Rejecting here names the variable instead.
Status CheckHeadSafety(const Head& head, const std::vector<Atom>& atoms,
                       const VarRegistry& vars) {
  auto bound = [&](Var v) {
    for (const Atom& a : atoms) {
      if (FindVar(a.schema, v).has_value()) return true;
    }
    return false;
  };
  for (const Schema* part : {&head.output, &head.input}) {
    for (size_t i = 0; i < part->size(); ++i) {
      Var v = (*part)[i];
      if (!bound(v)) {
        return Status::InvalidArgument("head variable '" + vars.Name(v) +
                                       "' does not occur in the query body");
      }
      for (size_t j = i + 1; j < part->size(); ++j) {
        if ((*part)[j] == v) {
          return Status::InvalidArgument("head variable '" + vars.Name(v) +
                                         "' is listed twice");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text, VarRegistry* vars) {
  Lexer lex(text);
  auto head = ParseHead(lex, vars);
  if (!head.ok()) return head.status();
  if (head->has_pipe) {
    return Status::InvalidArgument(
        "head contains '|'; use ParseCqap for access-pattern queries");
  }
  auto atoms = ParseBody(lex, vars);
  if (!atoms.ok()) return atoms.status();
  Status st = CheckHeadSafety(*head, *atoms, *vars);
  if (!st.ok()) return st;
  return Query(head->name, head->output, *std::move(atoms));
}

StatusOr<CqapQuery> ParseCqap(std::string_view text, VarRegistry* vars) {
  Lexer lex(text);
  auto head = ParseHead(lex, vars);
  if (!head.ok()) return head.status();
  auto atoms = ParseBody(lex, vars);
  if (!atoms.ok()) return atoms.status();
  Status st = CheckHeadSafety(*head, *atoms, *vars);
  if (!st.ok()) return st;
  return CqapQuery::Make(head->name, head->input, head->output,
                         *std::move(atoms));
}

}  // namespace incr
