#include "incr/query/variable_order.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "incr/query/properties.h"
#include "incr/util/check.h"

namespace incr {

namespace {

// atoms(X) as a bitmask over atom indexes.
uint64_t AtomMask(const Query& q, Var v) {
  uint64_t m = 0;
  for (size_t i = 0; i < q.atoms().size(); ++i) {
    if (SchemaContains(q.atoms()[i].schema, v)) m |= uint64_t{1} << i;
  }
  return m;
}

}  // namespace

StatusOr<VariableOrder> VariableOrder::Build(const Query& q,
                                             const std::vector<Var>& vars,
                                             const std::vector<int>& parents) {
  INCR_CHECK(vars.size() == parents.size());
  VariableOrder vo;
  vo.nodes_.resize(vars.size());
  std::map<Var, int> node_of;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (parents[i] >= static_cast<int>(i)) {
      return Status::InvalidArgument("parents must precede children");
    }
    if (!node_of.emplace(vars[i], static_cast<int>(i)).second) {
      return Status::InvalidArgument("duplicate variable in order");
    }
    VoNode& n = vo.nodes_[i];
    n.var = vars[i];
    n.parent = parents[i];
    n.free = q.IsFree(vars[i]);
    if (n.parent >= 0) {
      vo.nodes_[n.parent].children.push_back(static_cast<int>(i));
      n.depth = vo.nodes_[n.parent].depth + 1;
    } else {
      vo.roots_.push_back(static_cast<int>(i));
    }
  }
  // Every variable of the query must be a node.
  for (Var v : q.AllVars()) {
    if (node_of.find(v) == node_of.end()) {
      return Status::InvalidArgument("variable missing from order");
    }
  }

  // Anchor each atom at its deepest variable; all other variables of the
  // atom must be ancestors of the anchor.
  for (size_t ai = 0; ai < q.atoms().size(); ++ai) {
    const Schema& s = q.atoms()[ai].schema;
    if (s.empty()) return Status::InvalidArgument("empty atom schema");
    int anchor = -1;
    for (Var v : s) {
      auto it = node_of.find(v);
      INCR_CHECK(it != node_of.end());
      if (anchor == -1 ||
          vo.nodes_[it->second].depth > vo.nodes_[anchor].depth) {
        anchor = it->second;
      }
    }
    for (Var v : s) {
      int n = node_of[v];
      // Walk up from anchor; v must appear on the path.
      int cur = anchor;
      bool found = false;
      while (cur != -1) {
        if (cur == n) {
          found = true;
          break;
        }
        cur = vo.nodes_[cur].parent;
      }
      if (!found) {
        return Status::InvalidArgument(
            "atom variables not on one root-to-node path");
      }
    }
    vo.nodes_[anchor].atoms.push_back(ai);
  }

  // key(X) = (union of schemas of atoms anchored in subtree(X)) intersected
  // with ancestors(X), ordered root-first. Computed by aggregating subtree
  // variable sets bottom-up (children have larger indexes than parents).
  std::vector<Schema> subtree_vars(vo.nodes_.size());
  for (size_t i = vo.nodes_.size(); i-- > 0;) {
    Schema& sv = subtree_vars[i];
    for (size_t ai : vo.nodes_[i].atoms) {
      sv = SchemaUnion(sv, q.atoms()[ai].schema);
    }
    for (int c : vo.nodes_[i].children) {
      sv = SchemaUnion(sv, subtree_vars[c]);
    }
    // Groundedness: X must occur in some atom of its own subtree.
    if (!SchemaContains(sv, vo.nodes_[i].var)) {
      return Status::InvalidArgument("variable occurs in no subtree atom");
    }
    // Ancestors root-first.
    Schema ancestors;
    {
      SmallVector<Var, 4> rev;
      int cur = vo.nodes_[i].parent;
      while (cur != -1) {
        rev.push_back(vo.nodes_[cur].var);
        cur = vo.nodes_[cur].parent;
      }
      for (size_t k = rev.size(); k-- > 0;) ancestors.push_back(rev[k]);
    }
    vo.nodes_[i].key = SchemaIntersect(ancestors, sv);
  }

  // Preorder: roots first, then children (stable DFS).
  vo.preorder_.reserve(vo.nodes_.size());
  std::vector<int> stack(vo.roots_.rbegin(), vo.roots_.rend());
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    vo.preorder_.push_back(n);
    for (auto it = vo.nodes_[n].children.rbegin();
         it != vo.nodes_[n].children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return vo;
}

StatusOr<VariableOrder> VariableOrder::Canonical(const Query& q) {
  return CanonicalWithPriority(
      q, [&q](Var v) { return q.IsFree(v) ? 0 : 1; });
}

StatusOr<VariableOrder> VariableOrder::CanonicalWithPriority(
    const Query& q, const std::function<int(Var)>& priority) {
  if (!IsHierarchical(q)) {
    return Status::FailedPrecondition(
        "canonical variable order requires a hierarchical query");
  }
  Schema all = q.AllVars();
  // Group variables into classes by atoms(.) mask; low-priority (e.g. free
  // before bound) within a class so that, for q-hierarchical queries, free
  // variables form an ancestor-closed prefix.
  struct VarClass {
    uint64_t mask;
    std::vector<Var> members;
  };
  std::map<uint64_t, VarClass> classes;
  for (Var v : all) {
    uint64_t m = AtomMask(q, v);
    if (m == 0) {
      return Status::InvalidArgument("variable occurs in no atom");
    }
    auto& c = classes[m];
    c.mask = m;
    c.members.push_back(v);
  }
  for (auto& [mask, c] : classes) {
    std::stable_sort(c.members.begin(), c.members.end(),
                     [&](Var a, Var b) { return priority(a) < priority(b); });
  }
  // Parent class of c: the class with the smallest strict superset mask
  // (popcount-minimal). Hierarchy guarantees superset masks form a chain.
  std::vector<const VarClass*> order;  // classes sorted by popcount asc? No:
  // we need parents before children, i.e. larger (superset) masks first.
  for (const auto& [mask, c] : classes) order.push_back(&c);
  std::sort(order.begin(), order.end(),
            [](const VarClass* a, const VarClass* b) {
              int pa = __builtin_popcountll(a->mask);
              int pb = __builtin_popcountll(b->mask);
              if (pa != pb) return pa > pb;
              return a->mask < b->mask;
            });

  std::vector<Var> vars;
  std::vector<int> parents;
  std::map<uint64_t, int> class_tail;  // mask -> node index of deepest member
  for (const VarClass* c : order) {
    // Find parent class: smallest strict superset already emitted.
    int parent_node = -1;
    uint64_t best_mask = 0;
    for (const auto& [mask, tail] : class_tail) {
      if ((mask & c->mask) == c->mask && mask != c->mask) {
        if (best_mask == 0 ||
            __builtin_popcountll(mask) < __builtin_popcountll(best_mask)) {
          best_mask = mask;
          parent_node = tail;
        }
      }
    }
    for (Var v : c->members) {
      vars.push_back(v);
      parents.push_back(parent_node);
      parent_node = static_cast<int>(vars.size()) - 1;  // chain within class
    }
    class_tail[c->mask] = parent_node;
  }
  return Build(q, vars, parents);
}

StatusOr<VariableOrder> VariableOrder::FromParents(
    const Query& q, const std::vector<Var>& vars,
    const std::vector<int>& parents) {
  return Build(q, vars, parents);
}

StatusOr<VariableOrder> VariableOrder::FromPath(const Query& q,
                                                const std::vector<Var>& vars) {
  std::vector<int> parents(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    parents[i] = static_cast<int>(i) - 1;
  }
  return Build(q, vars, parents);
}

StatusOr<VariableOrder> VariableOrder::CanonicalFor(const Query& structure,
                                                    const Query& target) {
  auto vo = Canonical(structure);
  if (!vo.ok()) return vo.status();
  std::vector<Var> vars;
  std::vector<int> parents;
  vars.reserve(vo->nodes().size());
  for (int i : vo->preorder()) {
    vars.push_back(vo->nodes()[i].var);
  }
  // Re-map parents through the preorder permutation.
  std::vector<int> pos(vo->nodes().size());
  for (size_t k = 0; k < vo->preorder().size(); ++k) {
    pos[static_cast<size_t>(vo->preorder()[k])] = static_cast<int>(k);
  }
  for (int i : vo->preorder()) {
    int p = vo->nodes()[i].parent;
    parents.push_back(p == -1 ? -1 : pos[static_cast<size_t>(p)]);
  }
  return Build(target, vars, parents);
}

int VariableOrder::NodeOf(Var v) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].var == v) return static_cast<int>(i);
  }
  return -1;
}

bool VariableOrder::FreeVarsAncestorClosed() const {
  for (const VoNode& n : nodes_) {
    if (n.free && n.parent != -1 && !nodes_[n.parent].free) return false;
  }
  return true;
}

std::string VariableOrder::ToString(const VarRegistry& vars) const {
  std::string out;
  for (int i : preorder_) {
    const VoNode& n = nodes_[static_cast<size_t>(i)];
    for (int d = 0; d < n.depth; ++d) out += "  ";
    out += vars.Name(n.var);
    if (n.free) out += "*";
    out += " key=" + SchemaToString(n.key, vars);
    out += " atoms=" + std::to_string(n.atoms.size());
    out += "\n";
  }
  return out;
}

}  // namespace incr
