// Conjunctive queries with free access patterns — CQAPs (paper §4.3,
// [Kara, Nikolic, Olteanu, Zhang]): the free variables are split into
// *input* variables, whose values arrive with each access request, and
// *output* variables, enumerated per request.
//
// This module implements the fracture construction (Def. 4.7) and the
// syntactic tractability test of Thm. 4.8: a CQAP admits O(|D|)
// preprocessing, O(1) update and O(1) enumeration delay iff its fracture is
// hierarchical, free-dominant and input-dominant.
#ifndef INCR_QUERY_CQAP_H_
#define INCR_QUERY_CQAP_H_

#include <utility>
#include <vector>

#include "incr/query/query.h"

namespace incr {

/// A CQAP Q(output | input) = PROD_i R_i(S_i) with bound variables
/// aggregated away. `query.free()` must equal input + output.
struct CqapQuery {
  Query query;
  Schema input;
  Schema output;

  /// Convenience constructor enforcing free = input + output.
  static CqapQuery Make(std::string name, Schema input, Schema output,
                        std::vector<Atom> atoms) {
    Schema free = input;
    for (Var v : output) free.push_back(v);
    CqapQuery q;
    q.query = Query(std::move(name), free, std::move(atoms));
    q.input = std::move(input);
    q.output = std::move(output);
    return q;
  }
};

/// The fracture Q_dagger of a CQAP (Def. 4.7), decomposed into connected
/// components. Fresh variables are minted above the maximum var id in use.
struct Fracture {
  struct Component {
    /// The component's query: free variables are its (fresh) input
    /// variables followed by its (original) output variables.
    Query query;
    /// Original atom indexes that landed in this component.
    std::vector<size_t> atom_ids;
    /// Fresh input variables of this component paired with the original
    /// input variable they derive from.
    std::vector<std::pair<Var, Var>> inputs;  // (fresh, original)
    /// Original output variables appearing in this component.
    Schema output;
  };

  std::vector<Component> components;

  /// The whole fractured query (union of the components), with its fresh
  /// input variable set — the object Thm. 4.8's conditions inspect.
  Query fractured;
  Schema fractured_input;
};

/// Computes the fracture of `q`.
Fracture ComputeFracture(const CqapQuery& q);

/// B dominates A iff atoms(A) is a strict subset of atoms(B). The query is
/// free-dominant if dominators of free variables are free.
bool IsFreeDominant(const Query& q);

/// Input-dominant: dominators of variables in `input` are in `input`.
bool IsInputDominant(const Query& q, const Schema& input);

/// Thm. 4.8 upper-bound side: the fracture is hierarchical, free-dominant
/// and input-dominant.
bool IsTractableCqap(const CqapQuery& q);

}  // namespace incr

#endif  // INCR_QUERY_CQAP_H_
