// Variable orders: the forests that shape view trees (paper §4.1, Fig. 3).
//
// A variable order for query Q is a forest over Q's variables such that the
// variables of each atom lie on one root-to-node path; the atom is anchored
// at the deepest of its variables. Each node X carries its dependency set
// key(X): the ancestors of X that occur in atoms anchored in X's subtree —
// the group-by key of the view the engine materializes at X.
//
// For a hierarchical query the *canonical* variable order (ancestors =
// strictly larger atoms(.) sets, free variables first within ties) makes
// every propagation lookup fully keyed, which is what yields O(1)
// single-tuple updates for q-hierarchical queries (Thm. 4.1).
#ifndef INCR_QUERY_VARIABLE_ORDER_H_
#define INCR_QUERY_VARIABLE_ORDER_H_

#include <functional>
#include <vector>

#include "incr/query/query.h"
#include "incr/util/status.h"

namespace incr {

struct VoNode {
  Var var = 0;
  int parent = -1;              ///< node index of parent, -1 for roots
  std::vector<int> children;    ///< node indexes
  std::vector<size_t> atoms;    ///< atom indexes anchored at this node
  Schema key;                   ///< dep(X), ordered root-first
  bool free = false;            ///< X is a free (group-by) variable of Q
  int depth = 0;                ///< 0 for roots
};

class VariableOrder {
 public:
  /// The canonical order for a hierarchical query. Fails if `q` is not
  /// hierarchical or has a free variable occurring in no atom.
  static StatusOr<VariableOrder> Canonical(const Query& q);

  /// Canonical order with a custom priority for ordering variables with
  /// equal atoms(.) sets: lower priority values go higher in the forest.
  /// Canonical(q) is CanonicalWithPriority with free=0, bound=1 — used by
  /// the CQAP engine to place input variables above output variables.
  static StatusOr<VariableOrder> CanonicalWithPriority(
      const Query& q, const std::function<int(Var)>& priority);

  /// Builds an order for `q` from an explicit forest: `vars[i]`'s parent is
  /// `vars[parents[i]]` (parents[i] == -1 for roots, and parents[i] < i).
  /// Fails if some atom's variables do not lie on one root-to-node path, or
  /// a variable occurs in no atom of its subtree.
  static StatusOr<VariableOrder> FromParents(const Query& q,
                                             const std::vector<Var>& vars,
                                             const std::vector<int>& parents);

  /// A left-deep path order following `vars` (valid for every query, at the
  /// cost of larger keys): vars[i]'s parent is vars[i-1].
  static StatusOr<VariableOrder> FromPath(const Query& q,
                                          const std::vector<Var>& vars);

  /// Builds the canonical order of `structure` (e.g. an FD-reduct,
  /// Thm. 4.11) and re-anchors the atoms of `target` on the same forest.
  /// Both queries must range over the same variables, with target's atom
  /// schemas contained in structure's (per atom index).
  static StatusOr<VariableOrder> CanonicalFor(const Query& structure,
                                              const Query& target);

  const std::vector<VoNode>& nodes() const { return nodes_; }
  const std::vector<int>& roots() const { return roots_; }

  /// Node indexes, parents before children.
  const std::vector<int>& preorder() const { return preorder_; }

  /// Node index of variable `v`; -1 if absent.
  int NodeOf(Var v) const;

  /// True if every free node's parent is free (free variables form an
  /// ancestor-closed sub-forest) — the shape required for constant-delay
  /// enumeration of the query output.
  bool FreeVarsAncestorClosed() const;

  /// Renders the forest for debugging, e.g. "A(key=) -> [B(key=A)]".
  std::string ToString(const VarRegistry& vars) const;

 private:
  static StatusOr<VariableOrder> Build(const Query& q,
                                       const std::vector<Var>& vars,
                                       const std::vector<int>& parents);

  std::vector<VoNode> nodes_;
  std::vector<int> roots_;
  std::vector<int> preorder_;
};

}  // namespace incr

#endif  // INCR_QUERY_VARIABLE_ORDER_H_
