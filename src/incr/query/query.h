// Query IR (paper §2): conjunctive queries with group-by aggregates,
//
//   Q(X_1..X_f) = SUM_{X_{f+1}} .. SUM_{X_m}  PROD_i R_i(S_i)
//
// represented as a set of atoms over variables plus the list of free
// (group-by) variables. Aggregation semantics live in the engines; the IR
// only carries structure, which is what all the §4 classifications inspect.
#ifndef INCR_QUERY_QUERY_H_
#define INCR_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "incr/data/schema.h"

namespace incr {

/// One atom R_i(S_i): a relation symbol applied to a tuple of variables.
struct Atom {
  std::string relation;
  Schema schema;
};

/// A conjunctive query with free (group-by) variables.
class Query {
 public:
  Query() = default;
  Query(std::string name, Schema free, std::vector<Atom> atoms)
      : name_(std::move(name)), free_(std::move(free)),
        atoms_(std::move(atoms)) {}

  const std::string& name() const { return name_; }
  const Schema& free() const { return free_; }
  const std::vector<Atom>& atoms() const { return atoms_; }

  bool IsFree(Var v) const { return SchemaContains(free_, v); }

  /// All variables, in first-occurrence order across atoms.
  Schema AllVars() const;

  /// Variables that are aggregated away.
  Schema BoundVars() const;

  /// atoms(X): indexes of the atoms whose schema contains `v`.
  std::vector<size_t> AtomsContaining(Var v) const;

  /// True if no relation symbol repeats (required by the dichotomies of
  /// Thm. 4.1 and Thm. 4.8).
  bool IsSelfJoinFree() const;

  /// Renders e.g. "Q(A) = R(A,B) * S(B)" using the registry's names.
  std::string ToString(const VarRegistry& vars) const;

 private:
  std::string name_;
  Schema free_;
  std::vector<Atom> atoms_;
};

}  // namespace incr

#endif  // INCR_QUERY_QUERY_H_
