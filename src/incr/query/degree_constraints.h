// Generalizations of the §4.4 functional-dependency rewriting:
//
// * Bounded-degree constraints: "an X-value is paired with at most k
//   distinct Y-values in S" (an FD is the k=1 case). The Sigma-reduct
//   argument goes through unchanged — extending each atom's schema by the
//   determined variables blows the relation up by at most a constant
//   factor k — so the classification is the FD classification and the
//   FD-guided view tree's group scans are bounded by k instead of 1.
//
// * Small-domain constraints [5]: "a column has a constant number of
//   values". A query with small-domain variables shatters: for each
//   assignment of the small variables (constantly many) the residual
//   query — the query with those variables deleted from every atom — is
//   maintained independently. The whole query has the best possible
//   maintenance iff the residual query is q-hierarchical.
#ifndef INCR_QUERY_DEGREE_CONSTRAINTS_H_
#define INCR_QUERY_DEGREE_CONSTRAINTS_H_

#include <vector>

#include "incr/query/fd.h"
#include "incr/query/query.h"

namespace incr {

/// lhs determines at most `bound` distinct rhs tuples.
struct DegreeConstraint {
  Schema lhs;
  Schema rhs;
  int64_t bound = 1;  // 1 == functional dependency
};

using DegreeConstraintSet = std::vector<DegreeConstraint>;

/// The FD set forgetting the bounds (for reduct computation).
FdSet AsFds(const DegreeConstraintSet& constraints);

/// Thm. 4.11 generalized: q maintainable with O(1) updates and delay over
/// databases satisfying the constraints, with constants scaling in the
/// degree bounds.
bool IsQHierarchicalUnderDegreeConstraints(const Query& q,
                                           const DegreeConstraintSet& dcs);

/// The residual query: `small` variables deleted from every atom schema
/// and from the free tuple. Atoms whose schema becomes empty are dropped:
/// per shard they degenerate to scalar factors, which are O(1) to
/// maintain and do not affect the classification.
Query ShatterSmallDomains(const Query& q, const Schema& small);

/// Small-domain tractability: the residual query is q-hierarchical.
bool IsQHierarchicalUnderSmallDomains(const Query& q, const Schema& small);

}  // namespace incr

#endif  // INCR_QUERY_DEGREE_CONSTRAINTS_H_
