#include "incr/query/cqap.h"

#include <algorithm>
#include <map>

#include "incr/query/properties.h"
#include "incr/util/check.h"

namespace incr {

namespace {

// Union-find over atom indexes.
struct UnionFind {
  std::vector<size_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = i;
  }
  size_t Find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent[Find(a)] = Find(b); }
};

}  // namespace

Fracture ComputeFracture(const CqapQuery& q) {
  const auto& atoms = q.query.atoms();
  Var next_fresh = 0;
  for (Var v : q.query.AllVars()) next_fresh = std::max(next_fresh, v + 1);

  // Step 1: replace every *occurrence* of an input variable with a fresh
  // variable (one per atom position).
  struct Occurrence {
    size_t atom;
    uint32_t col;
    Var original;
    Var fresh;
  };
  std::vector<Occurrence> occs;
  std::vector<Schema> schemas;
  for (size_t ai = 0; ai < atoms.size(); ++ai) {
    Schema s = atoms[ai].schema;
    for (uint32_t c = 0; c < s.size(); ++c) {
      if (SchemaContains(q.input, s[c])) {
        occs.push_back({ai, c, s[c], next_fresh});
        s[c] = next_fresh++;
      }
    }
    schemas.push_back(s);
  }

  // Step 2: connected components of the modified query (atoms share only
  // non-input variables now).
  UnionFind uf(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      if (!SchemaIntersect(schemas[i], schemas[j]).empty()) uf.Union(i, j);
    }
  }

  // Step 3: within each component, unify fresh variables originating from
  // the same input variable into one fresh input variable per component.
  std::map<std::pair<size_t, Var>, Var> unified;  // (component root, orig)
  for (const Occurrence& o : occs) {
    size_t root = uf.Find(o.atom);
    auto key = std::make_pair(root, o.original);
    auto it = unified.find(key);
    Var target;
    if (it == unified.end()) {
      target = next_fresh++;
      unified.emplace(key, target);
    } else {
      target = it->second;
    }
    // Rewrite the occurrence to the component's unified input variable.
    for (Var& v : schemas[o.atom]) {
      if (v == o.fresh) v = target;
    }
  }

  // Assemble components.
  Fracture out;
  std::map<size_t, size_t> comp_of_root;
  for (size_t ai = 0; ai < atoms.size(); ++ai) {
    size_t root = uf.Find(ai);
    auto it = comp_of_root.find(root);
    if (it == comp_of_root.end()) {
      comp_of_root.emplace(root, out.components.size());
      out.components.emplace_back();
    }
  }
  std::vector<std::vector<Atom>> comp_atoms(out.components.size());
  for (size_t ai = 0; ai < atoms.size(); ++ai) {
    size_t ci = comp_of_root[uf.Find(ai)];
    comp_atoms[ci].push_back(Atom{atoms[ai].relation, schemas[ai]});
    out.components[ci].atom_ids.push_back(ai);
  }
  for (const auto& [key, fresh] : unified) {
    size_t ci = comp_of_root[key.first];
    out.components[ci].inputs.emplace_back(fresh, key.second);
  }

  std::vector<Atom> all_atoms;
  Schema all_free;
  for (size_t ci = 0; ci < out.components.size(); ++ci) {
    Fracture::Component& comp = out.components[ci];
    Schema comp_free;
    for (const auto& [fresh, orig] : comp.inputs) {
      comp_free.push_back(fresh);
      out.fractured_input.push_back(fresh);
    }
    for (const Atom& a : comp_atoms[ci]) {
      for (Var v : a.schema) {
        if (SchemaContains(q.output, v) && !SchemaContains(comp.output, v)) {
          comp.output.push_back(v);
        }
      }
    }
    for (Var v : comp.output) comp_free.push_back(v);
    comp.query = Query(q.query.name() + "_c" + std::to_string(ci), comp_free,
                       comp_atoms[ci]);
    for (const Atom& a : comp_atoms[ci]) all_atoms.push_back(a);
    for (Var v : comp_free) all_free.push_back(v);
  }
  out.fractured =
      Query(q.query.name() + "_fracture", all_free, std::move(all_atoms));
  return out;
}

bool IsFreeDominant(const Query& q) {
  Schema vars = q.AllVars();
  for (Var a : vars) {
    if (!q.IsFree(a)) continue;
    auto atoms_a = q.AtomsContaining(a);
    for (Var b : vars) {
      if (a == b || q.IsFree(b)) continue;
      auto atoms_b = q.AtomsContaining(b);
      // b dominates a: atoms(a) strict subset of atoms(b).
      bool subset = std::includes(atoms_b.begin(), atoms_b.end(),
                                  atoms_a.begin(), atoms_a.end());
      if (subset && atoms_b.size() > atoms_a.size()) return false;
    }
  }
  return true;
}

bool IsInputDominant(const Query& q, const Schema& input) {
  Schema vars = q.AllVars();
  for (Var a : vars) {
    if (!SchemaContains(input, a)) continue;
    auto atoms_a = q.AtomsContaining(a);
    for (Var b : vars) {
      if (a == b || SchemaContains(input, b)) continue;
      auto atoms_b = q.AtomsContaining(b);
      bool subset = std::includes(atoms_b.begin(), atoms_b.end(),
                                  atoms_a.begin(), atoms_a.end());
      if (subset && atoms_b.size() > atoms_a.size()) return false;
    }
  }
  return true;
}

bool IsTractableCqap(const CqapQuery& q) {
  Fracture f = ComputeFracture(q);
  return IsHierarchical(f.fractured) && IsFreeDominant(f.fractured) &&
         IsInputDominant(f.fractured, f.fractured_input);
}

}  // namespace incr
