// A small text syntax for conjunctive queries with group-by aggregates,
// used by the REPL example and handy in tests:
//
//   Q(A, B, C) = R(A, B), S(B, C)        free variables in the head
//   Count() = R(A, B), S(B, C)           fully aggregated (Boolean/count)
//   Q(A | B) = S(A, B), T(B)             CQAP: output | input
//
// Variable names are registered in the caller's VarRegistry; relation
// names are arbitrary identifiers. Whitespace is insignificant.
#ifndef INCR_QUERY_PARSER_H_
#define INCR_QUERY_PARSER_H_

#include <string_view>

#include "incr/query/cqap.h"
#include "incr/query/query.h"
#include "incr/util/status.h"

namespace incr {

/// Parses "Name(vars) = Atom(vars), Atom(vars), ...".
StatusOr<Query> ParseQuery(std::string_view text, VarRegistry* vars);

/// Parses the CQAP form "Name(out | in) = ...". A head without '|' is a
/// CQAP with empty input.
StatusOr<CqapQuery> ParseCqap(std::string_view text, VarRegistry* vars);

}  // namespace incr

#endif  // INCR_QUERY_PARSER_H_
