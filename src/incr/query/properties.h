// Structural query classifications driving the dichotomies of paper §4:
// hierarchical and q-hierarchical (Def. 4.2 / Thm. 4.1), alpha-acyclicity
// (GYO reduction), and free-connexity.
#ifndef INCR_QUERY_PROPERTIES_H_
#define INCR_QUERY_PROPERTIES_H_

#include "incr/query/query.h"

namespace incr {

/// Def. 4.2: for any two variables X, Y: atoms(X) and atoms(Y) are
/// comparable by inclusion or disjoint.
bool IsHierarchical(const Query& q);

/// Def. 4.2: hierarchical, and whenever atoms(X) is a strict superset of
/// atoms(Y) with Y free, X is free too. Thm. 4.1: exactly the self-join-free
/// CQs maintainable with O(N) preprocessing, O(1) update, O(1) delay.
bool IsQHierarchical(const Query& q);

/// Alpha-acyclicity via GYO reduction (repeatedly remove ear atoms and
/// isolated variables until empty or stuck).
bool IsAlphaAcyclic(const Query& q);

/// Free-connex: alpha-acyclic and still alpha-acyclic after adding a
/// virtual atom holding exactly the free variables. The q-hierarchical
/// queries are a strict subclass of the free-connex alpha-acyclic queries
/// (paper §4.1).
bool IsFreeConnex(const Query& q);

}  // namespace incr

#endif  // INCR_QUERY_PROPERTIES_H_
