#include "incr/query/query.h"

#include <unordered_set>

namespace incr {

Schema Query::AllVars() const {
  Schema out;
  for (const Atom& a : atoms_) {
    for (Var v : a.schema) {
      if (!SchemaContains(out, v)) out.push_back(v);
    }
  }
  // Free variables that appear in no atom (unsafe queries) still count.
  for (Var v : free_) {
    if (!SchemaContains(out, v)) out.push_back(v);
  }
  return out;
}

Schema Query::BoundVars() const { return SchemaMinus(AllVars(), free_); }

std::vector<size_t> Query::AtomsContaining(Var v) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (SchemaContains(atoms_[i].schema, v)) out.push_back(i);
  }
  return out;
}

bool Query::IsSelfJoinFree() const {
  std::unordered_set<std::string> seen;
  for (const Atom& a : atoms_) {
    if (!seen.insert(a.relation).second) return false;
  }
  return true;
}

std::string Query::ToString(const VarRegistry& vars) const {
  std::string out = name_.empty() ? "Q" : name_;
  out += SchemaToString(free_, vars);
  out += " = ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " * ";
    out += atoms_[i].relation;
    out += SchemaToString(atoms_[i].schema, vars);
  }
  return out;
}

}  // namespace incr
