// Cascading q-hierarchical rewritings (paper §4.2, Ex. 4.5, [12, 38]):
// given queries Q1 (not q-hierarchical) and Q2 (q-hierarchical), find a
// rewriting Q1' that replaces a sub-join of Q1 by a view atom over Q2's
// output, such that Q1' is equivalent to Q1. If Q1' is q-hierarchical, the
// pair {Q1, Q2} can be maintained with amortized constant update time and
// constant delay by piggybacking Q1's maintenance on Q2's enumeration.
#ifndef INCR_QUERY_REWRITING_H_
#define INCR_QUERY_REWRITING_H_

#include <map>

#include "incr/query/query.h"
#include "incr/util/status.h"

namespace incr {

/// A successful rewriting of q1 using q2's output as a view.
struct ViewRewriting {
  /// Variable homomorphism: q2 variable -> q1 variable.
  std::map<Var, Var> hom;
  /// q1 atoms replaced by the view (image of q2's atoms).
  std::vector<size_t> covered_atoms;
  /// The rewritten query: one atom `view_name` over hom(free(q2)) (in the
  /// order of `view_schema_source`), followed by q1's uncovered atoms.
  Query rewritten;
  /// q2 free variables in the order used for the view atom's schema.
  Schema view_schema_source;
};

/// Searches for a rewriting of `q1` using `q2` (both self-join-free or
/// small; the search is exponential only in |q2.atoms()|). Soundness
/// conditions enforced: the atom mapping is injective with a consistent,
/// injective variable homomorphism; every bound variable of q2 maps to a
/// variable that occurs only in covered atoms and is not free in q1.
/// `view_order` fixes the column order of the view atom (pass the
/// maintaining tree's output schema over q2's free variables).
StatusOr<ViewRewriting> FindViewRewriting(const Query& q1, const Query& q2,
                                          const std::string& view_name,
                                          const Schema& view_order);

}  // namespace incr

#endif  // INCR_QUERY_REWRITING_H_
