// Functional dependencies (paper §4.4): closures, the Sigma-reduct of a
// query (Def. 4.9), and the rewriting that lets non-(q-)hierarchical
// queries be maintained with the best possible complexity when the database
// satisfies the dependencies (Thm. 4.11, Ex. 4.10/4.12).
#ifndef INCR_QUERY_FD_H_
#define INCR_QUERY_FD_H_

#include <vector>

#include "incr/query/query.h"
#include "incr/query/variable_order.h"
#include "incr/util/status.h"

namespace incr {

/// A functional dependency lhs -> rhs.
struct Fd {
  Schema lhs;
  Schema rhs;
};

using FdSet = std::vector<Fd>;

/// C_Sigma(S): the closure of `vars` under `fds` (fixpoint of applying
/// every dependency whose lhs is contained in the set).
Schema FdClosure(const FdSet& fds, const Schema& vars);

/// The Sigma-reduct of Q (Def. 4.9): every atom's schema — and the free
/// variable tuple — is extended to its closure under `fds`.
Query SigmaReduct(const Query& q, const FdSet& fds);

/// True if the Sigma-reduct of `q` is q-hierarchical: by Thm. 4.11, `q` can
/// then be maintained with O(|D|) preprocessing, O(1) update and O(1) delay
/// over databases satisfying `fds`.
bool IsQHierarchicalUnderFds(const Query& q, const FdSet& fds);

/// Builds the maintenance variable order for `q` from its Sigma-reduct's
/// canonical order (the view tree of Fig. 6): the forest of the reduct,
/// with q's original atoms re-anchored on it. Propagation lookups that the
/// reduct makes fully-keyed become group scans whose size the dependencies
/// bound by a constant, so single-tuple updates stay O(1) on databases
/// satisfying `fds`.
StatusOr<VariableOrder> FdGuidedOrder(const Query& q, const FdSet& fds);

}  // namespace incr

#endif  // INCR_QUERY_FD_H_
