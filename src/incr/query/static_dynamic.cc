#include "incr/query/static_dynamic.h"

#include <algorithm>
#include <functional>

#include "incr/core/view_tree_plan.h"
#include "incr/util/check.h"

namespace incr {

namespace {

constexpr size_t kMaxSearchVars = 7;

// Checks one candidate forest (parent[i] indexes into vars, or -1).
bool TryOrder(const Query& q, const std::vector<Var>& all,
              const std::vector<int>& parent_var,
              const std::vector<size_t>& dynamic_atoms,
              StatusOr<VariableOrder>* out) {
  size_t n = all.size();
  // Topological order (parents first); also detects cycles.
  std::vector<int> order;
  std::vector<int> state(n, 0);  // 0 unvisited, 1 in progress, 2 done
  std::vector<int> pos(n, -1);
  std::function<bool(size_t)> visit = [&](size_t i) -> bool {
    if (state[i] == 2) return true;
    if (state[i] == 1) return false;  // cycle
    state[i] = 1;
    if (parent_var[i] >= 0 && !visit(static_cast<size_t>(parent_var[i]))) {
      return false;
    }
    state[i] = 2;
    pos[i] = static_cast<int>(order.size());
    order.push_back(static_cast<int>(i));
    return true;
  };
  for (size_t i = 0; i < n; ++i) {
    if (!visit(i)) return false;
  }
  std::vector<Var> vars(n);
  std::vector<int> parents(n);
  for (size_t k = 0; k < n; ++k) {
    size_t i = static_cast<size_t>(order[k]);
    vars[k] = all[i];
    parents[k] = parent_var[i] < 0
                     ? -1
                     : pos[static_cast<size_t>(parent_var[i])];
  }
  auto vo = VariableOrder::FromParents(q, vars, parents);
  if (!vo.ok()) return false;
  auto plan = ViewTreePlan::Make(q, *vo);
  if (!plan.ok()) return false;
  if (!plan->CanEnumerate().ok()) return false;
  if (!plan->ProgramsConstantTimeFor(dynamic_atoms)) return false;
  *out = *std::move(vo);
  return true;
}

}  // namespace

StatusOr<VariableOrder> FindMixedOrder(const Query& q,
                                       const std::vector<bool>& is_static) {
  INCR_CHECK(is_static.size() == q.atoms().size());
  std::vector<size_t> dynamic_atoms;
  for (size_t a = 0; a < is_static.size(); ++a) {
    if (!is_static[a]) dynamic_atoms.push_back(a);
  }
  // Fast path: the canonical order of a hierarchical query.
  {
    auto vo = VariableOrder::Canonical(q);
    if (vo.ok()) {
      auto plan = ViewTreePlan::Make(q, *vo);
      if (plan.ok() && plan->CanEnumerate().ok() &&
          plan->ProgramsConstantTimeFor(dynamic_atoms)) {
        return *std::move(vo);
      }
    }
  }
  Schema all_s = q.AllVars();
  size_t n = all_s.size();
  if (n > kMaxSearchVars) {
    return Status::FailedPrecondition(
        "mixed static/dynamic order search supports at most 7 variables");
  }
  std::vector<Var> all(all_s.begin(), all_s.end());
  // Exhaustive search over parent functions: each variable picks a parent
  // among the other variables or none ((n)^n candidates, cycles pruned).
  std::vector<int> parent_var(n, -1);
  StatusOr<VariableOrder> found =
      Status::FailedPrecondition("no mixed-tractable variable order exists");
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == n) return TryOrder(q, all, parent_var, dynamic_atoms, &found);
    for (int p = -1; p < static_cast<int>(n); ++p) {
      if (p == static_cast<int>(i)) continue;
      parent_var[i] = p;
      if (rec(i + 1)) return true;
    }
    parent_var[i] = -1;
    return false;
  };
  rec(0);
  return found;
}

bool IsTractableMixed(const Query& q, const std::vector<bool>& is_static) {
  return FindMixedOrder(q, is_static).ok();
}

}  // namespace incr
