#include "incr/query/properties.h"

#include <algorithm>
#include <vector>

namespace incr {

namespace {

// atoms(X) as a bitmask over atom indexes (queries here are small; the
// classifiers are polynomial regardless).
std::vector<uint64_t> AtomMasks(const Query& q, const Schema& vars) {
  std::vector<uint64_t> masks;
  masks.reserve(vars.size());
  for (Var v : vars) {
    uint64_t m = 0;
    for (size_t i = 0; i < q.atoms().size(); ++i) {
      if (SchemaContains(q.atoms()[i].schema, v)) m |= uint64_t{1} << i;
    }
    masks.push_back(m);
  }
  return masks;
}

bool GyoReduces(std::vector<Schema> edges) {
  // GYO: repeat (a) drop variables that occur in exactly one edge,
  // (b) drop edges contained in another edge; acyclic iff all edges vanish
  // (or only empty edges remain).
  bool changed = true;
  while (changed) {
    changed = false;
    // (a) isolated-variable elimination.
    for (size_t i = 0; i < edges.size(); ++i) {
      Schema kept;
      for (Var v : edges[i]) {
        int occurrences = 0;
        for (const Schema& e : edges) {
          if (SchemaContains(e, v)) ++occurrences;
        }
        if (occurrences > 1) kept.push_back(v);
      }
      if (kept.size() != edges[i].size()) {
        edges[i] = kept;
        changed = true;
      }
    }
    // (b) remove edges subsumed by another edge (including empty edges).
    for (size_t i = 0; i < edges.size(); ++i) {
      bool subsumed = edges[i].empty();
      for (size_t j = 0; !subsumed && j < edges.size(); ++j) {
        if (i != j && SchemaSubset(edges[i], edges[j]) &&
            !(SchemaSubset(edges[j], edges[i]) && j > i)) {
          // Ties (equal edges) are broken by index so only one survives.
          subsumed = true;
        }
      }
      if (subsumed) {
        edges.erase(edges.begin() + static_cast<long>(i));
        changed = true;
        --i;
      }
    }
  }
  return edges.empty();
}

}  // namespace

bool IsHierarchical(const Query& q) {
  Schema vars = q.AllVars();
  std::vector<uint64_t> masks = AtomMasks(q, vars);
  for (size_t i = 0; i < masks.size(); ++i) {
    for (size_t j = i + 1; j < masks.size(); ++j) {
      uint64_t inter = masks[i] & masks[j];
      if (inter == 0) continue;
      if (inter != masks[i] && inter != masks[j]) return false;
    }
  }
  return true;
}

bool IsQHierarchical(const Query& q) {
  if (!IsHierarchical(q)) return false;
  Schema vars = q.AllVars();
  std::vector<uint64_t> masks = AtomMasks(q, vars);
  for (size_t i = 0; i < vars.size(); ++i) {
    for (size_t j = 0; j < vars.size(); ++j) {
      if (i == j) continue;
      // atoms(X_i) strict superset of atoms(X_j), X_j free => X_i free.
      bool strict_superset =
          (masks[i] & masks[j]) == masks[j] && masks[i] != masks[j];
      if (strict_superset && q.IsFree(vars[j]) && !q.IsFree(vars[i])) {
        return false;
      }
    }
  }
  return true;
}

bool IsAlphaAcyclic(const Query& q) {
  std::vector<Schema> edges;
  edges.reserve(q.atoms().size());
  for (const Atom& a : q.atoms()) edges.push_back(a.schema);
  return GyoReduces(std::move(edges));
}

bool IsFreeConnex(const Query& q) {
  if (!IsAlphaAcyclic(q)) return false;
  std::vector<Schema> edges;
  edges.reserve(q.atoms().size() + 1);
  for (const Atom& a : q.atoms()) edges.push_back(a.schema);
  edges.push_back(q.free());
  return GyoReduces(std::move(edges));
}

}  // namespace incr
