#include "incr/query/degree_constraints.h"

#include "incr/query/properties.h"

namespace incr {

FdSet AsFds(const DegreeConstraintSet& constraints) {
  FdSet fds;
  fds.reserve(constraints.size());
  for (const DegreeConstraint& dc : constraints) {
    fds.push_back(Fd{dc.lhs, dc.rhs});
  }
  return fds;
}

bool IsQHierarchicalUnderDegreeConstraints(const Query& q,
                                           const DegreeConstraintSet& dcs) {
  return IsQHierarchicalUnderFds(q, AsFds(dcs));
}

Query ShatterSmallDomains(const Query& q, const Schema& small) {
  std::vector<Atom> atoms;
  for (const Atom& a : q.atoms()) {
    Schema s = SchemaMinus(a.schema, small);
    if (s.empty()) continue;  // a per-shard scalar factor
    atoms.push_back(Atom{a.relation, s});
  }
  return Query(q.name() + "_residual", SchemaMinus(q.free(), small),
               std::move(atoms));
}

bool IsQHierarchicalUnderSmallDomains(const Query& q, const Schema& small) {
  return IsQHierarchical(ShatterSmallDomains(q, small));
}

}  // namespace incr
