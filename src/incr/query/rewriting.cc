#include "incr/query/rewriting.h"

#include <functional>

#include "incr/util/check.h"

namespace incr {

namespace {

// Extends `hom` by mapping schema `from` onto schema `to` position-wise;
// returns false on conflict or non-injectivity.
bool ExtendHom(const Schema& from, const Schema& to, std::map<Var, Var>* hom) {
  if (from.size() != to.size()) return false;
  std::map<Var, Var> trial = *hom;
  for (size_t i = 0; i < from.size(); ++i) {
    auto it = trial.find(from[i]);
    if (it != trial.end()) {
      if (it->second != to[i]) return false;
    } else {
      trial.emplace(from[i], to[i]);
    }
  }
  // Injectivity (needed so the view's group-by key determines the covered
  // sub-join's free variables one-to-one).
  std::map<Var, Var> inverse;
  for (const auto& [a, b] : trial) {
    if (!inverse.emplace(b, a).second) return false;
  }
  *hom = trial;
  return true;
}

}  // namespace

StatusOr<ViewRewriting> FindViewRewriting(const Query& q1, const Query& q2,
                                          const std::string& view_name,
                                          const Schema& view_order) {
  const auto& a1 = q1.atoms();
  const auto& a2 = q2.atoms();
  INCR_CHECK(view_order.size() == q2.free().size());
  for (Var v : view_order) INCR_CHECK(q2.IsFree(v));

  std::map<Var, Var> hom;
  std::vector<size_t> image(a2.size());
  std::vector<bool> used(a1.size(), false);

  std::function<bool(size_t)> assign = [&](size_t i) -> bool {
    if (i == a2.size()) return true;
    for (size_t j = 0; j < a1.size(); ++j) {
      if (used[j] || a1[j].relation != a2[i].relation) continue;
      std::map<Var, Var> saved = hom;
      if (ExtendHom(a2[i].schema, a1[j].schema, &hom)) {
        used[j] = true;
        image[i] = j;
        if (assign(i + 1)) return true;
        used[j] = false;
      }
      hom = saved;
    }
    return false;
  };
  if (!assign(0)) {
    return Status::NotFound("no injective homomorphism from q2 into q1");
  }

  // Soundness: bound variables of q2 must map to q1 variables occurring
  // only in covered atoms and not free in q1 (otherwise marginalizing them
  // inside the view would drop join/output constraints).
  for (Var v : q2.BoundVars()) {
    Var w = hom.at(v);
    if (q1.IsFree(w)) {
      return Status::FailedPrecondition(
          "a bound variable of q2 maps to a free variable of q1");
    }
    for (size_t j = 0; j < a1.size(); ++j) {
      if (used[j]) continue;
      if (SchemaContains(a1[j].schema, w)) {
        return Status::FailedPrecondition(
            "a bound variable of q2 maps to a variable shared with "
            "uncovered atoms of q1");
      }
    }
  }

  ViewRewriting out;
  out.hom = hom;
  for (size_t j = 0; j < a1.size(); ++j) {
    if (used[j]) out.covered_atoms.push_back(j);
  }
  out.view_schema_source = view_order;
  Schema view_schema;
  for (Var v : view_order) view_schema.push_back(hom.at(v));
  std::vector<Atom> atoms;
  atoms.push_back(Atom{view_name, view_schema});
  for (size_t j = 0; j < a1.size(); ++j) {
    if (!used[j]) atoms.push_back(a1[j]);
  }
  out.rewritten = Query(q1.name() + "_rw", q1.free(), std::move(atoms));
  return out;
}

}  // namespace incr
