// Static versus dynamic relations (paper §4.5, [17]).
//
// Atoms are adorned static (never updated in the maintenance window) or
// dynamic. A non-q-hierarchical query may still admit O(1) single-tuple
// updates and O(1)-delay enumeration if some relations are static: the view
// tree only needs constant-time delta programs along the propagation paths
// of *dynamic* atoms, and static subtrees are precomputed once.
//
// FindMixedOrder searches the space of variable-order forests for one whose
// plan (a) is constant-time for every dynamic atom and (b) supports
// constant-delay enumeration. Queries here are small (<= 7 variables), so
// exhaustive search over parent functions is exact and fast; this recovers
// the paper's Ex. 4.14 tree automatically.
#ifndef INCR_QUERY_STATIC_DYNAMIC_H_
#define INCR_QUERY_STATIC_DYNAMIC_H_

#include <vector>

#include "incr/query/query.h"
#include "incr/query/variable_order.h"
#include "incr/util/status.h"

namespace incr {

/// Finds a variable order whose view-tree plan gives O(1) updates for every
/// dynamic atom and constant-delay enumeration. `is_static` is parallel to
/// q.atoms(). Returns FailedPrecondition if no such order exists (exact for
/// queries with at most 7 variables).
StatusOr<VariableOrder> FindMixedOrder(const Query& q,
                                       const std::vector<bool>& is_static);

/// True iff FindMixedOrder succeeds: the query is tractable in the mixed
/// static/dynamic setting (§4.5). With all atoms dynamic this coincides
/// with q-hierarchicality (Thm. 4.1).
bool IsTractableMixed(const Query& q, const std::vector<bool>& is_static);

}  // namespace incr

#endif  // INCR_QUERY_STATIC_DYNAMIC_H_
