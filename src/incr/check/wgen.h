// Random update-stream generation for the differential-testing harness.
// Streams are sequences of steps — a single-tuple delta or a batch of
// deltas — over a GenQuery's relations, with the adversarial features the
// maintenance paths are most sensitive to:
//
//   * Zipf-skewed join keys (hot keys concentrate delta merging and shard
//     imbalance);
//   * deletes targeted at live tuples (payloads hit exact zero and must
//     vanish from every view);
//   * self-cancelling insert/delete pairs inside one batch (the merged
//     batch drops them before any engine sees them);
//   * dictionary-growth churn: fresh interned strings appear as values, so
//     durable configs exercise kDict WAL records.
//
// Streams are over the Z ring (int64 multiplicities): Z is the universal
// carrier — every differential comparison runs in Z, and ring-homomorphism
// laws map a Z stream into other (semi)rings.
#ifndef INCR_CHECK_WGEN_H_
#define INCR_CHECK_WGEN_H_

#include <cstddef>
#include <vector>

#include "incr/check/qgen.h"
#include "incr/data/delta.h"
#include "incr/data/value.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace check {

/// One step of a stream: a single update or one batch (one WAL record).
struct StreamStep {
  bool is_batch = false;
  std::vector<Delta<IntRing>> deltas;  // exactly 1 when !is_batch
  /// Number of fresh strings interned while generating this step. The
  /// durable pass replays the growth (same "w<n>" strings, same order, into
  /// an initially empty dictionary) just before applying the step, so kDict
  /// WAL records land exactly where the application's interning would put
  /// them. Zero when churn is disabled.
  uint32_t dict_grow = 0;
};

struct Stream {
  std::vector<StreamStep> steps;
  bool insert_only = false;

  /// Total number of single-tuple deltas across all steps.
  size_t NumDeltas() const {
    size_t n = 0;
    for (const StreamStep& s : steps) n += s.deltas.size();
    return n;
  }
};

struct WGenOptions {
  size_t ops = 200;          // number of steps
  size_t domain = 8;         // values are drawn from [0, domain)
  double zipf_skew = 0.8;    // 0 = uniform
  double batch_prob = 0.35;  // probability a step is a batch
  size_t max_batch = 24;     // batch sizes are 1..max_batch
  double delete_prob = 0.35; // probability a delta deletes a live tuple
  double cancel_prob = 0.1;  // per-batch chance of a self-cancelling pair
  double dict_prob = 0.05;   // per-delta chance of a fresh interned string
  bool insert_only = false;  // suppress deletes (multiplicities stay > 0)
  /// When non-null, dictionary churn interns fresh strings here and uses
  /// their codes as values; null disables churn.
  Dictionary* dict = nullptr;
};

/// Deterministically samples a stream for `q` from `rng`. Generated
/// streams keep every (relation, tuple) multiplicity non-negative at every
/// point of per-delta application — the multiset contract the maintenance
/// engines assume (deletes only retract existing tuples; aggregated view
/// payloads over IntRing then stay non-negative and cannot cancel to zero
/// above a non-empty subtree).
Stream GenerateStream(Rng& rng, const GenQuery& q, const WGenOptions& opts);

/// True iff the stream respects the multiset contract above. The shrinker
/// only proposes candidates that pass, so minimized repros stay inside the
/// regime the engines are specified for.
bool StreamIsNonNegative(const Stream& stream);

}  // namespace check
}  // namespace incr

#endif  // INCR_CHECK_WGEN_H_
