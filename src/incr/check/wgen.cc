#include "incr/check/wgen.h"

#include <map>
#include <string>
#include <utility>

#include "incr/util/check.h"

namespace incr {
namespace check {

namespace {

// Tracks live (relation, tuple) pairs with positive multiplicity so deletes
// can target something that exists — random deletes over a sparse domain
// would almost never cancel anything.
struct LiveSet {
  std::vector<Delta<IntRing>> entries;  // delta holds the live multiplicity

  void Apply(const Delta<IntRing>& d) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].relation == d.relation && entries[i].tuple == d.tuple) {
        entries[i].delta += d.delta;
        if (entries[i].delta <= 0) {
          entries[i] = entries.back();
          entries.pop_back();
        }
        return;
      }
    }
    if (d.delta > 0) entries.push_back(d);
  }
};

}  // namespace

bool StreamIsNonNegative(const Stream& stream) {
  // (relation, tuple) -> running multiplicity; deltas in stream order.
  std::map<std::pair<std::string, Tuple>, int64_t> mult;
  for (const StreamStep& s : stream.steps) {
    for (const Delta<IntRing>& d : s.deltas) {
      int64_t& m = mult[{d.relation, d.tuple}];
      m += d.delta;
      if (m < 0) return false;
    }
  }
  return true;
}

Stream GenerateStream(Rng& rng, const GenQuery& q, const WGenOptions& opts) {
  INCR_CHECK(!q.relations.empty());
  Stream out;
  out.insert_only = opts.insert_only;
  ZipfSampler zipf(opts.domain, opts.zipf_skew);
  LiveSet live;
  size_t dict_counter = 0;

  auto value = [&]() -> Value {
    if (opts.dict != nullptr && rng.Chance(opts.dict_prob)) {
      // Fresh string per intern call: the dictionary grows monotonically,
      // and durable configs must persist the growth ahead of the delta.
      std::string word = "w";
      word += std::to_string(dict_counter++);
      return opts.dict->Intern(word);
    }
    return static_cast<Value>(zipf.Sample(rng));
  };

  auto fresh_insert = [&] {
    Delta<IntRing> d;
    d.relation = q.relations[rng.Uniform(q.relations.size())];
    size_t arity = q.ArityOf(d.relation);
    for (size_t i = 0; i < arity; ++i) d.tuple.push_back(value());
    d.delta = rng.UniformInt(1, 3);
    return d;
  };

  auto next_delta = [&]() -> Delta<IntRing> {
    if (!opts.insert_only && !live.entries.empty() &&
        rng.Chance(opts.delete_prob)) {
      const Delta<IntRing>& target =
          live.entries[rng.Uniform(live.entries.size())];
      Delta<IntRing> d = target;
      // Delete part or all of the live multiplicity.
      d.delta = -rng.UniformInt(1, target.delta);
      return d;
    }
    return fresh_insert();
  };

  for (size_t step = 0; step < opts.ops; ++step) {
    StreamStep s;
    const size_t dict_before = dict_counter;
    s.is_batch = rng.Chance(opts.batch_prob);
    size_t count = s.is_batch ? 1 + rng.Uniform(opts.max_batch) : 1;
    for (size_t i = 0; i < count; ++i) {
      Delta<IntRing> d = next_delta();
      live.Apply(d);
      s.deltas.push_back(std::move(d));
    }
    // Self-cancelling pair: +d then -d inside the same batch. The merged
    // batch must drop the pair entirely; per-tuple application must insert
    // then exactly erase. Net effect zero either way.
    if (s.is_batch && !opts.insert_only && rng.Chance(opts.cancel_prob)) {
      Delta<IntRing> d = fresh_insert();
      Delta<IntRing> neg = d;
      neg.delta = -d.delta;
      s.deltas.push_back(std::move(d));
      s.deltas.push_back(std::move(neg));
    }
    s.dict_grow = static_cast<uint32_t>(dict_counter - dict_before);
    out.steps.push_back(std::move(s));
  }
  return out;
}

}  // namespace check
}  // namespace incr
