// Replayable repro files for differ failures. A .repro is a small text
// file carrying everything needed to re-run one differential check: the
// query (in the parser's syntax), the stream flags, and every step with
// its deltas. The variable order is NOT stored — both the writer and the
// loader derive it with EnumerableOrderFor, the shared deterministic rule,
// so a repro made by one build replays identically on another.
//
//   # incr-fuzz repro v1
//   seed 42
//   insert_only 0
//   query Q(A, B) = R0(A, B), R1(B, C)
//   step update
//     R0 (1, 2) 1
//   step batch dict=1
//     R0 (3, 4) 2
//     R1 (4, 5) -1
//
// Lines starting with '#' and blank lines are ignored. Delta lines are
// indented; `dict=N` records how many fresh strings the step interned
// (replayed by the durable pass).
#ifndef INCR_CHECK_REPRO_H_
#define INCR_CHECK_REPRO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "incr/check/qgen.h"
#include "incr/check/wgen.h"
#include "incr/util/status.h"

namespace incr {
namespace check {

struct Repro {
  uint64_t seed = 0;  // informational: the generator seed, when known
  GenQuery query;
  Stream stream;
};

/// Renders a (query, stream) pair in the .repro format.
std::string RenderRepro(const GenQuery& q, const Stream& stream,
                        uint64_t seed);

/// Parses the .repro format; validates relation names and arities against
/// the parsed query.
StatusOr<Repro> ParseRepro(std::string_view text);

Status WriteReproFile(const std::string& path, const GenQuery& q,
                      const Stream& stream, uint64_t seed);

StatusOr<Repro> LoadReproFile(const std::string& path);

}  // namespace check
}  // namespace incr

#endif  // INCR_CHECK_REPRO_H_
