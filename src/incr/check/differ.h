// The differential driver: one (query, stream) pair is pushed through
// every compatible engine configuration, and all of them must agree — with
// the full-recompute oracle on output semantics, and with each other on
// serialized state bytes where the engines' documented guarantees promise
// bit-identity.
//
// Three comparison tiers, from semantic to bitwise:
//
//   1. Oracle equivalence: at a configurable step cadence (and always at
//      the end of the stream) each engine's enumerated output, projected
//      onto the query's free variables, must equal the oracle's full
//      recomputation. This is the universal check — every variant
//      participates, whatever its native output schema.
//
//   2. Dump groups: variants that perform the *identical* sequence of
//      view-tree operations (per the engine layer's documented
//      determinism guarantees: parallel batches are bit-identical to
//      sequential and thread-count invariant) share a dump-group tag, and
//      their DumpState byte streams must match exactly. Variants whose op
//      sequences legitimately differ (lazy flushes, per-tuple vs merged
//      application) stay ungrouped — DumpState is deterministic, not
//      canonical.
//
//   3. Durability: the stream is re-run through a durable (WAL-logging)
//      engine; full recovery must reproduce the live state byte-for-byte,
//      and recovery from a WAL truncated at a random byte ("kill at a
//      random LSN") must equal a fresh engine fed exactly the surviving
//      prefix of steps.
//
//   4. Snapshot isolation (opts.readers > 0): the stream is re-run through
//      a snapshot-enabled view-tree engine while reader threads enumerate
//      concurrently. Every observed snapshot must be bit-equal to the
//      oracle ledger at SOME published epoch (exactly one epoch per
//      applied step), and each reader's observed epochs must advance
//      monotonically — torn publishes surface as an epoch matching no
//      ledger entry or as mismatched content.
//
// Everything except tier 4's interleavings is deterministic in (query,
// stream, DifferOptions::seed) — and tier 4's *verdict* is deterministic
// too: any interleaving of a correct engine passes, any torn publish
// fails the final-epoch check even if no reader sampled it.
#ifndef INCR_CHECK_DIFFER_H_
#define INCR_CHECK_DIFFER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "incr/check/oracle.h"
#include "incr/check/qgen.h"
#include "incr/check/wgen.h"
#include "incr/engines/engine.h"
#include "incr/ring/int_ring.h"

namespace incr {
namespace check {

/// One engine configuration under test. `make` builds a fresh engine;
/// `out_schema` names the variables of its Enumerate() tuples (a superset
/// of the query's free variables; the differ projects). `batch_mode`
/// decides how batch steps are driven: ApplyBatch when set, per-delta
/// Update otherwise (single-update steps always go through Update).
struct EngineVariant {
  std::string label;
  std::function<std::unique_ptr<IvmEngine<IntRing>>()> make;
  Schema out_schema;
  bool batch_mode = false;
  /// Variants sharing a non-empty dump_group must produce byte-identical
  /// DumpState at the end of the stream.
  std::string dump_group;
};

struct DifferOptions {
  /// Compare every variant against the oracle after each `check_every`
  /// steps (0 = only at the end). The final state is always checked.
  size_t check_every = 16;
  /// Thread count for the parallel view-tree variant.
  size_t threads = 4;
  /// Morsel size (bytes of input deltas per work-stealing morsel) for the
  /// parallel variants and the snapshot/durability passes; 0 = the engine
  /// default. Independent of this knob, BuiltinVariants always adds one
  /// parallel variant at a deliberately tiny morsel size to the same
  /// byte-identity dump group — morsel scheduling must be invisible in
  /// serialized state, whatever the grid.
  size_t morsel_bytes = 0;
  /// Run the durable full-recovery and kill-at-random-LSN passes. Needs
  /// `scratch_dir`.
  bool durable = true;
  std::string scratch_dir;
  /// Seed for the differ's own randomness (checkpoint step, kill offset).
  uint64_t seed = 0;
  /// Include the built-in variant set (BuiltinVariants).
  bool builtin = true;
  /// Reader threads for the snapshot-isolation pass (tier 4); 0 skips the
  /// pass. Readers spin on Snapshot()+enumerate while the maintainer
  /// re-applies the stream one ApplyBatch (= one published epoch) per
  /// step, with opts.threads maintenance threads.
  size_t readers = 0;
  /// Bug-injection hook for the property tests: the step at this index
  /// (when it has >= 2 deltas) is deliberately torn into two ApplyBatch
  /// calls — two published epochs where the ledger expects one. A correct
  /// atomic-publication implementation cannot produce that history, so
  /// the snapshot-isolation pass must fail. SIZE_MAX = off.
  size_t inject_torn_step = SIZE_MAX;
  /// Extra variant factories, invoked with the current (query, stream) on
  /// every run — factories rather than prebuilt variants so the shrinker
  /// can rebuild them as it mutates the pair. The property tests inject
  /// deliberately buggy engines here and expect the differ to object.
  std::vector<std::function<std::vector<EngineVariant>(
      const GenQuery&, const Stream&)>>
      extra;
};

struct DiffFailure {
  std::string label;   // variant label, "dump:<group>", or "durable:<what>"
  size_t step = 0;     // stream prefix length when detected (0 = post-pass)
  std::string detail;
};

struct DiffResult {
  bool ok = true;
  std::vector<DiffFailure> failures;
  size_t variants = 0;      // engine configurations actually run
  size_t oracle_checks = 0; // (variant, checkpoint) comparisons performed
  std::string Summary() const;
};

/// The built-in variant set compatible with (q, stream): the universal
/// view-tree engine (single, batch x {1, opts.threads} threads), the four
/// Fig. 4 strategies, and — when the query's structure allows — the
/// insert-only, CQAP, mixed static/dynamic, and shattered engines.
std::vector<EngineVariant> BuiltinVariants(const GenQuery& q,
                                           const Stream& stream,
                                           const DifferOptions& opts);

/// Runs the full differential check. Stops at the first failing checkpoint
/// (reporting every variant that disagrees there); the durability passes
/// run only when the live comparison is clean.
DiffResult RunDiffer(const GenQuery& q, const Stream& stream,
                     const DifferOptions& opts);

/// Enumerates `e` and projects its output (over `out_schema`) onto `free`,
/// summing payloads of tuples identified by the projection and dropping
/// zeros — the common comparison currency.
std::map<Tuple, int64_t> ProjectedOutput(IvmEngine<IntRing>& e,
                                         const Schema& out_schema,
                                         const Schema& free);

/// "(1, 2, 3)" — used in failure details and .repro files.
std::string RenderTuple(const Tuple& t);

}  // namespace check
}  // namespace incr

#endif  // INCR_CHECK_DIFFER_H_
