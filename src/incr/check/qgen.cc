#include "incr/check/qgen.h"

#include <algorithm>
#include <utility>

#include "incr/core/view_tree_plan.h"
#include "incr/query/properties.h"
#include "incr/util/check.h"

namespace incr {
namespace check {

namespace {

// Variable names A, B, ..., Z, V26, V27, ... — readable in repro files and
// stable across platforms.
std::string VarName(size_t i) {
  if (i < 26) return std::string(1, static_cast<char>('A' + i));
  // Built via append: operator+(const char*, string&&) trips a GCC 12
  // -Wrestrict false positive when inlined at -O2 (PR105329).
  std::string name = "V";
  name += std::to_string(i);
  return name;
}

struct ShapeAtoms {
  std::vector<Schema> schemas;  // one per atom, over dense var indexes
  std::string tag;
};

// Chain: R0(X0,X1), R1(X1,X2), ... — acyclic, hierarchical only for n <= 1.
ShapeAtoms MakeChain(Rng& rng, size_t n) {
  ShapeAtoms s;
  s.tag = "chain";
  for (size_t i = 0; i < n; ++i) {
    s.schemas.push_back(Schema{static_cast<Var>(i), static_cast<Var>(i + 1)});
  }
  (void)rng;
  return s;
}

// Star: R0(X0,X1), R1(X0,X2), ... — hierarchical; q-hierarchical iff the
// center is free whenever any leaf is.
ShapeAtoms MakeStar(Rng& rng, size_t n) {
  ShapeAtoms s;
  s.tag = "star";
  for (size_t i = 0; i < n; ++i) {
    s.schemas.push_back(Schema{0, static_cast<Var>(i + 1)});
  }
  (void)rng;
  return s;
}

// Cycle: R0(X0,X1), R1(X1,X2), ..., R_{n-1}(X_{n-1},X0) — not acyclic; the
// n = 3 case is the paper's triangle query.
ShapeAtoms MakeCycle(Rng& rng, size_t n) {
  ShapeAtoms s;
  s.tag = "cycle";
  for (size_t i = 0; i < n; ++i) {
    s.schemas.push_back(
        Schema{static_cast<Var>(i), static_cast<Var>((i + 1) % n)});
  }
  (void)rng;
  return s;
}

// Hierarchical staircase: each atom either extends the previous atom's
// schema by a fresh variable (deepening one branch) or restarts from a
// prefix (opening a sibling branch) — by construction atoms(X) masks form a
// laminar family, so the query is hierarchical.
ShapeAtoms MakeHier(Rng& rng, size_t n) {
  ShapeAtoms s;
  s.tag = "hier";
  Var next = 1;
  Schema cur{0};
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && rng.Chance(0.4)) {
      // Sibling branch: keep a random prefix, then a fresh variable.
      size_t keep = 1 + rng.Uniform(cur.size());
      Schema prefix;
      for (size_t k = 0; k < keep; ++k) prefix.push_back(cur[k]);
      cur = prefix;
    }
    cur.push_back(next++);
    s.schemas.push_back(cur);
  }
  return s;
}

}  // namespace

size_t GenQuery::ArityOf(const std::string& rel) const {
  for (const Atom& a : query.atoms()) {
    if (a.relation == rel) return a.schema.size();
  }
  INCR_CHECK(false);
  return 0;
}

StatusOr<VariableOrder> EnumerableOrderFor(const Query& q) {
  if (IsHierarchical(q)) {
    auto vo = VariableOrder::Canonical(q);
    if (vo.ok()) {
      auto plan = ViewTreePlan::Make(q, *vo);
      if (plan.ok() && plan->CanEnumerate().ok()) return vo;
    }
  }
  // Path fallback: free variables first (ancestor-closed prefix, so the
  // plan is always enumerable), then the bound variables.
  std::vector<Var> path;
  for (Var v : q.free()) path.push_back(v);
  for (Var v : q.AllVars()) {
    if (!q.IsFree(v)) path.push_back(v);
  }
  return VariableOrder::FromPath(q, path);
}

std::string RenderQueryText(const Query& q, const VarRegistry& vars) {
  auto var_list = [&](const Schema& s) {
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      if (i > 0) out += ", ";
      out += vars.Name(s[i]);
    }
    return out;
  };
  std::string out = q.name() + "(" + var_list(q.free()) + ") = ";
  for (size_t i = 0; i < q.atoms().size(); ++i) {
    if (i > 0) out += ", ";
    out += q.atoms()[i].relation + "(" + var_list(q.atoms()[i].schema) + ")";
  }
  return out;
}

Status FinalizeGenQuery(GenQuery* gq) {
  const Query& q = gq->query;
  if (q.atoms().empty()) {
    return Status::InvalidArgument("query has no atoms");
  }
  auto vo = EnumerableOrderFor(q);
  if (!vo.ok()) return vo.status();
  gq->vo = *std::move(vo);
  gq->relations.clear();
  for (const Atom& a : q.atoms()) {
    if (std::find(gq->relations.begin(), gq->relations.end(), a.relation) ==
        gq->relations.end()) {
      gq->relations.push_back(a.relation);
    }
  }
  gq->text = RenderQueryText(q, gq->vars);
  gq->hierarchical = IsHierarchical(q);
  gq->q_hierarchical = IsQHierarchical(q);
  gq->acyclic = IsAlphaAcyclic(q);
  gq->free_connex = IsFreeConnex(q);
  return Status::Ok();
}

GenQuery GenerateQuery(Rng& rng, const QGenOptions& opts) {
  const size_t max_atoms = std::max<size_t>(3, opts.max_atoms);
  ShapeAtoms shape;
  switch (rng.Uniform(4)) {
    case 0:
      shape = MakeChain(rng, 1 + rng.Uniform(max_atoms));
      break;
    case 1:
      shape = MakeStar(rng, 1 + rng.Uniform(max_atoms));
      break;
    case 2:
      shape = MakeCycle(rng, 3 + rng.Uniform(max_atoms - 2));
      break;
    default:
      shape = MakeHier(rng, 1 + rng.Uniform(max_atoms));
      break;
  }

  // Optionally widen atoms with fresh (atom-local) variables up to
  // max_arity — these never change the join structure, only the arity mix.
  Var next_var = 0;
  for (const Schema& s : shape.schemas) {
    for (Var v : s) next_var = std::max(next_var, static_cast<Var>(v + 1));
  }
  for (Schema& s : shape.schemas) {
    while (s.size() < opts.max_arity && rng.Chance(0.25)) {
      s.push_back(next_var++);
    }
  }

  // Free set: full (join query), empty (scalar aggregate), or a random
  // subset — the subset case is what straddles the q-hierarchical boundary
  // (e.g. a chain with only its middle variable free is hierarchicality's
  // counterexample).
  Schema all;
  for (const Schema& s : shape.schemas) all = SchemaUnion(all, s);
  Schema free;
  switch (rng.Uniform(4)) {
    case 0:
      free = all;
      break;
    case 1:
      break;  // empty: full aggregate
    default:
      for (Var v : all) {
        if (rng.Chance(0.5)) free.push_back(v);
      }
      break;
  }

  GenQuery gq;
  gq.shape = shape.tag;
  // Register variables 0..n-1 in order so Var ids match the dense indexes
  // the shapes were built over.
  for (size_t i = 0; i < next_var; ++i) {
    Var v = gq.vars.GetOrCreate(VarName(i));
    INCR_CHECK(v == i);
  }
  std::vector<Atom> atoms;
  for (size_t i = 0; i < shape.schemas.size(); ++i) {
    std::string rel = "R";
    rel += std::to_string(i);
    atoms.push_back(Atom{std::move(rel), shape.schemas[i]});
  }
  // Occasional self-join: rename a later atom to an earlier one's relation,
  // provided the arities agree (the parser-enforced invariant).
  if (atoms.size() >= 2 && rng.Chance(opts.self_join_prob)) {
    size_t from = 1 + rng.Uniform(atoms.size() - 1);
    size_t to = rng.Uniform(from);
    if (atoms[from].schema.size() == atoms[to].schema.size()) {
      atoms[from].relation = atoms[to].relation;
    }
  }
  gq.query = Query("Q", free, std::move(atoms));
  Status st = FinalizeGenQuery(&gq);
  INCR_CHECK(st.ok());  // generated queries always admit a path order
  return gq;
}

}  // namespace check
}  // namespace incr
