// Greedy minimization of failing (query, stream) pairs. Given a pair the
// differ rejects, the shrinker searches for a smaller pair it still
// rejects, alternating three reduction levels until none makes progress:
//
//   1. step chunks: delete contiguous runs of stream steps (ddmin-style,
//      halving the chunk size down to single steps);
//   2. deltas: delete individual deltas inside surviving batch steps
//      (emptied steps disappear);
//   3. atoms: delete query atoms, restricting the free set to the
//      surviving variables and dropping deltas of vanished relations.
//
// The predicate is RunDiffer itself, so whatever configuration detected
// the original failure (including injected variants) decides relevance.
#ifndef INCR_CHECK_SHRINK_H_
#define INCR_CHECK_SHRINK_H_

#include <cstddef>

#include "incr/check/differ.h"
#include "incr/check/qgen.h"
#include "incr/check/wgen.h"

namespace incr {
namespace check {

struct ShrinkResult {
  GenQuery query;
  Stream stream;
  /// The differ's verdict on the minimized pair (always a failure).
  DiffResult failure;
  /// Predicate evaluations spent (each one is a full differ run).
  size_t probes = 0;
};

/// Minimizes a failing pair. `q`/`stream` must fail under `opts` (checked;
/// INCR_CHECK). Deterministic: same inputs, same minimized output.
ShrinkResult Shrink(const GenQuery& q, const Stream& stream,
                    const DifferOptions& opts);

}  // namespace check
}  // namespace incr

#endif  // INCR_CHECK_SHRINK_H_
