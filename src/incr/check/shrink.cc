#include "incr/check/shrink.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "incr/data/schema.h"
#include "incr/util/check.h"

namespace incr {
namespace check {

namespace {

struct Shrinker {
  const DifferOptions& opts;
  GenQuery q;
  Stream stream;
  size_t probes = 0;

  bool Fails(const GenQuery& cq, const Stream& cs) {
    ++probes;
    return !RunDiffer(cq, cs, opts).ok;
  }

  bool TryStream(Stream cand) {
    if (!StreamIsNonNegative(cand)) return false;
    if (Fails(q, cand)) {
      stream = std::move(cand);
      return true;
    }
    return false;
  }

  /// ddmin-style: delete contiguous chunks of steps, halving the chunk
  /// size whenever a full sweep makes no progress, down to single steps.
  void ShrinkSteps() {
    size_t chunk = std::max<size_t>(1, stream.steps.size() / 2);
    for (;;) {
      bool progress = false;
      size_t start = 0;
      while (start < stream.steps.size()) {
        const size_t len = std::min(chunk, stream.steps.size() - start);
        Stream cand = stream;
        cand.steps.erase(cand.steps.begin() + static_cast<long>(start),
                         cand.steps.begin() + static_cast<long>(start + len));
        if (TryStream(std::move(cand))) {
          progress = true;  // stay at `start`: new steps shifted in
        } else {
          start += len;
        }
      }
      if (!progress) {
        if (chunk == 1) return;
        chunk = std::max<size_t>(1, chunk / 2);
      }
    }
  }

  /// Delete individual deltas inside surviving steps; a step emptied this
  /// way disappears entirely.
  void ShrinkDeltas() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < stream.steps.size(); ++i) {
        size_t j = 0;
        while (i < stream.steps.size() &&
               j < stream.steps[i].deltas.size()) {
          Stream cand = stream;
          auto& deltas = cand.steps[i].deltas;
          deltas.erase(deltas.begin() + static_cast<long>(j));
          const bool removed_step = deltas.empty();
          if (removed_step) {
            cand.steps.erase(cand.steps.begin() + static_cast<long>(i));
          }
          if (TryStream(std::move(cand))) {
            progress = true;
            if (removed_step) break;  // step i is now a different step
          } else {
            ++j;
          }
        }
      }
    }
  }

  /// Delete query atoms: the free set shrinks to the surviving variables,
  /// and deltas of vanished relations drop out of the stream.
  void ShrinkAtoms() {
    bool progress = true;
    while (progress && q.query.atoms().size() > 1) {
      progress = false;
      for (size_t a = 0; a < q.query.atoms().size(); ++a) {
        GenQuery cq = q;
        std::vector<Atom> atoms(q.query.atoms().begin(),
                                q.query.atoms().end());
        atoms.erase(atoms.begin() + static_cast<long>(a));
        Schema surviving;
        for (const Atom& at : atoms) {
          surviving = SchemaUnion(surviving, at.schema);
        }
        Schema free;
        for (Var v : q.query.free()) {
          if (SchemaContains(surviving, v)) free.push_back(v);
        }
        cq.query = Query(q.query.name(), std::move(free), std::move(atoms));
        if (!FinalizeGenQuery(&cq).ok()) continue;

        Stream cs;
        cs.insert_only = stream.insert_only;
        for (const StreamStep& s : stream.steps) {
          StreamStep ns;
          ns.is_batch = s.is_batch;
          ns.dict_grow = s.dict_grow;
          for (const Delta<IntRing>& d : s.deltas) {
            if (std::find(cq.relations.begin(), cq.relations.end(),
                          d.relation) != cq.relations.end()) {
              ns.deltas.push_back(d);
            }
          }
          if (!ns.deltas.empty()) cs.steps.push_back(std::move(ns));
        }
        if (Fails(cq, cs)) {
          q = std::move(cq);
          stream = std::move(cs);
          progress = true;
          break;
        }
      }
    }
  }
};

}  // namespace

ShrinkResult Shrink(const GenQuery& q, const Stream& stream,
                    const DifferOptions& opts) {
  Shrinker sh{opts, q, stream};
  INCR_CHECK(sh.Fails(sh.q, sh.stream));  // must start from a failing pair
  sh.ShrinkSteps();
  sh.ShrinkDeltas();
  sh.ShrinkAtoms();
  // Atom removal can unlock further stream reduction (fewer relations,
  // fewer joins keeping a delta relevant).
  sh.ShrinkSteps();
  sh.ShrinkDeltas();

  ShrinkResult out;
  out.query = std::move(sh.q);
  out.stream = std::move(sh.stream);
  out.failure = RunDiffer(out.query, out.stream, opts);
  out.probes = sh.probes + 1;
  INCR_CHECK(!out.failure.ok);
  return out;
}

}  // namespace check
}  // namespace incr
