// Random conjunctive-query generation for the differential-testing harness
// (check/differ.h). A GenQuery bundles everything the differ needs to build
// every engine over the same query: the IR, the registry that names its
// variables, an enumerable variable order, a parseable text rendering, and
// the structural classification that decides which engines are compatible.
//
// The generator samples join shapes (chains, stars, cycles/triangles, and
// hierarchical "staircases") and free-variable sets biased to straddle the
// q-hierarchical / acyclic / cyclic boundary, so that a modest number of
// seeds exercises every planner path: canonical orders, path-order
// fallbacks, the insert-only GYO tree, CQAP fractures, mixed orders, and
// small-domain shattering.
#ifndef INCR_CHECK_QGEN_H_
#define INCR_CHECK_QGEN_H_

#include <string>
#include <vector>

#include "incr/query/query.h"
#include "incr/query/variable_order.h"
#include "incr/util/rng.h"
#include "incr/util/status.h"

namespace incr {
namespace check {

/// A generated query plus everything needed to rebuild engines over it.
struct GenQuery {
  VarRegistry vars;
  Query query;
  /// An order whose plan is always enumerable (free variables form an
  /// ancestor-closed prefix); canonical for hierarchical queries, a
  /// free-first path otherwise.
  VariableOrder vo;
  /// Distinct relation names, in first-occurrence order.
  std::vector<std::string> relations;
  /// Shape tag ("chain", "star", "cycle", "hier") for diagnostics.
  std::string shape;
  /// Parseable rendering, e.g. "Q(A, B) = R0(A, B), R1(B, C)".
  std::string text;
  // Structural classification (cached from query/properties.h).
  bool hierarchical = false;
  bool q_hierarchical = false;
  bool acyclic = false;
  bool free_connex = false;

  /// Arity of relation `rel` (first atom with that name).
  size_t ArityOf(const std::string& rel) const;
};

struct QGenOptions {
  size_t max_atoms = 4;   // >= 2; cycles need >= 3
  size_t max_arity = 3;   // extra width beyond the shape's join columns
  /// Probability of renaming one atom to an earlier atom's relation (same
  /// arity), producing a self-join that exercises the product-rule fan-out.
  double self_join_prob = 0.1;
};

/// Deterministically samples one query from `rng`. Never fails: every
/// generated query admits an enumerable order (free-first path fallback).
GenQuery GenerateQuery(Rng& rng, const QGenOptions& opts = {});

/// The deterministic order-selection rule shared by the generator and the
/// .repro loader: canonical when hierarchical and enumerable, otherwise a
/// path with the free variables first (in q.free() order) and the bound
/// variables after (in AllVars order).
StatusOr<VariableOrder> EnumerableOrderFor(const Query& q);

/// Renders `q` in the parser's syntax using `vars` for names.
std::string RenderQueryText(const Query& q, const VarRegistry& vars);

/// Recomputes the derived fields (vo, relations, text, classification) of a
/// GenQuery whose `query`/`vars` were set or edited directly — used by the
/// .repro loader and the query shrinker.
Status FinalizeGenQuery(GenQuery* gq);

}  // namespace check
}  // namespace incr

#endif  // INCR_CHECK_QGEN_H_
