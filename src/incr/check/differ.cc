#include "incr/check/differ.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <span>
#include <sstream>
#include <thread>
#include <utility>

#include "incr/cqap/cqap_engine.h"
#include "incr/engines/durable_engine.h"
#include "incr/engines/mixed_engine.h"
#include "incr/engines/shattered_engine.h"
#include "incr/engines/strategies.h"
#include "incr/insertonly/insert_only_engine.h"
#include "incr/query/cqap.h"
#include "incr/store/recover.h"
#include "incr/store/serde.h"
#include "incr/store/wal.h"
#include "incr/util/check.h"

namespace incr {
namespace check {

namespace {

using OutMap = std::map<Tuple, int64_t>;

ViewTree<IntRing> MakeTree(const GenQuery& q) {
  auto t = ViewTree<IntRing>::Make(q.query, q.vo);
  INCR_CHECK(t.ok());
  return *std::move(t);
}

bool SchemaEq(const Schema& a, const Schema& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::string DumpOf(IvmEngine<IntRing>& e) {
  store::ByteWriter w;
  Status st = e.DumpState(w);
  INCR_CHECK(st.ok());
  return w.Take();
}

/// Drives one stream step through an engine. Batch-mode engines take batch
/// steps through ApplyBatch (one call, one WAL record); everything else is
/// per-delta Update.
void ApplyStep(IvmEngine<IntRing>& e, const StreamStep& s, bool batch_mode) {
  if (s.is_batch && batch_mode) {
    e.ApplyBatch(std::span<const Delta<IntRing>>(s.deltas));
    return;
  }
  for (const Delta<IntRing>& d : s.deltas) e.Update(d.relation, d.tuple, d.delta);
}

std::string DescribeDiff(const OutMap& got, const OutMap& want) {
  for (const auto& [k, v] : want) {
    auto it = got.find(k);
    if (it == got.end()) {
      return "missing " + RenderTuple(k) + " -> " + std::to_string(v);
    }
    if (it->second != v) {
      return "at " + RenderTuple(k) + ": got " + std::to_string(it->second) +
             ", want " + std::to_string(v);
    }
  }
  for (const auto& [k, v] : got) {
    if (want.find(k) == want.end()) {
      return "spurious " + RenderTuple(k) + " -> " + std::to_string(v);
    }
  }
  return "outputs differ";
}

std::string FirstByteDiff(const std::string& a, const std::string& b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return "first byte diff at offset " + std::to_string(i) + " (sizes " +
         std::to_string(a.size()) + " vs " + std::to_string(b.size()) + ")";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  INCR_CHECK(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  INCR_CHECK(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  INCR_CHECK(out.good());
}

size_t WalHeaderBytes() {
  std::string h;
  store::EncodeWalHeader(&h, store::RingSerdeName<IntRing>(), 0);
  return h.size();
}

void ResetScratchDir(const std::string& dir) {
  Status st = store::EnsureDir(dir);
  INCR_CHECK(st.ok());
  std::remove(store::WalPath(dir).c_str());
  std::remove(store::SnapshotPath(dir).c_str());
}

}  // namespace

std::string RenderTuple(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(t[i]);
  }
  return out + ")";
}

std::map<Tuple, int64_t> ProjectedOutput(IvmEngine<IntRing>& e,
                                         const Schema& out_schema,
                                         const Schema& free) {
  OutMap out;
  if (SchemaEq(out_schema, free)) {
    e.Enumerate([&](const Tuple& t, const int64_t& p) { out[t] += p; });
  } else {
    auto pos = ProjectionPositions(out_schema, free);
    e.Enumerate([&](const Tuple& t, const int64_t& p) {
      Tuple pr;
      pr.reserve(pos.size());
      for (uint32_t i : pos) pr.push_back(t[i]);
      out[pr] += p;
    });
  }
  for (auto it = out.begin(); it != out.end();) {
    if (it->second == 0) {
      it = out.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<EngineVariant> BuiltinVariants(const GenQuery& q,
                                           const Stream& stream,
                                           const DifferOptions& opts) {
  const GenQuery* qp = &q;
  std::vector<EngineVariant> out;
  const Schema vt_out = MakeTree(q).OutputSchema();

  auto make_view_tree = [qp](size_t threads, size_t morsel_bytes) {
    return [qp, threads,
            morsel_bytes]() -> std::unique_ptr<IvmEngine<IntRing>> {
      auto e = std::make_unique<ViewTreeEngine<IntRing>>(MakeTree(*qp));
      if (threads > 1) {
        EngineOptions o;
        o.threads = threads;
        o.morsel_bytes = morsel_bytes;
        e->Configure(o);
      }
      return e;
    };
  };

  // The universal engine: single-update reference, plus the batch path
  // sequentially and in parallel. Parallel results are ring-identical to
  // sequential but NOT byte-identical (the parallel W layout is sharded),
  // so the byte-level group spans only the parallel configs: the shard
  // partition and per-shard application order are invariant under both
  // the thread count and the morsel grid, so any two parallel configs —
  // including one with a deliberately tiny morsel size, which maximizes
  // segment count and stealing — must dump the same bytes.
  out.push_back({"view-tree/single", make_view_tree(1, 0), vt_out,
                 /*batch_mode=*/false, "single"});
  out.push_back({"view-tree/batch/t1", make_view_tree(1, 0), vt_out,
                 /*batch_mode=*/true, "batch-seq"});
  if (opts.threads > 1) {
    out.push_back({"view-tree/batch/t2",
                   make_view_tree(2, opts.morsel_bytes), vt_out,
                   /*batch_mode=*/true, "batch-par"});
    out.push_back({"view-tree/batch/t2/m64", make_view_tree(2, 64), vt_out,
                   /*batch_mode=*/true, "batch-par"});
    if (opts.threads != 2) {
      out.push_back({"view-tree/batch/t" + std::to_string(opts.threads),
                     make_view_tree(opts.threads, opts.morsel_bytes),
                     vt_out,
                     /*batch_mode=*/true, "batch-par"});
    }
  }

  // The four Fig. 4 strategies over the same tree. Eager-fact's per-update
  // path performs the identical UpdateAtom sequence as the view-tree
  // engine's, so it joins the "single" dump group; the lazy strategies
  // flush at enumeration/dump time and so have no stable byte identity
  // with the eager configs.
  out.push_back({"eager-fact/single",
                 [qp]() -> std::unique_ptr<IvmEngine<IntRing>> {
                   return std::make_unique<EagerFactStrategy<IntRing>>(
                       MakeTree(*qp));
                 },
                 vt_out, /*batch_mode=*/false, "single"});
  out.push_back({"eager-fact/batch",
                 [qp]() -> std::unique_ptr<IvmEngine<IntRing>> {
                   return std::make_unique<EagerFactStrategy<IntRing>>(
                       MakeTree(*qp));
                 },
                 vt_out, /*batch_mode=*/true, "batch-seq"});
  out.push_back({"eager-list/single",
                 [qp]() -> std::unique_ptr<IvmEngine<IntRing>> {
                   return std::make_unique<EagerListStrategy<IntRing>>(
                       MakeTree(*qp));
                 },
                 vt_out, /*batch_mode=*/false, ""});
  out.push_back({"lazy-fact/batch",
                 [qp]() -> std::unique_ptr<IvmEngine<IntRing>> {
                   return std::make_unique<LazyFactStrategy<IntRing>>(
                       MakeTree(*qp));
                 },
                 vt_out, /*batch_mode=*/true, ""});
  out.push_back({"lazy-list/single",
                 [qp]() -> std::unique_ptr<IvmEngine<IntRing>> {
                   return std::make_unique<LazyListStrategy<IntRing>>(
                       MakeTree(*qp));
                 },
                 vt_out, /*batch_mode=*/false, ""});

  // Insert-only engine (§4.6): alpha-acyclic join queries (all variables
  // free) under insert-only streams.
  if (stream.insert_only &&
      q.query.free().size() == q.query.AllVars().size()) {
    auto probe = InsertOnlyEngine::Make(q.query);
    if (probe.ok()) {
      Schema os = probe->OutputSchema();
      out.push_back({"insert-only",
                     [qp]() -> std::unique_ptr<IvmEngine<IntRing>> {
                       auto e = InsertOnlyEngine::Make(qp->query);
                       INCR_CHECK(e.ok());
                       return std::make_unique<InsertOnlyEngine>(
                           *std::move(e));
                     },
                     os, /*batch_mode=*/false, ""});
    }
  }

  // CQAP engine (§4.3) in its input-free form: Q(free | ) — Enumerate is
  // the single access request over the fracture's components.
  {
    std::vector<Atom> atoms(q.query.atoms().begin(), q.query.atoms().end());
    CqapQuery cq =
        CqapQuery::Make("Qc", Schema{}, q.query.free(), std::move(atoms));
    auto probe = CqapEngine<IntRing>::Make(cq);
    if (probe.ok()) {
      out.push_back({"cqap",
                     [cq]() -> std::unique_ptr<IvmEngine<IntRing>> {
                       auto e = CqapEngine<IntRing>::Make(cq);
                       INCR_CHECK(e.ok());
                       return std::make_unique<CqapEngine<IntRing>>(
                           *std::move(e));
                     },
                     q.query.free(), /*batch_mode=*/false, ""});
    }
  }

  // Mixed static/dynamic engine (§4.5) with every atom dynamic: same
  // update regime as the others, but over the mixed-order search's tree.
  {
    std::vector<bool> is_static(q.query.atoms().size(), false);
    auto probe = MixedStaticDynamicEngine<IntRing>::Make(q.query, is_static);
    if (probe.ok() && probe->tree().plan().CanEnumerate().ok()) {
      Schema os = probe->tree().OutputSchema();
      out.push_back(
          {"mixed-dynamic",
           [qp, is_static]() -> std::unique_ptr<IvmEngine<IntRing>> {
             auto e =
                 MixedStaticDynamicEngine<IntRing>::Make(qp->query, is_static);
             INCR_CHECK(e.ok());
             auto p = std::make_unique<MixedStaticDynamicEngine<IntRing>>(
                 *std::move(e));
             p->Seal();  // empty initial database
             return p;
           },
           os, /*batch_mode=*/false, ""});
    }
  }

  // Shattered engine (§4.4): declare the first variable that yields a
  // q-hierarchical residual as small-domain. Output tuples are the small
  // assignment concatenated with the residual tree's output.
  for (Var v : q.query.AllVars()) {
    auto probe = ShatteredEngine<IntRing>::Make(q.query, Schema{v});
    if (!probe.ok()) continue;
    if (probe->residual_query().atoms().empty()) continue;
    auto rtree = ViewTree<IntRing>::Make(probe->residual_query());
    if (!rtree.ok() || !rtree->plan().CanEnumerate().ok()) continue;
    Schema os{v};
    for (Var w : rtree->OutputSchema()) os.push_back(w);
    out.push_back({"shattered",
                   [qp, v]() -> std::unique_ptr<IvmEngine<IntRing>> {
                     auto e =
                         ShatteredEngine<IntRing>::Make(qp->query, Schema{v});
                     INCR_CHECK(e.ok());
                     return std::make_unique<ShatteredEngine<IntRing>>(
                         *std::move(e));
                   },
                   os, /*batch_mode=*/false, ""});
    break;
  }

  return out;
}

std::string DiffResult::Summary() const {
  if (ok) {
    return "ok: " + std::to_string(variants) + " variants, " +
           std::to_string(oracle_checks) + " oracle checks";
  }
  std::string s = "FAIL:";
  for (const DiffFailure& f : failures) {
    s += "\n  [" + f.label + "]";
    if (f.step > 0) s += " at step " + std::to_string(f.step);
    s += ": " + f.detail;
  }
  return s;
}

DiffResult RunDiffer(const GenQuery& q, const Stream& stream,
                     const DifferOptions& opts) {
  DiffResult res;
  std::vector<EngineVariant> variants;
  if (opts.builtin) variants = BuiltinVariants(q, stream, opts);
  for (const auto& factory : opts.extra) {
    for (EngineVariant& v : factory(q, stream)) variants.push_back(std::move(v));
  }
  res.variants = variants.size();

  struct Live {
    const EngineVariant* v;
    std::unique_ptr<IvmEngine<IntRing>> e;
  };
  std::vector<Live> live;
  live.reserve(variants.size());
  for (const EngineVariant& v : variants) live.push_back({&v, v.make()});

  RecomputeOracle<IntRing> oracle(q.query);
  const Schema& free = q.query.free();
  OutMap want;

  auto check_all = [&](size_t step) {
    want = oracle.Eval();
    bool ok = true;
    for (Live& l : live) {
      OutMap got = ProjectedOutput(*l.e, l.v->out_schema, free);
      ++res.oracle_checks;
      if (got != want) {
        ok = false;
        res.failures.push_back({l.v->label, step, DescribeDiff(got, want)});
      }
    }
    return ok;
  };

  size_t applied = 0;
  for (const StreamStep& s : stream.steps) {
    for (const Delta<IntRing>& d : s.deltas) {
      oracle.Apply(d.relation, d.tuple, d.delta);
    }
    for (Live& l : live) ApplyStep(*l.e, s, l.v->batch_mode);
    ++applied;
    if (opts.check_every != 0 && applied % opts.check_every == 0 &&
        applied != stream.steps.size()) {
      if (!check_all(applied)) {
        res.ok = false;
        return res;
      }
    }
  }
  if (!check_all(applied)) {
    res.ok = false;
    return res;
  }

  // Dump groups: byte-identical serialized state across configs whose op
  // sequences are documented deterministic-equal, plus a dump -> load ->
  // dump round trip on each group's first member.
  {
    struct GroupDump {
      const Live* l;
      std::string bytes;
    };
    std::map<std::string, std::vector<GroupDump>> groups;
    for (Live& l : live) {
      if (l.v->dump_group.empty()) continue;
      store::ByteWriter w;
      Status st = l.e->DumpState(w);
      if (!st.ok()) {
        res.ok = false;
        res.failures.push_back(
            {l.v->label, applied, "DumpState failed: " + st.message()});
        continue;
      }
      groups[l.v->dump_group].push_back({&l, w.Take()});
    }
    for (const auto& [g, dumps] : groups) {
      for (size_t i = 1; i < dumps.size(); ++i) {
        if (dumps[i].bytes != dumps[0].bytes) {
          res.ok = false;
          res.failures.push_back(
              {"dump:" + g, applied,
               dumps[i].l->v->label + " vs " + dumps[0].l->v->label + ": " +
                   FirstByteDiff(dumps[i].bytes, dumps[0].bytes)});
        }
      }
      if (dumps.empty()) continue;
      std::unique_ptr<IvmEngine<IntRing>> fresh = dumps[0].l->v->make();
      store::ByteReader r(dumps[0].bytes);
      Status st = fresh->LoadState(r);
      if (!st.ok()) {
        res.ok = false;
        res.failures.push_back({"dump:" + g, applied,
                                "LoadState failed: " + st.message()});
        continue;
      }
      std::string again = DumpOf(*fresh);
      if (again != dumps[0].bytes) {
        res.ok = false;
        res.failures.push_back(
            {"dump:" + g, applied,
             "dump -> load -> dump not stable: " +
                 FirstByteDiff(again, dumps[0].bytes)});
      }
    }
    if (!res.ok) return res;
  }

  // Snapshot-isolation pass (tier 4): reader threads enumerate pinned
  // snapshots while the maintainer re-applies the stream, one ApplyBatch
  // (hence one published epoch) per non-empty step. Each observation must
  // be bit-equal to the sequential ledger at its epoch, and per-reader
  // epochs must be monotone. The final main-thread check (epoch count +
  // content) is what makes an injected torn publish fail deterministically
  // even when no reader happened to sample the interloper epoch.
  if (opts.readers > 0) {
    const Schema vt_out = MakeTree(q).OutputSchema();
    ViewTreeEngine<IntRing> ledger(MakeTree(q));
    if (ledger.tree().plan().CanEnumerate().ok()) {
      // One applied batch per non-empty step: epoch base + k <-> prefix of
      // k applied steps.
      std::vector<const StreamStep*> steps;
      for (const StreamStep& s : stream.steps) {
        if (!s.deltas.empty()) steps.push_back(&s);
      }
      std::vector<OutMap> expected;
      expected.reserve(steps.size() + 1);
      expected.push_back(ProjectedOutput(ledger, vt_out, free));
      for (const StreamStep* s : steps) {
        ledger.ApplyBatch(std::span<const Delta<IntRing>>(s->deltas));
        expected.push_back(ProjectedOutput(ledger, vt_out, free));
      }

      ViewTreeEngine<IntRing> eng(MakeTree(q));
      EngineOptions copts;
      copts.threads = opts.threads;
      copts.morsel_bytes = opts.morsel_bytes;
      copts.snapshot_reads = true;
      copts.max_retained_epochs = 8;
      eng.Configure(copts);
      const ViewTree<IntRing>& tree = eng.tree();
      const uint64_t base = tree.published_epoch();

      auto project = [&](const ViewTreeSnapshot<IntRing>& snap) {
        OutMap out;
        auto pos = ProjectionPositions(vt_out, free);
        for (ViewTreeEnumerator<IntRing> it = snap.Enumerate(); it.Valid();
             it.Next()) {
          Tuple pr;
          pr.reserve(pos.size());
          for (uint32_t i : pos) pr.push_back(it.tuple()[i]);
          out[pr] += it.payload();
        }
        for (auto it = out.begin(); it != out.end();) {
          if (it->second == 0) {
            it = out.erase(it);
          } else {
            ++it;
          }
        }
        return out;
      };

      std::mutex fail_mu;
      std::atomic<bool> stop{false};
      std::atomic<bool> failed{false};
      auto record_fail = [&](std::string label, std::string detail) {
        std::lock_guard<std::mutex> lock(fail_mu);
        if (!failed.exchange(true)) {
          res.ok = false;
          res.failures.push_back({std::move(label), 0, std::move(detail)});
        }
      };

      std::vector<std::thread> pool;
      pool.reserve(opts.readers);
      for (size_t r = 0; r < opts.readers; ++r) {
        pool.emplace_back([&, r] {
          const std::string label = "concurrent:reader" + std::to_string(r);
          uint64_t last = 0;
          while (!stop.load(std::memory_order_acquire) &&
                 !failed.load(std::memory_order_relaxed)) {
            ViewTreeSnapshot<IntRing> snap = tree.Snapshot();
            const uint64_t e = snap.epoch();
            if (e < last) {
              record_fail(label, "epoch went backwards: " +
                                     std::to_string(e) + " after " +
                                     std::to_string(last));
              return;
            }
            last = e;
            if (e < base || e - base >= expected.size()) {
              record_fail(label,
                          "observed epoch " + std::to_string(e) +
                              " matches no applied step (torn publish?)");
              return;
            }
            OutMap got = project(snap);
            if (got != expected[e - base]) {
              record_fail(label, "at epoch " + std::to_string(e) + ": " +
                                     DescribeDiff(got, expected[e - base]));
              return;
            }
          }
        });
      }

      for (size_t i = 0; i < steps.size(); ++i) {
        if (failed.load(std::memory_order_relaxed)) break;
        std::span<const Delta<IntRing>> deltas(steps[i]->deltas);
        if (i == opts.inject_torn_step && deltas.size() >= 2) {
          const size_t m = deltas.size() / 2;
          eng.ApplyBatch(deltas.subspan(0, m));
          eng.ApplyBatch(deltas.subspan(m));
        } else {
          eng.ApplyBatch(deltas);
        }
      }
      stop.store(true, std::memory_order_release);
      for (std::thread& t : pool) t.join();

      if (res.ok) {
        ViewTreeSnapshot<IntRing> snap = tree.Snapshot();
        if (snap.epoch() != base + steps.size()) {
          res.ok = false;
          res.failures.push_back(
              {"concurrent:final", stream.steps.size(),
               "published " + std::to_string(snap.epoch() - base) +
                   " epochs for " + std::to_string(steps.size()) +
                   " applied steps (torn publish?)"});
        } else if (project(snap) != expected.back()) {
          res.ok = false;
          res.failures.push_back(
              {"concurrent:final", stream.steps.size(),
               DescribeDiff(project(snap), expected.back())});
        }
      }
    }
    if (!res.ok) return res;
  }

  if (!opts.durable || opts.scratch_dir.empty()) return res;

  // Durability passes. Randomness (checkpoint step, kill offset) comes
  // from the differ's own seed, so a failing (query, stream, seed) triple
  // replays exactly.
  Rng rng(opts.seed ^ 0x64696666ULL);  // "diff"
  const std::string dir = opts.scratch_dir;
  const Schema vt_out = MakeTree(q).OutputSchema();
  EngineOptions dopts;
  dopts.durability_dir = dir;
  dopts.fsync = false;  // process-death durability is what we test
  // Drive the durable passes through the parallel morsel path too: Open
  // configures the inner engine with these options after recovery, and
  // serialization is canonical, so live, recovered, and shadow engines
  // dump identical bytes as long as they share one (threads, shards,
  // morsel) configuration.
  dopts.threads = opts.threads;
  dopts.morsel_bytes = opts.morsel_bytes;
  auto make_inner = [&q]() -> std::unique_ptr<IvmEngine<IntRing>> {
    return std::make_unique<ViewTreeEngine<IntRing>>(MakeTree(q));
  };
  auto fail = [&](std::string label, std::string detail) {
    res.ok = false;
    res.failures.push_back({std::move(label), 0, std::move(detail)});
  };

  // Pass 1: full recovery — the live engine's state (and the dictionary,
  // when the stream interned strings) must be reproduced byte-for-byte
  // from the snapshot (if a random checkpoint happened) plus the log.
  {
    ResetScratchDir(dir);
    Dictionary dict;
    auto d = DurableEngine<IntRing>::Open(make_inner(), dopts, &dict);
    if (!d.ok()) {
      fail("durable:open", d.status().message());
      return res;
    }
    const bool do_ckpt = !stream.steps.empty() && rng.Chance(0.5);
    const size_t ckpt_at =
        stream.steps.empty() ? 0 : rng.Uniform(stream.steps.size());
    size_t interned = 0;
    for (size_t i = 0; i < stream.steps.size(); ++i) {
      const StreamStep& s = stream.steps[i];
      for (uint32_t j = 0; j < s.dict_grow; ++j) {
        dict.Intern("w" + std::to_string(interned++));
      }
      ApplyStep(**d, s, /*batch_mode=*/true);
      if (do_ckpt && i == ckpt_at) {
        Status st = (*d)->Checkpoint();
        if (!st.ok()) fail("durable:checkpoint", st.message());
      }
    }
    Status st = (*d)->Sync();
    if (!st.ok()) fail("durable:sync", st.message());
    OutMap got = ProjectedOutput(**d, vt_out, free);
    if (got != want) fail("durable:live", DescribeDiff(got, want));
    const std::string live_bytes = DumpOf(**d);
    d->reset();  // close the WAL

    Dictionary dict2;
    auto r2 = DurableEngine<IntRing>::Open(make_inner(), dopts, &dict2);
    if (!r2.ok()) {
      fail("durable:reopen", r2.status().message());
      return res;
    }
    std::string rec_bytes = DumpOf(**r2);
    if (rec_bytes != live_bytes) {
      fail("durable:full-recovery", FirstByteDiff(rec_bytes, live_bytes));
    }
    if (dict2.size() != dict.size()) {
      fail("durable:dict", "recovered " + std::to_string(dict2.size()) +
                               " strings, interned " +
                               std::to_string(dict.size()));
    }
  }

  // Pass 2: kill at a random LSN — truncate the log at a random byte and
  // recover; the result must equal a fresh engine fed exactly the
  // surviving prefix of steps. No dictionary here: without kDict records,
  // snapshot LSN + replayed record count *is* the surviving step count.
  {
    ResetScratchDir(dir);
    auto d = DurableEngine<IntRing>::Open(make_inner(), dopts, nullptr);
    if (!d.ok()) {
      fail("durable:open", d.status().message());
      return res;
    }
    const bool do_ckpt = !stream.steps.empty() && rng.Chance(0.5);
    const size_t ckpt_at =
        stream.steps.empty() ? 0 : rng.Uniform(stream.steps.size());
    for (size_t i = 0; i < stream.steps.size(); ++i) {
      ApplyStep(**d, stream.steps[i], /*batch_mode=*/true);
      if (do_ckpt && i == ckpt_at) {
        Status st = (*d)->Checkpoint();
        if (!st.ok()) fail("durable:checkpoint", st.message());
      }
    }
    Status st = (*d)->Sync();
    if (!st.ok()) fail("durable:sync", st.message());
    d->reset();

    const std::string wal_path = store::WalPath(dir);
    const std::string full = ReadFileBytes(wal_path);
    const size_t header = WalHeaderBytes();
    INCR_CHECK(full.size() >= header);
    const size_t cut = header + rng.Uniform(full.size() - header + 1);
    WriteFileBytes(wal_path, full.substr(0, cut));

    auto rec = DurableEngine<IntRing>::Open(make_inner(), dopts, nullptr);
    if (!rec.ok()) {
      fail("durable:kill-open", rec.status().message());
      return res;
    }
    const store::RecoveryInfo& info = (*rec)->recovery_info();
    const size_t k =
        static_cast<size_t>(info.snapshot_lsn + info.replayed_records);
    if (k > stream.steps.size()) {
      fail("durable:kill-lsn",
           "recovered " + std::to_string(k) + " of " +
               std::to_string(stream.steps.size()) + " steps");
      return res;
    }
    ViewTreeEngine<IntRing> shadow(MakeTree(q));
    shadow.Configure(dopts);  // same threads/morsel as the durable engine
    for (size_t i = 0; i < k; ++i) {
      ApplyStep(shadow, stream.steps[i], /*batch_mode=*/true);
    }
    std::string rec_bytes = DumpOf(**rec);
    std::string shadow_bytes = DumpOf(shadow);
    if (rec_bytes != shadow_bytes) {
      fail("durable:kill-recover",
           "k=" + std::to_string(k) + " cut=" + std::to_string(cut) + ": " +
               FirstByteDiff(rec_bytes, shadow_bytes));
    }
  }

  return res;
}

}  // namespace check
}  // namespace incr
