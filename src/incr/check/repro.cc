#include "incr/check/repro.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "incr/check/differ.h"
#include "incr/query/parser.h"

namespace incr {
namespace check {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

/// "R0 (1, 2) -3" -> relation, tuple, delta.
bool ParseDeltaLine(std::string_view line, Delta<IntRing>* out) {
  size_t open = line.find('(');
  size_t close = line.find(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return false;
  }
  std::string rel(Trim(line.substr(0, open)));
  if (rel.empty()) return false;
  out->relation = std::move(rel);
  out->tuple.clear();
  std::string_view inner = Trim(line.substr(open + 1, close - open - 1));
  while (!inner.empty()) {
    size_t comma = inner.find(',');
    std::string_view tok =
        comma == std::string_view::npos ? inner : inner.substr(0, comma);
    int64_t v = 0;
    if (!ParseInt64(Trim(tok), &v)) return false;
    out->tuple.push_back(static_cast<Value>(v));
    if (comma == std::string_view::npos) break;
    inner.remove_prefix(comma + 1);
  }
  return ParseInt64(Trim(line.substr(close + 1)), &out->delta);
}

}  // namespace

std::string RenderRepro(const GenQuery& q, const Stream& stream,
                        uint64_t seed) {
  std::ostringstream out;
  out << "# incr-fuzz repro v1\n";
  out << "seed " << seed << "\n";
  out << "insert_only " << (stream.insert_only ? 1 : 0) << "\n";
  out << "query " << q.text << "\n";
  for (const StreamStep& s : stream.steps) {
    out << "step " << (s.is_batch ? "batch" : "update");
    if (s.dict_grow > 0) out << " dict=" << s.dict_grow;
    out << "\n";
    for (const Delta<IntRing>& d : s.deltas) {
      out << "  " << d.relation << " " << RenderTuple(d.tuple) << " "
          << d.delta << "\n";
    }
  }
  return out.str();
}

StatusOr<Repro> ParseRepro(std::string_view text) {
  Repro r;
  bool have_query = false;
  size_t lineno = 0;
  auto err = [&](const std::string& what) {
    return Status::InvalidArgument("repro line " + std::to_string(lineno) +
                                   ": " + what);
  };

  while (!text.empty()) {
    size_t nl = text.find('\n');
    std::string_view raw =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    ++lineno;
    const bool indented =
        !raw.empty() && (raw.front() == ' ' || raw.front() == '\t');
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (indented) {
      if (r.stream.steps.empty()) return err("delta before any step");
      Delta<IntRing> d;
      if (!ParseDeltaLine(line, &d)) return err("bad delta line");
      if (!have_query) return err("delta before query");
      if (std::find(r.query.relations.begin(), r.query.relations.end(),
                    d.relation) == r.query.relations.end()) {
        return err("unknown relation " + d.relation);
      }
      if (d.tuple.size() != r.query.ArityOf(d.relation)) {
        return err("arity mismatch for " + d.relation);
      }
      r.stream.steps.back().deltas.push_back(std::move(d));
      continue;
    }

    size_t sp = line.find(' ');
    std::string_view key = line.substr(0, sp);
    std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : Trim(line.substr(sp + 1));
    if (key == "seed") {
      int64_t v = 0;
      if (!ParseInt64(rest, &v)) return err("bad seed");
      r.seed = static_cast<uint64_t>(v);
    } else if (key == "insert_only") {
      int64_t v = 0;
      if (!ParseInt64(rest, &v)) return err("bad insert_only");
      r.stream.insert_only = v != 0;
    } else if (key == "query") {
      auto parsed = ParseQuery(rest, &r.query.vars);
      if (!parsed.ok()) return parsed.status();
      r.query.query = *std::move(parsed);
      Status st = FinalizeGenQuery(&r.query);
      if (!st.ok()) return st;
      have_query = true;
    } else if (key == "step") {
      if (!have_query) return err("step before query");
      StreamStep s;
      size_t sp2 = rest.find(' ');
      std::string_view kind = rest.substr(0, sp2);
      if (kind == "batch") {
        s.is_batch = true;
      } else if (kind != "update") {
        return err("unknown step kind");
      }
      if (sp2 != std::string_view::npos) {
        std::string_view arg = Trim(rest.substr(sp2 + 1));
        if (arg.substr(0, 5) == "dict=") {
          int64_t v = 0;
          if (!ParseInt64(arg.substr(5), &v) || v < 0) {
            return err("bad dict count");
          }
          s.dict_grow = static_cast<uint32_t>(v);
        } else if (!arg.empty()) {
          return err("unknown step argument");
        }
      }
      r.stream.steps.push_back(std::move(s));
    } else {
      return err("unknown directive '" + std::string(key) + "'");
    }
  }
  if (!have_query) {
    return Status::InvalidArgument("repro has no query line");
  }
  for (size_t i = 0; i < r.stream.steps.size(); ++i) {
    const StreamStep& s = r.stream.steps[i];
    if (s.deltas.empty()) {
      return Status::InvalidArgument("repro step " + std::to_string(i + 1) +
                                     " has no deltas");
    }
    if (!s.is_batch && s.deltas.size() != 1) {
      return Status::InvalidArgument("repro step " + std::to_string(i + 1) +
                                     ": update step with several deltas");
    }
  }
  return r;
}

Status WriteReproFile(const std::string& path, const GenQuery& q,
                      const Stream& stream, uint64_t seed) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << RenderRepro(q, stream, seed);
  out.flush();
  if (!out.good()) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<Repro> LoadReproFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseRepro(ss.str());
}

}  // namespace check
}  // namespace incr
