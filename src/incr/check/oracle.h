// Naive full-recompute oracle: maintains only the base relations (keyed by
// relation name, so self-joins share one copy — the product rule falls out
// of evaluation, not of routing) and recomputes the query output from
// scratch on demand via the backtracking evaluator (engines/join.h). Slow
// by design; its only jobs are to be obviously correct and deterministic.
#ifndef INCR_CHECK_ORACLE_H_
#define INCR_CHECK_ORACLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "incr/check/wgen.h"
#include "incr/data/relation.h"
#include "incr/engines/join.h"
#include "incr/query/query.h"
#include "incr/ring/ring.h"
#include "incr/util/check.h"

namespace incr {
namespace check {

template <RingType R>
class RecomputeOracle {
 public:
  using RV = typename R::Value;
  /// Output map over q.free() tuples, ordered lexicographically — the
  /// canonical comparison currency of the differ.
  using OutputMap = std::map<Tuple, RV>;

  explicit RecomputeOracle(const Query& q) : query_(q) {
    for (const Atom& a : q.atoms()) {
      if (ByName(a.relation) == nullptr) {
        names_.push_back(a.relation);
        rels_.push_back(std::make_unique<Relation<R>>(a.schema));
      } else {
        // Parser-enforced invariant; the oracle depends on it too.
        INCR_CHECK(ByName(a.relation)->schema().size() == a.schema.size());
      }
    }
    for (const Atom& a : q.atoms()) atom_rels_.push_back(ByName(a.relation));
  }

  /// Applies one named delta to the (single) base copy of the relation.
  void Apply(const std::string& rel, const Tuple& t, const RV& d) {
    Relation<R>* r = ByName(rel);
    INCR_CHECK(r != nullptr);
    r->Apply(t, d);
  }

  /// Full recomputation of Q over the current base relations.
  OutputMap Eval() const {
    Relation<R> out = EvaluateQuery<R>(query_, atom_rels_);
    OutputMap m;
    for (const auto& e : out) m.emplace(e.key, e.value);
    return m;
  }

  const Relation<R>& RelationNamed(const std::string& rel) const {
    const Relation<R>* r = const_cast<RecomputeOracle*>(this)->ByName(rel);
    INCR_CHECK(r != nullptr);
    return *r;
  }

  const Query& query() const { return query_; }

 private:
  Relation<R>* ByName(const std::string& rel) {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == rel) return rels_[i].get();
    }
    return nullptr;
  }

  Query query_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Relation<R>>> rels_;
  std::vector<const Relation<R>*> atom_rels_;  // per atom, aliased by name
};

/// Drives a whole stream through a fresh oracle and returns the final
/// output — the one-shot form the metamorphic tests use.
template <RingType R>
typename RecomputeOracle<R>::OutputMap OracleOutput(
    const Query& q, const Stream& stream,
    const std::function<typename R::Value(int64_t)>& lift) {
  RecomputeOracle<R> oracle(q);
  for (const StreamStep& s : stream.steps) {
    for (const Delta<IntRing>& d : s.deltas) {
      oracle.Apply(d.relation, d.tuple, lift(d.delta));
    }
  }
  return oracle.Eval();
}

}  // namespace check
}  // namespace incr

#endif  // INCR_CHECK_ORACLE_H_
