#include "incr/insertonly/insert_only_engine.h"

#include <deque>
#include <utility>

#include "incr/query/properties.h"
#include "incr/util/check.h"

namespace incr {

StatusOr<InsertOnlyEngine> InsertOnlyEngine::Make(const Query& q) {
  if (!IsAlphaAcyclic(q)) {
    return Status::FailedPrecondition(
        "insert-only engine requires an alpha-acyclic query");
  }
  Schema all = q.AllVars();
  if (q.free().size() != all.size() || !SchemaSubset(all, q.free())) {
    return Status::InvalidArgument(
        "insert-only engine maintains full join queries (all variables "
        "free)");
  }

  // GYO ear decomposition to build the join tree: repeatedly find an atom
  // whose non-exclusive variables are covered by another remaining atom and
  // attach it as that atom's child.
  size_t n = q.atoms().size();
  std::vector<bool> removed(n, false);
  std::vector<int> parent(n, -1);
  size_t remaining = n;
  bool progress = true;
  while (remaining > 1 && progress) {
    progress = false;
    for (size_t i = 0; i < n && remaining > 1; ++i) {
      if (removed[i]) continue;
      // Variables of i shared with other remaining atoms.
      Schema shared;
      for (Var v : q.atoms()[i].schema) {
        for (size_t j = 0; j < n; ++j) {
          if (j != i && !removed[j] &&
              SchemaContains(q.atoms()[j].schema, v)) {
            shared.push_back(v);
            break;
          }
        }
      }
      for (size_t j = 0; j < n; ++j) {
        if (j == i || removed[j]) continue;
        if (SchemaSubset(shared, q.atoms()[j].schema)) {
          parent[i] = static_cast<int>(j);
          removed[i] = true;
          --remaining;
          progress = true;
          break;
        }
      }
    }
  }
  INCR_CHECK(remaining == 1);  // guaranteed by alpha-acyclicity

  InsertOnlyEngine e;
  e.query_ = q;
  e.all_vars_ = all;
  e.nodes_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    Node& node = e.nodes_[i];
    node.atom = i;
    node.parent = parent[i];
    node.schema = q.atoms()[i].schema;
    if (parent[i] >= 0) {
      e.nodes_[static_cast<size_t>(parent[i])].children.push_back(
          static_cast<int>(i));
      node.parent_key = SchemaIntersect(
          node.schema, q.atoms()[static_cast<size_t>(parent[i])].schema);
    } else {
      e.root_ = static_cast<int>(i);
    }
    node.parent_key_positions =
        ProjectionPositions(node.schema, node.parent_key);
    node.alive_index =
        std::make_unique<GroupedIndex>(node.schema, node.parent_key);
  }
  for (size_t i = 0; i < n; ++i) {
    Node& node = e.nodes_[i];
    for (int c : node.children) {
      Schema key = e.nodes_[static_cast<size_t>(c)].parent_key;
      node.child_probe.push_back(
          std::make_unique<GroupedIndex>(node.schema, key));
    }
  }
  return e;
}

void InsertOnlyEngine::Insert(size_t atom_id, const Tuple& t, int64_t m) {
  INCR_CHECK(m > 0);
  InsertIntoNode(atom_id, t, m);
}

void InsertOnlyEngine::Insert(const std::string& rel, const Tuple& t,
                              int64_t m) {
  bool found = false;
  for (size_t i = 0; i < query_.atoms().size(); ++i) {
    if (query_.atoms()[i].relation == rel) {
      InsertIntoNode(i, t, m);
      found = true;
    }
  }
  INCR_CHECK(found);
}

void InsertOnlyEngine::InsertIntoNode(size_t node_id, const Tuple& t,
                                      int64_t m) {
  Node& node = nodes_[node_id];
  TupleState* existing = node.tuples.Find(t);
  if (existing != nullptr) {
    existing->payload += m;  // multiplicity bump, no structural change
    return;
  }
  TupleState st;
  st.payload = m;
  for (size_t ci = 0; ci < node.children.size(); ++ci) {
    const Node& child = nodes_[static_cast<size_t>(node.children[ci])];
    Tuple key = node.child_probe[ci]->KeyOf(t);
    if (child.alive_key_count.Find(key) != nullptr) ++st.satisfied;
    ++activation_work_;
  }
  st.alive = st.satisfied == node.children.size();
  node.tuples.GetOrInsert(t, st);
  for (auto& probe : node.child_probe) probe->Insert(t);
  ++activation_work_;
  if (st.alive) Activate(node_id, t);
}

void InsertOnlyEngine::Activate(size_t node_id, const Tuple& t) {
  // Worklist to avoid deep recursion on activation cascades.
  std::deque<std::pair<size_t, Tuple>> work;
  work.emplace_back(node_id, t);
  while (!work.empty()) {
    auto [ni, tup] = work.front();
    work.pop_front();
    Node& node = nodes_[ni];
    node.alive_index->Insert(tup);
    ++activation_work_;
    if (node.parent < 0) continue;
    Tuple key = ProjectTuple(tup, node.parent_key_positions);
    int64_t& cnt = node.alive_key_count.GetOrInsert(key, 0);
    ++cnt;
    if (cnt != 1) continue;  // key already supported the parent
    // First alive tuple for this key: bump the parent tuples joining it.
    Node& parent = nodes_[static_cast<size_t>(node.parent)];
    size_t child_slot = 0;
    for (size_t ci = 0; ci < parent.children.size(); ++ci) {
      if (parent.children[ci] == static_cast<int>(ni)) child_slot = ci;
    }
    const auto* group = parent.child_probe[child_slot]->Group(key);
    if (group == nullptr) continue;
    for (const Tuple& pt : *group) {
      TupleState* ps = parent.tuples.Find(pt);
      INCR_DCHECK(ps != nullptr);
      ++activation_work_;
      if (ps->alive) continue;
      ++ps->satisfied;
      if (ps->satisfied == parent.children.size()) {
        ps->alive = true;
        work.emplace_back(static_cast<size_t>(node.parent), pt);
      }
    }
  }
}

size_t InsertOnlyEngine::Enumerate(const Sink& sink) const {
  if (root_ < 0) return 0;
  // Top-down walk over alive tuples; assignments over all_vars_. Shared
  // variables between two nodes lie on the path between them (running
  // intersection property), so writing each node's tuple into `assign` and
  // matching children on their parent keys is sound.
  Tuple assign;
  assign.resize(all_vars_.size(), 0);
  size_t count = 0;

  std::vector<SmallVector<uint32_t, 4>> var_pos(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    var_pos[i] = ProjectionPositions(all_vars_, nodes_[i].schema);
  }

  // ResolveChildren(ni, ci, acc, k): choose alive tuples for children
  // ci.. of node ni (whose own tuple is already in `assign`), resolving
  // each chosen child's subtree, then call k with the accumulated payload.
  using Cont = std::function<void(int64_t)>;
  std::function<void(size_t, size_t, int64_t, const Cont&)> resolve =
      [&](size_t ni, size_t child_idx, int64_t acc, const Cont& k) {
        const Node& node = nodes_[ni];
        if (child_idx == node.children.size()) {
          k(acc);
          return;
        }
        size_t ci = static_cast<size_t>(node.children[child_idx]);
        const Node& child = nodes_[ci];
        Tuple key;
        key.reserve(child.parent_key.size());
        for (Var v : child.parent_key) {
          key.push_back(assign[*FindVar(all_vars_, v)]);
        }
        const auto* group = child.alive_index->Group(key);
        if (group == nullptr) return;  // impossible for alive parents
        for (const Tuple& ct : *group) {
          for (size_t p = 0; p < ct.size(); ++p) {
            assign[var_pos[ci][p]] = ct[p];
          }
          int64_t payload = child.tuples.Find(ct)->payload;
          resolve(ci, 0, acc * payload, [&](int64_t sub) {
            resolve(ni, child_idx + 1, sub, k);
          });
        }
      };

  const Node& root = nodes_[static_cast<size_t>(root_)];
  const auto* rg = root.alive_index->Group(Tuple{});
  if (rg == nullptr) return 0;
  for (const Tuple& rt : *rg) {
    for (size_t p = 0; p < rt.size(); ++p) {
      assign[var_pos[static_cast<size_t>(root_)][p]] = rt[p];
    }
    int64_t payload = root.tuples.Find(rt)->payload;
    resolve(static_cast<size_t>(root_), 0, payload, [&](int64_t acc) {
      if (sink) sink(assign, acc);
      ++count;
    });
  }
  return count;
}

size_t InsertOnlyEngine::NumAliveTuples() const {
  size_t n = 0;
  for (const Node& node : nodes_) n += node.alive_index->NumEntries();
  return n;
}

}  // namespace incr
