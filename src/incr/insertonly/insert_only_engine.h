// Insert-only maintenance of alpha-acyclic join queries (paper §4.6, [2]):
// amortized O(1) per single-tuple insert and constant-delay enumeration of
// the full join output — a regime where even non-q-hierarchical queries
// (which Thm. 4.1 makes hard under insert+delete) become easy.
//
// Construction: a GYO join tree over the atoms. Each tuple of a node keeps
// a *support counter* = how many of the node's children currently have at
// least one "alive" tuple joining it; a tuple is alive when every child
// supports it. Under inserts these counters are monotone: a (child, key)
// pair activates at most once, and the scan of parent tuples it triggers
// charges each parent tuple at most once per child over its lifetime —
// total work O(#inserts * #atoms), i.e. amortized O(1) per insert.
// Enumeration walks the join tree top-down over alive tuples only, so every
// partial assignment extends to a full output tuple (Yannakakis-style
// calibration) and the delay is constant.
#ifndef INCR_INSERTONLY_INSERT_ONLY_ENGINE_H_
#define INCR_INSERTONLY_INSERT_ONLY_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "incr/data/grouped_index.h"
#include "incr/data/relation.h"
#include "incr/engines/engine.h"
#include "incr/query/query.h"
#include "incr/ring/int_ring.h"
#include "incr/util/status.h"

namespace incr {

class InsertOnlyEngine : public IvmEngine<IntRing> {
 public:
  /// Receives each output tuple over q.AllVars() with its multiplicity.
  using Sink = IvmEngine<IntRing>::Sink;

  /// `q` must be alpha-acyclic with every variable free (a join query).
  static StatusOr<InsertOnlyEngine> Make(const Query& q);

  const Query& query() const { return query_; }

  /// Output tuple schema: q.AllVars().
  const Schema& OutputSchema() const { return all_vars_; }

  /// Inserts `m` > 0 copies of `t` into atom `atom_id`.
  void Insert(size_t atom_id, const Tuple& t, int64_t m = 1);

  /// Inserts into every atom with relation name `rel`.
  void Insert(const std::string& rel, const Tuple& t, int64_t m = 1);

  /// Enumerates the full join output; returns the number of tuples.
  size_t Enumerate(const Sink& sink) const;
  // The const overload above would otherwise hide the instrumented
  // non-const facade inherited from IvmEngine.
  using IvmEngine<IntRing>::Enumerate;

  // IvmEngine: deltas must be inserts (m > 0); deletions are outside this
  // engine's regime (the point of §4.6).
  const char* name() const override { return "insert-only"; }

  /// Total structural work performed by activations so far; the benchmark
  /// divides this by the number of inserts to exhibit the amortized-O(1)
  /// bound.
  int64_t activation_work() const { return activation_work_; }

  size_t NumAliveTuples() const;

 protected:
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const int64_t& m) override {
    Insert(rel, t, m);
  }

  size_t EnumerateImpl(const Sink& sink) override {
    return static_cast<const InsertOnlyEngine*>(this)->Enumerate(sink);
  }

 private:
  struct TupleState {
    int64_t payload = 0;
    uint32_t satisfied = 0;  // children with a joining alive tuple
    bool alive = false;
  };

  struct Node {
    size_t atom = 0;          // atom index in the query
    int parent = -1;          // node index
    std::vector<int> children;
    Schema schema;            // atom schema
    Schema parent_key;        // join vars with the parent (empty at root)
    DenseMap<Tuple, TupleState, TupleHash, TupleEq> tuples;
    // Count of alive tuples per parent_key value (consulted by the parent).
    DenseMap<Tuple, int64_t, TupleHash, TupleEq> alive_key_count;
    // Alive tuples grouped by parent_key (top-down enumeration).
    std::unique_ptr<GroupedIndex> alive_index;
    // All tuples grouped by the join vars with each child (activation
    // scans), parallel to `children`.
    std::vector<std::unique_ptr<GroupedIndex>> child_probe;
    SmallVector<uint32_t, 4> parent_key_positions;
  };

  InsertOnlyEngine() = default;

  void InsertIntoNode(size_t node_id, const Tuple& t, int64_t m);
  void Activate(size_t node_id, const Tuple& t);

  Query query_;
  Schema all_vars_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int64_t activation_work_ = 0;
};

}  // namespace incr

#endif  // INCR_INSERTONLY_INSERT_ONLY_ENGINE_H_
