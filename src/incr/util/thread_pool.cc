#include "incr/util/thread_pool.h"

#include <cstdlib>

namespace incr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Serialize concurrent ParallelFor callers, and wait out any worker
    // that woke for the previous job but has not yet re-parked — it may
    // still hold pointers to the old job state we are about to overwrite.
    idle_cv_.wait(lock, [this] {
      return job_fn_ == nullptr && active_workers_ == 0;
    });
    job_fn_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    pending_.store(n, std::memory_order_relaxed);
    ++epoch_;
  }
  wake_cv_.notify_all();
  RunTasks(&fn, n);  // the calling thread participates
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    job_fn_ = nullptr;
  }
  idle_cv_.notify_all();
}

void ThreadPool::RunTasks(const std::function<void(size_t)>* fn, size_t n) {
  for (;;) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    (*fn)(i);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  size_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_cv_.wait(lock,
                  [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    const std::function<void(size_t)>* fn = job_fn_;
    size_t n = job_n_;
    if (fn == nullptr) continue;  // job already finished and was cleared
    ++active_workers_;
    lock.unlock();
    RunTasks(fn, n);
    lock.lock();
    if (--active_workers_ == 0) idle_cv_.notify_all();
  }
}

size_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("INCR_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return pool;
}

}  // namespace incr
