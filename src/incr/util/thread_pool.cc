#include "incr/util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "incr/obs/metrics.h"
#include "incr/obs/trace.h"

namespace incr {

namespace {

// Handles cached once; registration is idempotent and the pointers live
// for the process lifetime.
struct PoolMetrics {
  obs::Counter* jobs;
  obs::Counter* tasks;
  obs::Counter* caller_tasks;
  obs::Counter* stolen_tasks;
  obs::Counter* steal_fail;
  obs::Histogram* job_ns;
  obs::Histogram* task_ns;
  obs::Histogram* wake_ns;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return PoolMetrics{
        r.GetCounter("threadpool.jobs"),
        r.GetCounter("threadpool.tasks"),
        r.GetCounter("threadpool.caller_tasks"),
        r.GetCounter("threadpool.stolen_tasks"),
        r.GetCounter("pool.steal_fail"),
        r.GetHistogram("threadpool.job_ns"),
        r.GetHistogram("threadpool.task_ns"),
        r.GetHistogram("threadpool.wake_ns"),
    };
  }();
  return m;
}

// How many relaxed polls a worker makes for a fresh job before parking on
// the condition variable. Bounds the idle burn to a few microseconds while
// letting back-to-back batches skip the futex round trip.
constexpr int kIdleSpins = 256;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  ranges_ = std::vector<MorselRange>(num_threads);
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    stop_hint_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const bool obs_on = obs::Enabled();
  obs::TraceSpan span("threadpool.parallel_for");
  span.AddArg("n", static_cast<uint64_t>(n));
  const uint64_t job_start = obs_on ? obs::NowNs() : 0;
  if (obs_on) {
    Metrics().jobs->Inc();
    Metrics().tasks->Add(n);
  }
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    if (obs_on) {
      Metrics().caller_tasks->Add(n);
      Metrics().job_ns->Record(obs::NowNs() - job_start);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Serialize concurrent ParallelFor callers, and wait out any worker
    // that woke for the previous job but has not yet re-parked — it may
    // still hold pointers to the old job state we are about to overwrite.
    idle_cv_.wait(lock, [this] {
      return job_fn_ == nullptr && morsel_fn_ == nullptr &&
             active_workers_ == 0;
    });
    job_fn_ = &fn;
    job_n_ = n;
    job_error_ = nullptr;
    job_failed_.store(false, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    pending_.store(n, std::memory_order_relaxed);
    job_submit_ns_.store(obs_on ? obs::NowNs() : 0,
                         std::memory_order_relaxed);
    ++epoch_;
    epoch_hint_.store(epoch_, std::memory_order_release);
  }
  wake_cv_.notify_all();
  size_t mine = RunTasks(&fn, n);  // the calling thread participates
  if (obs_on) Metrics().caller_tasks->Add(mine);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    job_fn_ = nullptr;
    err = job_error_;
    job_error_ = nullptr;
  }
  idle_cv_.notify_all();
  if (obs_on) Metrics().job_ns->Record(obs::NowNs() - job_start);
  if (err) std::rethrow_exception(err);
}

void ThreadPool::ParallelMorsels(
    size_t n, size_t morsel, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (morsel == 0 || morsel > n) morsel = n;
  const size_t num_morsels = (n + morsel - 1) / morsel;
  const bool obs_on = obs::Enabled();
  obs::TraceSpan span("threadpool.parallel_morsels");
  span.AddArg("n", static_cast<uint64_t>(n));
  span.AddArg("morsels", static_cast<uint64_t>(num_morsels));
  const uint64_t job_start = obs_on ? obs::NowNs() : 0;
  if (obs_on) {
    Metrics().jobs->Inc();
    Metrics().tasks->Add(num_morsels);
  }
  if (workers_.empty() || num_morsels == 1) {
    // Degenerate path: no ranges, no atomics — an inline sweep of the
    // same grid, so per-morsel callback boundaries are unchanged.
    for (size_t m = 0; m < num_morsels; ++m) {
      fn(m * morsel, std::min((m + 1) * morsel, n));
    }
    if (obs_on) {
      Metrics().caller_tasks->Add(num_morsels);
      Metrics().job_ns->Record(obs::NowNs() - job_start);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] {
      return job_fn_ == nullptr && morsel_fn_ == nullptr &&
             active_workers_ == 0;
    });
    morsel_fn_ = &fn;
    morsel_n_ = n;
    morsel_size_ = morsel;
    // Carve the fixed grid into one contiguous home range per thread
    // slot. The grid itself never moves — ranges only decide which thread
    // *starts* where; stealing rebalances the rest.
    const size_t nslots = ranges_.size();
    const size_t base = num_morsels / nslots;
    const size_t rem = num_morsels % nslots;
    size_t at = 0;
    for (size_t t = 0; t < nslots; ++t) {
      const size_t take = base + (t < rem ? 1 : 0);
      ranges_[t].next.store(at, std::memory_order_relaxed);
      ranges_[t].end = at + take;
      at += take;
    }
    join_slot_.store(1, std::memory_order_relaxed);  // caller takes slot 0
    job_error_ = nullptr;
    job_failed_.store(false, std::memory_order_relaxed);
    pending_.store(num_morsels, std::memory_order_relaxed);
    job_submit_ns_.store(obs_on ? obs::NowNs() : 0,
                         std::memory_order_relaxed);
    ++epoch_;
    epoch_hint_.store(epoch_, std::memory_order_release);
  }
  wake_cv_.notify_all();
  size_t mine = RunMorsels(&fn, n, morsel, 0);
  if (obs_on) Metrics().caller_tasks->Add(mine);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    morsel_fn_ = nullptr;
    err = job_error_;
    job_error_ = nullptr;
  }
  idle_cv_.notify_all();
  if (obs_on) Metrics().job_ns->Record(obs::NowNs() - job_start);
  if (err) std::rethrow_exception(err);
}

size_t ThreadPool::RunTasks(const std::function<void(size_t)>* fn,
                            size_t n) {
  const bool obs_on = obs::Enabled();
  size_t executed = 0;
  for (;;) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return executed;
    // Fail fast after a task threw: skip the body of every index claimed
    // from here on, but still count each one down — pending_ must reach 0
    // or ParallelFor (and the next job) would wait forever.
    if (!job_failed_.load(std::memory_order_acquire)) {
      try {
        if (obs_on) {
          const uint64_t t0 = obs::NowNs();
          (*fn)(i);
          Metrics().task_ns->Record(obs::NowNs() - t0);
        } else {
          (*fn)(i);
        }
        ++executed;
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!job_error_) job_error_ = std::current_exception();
        job_failed_.store(true, std::memory_order_release);
      }
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

size_t ThreadPool::RunMorsels(const std::function<void(size_t, size_t)>* fn,
                              size_t n, size_t morsel, size_t slot) {
  const bool obs_on = obs::Enabled();
  const size_t nslots = ranges_.size();
  size_t executed = 0;
  uint64_t steal_fails = 0;
  // Drain the home range (offset 0), then sweep every other range once.
  // A range that turns up empty advances the sweep; a successful claim
  // keeps the thread on that range until it too drains. One full failed
  // sweep == the steal budget is spent and the thread leaves the job.
  size_t offset = 0;
  while (offset < nslots) {
    MorselRange& r = ranges_[(slot + offset) % nslots];
    const size_t m = r.next.fetch_add(1, std::memory_order_relaxed);
    if (m >= r.end) {
      if (offset > 0) ++steal_fails;  // a steal probe that found nothing
      ++offset;
      continue;
    }
    const size_t begin = m * morsel;
    const size_t end = std::min(begin + morsel, n);
    // Same fail-fast contract as RunTasks: after an exception, claimed
    // morsels are skipped but still drain pending_.
    if (!job_failed_.load(std::memory_order_acquire)) {
      try {
        if (obs_on) {
          const uint64_t t0 = obs::NowNs();
          (*fn)(begin, end);
          Metrics().task_ns->Record(obs::NowNs() - t0);
        } else {
          (*fn)(begin, end);
        }
        ++executed;
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!job_error_) job_error_ = std::current_exception();
        job_failed_.store(true, std::memory_order_release);
      }
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
  if (obs_on && steal_fails > 0) Metrics().steal_fail->Add(steal_fails);
  return executed;
}

void ThreadPool::WorkerLoop() {
  size_t seen_epoch = 0;
  for (;;) {
    // Spin-then-park: poll the lock-free epoch mirror for a few hundred
    // pause cycles so a batch train keeps workers hot, then fall back to
    // the condition variable so an idle pool burns no core.
    for (int i = 0; i < kIdleSpins; ++i) {
      if (stop_hint_.load(std::memory_order_relaxed) ||
          epoch_hint_.load(std::memory_order_acquire) != seen_epoch) {
        break;
      }
      CpuRelax();
    }
    std::unique_lock<std::mutex> lock(mu_);
    wake_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    const std::function<void(size_t)>* fn = job_fn_;
    const std::function<void(size_t, size_t)>* mfn = morsel_fn_;
    size_t n = job_n_;
    size_t mn = morsel_n_;
    size_t msize = morsel_size_;
    if (fn == nullptr && mfn == nullptr) {
      continue;  // job already finished and was cleared
    }
    const uint64_t submit_ns = job_submit_ns_.load(std::memory_order_relaxed);
    ++active_workers_;
    lock.unlock();
    if (submit_ns != 0 && obs::Enabled()) {
      const uint64_t now = obs::NowNs();
      if (now > submit_ns) Metrics().wake_ns->Record(now - submit_ns);
    }
    size_t executed;
    if (mfn != nullptr) {
      const size_t slot =
          join_slot_.fetch_add(1, std::memory_order_relaxed) % ranges_.size();
      executed = RunMorsels(mfn, mn, msize, slot);
    } else {
      executed = RunTasks(fn, n);
    }
    if (executed > 0 && obs::Enabled()) {
      Metrics().stolen_tasks->Add(executed);
    }
    lock.lock();
    if (--active_workers_ == 0) idle_cv_.notify_all();
    lock.unlock();
  }
}

size_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("INCR_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return pool;
}

}  // namespace incr
