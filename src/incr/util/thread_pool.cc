#include "incr/util/thread_pool.h"

#include <cstdlib>

#include "incr/obs/metrics.h"
#include "incr/obs/trace.h"

namespace incr {

namespace {

// Handles cached once; registration is idempotent and the pointers live
// for the process lifetime.
struct PoolMetrics {
  obs::Counter* jobs;
  obs::Counter* tasks;
  obs::Counter* caller_tasks;
  obs::Counter* stolen_tasks;
  obs::Histogram* job_ns;
  obs::Histogram* task_ns;
  obs::Histogram* wake_ns;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return PoolMetrics{
        r.GetCounter("threadpool.jobs"),
        r.GetCounter("threadpool.tasks"),
        r.GetCounter("threadpool.caller_tasks"),
        r.GetCounter("threadpool.stolen_tasks"),
        r.GetHistogram("threadpool.job_ns"),
        r.GetHistogram("threadpool.task_ns"),
        r.GetHistogram("threadpool.wake_ns"),
    };
  }();
  return m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const bool obs_on = obs::Enabled();
  obs::TraceSpan span("threadpool.parallel_for");
  span.AddArg("n", static_cast<uint64_t>(n));
  const uint64_t job_start = obs_on ? obs::NowNs() : 0;
  if (obs_on) {
    Metrics().jobs->Inc();
    Metrics().tasks->Add(n);
  }
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    if (obs_on) {
      Metrics().caller_tasks->Add(n);
      Metrics().job_ns->Record(obs::NowNs() - job_start);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Serialize concurrent ParallelFor callers, and wait out any worker
    // that woke for the previous job but has not yet re-parked — it may
    // still hold pointers to the old job state we are about to overwrite.
    idle_cv_.wait(lock, [this] {
      return job_fn_ == nullptr && active_workers_ == 0;
    });
    job_fn_ = &fn;
    job_n_ = n;
    job_error_ = nullptr;
    job_failed_.store(false, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    pending_.store(n, std::memory_order_relaxed);
    job_submit_ns_.store(obs_on ? obs::NowNs() : 0,
                         std::memory_order_relaxed);
    ++epoch_;
  }
  wake_cv_.notify_all();
  size_t mine = RunTasks(&fn, n);  // the calling thread participates
  if (obs_on) Metrics().caller_tasks->Add(mine);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    job_fn_ = nullptr;
    err = job_error_;
    job_error_ = nullptr;
  }
  idle_cv_.notify_all();
  if (obs_on) Metrics().job_ns->Record(obs::NowNs() - job_start);
  if (err) std::rethrow_exception(err);
}

size_t ThreadPool::RunTasks(const std::function<void(size_t)>* fn,
                            size_t n) {
  const bool obs_on = obs::Enabled();
  size_t executed = 0;
  for (;;) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return executed;
    // Fail fast after a task threw: skip the body of every index claimed
    // from here on, but still count each one down — pending_ must reach 0
    // or ParallelFor (and the next job) would wait forever.
    if (!job_failed_.load(std::memory_order_acquire)) {
      try {
        if (obs_on) {
          const uint64_t t0 = obs::NowNs();
          (*fn)(i);
          Metrics().task_ns->Record(obs::NowNs() - t0);
        } else {
          (*fn)(i);
        }
        ++executed;
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!job_error_) job_error_ = std::current_exception();
        job_failed_.store(true, std::memory_order_release);
      }
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  size_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_cv_.wait(lock,
                  [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    const std::function<void(size_t)>* fn = job_fn_;
    size_t n = job_n_;
    if (fn == nullptr) continue;  // job already finished and was cleared
    const uint64_t submit_ns = job_submit_ns_.load(std::memory_order_relaxed);
    ++active_workers_;
    lock.unlock();
    if (submit_ns != 0 && obs::Enabled()) {
      const uint64_t now = obs::NowNs();
      if (now > submit_ns) Metrics().wake_ns->Record(now - submit_ns);
    }
    size_t executed = RunTasks(fn, n);
    if (executed > 0 && obs::Enabled()) {
      Metrics().stolen_tasks->Add(executed);
    }
    lock.lock();
    if (--active_workers_ == 0) idle_cv_.notify_all();
  }
}

size_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("INCR_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return pool;
}

}  // namespace incr
