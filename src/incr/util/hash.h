// Hash mixing primitives used by the hash map, tuples, and indexes.
// We use a 64-bit multiply-xorshift mixer (the finalizer of SplitMix64 /
// wyhash family), which is fast and has full avalanche — important because
// workload generators produce small dense integers that std::hash would pass
// through unmixed, degenerating open addressing into clustering.
#ifndef INCR_UTIL_HASH_H_
#define INCR_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace incr {

/// Mixes a 64-bit value with full avalanche (SplitMix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines an accumulated hash with the next 64-bit lane.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  // Rotate-multiply combiner; distinct from Mix64 so that combining is not
  // commutative across lanes.
  seed ^= Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// Hashes a span of 64-bit lanes.
inline uint64_t HashSpan64(const uint64_t* data, size_t n) {
  uint64_t h = 0x2545f4914f6cdd1dULL ^ (n * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

/// Maps a 64-bit hash to a shard in [0, n) using the *high* hash bits
/// (fixed-point scaling). The open-addressing tables consume the low bits
/// for bucket selection; sharding by the low bits would leave every
/// shard's table clustered on a single residue class.
inline size_t ShardOfHash(uint64_t h, size_t n) {
  return static_cast<size_t>(((h >> 32) * static_cast<uint64_t>(n)) >> 32);
}

}  // namespace incr

#endif  // INCR_UTIL_HASH_H_
