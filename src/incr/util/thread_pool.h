// A small fixed-size thread pool with a blocking parallel-for primitive —
// the execution substrate of the parallel batch-maintenance layer (no
// external dependencies, std::thread only).
//
// Design constraints, in order:
//   * Determinism support: ParallelFor(n, fn) promises nothing about which
//     thread runs which index, so callers MUST make fn(i)'s *output*
//     independent of scheduling (write to slot i, never to shared state).
//     All parallel maintenance code in this repo follows that rule, which
//     is how thread count stays invisible in results.
//   * Reuse: one pool serves many ParallelFor calls; workers park on a
//     condition variable between jobs (no spawn per batch).
//   * Laziness: a pool of size 1 never spawns a worker thread, and the
//     process-wide Global() pool is only constructed on first use.
//
// One job runs at a time per pool; ParallelFor is not reentrant from
// inside a task of the same pool (the view tree never nests it). A task
// that throws fails the job fast: the first exception is captured, the
// remaining unclaimed indexes are skipped (claimed-but-skipped tasks still
// count down, so the job always drains), and ParallelFor rethrows the
// captured exception on the calling thread once every worker has let go
// of the job. Exceptions after the first are swallowed. The library's own
// maintenance tasks still report bugs via INCR_CHECK (abort); propagation
// exists for user-supplied sinks and callbacks that run inside tasks.
#ifndef INCR_UTIL_THREAD_POOL_H_
#define INCR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace incr {

class ThreadPool {
 public:
  /// A pool that runs ParallelFor on `num_threads` threads total: the
  /// calling thread plus num_threads - 1 parked workers. num_threads == 0
  /// means DefaultThreads().
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers (after finishing any in-flight job).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in ParallelFor (callers + workers).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(0) .. fn(n-1), distributing indexes dynamically over the
  /// pool's threads (the caller participates), and returns when all n
  /// calls have finished. Completed work happens-before the return.
  /// With a single-thread pool (or n <= 1) this is a plain inline loop.
  /// If a task throws, the job fails fast (remaining indexes are skipped)
  /// and the first exception is rethrown here after the job drains.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Morsel-driven parallel loop over [0, n): fn(begin, end) is invoked
  /// exactly once per cell of the fixed morsel grid — cell m covers
  /// [m*morsel, min((m+1)*morsel, n)). The grid depends only on n and
  /// morsel, never on the thread count, so callers that index per-morsel
  /// output buffers by begin/morsel get layouts invariant under
  /// scheduling. Each thread drains a contiguous home range of the grid
  /// (one atomic claim per morsel), then sweeps the other threads' ranges
  /// once to steal leftovers; a thread leaves the job after one full
  /// failed sweep (the bounded steal budget — failed probes are counted
  /// in `pool.steal_fail`). Same blocking, participation, and fail-fast
  /// exception contract as ParallelFor. With a single-thread pool (or a
  /// single morsel) this is a plain inline loop with no shared state.
  void ParallelMorsels(size_t n, size_t morsel,
                       const std::function<void(size_t, size_t)>& fn);

  /// The thread count used when a knob is 0: the INCR_THREADS environment
  /// variable if set to a positive integer, else hardware_concurrency().
  static size_t DefaultThreads();

  /// A lazily-constructed process-wide pool of DefaultThreads() threads.
  /// Never destroyed (workers park between uses; leak-on-exit avoids
  /// shutdown-order hazards with static users).
  static ThreadPool* Global();

 private:
  // One thread's home range of unclaimed morsel-grid cells. Each lives on
  // its own cache line so a thread's claims never ping-pong a line shared
  // with another thread's range.
  struct alignas(64) MorselRange {
    std::atomic<size_t> next{0};  // next unclaimed grid cell
    size_t end = 0;               // one past the last cell of this range
  };

  void WorkerLoop();
  // Claims and runs tasks until the job is drained; returns how many this
  // thread executed (fed into the caller/stolen task counters).
  size_t RunTasks(const std::function<void(size_t)>* fn, size_t n);
  // Morsel-job counterpart: drains the home range at `slot`, then sweeps
  // the other ranges once; returns how many morsels this thread executed.
  size_t RunMorsels(const std::function<void(size_t, size_t)>* fn, size_t n,
                    size_t morsel, size_t slot);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;   // workers wait here for a new job
  std::condition_variable done_cv_;   // ParallelFor waits here for pending_
  std::condition_variable idle_cv_;   // next job waits for stragglers
  const std::function<void(size_t)>* job_fn_ = nullptr;  // guarded by mu_
  // Current morsel job, exclusive with job_fn_; all guarded by mu_.
  const std::function<void(size_t, size_t)>* morsel_fn_ = nullptr;
  size_t morsel_n_ = 0;
  size_t morsel_size_ = 0;
  size_t job_n_ = 0;                                     // guarded by mu_
  size_t epoch_ = 0;                                     // guarded by mu_
  size_t active_workers_ = 0;                            // guarded by mu_
  bool stop_ = false;                                    // guarded by mu_
  std::exception_ptr job_error_;    // first task exception; guarded by mu_
  std::vector<MorselRange> ranges_;  // one home range per thread slot
  std::atomic<size_t> join_slot_{0};  // next home-range slot to hand out
  std::atomic<size_t> next_{0};     // next unclaimed index of the job
  std::atomic<size_t> pending_{0};  // tasks not yet finished
  std::atomic<bool> job_failed_{false};  // fail-fast flag for this job
  // Lock-free mirrors of epoch_/stop_ for the bounded pre-park spin in
  // WorkerLoop (the CV wait under mu_ remains the source of truth).
  std::atomic<size_t> epoch_hint_{0};
  std::atomic<bool> stop_hint_{false};
  // Submission timestamp of the current job (obs::NowNs), 0 when metrics
  // are off — lets woken workers report their wake latency.
  std::atomic<uint64_t> job_submit_ns_{0};
};

}  // namespace incr

#endif  // INCR_UTIL_THREAD_POOL_H_
