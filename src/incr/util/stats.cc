#include "incr/util/stats.h"

#include <algorithm>
#include <cmath>

#include "incr/util/check.h"

namespace incr {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

size_t NearestRank(size_t n, double p) {
  INCR_CHECK(n > 0);
  if (p <= 0.0) return 0;
  if (p >= 100.0) return n - 1;
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank > 0) --rank;
  return std::min(rank, n - 1);
}

double Percentile(std::vector<double> xs, double p) {
  INCR_CHECK(p >= 0.0 && p <= 100.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[NearestRank(xs.size(), p)];
}

double Max(const std::vector<double>& xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, x);
  return m;
}

double LogLogSlope(const std::vector<double>& x,
                   const std::vector<double>& y) {
  INCR_CHECK(x.size() == y.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    double lx = std::log(x[i]);
    double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  double dn = static_cast<double>(n);
  double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

}  // namespace incr
