#include "incr/util/rng.h"

#include <algorithm>
#include <cmath>

#include "incr/util/check.h"
#include "incr/util/hash.h"

namespace incr {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed into the xoshiro state; guarantees a
  // non-zero state for any seed.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = Mix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  INCR_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  INCR_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  INCR_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace incr
