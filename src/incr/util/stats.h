// Small statistics helpers used by the benchmark harness: summary stats and
// log-log slope fitting (to compare measured scaling exponents against the
// paper's asymptotic claims).
#ifndef INCR_UTIL_STATS_H_
#define INCR_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace incr {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// p-th percentile (p in [0,100]) by nearest-rank on a sorted copy.
double Percentile(std::vector<double> xs, double p);

/// Maximum; 0 for empty input.
double Max(const std::vector<double>& xs);

/// Least-squares slope of log(y) against log(x). Points with non-positive
/// coordinates are skipped. Returns 0 when fewer than two usable points.
/// For a measurement y ~ c * x^k this estimates k, so it directly checks
/// claims like "update time is O(N^{1/2})".
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace incr

#endif  // INCR_UTIL_STATS_H_
