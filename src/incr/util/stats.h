// Small statistics helpers used by the benchmark harness: summary stats and
// log-log slope fitting (to compare measured scaling exponents against the
// paper's asymptotic claims).
#ifndef INCR_UTIL_STATS_H_
#define INCR_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace incr {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Nearest-rank index for the p-th percentile over n sorted samples:
/// p <= 0 selects index 0, p >= 100 selects n-1, otherwise
/// ceil(p/100 * n) - 1. Requires n > 0. Shared by Percentile and the
/// observability histograms (obs/metrics.h) so both report identical ranks.
size_t NearestRank(size_t n, double p);

/// p-th percentile (p in [0,100]) by nearest-rank on a sorted copy.
/// Edge cases: empty input returns 0; p=0 returns the minimum; p=100 the
/// maximum; a single element is returned for every p. p outside [0,100]
/// is a checked error even for empty input.
double Percentile(std::vector<double> xs, double p);

/// Maximum; 0 for empty input.
double Max(const std::vector<double>& xs);

/// Least-squares slope of log(y) against log(x). Points with non-positive
/// coordinates are skipped. Returns 0 when fewer than two usable points.
/// For a measurement y ~ c * x^k this estimates k, so it directly checks
/// claims like "update time is O(N^{1/2})".
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace incr

#endif  // INCR_UTIL_STATS_H_
