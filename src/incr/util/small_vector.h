// SmallVector<T, N>: a vector with inline storage for up to N elements.
// Tuples in IVM workloads are short (2-6 values); keeping them inline avoids
// a heap allocation per tuple, which dominates update cost otherwise.
// Restricted to trivially copyable T, which covers Value and ints.
#ifndef INCR_UTIL_SMALL_VECTOR_H_
#define INCR_UTIL_SMALL_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>

#include "incr/util/check.h"

namespace incr {

template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable T");

 public:
  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const T* data, size_t n) {
    reserve(n);
    std::memcpy(data_, data, n * sizeof(T));
    size_ = n;
  }

  SmallVector(const SmallVector& other) { CopyFrom(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { Release(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  const T* data() const { return data_; }
  T* data() { return data_; }

  const T& operator[](size_t i) const {
    INCR_DCHECK(i < size_);
    return data_[i];
  }
  T& operator[](size_t i) {
    INCR_DCHECK(i < size_);
    return data_[i];
  }

  const T& back() const {
    INCR_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void resize(size_t n, T fill = T{}) {
    reserve(n);
    for (size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  void push_back(const T& v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data_[size_++] = v;
  }

  void pop_back() {
    INCR_DCHECK(size_ > 0);
    --size_;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    if (a.size_ != b.size_) return false;
    return std::memcmp(a.data_, b.data_, a.size_ * sizeof(T)) == 0;
  }

  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

  friend bool operator<(const SmallVector& a, const SmallVector& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  void CopyFrom(const SmallVector& other) {
    if (other.size_ > N) {
      data_ = static_cast<T*>(::operator new(other.size_ * sizeof(T)));
      capacity_ = other.size_;
    } else {
      data_ = inline_;
      capacity_ = N;
    }
    std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void MoveFrom(SmallVector&& other) noexcept {
    if (other.data_ == other.inline_) {
      data_ = inline_;
      capacity_ = N;
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_;
      other.capacity_ = N;
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void Release() {
    if (data_ != inline_) ::operator delete(data_);
    data_ = inline_;
    capacity_ = N;
    size_ = 0;
  }

  void Grow(size_t n) {
    size_t cap = std::max<size_t>(n, capacity_ * 2);
    T* heap = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_) ::operator delete(data_);
    data_ = heap;
    capacity_ = cap;
  }

  T inline_[N];
  T* data_ = inline_;
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace incr

#endif  // INCR_UTIL_SMALL_VECTOR_H_
