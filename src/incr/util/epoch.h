// Epoch-based reclamation for single-writer / multi-reader snapshot
// isolation (DESIGN.md §concurrency). The writer publishes immutable
// versions tagged with monotonically increasing epochs; readers pin the
// current epoch with a RAII ReadGuard before touching any version, and the
// writer reclaims a version only once its epoch is below every pinned one.
//
// Protocol (all epoch atomics are seq_cst; the Dekker-style store/load
// pairing below is what makes the pin race-free):
//
//   writer, per publish:            reader, per pin:
//     build version V_e off-side      slot <- published      (store)
//     head <- V_e        (release)    e'   <- published      (load)
//     published <- e     (store)      retry until e' == slot
//     reclaim epochs < MinActive()
//
// Either the writer's MinActive() scan observes the reader's slot store (so
// it keeps every version the reader may touch), or the reader's re-load of
// `published` observes the writer's bump and the reader re-pins the newer
// epoch. A pinned guard therefore protects every version with epoch >= the
// pinned value — in particular whatever `head` pointed at after the pin.
//
// Slots are a fixed array of cache-line-padded atomics: pinning is a scan
// for a free slot (cheap at realistic reader counts), never an allocation.
#ifndef INCR_UTIL_EPOCH_H_
#define INCR_UTIL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "incr/util/check.h"

namespace incr::epoch {

/// Tracks the published epoch and every reader's pinned epoch.
/// Thread-safe; one writer bumps, any number of readers pin.
class Manager {
 public:
  /// More concurrent ReadGuards than this spin-wait for a slot.
  static constexpr size_t kMaxReaders = 128;
  /// MinActive() when no reader is pinned: larger than any real epoch.
  static constexpr uint64_t kNone = UINT64_MAX;

  Manager() = default;
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// The most recently published epoch (0 before the first Publish).
  uint64_t published() const {
    return published_.load(std::memory_order_seq_cst);
  }

  /// Writer only. Epochs must be published in increasing order, after the
  /// version they tag is reachable by readers.
  void Publish(uint64_t e) {
    INCR_DCHECK(e > published_.load(std::memory_order_relaxed));
    published_.store(e, std::memory_order_seq_cst);
  }

  /// The minimum epoch any reader currently pins, or kNone when no reader
  /// is pinned. The writer may reclaim every version with epoch < MinActive.
  uint64_t MinActive() const {
    uint64_t min = kNone;
    for (const Slot& s : slots_) {
      uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e < min) min = e;
    }
    return min;
  }

  /// Number of currently pinned slots (diagnostics only; racy by nature).
  size_t ActiveReaders() const {
    size_t n = 0;
    for (const Slot& s : slots_) {
      if (s.epoch.load(std::memory_order_relaxed) != kIdle) ++n;
    }
    return n;
  }

 private:
  friend class ReadGuard;

  static constexpr uint64_t kIdle = UINT64_MAX;

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  // Claims a slot and pins the current published epoch into it. Returns
  // the slot index; the pinned epoch is readable from the slot itself.
  size_t Pin() {
    for (;;) {
      for (size_t i = 0; i < kMaxReaders; ++i) {
        uint64_t expected = kIdle;
        uint64_t e = published_.load(std::memory_order_seq_cst);
        if (!slots_[i].epoch.compare_exchange_strong(
                expected, e, std::memory_order_seq_cst)) {
          continue;
        }
        // Validate: if the writer bumped between our store and this load it
        // may have missed our pin in its MinActive scan, so re-pin the
        // newer epoch until store and published agree.
        for (;;) {
          uint64_t now = published_.load(std::memory_order_seq_cst);
          if (now == e) return i;
          slots_[i].epoch.store(now, std::memory_order_seq_cst);
          e = now;
        }
      }
      std::this_thread::yield();  // every slot busy; wait for a reader
    }
  }

  void Unpin(size_t slot) {
    slots_[slot].epoch.store(kIdle, std::memory_order_seq_cst);
  }

  std::atomic<uint64_t> published_{0};
  Slot slots_[kMaxReaders];
};

/// RAII epoch pin. While alive, the writer retains every version with
/// epoch >= epoch(). Movable, not copyable; cheap enough to take per read
/// but designed to be held across a whole enumeration.
class ReadGuard {
 public:
  explicit ReadGuard(Manager* mgr) : mgr_(mgr), slot_(mgr->Pin()) {
    epoch_ = mgr_->slots_[slot_].epoch.load(std::memory_order_relaxed);
  }

  ReadGuard(ReadGuard&& o) noexcept
      : mgr_(o.mgr_), slot_(o.slot_), epoch_(o.epoch_) {
    o.mgr_ = nullptr;
  }
  ReadGuard& operator=(ReadGuard&& o) noexcept {
    if (this != &o) {
      Release();
      mgr_ = o.mgr_;
      slot_ = o.slot_;
      epoch_ = o.epoch_;
      o.mgr_ = nullptr;
    }
    return *this;
  }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

  ~ReadGuard() { Release(); }

  /// The pinned epoch. The version the holder reads may be newer (the head
  /// advanced between pin and load); it is protected either way.
  uint64_t epoch() const { return epoch_; }

 private:
  void Release() {
    if (mgr_ != nullptr) mgr_->Unpin(slot_);
    mgr_ = nullptr;
  }

  Manager* mgr_;
  size_t slot_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace incr::epoch

#endif  // INCR_UTIL_EPOCH_H_
