// Lightweight Status / StatusOr error handling (no exceptions on hot paths),
// in the style common to database engines (RocksDB/Arrow).
#ifndef INCR_UTIL_STATUS_H_
#define INCR_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "incr/util/check.h"

namespace incr {

/// Error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Result of an operation that can fail. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad schema".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or an error. `value()` must only be called when `ok()`.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    INCR_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    INCR_CHECK(ok());
    return *value_;
  }
  T& value() & {
    INCR_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    INCR_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace incr

#endif  // INCR_UTIL_STATUS_H_
