// Invariant-checking macros. INCR_CHECK is always on; INCR_DCHECK compiles
// out in release builds (NDEBUG). Failures abort with file/line context,
// which is the desired behavior for violated internal invariants in a
// database engine (fail fast rather than corrupt state).
#ifndef INCR_UTIL_CHECK_H_
#define INCR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace incr::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "INCR_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace incr::internal

#define INCR_CHECK(expr)                                     \
  do {                                                       \
    if (!(expr)) {                                           \
      ::incr::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                        \
  } while (0)

#ifdef NDEBUG
#define INCR_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define INCR_DCHECK(expr) INCR_CHECK(expr)
#endif

#endif  // INCR_UTIL_CHECK_H_
