// Wall-clock timing for benchmarks and delay measurements.
#ifndef INCR_UTIL_STOPWATCH_H_
#define INCR_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace incr {

/// Monotonic stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() * 1e-3; }
  double ElapsedMillis() const { return ElapsedNanos() * 1e-6; }
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace incr

#endif  // INCR_UTIL_STOPWATCH_H_
