// Deterministic random number generation for workload generators and tests.
// Xoshiro256** seeded via SplitMix64; plus a Zipf sampler for skewed
// workloads (the skew is what triggers heavy/light rebalancing in IVMe).
#ifndef INCR_UTIL_RNG_H_
#define INCR_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace incr {

/// Deterministic 64-bit PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1} using the
/// inverse-CDF table method (O(log n) per sample after O(n) setup).
class ZipfSampler {
 public:
  /// `n` is the domain size, `s` the skew exponent (s=0 is uniform).
  ZipfSampler(uint64_t n, double s);

  /// Draws a value in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t domain_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace incr

#endif  // INCR_UTIL_RNG_H_
