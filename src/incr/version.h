// Library version.
#ifndef INCR_VERSION_H_
#define INCR_VERSION_H_

#define INCR_VERSION_MAJOR 1
#define INCR_VERSION_MINOR 0
#define INCR_VERSION_PATCH 0
#define INCR_VERSION_STRING "1.0.0"

namespace incr {

/// Returns "major.minor.patch".
inline const char* Version() { return INCR_VERSION_STRING; }

}  // namespace incr

#endif  // INCR_VERSION_H_
