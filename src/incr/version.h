// Library version and build provenance. The INCR_GIT_COMMIT and
// INCR_SANITIZE_NAME macros are injected by CMake (see the top-level
// CMakeLists.txt); the fallbacks below keep non-CMake builds compiling.
#ifndef INCR_VERSION_H_
#define INCR_VERSION_H_

#include <string>

#include "incr/util/thread_pool.h"

#define INCR_VERSION_MAJOR 1
#define INCR_VERSION_MINOR 0
#define INCR_VERSION_PATCH 0
#define INCR_VERSION_STRING "1.0.0"

#ifndef INCR_GIT_COMMIT
#define INCR_GIT_COMMIT "unknown"
#endif
#ifndef INCR_SANITIZE_NAME
#define INCR_SANITIZE_NAME "none"
#endif

namespace incr {

/// Returns "major.minor.patch".
inline const char* Version() { return INCR_VERSION_STRING; }

/// Build provenance as one JSON object: library version, git commit,
/// compiler, sanitizer config, and the effective worker-thread count.
/// Embedded in every StatsSnapshot and BENCH_*.json header so benchmark
/// trajectories stay attributable to the build that produced them.
inline std::string BuildInfoJson() {
  std::string out = "{\"version\": \"" INCR_VERSION_STRING "\"";
  out += ", \"commit\": \"" INCR_GIT_COMMIT "\"";
#if defined(__VERSION__)
  out += ", \"compiler\": \"";
  for (const char* p = __VERSION__; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
  out += "\"";
#else
  out += ", \"compiler\": \"unknown\"";
#endif
  out += ", \"sanitizer\": \"" INCR_SANITIZE_NAME "\"";
  out += ", \"threads\": " + std::to_string(ThreadPool::DefaultThreads());
  out += "}";
  return out;
}

}  // namespace incr

#endif  // INCR_VERSION_H_
