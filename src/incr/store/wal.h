// Write-ahead delta log: the append-only substrate of the durability layer
// (DESIGN.md §durability). Every engine update is framed as one binary
// record with a CRC32C checksum and a monotonic LSN, buffered in memory and
// flushed to disk in groups (group commit), so that recovery can replay the
// exact delta stream through the normal maintenance path.
//
// File layout:
//
//   header:  u32 magic "IWAL" | u32 version | u64 base_lsn |
//            string ring-name | u32 header-crc
//   record:  u32 body_len | u32 crc32c(body) | body
//   body:    u64 lsn | u8 type | payload (body_len - 9 bytes)
//
// LSNs are assigned at append time, start at base_lsn + 1, and never
// repeat: Restart() (called after a checkpoint truncates the log) writes a
// fresh header whose base_lsn continues the old sequence, so "replay
// records with lsn > snapshot_lsn" is always well-defined.
//
// Crash behavior: a crash can lose only the buffered (unflushed) suffix —
// the classic group-commit durability window. A torn write of the last
// record is detected by length/CRC and cleanly dropped on the next Open or
// Scan; a corrupted record inside the file fails its CRC and stops the
// scan there (nothing after a corruption is trusted, since frame lengths
// can no longer be believed).
#ifndef INCR_STORE_WAL_H_
#define INCR_STORE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "incr/util/status.h"

namespace incr::store {

/// Tuning knobs for the log; the EngineOptions durability fields map 1:1.
struct WalOptions {
  /// Flush when the in-memory buffer reaches this many bytes.
  size_t buffer_bytes = 1 << 20;
  /// Group-commit window: an append flushes the whole buffer when the
  /// oldest buffered record is at least this old. 0 = flush every append
  /// (no grouping).
  uint32_t group_commit_window_us = 1000;
  /// fsync(2) on every flush. Off: flushed data reaches the OS page cache
  /// only (survives process death, not power loss) — the right setting for
  /// tests and benches that measure logging overhead, not disk latency.
  bool fsync = true;
};

enum class WalRecordType : uint8_t {
  kUpdate = 1,  // one named single-tuple delta
  kBatch = 2,   // a batch of named deltas, applied through the bulk path
  kDict = 3,    // dictionary growth: strings interned since the last record
};

/// One decoded record (payload owned; see recover.h for the delta codecs).
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kUpdate;
  std::string payload;
};

/// Result of scanning a log file: the valid record prefix plus a diagnosis
/// of how the file ends.
struct WalScan {
  std::string ring_name;
  uint64_t base_lsn = 0;
  std::vector<WalRecord> records;
  size_t valid_bytes = 0;  // file offset just past the last valid record
  bool torn_tail = false;  // trailing partial record (normal after a crash)
  bool corrupt = false;    // CRC mismatch or frame nonsense at valid_bytes
};

/// Reads and validates `path`. Returns the longest valid prefix; torn or
/// corrupted tails are reported, not errors (recovery truncates them).
/// A missing file or an unreadable header IS an error.
StatusOr<WalScan> ScanWal(const std::string& path);

/// The append side of the log. Not thread-safe: the engine facade serializes
/// updates, which is the library-wide engine driving contract.
class Wal {
 public:
  /// Opens (creating if absent) the log at `path` for appending. An
  /// existing file is scanned first: its ring name must match, the next
  /// LSN continues after the last valid record, and any torn/corrupt tail
  /// is truncated away so new records append to a clean prefix.
  static StatusOr<std::unique_ptr<Wal>> Open(const std::string& path,
                                             const std::string& ring_name,
                                             const WalOptions& opts);

  /// Flushes buffered records (without fsync) and closes the file.
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Frames and buffers one record; returns its LSN. Triggers a flush when
  /// the buffer or the group-commit window overflows (see WalOptions).
  uint64_t Append(WalRecordType type, std::string_view payload);

  /// Writes all buffered bytes to the file, fsyncing iff opts.fsync.
  Status Flush();

  /// Flush + unconditional fsync: everything appended so far is durable.
  Status Sync();

  /// Restarts the log after a checkpoint: atomically replaces the file
  /// with a fresh header whose base_lsn = last_lsn(), dropping all records
  /// (they are covered by the snapshot).
  Status Restart();

  /// LSN of the most recently appended record (base_lsn if none).
  uint64_t last_lsn() const { return next_lsn_ - 1; }

  /// Bytes in the file plus bytes still buffered.
  size_t SizeBytes() const { return file_bytes_ + buffer_.size(); }

  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd, uint64_t next_lsn, size_t file_bytes,
      std::string ring_name, const WalOptions& opts);

  Status FlushLocked(bool force_fsync);

  std::string path_;
  std::string ring_name_;
  WalOptions opts_;
  int fd_;
  uint64_t next_lsn_;
  size_t file_bytes_;      // bytes durably written (well, handed to the OS)
  std::string buffer_;     // framed records not yet written
  size_t buffered_records_ = 0;
  uint64_t oldest_buffered_ns_ = 0;  // steady-clock ns of first buffered rec
};

/// Serializes a WAL file header into `out` (used by Wal and tests).
void EncodeWalHeader(std::string* out, const std::string& ring_name,
                     uint64_t base_lsn);

}  // namespace incr::store

#endif  // INCR_STORE_WAL_H_
