// Binary serialization primitives for the durability layer (WAL records and
// checkpoint snapshots).
//
// Everything here is explicitly little-endian and fixed-width, so files move
// between builds and machines; readers never trust input lengths (a reader
// that runs off the end of its buffer goes !ok() and stays there, it never
// reads out of bounds). Integrity is CRC32C (Castagnoli) over whole frames —
// the polynomial with the best published error-detection record for storage,
// computed in software (slice-by-8) so no ISA extension is assumed.
//
// PayloadSerde<R> maps every ring in the library to a byte encoding and a
// stable format name ("int", "covar<4>", "product<int,real>", ...). The
// name is embedded in WAL and snapshot headers so a file written under one
// ring can never be silently decoded under another.
#ifndef INCR_STORE_SERDE_H_
#define INCR_STORE_SERDE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "incr/data/relation.h"
#include "incr/data/sharded_relation.h"
#include "incr/data/tuple.h"
#include "incr/data/value.h"
#include "incr/ring/bool_semiring.h"
#include "incr/ring/covar_ring.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/minplus_semiring.h"
#include "incr/ring/product_ring.h"
#include "incr/ring/provenance.h"
#include "incr/ring/ring.h"
#include "incr/util/status.h"

namespace incr::store {

/// CRC32C (Castagnoli, 0x1EDC6F41 reflected) of `n` bytes, continuing from
/// `seed` (pass a previous result to extend a running checksum over
/// multiple spans; 0 starts fresh).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutLe(v, 2); }
  void PutU32(uint32_t v) { PutLe(v, 4); }
  void PutU64(uint64_t v) { PutLe(v, 8); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v), 8); }
  void PutDouble(double v) { PutLe(std::bit_cast<uint64_t>(v), 8); }

  void PutBytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  /// Length-prefixed string (u16 length; names, not bulk data).
  void PutString(std::string_view s) {
    PutU16(static_cast<uint16_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  /// u16 arity followed by the values.
  void PutTuple(const Tuple& t) {
    PutU16(static_cast<uint16_t>(t.size()));
    for (Value v : t) PutI64(v);
  }

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }
  std::string Take() { return std::move(buf_); }

 private:
  void PutLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>(v & 0xff));
      v >>= 8;
    }
  }

  std::string buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer. All getters
/// return 0 / empty once the reader has gone !ok(); callers check ok()
/// after a parse, not after every field.
class ByteReader {
 public:
  ByteReader(const void* data, size_t n)
      : p_(static_cast<const uint8_t*>(data)), end_(p_ + n) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t GetU8() { return static_cast<uint8_t>(GetLe(1)); }
  uint16_t GetU16() { return static_cast<uint16_t>(GetLe(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetLe(4)); }
  uint64_t GetU64() { return GetLe(8); }
  int64_t GetI64() { return static_cast<int64_t>(GetLe(8)); }
  double GetDouble() { return std::bit_cast<double>(GetLe(8)); }

  /// Borrowed view of the next n bytes; empty and !ok() on underrun.
  std::string_view GetBytes(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string_view out(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return out;
  }

  std::string GetString() {
    size_t n = GetU16();
    return std::string(GetBytes(n));
  }

  Tuple GetTuple() {
    size_t n = GetU16();
    Tuple t;
    if (!ok_ || remaining() < n * 8) {
      ok_ = false;
      return t;
    }
    t.reserve(n);
    for (size_t i = 0; i < n; ++i) t.push_back(GetI64());
    return t;
  }

 private:
  uint64_t GetLe(size_t bytes) {
    if (!ok_ || remaining() < bytes) {
      ok_ = false;
      return 0;
    }
    uint64_t v = 0;
    for (size_t i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    }
    p_ += bytes;
    return v;
  }

  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

// ----------------------------------------------------------------------
// Ring payload encodings. One specialization per ring; composite rings
// compose. Read returns false (and leaves *out unspecified) on underrun.

template <typename R>
struct PayloadSerde;

template <>
struct PayloadSerde<IntRing> {
  static std::string Name() { return "int"; }
  static void Write(ByteWriter& w, const int64_t& v) { w.PutI64(v); }
  static bool Read(ByteReader& r, int64_t* out) {
    *out = r.GetI64();
    return r.ok();
  }
};

template <>
struct PayloadSerde<RealRing> {
  static std::string Name() { return "real"; }
  static void Write(ByteWriter& w, const double& v) { w.PutDouble(v); }
  static bool Read(ByteReader& r, double* out) {
    *out = r.GetDouble();
    return r.ok();
  }
};

template <>
struct PayloadSerde<BoolSemiring> {
  static std::string Name() { return "bool"; }
  static void Write(ByteWriter& w, const bool& v) { w.PutU8(v ? 1 : 0); }
  static bool Read(ByteReader& r, bool* out) {
    *out = r.GetU8() != 0;
    return r.ok();
  }
};

template <>
struct PayloadSerde<MinPlusSemiring> {
  static std::string Name() { return "minplus"; }
  static void Write(ByteWriter& w, const int64_t& v) { w.PutI64(v); }
  static bool Read(ByteReader& r, int64_t* out) {
    *out = r.GetI64();
    return r.ok();
  }
};

template <RingType R1, RingType R2>
struct PayloadSerde<ProductRing<R1, R2>> {
  using Value = typename ProductRing<R1, R2>::Value;
  static std::string Name() {
    return "product<" + PayloadSerde<R1>::Name() + "," +
           PayloadSerde<R2>::Name() + ">";
  }
  static void Write(ByteWriter& w, const Value& v) {
    PayloadSerde<R1>::Write(w, v.first);
    PayloadSerde<R2>::Write(w, v.second);
  }
  static bool Read(ByteReader& r, Value* out) {
    return PayloadSerde<R1>::Read(r, &out->first) &&
           PayloadSerde<R2>::Read(r, &out->second);
  }
};

template <size_t K>
struct PayloadSerde<CovarRing<K>> {
  using Value = CovarValue<K>;
  static std::string Name() { return "covar<" + std::to_string(K) + ">"; }
  static void Write(ByteWriter& w, const Value& v) {
    w.PutI64(v.count);
    for (double d : v.sum) w.PutDouble(d);
    for (double d : v.prod) w.PutDouble(d);
  }
  static bool Read(ByteReader& r, Value* out) {
    out->count = r.GetI64();
    for (double& d : out->sum) d = r.GetDouble();
    for (double& d : out->prod) d = r.GetDouble();
    return r.ok();
  }
};

template <>
struct PayloadSerde<ProvenanceRing> {
  static std::string Name() { return "provenance"; }
  static void Write(ByteWriter& w, const Polynomial& v) {
    w.PutU32(static_cast<uint32_t>(v.terms().size()));
    for (const auto& [mono, coeff] : v.terms()) {
      w.PutU32(static_cast<uint32_t>(mono.size()));
      for (const auto& [var, pow] : mono) {
        w.PutU32(var);
        w.PutU32(pow);
      }
      w.PutI64(coeff);
    }
  }
  static bool Read(ByteReader& r, Polynomial* out) {
    std::map<Monomial, int64_t> terms;
    uint32_t n = r.GetU32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      Monomial mono;
      uint32_t vars = r.GetU32();
      for (uint32_t j = 0; j < vars && r.ok(); ++j) {
        uint32_t var = r.GetU32();
        uint32_t pow = r.GetU32();
        mono.emplace(var, pow);
      }
      int64_t coeff = r.GetI64();
      if (coeff != 0) terms.emplace(std::move(mono), coeff);
    }
    if (!r.ok()) return false;
    *out = Polynomial::FromTerms(std::move(terms));
    return true;
  }
};

/// Stable on-disk format name for ring R (embedded in file headers).
template <RingType R>
std::string RingSerdeName() {
  return PayloadSerde<R>::Name();
}

// ----------------------------------------------------------------------
// Relation serde: a u64 count followed by (tuple, payload) entries in
// canonical (lexicographic key) order. Canonical order makes the dump a
// pure function of the relation's *contents*: the in-memory iteration
// order of a relation is history-dependent (DenseMap erase swap-removes in
// the dense array while GroupedIndex erase swap-removes inside each group,
// so after deletions the two orders drift apart), and a snapshot load
// rebuilds both in dump order — necessarily losing one of them. Sorting
// here means two semantically equal relations always serialize to the same
// bytes, which is what makes "recovered state is bit-identical to a shadow
// replay" (recovery_test, check/differ) a true invariant rather than one
// that only holds for delete-free histories.
//
// Loading applies each entry to a cleared relation, so every Apply is a
// fresh insert and payloads are restored byte-for-byte — no ring additions
// happen on the load path, which is what makes recovered float-ring state
// bit-identical to the dumped state.

namespace internal {

inline bool TupleLess(const Tuple& a, const Tuple& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

/// Entries of `rel` (any container of {key: Tuple, value} entries with
/// begin/end) as pointers sorted by key. Keys within one relation are
/// unique, so the order is total.
template <typename Rel>
std::vector<const typename Rel::Entry*> SortedEntries(const Rel& rel) {
  std::vector<const typename Rel::Entry*> order;
  order.reserve(rel.size());
  for (const auto& e : rel) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [](const auto* a, const auto* b) { return TupleLess(a->key, b->key); });
  return order;
}

}  // namespace internal

template <RingType R>
void WriteRelation(ByteWriter& w, const Relation<R>& rel) {
  w.PutU64(rel.size());
  for (const auto* e : internal::SortedEntries(rel)) {
    w.PutTuple(e->key);
    PayloadSerde<R>::Write(w, e->value);
  }
}

template <RingType R>
Status ReadRelationInto(ByteReader& r, Relation<R>* rel) {
  uint64_t n = r.GetU64();
  if (!r.ok()) return Status::InvalidArgument("truncated relation header");
  rel->Clear();
  rel->Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t = r.GetTuple();
    typename R::Value v{};
    if (!PayloadSerde<R>::Read(r, &v)) {
      return Status::InvalidArgument("truncated relation entry");
    }
    if (t.size() != rel->schema().size()) {
      return Status::InvalidArgument("relation tuple arity mismatch");
    }
    rel->Apply(t, v);
  }
  return Status::Ok();
}

template <RingType R>
void WriteShardedRelation(ByteWriter& w, const ShardedRelation<R>& rel) {
  // One globally sorted stream across shards: shard membership is a pure
  // function of the key prefix, so loading re-routes every entry to the
  // shard it came from and the dump stays canonical for any shard count.
  w.PutU64(rel.size());
  std::vector<const typename Relation<R>::Entry*> order;
  order.reserve(rel.size());
  for (size_t s = 0; s < rel.num_shards(); ++s) {
    for (const auto& e : rel.shard(s)) order.push_back(&e);
  }
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    return internal::TupleLess(a->key, b->key);
  });
  for (const auto* e : order) {
    w.PutTuple(e->key);
    PayloadSerde<R>::Write(w, e->value);
  }
}

template <RingType R>
Status ReadShardedRelationInto(ByteReader& r, ShardedRelation<R>* rel) {
  uint64_t n = r.GetU64();
  if (!r.ok()) return Status::InvalidArgument("truncated relation header");
  rel->Clear();
  rel->Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t = r.GetTuple();
    typename R::Value v{};
    if (!PayloadSerde<R>::Read(r, &v)) {
      return Status::InvalidArgument("truncated relation entry");
    }
    if (t.size() != rel->schema().size()) {
      return Status::InvalidArgument("relation tuple arity mismatch");
    }
    rel->Apply(t, v);
  }
  return Status::Ok();
}

// ----------------------------------------------------------------------
// Dictionary serde: codes are dense from 0, so the string list in code
// order round-trips exactly (re-interning in order reissues the codes).

inline void WriteDictionary(ByteWriter& w, const Dictionary& dict) {
  w.PutU32(static_cast<uint32_t>(dict.size()));
  for (size_t code = 0; code < dict.size(); ++code) {
    const std::string* s = dict.Lookup(static_cast<Value>(code));
    w.PutString(s == nullptr ? std::string_view() : *s);
  }
}

inline Status ReadDictionary(ByteReader& r, Dictionary* dict) {
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n; ++i) {
    std::string s = r.GetString();
    if (!r.ok()) return Status::InvalidArgument("truncated dictionary");
    // Restoring into an empty (or identically-prefixed) dictionary must
    // reissue the original dense codes, or every interned Value in the
    // restored relations would decode to the wrong string.
    if (static_cast<size_t>(dict->Intern(s)) != i) {
      return Status::InvalidArgument("dictionary code mismatch on load");
    }
  }
  return r.ok() ? Status::Ok()
                : Status::InvalidArgument("truncated dictionary");
}

}  // namespace incr::store

#endif  // INCR_STORE_SERDE_H_
