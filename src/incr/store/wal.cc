#include "incr/store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "incr/obs/metrics.h"
#include "incr/store/serde.h"

namespace incr::store {

namespace {

constexpr uint32_t kWalMagic = 0x4C415749;  // "IWAL" little-endian
constexpr uint32_t kWalVersion = 1;
// A frame's body is at least lsn (8) + type (1); anything bigger than 1 GiB
// is treated as corruption rather than attempted as an allocation.
constexpr size_t kMinBody = 9;
constexpr size_t kMaxBody = size_t{1} << 30;

// WAL metric handles (registered once; recording gated on obs::Enabled).
struct WalMetricHandles {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Counter* flushes;
  obs::Counter* fsyncs;
  obs::Histogram* fsync_ns;
  obs::Histogram* flush_records;  // group-commit batch sizes
  obs::Gauge* lsn;
};
const WalMetricHandles& WalMetrics() {
  static const WalMetricHandles h = [] {
    auto& r = obs::MetricsRegistry::Global();
    return WalMetricHandles{
        r.GetCounter("wal.appends"),    r.GetCounter("wal.bytes"),
        r.GetCounter("wal.flushes"),    r.GetCounter("wal.fsyncs"),
        r.GetHistogram("wal.fsync_ns"), r.GetHistogram("wal.flush_records"),
        r.GetGauge("wal.lsn"),
    };
  }();
  return h;
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

// Reads the whole file into `out`; distinguishes not-found from IO errors.
Status ReadFileBytes(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return errno == ENOENT ? Status::NotFound("no such file '" + path + "'")
                           : IoError("cannot open", path);
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return IoError("cannot read", path);
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError("cannot write", path);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

void EncodeWalHeader(std::string* out, const std::string& ring_name,
                     uint64_t base_lsn) {
  ByteWriter w;
  w.PutU32(kWalMagic);
  w.PutU32(kWalVersion);
  w.PutU64(base_lsn);
  w.PutString(ring_name);
  uint32_t crc = Crc32c(w.data().data(), w.size());
  w.PutU32(crc);
  *out += w.data();
}

namespace {

// Parses the header at the front of `bytes`; on success fills ring/base_lsn
// and returns the header size.
StatusOr<size_t> DecodeWalHeader(std::string_view bytes, std::string* ring,
                                 uint64_t* base_lsn) {
  ByteReader r(bytes);
  uint32_t magic = r.GetU32();
  uint32_t version = r.GetU32();
  *base_lsn = r.GetU64();
  *ring = r.GetString();
  if (!r.ok() || magic != kWalMagic) {
    return Status::InvalidArgument("not a WAL file (bad magic/header)");
  }
  if (version != kWalVersion) {
    return Status::InvalidArgument("unsupported WAL version " +
                                   std::to_string(version));
  }
  size_t header_len = bytes.size() - r.remaining();
  uint32_t stored_crc = r.GetU32();
  if (!r.ok() ||
      stored_crc != Crc32c(bytes.data(), header_len)) {
    return Status::InvalidArgument("WAL header checksum mismatch");
  }
  return header_len + 4;
}

}  // namespace

StatusOr<WalScan> ScanWal(const std::string& path) {
  std::string bytes;
  Status st = ReadFileBytes(path, &bytes);
  if (!st.ok()) return st;
  WalScan scan;
  auto header = DecodeWalHeader(bytes, &scan.ring_name, &scan.base_lsn);
  if (!header.ok()) return header.status();
  size_t off = *header;
  uint64_t expect_lsn = scan.base_lsn + 1;
  scan.valid_bytes = off;
  while (off < bytes.size()) {
    if (bytes.size() - off < 8) {
      scan.torn_tail = true;
      break;
    }
    ByteReader frame(bytes.data() + off, 8);
    size_t body_len = frame.GetU32();
    uint32_t crc = frame.GetU32();
    if (body_len < kMinBody || body_len > kMaxBody) {
      scan.corrupt = true;
      break;
    }
    if (bytes.size() - off - 8 < body_len) {
      scan.torn_tail = true;
      break;
    }
    const char* body = bytes.data() + off + 8;
    if (Crc32c(body, body_len) != crc) {
      scan.corrupt = true;
      break;
    }
    ByteReader br(body, body_len);
    WalRecord rec;
    rec.lsn = br.GetU64();
    rec.type = static_cast<WalRecordType>(br.GetU8());
    if (rec.lsn != expect_lsn ||
        (rec.type != WalRecordType::kUpdate &&
         rec.type != WalRecordType::kBatch &&
         rec.type != WalRecordType::kDict)) {
      // A record that checksums but carries a nonsense LSN or type means
      // the framing itself went wrong — treat as corruption.
      scan.corrupt = true;
      break;
    }
    rec.payload.assign(body + kMinBody, body_len - kMinBody);
    scan.records.push_back(std::move(rec));
    ++expect_lsn;
    off += 8 + body_len;
    scan.valid_bytes = off;
  }
  return scan;
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                         const std::string& ring_name,
                                         const WalOptions& opts) {
  uint64_t next_lsn = 1;
  size_t file_bytes = 0;
  bool fresh = false;
  {
    auto scan = ScanWal(path);
    if (scan.ok()) {
      if (scan->ring_name != ring_name) {
        return Status::FailedPrecondition(
            "WAL '" + path + "' was written under ring '" + scan->ring_name +
            "', engine uses '" + ring_name + "'");
      }
      uint64_t last =
          scan->records.empty() ? scan->base_lsn : scan->records.back().lsn;
      next_lsn = last + 1;
      file_bytes = scan->valid_bytes;
    } else if (scan.status().code() == StatusCode::kNotFound) {
      fresh = true;
    } else {
      return scan.status();
    }
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot open", path);
  if (fresh) {
    std::string header;
    EncodeWalHeader(&header, ring_name, 0);
    Status st = WriteAll(fd, header.data(), header.size(), path);
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
    file_bytes = header.size();
  } else {
    // Drop any torn/corrupt tail so new records extend the valid prefix.
    if (::ftruncate(fd, static_cast<off_t>(file_bytes)) != 0) {
      ::close(fd);
      return IoError("cannot truncate", path);
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return IoError("cannot seek", path);
  }
  return std::unique_ptr<Wal>(
      new Wal(path, fd, next_lsn, file_bytes, ring_name, opts));
}

Wal::Wal(std::string path, int fd, uint64_t next_lsn, size_t file_bytes,
         std::string ring_name, const WalOptions& opts)
    : path_(std::move(path)),
      ring_name_(std::move(ring_name)),
      opts_(opts),
      fd_(fd),
      next_lsn_(next_lsn),
      file_bytes_(file_bytes) {}

Wal::~Wal() {
  // Best-effort flush (no fsync): buffered records survive a clean process
  // exit; only a hard kill inside the group-commit window loses them.
  if (!buffer_.empty()) FlushLocked(false);
  if (fd_ >= 0) ::close(fd_);
}

uint64_t Wal::Append(WalRecordType type, std::string_view payload) {
  uint64_t lsn = next_lsn_++;
  ByteWriter body;
  body.PutU64(lsn);
  body.PutU8(static_cast<uint8_t>(type));
  body.PutBytes(payload.data(), payload.size());
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutU32(Crc32c(body.data().data(), body.size()));
  buffer_ += frame.data();
  buffer_ += body.data();
  if (buffered_records_++ == 0) oldest_buffered_ns_ = SteadyNowNs();
  if (obs::Enabled()) {
    const auto& m = WalMetrics();
    m.appends->Inc();
    m.lsn->Set(static_cast<int64_t>(lsn));
  }
  const uint64_t window_ns = uint64_t{opts_.group_commit_window_us} * 1000;
  if (buffer_.size() >= opts_.buffer_bytes || window_ns == 0 ||
      SteadyNowNs() - oldest_buffered_ns_ >= window_ns) {
    // Group commit: this flush covers every record buffered since the last
    // one, amortizing the write (and fsync) across the group.
    Flush();
  }
  return lsn;
}

Status Wal::Flush() { return FlushLocked(opts_.fsync); }

Status Wal::Sync() { return FlushLocked(true); }

Status Wal::FlushLocked(bool do_fsync) {
  if (!buffer_.empty()) {
    Status st = WriteAll(fd_, buffer_.data(), buffer_.size(), path_);
    if (!st.ok()) return st;
    file_bytes_ += buffer_.size();
    if (obs::Enabled()) {
      const auto& m = WalMetrics();
      m.bytes->Add(buffer_.size());
      m.flushes->Inc();
      m.flush_records->Record(buffered_records_);
    }
    buffer_.clear();
    buffered_records_ = 0;
  }
  if (do_fsync) {
    const bool obs_on = obs::Enabled();
    const uint64_t t0 = obs_on ? SteadyNowNs() : 0;
    if (::fsync(fd_) != 0) return IoError("cannot fsync", path_);
    if (obs_on) {
      const auto& m = WalMetrics();
      m.fsyncs->Inc();
      m.fsync_ns->Record(SteadyNowNs() - t0);
    }
  }
  return Status::Ok();
}

Status Wal::Restart() {
  // Drop buffered records too: the checkpoint that triggers a restart has
  // already captured their effects (it snapshots the in-memory state).
  buffer_.clear();
  buffered_records_ = 0;
  const std::string tmp = path_ + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot create", tmp);
  std::string header;
  EncodeWalHeader(&header, ring_name_, last_lsn());
  Status st = WriteAll(fd, header.data(), header.size(), tmp);
  if (st.ok() && ::fsync(fd) != 0) st = IoError("cannot fsync", tmp);
  ::close(fd);
  if (!st.ok()) return st;
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    return IoError("cannot rename over", path_);
  }
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) return IoError("cannot reopen", path_);
  file_bytes_ = header.size();
  return Status::Ok();
}

}  // namespace incr::store
