#include "incr/store/serde.h"

#include <array>

namespace incr::store {

namespace {

// Slice-by-8 CRC32C tables, generated once at first use. Table 0 is the
// plain byte-at-a-time table for the reflected Castagnoli polynomial; table
// k extends a byte's remainder by k further zero bytes, which lets the hot
// loop fold 8 input bytes per iteration with 8 independent lookups.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace incr::store
