#include "incr/store/recover.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "incr/obs/metrics.h"

namespace incr::store {

Status EnsureDir(const std::string& dir) {
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::Ok();
    return Status::FailedPrecondition("'" + dir +
                                      "' exists and is not a directory");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create directory '" + dir +
                            "': " + std::strerror(errno));
  }
  return Status::Ok();
}

void EncodeDictDeltaPayload(ByteWriter& w, const Dictionary& dict,
                            size_t first_code) {
  w.PutU32(static_cast<uint32_t>(first_code));
  w.PutU32(static_cast<uint32_t>(dict.size() - first_code));
  for (size_t code = first_code; code < dict.size(); ++code) {
    const std::string* s = dict.Lookup(static_cast<Value>(code));
    w.PutString(s == nullptr ? std::string_view() : *s);
  }
}

Status DecodeDictDeltaPayload(ByteReader& r, Dictionary* dict,
                              uint64_t* restored) {
  const uint32_t first = r.GetU32();
  const uint32_t count = r.GetU32();
  if (!r.ok() || first > dict->size()) {
    return Status::InvalidArgument("dict record does not extend the "
                                   "dictionary densely");
  }
  for (uint32_t i = 0; i < count; ++i) {
    const size_t code = first + i;
    std::string s = r.GetString();
    if (!r.ok()) return Status::InvalidArgument("truncated dict record");
    if (code < dict->size()) {
      // Already present (e.g. also covered by the snapshot): verify, don't
      // re-intern — a mismatch means the log belongs to another dictionary.
      const std::string* have = dict->Lookup(static_cast<Value>(code));
      if (have == nullptr || *have != s) {
        return Status::InvalidArgument("dict record conflicts with "
                                       "restored dictionary");
      }
      continue;
    }
    if (static_cast<size_t>(dict->Intern(s)) != code) {
      return Status::InvalidArgument("dict record code mismatch");
    }
    ++*restored;
  }
  return r.remaining() == 0
             ? Status::Ok()
             : Status::InvalidArgument("trailing bytes in dict record");
}

namespace detail {

uint64_t ReplayNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordReplayMetrics(uint64_t records, uint64_t deltas, uint64_t ns) {
  if (!obs::Enabled()) return;
  auto& r = obs::MetricsRegistry::Global();
  r.GetCounter("recover.replayed_records")->Add(records);
  r.GetCounter("recover.replayed_deltas")->Add(deltas);
  r.GetCounter("recover.replay_ns")->Add(ns);
  // Replay rate in records/second — the headline recovery-speed number.
  if (ns > 0) {
    r.GetGauge("recover.replay_records_per_s")
        ->Set(static_cast<int64_t>(records * 1000000000 / ns));
  }
}

}  // namespace detail

}  // namespace incr::store
