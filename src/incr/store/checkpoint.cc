#include "incr/store/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "incr/store/serde.h"

namespace incr::store {

namespace {

constexpr uint32_t kSnapshotMagic = 0x504B4349;  // "ICKP" little-endian
constexpr uint32_t kSnapshotVersion = 1;

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return errno == ENOENT ? Status::NotFound("no such file '" + path + "'")
                           : IoError("cannot open", path);
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return IoError("cannot read", path);
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError("cannot write", path);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

Status WriteSnapshotFile(const std::string& path, const SnapshotData& snap) {
  ByteWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);
  w.PutString(snap.ring_name);
  w.PutU64(snap.lsn);
  w.PutU32(static_cast<uint32_t>(snap.dict_blob.size()));
  w.PutBytes(snap.dict_blob.data(), snap.dict_blob.size());
  w.PutU64(snap.state.size());
  w.PutBytes(snap.state.data(), snap.state.size());
  w.PutU32(Crc32c(w.data().data(), w.size()));

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot create", tmp);
  Status st = WriteAll(fd, w.data().data(), w.size(), tmp);
  if (st.ok() && ::fsync(fd) != 0) st = IoError("cannot fsync", tmp);
  ::close(fd);
  if (!st.ok()) return st;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return IoError("cannot rename over", path);
  }
  return Status::Ok();
}

StatusOr<SnapshotData> ReadSnapshotFile(const std::string& path) {
  std::string bytes;
  Status st = ReadFileBytes(path, &bytes);
  if (!st.ok()) return st;
  if (bytes.size() < 4) {
    return Status::InvalidArgument("snapshot '" + path + "' is truncated");
  }
  const size_t body_len = bytes.size() - 4;
  ByteReader tail(bytes.data() + body_len, 4);
  if (tail.GetU32() != Crc32c(bytes.data(), body_len)) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' failed its checksum");
  }
  ByteReader r(bytes.data(), body_len);
  uint32_t magic = r.GetU32();
  uint32_t version = r.GetU32();
  SnapshotData snap;
  snap.ring_name = r.GetString();
  snap.lsn = r.GetU64();
  uint32_t dict_len = r.GetU32();
  snap.dict_blob = std::string(r.GetBytes(dict_len));
  uint64_t state_len = r.GetU64();
  snap.state = std::string(r.GetBytes(state_len));
  if (!r.ok() || magic != kSnapshotMagic || r.remaining() != 0) {
    return Status::InvalidArgument("snapshot '" + path + "' is malformed");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  return snap;
}

}  // namespace incr::store
