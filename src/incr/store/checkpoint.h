// Checkpoint snapshots: a point-in-time serialization of an engine's full
// state (dictionary, base relations, per-node view payloads) paired with the
// WAL LSN it covers. A snapshot plus the WAL records with larger LSNs is a
// complete recipe for reconstructing the engine bit-identically; after a
// successful snapshot the log is truncated (Wal::Restart), which is the
// log-compaction step of the durability protocol (DESIGN.md §durability).
//
// File layout ("ICKP"):
//
//   u32 magic | u32 version | string ring-name | u64 lsn |
//   u32 dict_len | dict bytes | u64 state_len | state bytes | u32 crc
//
// with the trailing CRC32C covering everything before it. Snapshots are
// written to a temp file, fsynced, then renamed over the target, so a crash
// mid-checkpoint leaves the previous snapshot (and the un-truncated WAL)
// intact — there is never a moment without a recoverable state on disk.
#ifndef INCR_STORE_CHECKPOINT_H_
#define INCR_STORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "incr/util/status.h"

namespace incr::store {

/// A decoded snapshot. `state` is the engine-defined blob produced by
/// IvmEngine::DumpState; `dict_blob` is the serialized string dictionary
/// (empty when the engine has no dictionary attached).
struct SnapshotData {
  std::string ring_name;
  uint64_t lsn = 0;
  std::string dict_blob;
  std::string state;
};

/// Atomically writes `snap` to `path` (temp file + fsync + rename).
Status WriteSnapshotFile(const std::string& path, const SnapshotData& snap);

/// Reads and validates the snapshot at `path`. NotFound when absent;
/// InvalidArgument when the file fails magic/version/CRC validation (a
/// corrupted snapshot is never partially applied).
StatusOr<SnapshotData> ReadSnapshotFile(const std::string& path);

}  // namespace incr::store

#endif  // INCR_STORE_CHECKPOINT_H_
