// Recovery: WAL payload codecs and log replay.
//
// WAL record payloads are the *inputs* of the maintenance API, not its
// outputs: a kUpdate record is one named single-tuple delta, a kBatch record
// is the delta sequence of one ApplyBatch call. Replay pushes these through
// the same Update/ApplyBatch path a live engine uses, so the recovered state
// is produced by the exact ring-operation sequence of the original run —
// which is what makes recovery bit-identical even for non-associative float
// rings (replaying outputs would only be value-identical).
//
// Payload encodings:
//
//   kUpdate: string relation | tuple | ring payload
//   kBatch:  u32 count | count x (string relation | tuple | ring payload)
//   kDict:   u32 first_code | u32 count | count x string
//
// kDict records persist dictionary growth between checkpoints: strings
// interned by the caller after the last snapshot would otherwise exist
// nowhere on disk, and any replayed tuple referencing them would decode to
// its raw code. DurableEngine appends one before any delta record whose
// encoding session saw the attached dictionary grow; since dictionary codes
// are dense and issued in intern order, replaying the string list re-issues
// the exact original codes.
#ifndef INCR_STORE_RECOVER_H_
#define INCR_STORE_RECOVER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "incr/data/delta.h"
#include "incr/store/serde.h"
#include "incr/store/wal.h"
#include "incr/util/status.h"

namespace incr::store {

/// Durability directory layout: one log plus (at most) one snapshot.
inline std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
inline std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.ickp";
}

/// Creates `dir` if it does not exist (one level; parents must exist).
Status EnsureDir(const std::string& dir);

/// What recovery found and did; exposed by DurableEngine::recovery_info()
/// and printed by the REPL after `durable <dir>`.
struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;     // LSN the snapshot covers (0 = none)
  uint64_t replayed_records = 0; // WAL records re-applied
  uint64_t replayed_deltas = 0;  // individual deltas inside those records
  uint64_t last_lsn = 0;         // highest LSN seen anywhere
  uint64_t dict_entries_restored = 0;  // strings re-interned from kDict recs
  bool wal_torn_tail = false;    // log ended in a torn record (dropped)
  bool wal_corrupt = false;      // scan stopped at a corrupted record
  uint64_t replay_ns = 0;        // wall time spent replaying
};

// ----------------------------------------------------------------------
// Payload codecs. Decoders return false on any malformation; since record
// framing is already CRC-protected, a decode failure means a version or
// ring mismatch, and replay surfaces it as an error rather than skipping.

template <RingType R>
void EncodeUpdatePayload(ByteWriter& w, const std::string& rel,
                         const Tuple& t, const typename R::Value& d) {
  w.PutString(rel);
  w.PutTuple(t);
  PayloadSerde<R>::Write(w, d);
}

template <RingType R>
bool DecodeUpdatePayload(ByteReader& r, Delta<R>* out) {
  out->relation = r.GetString();
  out->tuple = r.GetTuple();
  return PayloadSerde<R>::Read(r, &out->delta) && r.ok();
}

template <RingType R>
void EncodeBatchPayload(ByteWriter& w, std::span<const Delta<R>> batch) {
  w.PutU32(static_cast<uint32_t>(batch.size()));
  for (const Delta<R>& e : batch) {
    EncodeUpdatePayload<R>(w, e.relation, e.tuple, e.delta);
  }
}

template <RingType R>
bool DecodeBatchPayload(ByteReader& r, std::vector<Delta<R>>* out) {
  uint32_t n = r.GetU32();
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Delta<R> d;
    if (!DecodeUpdatePayload<R>(r, &d)) return false;
    out->push_back(std::move(d));
  }
  return r.ok();
}

/// Encodes the dictionary suffix [first_code, dict.size()) — the strings
/// interned since the caller last logged (or snapshotted) the dictionary.
void EncodeDictDeltaPayload(ByteWriter& w, const Dictionary& dict,
                            size_t first_code);

/// Re-interns a kDict payload into `dict`. Codes must line up: entries the
/// dictionary already holds are verified, the rest must extend it densely.
/// Reports how many strings were newly interned via `restored`.
Status DecodeDictDeltaPayload(ByteReader& r, Dictionary* dict,
                              uint64_t* restored);

// ----------------------------------------------------------------------
// Replay

namespace detail {
/// Records replay throughput metrics ("recover.*"); no-op when obs is off.
void RecordReplayMetrics(uint64_t records, uint64_t deltas, uint64_t ns);
uint64_t ReplayNowNs();
}  // namespace detail

/// Re-applies every scanned record with lsn > `after_lsn` to `engine`
/// (anything with a Update(rel, tuple, delta) / ApplyBatch(span<Delta>)
/// surface — IvmEngine<R> in practice), accumulating counts into `info`.
/// kDict records are re-interned into `dict` (skipped when null — the
/// engine-level state never depends on them).
template <RingType R, typename Engine>
Status ReplayWal(const WalScan& scan, uint64_t after_lsn, Engine* engine,
                 RecoveryInfo* info, Dictionary* dict = nullptr) {
  const uint64_t t0 = detail::ReplayNowNs();
  std::vector<Delta<R>> batch;
  for (const WalRecord& rec : scan.records) {
    // Records at or below the snapshot LSN are already covered by the
    // snapshot (possible when a crash hit between snapshot rename and log
    // truncation — the snapshot wins, the old records are skipped).
    if (rec.lsn <= after_lsn) continue;
    ByteReader r(rec.payload);
    if (rec.type == WalRecordType::kDict) {
      if (dict != nullptr) {
        Status st = DecodeDictDeltaPayload(r, dict,
                                           &info->dict_entries_restored);
        if (!st.ok()) {
          return Status::InvalidArgument(
              "WAL dict record " + std::to_string(rec.lsn) + ": " +
              std::string(st.message()));
        }
      }
      info->last_lsn = rec.lsn;
      continue;  // not a delta: replayed_records counts maintenance work
    }
    if (rec.type == WalRecordType::kUpdate) {
      Delta<R> d;
      if (!DecodeUpdatePayload<R>(r, &d) || r.remaining() != 0) {
        return Status::InvalidArgument(
            "WAL record " + std::to_string(rec.lsn) +
            " does not decode under ring '" + RingSerdeName<R>() + "'");
      }
      engine->Update(d.relation, d.tuple, d.delta);
      ++info->replayed_deltas;
    } else {
      if (!DecodeBatchPayload<R>(r, &batch) || r.remaining() != 0) {
        return Status::InvalidArgument(
            "WAL batch record " + std::to_string(rec.lsn) +
            " does not decode under ring '" + RingSerdeName<R>() + "'");
      }
      engine->ApplyBatch(std::span<const Delta<R>>(batch));
      info->replayed_deltas += batch.size();
    }
    ++info->replayed_records;
    info->last_lsn = rec.lsn;
  }
  info->replay_ns = detail::ReplayNowNs() - t0;
  detail::RecordReplayMetrics(info->replayed_records, info->replayed_deltas,
                              info->replay_ns);
  return Status::Ok();
}

}  // namespace incr::store

#endif  // INCR_STORE_RECOVER_H_
