// Umbrella header: the stable public surface of the incr library in one
// include. Applications (the examples, the REPL, downstream users) include
// only this; the per-subsystem headers underneath remain usable directly
// but are an implementation layout, not an API commitment.
//
// What the surface covers:
//   - queries: parsing, structural classification, variable orders
//   - data: ring-valued relations, deltas, dictionary, text IO
//   - rings: Z, reals, Boolean, min-plus, products, covariance, provenance
//   - engines: the IvmEngine facade, the four Fig. 4 strategies, the
//     cascade / CQAP / insert-only specializations, EngineOptions
//   - durability: DurableEngine (WAL + checkpoint/recovery)
//   - concurrency: epoch-based reclamation (snapshot-isolated reads)
//   - observability: metrics registry and Chrome tracing
#ifndef INCR_INCR_H_
#define INCR_INCR_H_

// Queries and planning.
#include "incr/query/parser.h"      // IWYU pragma: export
#include "incr/query/properties.h"  // IWYU pragma: export
#include "incr/query/query.h"       // IWYU pragma: export
#include "incr/query/variable_order.h"  // IWYU pragma: export

// Data model.
#include "incr/data/database.h"  // IWYU pragma: export
#include "incr/data/delta.h"     // IWYU pragma: export
#include "incr/data/io.h"        // IWYU pragma: export
#include "incr/data/relation.h"  // IWYU pragma: export
#include "incr/data/value.h"     // IWYU pragma: export

// Rings.
#include "incr/ring/bool_semiring.h"     // IWYU pragma: export
#include "incr/ring/covar_ring.h"        // IWYU pragma: export
#include "incr/ring/int_ring.h"          // IWYU pragma: export
#include "incr/ring/minplus_semiring.h"  // IWYU pragma: export
#include "incr/ring/product_ring.h"      // IWYU pragma: export
#include "incr/ring/provenance.h"        // IWYU pragma: export
#include "incr/ring/ring.h"              // IWYU pragma: export

// The maintenance core and engines.
#include "incr/cascade/cascade_engine.h"        // IWYU pragma: export
#include "incr/core/view_tree.h"                // IWYU pragma: export
#include "incr/cqap/cqap_engine.h"              // IWYU pragma: export
#include "incr/engines/durable_engine.h"        // IWYU pragma: export
#include "incr/engines/engine.h"                // IWYU pragma: export
#include "incr/engines/engine_options.h"        // IWYU pragma: export
#include "incr/engines/strategies.h"            // IWYU pragma: export
#include "incr/engines/mixed_engine.h"          // IWYU pragma: export
#include "incr/engines/shattered_engine.h"      // IWYU pragma: export
#include "incr/insertonly/insert_only_engine.h" // IWYU pragma: export
#include "incr/ivme/triangle.h"                 // IWYU pragma: export

// Workload generators used by the examples.
#include "incr/workload/graph.h"     // IWYU pragma: export
#include "incr/workload/retailer.h"  // IWYU pragma: export

// Observability.
#include "incr/obs/metrics.h"  // IWYU pragma: export
#include "incr/obs/trace.h"    // IWYU pragma: export

// Concurrency utilities.
#include "incr/util/epoch.h"  // IWYU pragma: export

// Errors.
#include "incr/util/status.h"  // IWYU pragma: export

#endif  // INCR_INCR_H_
