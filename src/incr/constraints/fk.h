// Primary-key / foreign-key constraints (paper §4.4, Ex. 4.13).
//
// A batch of updates is *valid* if it maps a consistent database (every
// foreign-key value exists as a primary-key value) to another consistent
// database, possibly through inconsistent intermediate states (out-of-order
// execution). The paper's observation: non-hierarchical PK-FK joins like
// the IMDB/JOB query
//
//   Q(mid, cid) = Title(mid) * Movie_Companies(mid, cid) * Company(cid)
//
// are maintained with *amortized* constant update time under valid batches:
// the expensive group scan when a primary key arrives late (or leaves
// early) is charged to the child tuples that forced it, each of which was
// (or will be) processed in O(1).
//
// The maintenance itself is the generic view tree; this module provides the
// consistency bookkeeping: an O(1)-per-update tracker of the number of
// dangling child tuples, used to validate batches and to delimit the
// amortization windows in the benchmarks.
#ifndef INCR_CONSTRAINTS_FK_H_
#define INCR_CONSTRAINTS_FK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "incr/data/dense_map.h"
#include "incr/data/tuple.h"

namespace incr {

/// child_rel.child_col references parent_rel.parent_col (single-column PK).
struct FkSpec {
  std::string child_rel;
  uint32_t child_col;
  std::string parent_rel;
  uint32_t parent_col;
};

class FkConsistencyTracker {
 public:
  explicit FkConsistencyTracker(std::vector<FkSpec> specs)
      : specs_(std::move(specs)), state_(specs_.size()) {}

  /// Observes a single-tuple update (m copies of t added to rel; m < 0
  /// deletes). O(#specs touching rel).
  void OnUpdate(const std::string& rel, const Tuple& t, int64_t m);

  /// True iff every foreign-key value currently has a primary-key partner.
  bool IsConsistent() const { return violations_ == 0; }

  /// Number of dangling child tuples across all constraints.
  int64_t violations() const { return violations_; }

 private:
  struct FkState {
    DenseMap<Value, int64_t> child_count;   // FK value -> #child tuples
    DenseMap<Value, int64_t> parent_count;  // PK value -> multiplicity
  };

  std::vector<FkSpec> specs_;
  std::vector<FkState> state_;
  int64_t violations_ = 0;
};

}  // namespace incr

#endif  // INCR_CONSTRAINTS_FK_H_
