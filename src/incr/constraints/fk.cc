#include "incr/constraints/fk.h"

#include "incr/util/check.h"

namespace incr {

void FkConsistencyTracker::OnUpdate(const std::string& rel, const Tuple& t,
                                    int64_t m) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    const FkSpec& spec = specs_[i];
    FkState& st = state_[i];
    if (rel == spec.child_rel) {
      Value v = t[spec.child_col];
      int64_t& cnt = st.child_count.GetOrInsert(v, 0);
      cnt += m;
      INCR_DCHECK(cnt >= 0);
      const int64_t* pc = st.parent_count.Find(v);
      if (pc == nullptr || *pc <= 0) violations_ += m;
      if (cnt == 0) st.child_count.Erase(v);
    }
    if (rel == spec.parent_rel) {
      Value v = t[spec.parent_col];
      int64_t& cnt = st.parent_count.GetOrInsert(v, 0);
      bool was_present = cnt > 0;
      cnt += m;
      INCR_DCHECK(cnt >= 0);
      bool present = cnt > 0;
      if (was_present != present) {
        const int64_t* cc = st.child_count.Find(v);
        int64_t dangling = cc == nullptr ? 0 : *cc;
        violations_ += present ? -dangling : dangling;
      }
      if (cnt == 0) st.parent_count.Erase(v);
    }
  }
}

}  // namespace incr
