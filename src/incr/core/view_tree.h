// ViewTree<R>: the materialized view tree engine (paper §4.1) over a ring R.
//
// Holds the base relation of every atom plus, per variable-order node X, the
// views W_X and M_X described in view_tree_plan.h. Supports:
//
//   * single-tuple updates with bottom-up delta propagation — O(1) per
//     update for q-hierarchical queries under their canonical order
//     (Thm. 4.1), group-scan fallbacks otherwise;
//   * lifting functions per variable (SUM(g(X)) aggregates, the in-DB ML
//     rings of §6);
//   * O(|D|) bulk Rebuild() from loaded base relations (preprocessing);
//   * constant-delay enumeration of the factorized output, with optional
//     bindings (used for CQAP access requests (§4.3) and for delta
//     enumeration in the eager-list strategy);
//   * optional snapshot isolation (EnableSnapshots): one maintainer thread
//     keeps applying batches while any number of reader threads enumerate
//     immutable epoch-tagged versions via Snapshot() — see the
//     "Snapshot isolation" section below and DESIGN.md.
//
// Enumeration correctness relies on non-zero view payloads implying joining
// subtrees below, which holds for rings without zero divisors (Z, reals,
// Boolean) or for databases whose payloads stay "positive" (valid databases
// in the paper's sense).
#ifndef INCR_CORE_VIEW_TREE_H_
#define INCR_CORE_VIEW_TREE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "incr/core/view_tree_plan.h"
#include "incr/data/delta.h"
#include "incr/data/relation.h"
#include "incr/data/sharded_relation.h"
#include "incr/obs/metrics.h"
#include "incr/obs/trace.h"
#include "incr/ring/ring.h"
#include "incr/store/serde.h"
#include "incr/util/check.h"
#include "incr/util/epoch.h"
#include "incr/util/hash.h"
#include "incr/util/status.h"
#include "incr/util/thread_pool.h"

namespace incr {

namespace detail {
// Batch-path metric handles shared by every ViewTree<R> instantiation.
struct ViewTreeMetricHandles {
  obs::Counter* updates;       // single-tuple UpdateAtom calls
  obs::Counter* batches;       // ApplyBatch(DeltaBatch) calls
  obs::Counter* batch_deltas;  // merged deltas entering ApplyBatch
  obs::Histogram* shard_delta_tuples;    // per-shard W-delta bucket sizes
  obs::Histogram* shard_imbalance_x100;  // 100 * max_bucket / mean_bucket
  obs::Counter* snapshot_publishes;  // epoch bumps (snapshot mode)
  obs::Counter* snapshot_recycles;   // retired versions caught up by replay
  obs::Counter* snapshot_clones;     // full deep copies of the head state
  obs::Counter* snapshot_replays;    // logged batches replayed for catch-up
  obs::Gauge* snapshot_versions;     // retained published versions
  obs::Gauge* snapshot_bytes;        // sampled bytes across retained versions
};
inline const ViewTreeMetricHandles& ViewTreeMetrics() {
  static const ViewTreeMetricHandles h = [] {
    auto& r = obs::MetricsRegistry::Global();
    return ViewTreeMetricHandles{
        r.GetCounter("viewtree.updates"),
        r.GetCounter("viewtree.batches"),
        r.GetCounter("viewtree.batch_deltas"),
        r.GetHistogram("viewtree.shard_delta_tuples"),
        r.GetHistogram("viewtree.shard_imbalance_x100"),
        r.GetCounter("viewtree.snapshot_publishes"),
        r.GetCounter("viewtree.snapshot_recycles"),
        r.GetCounter("viewtree.snapshot_clones"),
        r.GetCounter("viewtree.snapshot_replays"),
        r.GetGauge("viewtree.snapshot_versions"),
        r.GetGauge("viewtree.snapshot_bytes"),
    };
  }();
  return h;
}
}  // namespace detail

template <RingType R>
class ViewTreeEnumerator;

template <RingType R>
class ViewTreeSnapshot;

/// Binding of some free variables to fixed values (CQAP access requests,
/// delta enumeration). Unbound output variables are iterated.
struct Binding {
  SmallVector<Var, 4> vars;
  Tuple values;

  void Bind(Var v, Value val) {
    vars.push_back(v);
    values.push_back(val);
  }
};

template <RingType R>
class ViewTree {
 public:
  using RV = typename R::Value;
  /// Lifting function g_X: maps an X-value to a ring element (paper §2).
  using Lift = std::function<RV(Value)>;

  /// Builds an engine over an already-compiled plan.
  explicit ViewTree(ViewTreePlan plan)
      : plan_(std::move(plan)), build_(std::make_unique<TreeState>()) {
    const Query& q = plan_.query();
    TreeState& ts = *build_;
    ts.atoms.reserve(q.atoms().size());
    for (size_t a = 0; a < q.atoms().size(); ++a) {
      ts.atoms.push_back(std::make_unique<Relation<R>>(q.atoms()[a].schema));
      for (const Schema& key : plan_.atom_indexes()[a]) {
        ts.atoms.back()->AddIndex(key);
      }
    }
    const auto& nodes = plan_.nodes();
    lifts_.resize(nodes.size());
    node_stats_.resize(nodes.size());
    atom_sharding_.resize(nodes.size());
    child_sharding_.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      ts.w.push_back(std::make_unique<ShardedRelation<R>>(nodes[i].w_schema,
                                                          nodes[i].key.size()));
      ts.w.back()->AddIndex(nodes[i].key);  // index 0: group by key
      ts.m.push_back(std::make_unique<Relation<R>>(nodes[i].key));
      for (const Schema& key : plan_.m_indexes()[i]) {
        ts.m.back()->AddIndex(key);
      }
      for (const DeltaProgram& p : nodes[i].atom_programs) {
        atom_sharding_[i].push_back(ComputeSharding(p, nodes[i].key.size()));
      }
      for (const DeltaProgram& p : nodes[i].child_programs) {
        child_sharding_[i].push_back(ComputeSharding(p, nodes[i].key.size()));
      }
    }
  }

  /// Convenience: canonical variable order (hierarchical queries).
  static StatusOr<ViewTree> Make(const Query& q) {
    auto vo = VariableOrder::Canonical(q);
    if (!vo.ok()) return vo.status();
    return Make(q, *std::move(vo));
  }

  static StatusOr<ViewTree> Make(const Query& q, VariableOrder vo) {
    auto plan = ViewTreePlan::Make(q, vo);
    if (!plan.ok()) return plan.status();
    return ViewTree(*std::move(plan));
  }

  const ViewTreePlan& plan() const { return plan_; }
  const Query& query() const { return plan_.query(); }

  /// Shard count used by the parallel batch path. Fixed (not derived from
  /// the thread count) so that results are invariant under the number of
  /// threads: the partition of work is always the same, threads only decide
  /// who executes each shard. Resolved once per process from INCR_SHARDS
  /// (default 16) — see NumShards() in data/delta.h.
  static size_t DefaultDeltaShards() { return NumShards(); }

  /// Configures parallel batch maintenance: `threads` total threads
  /// (0 = ThreadPool::DefaultThreads()), data-parallel over `shards` hash
  /// shards (0 = DefaultDeltaShards()). threads == 1 restores the exact
  /// sequential path (single-shard W layout, no pool). W views are
  /// resharded in place — O(total W size) — so call this before bulk work.
  /// Single-tuple Update()s are unaffected either way.
  void SetThreads(size_t threads, size_t shards = 0) {
    if (threads == 0) threads = ThreadPool::DefaultThreads();
    if (threads <= 1) {
      pool_.reset();
      shards_ = 1;
    } else {
      pool_ = std::make_unique<ThreadPool>(threads);
      shards_ = shards == 0 ? DefaultDeltaShards() : shards;
    }
    for (auto& w : build_->w) w->Reshard(shards_);
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetGauge("viewtree.threads")
        ->Set(static_cast<int64_t>(pool_ ? pool_->num_threads() : 1));
    reg.GetGauge("viewtree.shards")->Set(static_cast<int64_t>(shards_));
    if (snap_ != nullptr) {
      // The resharded W layout is unreachable by batch replay, so retired
      // versions with the old layout must be cloned away, not recycled.
      snap_->log.clear();
      PublishVersion();
    }
  }

  /// The pool driving parallel batches; nullptr in sequential mode.
  ThreadPool* pool() const { return pool_.get(); }
  size_t num_shards() const { return shards_; }

  /// Morsel granularity of the parallel batch path, in bytes of input
  /// delta entries per morsel (the unit of work-stealing in
  /// ThreadPool::ParallelMorsels). Cache-sized by default. Scheduling
  /// only: results are bit-identical at every morsel size (the morsel
  /// grid fixes emission segment boundaries independent of threads), so
  /// unlike SetThreads this never invalidates snapshot replay logs.
  /// bytes == 0 restores the default.
  static constexpr size_t kDefaultMorselBytes = size_t{1} << 14;
  void SetMorselBytes(size_t bytes) {
    morsel_bytes_ = bytes == 0 ? kDefaultMorselBytes : bytes;
    obs::MetricsRegistry::Global()
        .GetGauge("viewtree.morsel_bytes")
        ->Set(static_cast<int64_t>(morsel_bytes_));
  }
  size_t morsel_bytes() const { return morsel_bytes_; }

  /// Sets the lifting function of variable `v`. Must be called while the
  /// tree is empty (lifted values are baked into the M views).
  void SetLifting(Var v, Lift fn) {
    int n = plan_.vo().NodeOf(v);
    INCR_CHECK(n >= 0);
    INCR_CHECK(build_->m[static_cast<size_t>(n)]->empty());
    lifts_[static_cast<size_t>(n)] = std::move(fn);
  }

  /// Applies a single-tuple delta to atom `atom_id` and propagates it.
  /// In snapshot mode this is a one-delta batch: it publishes one epoch.
  void UpdateAtom(size_t atom_id, const Tuple& t, const RV& d) {
    if (R::IsZero(d)) return;
    if (snap_ != nullptr) {
      DeltaBatch<R> one(build_->atoms.size());
      one.Add(atom_id, t, d);
      ApplyBatch(one);
      return;
    }
    if (obs::Enabled()) detail::ViewTreeMetrics().updates->Inc();
    build_->atoms[atom_id]->Apply(t, d);
    int node = plan_.atom_node()[atom_id];
    const PlanNode& pn = plan_.nodes()[static_cast<size_t>(node)];
    for (size_t k = 0; k < pn.atoms.size(); ++k) {
      if (pn.atoms[k] == atom_id) {
        ProcessDelta(node, pn.atom_programs[k], t, d);
        return;
      }
    }
    INCR_CHECK(false);
  }

  /// Applies a delta to every atom with relation name `rel` (self-joins get
  /// one sequential delta per occurrence, which realizes the product rule
  /// of Eq. (2)). In snapshot mode the occurrences form one batch, so the
  /// whole named update publishes a single epoch.
  void Update(const std::string& rel, const Tuple& t, const RV& d) {
    if (snap_ != nullptr) {
      if (R::IsZero(d)) return;
      DeltaBatch<R> merged(build_->atoms.size());
      bool found = false;
      for (size_t a = 0; a < query().atoms().size(); ++a) {
        if (query().atoms()[a].relation == rel) {
          merged.Add(a, t, d);
          found = true;
        }
      }
      INCR_CHECK(found);
      ApplyBatch(merged);
      return;
    }
    bool found = false;
    for (size_t a = 0; a < query().atoms().size(); ++a) {
      if (query().atoms()[a].relation == rel) {
        UpdateAtom(a, t, d);
        found = true;
      }
    }
    INCR_CHECK(found);
  }

  /// A batch of single-tuple deltas. Because payloads live in a ring,
  /// batches commute: applying any permutation of a batch yields the same
  /// state (paper §2's optimization benefit).
  using BatchEntry = AtomDelta<R>;

  /// The naive baseline: one full bottom-up traversal per tuple. Exposed
  /// for benchmarking against the node-at-a-time path below.
  void ApplyBatchPerTuple(std::span<const BatchEntry> batch) {
    for (const BatchEntry& e : batch) UpdateAtom(e.atom, e.tuple, e.delta);
  }

  /// Applies a batch with node-at-a-time propagation: duplicates are
  /// pre-summed per atom, and every affected view-tree node is visited
  /// exactly once, accumulating a grouped delta relation that is handed to
  /// its parent in one step — O(|batch| + affected-view work) instead of
  /// |batch| independent walks. The final state is ring-identical to
  /// sequential per-tuple application (§2 batch commutativity).
  void ApplyBatch(std::span<const BatchEntry> batch) {
    if (batch.size() <= 1) {
      ApplyBatchPerTuple(batch);
      return;
    }
    DeltaBatch<R> merged(build_->atoms.size());
    merged.AddAll(batch);
    ApplyBatch(merged);
  }

  /// Same, over an already-merged batch. With SetThreads(>1) this runs the
  /// shard-parallel path; results are ring-identical to the sequential path
  /// and invariant under the thread count (see ProcessNodeBatchParallel).
  /// In snapshot mode the whole batch becomes visible to readers at once:
  /// it is applied to the off-side build state, then published as one
  /// atomic epoch bump — no reader ever sees a half-propagated batch.
  void ApplyBatch(const DeltaBatch<R>& batch) {
    if (batch.empty()) {
      // Deltas that merged to zero still publish in snapshot mode: the
      // contract is one epoch per ApplyBatch call, so concurrent
      // verifiers can map published epochs to applied batches 1:1. The
      // no-op version costs one publish (recycled like any other).
      if (snap_ != nullptr) {
        snap_->log.emplace_back(snap_->epochs.published() + 1, batch);
        PublishVersion();
      }
      return;
    }
    const bool obs_on = obs::Enabled();
    obs::TraceSpan span("viewtree.apply_batch");
    span.AddArg("deltas", static_cast<uint64_t>(batch.size()));
    if (obs_on) {
      detail::ViewTreeMetrics().batches->Inc();
      detail::ViewTreeMetrics().batch_deltas->Add(batch.size());
    }
    ApplyBatchTo(batch);
    if (snap_ != nullptr) {
      snap_->log.emplace_back(snap_->epochs.published() + 1, batch);
      PublishVersion();
    }
  }

  // --------------------------------------------------------------------
  // Snapshot isolation
  //
  // Threading contract: ONE maintainer thread calls the mutating API
  // (Update/ApplyBatch/Rebuild/LoadState/SetThreads/...); any number of
  // reader threads call Snapshot() and enumerate the returned handles.
  // Mutations build the next version on a private build state and publish
  // it with a single atomic epoch bump; readers pin an epoch (RAII
  // ReadGuard inside the handle) and the maintainer reclaims a retired
  // version only once no reader can still reach it. Retired versions are
  // recycled by replaying the batches they missed (the same delta
  // machinery as live maintenance), so steady-state publishing costs one
  // batch application — not one deep copy — per epoch.

  /// Switches the tree into snapshot mode and publishes the current state
  /// as the first epoch. `max_retained` caps the retained published
  /// versions (clamped to >= 2: the head plus at least one retirable
  /// version); when every retained version is still pinned by readers the
  /// maintainer WAITS in ApplyBatch until one is released. Memory cost is
  /// up to max_retained + 1 copies of the tree state (the +1 is the build
  /// state). Calling it again only adjusts `max_retained`.
  void EnableSnapshots(size_t max_retained = 3) {
    if (max_retained < 2) max_retained = 2;
    if (snap_ != nullptr) {
      snap_->max_retained = max_retained;
      return;
    }
    snap_ = std::make_unique<SnapshotCtl>();
    snap_->max_retained = max_retained;
    PublishVersion();
  }

  bool snapshots_enabled() const { return snap_ != nullptr; }

  /// The most recently published epoch (0 when snapshots are disabled).
  uint64_t published_epoch() const {
    return snap_ == nullptr ? 0 : snap_->epochs.published();
  }

  /// Currently retained published versions (diagnostics; 0 when disabled).
  size_t RetainedVersions() const {
    return snap_ == nullptr ? 0 : snap_->versions.size();
  }

  /// Pins the current epoch and returns an immutable handle onto it.
  /// Callable from any thread while the maintainer keeps writing; requires
  /// EnableSnapshots(). The tree must not be moved or destroyed while
  /// handles are live.
  ViewTreeSnapshot<R> Snapshot() const;

  /// Delta enumeration (paper §1, footnote 2): applies the update and
  /// reports the change to the *output*: sink(tuple, old_payload,
  /// new_payload) for every output tuple whose payload changed (including
  /// appearing/disappearing tuples, with the respective payload Zero).
  /// Requires an enumerable plan. Cost is proportional to the number of
  /// output tuples agreeing with the update on the atom's free variables.
  void UpdateAtomWithDeltaEnum(
      size_t atom_id, const Tuple& t, const RV& d,
      const std::function<void(const Tuple&, const RV& /*old*/,
                               const RV& /*new*/)>& sink) {
    INCR_CHECK(plan_.CanEnumerate().ok());
    Binding binding;
    const Schema& s = query().atoms()[atom_id].schema;
    for (size_t i = 0; i < s.size(); ++i) {
      if (query().IsFree(s[i])) binding.Bind(s[i], t[i]);
    }
    // Old payloads of potentially affected tuples.
    DenseMap<Tuple, RV, TupleHash, TupleEq> old;
    for (ViewTreeEnumerator<R> it(*this, binding); it.Valid(); it.Next()) {
      old.GetOrInsert(it.tuple(), it.payload());
    }
    UpdateAtom(atom_id, t, d);
    for (ViewTreeEnumerator<R> it(*this, binding); it.Valid(); it.Next()) {
      Tuple out = it.tuple();
      RV now = it.payload();
      const RV* before = old.Find(out);
      if (before == nullptr) {
        sink(out, R::Zero(), now);
      } else {
        if (!R::IsZero(R::Add(now, R::Neg(*before)))) {
          sink(out, *before, now);
        }
        old.Erase(out);
      }
    }
    // Tuples that disappeared from the output.
    for (const auto& e : old) sink(e.key, e.value, R::Zero());
  }

  /// Loads a tuple into an atom's base relation without propagation; pair
  /// with Rebuild() for O(|D|)-style bulk preprocessing. Not published to
  /// snapshot readers until the next publish (normally the Rebuild()).
  void LoadAtom(size_t atom_id, const Tuple& t, const RV& d) {
    build_->atoms[atom_id]->Apply(t, d);
    // Unlogged mutation: retired versions can no longer be caught up by
    // batch replay, so invalidate the recycle log.
    if (snap_ != nullptr) snap_->log.clear();
  }

  /// Rebuilds every view bottom-up from the base relations. In snapshot
  /// mode the rebuilt state is published as a fresh epoch.
  void Rebuild() {
    obs::TraceSpan span("viewtree.rebuild");
    for (auto& w : build_->w) w->Clear();
    for (auto& m : build_->m) m->Clear();
    // Children before parents: reverse preorder visits leaves first.
    const auto& pre = plan_.vo().preorder();
    for (size_t k = pre.size(); k-- > 0;) {
      BuildNode(pre[k]);
    }
    if (snap_ != nullptr) {
      snap_->log.clear();  // bulk rebuild is not reachable by batch replay
      PublishVersion();
    }
  }

  /// Product over root nodes of M_root(()): the full aggregate of the query
  /// with every variable (free ones included) marginalized.
  RV Aggregate() const {
    RV acc = R::One();
    for (int r : plan_.roots()) {
      acc = R::Mul(acc, build_->m[static_cast<size_t>(r)]->Payload(Tuple{}));
    }
    return acc;
  }

  const Relation<R>& AtomRelation(size_t atom_id) const {
    return *build_->atoms[atom_id];
  }
  const ShardedRelation<R>& NodeW(int node) const {
    return *build_->w[static_cast<size_t>(node)];
  }
  const Relation<R>& NodeM(int node) const {
    return *build_->m[static_cast<size_t>(node)];
  }

  /// The output schema: free variables in enumeration (preorder) order.
  Schema OutputSchema() const {
    Schema out;
    for (int n : plan_.enum_nodes()) {
      out.push_back(plan_.nodes()[static_cast<size_t>(n)].var);
    }
    return out;
  }

  /// Payload Q(t) of an output tuple over OutputSchema(): the product, over
  /// free nodes, of the anchored atoms' payloads and the bound children's
  /// marginalizations, times the M of fully-bound root trees.
  RV OutputPayload(const Tuple& t) const { return OutputPayload(*build_, t); }

  /// Per-node maintenance statistics, accumulated while obs::Enabled().
  /// All counts are plain integers written only by the coordinating thread
  /// (per-node batch coordination is single-threaded even on the parallel
  /// path), so reads between batches are exact.
  struct NodeObs {
    uint64_t batch_calls = 0;    // batches in which this node had work
    uint64_t single_deltas = 0;  // ProcessDelta visits (per-tuple path)
    uint64_t tuples_in = 0;      // source deltas folded at this node
    uint64_t tuples_out = 0;     // W-delta tuples emitted by its programs
    uint64_t apply_ns = 0;       // wall time spent in its batch processing
  };

  const NodeObs& node_stats(int node) const {
    return node_stats_[static_cast<size_t>(node)];
  }
  void ResetNodeStats() {
    for (NodeObs& no : node_stats_) no = NodeObs{};
  }

  /// JSON array with one object per view-tree node: static shape (var,
  /// parent, key arity), current view cardinalities |W_X| / |M_X|, and the
  /// accumulated NodeObs counters. This is the per-node cost breakdown
  /// embedded into BENCH_*.json (the paper's costs are per materialized
  /// view, so the node is the attribution unit).
  std::string NodeStatsJson() const {
    std::string out = "[";
    const auto& nodes = plan_.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
      const PlanNode& pn = nodes[i];
      const NodeObs& no = node_stats_[i];
      if (i > 0) out += ", ";
      out += "{\"node\": " + std::to_string(i);
      out += ", \"var\": " + std::to_string(static_cast<int64_t>(pn.var));
      out += ", \"parent\": " + std::to_string(pn.parent);
      out += ", \"free\": " + std::string(pn.free ? "true" : "false");
      out += ", \"key_arity\": " + std::to_string(pn.key.size());
      out += ", \"w_size\": " + std::to_string(build_->w[i]->size());
      out += ", \"m_size\": " + std::to_string(build_->m[i]->size());
      out += ", \"batch_calls\": " + std::to_string(no.batch_calls);
      out += ", \"single_deltas\": " + std::to_string(no.single_deltas);
      out += ", \"tuples_in\": " + std::to_string(no.tuples_in);
      out += ", \"tuples_out\": " + std::to_string(no.tuples_out);
      out += ", \"apply_ns\": " + std::to_string(no.apply_ns);
      out += "}";
    }
    out += "]";
    return out;
  }

  /// Serializes the tree's full dynamic state — every base relation and
  /// every node's W and M view — for checkpointing (store/checkpoint.h).
  /// Payloads are dumped verbatim rather than recomputed, so a dump + load
  /// round-trip is bit-identical even for float rings, where Rebuild()'s
  /// summation order would differ from the incrementally-maintained values.
  void DumpState(store::ByteWriter& w) const {
    // In snapshot mode the build state is always caught up to the published
    // head between maintainer operations, so (on the maintainer thread)
    // this serializes exactly the published epoch, never a mid-build one.
    w.PutU32(static_cast<uint32_t>(build_->atoms.size()));
    for (const auto& atom : build_->atoms) store::WriteRelation(w, *atom);
    w.PutU32(static_cast<uint32_t>(plan_.nodes().size()));
    for (size_t i = 0; i < plan_.nodes().size(); ++i) {
      store::WriteShardedRelation(w, *build_->w[i]);
      store::WriteRelation(w, *build_->m[i]);
    }
  }

  /// Restores state dumped by DumpState into this tree (which must be built
  /// over the same plan — atom/node counts and schemas are validated).
  /// Existing contents are cleared; loaded entries are fresh inserts, so
  /// payloads round-trip byte-for-byte.
  Status LoadState(store::ByteReader& r) {
    if (r.GetU32() != build_->atoms.size() || !r.ok()) {
      return Status::InvalidArgument("snapshot atom count mismatch");
    }
    for (auto& atom : build_->atoms) {
      Status st = store::ReadRelationInto(r, atom.get());
      if (!st.ok()) return st;
    }
    if (r.GetU32() != plan_.nodes().size() || !r.ok()) {
      return Status::InvalidArgument("snapshot node count mismatch");
    }
    for (size_t i = 0; i < plan_.nodes().size(); ++i) {
      Status st = store::ReadShardedRelationInto(r, build_->w[i].get());
      if (st.ok()) st = store::ReadRelationInto(r, build_->m[i].get());
      if (!st.ok()) return st;
    }
    if (snap_ != nullptr) {
      snap_->log.clear();  // loaded state is not reachable by batch replay
      PublishVersion();
    }
    return Status::Ok();
  }

  friend class ViewTreeEnumerator<R>;
  friend class ViewTreeSnapshot<R>;

 private:
  /// One complete version of the tree's dynamic state: every atom base
  /// relation plus every node's W and M view, tagged with the epoch it
  /// represents. Published TreeStates are immutable; only the (private)
  /// build state is ever mutated. Heap-allocated so published pointers
  /// stay stable even if the owning ViewTree is moved.
  struct TreeState {
    std::vector<std::unique_ptr<Relation<R>>> atoms;
    std::vector<std::unique_ptr<ShardedRelation<R>>> w;
    std::vector<std::unique_ptr<Relation<R>>> m;
    uint64_t epoch = 0;
  };

  /// All snapshot-mode bookkeeping (null in exclusive mode). `versions`
  /// holds the retained published states, oldest first; its back is the
  /// head readers resolve via the atomic pointer. `log` holds the batches
  /// published since the oldest retained version, keyed by the epoch each
  /// produced, so a retired version can be recycled by replay.
  struct SnapshotCtl {
    epoch::Manager epochs;
    std::atomic<TreeState*> head{nullptr};
    std::deque<std::unique_ptr<TreeState>> versions;
    std::deque<std::pair<uint64_t, DeltaBatch<R>>> log;
    size_t max_retained = 3;
  };

  static size_t StateBytes(const TreeState& ts) {
    size_t n = 0;
    for (const auto& a : ts.atoms) n += a->MemoryBytes();
    for (const auto& w : ts.w) n += w->MemoryBytes();
    for (const auto& m : ts.m) n += m->MemoryBytes();
    return n;
  }

  std::unique_ptr<TreeState> CloneState(const TreeState& src) const {
    auto ts = std::make_unique<TreeState>();
    ts->atoms.reserve(src.atoms.size());
    for (const auto& a : src.atoms) {
      ts->atoms.push_back(std::make_unique<Relation<R>>(*a));
    }
    ts->w.reserve(src.w.size());
    for (const auto& w : src.w) {
      ts->w.push_back(std::make_unique<ShardedRelation<R>>(*w));
    }
    ts->m.reserve(src.m.size());
    for (const auto& m : src.m) {
      ts->m.push_back(std::make_unique<Relation<R>>(*m));
    }
    ts->epoch = src.epoch;
    return ts;
  }

  /// Moves the build state into `versions` as the new head, bumps the
  /// published epoch (the single atomic readers synchronize on), then
  /// refills the build state via AcquireBuild.
  void PublishVersion() {
    SnapshotCtl& s = *snap_;
    const uint64_t e = s.epochs.published() + 1;
    build_->epoch = e;
    s.versions.push_back(std::move(build_));
    // Order matters: the head pointer must be readable before the epoch it
    // carries is announced (readers load published, then head — see
    // util/epoch.h for why this pairing is race-free).
    s.head.store(s.versions.back().get(), std::memory_order_release);
    s.epochs.Publish(e);
    AcquireBuild();
    if (obs::Enabled()) {
      const auto& m = detail::ViewTreeMetrics();
      m.snapshot_publishes->Inc();
      m.snapshot_versions->Set(static_cast<int64_t>(s.versions.size()));
      if ((e & 63) == 0) {  // StateBytes walks every index; sample it
        size_t bytes = 0;
        for (const auto& v : s.versions) bytes += StateBytes(*v);
        m.snapshot_bytes->Set(static_cast<int64_t>(bytes));
      }
    }
  }

  /// Refills `build_` with a state equal to the published head: preferably
  /// a reclaimed retired version caught up by replaying the logged batches
  /// it missed (identical op sequence => bit-identical state), else a deep
  /// copy. Blocks (yield-spin) while the retention cap is reached and
  /// every retirable version is still pinned by a reader.
  void AcquireBuild() {
    SnapshotCtl& s = *snap_;
    std::unique_ptr<TreeState> candidate;
    for (;;) {
      const uint64_t min_active = s.epochs.MinActive();
      while (s.versions.size() > 1 && s.versions.front()->epoch < min_active) {
        candidate = std::move(s.versions.front());  // newest retiree survives
        s.versions.pop_front();
      }
      if (candidate != nullptr || s.versions.size() < s.max_retained) break;
      std::this_thread::yield();
    }
    const uint64_t head_epoch = s.versions.back()->epoch;
    if (candidate != nullptr) {
      // Replay is only sound if the log covers (candidate, head] without
      // gaps; unlogged mutations (Rebuild, LoadState, SetThreads) clear
      // the log, forcing the clone path below.
      const bool continuous = !s.log.empty() &&
                              s.log.front().first <= candidate->epoch + 1 &&
                              s.log.back().first == head_epoch;
      if (continuous) {
        build_ = std::move(candidate);
        stats_muted_ = true;  // replay must not double-count NodeObs
        size_t replayed = 0;
        for (const auto& [e, b] : s.log) {
          if (e <= build_->epoch) continue;
          ApplyBatchTo(b);
          ++replayed;
        }
        stats_muted_ = false;
        build_->epoch = head_epoch;
        if (obs::Enabled()) {
          const auto& m = detail::ViewTreeMetrics();
          m.snapshot_recycles->Inc();
          m.snapshot_replays->Add(replayed);
        }
      } else {
        candidate.reset();
      }
    }
    if (build_ == nullptr) {
      build_ = CloneState(*s.versions.back());
      if (obs::Enabled()) detail::ViewTreeMetrics().snapshot_clones->Inc();
    }
    // Entries at or below the oldest retained epoch can never be needed.
    while (!s.log.empty() &&
           s.log.front().first <= s.versions.front()->epoch) {
      s.log.pop_front();
    }
  }

  /// The bare node-at-a-time batch loop against the build state, shared by
  /// the public ApplyBatch (which adds obs + publish) and catch-up replay
  /// (which must stay un-instrumented and must not publish).
  void ApplyBatchTo(const DeltaBatch<R>& batch) {
    const bool obs_on = obs::Enabled() && !stats_muted_;
    // threads == 1 short-circuits to the direct sequential path even if a
    // degenerate one-thread pool was installed: partitioning, per-shard
    // buffers, and morsel bookkeeping are pure overhead with one executor,
    // and the sequential path is the determinism baseline anyway.
    const bool par = pool_ != nullptr && pool_->num_threads() > 1;
    // Pending per-node delta relations over the node's key schema, handed
    // from each node to its parent (or folded into M at the roots).
    std::vector<std::unique_ptr<Relation<R>>> pending(plan_.nodes().size());
    const auto& pre = plan_.vo().preorder();
    for (size_t k = pre.size(); k-- > 0;) {
      const int node = pre[k];
      const uint64_t t0 = obs_on ? obs::NowNs() : 0;
      if (stats_muted_) {
        if (!par) {
          ProcessNodeBatch(node, batch, &pending);
        } else {
          ProcessNodeBatchParallel(node, batch, &pending);
        }
        continue;
      }
      obs::TraceSpan node_span("viewtree.node");
      node_span.AddArg("node", static_cast<uint64_t>(node));
      if (!par) {
        ProcessNodeBatch(node, batch, &pending);
      } else {
        ProcessNodeBatchParallel(node, batch, &pending);
      }
      if (obs_on) {
        node_stats_[static_cast<size_t>(node)].apply_ns += obs::NowNs() - t0;
      }
    }
  }

  RV OutputPayload(const TreeState& ts, const Tuple& t) const;

  const Relation<R>& FactorStorage(const FactorRef& f) const {
    if (f.kind == FactorRef::kAtom) return *build_->atoms[f.index];
    return *build_->m[f.index];
  }

  /// Runs `prog` for a single source delta, emitting W-delta tuples.
  void RunProgram(const DeltaProgram& prog, const Tuple& src, const RV& d,
                  const Schema& w_schema,
                  std::vector<std::pair<Tuple, RV>>* out) const {
    Tuple assign;
    assign.resize(w_schema.size(), 0);
    for (size_t i = 0; i < prog.source_slots.size(); ++i) {
      assign[prog.source_slots[i]] = src[i];
    }
    RunSteps(prog, 0, assign, d, out);
  }

  void RunSteps(const DeltaProgram& prog, size_t step_idx, Tuple& assign,
                const RV& acc, std::vector<std::pair<Tuple, RV>>* out) const {
    if (R::IsZero(acc)) return;
    if (step_idx == prog.steps.size()) {
      out->emplace_back(assign, acc);
      return;
    }
    const JoinStep& step = prog.steps[step_idx];
    const Relation<R>& storage = FactorStorage(step.factor);
    if (step.full_key) {
      Tuple probe;
      probe.resize(step.bound_cols.size(), 0);
      // bound_cols are in factor-schema order and cover the whole schema.
      for (size_t i = 0; i < step.bound_cols.size(); ++i) {
        probe[step.bound_cols[i]] = assign[step.bound_slots[i]];
      }
      RV payload = storage.Payload(probe);
      RunSteps(prog, step_idx + 1, assign, R::Mul(acc, payload), out);
      return;
    }
    Tuple probe;
    probe.reserve(step.bound_cols.size());
    for (size_t i = 0; i < step.bound_cols.size(); ++i) {
      probe.push_back(assign[step.bound_slots[i]]);
    }
    const auto* group = storage.index(step.index_slot).Group(probe);
    if (group == nullptr) return;
    for (const Tuple& t : *group) {
      for (size_t i = 0; i < step.new_cols.size(); ++i) {
        assign[step.new_slots[i]] = t[step.new_cols[i]];
      }
      RunSteps(prog, step_idx + 1, assign,
               R::Mul(acc, storage.Payload(t)), out);
    }
  }

  const DeltaProgram* UpProgram(int node) const {
    const PlanNode& pn = plan_.nodes()[static_cast<size_t>(node)];
    if (pn.parent == -1) return nullptr;
    const PlanNode& parent = plan_.nodes()[static_cast<size_t>(pn.parent)];
    for (size_t k = 0; k < parent.children.size(); ++k) {
      if (parent.children[k] == node) return &parent.child_programs[k];
    }
    INCR_CHECK(false);
    return nullptr;
  }

  /// Applies a source delta at `node`, updates W and M, recurses upward.
  void ProcessDelta(int node, const DeltaProgram& prog, const Tuple& src,
                    const RV& d) {
    const PlanNode& pn = plan_.nodes()[static_cast<size_t>(node)];
    std::vector<std::pair<Tuple, RV>> w_deltas;
    RunProgram(prog, src, d, pn.w_schema, &w_deltas);
    if (obs::Enabled()) {
      NodeObs& no = node_stats_[static_cast<size_t>(node)];
      ++no.single_deltas;
      ++no.tuples_in;
      no.tuples_out += w_deltas.size();
    }
    if (w_deltas.empty()) return;

    ShardedRelation<R>& w = *build_->w[static_cast<size_t>(node)];
    Relation<R>& m = *build_->m[static_cast<size_t>(node)];
    const Lift& lift = lifts_[static_cast<size_t>(node)];
    const DeltaProgram* up = UpProgram(node);

    // Fast path for the common case (q-hierarchical single-tuple update):
    // one W delta yields one M delta, no grouping map needed.
    if (w_deltas.size() == 1) {
      const auto& [wt, wd] = w_deltas[0];
      w.Apply(wt, wd);
      Tuple key(wt.data(), pn.key.size());
      RV lifted = lift ? R::Mul(wd, lift(wt.back())) : wd;
      if (R::IsZero(lifted)) return;
      m.Apply(key, lifted);
      if (up != nullptr) ProcessDelta(pn.parent, *up, key, lifted);
      return;
    }

    // General path: aggregate W deltas into grouped M deltas.
    Relation<R> m_delta(pn.key);
    for (auto& [wt, wd] : w_deltas) {
      w.Apply(wt, wd);
      Tuple key(wt.data(), pn.key.size());
      m_delta.Apply(key, lift ? R::Mul(wd, lift(wt.back())) : wd);
    }
    for (const auto& e : m_delta) {
      m.Apply(e.key, e.value);
      if (up != nullptr) ProcessDelta(pn.parent, *up, e.key, e.value);
    }
  }

  /// Batched counterpart of ProcessDelta: folds every delta source of one
  /// node (anchored atoms with batch deltas, children with pending delta
  /// relations) into W_X and a grouped M-delta in a single visit.
  ///
  /// Exactness relies on the product rule for a sequence of factor deltas:
  ///     delta(F_1 ... F_m) = SUM_k F_1' ... F_{k-1}' dF_k F_{k+1} ... F_m
  /// (primed = post-delta state). Sources are processed in a fixed order;
  /// each source's merged delta is applied to its own storage *before* its
  /// program runs, so programs probe already-processed factors at their new
  /// state and unprocessed ones at their old state — each cross-delta
  /// interaction is counted exactly once. This is why a child's M is NOT
  /// updated when the child node is processed: the delta is parked in
  /// `pending` and folded into M right before the parent consumes it.
  void ProcessNodeBatch(int node, const DeltaBatch<R>& batch,
                        std::vector<std::unique_ptr<Relation<R>>>* pending) {
    const PlanNode& pn = plan_.nodes()[static_cast<size_t>(node)];
    bool has_work = false;
    for (size_t a : pn.atoms) has_work |= !batch.of(a).empty();
    for (int c : pn.children) {
      has_work |= (*pending)[static_cast<size_t>(c)] != nullptr;
    }
    if (!has_work) return;
    const bool obs_on = obs::Enabled() && !stats_muted_;
    NodeObs& no = node_stats_[static_cast<size_t>(node)];
    if (obs_on) ++no.batch_calls;

    std::vector<std::pair<Tuple, RV>> w_deltas;
    for (size_t i = 0; i < pn.atoms.size(); ++i) {
      const auto& d = batch.of(pn.atoms[i]);
      if (d.empty()) continue;
      if (obs_on) no.tuples_in += d.size();
      build_->atoms[pn.atoms[i]]->ApplyBatch(batch.entries(pn.atoms[i]));
      for (const auto& e : d) {
        RunProgram(pn.atom_programs[i], e.key, e.value, pn.w_schema,
                   &w_deltas);
      }
    }
    for (size_t i = 0; i < pn.children.size(); ++i) {
      auto& parked = (*pending)[static_cast<size_t>(pn.children[i])];
      if (parked == nullptr) continue;
      if (obs_on) no.tuples_in += parked->size();
      Relation<R>& cm = *build_->m[static_cast<size_t>(pn.children[i])];
      for (const auto& e : *parked) cm.Apply(e.key, e.value);
      for (const auto& e : *parked) {
        RunProgram(pn.child_programs[i], e.key, e.value, pn.w_schema,
                   &w_deltas);
      }
      parked.reset();
    }
    if (obs_on) no.tuples_out += w_deltas.size();
    if (w_deltas.empty()) return;

    // Fold W deltas into W_X and group them into the node's M-delta. W is
    // never probed by delta programs, so its application can safely happen
    // after all sources ran.
    ShardedRelation<R>& w = *build_->w[static_cast<size_t>(node)];
    const Lift& lift = lifts_[static_cast<size_t>(node)];
    auto m_delta = std::make_unique<Relation<R>>(pn.key);
    m_delta->Reserve(w_deltas.size());
    for (auto& [wt, wd] : w_deltas) {
      w.Apply(wt, wd);
      Tuple key(wt.data(), pn.key.size());
      m_delta->Apply(key, lift ? R::Mul(wd, lift(wt.back())) : wd);
    }
    if (m_delta->empty()) return;
    if (pn.parent == -1) {
      Relation<R>& m = *build_->m[static_cast<size_t>(node)];
      for (const auto& e : *m_delta) m.Apply(e.key, e.value);
    } else {
      (*pending)[static_cast<size_t>(node)] = std::move(m_delta);
    }
  }

  /// How a node's delta source maps onto the shard partition of the node's
  /// key space. by_key holds iff the source tuple determines every key
  /// column of the node (its program binds all key slots from the source),
  /// in which case key_cols[k] is the source column providing key slot k.
  struct SourceSharding {
    bool by_key = false;
    SmallVector<uint32_t, 4> key_cols;
  };

  static SourceSharding ComputeSharding(const DeltaProgram& prog,
                                        size_t key_size) {
    SourceSharding s;
    s.key_cols.resize(key_size, 0);
    SmallVector<uint32_t, 4> found;
    found.resize(key_size, 0);
    for (size_t i = 0; i < prog.source_slots.size(); ++i) {
      uint32_t slot = prog.source_slots[i];
      if (slot < key_size) {
        s.key_cols[slot] = static_cast<uint32_t>(i);
        found[slot] = 1;
      }
    }
    s.by_key = true;
    for (size_t k = 0; k < key_size; ++k) s.by_key &= found[k] != 0;
    return s;
  }

  /// Shard-parallel counterpart of ProcessNodeBatch. Same product-rule
  /// source order and the same fold, decomposed over `shards_` hash shards
  /// of the node's key space so that threads never share a DenseMap.
  ///
  /// Emissions are collected as an ordered list of *emit segments*: each
  /// segment holds S shard-local buffers, and for every shard s the
  /// concatenation of segment buffers seg[0][s], seg[1][s], ... is exactly
  /// the sequential w_deltas emission order restricted to shard s. Two
  /// segment producers:
  ///
  ///   * A ByKey source (source tuple determines the node key) runs as one
  ///     segment: the same hash partitions source deltas and node keys, so
  ///     source shard s emits straight into the segment's buffer s.
  ///   * A ByRange source runs morsel-driven (ThreadPool::ParallelMorsels):
  ///     its input span is carved on a fixed cache-sized morsel grid and
  ///     each grid cell is one segment, filled by whichever thread steals
  ///     it. Grid boundaries depend only on the input size and morsel
  ///     bytes — never on thread count or schedule.
  ///
  /// The fold is fused with emission bookkeeping: shard s walks the
  /// segment list in order and applies each buffer s directly into W
  /// shard s and its shard-local M-delta — there is no separate gather
  /// phase and no bucket concatenation copy. M-deltas have pairwise
  /// disjoint keys and are merged sequentially in shard order.
  ///
  /// Determinism: the segment order is the sequential source/emission
  /// order and the shard partition depends only on shards_ (fixed), so
  /// per W-tuple and per M-key the ring-operation sequence is identical
  /// to the sequential path — payloads match bit-for-bit even for
  /// non-associative float rings, at any thread count and morsel size.
  void ProcessNodeBatchParallel(
      int node, const DeltaBatch<R>& batch,
      std::vector<std::unique_ptr<Relation<R>>>* pending) {
    const PlanNode& pn = plan_.nodes()[static_cast<size_t>(node)];
    bool has_work = false;
    for (size_t a : pn.atoms) has_work |= !batch.of(a).empty();
    for (int c : pn.children) {
      has_work |= (*pending)[static_cast<size_t>(c)] != nullptr;
    }
    if (!has_work) return;
    const bool obs_on = obs::Enabled() && !stats_muted_;
    NodeObs& no = node_stats_[static_cast<size_t>(node)];
    if (obs_on) ++no.batch_calls;

    const size_t S = shards_;
    ThreadPool* pool = pool_.get();
    const size_t key_size = pn.key.size();
    // One emit segment = S shard-local buffers. Segments are appended in
    // source order; within a ByRange source, in morsel-grid order.
    using EmitSegment = std::vector<std::vector<std::pair<Tuple, RV>>>;
    std::vector<EmitSegment> segments;
    // Morsels are sized in bytes of input entries (cache-resident units).
    const size_t morsel_elems = std::max<size_t>(
        1, morsel_bytes_ / sizeof(typename DeltaBatch<R>::Entry));

    auto shard_of_w = [&](const Tuple& wt) {
      return ShardOfHash(
          HashSpan64(reinterpret_cast<const uint64_t*>(wt.data()), key_size),
          S);
    };
    auto run_source = [&](const DeltaProgram& prog, const SourceSharding& ss,
                          std::span<const typename DeltaBatch<R>::Entry>
                              entries) {
      if (ss.by_key) {
        // Source shard s touches only node keys of shard s, so it can emit
        // directly into the segment's buffer s: the same hash partitions
        // both sides. One segment per ByKey source.
        auto parts = DeltaShards<R>::ByKey(
            entries, {ss.key_cols.data(), ss.key_cols.size()}, S);
        segments.emplace_back(S);
        EmitSegment& seg = segments.back();
        pool->ParallelFor(S, [&](size_t s) {
          for (const auto& e : parts.shard(s)) {
            RunProgram(prog, e.key, e.value, pn.w_schema, &seg[s]);
          }
        });
        return;
      }
      // Fallback: morsel-driven over the raw input span. Each fixed grid
      // cell [begin, end) owns segment first + begin/morsel_elems and
      // scatters its emissions into that segment's shard buffers — no
      // thread ever writes another cell's segment, and no gather runs:
      // the fold consumes the segments where they were written.
      const size_t nseg = (entries.size() + morsel_elems - 1) / morsel_elems;
      const size_t first = segments.size();
      for (size_t k = 0; k < nseg; ++k) segments.emplace_back(S);
      pool->ParallelMorsels(
          entries.size(), morsel_elems, [&](size_t begin, size_t end) {
            EmitSegment& seg = segments[first + begin / morsel_elems];
            std::vector<std::pair<Tuple, RV>> emitted;
            for (size_t i = begin; i < end; ++i) {
              const auto& e = entries[i];
              RunProgram(prog, e.key, e.value, pn.w_schema, &emitted);
            }
            for (auto& [wt, wd] : emitted) {
              seg[shard_of_w(wt)].emplace_back(std::move(wt),
                                               std::move(wd));
            }
          });
    };

    for (size_t i = 0; i < pn.atoms.size(); ++i) {
      const auto& d = batch.of(pn.atoms[i]);
      if (d.empty()) continue;
      if (obs_on) no.tuples_in += d.size();
      build_->atoms[pn.atoms[i]]->ApplyBatch(batch.entries(pn.atoms[i]), pool);
      run_source(pn.atom_programs[i],
                 atom_sharding_[static_cast<size_t>(node)][i],
                 batch.entries(pn.atoms[i]));
    }
    for (size_t i = 0; i < pn.children.size(); ++i) {
      auto& parked = (*pending)[static_cast<size_t>(pn.children[i])];
      if (parked == nullptr) continue;
      if (obs_on) no.tuples_in += parked->size();
      Relation<R>& cm = *build_->m[static_cast<size_t>(pn.children[i])];
      std::span<const typename Relation<R>::Entry> entries(parked->begin(),
                                                           parked->size());
      cm.ApplyBatch(entries, pool);
      run_source(pn.child_programs[i],
                 child_sharding_[static_cast<size_t>(node)][i], entries);
      parked.reset();
    }
    bool any = false;
    size_t emitted = 0;
    size_t max_bucket = 0;
    std::vector<size_t> shard_sizes(S, 0);
    for (const EmitSegment& seg : segments) {
      for (size_t s = 0; s < S; ++s) shard_sizes[s] += seg[s].size();
    }
    for (size_t s = 0; s < S; ++s) {
      any |= shard_sizes[s] != 0;
      emitted += shard_sizes[s];
      max_bucket = std::max(max_bucket, shard_sizes[s]);
    }
    if (obs_on) {
      no.tuples_out += emitted;
      const auto& m = detail::ViewTreeMetrics();
      for (size_t s = 0; s < S; ++s) {
        m.shard_delta_tuples->Record(static_cast<uint64_t>(shard_sizes[s]));
      }
      if (emitted > 0) {
        // Imbalance ratio max/mean, scaled by 100 (1.0 == perfectly even
        // partition == 100). The histogram's p99 answers "how skewed do
        // shard partitions get" across a whole run.
        const double mean =
            static_cast<double>(emitted) / static_cast<double>(S);
        m.shard_imbalance_x100->Record(static_cast<uint64_t>(
            100.0 * static_cast<double>(max_bucket) / mean));
      }
    }
    if (!any) return;

    ShardedRelation<R>& w = *build_->w[static_cast<size_t>(node)];
    INCR_DCHECK(w.num_shards() == S);
    const Lift& lift = lifts_[static_cast<size_t>(node)];
    std::vector<Relation<R>> m_shards;
    m_shards.reserve(S);
    for (size_t s = 0; s < S; ++s) m_shards.emplace_back(pn.key);
    // Fused fold: shard s drains its buffer of every segment in segment
    // order — by construction the sequential emission order restricted to
    // shard s — straight into W shard s and the shard-local M-delta.
    pool->ParallelFor(S, [&](size_t s) {
      Relation<R>& ws = w.shard(s);
      Relation<R>& md = m_shards[s];
      md.Reserve(shard_sizes[s]);
      for (EmitSegment& seg : segments) {
        for (auto& [wt, wd] : seg[s]) {
          ws.Apply(wt, wd);
          Tuple key(wt.data(), key_size);
          md.Apply(key, lift ? R::Mul(wd, lift(wt.back())) : wd);
        }
      }
    });
    size_t total = 0;
    for (const Relation<R>& md : m_shards) total += md.size();
    if (total == 0) return;
    if (pn.parent == -1) {
      Relation<R>& m = *build_->m[static_cast<size_t>(node)];
      for (const Relation<R>& md : m_shards) {
        for (const auto& e : md) m.Apply(e.key, e.value);
      }
    } else {
      // O(shards · merge cursor) concatenation: shard keys are disjoint,
      // so every Apply is a fresh insert.
      auto merged = std::make_unique<Relation<R>>(pn.key);
      merged->Reserve(total);
      for (const Relation<R>& md : m_shards) {
        for (const auto& e : md) merged->Apply(e.key, e.value);
      }
      (*pending)[static_cast<size_t>(node)] = std::move(merged);
    }
  }

  /// Bulk-builds W and M of one node, assuming its children are built. Uses
  /// the node's first factor program: scan that factor, run the join.
  void BuildNode(int node) {
    const PlanNode& pn = plan_.nodes()[static_cast<size_t>(node)];
    const DeltaProgram* prog = nullptr;
    const Relation<R>* scan = nullptr;
    if (!pn.atoms.empty()) {
      prog = &pn.atom_programs[0];
      scan = build_->atoms[pn.atoms[0]].get();
    } else {
      INCR_CHECK(!pn.children.empty());
      prog = &pn.child_programs[0];
      scan = build_->m[static_cast<size_t>(pn.children[0])].get();
    }
    ShardedRelation<R>& w = *build_->w[static_cast<size_t>(node)];
    Relation<R>& m = *build_->m[static_cast<size_t>(node)];
    // Heuristic pre-sizing (|W_X| ~ |scan| when probes are keyed) to
    // avoid rehash storms during the bulk build.
    w.Reserve(scan->size());
    m.Reserve(scan->size());
    const Lift& lift = lifts_[static_cast<size_t>(node)];
    std::vector<std::pair<Tuple, RV>> w_deltas;
    for (const auto& e : *scan) {
      w_deltas.clear();
      RunProgram(*prog, e.key, e.value, pn.w_schema, &w_deltas);
      for (auto& [wt, wd] : w_deltas) {
        w.Apply(wt, wd);
        Tuple key(wt.data(), pn.key.size());
        m.Apply(key, lift ? R::Mul(wd, lift(wt.back())) : wd);
      }
    }
  }

  ViewTreePlan plan_;
  /// The mutable state every maintenance path acts on. In exclusive mode
  /// it is the one and only state; in snapshot mode it is the private
  /// build copy, caught up to the published head between operations.
  std::unique_ptr<TreeState> build_;
  std::vector<Lift> lifts_;
  /// Per node, per anchored atom / per child: how that source partitions.
  std::vector<std::vector<SourceSharding>> atom_sharding_;
  std::vector<std::vector<SourceSharding>> child_sharding_;
  std::vector<NodeObs> node_stats_;
  std::unique_ptr<ThreadPool> pool_;  // null: sequential batch path
  size_t shards_ = 1;
  // Input bytes per morsel for ByRange sources (see SetMorselBytes).
  size_t morsel_bytes_ = kDefaultMorselBytes;
  std::unique_ptr<SnapshotCtl> snap_;  // null: exclusive (non-snapshot) mode
  bool stats_muted_ = false;  // true only during catch-up replay
};

// ----------------------------------------------------------------------
// Snapshots

/// The SnapshotHandle of DESIGN.md: an immutable, constant-delay-enumerable
/// view of the whole tree at one published epoch. Holding one pins its
/// epoch, so the maintainer keeps the underlying version alive until the
/// handle is destroyed — destroy handles promptly (or raise
/// max_retained_epochs) to keep the writer from waiting on reclamation.
/// Cheap to take (one slot CAS plus two atomic loads) and movable; safe to
/// take and use from any thread while a single maintainer keeps writing.
template <RingType R>
class ViewTreeSnapshot {
 public:
  using RV = typename R::Value;

  /// The epoch whose state this handle observes. At least the pinned
  /// epoch; monotonically non-decreasing across handles taken by one
  /// thread (the head only ever advances).
  uint64_t epoch() const { return state_->epoch; }

  const ViewTree<R>& tree() const { return *tree_; }

  /// Product over root nodes of M_root(()) at this epoch.
  RV Aggregate() const;

  /// Q(t) of an output tuple over the tree's OutputSchema() at this epoch.
  RV OutputPayload(const Tuple& t) const;

  /// Constant-delay enumerator over this epoch's output, with optional
  /// bindings (same contract as enumerating the live tree).
  ViewTreeEnumerator<R> Enumerate(Binding binding = Binding{}) const;

 private:
  friend class ViewTree<R>;

  ViewTreeSnapshot(const ViewTree<R>* tree, epoch::ReadGuard guard,
                   const typename ViewTree<R>::TreeState* state)
      : tree_(tree), guard_(std::move(guard)), state_(state) {}

  const ViewTree<R>* tree_;
  epoch::ReadGuard guard_;
  const typename ViewTree<R>::TreeState* state_;
};

template <RingType R>
ViewTreeSnapshot<R> ViewTree<R>::Snapshot() const {
  INCR_CHECK(snap_ != nullptr);
  // Pin first, then resolve the head: the pinned epoch lower-bounds the
  // head's epoch, so the resolved version cannot be reclaimed while the
  // guard is held (see util/epoch.h).
  epoch::ReadGuard guard(&snap_->epochs);
  const TreeState* state = snap_->head.load(std::memory_order_acquire);
  return ViewTreeSnapshot<R>(this, std::move(guard), state);
}

// ----------------------------------------------------------------------
// Enumeration

/// Constant-delay iterator over the factorized query output (RocksDB
/// iterator style: while (it.Valid()) { use it.tuple(); it.Next(); }).
///
/// Constant delay holds when the plan's CanEnumerate() is OK and bindings
/// (if any) bind a prefix of each tree's root path; other bindings still
/// enumerate correctly but may skip over dead branches.
template <RingType R>
class ViewTreeEnumerator {
 public:
  using RV = typename R::Value;

  explicit ViewTreeEnumerator(const ViewTree<R>& tree)
      : ViewTreeEnumerator(tree, *tree.build_, Binding{}) {}

  ViewTreeEnumerator(const ViewTree<R>& tree, Binding binding)
      : ViewTreeEnumerator(tree, *tree.build_, std::move(binding)) {}

 private:
  friend class ViewTreeSnapshot<R>;

  /// Enumerates one specific version. The public constructors pass the
  /// live (build) state; ViewTreeSnapshot passes its pinned version.
  ViewTreeEnumerator(const ViewTree<R>& tree,
                     const typename ViewTree<R>::TreeState& state,
                     Binding binding)
      : tree_(&tree), state_(&state) {
    const auto& plan = tree.plan_;
    INCR_CHECK(plan.CanEnumerate().ok());
    const auto& enum_nodes = plan.enum_nodes();
    states_.resize(enum_nodes.size());
    for (size_t i = 0; i < enum_nodes.size(); ++i) {
      NodeState& st = states_[i];
      st.node = enum_nodes[i];
      const PlanNode& pn = plan.nodes()[static_cast<size_t>(st.node)];
      // Key values come from earlier enum nodes (ancestors are free and
      // precede this node in preorder).
      for (Var kv : pn.key) {
        int src = -1;
        for (size_t j = 0; j < i; ++j) {
          if (plan.nodes()[static_cast<size_t>(enum_nodes[j])].var == kv) {
            src = static_cast<int>(j);
            break;
          }
        }
        INCR_CHECK(src >= 0);
        st.key_sources.push_back(static_cast<uint32_t>(src));
      }
      for (size_t b = 0; b < binding.vars.size(); ++b) {
        if (binding.vars[b] == pn.var) {
          st.bound = true;
          st.bound_value = binding.values[b];
        }
      }
    }
    // Fully bound trees (no free node) contribute only to payload; they can
    // also make the whole output empty when their aggregate is zero.
    for (int r : plan.roots()) {
      if (!plan.nodes()[static_cast<size_t>(r)].free &&
          R::IsZero(state.m[static_cast<size_t>(r)]->Payload(Tuple{}))) {
        empty_ = true;
      }
    }
    if (empty_) return;
    if (states_.empty()) {
      single_empty_ = true;  // zero free variables: one empty output tuple
      return;
    }
    FindSolutionFrom(0);
  }

 public:
  bool Valid() const {
    if (empty_) return false;
    if (states_.empty()) return single_empty_;
    return valid_;
  }

  void Next() {
    INCR_DCHECK(Valid());
    if (states_.empty()) {
      single_empty_ = false;
      return;
    }
    size_t j = states_.size() - 1;
    for (;;) {
      if (TryNext(j)) {
        FindSolutionFrom(j + 1);
        return;
      }
      if (j == 0) {
        valid_ = false;
        return;
      }
      --j;
    }
  }

  /// Current output tuple over the tree's OutputSchema().
  Tuple tuple() const {
    INCR_DCHECK(Valid());
    Tuple out;
    out.reserve(states_.size());
    for (const NodeState& st : states_) out.push_back(st.current);
    return out;
  }

  /// Q(tuple()): computed from base payloads in O(|Q|).
  RV payload() const { return tree_->OutputPayload(*state_, tuple()); }

 private:
  struct NodeState {
    int node = -1;
    SmallVector<uint32_t, 4> key_sources;  // positions of key vars among
                                           // earlier enum nodes
    bool bound = false;
    Value bound_value = 0;
    // Iteration state.
    const std::vector<Tuple>* group = nullptr;
    size_t pos = 0;
    Value current = 0;
  };

  Tuple KeyOf(size_t i) const {
    const NodeState& st = states_[i];
    Tuple key;
    key.reserve(st.key_sources.size());
    for (uint32_t src : st.key_sources) {
      key.push_back(states_[src].current);
    }
    return key;
  }

  /// Positions node i at its first candidate for the current key values of
  /// earlier nodes. Returns false if it has none.
  bool TryFirst(size_t i) {
    NodeState& st = states_[i];
    Tuple key = KeyOf(i);
    const ShardedRelation<R>& w = *state_->w[static_cast<size_t>(st.node)];
    if (st.bound) {
      Tuple probe = key;
      probe.push_back(st.bound_value);
      if (!w.Contains(probe)) return false;
      st.group = nullptr;
      st.current = st.bound_value;
      return true;
    }
    st.group = w.GroupByKey(0, key);
    if (st.group == nullptr) return false;
    st.pos = 0;
    st.current = (*st.group)[0].back();
    return true;
  }

  /// Moves node i to its next candidate under the same key, if any.
  bool TryNext(size_t i) {
    NodeState& st = states_[i];
    if (st.bound || st.group == nullptr) return false;
    if (st.pos + 1 >= st.group->size()) return false;
    ++st.pos;
    st.current = (*st.group)[st.pos].back();
    return true;
  }

  /// Iterative odometer: positions nodes i.. at the first solution, moving
  /// earlier nodes forward when a node has no candidate.
  void FindSolutionFrom(size_t i) {
    for (;;) {
      if (i == states_.size()) {
        valid_ = true;
        return;
      }
      if (TryFirst(i)) {
        ++i;
        continue;
      }
      // No candidate at i: advance the deepest earlier node that can move.
      size_t j = i;
      for (;;) {
        if (j == 0) {
          valid_ = false;
          return;
        }
        --j;
        if (TryNext(j)) break;
      }
      i = j + 1;
    }
  }

  const ViewTree<R>* tree_;
  const typename ViewTree<R>::TreeState* state_;
  std::vector<NodeState> states_;
  bool valid_ = false;
  bool empty_ = false;
  bool single_empty_ = false;
};

template <RingType R>
typename R::Value ViewTree<R>::OutputPayload(const TreeState& ts,
                                             const Tuple& t) const {
  const auto& enum_nodes = plan_.enum_nodes();
  INCR_DCHECK(t.size() == enum_nodes.size());
  RV acc = R::One();
  // Value of a free variable by node id.
  auto value_of = [&](Var v) -> Value {
    for (size_t i = 0; i < enum_nodes.size(); ++i) {
      if (plan_.nodes()[static_cast<size_t>(enum_nodes[i])].var == v) {
        return t[i];
      }
    }
    INCR_CHECK(false);
    return 0;
  };
  for (size_t i = 0; i < enum_nodes.size(); ++i) {
    const PlanNode& pn = plan_.nodes()[static_cast<size_t>(enum_nodes[i])];
    for (size_t a : pn.atoms) {
      const Schema& s = query().atoms()[a].schema;
      Tuple probe;
      probe.reserve(s.size());
      for (Var v : s) probe.push_back(value_of(v));
      acc = R::Mul(acc, ts.atoms[a]->Payload(probe));
    }
    for (int c : pn.children) {
      const PlanNode& child = plan_.nodes()[static_cast<size_t>(c)];
      if (child.free) continue;  // free children contribute their own term
      Tuple probe;
      probe.reserve(child.key.size());
      for (Var v : child.key) probe.push_back(value_of(v));
      acc = R::Mul(acc, ts.m[static_cast<size_t>(c)]->Payload(probe));
    }
  }
  // Fully bound trees contribute their scalar aggregate.
  for (int r : plan_.roots()) {
    if (!plan_.nodes()[static_cast<size_t>(r)].free) {
      acc = R::Mul(acc, ts.m[static_cast<size_t>(r)]->Payload(Tuple{}));
    }
  }
  return acc;
}

template <RingType R>
typename R::Value ViewTreeSnapshot<R>::Aggregate() const {
  RV acc = R::One();
  for (int r : tree_->plan_.roots()) {
    acc = R::Mul(acc, state_->m[static_cast<size_t>(r)]->Payload(Tuple{}));
  }
  return acc;
}

template <RingType R>
typename R::Value ViewTreeSnapshot<R>::OutputPayload(const Tuple& t) const {
  return tree_->OutputPayload(*state_, t);
}

template <RingType R>
ViewTreeEnumerator<R> ViewTreeSnapshot<R>::Enumerate(Binding binding) const {
  return ViewTreeEnumerator<R>(*tree_, *state_, std::move(binding));
}

}  // namespace incr

#endif  // INCR_CORE_VIEW_TREE_H_
