// ViewTreePlan: the ring-independent "compiled" form of a view tree
// (paper §4.1, Fig. 3; the F-IVM / Dynamic-Yannakakis construction).
//
// Given a query Q and a variable order omega, each node X materializes:
//
//   W_X over schema key(X) + (X):  the node's view — the join of the atoms
//       anchored at X with the marginalizations M_C of X's children;
//   M_X over schema key(X):        SUM_X W_X, with X's values passed through
//       the node's lifting function before aggregation.
//
// A single-tuple delta to an atom (or, recursively, to a child's M) is
// turned into a delta on W_X by joining it with the node's *other* factors.
// The plan precompiles one DeltaProgram per (node, delta source): the order
// in which the other factors are probed, which of their columns are bound
// at that point, and which grouped index serves each partially-bound probe.
// For a q-hierarchical query under its canonical order every probe is fully
// keyed, so each program runs in O(1) — Thm. 4.1's update bound. For other
// queries some probes are group scans, and the same machinery degrades
// gracefully (this is exactly what the FD (§4.4), static/dynamic (§4.5) and
// PK-FK (Ex. 4.13) engines exploit).
#ifndef INCR_CORE_VIEW_TREE_PLAN_H_
#define INCR_CORE_VIEW_TREE_PLAN_H_

#include <vector>

#include "incr/query/query.h"
#include "incr/query/variable_order.h"
#include "incr/util/status.h"

namespace incr {

/// A factor of a node's view: an atom anchored at the node, or the
/// marginalization M of one of its children.
struct FactorRef {
  enum Kind { kAtom, kChild } kind;
  /// Atom index into Query::atoms() or node index of the child.
  size_t index;
};

/// One probe of a DeltaProgram.
struct JoinStep {
  FactorRef factor;
  /// All factor columns bound: a single payload lookup.
  bool full_key = false;
  /// Slot in the plan's per-storage index list (when !full_key).
  size_t index_slot = 0;
  /// Factor columns already bound, and the W-schema slots providing them.
  SmallVector<uint32_t, 4> bound_cols;
  SmallVector<uint32_t, 4> bound_slots;
  /// Factor columns introducing new variables, and their W-schema slots.
  SmallVector<uint32_t, 4> new_cols;
  SmallVector<uint32_t, 4> new_slots;
};

/// How a single-tuple delta from `source` becomes a set of W-deltas.
struct DeltaProgram {
  FactorRef source;
  /// W-schema slot for each source tuple column.
  SmallVector<uint32_t, 4> source_slots;
  std::vector<JoinStep> steps;
  /// True if some step is a group scan (not fully keyed) — i.e. this
  /// program is not O(1). Surfaced for diagnostics and tests.
  bool constant_time = true;
};

struct PlanNode {
  Var var = 0;
  int parent = -1;
  std::vector<int> children;
  std::vector<size_t> atoms;
  bool free = false;
  Schema key;        ///< schema of M_X
  Schema w_schema;   ///< key + (var): schema of W_X
  /// Programs, one per anchored atom (parallel to `atoms`) and one per
  /// child (parallel to `children`).
  std::vector<DeltaProgram> atom_programs;
  std::vector<DeltaProgram> child_programs;
};

/// Index requirements for one storage object (an atom's base relation or a
/// node's M view): the list of key schemas to register, in slot order.
using IndexRequirements = std::vector<Schema>;

class ViewTreePlan {
 public:
  /// Compiles the plan. Fails if the order is invalid for the query.
  static StatusOr<ViewTreePlan> Make(const Query& q, const VariableOrder& vo);

  const Query& query() const { return query_; }
  const VariableOrder& vo() const { return vo_; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }
  const std::vector<int>& roots() const { return roots_; }

  /// Anchor node of each atom.
  const std::vector<int>& atom_node() const { return atom_node_; }

  const std::vector<IndexRequirements>& atom_indexes() const {
    return atom_indexes_;
  }
  const std::vector<IndexRequirements>& m_indexes() const {
    return m_indexes_;
  }

  /// Free nodes in preorder — the enumeration spine.
  const std::vector<int>& enum_nodes() const { return enum_nodes_; }

  /// OK iff free variables are ancestor-closed in the order, i.e. the
  /// output can be enumerated with constant delay from the view tree.
  Status CanEnumerate() const;

  /// True iff every delta program is O(1) — with CanEnumerate, the paper's
  /// "best possible maintenance" regime.
  bool AllProgramsConstantTime() const;

  /// True iff every program whose source is (transitively reachable from)
  /// one of the given atoms is O(1). Used by the static/dynamic analysis:
  /// only the *dynamic* atoms' paths must be constant-time.
  bool ProgramsConstantTimeFor(const std::vector<size_t>& atom_ids) const;

 private:
  DeltaProgram CompileProgram(const PlanNode& node, FactorRef source);
  size_t RequireIndex(FactorRef factor, const Schema& key);
  Schema FactorSchema(const FactorRef& f) const;

  Query query_;
  VariableOrder vo_;
  std::vector<PlanNode> nodes_;
  std::vector<int> roots_;
  std::vector<int> atom_node_;
  std::vector<IndexRequirements> atom_indexes_;
  std::vector<IndexRequirements> m_indexes_;
  std::vector<int> enum_nodes_;
};

}  // namespace incr

#endif  // INCR_CORE_VIEW_TREE_PLAN_H_
