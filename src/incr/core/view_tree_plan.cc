#include "incr/core/view_tree_plan.h"

#include <algorithm>

#include "incr/util/check.h"

namespace incr {

Schema ViewTreePlan::FactorSchema(const FactorRef& f) const {
  if (f.kind == FactorRef::kAtom) return query_.atoms()[f.index].schema;
  return nodes_[f.index].key;  // a child's M has schema key(child)
}

size_t ViewTreePlan::RequireIndex(FactorRef factor, const Schema& key) {
  IndexRequirements& reqs = factor.kind == FactorRef::kAtom
                                ? atom_indexes_[factor.index]
                                : m_indexes_[factor.index];
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i] == key) return i;
  }
  reqs.push_back(key);
  return reqs.size() - 1;
}

DeltaProgram ViewTreePlan::CompileProgram(const PlanNode& node,
                                          FactorRef source) {
  DeltaProgram prog;
  prog.source = source;

  // Slot of each variable in W's schema (key..., var).
  auto slot_of = [&](Var v) -> int {
    auto pos = FindVar(node.w_schema, v);
    return pos.has_value() ? static_cast<int>(*pos) : -1;
  };

  Schema src_schema = FactorSchema(source);
  SmallVector<bool, 8> known;
  known.resize(node.w_schema.size(), false);
  for (Var v : src_schema) {
    int s = slot_of(v);
    INCR_CHECK(s >= 0);
    prog.source_slots.push_back(static_cast<uint32_t>(s));
    known[static_cast<size_t>(s)] = true;
  }

  // Remaining factors: the node's other atoms and other children.
  std::vector<FactorRef> rest;
  for (size_t ai : node.atoms) {
    if (!(source.kind == FactorRef::kAtom && source.index == ai)) {
      rest.push_back(FactorRef{FactorRef::kAtom, ai});
    }
  }
  for (int c : node.children) {
    if (!(source.kind == FactorRef::kChild &&
          source.index == static_cast<size_t>(c))) {
      rest.push_back(FactorRef{FactorRef::kChild, static_cast<size_t>(c)});
    }
  }

  // Greedy ordering: at each point, prefer a factor with every column
  // bound (pure lookup); otherwise the factor with the most bound columns
  // (the tightest group scan).
  while (!rest.empty()) {
    size_t best = 0;
    int best_score = -1;
    bool best_full = false;
    for (size_t i = 0; i < rest.size(); ++i) {
      Schema fs = FactorSchema(rest[i]);
      int bound = 0;
      for (Var v : fs) {
        if (known[static_cast<size_t>(slot_of(v))]) ++bound;
      }
      bool full = bound == static_cast<int>(fs.size());
      if ((full && !best_full) ||
          (full == best_full && bound > best_score)) {
        best = i;
        best_score = bound;
        best_full = full;
      }
    }
    FactorRef f = rest[best];
    rest.erase(rest.begin() + static_cast<long>(best));

    JoinStep step;
    step.factor = f;
    Schema fs = FactorSchema(f);
    Schema bound_key;
    for (uint32_t col = 0; col < fs.size(); ++col) {
      int s = slot_of(fs[col]);
      INCR_CHECK(s >= 0);
      if (known[static_cast<size_t>(s)]) {
        step.bound_cols.push_back(col);
        step.bound_slots.push_back(static_cast<uint32_t>(s));
        bound_key.push_back(fs[col]);
      } else {
        step.new_cols.push_back(col);
        step.new_slots.push_back(static_cast<uint32_t>(s));
      }
    }
    step.full_key = step.new_cols.empty();
    if (!step.full_key) {
      step.index_slot = RequireIndex(f, bound_key);
      prog.constant_time = false;
      for (uint32_t s : step.new_slots) known[s] = true;
    }
    prog.steps.push_back(step);
  }

  // Every W-schema variable must now be bound.
  for (size_t s = 0; s < node.w_schema.size(); ++s) {
    INCR_CHECK(known[s]);
  }
  return prog;
}

StatusOr<ViewTreePlan> ViewTreePlan::Make(const Query& q,
                                          const VariableOrder& vo) {
  // Repeated variables within one atom (R(A,A)) would need equality checks
  // the compiled probes do not emit; reject them up front.
  for (const Atom& a : q.atoms()) {
    for (size_t i = 0; i < a.schema.size(); ++i) {
      for (size_t j = i + 1; j < a.schema.size(); ++j) {
        if (a.schema[i] == a.schema[j]) {
          return Status::InvalidArgument(
              "atom " + a.relation +
              " repeats a variable; rewrite with an explicit equality "
              "self-join first");
        }
      }
    }
  }
  ViewTreePlan plan;
  plan.query_ = q;
  plan.vo_ = vo;
  plan.atom_indexes_.resize(q.atoms().size());
  plan.m_indexes_.resize(vo.nodes().size());
  plan.atom_node_.assign(q.atoms().size(), -1);

  plan.nodes_.resize(vo.nodes().size());
  for (size_t i = 0; i < vo.nodes().size(); ++i) {
    const VoNode& vn = vo.nodes()[i];
    PlanNode& pn = plan.nodes_[i];
    pn.var = vn.var;
    pn.parent = vn.parent;
    pn.children = vn.children;
    pn.atoms = vn.atoms;
    pn.free = vn.free;
    pn.key = vn.key;
    pn.w_schema = vn.key;
    pn.w_schema.push_back(vn.var);
    for (size_t ai : vn.atoms) plan.atom_node_[ai] = static_cast<int>(i);
    if (vn.parent == -1) plan.roots_.push_back(static_cast<int>(i));
  }
  for (int an : plan.atom_node_) {
    if (an < 0) return Status::InvalidArgument("atom not anchored by order");
  }

  for (PlanNode& pn : plan.nodes_) {
    for (size_t k = 0; k < pn.atoms.size(); ++k) {
      pn.atom_programs.push_back(
          plan.CompileProgram(pn, FactorRef{FactorRef::kAtom, pn.atoms[k]}));
    }
    for (size_t k = 0; k < pn.children.size(); ++k) {
      pn.child_programs.push_back(plan.CompileProgram(
          pn, FactorRef{FactorRef::kChild,
                        static_cast<size_t>(pn.children[k])}));
    }
  }

  // Enumeration spine: free nodes in preorder.
  for (int i : vo.preorder()) {
    if (plan.nodes_[static_cast<size_t>(i)].free) plan.enum_nodes_.push_back(i);
  }
  return plan;
}

Status ViewTreePlan::CanEnumerate() const {
  if (!vo_.FreeVarsAncestorClosed()) {
    return Status::FailedPrecondition(
        "free variables are not ancestor-closed in the variable order; the "
        "factorized output cannot be enumerated with constant delay");
  }
  return Status::Ok();
}

bool ViewTreePlan::AllProgramsConstantTime() const {
  for (const PlanNode& n : nodes_) {
    for (const DeltaProgram& p : n.atom_programs) {
      if (!p.constant_time) return false;
    }
    for (const DeltaProgram& p : n.child_programs) {
      if (!p.constant_time) return false;
    }
  }
  return true;
}

bool ViewTreePlan::ProgramsConstantTimeFor(
    const std::vector<size_t>& atom_ids) const {
  // A delta to atom a runs the atom's program at its node, then the chain
  // of child programs up to the root.
  for (size_t a : atom_ids) {
    int ni = atom_node_[a];
    const PlanNode* n = &nodes_[static_cast<size_t>(ni)];
    // Atom program.
    for (size_t k = 0; k < n->atoms.size(); ++k) {
      if (n->atoms[k] == a && !n->atom_programs[k].constant_time) {
        return false;
      }
    }
    // Child-program chain to the root.
    while (n->parent != -1) {
      const PlanNode& parent = nodes_[static_cast<size_t>(n->parent)];
      for (size_t k = 0; k < parent.children.size(); ++k) {
        if (parent.children[k] == ni &&
            !parent.child_programs[k].constant_time) {
          return false;
        }
      }
      ni = n->parent;
      n = &parent;
    }
  }
  return true;
}

}  // namespace incr
