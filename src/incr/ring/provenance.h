// Provenance polynomial ring Z[X]: the (universal) provenance semiring of
// Green, Karvounarakis & Tannen extended with integer coefficients so that
// it forms a ring (supports deletes). Payloads are polynomials over base
// tuple annotations; the payload of an output tuple records *how* it was
// derived (paper §2: "our data model follows prior work on K-relations over
// provenance semirings").
#ifndef INCR_RING_PROVENANCE_H_
#define INCR_RING_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace incr {

/// A monomial: a sorted multiset of base-annotation ids (variable -> power).
using Monomial = std::map<uint32_t, uint32_t>;

/// A polynomial with integer coefficients over annotation variables.
class Polynomial {
 public:
  Polynomial() = default;

  /// The constant polynomial c.
  static Polynomial Constant(int64_t c);

  /// The single-variable polynomial x_id.
  static Polynomial Var(uint32_t id);

  bool IsZero() const { return terms_.empty(); }

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator-() const;

  bool operator==(const Polynomial& other) const {
    return terms_ == other.terms_;
  }

  /// Number of monomials with non-zero coefficient.
  size_t NumTerms() const { return terms_.size(); }

  /// Evaluates the polynomial under an assignment id -> integer
  /// (missing ids evaluate as 1, matching multiplicity semantics).
  int64_t Eval(const std::map<uint32_t, int64_t>& assignment) const;

  /// Renders e.g. "2*x1*x3^2 + x2".
  std::string ToString() const;

  /// The term map (monomial -> non-zero coefficient); exposed for
  /// serialization. Round-trips exactly through FromTerms.
  const std::map<Monomial, int64_t>& terms() const { return terms_; }

  /// Rebuilds a polynomial from a term map (zero coefficients dropped).
  static Polynomial FromTerms(std::map<Monomial, int64_t> terms);

 private:
  // monomial -> coefficient; zero coefficients are never stored.
  std::map<Monomial, int64_t> terms_;
};

/// Ring tag for Polynomial payloads.
struct ProvenanceRing {
  using Value = Polynomial;
  static constexpr bool kHasNegation = true;

  static Value Zero() { return Polynomial(); }
  static Value One() { return Polynomial::Constant(1); }
  static Value Add(const Value& a, const Value& b) { return a + b; }
  static Value Mul(const Value& a, const Value& b) { return a * b; }
  static Value Neg(const Value& a) { return -a; }
  static bool IsZero(const Value& a) { return a.IsZero(); }
};

}  // namespace incr

#endif  // INCR_RING_PROVENANCE_H_
