// Tropical (min, +) semiring: shortest-path style aggregates. Insert-only
// maintenance works (min is monotone under inserts); there is no additive
// inverse, so deletes are unsupported — a concrete instance of the
// insert-only vs insert-delete asymmetry of paper §4.6.
#ifndef INCR_RING_MINPLUS_SEMIRING_H_
#define INCR_RING_MINPLUS_SEMIRING_H_

#include <cstdint>
#include <limits>

namespace incr {

struct MinPlusSemiring {
  using Value = int64_t;
  static constexpr bool kHasNegation = false;

  /// +infinity is the additive (min) identity.
  static Value Zero() { return std::numeric_limits<int64_t>::max(); }
  /// 0 is the multiplicative (+) identity.
  static Value One() { return 0; }
  static Value Add(Value a, Value b) { return a < b ? a : b; }
  static Value Mul(Value a, Value b) {
    // Saturating addition so Zero() (infinity) is absorbing.
    if (a == Zero() || b == Zero()) return Zero();
    return a + b;
  }
  static bool IsZero(Value a) { return a == Zero(); }
};

}  // namespace incr

#endif  // INCR_RING_MINPLUS_SEMIRING_H_
