// Boolean semiring ({false,true}, OR, AND): set semantics / existence.
// No additive inverse, so deletes cannot be processed through it — this is
// exactly the reason the literature maintains Boolean queries over Z and
// tests count > 0 (paper §3.4, triangle *detection* as the Boolean version
// of the triangle count).
#ifndef INCR_RING_BOOL_SEMIRING_H_
#define INCR_RING_BOOL_SEMIRING_H_

namespace incr {

struct BoolSemiring {
  using Value = bool;
  static constexpr bool kHasNegation = false;

  static Value Zero() { return false; }
  static Value One() { return true; }
  static Value Add(Value a, Value b) { return a || b; }
  static Value Mul(Value a, Value b) { return a && b; }
  static bool IsZero(Value a) { return !a; }
};

}  // namespace incr

#endif  // INCR_RING_BOOL_SEMIRING_H_
