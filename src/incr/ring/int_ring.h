// The ring of integers (Z, +, *, 0, 1): tuple multiplicities (paper §2).
// This is the default ring of DBToaster and F-IVM; a payload counts the
// derivations of a tuple, inserts are +m and deletes are -m.
#ifndef INCR_RING_INT_RING_H_
#define INCR_RING_INT_RING_H_

#include <cstdint>

namespace incr {

struct IntRing {
  using Value = int64_t;
  static constexpr bool kHasNegation = true;

  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Mul(Value a, Value b) { return a * b; }
  static Value Neg(Value a) { return -a; }
  static bool IsZero(Value a) { return a == 0; }
};

/// The reals (approximated by double): used for aggregates like SUM(price).
struct RealRing {
  using Value = double;
  static constexpr bool kHasNegation = true;

  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Mul(Value a, Value b) { return a * b; }
  static Value Neg(Value a) { return -a; }
  static bool IsZero(Value a) { return a == 0.0; }
};

}  // namespace incr

#endif  // INCR_RING_INT_RING_H_
