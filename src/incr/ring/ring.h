// Ring and semiring abstractions (paper §2).
//
// A relation over a ring (D, +, *, 0, 1) maps tuples to ring values; inserts
// carry "positive" values and deletes carry additive inverses. Engines are
// parameterized by a ring *type tag* R exposing:
//
//   using Value = ...;            payload type
//   static Value Zero();          additive identity
//   static Value One();           multiplicative identity
//   static Value Add(a, b);       commutative, associative
//   static Value Mul(a, b);       associative, distributes over Add
//   static bool  IsZero(a);       a == Zero()
//   static constexpr bool kHasNegation;
//   static Value Neg(a);          additive inverse (only if kHasNegation)
//
// Rings with kHasNegation == false are semirings: they support insert-only
// maintenance but not deletes (paper §4.6 discusses why the distinction
// matters for complexity).
#ifndef INCR_RING_RING_H_
#define INCR_RING_RING_H_

#include <concepts>

namespace incr {

/// C++20 concept for the ring interface described above.
template <typename R>
concept RingType = requires(typename R::Value a, typename R::Value b) {
  { R::Zero() } -> std::convertible_to<typename R::Value>;
  { R::One() } -> std::convertible_to<typename R::Value>;
  { R::Add(a, b) } -> std::convertible_to<typename R::Value>;
  { R::Mul(a, b) } -> std::convertible_to<typename R::Value>;
  { R::IsZero(a) } -> std::convertible_to<bool>;
  { R::kHasNegation } -> std::convertible_to<bool>;
};

/// A ring that additionally has additive inverses (supports deletes).
template <typename R>
concept RingWithNegation = RingType<R> && R::kHasNegation &&
                           requires(typename R::Value a) {
                             {
                               R::Neg(a)
                             } -> std::convertible_to<typename R::Value>;
                           };

}  // namespace incr

#endif  // INCR_RING_RING_H_
