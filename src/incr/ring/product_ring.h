// Component-wise product of two rings: maintain several aggregates (e.g. a
// count and a sum) in one pass over one view tree.
#ifndef INCR_RING_PRODUCT_RING_H_
#define INCR_RING_PRODUCT_RING_H_

#include <utility>

#include "incr/ring/ring.h"

namespace incr {

template <RingType R1, RingType R2>
struct ProductRing {
  using Value = std::pair<typename R1::Value, typename R2::Value>;
  static constexpr bool kHasNegation = R1::kHasNegation && R2::kHasNegation;

  static Value Zero() { return {R1::Zero(), R2::Zero()}; }
  static Value One() { return {R1::One(), R2::One()}; }
  static Value Add(const Value& a, const Value& b) {
    return {R1::Add(a.first, b.first), R2::Add(a.second, b.second)};
  }
  static Value Mul(const Value& a, const Value& b) {
    return {R1::Mul(a.first, b.first), R2::Mul(a.second, b.second)};
  }
  static Value Neg(const Value& a)
    requires kHasNegation
  {
    return {R1::Neg(a.first), R2::Neg(a.second)};
  }
  static bool IsZero(const Value& a) {
    return R1::IsZero(a.first) && R2::IsZero(a.second);
  }
};

}  // namespace incr

#endif  // INCR_RING_PRODUCT_RING_H_
