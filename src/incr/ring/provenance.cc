#include "incr/ring/provenance.h"

#include <cmath>
#include <iterator>

namespace incr {

Polynomial Polynomial::Constant(int64_t c) {
  Polynomial p;
  if (c != 0) p.terms_[Monomial{}] = c;
  return p;
}

Polynomial Polynomial::Var(uint32_t id) {
  Polynomial p;
  p.terms_[Monomial{{id, 1}}] = 1;
  return p;
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  Polynomial out = *this;
  for (const auto& [mono, coef] : other.terms_) {
    auto it = out.terms_.find(mono);
    if (it == out.terms_.end()) {
      out.terms_.emplace(mono, coef);
    } else {
      it->second += coef;
      if (it->second == 0) out.terms_.erase(it);
    }
  }
  return out;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  Polynomial out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : other.terms_) {
      Monomial m = ma;
      for (const auto& [var, pow] : mb) m[var] += pow;
      int64_t c = ca * cb;
      auto it = out.terms_.find(m);
      if (it == out.terms_.end()) {
        out.terms_.emplace(std::move(m), c);
      } else {
        it->second += c;
        if (it->second == 0) out.terms_.erase(it);
      }
    }
  }
  return out;
}

Polynomial Polynomial::operator-() const {
  Polynomial out = *this;
  for (auto& [mono, coef] : out.terms_) coef = -coef;
  return out;
}

int64_t Polynomial::Eval(const std::map<uint32_t, int64_t>& assignment) const {
  int64_t total = 0;
  for (const auto& [mono, coef] : terms_) {
    int64_t term = coef;
    for (const auto& [var, pow] : mono) {
      auto it = assignment.find(var);
      int64_t v = it == assignment.end() ? 1 : it->second;
      for (uint32_t i = 0; i < pow; ++i) term *= v;
    }
    total += term;
  }
  return total;
}

std::string Polynomial::ToString() const {
  if (terms_.empty()) return "0";
  std::string out;
  bool first = true;
  for (const auto& [mono, coef] : terms_) {
    if (!first) out += " + ";
    first = false;
    bool printed = false;
    if (coef != 1 || mono.empty()) {
      out += std::to_string(coef);
      printed = true;
    }
    for (const auto& [var, pow] : mono) {
      if (printed) out += "*";
      out += "x" + std::to_string(var);
      if (pow > 1) out += "^" + std::to_string(pow);
      printed = true;
    }
  }
  return out;
}

Polynomial Polynomial::FromTerms(std::map<Monomial, int64_t> terms) {
  Polynomial p;
  for (auto it = terms.begin(); it != terms.end();) {
    it = it->second == 0 ? terms.erase(it) : std::next(it);
  }
  p.terms_ = std::move(terms);
  return p;
}

}  // namespace incr
