// The covariance (degree-2 statistics) ring of F-IVM [33, 22]: payloads are
// triples (c, s, Q) of a count, a K-vector of sums, and a KxK matrix of sums
// of products. Maintaining a query over this ring computes, incrementally,
// all the aggregates needed to train linear regression / compute covariance
// matrices over the join result — the "in-database machine learning" use
// case the paper's §6 points to.
//
// Operations (K features):
//   0 = (0, 0, 0)
//   1 = (1, 0, 0)
//   (c1,s1,Q1) + (c2,s2,Q2) = (c1+c2, s1+s2, Q1+Q2)
//   (c1,s1,Q1) * (c2,s2,Q2) =
//       (c1*c2, c2*s1 + c1*s2, c2*Q1 + c1*Q2 + s1 s2^T + s2 s1^T)
// with additive inverse by negating all components; Lift_k(x) = (1, e_k x,
// e_k e_k^T x^2) injects feature k's value.
#ifndef INCR_RING_COVAR_RING_H_
#define INCR_RING_COVAR_RING_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace incr {

template <size_t K>
struct CovarValue {
  int64_t count = 0;
  std::array<double, K> sum{};
  std::array<double, K * K> prod{};

  bool operator==(const CovarValue& other) const {
    return count == other.count && sum == other.sum && prod == other.prod;
  }
};

template <size_t K>
struct CovarRing {
  using Value = CovarValue<K>;
  static constexpr bool kHasNegation = true;

  static Value Zero() { return Value{}; }

  static Value One() {
    Value v{};
    v.count = 1;
    return v;
  }

  static Value Add(const Value& a, const Value& b) {
    Value out;
    out.count = a.count + b.count;
    for (size_t i = 0; i < K; ++i) out.sum[i] = a.sum[i] + b.sum[i];
    for (size_t i = 0; i < K * K; ++i) out.prod[i] = a.prod[i] + b.prod[i];
    return out;
  }

  static Value Mul(const Value& a, const Value& b) {
    Value out;
    out.count = a.count * b.count;
    double ca = static_cast<double>(a.count);
    double cb = static_cast<double>(b.count);
    for (size_t i = 0; i < K; ++i) out.sum[i] = cb * a.sum[i] + ca * b.sum[i];
    for (size_t i = 0; i < K; ++i) {
      for (size_t j = 0; j < K; ++j) {
        out.prod[i * K + j] = cb * a.prod[i * K + j] + ca * b.prod[i * K + j] +
                              a.sum[i] * b.sum[j] + b.sum[i] * a.sum[j];
      }
    }
    return out;
  }

  static Value Neg(const Value& a) {
    Value out;
    out.count = -a.count;
    for (size_t i = 0; i < K; ++i) out.sum[i] = -a.sum[i];
    for (size_t i = 0; i < K * K; ++i) out.prod[i] = -a.prod[i];
    return out;
  }

  static bool IsZero(const Value& a) { return a == Value{}; }

  /// Lifting function for feature k: injects a data value x as feature k.
  static Value Lift(size_t k, double x) {
    Value v = One();
    v.sum[k] = x;
    v.prod[k * K + k] = x * x;
    return v;
  }
};

}  // namespace incr

#endif  // INCR_RING_COVAR_RING_H_
