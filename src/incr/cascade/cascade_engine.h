// CascadeEngine<R>: maintenance of a pair {Q1, Q2} where Q2 is
// q-hierarchical and Q1 rewrites over Q2's output (paper §4.2, Ex. 4.5,
// Fig. 5).
//
// Q2 is maintained by its own view tree (O(1)/update). Q1's rewriting
// Q1' = V_Q2 * (uncovered atoms) is maintained by a second view tree whose
// first atom is the materialized view V_Q2. V_Q2 is synchronized *lazily,
// during Q2's enumeration* (the piggybacking of the paper): each enumerated
// Q2 tuple is diffed against the stored copy and the delta is propagated
// into Q1''s tree; tuples that disappeared from Q2's output are found by an
// epoch mark-and-sweep whose cost is amortized against the enumeration
// itself. Updates to Q1's uncovered atoms propagate immediately.
//
// Consequently (paper conditions (i)+(ii)): enumerating Q2 and then Q1
// gives both outputs with amortized constant update time and constant
// delay. Enumerating Q1 without having enumerated Q2 first is still
// correct here — the engine syncs on demand — but the sync cost is then
// borne by the Q1 request.
#ifndef INCR_CASCADE_CASCADE_ENGINE_H_
#define INCR_CASCADE_CASCADE_ENGINE_H_

#include <string>
#include <utility>
#include <vector>

#include "incr/core/view_tree.h"
#include "incr/engines/engine.h"
#include "incr/query/properties.h"
#include "incr/query/rewriting.h"

namespace incr {

template <RingType R>
class CascadeEngine : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  using typename IvmEngine<R>::Sink;

  static StatusOr<CascadeEngine> Make(const Query& q1, const Query& q2) {
    if (!IsQHierarchical(q2)) {
      return Status::FailedPrecondition("q2 is not q-hierarchical");
    }
    auto tree2 = ViewTree<R>::Make(q2);
    if (!tree2.ok()) return tree2.status();
    auto rw = FindViewRewriting(q1, q2, kViewName, tree2->OutputSchema());
    if (!rw.ok()) return rw.status();
    auto tree1 = ViewTree<R>::Make(rw->rewritten);
    if (!tree1.ok()) return tree1.status();
    Status st = tree1->plan().CanEnumerate();
    if (!st.ok()) return st;
    return CascadeEngine(*std::move(tree1), *std::move(tree2),
                         *std::move(rw));
  }

  const Query& q2() const { return tree2_.query(); }
  const Query& rewritten_q1() const { return tree1_.query(); }

  /// True when the rewriting restored the best possible maintenance for Q1
  /// (the paper's premise in Ex. 4.5).
  bool RewrittenIsQHierarchical() const {
    return IsQHierarchical(tree1_.query());
  }

  // IvmEngine: Enumerate() yields Q1's output (the cascade's final answer);
  // EnumerateQ2 below gives the intermediate Q2 view.
  const char* name() const override { return "cascade"; }

  /// Enumerates Q2's output (constant delay) and piggybacks the V_Q2 sync.
  size_t EnumerateQ2(const Sink& sink) {
    ++epoch_;
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(tree2_); it.Valid(); it.Next()) {
      Tuple t = it.tuple();
      RV p = it.payload();
      auto& entry = vq2_.GetOrInsert(t, Entry{R::Zero(), 0});
      if (!(R::IsZero(R::Add(p, R::Neg(entry.payload))))) {
        tree1_.UpdateAtom(0, t, R::Add(p, R::Neg(entry.payload)));
        entry.payload = p;
      }
      entry.epoch = epoch_;
      if (sink) sink(t, p);
      ++n;
    }
    // Sweep tuples that left Q2's output (amortized against the size of the
    // previous enumeration).
    std::vector<Tuple> stale;
    for (const auto& e : vq2_) {
      if (e.value.epoch != epoch_) stale.push_back(e.key);
    }
    for (const Tuple& t : stale) {
      tree1_.UpdateAtom(0, t, R::Neg(vq2_.Find(t)->payload));
      vq2_.Erase(t);
    }
    dirty_ = false;
    return n;
  }

  /// Enumerates Q1's output. Constant delay when Q2 was enumerated after
  /// the last update (condition (ii) of §4.2); otherwise the deferred sync
  /// runs first.
  size_t EnumerateQ1(const Sink& sink) {
    if (dirty_) EnumerateQ2(nullptr);
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(tree1_); it.Valid(); it.Next()) {
      if (sink) sink(it.tuple(), it.payload());
      ++n;
    }
    return n;
  }

  /// Output schemas (free variables in enumeration order).
  Schema OutputSchemaQ1() const { return tree1_.OutputSchema(); }
  Schema OutputSchemaQ2() const { return tree2_.OutputSchema(); }

 protected:
  size_t EnumerateImpl(const Sink& sink) override { return EnumerateQ1(sink); }

  /// Routes a single-tuple delta to Q2's tree and/or Q1''s uncovered atoms.
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const RV& m) override {
    bool found = false;
    for (const Atom& a : tree2_.query().atoms()) {
      if (a.relation == rel) {
        tree2_.Update(rel, t, m);
        dirty_ = true;
        found = true;
        break;
      }
    }
    for (size_t a = 0; a < tree1_.query().atoms().size(); ++a) {
      if (tree1_.query().atoms()[a].relation == rel) {
        tree1_.UpdateAtom(a, t, m);
        found = true;
      }
    }
    INCR_CHECK(found);
  }

 private:
  static constexpr const char* kViewName = "__VQ2";

  struct Entry {
    RV payload;
    uint64_t epoch;
  };

  CascadeEngine(ViewTree<R> tree1, ViewTree<R> tree2, ViewRewriting rw)
      : tree1_(std::move(tree1)), tree2_(std::move(tree2)),
        rw_(std::move(rw)) {}

  ViewTree<R> tree1_;  // over the rewritten Q1 (atom 0 is V_Q2)
  ViewTree<R> tree2_;  // over Q2
  ViewRewriting rw_;
  DenseMap<Tuple, Entry, TupleHash, TupleEq> vq2_;
  uint64_t epoch_ = 0;
  bool dirty_ = true;
};

}  // namespace incr

#endif  // INCR_CASCADE_CASCADE_ENGINE_H_
