// IVMe for the simplest non-q-hierarchical query (paper §5, Fig. 7):
//
//   Q(A) = SUM_B R(A,B) * S(B)
//
// The trade-off engine of [20]: R is partitioned on B into light/heavy with
// threshold theta ~ N^eps, and the view
//
//   V_L(A) = SUM_B R_L(A,B) * S(B)
//
// is materialized eagerly for the light part only. This realizes the whole
// line between the lazy and eager extremes of Fig. 7:
//
//   preprocessing O(N);
//   single-tuple update O(N^eps): dR touches one V_L entry; dS(b) touches
//     the <= 2*theta entries of a light b and nothing for a heavy b;
//   enumeration delay O(N^{1-eps}): each output group A sums V_L(A) plus
//     one lookup per heavy B-value (at most ~2N^{1-eps} of them).
//
// eps=1 is the eager extreme (everything light: updates up to O(N), O(1)
// delay); eps=0 is the lazy extreme (O(1) updates, O(N) delay); eps=1/2
// touches the OMv-conditional lower-bound cuboid (weak Pareto optimality).
//
// Enumeration delay is *amortized*: candidates drawn from the heavy side
// may evaluate to zero and be skipped (the worst-case-delay bookkeeping of
// [20] is not implemented); with non-negative payloads only heavy-side
// candidates whose every heavy partner is absent from S are skipped.
#ifndef INCR_IVME_EPS_TRADEOFF_H_
#define INCR_IVME_EPS_TRADEOFF_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "incr/data/relation.h"
#include "incr/ivme/heavy_light.h"
#include "incr/ring/int_ring.h"

namespace incr {

class EpsTradeoffEngine {
 public:
  using Sink = std::function<void(Value /*a*/, int64_t /*Q(a)*/)>;

  explicit EpsTradeoffEngine(double epsilon);

  /// O(N) preprocessing: computes degrees, partitions R, builds V_L in one
  /// pass. Clears any existing state.
  void BulkLoad(const std::vector<std::pair<Tuple, int64_t>>& r,
                const std::vector<std::pair<Value, int64_t>>& s);

  /// Single-tuple update to R: payload(a,b) += m. O(theta) amortized.
  void UpdateR(Value a, Value b, int64_t m);

  /// Single-tuple update to S: payload(b) += m. O(theta) worst-case for a
  /// light b, O(1) for a heavy b.
  void UpdateS(Value b, int64_t m);

  /// Q(a) for one group: V_L(a) plus the heavy-side sum. O(#heavy keys).
  int64_t QueryOne(Value a) const;

  /// Enumerates all (a, Q(a)) with Q(a) != 0; returns the output size.
  size_t Enumerate(const Sink& sink) const { return EnumerateLimit(0, sink); }

  /// Like Enumerate but stops after emitting `limit` tuples (0 = no
  /// limit). Used to measure per-tuple delay without paying for the whole
  /// output.
  size_t EnumerateLimit(size_t limit, const Sink& sink) const;

  double epsilon() const { return epsilon_; }
  int64_t theta() const { return r_->theta(); }
  size_t NumHeavyKeys() const { return r_->heavy_keys().size(); }
  int64_t num_migrations() const { return migrations_; }
  int64_t num_major_rebalances() const { return major_rebalances_; }
  size_t Size() const { return r_->size() + s_.size(); }

  /// Partition invariants plus V_L == its definition (tests).
  bool InvariantsHold() const;

 private:
  static int64_t Theta(double epsilon, int64_t n);

  /// Adds (sign=+1) or removes (sign=-1) key b's light-part contributions
  /// to V_L.
  void ApplyGroupToView(Value b, int64_t sign);
  void MaybeMigrate(Value b);
  void MaybeMajorRebalance();

  double epsilon_;
  // R stored as (B, A): the partition key (B) first.
  std::unique_ptr<HeavyLightRelation> r_;
  Relation<IntRing> s_;    // schema (B)
  Relation<IntRing> v_l_;  // schema (A)
  int64_t n0_ = 0;
  int64_t migrations_ = 0;
  int64_t major_rebalances_ = 0;
};

}  // namespace incr

#endif  // INCR_IVME_EPS_TRADEOFF_H_
