#include "incr/ivme/triangle.h"

#include <cmath>
#include <utility>
#include <vector>

#include "incr/util/check.h"

namespace incr {

namespace {

constexpr size_t kByFirst = 0;
constexpr size_t kBySecond = 1;

Relation<IntRing> MakeBinary() {
  Relation<IntRing> r(Schema{0, 1});
  r.AddIndex(Schema{0});
  r.AddIndex(Schema{1});
  return r;
}

}  // namespace

// ---------------------------------------------------------------- Naive --

NaiveTriangleCounter::NaiveTriangleCounter()
    : r_(MakeBinary()), s_(MakeBinary()), t_(MakeBinary()) {}

void NaiveTriangleCounter::Update(TriangleRel rel, Value x, Value y,
                                  int64_t m) {
  Relation<IntRing>* rels[3] = {&r_, &s_, &t_};
  rels[static_cast<int>(rel)]->Apply(Tuple{x, y}, m);
}

int64_t NaiveTriangleCounter::Count() const {
  // For each R(a,b): intersect the C-lists of S(b,*) and T(*,a), scanning
  // the smaller list and probing the other — the classic worst-case-optimal
  // evaluation pattern for the triangle join.
  int64_t count = 0;
  for (const auto& re : r_) {
    Value a = re.key[0], b = re.key[1];
    const auto* sg = s_.index(kByFirst).Group(Tuple{b});
    const auto* tg = t_.index(kBySecond).Group(Tuple{a});
    if (sg == nullptr || tg == nullptr) continue;
    int64_t acc = 0;
    if (sg->size() <= tg->size()) {
      for (const Tuple& st : *sg) {
        acc += s_.Payload(st) * t_.Payload(Tuple{st[1], a});
      }
    } else {
      for (const Tuple& tt : *tg) {
        acc += t_.Payload(tt) * s_.Payload(Tuple{b, tt[0]});
      }
    }
    count += re.value * acc;
  }
  return count;
}

// ---------------------------------------------------------------- Delta --

DeltaTriangleCounter::DeltaTriangleCounter()
    : r_(MakeBinary()), s_(MakeBinary()), t_(MakeBinary()) {}

void DeltaTriangleCounter::Update(TriangleRel rel, Value x, Value y,
                                  int64_t m) {
  Relation<IntRing>* rels[3] = {&r_, &s_, &t_};
  int i = static_cast<int>(rel);
  // The query is cyclically symmetric: a delta (x, y) to rels[i] joins
  // rels[i+1](y, z) with rels[i+2](z, x). Scan the smaller adjacency list.
  Relation<IntRing>& nxt = *rels[(i + 1) % 3];
  Relation<IntRing>& nxt2 = *rels[(i + 2) % 3];
  const auto* g1 = nxt.index(kByFirst).Group(Tuple{y});
  const auto* g2 = nxt2.index(kBySecond).Group(Tuple{x});
  int64_t acc = 0;
  if (g1 != nullptr && g2 != nullptr) {
    if (g1->size() <= g2->size()) {
      for (const Tuple& t : *g1) {
        acc += nxt.Payload(t) * nxt2.Payload(Tuple{t[1], x});
      }
    } else {
      for (const Tuple& t : *g2) {
        acc += nxt2.Payload(t) * nxt.Payload(Tuple{y, t[0]});
      }
    }
  }
  count_ += m * acc;
  rels[i]->Apply(Tuple{x, y}, m);
}

// --------------------------------------------------------- Materialized --

MaterializedTriangleCounter::MaterializedTriangleCounter()
    : r_(MakeBinary()), s_(MakeBinary()), t_(MakeBinary()),
      v_st_(Schema{0, 1}) {}  // V_ST is only probed by full key: no indexes

void MaterializedTriangleCounter::Update(TriangleRel rel, Value x, Value y,
                                         int64_t m) {
  switch (rel) {
    case TriangleRel::kR: {
      // dQ = dR(a,b) * V_ST(b,a): one lookup (Ex. 3.2).
      count_ += m * v_st_.Payload(Tuple{y, x});
      r_.Apply(Tuple{x, y}, m);
      break;
    }
    case TriangleRel::kS: {
      // dV_ST(b,A) = dS(b,c) * T(c,A); dQ = SUM_A R(A,b) * dV_ST(b,A).
      Value b = x, c = y;
      const auto* tg = t_.index(kByFirst).Group(Tuple{c});
      if (tg != nullptr) {
        for (const Tuple& tt : *tg) {
          Value a = tt[1];
          int64_t d = m * t_.Payload(tt);
          count_ += r_.Payload(Tuple{a, b}) * d;
          v_st_.Apply(Tuple{b, a}, d);
        }
      }
      s_.Apply(Tuple{b, c}, m);
      break;
    }
    case TriangleRel::kT: {
      // dV_ST(B,a) = S(B,c) * dT(c,a); dQ = SUM_B R(a,B) * dV_ST(B,a).
      Value c = x, a = y;
      const auto* sg = s_.index(kBySecond).Group(Tuple{c});
      if (sg != nullptr) {
        for (const Tuple& st : *sg) {
          Value b = st[0];
          int64_t d = s_.Payload(st) * m;
          count_ += r_.Payload(Tuple{a, b}) * d;
          v_st_.Apply(Tuple{b, a}, d);
        }
      }
      t_.Apply(Tuple{c, a}, m);
      break;
    }
  }
}

// ------------------------------------------------------------- IVM-eps --

int64_t IvmEpsTriangleCounter::Theta(double epsilon, int64_t n) {
  if (n <= 1) return 1;
  double t = std::pow(static_cast<double>(n), epsilon);
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(t)));
}

IvmEpsTriangleCounter::IvmEpsTriangleCounter(double epsilon)
    // Auxiliary views are only probed by full key: no indexes needed.
    : views_{Relation<IntRing>(Schema{0, 1}), Relation<IntRing>(Schema{0, 1}),
             Relation<IntRing>(Schema{0, 1})},
      epsilon_(epsilon) {
  INCR_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
  for (auto& rel : rels_) {
    rel = std::make_unique<HeavyLightRelation>(1);
  }
}

int64_t IvmEpsTriangleCounter::DeltaCount(int i, Value x, Value y,
                                          int64_t m) const {
  const HeavyLightRelation& nxt = *rels_[(i + 1) % 3];
  const HeavyLightRelation& nxt2 = *rels_[(i + 2) % 3];
  int64_t acc = 0;
  if (nxt.PartOf(y) == HeavyLightRelation::kLight) {
    // Light join key: scan its group (< 2*theta tuples) and probe the third
    // relation. Covers the (L,L) and (L,H) skew-aware deltas of §3.3.
    const auto* g = nxt.Group(y);
    if (g != nullptr) {
      for (const Tuple& t : *g) {
        acc += nxt.light().Payload(t) * nxt2.Payload(t[1], x);
      }
    }
  } else {
    // Heavy join key.
    // (H,H): iterate the <= 2N/theta heavy keys of the third relation.
    for (const auto& hk : nxt2.heavy_keys()) {
      Value z = hk.key;
      acc += nxt.heavy().Payload(Tuple{y, z}) *
             nxt2.heavy().Payload(Tuple{z, x});
    }
    // (H,L): one lookup in the precomputed auxiliary view.
    acc += views_[i].Payload(Tuple{y, x});
  }
  return m * acc;
}

void IvmEpsTriangleCounter::MaintainViews(int i,
                                          HeavyLightRelation::Part part,
                                          Value x, Value y, int64_t d) {
  if (part == HeavyLightRelation::kHeavy) {
    // rels_[i] appears as the heavy factor of views_[(i+2)%3]:
    //   views_[j](x, w) += d * rels_[i+1]_L(y, w).
    Relation<IntRing>& view = views_[(i + 2) % 3];
    const HeavyLightRelation& nxt = *rels_[(i + 1) % 3];
    if (nxt.PartOf(y) == HeavyLightRelation::kLight) {
      const auto* g = nxt.Group(y);
      if (g != nullptr) {
        for (const Tuple& t : *g) {
          view.Apply(Tuple{x, t[1]}, d * nxt.light().Payload(t));
        }
      }
    }
  } else {
    // rels_[i] appears as the light factor of views_[(i+1)%3]:
    //   views_[j](u, y) += rels_[i+2]_H(u, x) * d.
    Relation<IntRing>& view = views_[(i + 1) % 3];
    const HeavyLightRelation& prv = *rels_[(i + 2) % 3];
    const auto* g = prv.GroupByOther(HeavyLightRelation::kHeavy, x);
    if (g != nullptr) {
      for (const Tuple& t : *g) {
        view.Apply(Tuple{t[0], y}, prv.heavy().Payload(t) * d);
      }
    }
  }
}

void IvmEpsTriangleCounter::ApplyGroupToViews(int i,
                                              HeavyLightRelation::Part as_part,
                                              Value key, int64_t sign) {
  const auto* g = rels_[i]->Group(key);
  if (g == nullptr) return;
  // Copy: MaintainViews touches other relations/views, never rels_[i], but
  // the group pointer must stay valid across Apply calls on views.
  std::vector<Tuple> group = *g;
  const Relation<IntRing>& part_rel =
      rels_[i]->part(rels_[i]->PartOf(key));
  for (const Tuple& t : group) {
    MaintainViews(i, as_part, t[0], t[1], sign * part_rel.Payload(t));
  }
}

void IvmEpsTriangleCounter::MaybeMigrate(int i, Value key) {
  HeavyLightRelation& rel = *rels_[i];
  if (rel.ShouldPromote(key)) {
    ApplyGroupToViews(i, HeavyLightRelation::kLight, key, -1);
    rel.Migrate(key);
    ApplyGroupToViews(i, HeavyLightRelation::kHeavy, key, +1);
    ++migrations_;
  } else if (rel.ShouldDemote(key)) {
    ApplyGroupToViews(i, HeavyLightRelation::kHeavy, key, -1);
    rel.Migrate(key);
    ApplyGroupToViews(i, HeavyLightRelation::kLight, key, +1);
    ++migrations_;
  }
}

void IvmEpsTriangleCounter::Update(TriangleRel r, Value x, Value y,
                                   int64_t m) {
  if (m == 0) return;
  int i = static_cast<int>(r);
  count_ += DeltaCount(i, x, y, m);
  HeavyLightRelation::Part part = rels_[i]->Apply(x, y, m);
  MaintainViews(i, part, x, y, m);
  MaybeMigrate(i, x);
  MaybeMajorRebalance();
}

void IvmEpsTriangleCounter::MaybeMajorRebalance() {
  int64_t n = 0;
  for (const auto& rel : rels_) n += static_cast<int64_t>(rel->size());
  if (n0_ == 0 ? n == 0 : (n < 2 * n0_ && 2 * n > n0_)) return;
  ++major_rebalances_;
  n0_ = n;
  int64_t theta = Theta(epsilon_, n);
  for (auto& rel : rels_) {
    std::vector<std::pair<Tuple, int64_t>> tuples;
    rel->ExtractAll(&tuples);
    auto fresh = std::make_unique<HeavyLightRelation>(theta);
    for (const auto& [t, payload] : tuples) {
      fresh->Apply(t[0], t[1], payload);
    }
    // Initial split at theta (between the 2*theta promotion and theta/2
    // demotion thresholds, maximizing hysteresis slack on both sides).
    std::vector<Value> heavy;
    for (const auto& e : fresh->light().index(HeavyLightRelation::kByKey)
                             .groups()) {
      if (fresh->Degree(e.key[0]) >= theta) heavy.push_back(e.key[0]);
    }
    for (Value k : heavy) fresh->Migrate(k);
    *rel = std::move(*fresh);
  }
  RebuildViews();
}

void IvmEpsTriangleCounter::RebuildViews() {
  for (int j = 0; j < 3; ++j) {
    views_[j].Clear();
    const HeavyLightRelation& hrel = *rels_[(j + 1) % 3];
    const HeavyLightRelation& lrel = *rels_[(j + 2) % 3];
    for (const auto& e : hrel.heavy()) {
      Value u = e.key[0], z = e.key[1];
      const auto* g =
          lrel.light().index(HeavyLightRelation::kByKey).Group(Tuple{z});
      if (g == nullptr) continue;
      for (const Tuple& t : *g) {
        views_[j].Apply(Tuple{u, t[1]}, e.value * lrel.light().Payload(t));
      }
    }
  }
}

bool IvmEpsTriangleCounter::InvariantsHold() const {
  for (const auto& rel : rels_) {
    if (!rel->InvariantsHold()) return false;
  }
  // Views must equal their definition, recomputed from scratch.
  for (int j = 0; j < 3; ++j) {
    Relation<IntRing> expect(Schema{0, 1});
    const HeavyLightRelation& hrel = *rels_[(j + 1) % 3];
    const HeavyLightRelation& lrel = *rels_[(j + 2) % 3];
    for (const auto& e : hrel.heavy()) {
      const auto* g =
          lrel.light().index(HeavyLightRelation::kByKey).Group(Tuple{e.key[1]});
      if (g == nullptr) continue;
      for (const Tuple& t : *g) {
        expect.Apply(Tuple{e.key[0], t[1]}, e.value * lrel.light().Payload(t));
      }
    }
    if (expect.size() != views_[j].size()) return false;
    for (const auto& e : expect) {
      if (views_[j].Payload(e.key) != e.value) return false;
    }
  }
  return true;
}

}  // namespace incr
