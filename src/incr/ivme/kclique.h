// k-clique counting under updates (paper §3.3's pointer [10]: Dhulipala,
// Liu, Shun, Yu — parallel batch-dynamic k-clique counting; here the
// sequential dynamic counters for k = 3, 4 on an undirected graph).
//
// The graph is a single undirected edge relation (edges stored both ways).
// On an edge update {u,v}, the count delta is the number of (k-2)-cliques
// in the common neighborhood of u and v:
//   k=3: |N(u) ∩ N(v)|                       — O(min deg) per update
//   k=4: #edges inside N(u) ∩ N(v)           — O(min deg^2) worst case
// Exact under arbitrary insert/delete interleavings; multiplicity-free
// (an edge is present or absent — multigraph cliques are not defined).
#ifndef INCR_IVME_KCLIQUE_H_
#define INCR_IVME_KCLIQUE_H_

#include <cstdint>
#include <vector>

#include "incr/data/dense_map.h"
#include "incr/data/grouped_index.h"
#include "incr/data/tuple.h"
#include "incr/util/status.h"

namespace incr {

class KCliqueCounter {
 public:
  /// `k` in {3, 4}.
  explicit KCliqueCounter(int k);

  /// Inserts (present=true) or deletes the undirected edge {u, v}.
  /// Self-loops are ignored; inserting a present edge (or deleting an
  /// absent one) is a no-op returning false.
  bool SetEdge(Value u, Value v, bool present);

  bool HasEdge(Value u, Value v) const;

  /// The number of k-cliques in the current graph. O(1).
  int64_t Count() const { return count_; }

  size_t NumEdges() const { return edges_.size() / 2; }

  /// Recomputes the count from scratch (test oracle). O(n * deg^k).
  int64_t CountNaive() const;

 private:
  /// Neighbors of u (sorted vector semantics via grouped index).
  const std::vector<Tuple>* Neighbors(Value u) const {
    return adj_.Group(Tuple{u});
  }

  /// Number of (k-2)-cliques in N(u) ∩ N(v), excluding u and v.
  int64_t CommonCliques(Value u, Value v) const;

  int k_;
  int64_t count_ = 0;
  DenseMap<Tuple, char, TupleHash, TupleEq> edges_;  // both orientations
  GroupedIndex adj_{Schema{0, 1}, Schema{0}};        // u -> (u, w) rows
};

}  // namespace incr

#endif  // INCR_IVME_KCLIQUE_H_
