// Approximate triangle counting under updates (paper §3.3's pointer [29]:
// Lu & Tao, "Towards optimal dynamic indexes for approximate (and exact)
// triangle counting"): trading accuracy for update time.
//
// Implementation: deterministic edge sparsification. Every tuple is
// included in a sampled sub-database with probability p, decided by a hash
// of the tuple (so a later delete makes exactly the same coin flip and the
// sample stays consistent — no per-tuple state). The sample is maintained
// exactly by an inner IVMe counter; the estimator scales the sampled count
// by p^-3 (each triangle survives iff its three edges all survive,
// independent across triangles' distinct edges).
//
//   E[Estimate()] = Count(),  updates cost a p-fraction of exact IVMe.
#ifndef INCR_IVME_APPROX_TRIANGLE_H_
#define INCR_IVME_APPROX_TRIANGLE_H_

#include <cstdint>

#include "incr/ivme/triangle.h"
#include "incr/util/hash.h"

namespace incr {

class ApproxTriangleCounter {
 public:
  /// `p` in (0, 1]: sampling rate; `epsilon` for the inner IVMe counter.
  ApproxTriangleCounter(double p, double epsilon, uint64_t seed)
      : p_(p), threshold_(ThresholdFor(p)), seed_(seed), inner_(epsilon) {}

  void Update(TriangleRel rel, Value x, Value y, int64_t m) {
    if (!Sampled(rel, x, y)) return;
    inner_.Update(rel, x, y, m);
    ++sampled_updates_;
  }

  /// Unbiased estimator of the exact triangle count.
  double Estimate() const {
    return static_cast<double>(inner_.Count()) / (p_ * p_ * p_);
  }

  /// The exact count of the sampled sub-database.
  int64_t SampledCount() const { return inner_.Count(); }

  /// Fraction of updates that reached the inner counter.
  int64_t sampled_updates() const { return sampled_updates_; }

  double p() const { return p_; }

 private:
  static uint64_t ThresholdFor(double p) {
    // p * 2^64 overflows uint64 at p = 1 (casting out-of-range doubles is
    // UB); clamp explicitly.
    if (p >= 1.0) return UINT64_MAX;
    if (p <= 0.0) return 0;
    return static_cast<uint64_t>(p * 18446744073709551616.0);  // p * 2^64
  }

  bool Sampled(TriangleRel rel, Value x, Value y) const {
    uint64_t h = Mix64(seed_ ^ Mix64(static_cast<uint64_t>(rel)));
    h = HashCombine(h, static_cast<uint64_t>(x));
    h = HashCombine(h, static_cast<uint64_t>(y));
    return h <= threshold_;
  }

  double p_;
  uint64_t threshold_;
  uint64_t seed_;
  IvmEpsTriangleCounter inner_;
  int64_t sampled_updates_ = 0;
};

}  // namespace incr

#endif  // INCR_IVME_APPROX_TRIANGLE_H_
