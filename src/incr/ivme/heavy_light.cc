#include "incr/ivme/heavy_light.h"

#include "incr/util/check.h"

namespace incr {

namespace {
Relation<IntRing> MakePart() {
  Relation<IntRing> r(Schema{0, 1});
  size_t by_key = r.AddIndex(Schema{0});
  size_t by_other = r.AddIndex(Schema{1});
  INCR_CHECK(by_key == HeavyLightRelation::kByKey);
  INCR_CHECK(by_other == HeavyLightRelation::kByOther);
  return r;
}
}  // namespace

HeavyLightRelation::HeavyLightRelation(int64_t theta)
    : theta_(theta), parts_{MakePart(), MakePart()} {
  INCR_CHECK(theta_ >= 1);
}

HeavyLightRelation::Part HeavyLightRelation::Apply(Value key, Value other,
                                                   int64_t d) {
  if (d == 0) return PartOf(key);
  Part p = PartOf(key);
  Relation<IntRing>& rel = parts_[p];
  Tuple t{key, other};
  bool existed = rel.Contains(t);
  rel.Apply(t, d);
  bool exists = rel.Contains(t);
  if (existed != exists) {
    int64_t& deg = degrees_.GetOrInsert(key, 0);
    deg += exists ? 1 : -1;
    INCR_DCHECK(deg >= 0);
    if (deg == 0 && p == kLight) degrees_.Erase(key);
  }
  return p;
}

void HeavyLightRelation::Migrate(Value key) {
  Part from = PartOf(key);
  Part to = from == kLight ? kHeavy : kLight;
  // Copy the group out first: Apply mutates the index we'd be iterating.
  std::vector<Tuple> group;
  const std::vector<Tuple>* g = parts_[from].index(kByKey).Group(Tuple{key});
  if (g != nullptr) group = *g;
  for (const Tuple& t : group) {
    int64_t payload = parts_[from].Payload(t);
    parts_[from].Apply(t, -payload);
    parts_[to].Apply(t, payload);
  }
  if (to == kHeavy) {
    heavy_keys_.GetOrInsert(key, 1);
  } else {
    heavy_keys_.Erase(key);
    if (Degree(key) == 0) degrees_.Erase(key);
  }
}

int64_t HeavyLightRelation::Payload(Value key, Value other) const {
  return parts_[PartOf(key)].Payload(Tuple{key, other});
}

const std::vector<Tuple>* HeavyLightRelation::Group(Value key) const {
  return parts_[PartOf(key)].index(kByKey).Group(Tuple{key});
}

void HeavyLightRelation::ExtractAll(
    std::vector<std::pair<Tuple, int64_t>>* out) const {
  for (int p = 0; p < 2; ++p) {
    for (const auto& e : parts_[p]) out->emplace_back(e.key, e.value);
  }
}

bool HeavyLightRelation::InvariantsHold() const {
  // Light keys: degree < 2*theta. Heavy keys: 2*degree >= theta.
  for (const auto& e : parts_[kLight].index(kByKey).groups()) {
    Value key = e.key[0];
    if (heavy_keys_.Find(key) != nullptr) return false;  // parts overlap
    if (Degree(key) >= 2 * theta_) return false;
    if (static_cast<int64_t>(e.value.size()) != Degree(key)) return false;
  }
  for (const auto& e : heavy_keys_) {
    if (2 * Degree(e.key) < theta_) return false;
  }
  // Every heavy part group's key must be marked heavy.
  for (const auto& e : parts_[kHeavy].index(kByKey).groups()) {
    if (heavy_keys_.Find(e.key[0]) == nullptr) return false;
  }
  return true;
}

}  // namespace incr
