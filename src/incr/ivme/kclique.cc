#include "incr/ivme/kclique.h"

#include <algorithm>

#include "incr/util/check.h"

namespace incr {

KCliqueCounter::KCliqueCounter(int k) : k_(k) {
  INCR_CHECK(k == 3 || k == 4);
}

bool KCliqueCounter::HasEdge(Value u, Value v) const {
  return edges_.Find(Tuple{u, v}) != nullptr;
}

int64_t KCliqueCounter::CommonCliques(Value u, Value v) const {
  // Scan the smaller neighborhood, probe against the other endpoint.
  Value scan = u, probe = v;
  const auto* ns = Neighbors(scan);
  const auto* np = Neighbors(probe);
  if (ns == nullptr || np == nullptr) return 0;
  if (ns->size() > np->size()) {
    std::swap(scan, probe);
    std::swap(ns, np);
  }
  std::vector<Value> common;
  common.reserve(ns->size());
  for (const Tuple& t : *ns) {
    Value w = t[1];
    if (w == u || w == v) continue;
    if (HasEdge(probe, w)) common.push_back(w);
  }
  if (k_ == 3) return static_cast<int64_t>(common.size());
  // k=4: count edges inside the common neighborhood.
  int64_t inner_edges = 0;
  for (size_t i = 0; i < common.size(); ++i) {
    for (size_t j = i + 1; j < common.size(); ++j) {
      if (HasEdge(common[i], common[j])) ++inner_edges;
    }
  }
  return inner_edges;
}

bool KCliqueCounter::SetEdge(Value u, Value v, bool present) {
  if (u == v) return false;
  bool has = HasEdge(u, v);
  if (has == present) return false;
  if (present) {
    // Count new cliques through {u,v} BEFORE adding the edge.
    count_ += CommonCliques(u, v);
    edges_.GetOrInsert(Tuple{u, v}, 1);
    edges_.GetOrInsert(Tuple{v, u}, 1);
    adj_.Insert(Tuple{u, v});
    adj_.Insert(Tuple{v, u});
  } else {
    edges_.Erase(Tuple{u, v});
    edges_.Erase(Tuple{v, u});
    adj_.Erase(Tuple{u, v});
    adj_.Erase(Tuple{v, u});
    // Count destroyed cliques AFTER removing the edge (same quantity).
    count_ -= CommonCliques(u, v);
  }
  return true;
}

int64_t KCliqueCounter::CountNaive() const {
  // Enumerate ordered vertex tuples u < v < w (< x) with all edges.
  std::vector<Value> vertices;
  for (const auto& e : adj_.groups()) vertices.push_back(e.key[0]);
  std::sort(vertices.begin(), vertices.end());
  int64_t count = 0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (!HasEdge(vertices[i], vertices[j])) continue;
      for (size_t l = j + 1; l < vertices.size(); ++l) {
        if (!HasEdge(vertices[i], vertices[l]) ||
            !HasEdge(vertices[j], vertices[l])) {
          continue;
        }
        if (k_ == 3) {
          ++count;
          continue;
        }
        for (size_t m = l + 1; m < vertices.size(); ++m) {
          if (HasEdge(vertices[i], vertices[m]) &&
              HasEdge(vertices[j], vertices[m]) &&
              HasEdge(vertices[l], vertices[m])) {
            ++count;
          }
        }
      }
    }
  }
  return count;
}

}  // namespace incr
