#include "incr/ivme/eps_tradeoff.h"

#include <cmath>

#include "incr/util/check.h"

namespace incr {

int64_t EpsTradeoffEngine::Theta(double epsilon, int64_t n) {
  if (n <= 1) return 1;
  return std::max<int64_t>(
      1, static_cast<int64_t>(
             std::llround(std::pow(static_cast<double>(n), epsilon))));
}

EpsTradeoffEngine::EpsTradeoffEngine(double epsilon)
    : epsilon_(epsilon),
      r_(std::make_unique<HeavyLightRelation>(1)),
      s_(Schema{1}),
      v_l_(Schema{0}) {
  INCR_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
}

void EpsTradeoffEngine::BulkLoad(
    const std::vector<std::pair<Tuple, int64_t>>& r,
    const std::vector<std::pair<Value, int64_t>>& s) {
  s_.Clear();
  v_l_.Clear();
  for (const auto& [b, m] : s) s_.Apply(Tuple{b}, m);

  int64_t n = static_cast<int64_t>(r.size() + s.size());
  n0_ = n;
  int64_t theta = Theta(epsilon_, n);
  r_ = std::make_unique<HeavyLightRelation>(theta);
  // Insert all of R (everything lands light), then promote keys at >= theta
  // (between the theta/2 demotion and 2*theta promotion thresholds).
  for (const auto& [t, m] : r) {
    r_->Apply(t[1], t[0], m);  // stored as (B, A)
  }
  std::vector<Value> heavy;
  for (const auto& e :
       r_->light().index(HeavyLightRelation::kByKey).groups()) {
    if (r_->Degree(e.key[0]) >= theta) heavy.push_back(e.key[0]);
  }
  for (Value b : heavy) r_->Migrate(b);
  // One pass over the light part builds V_L.
  for (const auto& e : r_->light()) {
    Value b = e.key[0], a = e.key[1];
    v_l_.Apply(Tuple{a}, e.value * s_.Payload(Tuple{b}));
  }
}

void EpsTradeoffEngine::UpdateR(Value a, Value b, int64_t m) {
  if (m == 0) return;
  auto part = r_->Apply(b, a, m);
  if (part == HeavyLightRelation::kLight) {
    v_l_.Apply(Tuple{a}, m * s_.Payload(Tuple{b}));
  }
  MaybeMigrate(b);
  MaybeMajorRebalance();
}

void EpsTradeoffEngine::UpdateS(Value b, int64_t m) {
  if (m == 0) return;
  s_.Apply(Tuple{b}, m);
  if (r_->PartOf(b) == HeavyLightRelation::kLight) {
    const auto* g = r_->Group(b);
    if (g != nullptr) {
      for (const Tuple& t : *g) {
        v_l_.Apply(Tuple{t[1]}, r_->light().Payload(t) * m);
      }
    }
  }
  MaybeMajorRebalance();
}

int64_t EpsTradeoffEngine::QueryOne(Value a) const {
  int64_t q = v_l_.Payload(Tuple{a});
  for (const auto& hk : r_->heavy_keys()) {
    Value b = hk.key;
    q += r_->heavy().Payload(Tuple{b, a}) * s_.Payload(Tuple{b});
  }
  return q;
}

size_t EpsTradeoffEngine::EnumerateLimit(size_t limit,
                                         const Sink& sink) const {
  size_t n = 0;
  // Candidates with light contributions.
  for (const auto& e : v_l_) {
    int64_t q = QueryOne(e.key[0]);
    if (q != 0) {
      if (sink) sink(e.key[0], q);
      if (++n == limit) return n;
    }
  }
  // Heavy-only candidates: distinct A values of the heavy part not already
  // covered by V_L.
  for (const auto& g :
       r_->heavy().index(HeavyLightRelation::kByOther).groups()) {
    Value a = g.key[0];
    if (v_l_.Contains(Tuple{a})) continue;
    int64_t q = QueryOne(a);
    if (q != 0) {
      if (sink) sink(a, q);
      if (++n == limit) return n;
    }
  }
  return n;
}

void EpsTradeoffEngine::ApplyGroupToView(Value b, int64_t sign) {
  const auto* g = r_->Group(b);
  if (g == nullptr) return;
  int64_t sb = s_.Payload(Tuple{b});
  if (sb == 0) return;
  const Relation<IntRing>& part = r_->part(r_->PartOf(b));
  for (const Tuple& t : *g) {
    v_l_.Apply(Tuple{t[1]}, sign * part.Payload(t) * sb);
  }
}

void EpsTradeoffEngine::MaybeMigrate(Value b) {
  if (r_->ShouldPromote(b)) {
    ApplyGroupToView(b, -1);  // leaves the light part
    r_->Migrate(b);
    ++migrations_;
  } else if (r_->ShouldDemote(b)) {
    r_->Migrate(b);
    ApplyGroupToView(b, +1);  // joins the light part
    ++migrations_;
  }
}

void EpsTradeoffEngine::MaybeMajorRebalance() {
  int64_t n = static_cast<int64_t>(Size());
  if (n0_ == 0 ? n == 0 : (n < 2 * n0_ && 2 * n > n0_)) return;
  ++major_rebalances_;
  std::vector<std::pair<Tuple, int64_t>> r;
  r_->ExtractAll(&r);
  for (auto& [t, m] : r) {
    Value b = t[0], a = t[1];
    t = Tuple{a, b};  // BulkLoad expects (A, B)
    (void)m;
  }
  std::vector<std::pair<Value, int64_t>> s;
  for (const auto& e : s_) s.emplace_back(e.key[0], e.value);
  int64_t saved_migrations = migrations_;
  int64_t saved_rebalances = major_rebalances_;
  BulkLoad(r, s);
  migrations_ = saved_migrations;
  major_rebalances_ = saved_rebalances;
}

bool EpsTradeoffEngine::InvariantsHold() const {
  if (!r_->InvariantsHold()) return false;
  // V_L == SUM_B R_L(A,B)*S(B), recomputed from scratch.
  Relation<IntRing> expect(Schema{0});
  for (const auto& e : r_->light()) {
    expect.Apply(Tuple{e.key[1]}, e.value * s_.Payload(Tuple{e.key[0]}));
  }
  if (expect.size() != v_l_.size()) return false;
  for (const auto& e : expect) {
    if (v_l_.Payload(e.key) != e.value) return false;
  }
  return true;
}

}  // namespace incr
