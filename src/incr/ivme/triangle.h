// Maintainers for the triangle count query of paper §3:
//
//   Q = SUM_{A,B,C} R(A,B) * S(B,C) * T(C,A)
//
// over the ring of integers. Four strategies, matching the paper's
// exposition and complexity claims for a single-tuple update on a database
// of size N:
//
//   NaiveTriangleCounter         recompute on demand       O(N^{3/2}) query
//   DeltaTriangleCounter         first-order deltas (§3.1) O(N) update
//   MaterializedTriangleCounter  V_ST = S x T (§3.2)       O(1) for dR,
//                                                          O(N) for dS/dT
//   IvmEpsTriangleCounter        IVMe heavy/light (§3.3)   O(N^max(e,1-e)),
//                                                          O(sqrt N) at e=1/2
//
// All four maintain exact counts under arbitrary interleavings of inserts
// and deletes; IvmEps additionally performs minor rebalancing (key
// migrations) and major rebalancing (threshold reset on 2x size drift).
#ifndef INCR_IVME_TRIANGLE_H_
#define INCR_IVME_TRIANGLE_H_

#include <cstdint>
#include <memory>

#include "incr/data/relation.h"
#include "incr/ivme/heavy_light.h"
#include "incr/ring/int_ring.h"

namespace incr {

/// The three relations of the triangle query. Column convention: R(A,B),
/// S(B,C), T(C,A) — each relation's *first* column is its partition key in
/// the IVMe strategy (A, B, C respectively).
enum class TriangleRel { kR = 0, kS = 1, kT = 2 };

/// Common interface of all triangle-count maintainers.
class TriangleCounter {
 public:
  virtual ~TriangleCounter() = default;

  /// Applies a single-tuple update: payload(rel, (x,y)) += m.
  virtual void Update(TriangleRel rel, Value x, Value y, int64_t m) = 0;

  /// The current count SUM R*S*T. O(1) for all but the naive strategy.
  virtual int64_t Count() const = 0;

  /// True iff the count is positive: triangle *detection*, the Boolean
  /// query Q_b of §3.4.
  bool Detect() const { return Count() > 0; }

  virtual const char* name() const = 0;
};

/// Recomputes the count from scratch on every Count() call, using sorted
/// intersection of adjacency lists (worst-case O(N^{3/2})-style evaluation).
class NaiveTriangleCounter : public TriangleCounter {
 public:
  NaiveTriangleCounter();
  void Update(TriangleRel rel, Value x, Value y, int64_t m) override;
  int64_t Count() const override;
  const char* name() const override { return "recompute"; }

  size_t Size() const { return r_.size() + s_.size() + t_.size(); }

 private:
  Relation<IntRing> r_, s_, t_;  // each indexed by col0 (id 0), col1 (id 1)
};

/// First-order delta queries (§3.1): on dR(a,b), adds
/// m * SUM_C S(b,C)*T(C,a) by scanning the smaller adjacency list.
class DeltaTriangleCounter : public TriangleCounter {
 public:
  DeltaTriangleCounter();
  void Update(TriangleRel rel, Value x, Value y, int64_t m) override;
  int64_t Count() const override { return count_; }
  const char* name() const override { return "delta"; }

 private:
  Relation<IntRing> r_, s_, t_;
  int64_t count_ = 0;
};

/// Higher-order maintenance with one materialized view (§3.2, Ex. 3.2):
/// V_ST(B,A) = SUM_C S(B,C)*T(C,A). Updates to R are O(1); updates to S and
/// T must also maintain V_ST and cost O(N).
class MaterializedTriangleCounter : public TriangleCounter {
 public:
  MaterializedTriangleCounter();
  void Update(TriangleRel rel, Value x, Value y, int64_t m) override;
  int64_t Count() const override { return count_; }
  const char* name() const override { return "materialized"; }

  /// |V_ST|, the extra storage the paper prices at O(N^2).
  size_t ViewSize() const { return v_st_.size(); }

 private:
  Relation<IntRing> r_, s_, t_;
  Relation<IntRing> v_st_;  // schema (B, A)
  int64_t count_ = 0;
};

/// The adaptive IVMe maintainer (§3.3): heavy/light partitioning of all
/// three relations with three auxiliary views
///   V_ST(B,A) = SUM_C S_H(B,C)*T_L(C,A)   (serves dR with heavy B)
///   V_TR(C,B) = SUM_A T_H(C,A)*R_L(A,B)   (serves dS with heavy C)
///   V_RS(A,C) = SUM_B R_H(A,B)*S_L(B,C)   (serves dT with heavy A)
/// and amortized rebalancing. Worst-case single-tuple update time
/// O(N^max(eps,1-eps)); eps = 1/2 gives the optimal O(sqrt N) (Thm. 3.4).
class IvmEpsTriangleCounter : public TriangleCounter {
 public:
  /// `epsilon` in [0,1] selects the heavy/light threshold N^epsilon.
  explicit IvmEpsTriangleCounter(double epsilon);
  void Update(TriangleRel rel, Value x, Value y, int64_t m) override;
  int64_t Count() const override { return count_; }
  const char* name() const override { return "ivm-eps"; }

  double epsilon() const { return epsilon_; }
  int64_t theta() const { return rels_[0]->theta(); }
  int64_t num_major_rebalances() const { return major_rebalances_; }
  int64_t num_migrations() const { return migrations_; }
  /// Current number of heavy partition keys of relation i (0=R,1=S,2=T).
  size_t NumHeavyKeys(int i) const { return rels_[i]->heavy_keys().size(); }

  /// Partition + view invariants; exercised by the property tests.
  bool InvariantsHold() const;

 private:
  // Relations in TriangleRel order; rels_[i] joins rels_[(i+1)%3] on the
  // latter's partition key, cyclically: R(A,B), S(B,C), T(C,A).
  // views_[i] covers updates to rels_[i] whose join key is heavy in
  // rels_[(i+1)%3] and light in rels_[(i+2)%3]:
  //   views_[0] = V_ST, views_[1] = V_TR, views_[2] = V_RS.
  std::unique_ptr<HeavyLightRelation> rels_[3];
  Relation<IntRing> views_[3];
  double epsilon_;
  int64_t n0_ = 0;  // database size at last major rebalance
  int64_t count_ = 0;
  int64_t major_rebalances_ = 0;
  int64_t migrations_ = 0;

  static int64_t Theta(double epsilon, int64_t n);

  /// m * SUM_y next(key,y)*nextnext(y,close): the delta-count contribution
  /// of a single-tuple update to rels_[i] with tuple (x=close-side... ).
  int64_t DeltaCount(int i, Value x, Value y, int64_t m) const;

  /// Adds `sign`* contributions of tuple (x,y) of rels_[i] (in part `part`)
  /// to the one view that involves that part of rels_[i].
  void MaintainViews(int i, HeavyLightRelation::Part part, Value x, Value y,
                     int64_t d);

  /// Minor rebalance of rels_[i]'s `key` if thresholds are crossed.
  void MaybeMigrate(int i, Value key);

  /// Adds (`sign`=+1) or removes (-1) all view contributions of rels_[i]'s
  /// current group of `key`, interpreting the group as being in `as_part`.
  void ApplyGroupToViews(int i, HeavyLightRelation::Part as_part, Value key,
                         int64_t sign);

  void MaybeMajorRebalance();
  void RebuildViews();
};

}  // namespace incr

#endif  // INCR_IVME_TRIANGLE_H_
