// Heavy/light data partitioning (paper §3.3, the IVMe technique of Kara,
// Ngo, Nikolic, Olteanu, Zhang [18,19]).
//
// A binary relation K(key, other) over Z is split on its first column into a
// light part (keys of low degree) and a heavy part (keys of high degree).
// With threshold theta ~ N^eps the parts obey, at all times:
//
//   * every light key has degree  < 2*theta      (so light scans are cheap)
//   * every heavy key has degree >= theta/2      (so there are at most
//                                                  2N/theta heavy keys)
//
// The factor-2 hysteresis between the promotion threshold (2*theta) and the
// demotion threshold (theta/2) is what makes *minor rebalancing* (moving one
// key's group between parts) amortized: a key must absorb Theta(theta)
// updates between consecutive migrations [19]. *Major rebalancing* (picking
// a new theta when the database size N has drifted by 2x) is coordinated by
// the owner, which rebuilds its auxiliary views at the same time.
//
// Migration is owner-driven: Apply never migrates on its own, so the owner
// can subtract view contributions before the move and add them back after.
#ifndef INCR_IVME_HEAVY_LIGHT_H_
#define INCR_IVME_HEAVY_LIGHT_H_

#include <cstdint>
#include <vector>

#include "incr/data/relation.h"
#include "incr/ring/int_ring.h"

namespace incr {

class HeavyLightRelation {
 public:
  enum Part : int { kLight = 0, kHeavy = 1 };

  /// Index ids valid for both parts.
  static constexpr size_t kByKey = 0;    // group by column 0 (partition key)
  static constexpr size_t kByOther = 1;  // group by column 1

  explicit HeavyLightRelation(int64_t theta);

  int64_t theta() const { return theta_; }

  /// Which part currently holds tuples with this key.
  Part PartOf(Value key) const {
    return heavy_keys_.Find(key) != nullptr ? kHeavy : kLight;
  }

  /// Number of tuples with this key (across both parts; exactly one part is
  /// ever populated for a given key).
  int64_t Degree(Value key) const {
    const int64_t* d = degrees_.Find(key);
    return d == nullptr ? 0 : *d;
  }

  /// Applies payload delta d to (key, other); returns the part it landed in.
  /// Does not migrate; callers follow up with ShouldPromote/ShouldDemote.
  Part Apply(Value key, Value other, int64_t d);

  /// True if `key` is light and its degree reached the promotion threshold.
  bool ShouldPromote(Value key) const {
    return PartOf(key) == kLight && Degree(key) >= 2 * theta_;
  }

  /// True if `key` is heavy and its degree fell below the demotion
  /// threshold.
  bool ShouldDemote(Value key) const {
    return PartOf(key) == kHeavy && 2 * Degree(key) < theta_;
  }

  /// Moves every tuple of `key` to the other part. The group contents are
  /// unchanged, so owners may compute view deltas from either side of the
  /// move.
  void Migrate(Value key);

  const Relation<IntRing>& part(Part p) const { return parts_[p]; }
  const Relation<IntRing>& light() const { return parts_[kLight]; }
  const Relation<IntRing>& heavy() const { return parts_[kHeavy]; }

  /// Payload of (key, other) regardless of part.
  int64_t Payload(Value key, Value other) const;

  /// Tuples of `key`'s group (in whichever part holds it); nullptr if none.
  const std::vector<Tuple>* Group(Value key) const;

  /// Tuples (key, other) for a given `other`, within one part.
  const std::vector<Tuple>* GroupByOther(Part p, Value other) const {
    return parts_[p].index(kByOther).Group(Tuple{other});
  }

  /// Dense iteration over the current heavy keys (at most 2N/theta of them).
  const DenseMap<Value, char>& heavy_keys() const { return heavy_keys_; }

  size_t size() const {
    return parts_[kLight].size() + parts_[kHeavy].size();
  }

  /// Copies all (key, other) -> payload entries out (for major rebalances).
  void ExtractAll(std::vector<std::pair<Tuple, int64_t>>* out) const;

  /// Checks the partition invariants stated above; used by tests.
  bool InvariantsHold() const;

 private:
  int64_t theta_;
  Relation<IntRing> parts_[2];
  DenseMap<Value, int64_t> degrees_;
  DenseMap<Value, char> heavy_keys_;
};

}  // namespace incr

#endif  // INCR_IVME_HEAVY_LIGHT_H_
