// The Online Vector-Matrix-Vector multiplication problem (paper §3.4,
// Def. 3.3) and the reduction of Thm. 3.4 from OuMv to incremental triangle
// detection.
//
// The OuMv conjecture states that no algorithm solves OuMv in O(n^{3-g})
// for any g > 0. Thm. 3.4 turns a triangle-detection maintainer with
// O(N^{1/2-g}) update time and O(N^{1-g}) delay into a subcubic OuMv
// algorithm; the reduction here lets the benchmarks *exhibit* that
// transfer: plugging the IVMe maintainer (O(sqrt N) updates) into the
// reduction yields the conjectured-optimal O(n^2 * n^{1/2 * 2}) = O(n^3)
// boundary behavior, while the first-order delta maintainer (O(N) updates)
// drives the reduction to O(n^4)-style growth.
#ifndef INCR_LOWERBOUND_OUMV_H_
#define INCR_LOWERBOUND_OUMV_H_

#include <cstdint>
#include <vector>

#include "incr/ivme/triangle.h"
#include "incr/util/rng.h"

namespace incr {

/// An OuMv instance: an n x n Boolean matrix and n (u, v) vector pairs,
/// all stored as 64-bit-packed bitsets.
class OuMvInstance {
 public:
  OuMvInstance(size_t n, double density, uint64_t seed);

  size_t n() const { return n_; }

  bool Matrix(size_t row, size_t col) const {
    return GetBit(matrix_, row * words_ + col / 64, col % 64);
  }
  bool U(size_t round, size_t i) const {
    return GetBit(us_, round * words_ + i / 64, i % 64);
  }
  bool V(size_t round, size_t j) const {
    return GetBit(vs_, round * words_ + j / 64, j % 64);
  }

  /// Row `row` of the matrix as packed words (words() of them).
  const uint64_t* MatrixRow(size_t row) const {
    return matrix_.data() + row * words_;
  }
  const uint64_t* VRow(size_t round) const { return vs_.data() + round * words_; }

  size_t words() const { return words_; }

 private:
  static bool GetBit(const std::vector<uint64_t>& bits, size_t word,
                     size_t bit) {
    return (bits[word] >> bit) & 1;
  }

  size_t n_;
  size_t words_;
  std::vector<uint64_t> matrix_;  // n rows x words_
  std::vector<uint64_t> us_;      // n rounds x words_
  std::vector<uint64_t> vs_;
};

/// Direct evaluation: u_r^T M v_r per round with packed-word AND; the
/// O(n^3 / 64) baseline anchor.
std::vector<bool> SolveOuMvDirect(const OuMvInstance& inst);

/// Thm. 3.4's Algorithm B: encode M into S once, then per round rewrite R
/// (from u_r) and T (from v_r) via single-tuple updates and read off the
/// Boolean query Q_b from the maintained triangle count.
std::vector<bool> SolveOuMvViaIvm(const OuMvInstance& inst,
                                  TriangleCounter* counter);

}  // namespace incr

#endif  // INCR_LOWERBOUND_OUMV_H_
