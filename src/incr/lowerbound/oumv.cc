#include "incr/lowerbound/oumv.h"

namespace incr {

OuMvInstance::OuMvInstance(size_t n, double density, uint64_t seed)
    : n_(n), words_((n + 63) / 64) {
  Rng rng(seed);
  auto fill = [&](std::vector<uint64_t>& bits) {
    bits.assign(n_ * words_, 0);
    for (size_t r = 0; r < n_; ++r) {
      for (size_t c = 0; c < n_; ++c) {
        if (rng.Chance(density)) {
          bits[r * words_ + c / 64] |= uint64_t{1} << (c % 64);
        }
      }
    }
  };
  fill(matrix_);
  fill(us_);
  fill(vs_);
}

std::vector<bool> SolveOuMvDirect(const OuMvInstance& inst) {
  size_t n = inst.n();
  size_t w = inst.words();
  std::vector<bool> out(n, false);
  for (size_t round = 0; round < n; ++round) {
    const uint64_t* v = inst.VRow(round);
    bool hit = false;
    for (size_t i = 0; i < n && !hit; ++i) {
      if (!inst.U(round, i)) continue;
      const uint64_t* row = inst.MatrixRow(i);
      for (size_t k = 0; k < w; ++k) {
        if (row[k] & v[k]) {
          hit = true;
          break;
        }
      }
    }
    out[round] = hit;
  }
  return out;
}

std::vector<bool> SolveOuMvViaIvm(const OuMvInstance& inst,
                                  TriangleCounter* counter) {
  size_t n = inst.n();
  const Value a = -1;  // the constant vertex of the construction
  // Step 1: S(i,j) = M[i,j].
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (inst.Matrix(i, j)) {
        counter->Update(TriangleRel::kS, static_cast<Value>(i),
                        static_cast<Value>(j), 1);
      }
    }
  }
  std::vector<bool> out(n, false);
  std::vector<Value> live_r, live_t;
  for (size_t round = 0; round < n; ++round) {
    // Steps 2a/2b: delete the previous round's R and T tuples, insert the
    // new vectors' tuples — at most 4n single-tuple updates.
    for (Value i : live_r) counter->Update(TriangleRel::kR, a, i, -1);
    for (Value j : live_t) counter->Update(TriangleRel::kT, j, a, -1);
    live_r.clear();
    live_t.clear();
    for (size_t i = 0; i < n; ++i) {
      if (inst.U(round, i)) {
        counter->Update(TriangleRel::kR, a, static_cast<Value>(i), 1);
        live_r.push_back(static_cast<Value>(i));
      }
    }
    for (size_t j = 0; j < n; ++j) {
      if (inst.V(round, j)) {
        counter->Update(TriangleRel::kT, static_cast<Value>(j), a, 1);
        live_t.push_back(static_cast<Value>(j));
      }
    }
    // Step 2c: u^T M v == Q_b.
    out[round] = counter->Detect();
  }
  return out;
}

}  // namespace incr
