#include "incr/workload/imdb.h"

#include "incr/util/check.h"

namespace incr {

ImdbWorkload::ImdbWorkload(uint64_t seed)
    : rng_(seed),
      query_("imdb", Schema{kMid, kCid},
             {Atom{"Title", Schema{kMid}},
              Atom{"MovieCompanies", Schema{kMid, kCid}},
              Atom{"Company", Schema{kCid}}}) {}

VariableOrder ImdbWorkload::Order() const {
  auto vo = VariableOrder::FromPath(query_, {kMid, kCid});
  INCR_CHECK(vo.ok());
  return *std::move(vo);
}

std::vector<ImdbWorkload::Update> ImdbWorkload::NextValidBatch(
    int64_t n_companies, int64_t fanout) {
  std::vector<Update> batch;
  // Insert phase: for each new company, first the movies and the
  // movie-company records (dangling FKs!), then the company row that
  // resolves them all at once — the adversarial order of Ex. 4.13.
  for (int64_t c = 0; c < n_companies; ++c) {
    Value cid = next_cid_++;
    std::vector<Value> movies;
    for (int64_t f = 0; f < fanout; ++f) {
      Value mid = next_mid_++;
      batch.push_back({"Title", Tuple{mid}, +1});
      batch.push_back({"MovieCompanies", Tuple{mid, cid}, +1});
      movies.push_back(mid);
    }
    batch.push_back({"Company", Tuple{cid}, +1});
    live_.emplace_back(cid, std::move(movies));
  }
  // Delete phase: retire ~half as many companies, deleting the company row
  // *first* (leaving its movie records dangling), then the children.
  int64_t deletions = n_companies / 2;
  for (int64_t d = 0; d < deletions && !live_.empty(); ++d) {
    size_t i = rng_.Uniform(live_.size());
    auto [cid, movies] = live_[i];
    live_[i] = live_.back();
    live_.pop_back();
    batch.push_back({"Company", Tuple{cid}, -1});
    for (Value mid : movies) {
      batch.push_back({"MovieCompanies", Tuple{mid, cid}, -1});
      batch.push_back({"Title", Tuple{mid}, -1});
    }
  }
  return batch;
}

}  // namespace incr
