#include "incr/workload/retailer.h"

#include "incr/util/check.h"

namespace incr {

RetailerWorkload::RetailerWorkload(int64_t n_locations, int64_t n_dates,
                                   int64_t n_items, uint64_t seed)
    : n_locations_(n_locations), n_dates_(n_dates), n_items_(n_items),
      rng_(seed),
      item_zipf_(static_cast<uint64_t>(n_items), /*s=*/1.05),
      query_("retailer", Schema{kLocn, kDate, kKsn, kZip},
             {Atom{"Inventory", Schema{kLocn, kDate, kKsn}},
              Atom{"Location", Schema{kLocn, kZip}},
              Atom{"Census", Schema{kZip}},
              Atom{"Item", Schema{kKsn}},
              Atom{"Weather", Schema{kLocn, kDate}}}) {
  // ~10 locations per zip code.
  int64_t n_zips = std::max<int64_t>(1, n_locations / 10);
  for (int64_t l = 0; l < n_locations; ++l) {
    locations_.push_back(Tuple{l, l % n_zips});
  }
  for (int64_t z = 0; z < n_zips; ++z) censuses_.push_back(Tuple{z});
  for (int64_t k = 0; k < n_items_; ++k) items_.push_back(Tuple{k});
  for (int64_t l = 0; l < n_locations; ++l) {
    for (int64_t d = 0; d < n_dates_; ++d) {
      weathers_.push_back(Tuple{l, d});
    }
  }
}

VariableOrder RetailerWorkload::Order() const {
  // locn -> date -> ksn and locn -> zip.
  auto vo = VariableOrder::FromParents(
      query_, {kLocn, kDate, kKsn, kZip}, {-1, 0, 1, 0});
  INCR_CHECK(vo.ok());
  return *std::move(vo);
}

Tuple RetailerWorkload::NextInventoryInsert() {
  Value locn = rng_.UniformInt(0, n_locations_ - 1);
  Value date = rng_.UniformInt(0, n_dates_ - 1);
  Value ksn = static_cast<Value>(item_zipf_.Sample(rng_));
  return Tuple{locn, date, ksn};
}

}  // namespace incr
