// TPC-H join structures (paper §4.4): the paper reports that 8 Boolean /
// 13 non-Boolean TPC-H queries are hierarchical, and that the functional
// dependencies of the TPC-H schema make 4 + 4 more (q-)hierarchical
// (Olteanu, Huang, Koch; SPROUT, ICDE'09).
//
// This module encodes the *flattened main join block* of each of the 22
// queries over the join-key variables (selection constants, arithmetic and
// correlated subqueries dropped; exists/in subqueries flattened into the
// join where they join on a key). The exact per-query Boolean/non-Boolean
// encodings of the ICDE'09 study are not public, so the census bench
// reports our counts under this documented encoding next to the paper's
// (see EXPERIMENTS.md E13) — the claim being reproduced is the *mechanism
// and magnitude*: key FDs flip a substantial fraction of the workload into
// the (q-)hierarchical class.
#ifndef INCR_WORKLOAD_TPCH_H_
#define INCR_WORKLOAD_TPCH_H_

#include <string>
#include <vector>

#include "incr/query/fd.h"
#include "incr/query/query.h"

namespace incr {

struct TpchQuery {
  int number = 0;       // 1..22
  Query boolean;        // no free variables
  Query full;           // every join variable free
};

/// Join variables of the TPC-H schema, as dense Var ids. Self-joins and
/// role-distinguished relations (two nations in Q7/Q8, a second lineitem
/// in Q17/Q18/Q21) use the primed variables.
struct TpchVars {
  static constexpr Var rk = 0;    // regionkey
  static constexpr Var nk = 1;    // nationkey (customer side)
  static constexpr Var nk2 = 2;   // nationkey (supplier side)
  static constexpr Var sk = 3;    // suppkey
  static constexpr Var ck = 4;    // custkey
  static constexpr Var pk = 5;    // partkey
  static constexpr Var ok = 6;    // orderkey
  static constexpr Var ok2 = 7;   // orderkey of a lineitem self-join
  static constexpr Var sk2 = 8;   // suppkey of a lineitem self-join
};

/// The 22 flattened join structures.
std::vector<TpchQuery> TpchQueries();

/// Key-derived functional dependencies applicable to `q`, generated per
/// occurrence (role) of the keyed relations: nation(X,Y) gives X -> Y,
/// supplier(X,Y) gives X -> Y, customer(X,Y) gives X -> Y, orders(X,Y)
/// gives X -> Y.
FdSet TpchFdsFor(const Query& q);

}  // namespace incr

#endif  // INCR_WORKLOAD_TPCH_H_
