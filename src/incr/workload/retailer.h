// Synthetic Retailer workload (paper Fig. 4 / Ex. 4.10): the 5-relation
// join of the F-IVM experiments, with the same structure as the real
// dataset the paper uses (which is not publicly distributed — see
// DESIGN.md's substitution table):
//
//   Inventory(locn, date, ksn)   the fact relation; the update stream
//   Location(locn, zip)          each location in one zip (fd locn -> zip)
//   Census(zip)                  demographics per zip
//   Item(ksn)                    item catalog
//   Weather(locn, date)          weather per location and day
//
//   Q(locn, date, ksn, zip) = the natural join of all five.
//
// The query is NOT q-hierarchical (Ex. 4.10) but admits the F-IVM variable
// order locn -> {date -> ksn, zip} under which inserts to Inventory (and
// Weather, Location) propagate in O(1); this is the order all four Fig. 4
// strategies share. Dimension relations are preloaded; the measured stream
// inserts Inventory tuples, as in the paper's experiment.
#ifndef INCR_WORKLOAD_RETAILER_H_
#define INCR_WORKLOAD_RETAILER_H_

#include <cstdint>
#include <vector>

#include "incr/data/tuple.h"
#include "incr/query/query.h"
#include "incr/query/variable_order.h"
#include "incr/util/rng.h"

namespace incr {

class RetailerWorkload {
 public:
  // Variable ids.
  static constexpr Var kLocn = 0;
  static constexpr Var kDate = 1;
  static constexpr Var kKsn = 2;
  static constexpr Var kZip = 3;
  // Atom ids (order in the query).
  static constexpr size_t kInventory = 0;
  static constexpr size_t kLocation = 1;
  static constexpr size_t kCensus = 2;
  static constexpr size_t kItem = 3;
  static constexpr size_t kWeather = 4;

  RetailerWorkload(int64_t n_locations, int64_t n_dates, int64_t n_items,
                   uint64_t seed);

  const Query& query() const { return query_; }

  /// The F-IVM variable order described above.
  VariableOrder Order() const;

  /// Dimension-table contents (to preload before streaming).
  const std::vector<Tuple>& locations() const { return locations_; }
  const std::vector<Tuple>& censuses() const { return censuses_; }
  const std::vector<Tuple>& items() const { return items_; }
  const std::vector<Tuple>& weathers() const { return weathers_; }

  /// Next Inventory insert (locn, date, ksn); item choice is Zipf-skewed.
  Tuple NextInventoryInsert();

  int64_t n_locations() const { return n_locations_; }
  int64_t n_dates() const { return n_dates_; }

 private:
  int64_t n_locations_;
  int64_t n_dates_;
  int64_t n_items_;
  Rng rng_;
  ZipfSampler item_zipf_;
  Query query_;
  std::vector<Tuple> locations_, censuses_, items_, weathers_;
};

}  // namespace incr

#endif  // INCR_WORKLOAD_RETAILER_H_
