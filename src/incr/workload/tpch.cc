#include "incr/workload/tpch.h"

namespace incr {

namespace {

using V = TpchVars;

TpchQuery Make(int number, std::vector<Atom> atoms) {
  TpchQuery q;
  q.number = number;
  Query boolean("tpch" + std::to_string(number) + "_b", Schema{}, atoms);
  Schema all = boolean.AllVars();
  q.boolean = boolean;
  q.full = Query("tpch" + std::to_string(number), all, std::move(atoms));
  return q;
}

}  // namespace

std::vector<TpchQuery> TpchQueries() {
  std::vector<TpchQuery> qs;
  // Q1: lineitem scan.
  qs.push_back(Make(1, {Atom{"lineitem", Schema{V::ok}}}));
  // Q2: part - partsupp - supplier - nation - region (min-cost subquery
  // flattened away).
  qs.push_back(Make(2, {Atom{"part", Schema{V::pk}},
                        Atom{"partsupp", Schema{V::pk, V::sk}},
                        Atom{"supplier", Schema{V::sk, V::nk}},
                        Atom{"nation", Schema{V::nk, V::rk}},
                        Atom{"region", Schema{V::rk}}}));
  // Q3: customer - orders - lineitem.
  qs.push_back(Make(3, {Atom{"customer", Schema{V::ck}},
                        Atom{"orders", Schema{V::ok, V::ck}},
                        Atom{"lineitem", Schema{V::ok}}}));
  // Q4: orders - lineitem (exists).
  qs.push_back(Make(4, {Atom{"orders", Schema{V::ok}},
                        Atom{"lineitem", Schema{V::ok}}}));
  // Q5: customer - orders - lineitem - supplier - nation - region, with
  // the customer and supplier sharing the nation.
  qs.push_back(Make(5, {Atom{"customer", Schema{V::ck, V::nk}},
                        Atom{"orders", Schema{V::ok, V::ck}},
                        Atom{"lineitem", Schema{V::ok, V::sk}},
                        Atom{"supplier", Schema{V::sk, V::nk}},
                        Atom{"nation", Schema{V::nk, V::rk}},
                        Atom{"region", Schema{V::rk}}}));
  // Q6: lineitem scan.
  qs.push_back(Make(6, {Atom{"lineitem", Schema{V::ok}}}));
  // Q7: supplier - lineitem - orders - customer with two nations.
  qs.push_back(Make(7, {Atom{"supplier", Schema{V::sk, V::nk2}},
                        Atom{"lineitem", Schema{V::ok, V::sk}},
                        Atom{"orders", Schema{V::ok, V::ck}},
                        Atom{"customer", Schema{V::ck, V::nk}},
                        Atom{"nation", Schema{V::nk}},
                        Atom{"nation", Schema{V::nk2}}}));
  // Q8: part - lineitem - supplier - orders - customer - nation x2 -
  // region (customer's nation reaches the region).
  qs.push_back(Make(8, {Atom{"part", Schema{V::pk}},
                        Atom{"lineitem", Schema{V::ok, V::pk, V::sk}},
                        Atom{"supplier", Schema{V::sk, V::nk2}},
                        Atom{"orders", Schema{V::ok, V::ck}},
                        Atom{"customer", Schema{V::ck, V::nk}},
                        Atom{"nation", Schema{V::nk, V::rk}},
                        Atom{"nation", Schema{V::nk2}},
                        Atom{"region", Schema{V::rk}}}));
  // Q9: part - lineitem - partsupp - supplier - orders - nation.
  qs.push_back(Make(9, {Atom{"part", Schema{V::pk}},
                        Atom{"lineitem", Schema{V::ok, V::pk, V::sk}},
                        Atom{"partsupp", Schema{V::pk, V::sk}},
                        Atom{"supplier", Schema{V::sk, V::nk}},
                        Atom{"orders", Schema{V::ok}},
                        Atom{"nation", Schema{V::nk}}}));
  // Q10: customer - orders - lineitem - nation.
  qs.push_back(Make(10, {Atom{"customer", Schema{V::ck, V::nk}},
                         Atom{"orders", Schema{V::ok, V::ck}},
                         Atom{"lineitem", Schema{V::ok}},
                         Atom{"nation", Schema{V::nk}}}));
  // Q11: partsupp - supplier - nation.
  qs.push_back(Make(11, {Atom{"partsupp", Schema{V::pk, V::sk}},
                         Atom{"supplier", Schema{V::sk, V::nk}},
                         Atom{"nation", Schema{V::nk}}}));
  // Q12: orders - lineitem.
  qs.push_back(Make(12, {Atom{"orders", Schema{V::ok}},
                         Atom{"lineitem", Schema{V::ok}}}));
  // Q13: customer - orders (outer join flattened).
  qs.push_back(Make(13, {Atom{"customer", Schema{V::ck}},
                         Atom{"orders", Schema{V::ok, V::ck}}}));
  // Q14: lineitem - part.
  qs.push_back(Make(14, {Atom{"lineitem", Schema{V::ok, V::pk}},
                         Atom{"part", Schema{V::pk}}}));
  // Q15: lineitem - supplier (revenue view on suppkey).
  qs.push_back(Make(15, {Atom{"lineitem", Schema{V::ok, V::sk}},
                         Atom{"supplier", Schema{V::sk}}}));
  // Q16: partsupp - part - supplier (NOT IN flattened).
  qs.push_back(Make(16, {Atom{"partsupp", Schema{V::pk, V::sk}},
                         Atom{"part", Schema{V::pk}},
                         Atom{"supplier", Schema{V::sk}}}));
  // Q17: lineitem - part with a correlated lineitem self-join on partkey.
  qs.push_back(Make(17, {Atom{"lineitem", Schema{V::ok, V::pk}},
                         Atom{"part", Schema{V::pk}},
                         Atom{"lineitem", Schema{V::ok2, V::pk}}}));
  // Q18: customer - orders - lineitem with a lineitem self-join on the
  // order key (the IN subquery).
  qs.push_back(Make(18, {Atom{"customer", Schema{V::ck}},
                         Atom{"orders", Schema{V::ok, V::ck}},
                         Atom{"lineitem", Schema{V::ok}},
                         Atom{"lineitem", Schema{V::ok}}}));
  // Q19: lineitem - part.
  qs.push_back(Make(19, {Atom{"lineitem", Schema{V::ok, V::pk}},
                         Atom{"part", Schema{V::pk}}}));
  // Q20: supplier - nation - partsupp - part - lineitem (subqueries
  // flattened onto the (pk, sk) correlation).
  qs.push_back(Make(20, {Atom{"supplier", Schema{V::sk, V::nk}},
                         Atom{"nation", Schema{V::nk}},
                         Atom{"partsupp", Schema{V::pk, V::sk}},
                         Atom{"part", Schema{V::pk}},
                         Atom{"lineitem", Schema{V::ok, V::pk, V::sk}}}));
  // Q21: supplier - lineitem - orders - nation with a second lineitem of
  // another supplier on the same order.
  qs.push_back(Make(21, {Atom{"supplier", Schema{V::sk, V::nk}},
                         Atom{"lineitem", Schema{V::ok, V::sk}},
                         Atom{"orders", Schema{V::ok}},
                         Atom{"nation", Schema{V::nk}},
                         Atom{"lineitem", Schema{V::ok, V::sk2}}}));
  // Q22: customer - orders (NOT EXISTS flattened).
  qs.push_back(Make(22, {Atom{"customer", Schema{V::ck}},
                         Atom{"orders", Schema{V::ok, V::ck}}}));
  return qs;
}

FdSet TpchFdsFor(const Query& q) {
  FdSet fds;
  for (const Atom& a : q.atoms()) {
    bool keyed_binary = a.relation == "nation" || a.relation == "supplier" ||
                        a.relation == "customer" || a.relation == "orders";
    if (keyed_binary && a.schema.size() == 2) {
      fds.push_back(Fd{Schema{a.schema[0]}, Schema{a.schema[1]}});
    }
  }
  return fds;
}

}  // namespace incr
