// Graph workloads for the triangle experiments (paper §3): random directed
// edge streams with optional power-law degree skew (skew drives the IVMe
// rebalancing machinery), plus a sliding-window mode producing interleaved
// inserts and deletes.
#ifndef INCR_WORKLOAD_GRAPH_H_
#define INCR_WORKLOAD_GRAPH_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "incr/data/tuple.h"
#include "incr/util/rng.h"

namespace incr {

class GraphStream {
 public:
  struct Edge {
    Value src;
    Value dst;
    int64_t delta;  // +1 insert, -1 delete
  };

  /// `n_vertices` domain, Zipf skew `s` on endpoints (0 = uniform), and a
  /// sliding window: once more than `window` edges are live, each insert is
  /// followed by the deletion of the oldest edge.
  GraphStream(int64_t n_vertices, double s, size_t window, uint64_t seed)
      : rng_(seed), zipf_(static_cast<uint64_t>(n_vertices), s),
        window_(window) {}

  /// The next update; alternates deletes in once the window is full.
  Edge Next() {
    if (window_ > 0 && live_.size() > window_ && !pending_delete_) {
      pending_delete_ = true;
      Edge e{live_.front()[0], live_.front()[1], -1};
      live_.pop_front();
      return e;
    }
    pending_delete_ = false;
    Value a = static_cast<Value>(zipf_.Sample(rng_));
    Value b = static_cast<Value>(zipf_.Sample(rng_));
    live_.push_back(Tuple{a, b});
    return Edge{a, b, +1};
  }

 private:
  Rng rng_;
  ZipfSampler zipf_;
  size_t window_;
  std::deque<Tuple> live_;
  bool pending_delete_ = false;
};

}  // namespace incr

#endif  // INCR_WORKLOAD_GRAPH_H_
