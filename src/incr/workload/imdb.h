// Synthetic IMDB/JOB-like workload (paper Ex. 4.13): the PK-FK join
//
//   Q(mid, cid) = Title(mid) * Movie_Companies(mid, cid) * Company(cid)
//
// with a *valid batch* generator: update sequences that may pass through
// inconsistent intermediate states (children inserted before their parents,
// parents deleted before their children) but restore consistency at batch
// boundaries — the regime in which Ex. 4.13 shows amortized O(1) updates.
#ifndef INCR_WORKLOAD_IMDB_H_
#define INCR_WORKLOAD_IMDB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "incr/data/tuple.h"
#include "incr/query/query.h"
#include "incr/query/variable_order.h"
#include "incr/util/rng.h"

namespace incr {

class ImdbWorkload {
 public:
  static constexpr Var kMid = 0;
  static constexpr Var kCid = 1;

  struct Update {
    std::string rel;  // "Title", "MovieCompanies", "Company"
    Tuple tuple;
    int64_t delta;  // +1 insert, -1 delete
  };

  explicit ImdbWorkload(uint64_t seed);

  const Query& query() const { return query_; }

  /// A maintenance order for the (non-hierarchical) query: mid -> cid.
  VariableOrder Order() const;

  /// Produces a valid batch: consistent before and after, adversarially
  /// out-of-order inside. `fanout` children reference each new company,
  /// and children are inserted *before* their company (resp. deleted after
  /// it), so per-update costs inside the batch are skewed exactly as in
  /// Ex. 4.13.
  std::vector<Update> NextValidBatch(int64_t n_companies, int64_t fanout);

 private:
  Rng rng_;
  Query query_;
  Value next_mid_ = 0;
  Value next_cid_ = 0;
  // Live companies with their movie lists (for delete phases).
  std::vector<std::pair<Value, std::vector<Value>>> live_;
};

}  // namespace incr

#endif  // INCR_WORKLOAD_IMDB_H_
