// CqapEngine<R>: maintenance + access-request engine for tractable CQAPs
// (paper §4.3, Thm. 4.8).
//
// The fracture's connected components are maintained independently, each by
// a view tree whose canonical variable order places the component's (fresh)
// input variables above its output variables. An access request binds every
// input variable — a root-path prefix of each component's tree — and
// enumerates the output tuples as the cross product of the components'
// enumerations, with constant delay and payloads multiplied across
// components.
#ifndef INCR_CQAP_CQAP_ENGINE_H_
#define INCR_CQAP_CQAP_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "incr/core/view_tree.h"
#include "incr/engines/engine.h"
#include "incr/query/cqap.h"
#include "incr/util/status.h"

namespace incr {

template <RingType R>
class CqapEngine : public IvmEngine<R> {
 public:
  using RV = typename R::Value;
  /// Receives each output tuple (over the CQAP's output schema, in its
  /// declared order) with its payload.
  using typename IvmEngine<R>::Sink;

  static StatusOr<CqapEngine> Make(const CqapQuery& q) {
    if (!IsTractableCqap(q)) {
      return Status::FailedPrecondition(
          "CQAP is not tractable (fracture not hierarchical / free-dominant "
          "/ input-dominant); Thm. 4.8 rules out O(1) update and delay");
    }
    CqapEngine e;
    e.cqap_ = q;
    e.fracture_ = ComputeFracture(q);
    for (const auto& comp : e.fracture_.components) {
      Schema fresh_inputs;
      for (const auto& [fresh, orig] : comp.inputs) {
        fresh_inputs.push_back(fresh);
      }
      auto vo = VariableOrder::CanonicalWithPriority(
          comp.query, [&](Var v) {
            if (SchemaContains(fresh_inputs, v)) return 0;
            if (comp.query.IsFree(v)) return 1;
            return 2;
          });
      if (!vo.ok()) return vo.status();
      auto tree = ViewTree<R>::Make(comp.query, *std::move(vo));
      if (!tree.ok()) return tree.status();
      Status st = tree->plan().CanEnumerate();
      if (!st.ok()) return st;
      e.trees_.push_back(
          std::make_unique<ViewTree<R>>(*std::move(tree)));
    }
    e.BuildAccessPlans();
    return e;
  }

  const CqapQuery& cqap() const { return cqap_; }
  size_t NumComponents() const { return trees_.size(); }

  // IvmEngine: access-request engines answer per-request, so Enumerate()
  // is only meaningful for CQAPs with no input variables (then it is the
  // single access Q(); otherwise it returns 0 and callers use Access).
  const char* name() const override { return "cqap"; }

  /// Access request: `input` holds one value per CQAP input variable, in
  /// the declared input order. Enumerates all output tuples with constant
  /// delay; returns their number.
  size_t Access(const Tuple& input, const Sink& sink) const {
    INCR_CHECK(input.size() == cqap_.input.size());
    Tuple out;
    out.resize(cqap_.output.size(), 0);
    RV acc = R::One();
    return AccessRec(0, input, &out, acc, sink);
  }

  /// Boolean access (all-input CQAPs like triangle detection): true iff
  /// the payload for this input tuple is non-zero.
  bool Check(const Tuple& input) const {
    return Access(input, nullptr) > 0;
  }

 protected:
  size_t EnumerateImpl(const Sink& sink) override {
    if (!cqap_.input.empty()) return 0;
    return Access(Tuple{}, sink);
  }

  /// Applies a single-tuple delta to every atom of relation `rel` across
  /// all components. O(1) per atom for tractable CQAPs.
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const RV& m) override {
    bool found = false;
    for (size_t ci = 0; ci < trees_.size(); ++ci) {
      const Query& cq = fracture_.components[ci].query;
      for (size_t a = 0; a < cq.atoms().size(); ++a) {
        if (cq.atoms()[a].relation == rel) {
          trees_[ci]->UpdateAtom(a, t, m);
          found = true;
        }
      }
    }
    INCR_CHECK(found);
  }

 private:
  struct AccessPlan {
    Binding binding_template;              // fresh input vars (values filled
                                           // per request)
    SmallVector<uint32_t, 4> input_slots;  // position in the request tuple
                                           // for each bound var
    // Output projection: tree output position -> global output position.
    std::vector<std::pair<uint32_t, uint32_t>> out_map;
  };

  void BuildAccessPlans() {
    plans_.resize(trees_.size());
    for (size_t ci = 0; ci < trees_.size(); ++ci) {
      AccessPlan& plan = plans_[ci];
      for (const auto& [fresh, orig] : fracture_.components[ci].inputs) {
        plan.binding_template.Bind(fresh, 0);
        auto pos = FindVar(cqap_.input, orig);
        INCR_CHECK(pos.has_value());
        plan.input_slots.push_back(*pos);
      }
      Schema tree_out = trees_[ci]->OutputSchema();
      for (uint32_t i = 0; i < tree_out.size(); ++i) {
        auto pos = FindVar(cqap_.output, tree_out[i]);
        if (pos.has_value()) plan.out_map.emplace_back(i, *pos);
      }
    }
  }

  size_t AccessRec(size_t ci, const Tuple& input, Tuple* out, const RV& acc,
                   const Sink& sink) const {
    if (R::IsZero(acc)) return 0;
    if (ci == trees_.size()) {
      if (sink) sink(*out, acc);
      return 1;
    }
    const AccessPlan& plan = plans_[ci];
    Binding binding = plan.binding_template;
    for (size_t i = 0; i < plan.input_slots.size(); ++i) {
      binding.values[i] = input[plan.input_slots[i]];
    }
    size_t n = 0;
    for (ViewTreeEnumerator<R> it(*trees_[ci], binding); it.Valid();
         it.Next()) {
      Tuple t = it.tuple();
      for (const auto& [from, to] : plan.out_map) (*out)[to] = t[from];
      n += AccessRec(ci + 1, input, out, R::Mul(acc, it.payload()), sink);
    }
    return n;
  }

  CqapQuery cqap_;
  Fracture fracture_;
  std::vector<std::unique_ptr<ViewTree<R>>> trees_;
  std::vector<AccessPlan> plans_;
};

}  // namespace incr

#endif  // INCR_CQAP_CQAP_ENGINE_H_
