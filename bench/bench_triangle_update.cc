// E1 (paper §3.1-3.3, Fig. 2 claims): single-tuple update time of the four
// triangle-count maintainers as the database size N grows.
//
// Paper's expected shape (per single-tuple update, database size N):
//   recompute     O(N^{3/2})  (per Count() request, not per update)
//   delta         O(N) worst case (§3.1's intersection argument)
//   materialized  O(1) for dR but O(N) for dS/dT        (Ex. 3.2)
//   ivm-eps(1/2)  O(sqrt N) worst case                   (§3.3)
//
// Three measurements:
//   (a) mean ns/update over a skewed insert/delete stream;
//   (b) a balanced-grid probe — the worst case for IVMe, where its cost
//       must grow like sqrt(N) (heavy keys everywhere);
//   (c) an adversarial skew probe — the worst case for first-order deltas
//       (two long lists to intersect, O(N)), which IVMe answers in O(1)
//       via its auxiliary view.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "incr/ivme/triangle.h"
#include "incr/util/rng.h"
#include "incr/workload/graph.h"

using namespace incr;
using namespace incr::bench;

namespace {

double MeasureMeanStream(TriangleCounter* c, int64_t n, uint64_t seed) {
  GraphStream load(/*n_vertices=*/n / 4 + 4, /*s=*/0.8, /*window=*/0, seed);
  for (int64_t i = 0; i < 3 * n; ++i) {
    auto e = load.Next();
    c->Update(static_cast<TriangleRel>(i % 3), e.src, e.dst, 1);
  }
  const int64_t kOps = 2000;
  GraphStream stream(n / 4 + 4, 0.8, static_cast<size_t>(n), seed + 1);
  Stopwatch sw;
  for (int64_t i = 0; i < kOps; ++i) {
    auto e = stream.Next();
    c->Update(static_cast<TriangleRel>(i % 3), e.src, e.dst, e.delta);
  }
  return NsPerOp(sw.ElapsedSeconds(), kOps);
}

// Balanced grid: ~sqrt(N)/2 keys x 2*sqrt(N) partners per relation, so
// every key is heavy at theta ~ sqrt(3N). Probe updates hit heavy keys and
// must pay Theta(#heavy) = Theta(sqrt N) in IVMe (and similar in delta).
double MeasureGridProbe(TriangleCounter* c, int64_t n) {
  int64_t d = std::max<int64_t>(2, static_cast<int64_t>(std::sqrt(
                                       static_cast<double>(n))));
  int64_t keys = std::max<int64_t>(2, d / 2);
  int64_t partners = 2 * d;
  for (Value i = 0; i < keys; ++i) {
    for (Value j = 0; j < partners; ++j) {
      c->Update(TriangleRel::kR, i, j % keys, 1);
      c->Update(TriangleRel::kS, i, j % keys, 1);
      c->Update(TriangleRel::kT, i, j % keys, 1);
    }
  }
  const int64_t kOps = 600;
  Stopwatch sw;
  for (int64_t i = 0; i < kOps / 2; ++i) {
    Value b = i % keys;
    c->Update(TriangleRel::kS, b, 1, 1);
    c->Update(TriangleRel::kS, b, 1, -1);
  }
  return NsPerOp(sw.ElapsedSeconds(), kOps);
}

// Adversarial skew: S(b*, c_i) and T(c_i, a*) for i < n. A dR(a*, b*)
// update forces the first-order delta to intersect two lists of length n;
// IVMe looks it up in V_ST in O(1) (b* is heavy in S, every c_i light in
// T).
double MeasureSkewProbe(TriangleCounter* c, int64_t n) {
  const Value a_star = 1'000'000, b_star = 1'000'001;
  for (Value i = 0; i < n; ++i) {
    c->Update(TriangleRel::kS, b_star, i, 1);
    c->Update(TriangleRel::kT, i, a_star, 1);
  }
  const int64_t kOps = 200;
  Stopwatch sw;
  for (int64_t i = 0; i < kOps / 2; ++i) {
    c->Update(TriangleRel::kR, a_star, b_star, 1);
    c->Update(TriangleRel::kR, a_star, b_star, -1);
  }
  return NsPerOp(sw.ElapsedSeconds(), kOps);
}

double MeasureRecompute(int64_t n, uint64_t seed) {
  NaiveTriangleCounter c;
  GraphStream load(n / 4 + 4, 0.8, 0, seed);
  for (int64_t i = 0; i < 3 * n; ++i) {
    auto e = load.Next();
    c.Update(static_cast<TriangleRel>(i % 3), e.src, e.dst, 1);
  }
  Stopwatch sw;
  int64_t count = 0;
  const int kReps = 3;
  for (int i = 0; i < kReps; ++i) count += c.Count();
  (void)count;
  return sw.ElapsedSeconds() * 1e9 / kReps;
}

}  // namespace

int main() {
  Section("E1a: mean update time, skewed stream (ns/update)");
  Row({"N(/rel)", "recompute", "delta", "matzd", "ivm-eps"});
  std::vector<double> xs, rec, del, mat, eps;
  for (int64_t n : {1000, 4000, 16000, 64000}) {
    DeltaTriangleCounter delta;
    MaterializedTriangleCounter matzd;
    IvmEpsTriangleCounter ivme(0.5);
    double rd = MeasureMeanStream(&delta, n, 7);
    double rm = MeasureMeanStream(&matzd, n, 7);
    double re = MeasureMeanStream(&ivme, n, 7);
    double rr = MeasureRecompute(n, 7);
    xs.push_back(static_cast<double>(n));
    rec.push_back(rr);
    del.push_back(rd);
    mat.push_back(rm);
    eps.push_back(re);
    Row({FmtInt(n), Fmt(rr), Fmt(rd), Fmt(rm), Fmt(re)});
  }
  Row({"slope", Fmt(LogLogSlope(xs, rec), "%.2f"),
       Fmt(LogLogSlope(xs, del), "%.2f"), Fmt(LogLogSlope(xs, mat), "%.2f"),
       Fmt(LogLogSlope(xs, eps), "%.2f")});
  std::printf("paper: recompute ~1.5; incremental maintainers grow much "
              "slower on average\n");

  Section("E1b: balanced-grid probe — IVMe's sqrt(N) worst case");
  Row({"N(/rel)", "delta", "ivm-eps"});
  std::vector<double> gx, gd, ge;
  for (int64_t n : {4000, 16000, 64000, 256000}) {
    DeltaTriangleCounter delta;
    IvmEpsTriangleCounter ivme(0.5);
    double d = MeasureGridProbe(&delta, n);
    double e = MeasureGridProbe(&ivme, n);
    gx.push_back(static_cast<double>(n));
    gd.push_back(d);
    ge.push_back(e);
    Row({FmtInt(n), Fmt(d), Fmt(e)});
  }
  Row({"slope", Fmt(LogLogSlope(gx, gd), "%.2f"),
       Fmt(LogLogSlope(gx, ge), "%.2f")});
  std::printf("paper: both ~0.5 here — the grid meets IVMe's O(sqrt N) "
              "bound\n");

  Section("E1c: adversarial skew probe — delta's O(N) worst case");
  Row({"N", "delta", "matzd", "ivm-eps"});
  std::vector<double> sx, sd, sm, se;
  for (int64_t n : {4000, 16000, 64000, 256000}) {
    DeltaTriangleCounter delta;
    MaterializedTriangleCounter matzd;
    IvmEpsTriangleCounter ivme(0.5);
    double d = MeasureSkewProbe(&delta, n);
    double m = MeasureSkewProbe(&matzd, n);
    double e = MeasureSkewProbe(&ivme, n);
    sx.push_back(static_cast<double>(n));
    sd.push_back(d);
    sm.push_back(m);
    se.push_back(e);
    Row({FmtInt(n), Fmt(d), Fmt(m), Fmt(e)});
  }
  Row({"slope", Fmt(LogLogSlope(sx, sd), "%.2f"),
       Fmt(LogLogSlope(sx, sm), "%.2f"), Fmt(LogLogSlope(sx, se), "%.2f")});
  std::printf("paper: delta ~1 (intersects two N-lists); materialized and "
              "ivm-eps answer dR in O(1) via their views\n");
  return 0;
}
