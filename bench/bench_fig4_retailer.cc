// E2 (paper Fig. 4): throughput of the four IVM strategies — eager-list
// (DBToaster), eager-fact (F-IVM), lazy-list (delta-query recompute),
// lazy-fact (hybrid) — on the Retailer-like 5-way join, under batches of
// 1000 single-tuple Inventory inserts with a full-output enumeration
// request every INTVAL batches.
//
// Paper's expected shape: the factorized strategies dominate the list
// strategies except when enumeration is very rare; lazy-list degrades
// catastrophically as enumeration becomes frequent (the paper's lazy-list
// DNFs at INTVAL=10); eager-list pays per-update output refresh costs that
// grow with the join fan-out.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "incr/engines/strategies.h"
#include "incr/ring/int_ring.h"
#include "incr/workload/retailer.h"

using namespace incr;
using namespace incr::bench;

namespace {

constexpr int kBatchSize = 1000;
constexpr int kNumBatches = 100;

double MeasureThroughput(IvmStrategy<IntRing>* strategy,
                         RetailerWorkload* wl, int intval, size_t* enums,
                         size_t* out_size) {
  // Preload dimensions (untimed, as in the paper's setup).
  auto preload = [&](size_t atom, const std::vector<Tuple>& rows) {
    for (const Tuple& t : rows) strategy->Update(atom, t, 1);
  };
  preload(RetailerWorkload::kLocation, wl->locations());
  preload(RetailerWorkload::kCensus, wl->censuses());
  preload(RetailerWorkload::kItem, wl->items());
  preload(RetailerWorkload::kWeather, wl->weathers());

  Stopwatch sw;
  *enums = 0;
  *out_size = 0;
  for (int batch = 1; batch <= kNumBatches; ++batch) {
    for (int i = 0; i < kBatchSize; ++i) {
      strategy->Update(RetailerWorkload::kInventory,
                       wl->NextInventoryInsert(), 1);
    }
    if (intval > 0 && batch % intval == 0) {
      *out_size = strategy->Enumerate(nullptr);
      ++*enums;
    }
  }
  double secs = sw.ElapsedSeconds();
  return kBatchSize * kNumBatches / secs;  // updates/second
}

}  // namespace

int main() {
  Section("E2: Fig. 4 — Retailer 5-way join, batches of 1000 inserts");
  std::printf("throughput in updates/s; %d batches total; #ENUM = number of "
              "full-output enumeration requests\n",
              kNumBatches);
  Row({"INTVAL", "#ENUM", "eager-list", "eager-fact", "lazy-list",
       "lazy-fact", "|output|"});

  for (int intval : {1, 10, 25, 0}) {  // 0 = never enumerate
    std::vector<std::string> cells;
    cells.push_back(intval == 0 ? "inf" : FmtInt(intval));
    std::vector<double> tputs;
    size_t enums = 0, out_size = 0;
    // Fresh workload per strategy so each sees the identical stream.
    for (int which = 0; which < 4; ++which) {
      RetailerWorkload wl(/*n_locations=*/300, /*n_dates=*/40,
                          /*n_items=*/2000, /*seed=*/11);
      VariableOrder vo = wl.Order();
      auto strategies = MakeAllStrategies<IntRing>(wl.query(), &vo);
      tputs.push_back(MeasureThroughput(strategies[which].get(), &wl,
                                        intval, &enums, &out_size));
    }
    cells.push_back(FmtInt(static_cast<int64_t>(enums)));
    for (double t : tputs) cells.push_back(Fmt(t, "%.0f"));
    cells.push_back(FmtInt(static_cast<int64_t>(out_size)));
    Row(cells);
  }
  std::printf("\npaper shape: fact > list except at INTVAL=inf; lazy-list "
              "worst at small INTVAL (DNF in the paper)\n");
  return 0;
}
