// E15: parallel partitioned batch maintenance (DESIGN.md §"Parallel batch
// maintenance").
//
// Sweeps thread counts {1, 2, 4, 8} x batch sizes {100, 1k, 10k} over three
// workloads on the node-at-a-time batch path:
//
//   * retailer-inventory: the Fig. 4 Retailer 5-way join under its F-IVM
//     order, streaming Inventory deltas — each delta propagates in O(1), so
//     per-delta work is tiny and the parallel layer's shard/merge overhead
//     dominates: the *negative control* (q-hierarchical-style O(1) updates
//     have nothing to parallelize; THEORY.md's cost model).
//   * retailer-item: the same join, streaming Item(ksn) deltas — each delta
//     fans out to every (locn, date) holding that item, the ByRange fallback
//     with real per-delta work: the case parallelism is for.
//   * triangle: the cyclic triangle count under a path order — ByRange
//     multi-atom probing, medium fan-out.
//
// threads == 1 runs the exact sequential PR-1 path (no pool, single-shard
// W); speedups are reported relative to it. The final aggregate of every
// cell is checked identical across all thread counts — the headline
// determinism invariant, measured for free. Results land in
// BENCH_parallel.json. Expected shape on a multi-core host: retailer-item
// and triangle scale toward min(threads, shards) until the sequential
// merge floor bites; retailer-inventory stays flat or regresses slightly.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "incr/core/view_tree.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"
#include "incr/workload/retailer.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2 };

using Entry = ViewTree<IntRing>::BatchEntry;

struct Workload {
  std::string name;
  std::function<ViewTree<IntRing>()> build;
  std::function<Entry(Rng&)> draw;
};

// A preloaded Retailer tree: dimensions plus a base of Inventory facts.
ViewTree<IntRing> BuildRetailerTree() {
  RetailerWorkload wl(/*n_locations=*/300, /*n_dates=*/40, /*n_items=*/2000,
                      /*seed=*/11);
  auto tree = ViewTree<IntRing>::Make(wl.query(), wl.Order());
  INCR_CHECK(tree.ok());
  auto preload = [&](size_t atom, const std::vector<Tuple>& rows) {
    for (const Tuple& t : rows) tree->LoadAtom(atom, t, 1);
  };
  preload(RetailerWorkload::kLocation, wl.locations());
  preload(RetailerWorkload::kCensus, wl.censuses());
  preload(RetailerWorkload::kItem, wl.items());
  preload(RetailerWorkload::kWeather, wl.weathers());
  for (int64_t i = 0; i < 30000; ++i) {
    tree->LoadAtom(RetailerWorkload::kInventory, wl.NextInventoryInsert(), 1);
  }
  tree->Rebuild();
  return *std::move(tree);
}

Workload RetailerInventoryWorkload() {
  return {
      "retailer-inventory",
      BuildRetailerTree,
      [](Rng& rng) {
        return Entry{RetailerWorkload::kInventory,
                     Tuple{rng.UniformInt(0, 299), rng.UniformInt(0, 39),
                           rng.UniformInt(0, 1999)},
                     1};
      },
  };
}

Workload RetailerItemWorkload() {
  return {
      "retailer-item",
      BuildRetailerTree,
      [](Rng& rng) {
        return Entry{RetailerWorkload::kItem, Tuple{rng.UniformInt(0, 1999)},
                     1};
      },
  };
}

Workload TriangleWorkload() {
  const int64_t v = 256;
  const int64_t edges = 20000;
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  return {
      "triangle",
      [q, v, edges] {
        auto vo = VariableOrder::FromPath(q, {A, B, C});
        INCR_CHECK(vo.ok());
        auto tree = ViewTree<IntRing>::Make(q, *vo);
        INCR_CHECK(tree.ok());
        Rng rng(7);
        for (size_t a = 0; a < 3; ++a) {
          for (int64_t i = 0; i < edges; ++i) {
            tree->UpdateAtom(a, Tuple{rng.UniformInt(0, v - 1),
                                      rng.UniformInt(0, v - 1)}, 1);
          }
        }
        return *std::move(tree);
      },
      [v](Rng& rng) {
        return Entry{0, Tuple{rng.UniformInt(0, v - 1),
                              rng.UniformInt(0, v - 1)}, 1};
      },
  };
}

// One (workload, threads, batch) cell: fresh preloaded tree, SetThreads,
// then the usual insert/retract alternation (even reps insert a fresh
// batch, odd ones negate it) so the database stays near its preloaded
// size. Returns ns/delta; *aggregate gets the final state fingerprint.
double MeasureCell(const Workload& w, size_t threads, int64_t batch_size,
                   int64_t* aggregate) {
  ViewTree<IntRing> tree = w.build();
  tree.SetThreads(threads);
  const int64_t total_ops = 12000;
  int64_t reps = std::max<int64_t>(2, total_ops / batch_size);
  if (reps % 2 != 0) ++reps;
  Rng rng(13);
  std::vector<Entry> batch;
  double secs = 0;
  int64_t ops = 0;
  for (int64_t rep = 0; rep < reps; ++rep) {
    if (rep % 2 == 0) {
      batch.clear();
      for (int64_t i = 0; i < batch_size; ++i) batch.push_back(w.draw(rng));
    } else {
      for (Entry& e : batch) e.delta = -e.delta;
    }
    Stopwatch sw;
    tree.ApplyBatch(std::span<const Entry>(batch));
    secs += sw.ElapsedSeconds();
    ops += batch_size;
  }
  *aggregate = tree.Aggregate();
  return NsPerOp(secs, ops);
}

}  // namespace

int main() {
  Section("E15: shard-parallel vs sequential batches (ns/delta)");
  std::printf("shards fixed at %zu; threads only decide who runs them\n",
              ViewTree<IntRing>::DefaultDeltaShards());
  Row({"query", "batch", "threads", "ns/delta", "speedup"});
  JsonArrayWriter json;
  for (const Workload& w :
       {RetailerInventoryWorkload(), RetailerItemWorkload(),
        TriangleWorkload()}) {
    for (int64_t batch : {100, 1000, 10000}) {
      double base_ns = 0;
      int64_t base_agg = 0;
      for (size_t threads : {1, 2, 4, 8}) {
        int64_t agg = 0;
        double ns = MeasureCell(w, threads, batch, &agg);
        if (threads == 1) {
          base_ns = ns;
          base_agg = agg;
        } else {
          // Determinism invariant: identical final state at every thread
          // count (aggregate as fingerprint; the test suite checks views).
          INCR_CHECK(agg == base_agg);
        }
        double speedup = ns > 0 ? base_ns / ns : 0;
        Row({w.name, FmtInt(batch), FmtInt(static_cast<int64_t>(threads)),
             Fmt(ns), Fmt(speedup, "%.2f")});
        json.BeginObject();
        json.Field("query", w.name);
        json.Field("batch", batch);
        json.Field("threads", static_cast<int64_t>(threads));
        json.Field("ns_per_delta", ns);
        json.Field("speedup_vs_seq", speedup);
        json.EndObject();
      }
    }
  }
  if (json.WriteFile("BENCH_parallel.json")) {
    std::printf("\nwrote BENCH_parallel.json\n");
  }
  std::printf(
      "expected multi-core shape: retailer-item and triangle approach "
      "min(threads, shards) at batch 10k; retailer-inventory (O(1) deltas) "
      "stays flat — parallelism cannot beat constant-time sequential work\n");
  return 0;
}
