// E15 + E18: morsel-driven parallel batch maintenance (DESIGN.md §"Parallel
// batch maintenance").
//
// E15 sweeps thread counts {1, 2, 4, 8} x batch sizes {100, 1k, 10k}; E18
// sweeps the morsel size (INCR_MORSEL_BYTES) at a fixed thread count on the
// fan-out workloads. Three workloads on the node-at-a-time batch path:
//
//   * retailer-inventory: the Fig. 4 Retailer 5-way join under its F-IVM
//     order, streaming Inventory deltas — each delta propagates in O(1), so
//     per-delta work is tiny and the parallel layer's shard/merge overhead
//     dominates: the *negative control* (q-hierarchical-style O(1) updates
//     have nothing to parallelize; THEORY.md's cost model).
//   * retailer-item: the same join, streaming Item(ksn) deltas — each delta
//     fans out to every (locn, date) holding that item, the ByRange fallback
//     with real per-delta work: the case parallelism is for.
//   * triangle: the cyclic triangle count under a path order — ByRange
//     multi-atom probing, medium fan-out.
//
// threads == 1 short-circuits to the exact sequential path (no pool, no
// partitioning); speedups are reported relative to it. The final aggregate
// of every cell is checked identical across all thread counts AND all
// morsel sizes — the headline determinism invariant, measured for free.
// Results land in BENCH_parallel.json ("build" records the host's
// hardware_concurrency so readers can judge the thread sweep; a 1-core run
// legitimately shows no speedup). Expected shape on a multi-core host:
// retailer-item and triangle scale toward min(threads, cores) until the
// shard-fold floor bites; retailer-inventory (O(1) deltas) stays flat.
//
// INCR_BENCH_SMOKE=1 shrinks both sweeps so CI can exercise the full
// binary — including the JSON plumbing the regression guard parses — in
// seconds.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "incr/core/view_tree.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"
#include "incr/workload/retailer.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2 };

using Entry = ViewTree<IntRing>::BatchEntry;

bool SmokeMode() {
  const char* v = std::getenv("INCR_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

struct Workload {
  std::string name;
  std::function<ViewTree<IntRing>()> build;
  std::function<Entry(Rng&)> draw;
};

// A preloaded Retailer tree: dimensions plus a base of Inventory facts.
ViewTree<IntRing> BuildRetailerTree() {
  RetailerWorkload wl(/*n_locations=*/300, /*n_dates=*/40, /*n_items=*/2000,
                      /*seed=*/11);
  auto tree = ViewTree<IntRing>::Make(wl.query(), wl.Order());
  INCR_CHECK(tree.ok());
  auto preload = [&](size_t atom, const std::vector<Tuple>& rows) {
    for (const Tuple& t : rows) tree->LoadAtom(atom, t, 1);
  };
  preload(RetailerWorkload::kLocation, wl.locations());
  preload(RetailerWorkload::kCensus, wl.censuses());
  preload(RetailerWorkload::kItem, wl.items());
  preload(RetailerWorkload::kWeather, wl.weathers());
  for (int64_t i = 0; i < 30000; ++i) {
    tree->LoadAtom(RetailerWorkload::kInventory, wl.NextInventoryInsert(), 1);
  }
  tree->Rebuild();
  return *std::move(tree);
}

Workload RetailerInventoryWorkload() {
  return {
      "retailer-inventory",
      BuildRetailerTree,
      [](Rng& rng) {
        return Entry{RetailerWorkload::kInventory,
                     Tuple{rng.UniformInt(0, 299), rng.UniformInt(0, 39),
                           rng.UniformInt(0, 1999)},
                     1};
      },
  };
}

Workload RetailerItemWorkload() {
  return {
      "retailer-item",
      BuildRetailerTree,
      [](Rng& rng) {
        return Entry{RetailerWorkload::kItem, Tuple{rng.UniformInt(0, 1999)},
                     1};
      },
  };
}

Workload TriangleWorkload() {
  const int64_t v = 256;
  const int64_t edges = 20000;
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  return {
      "triangle",
      [q, v, edges] {
        auto vo = VariableOrder::FromPath(q, {A, B, C});
        INCR_CHECK(vo.ok());
        auto tree = ViewTree<IntRing>::Make(q, *vo);
        INCR_CHECK(tree.ok());
        Rng rng(7);
        for (size_t a = 0; a < 3; ++a) {
          for (int64_t i = 0; i < edges; ++i) {
            tree->UpdateAtom(a, Tuple{rng.UniformInt(0, v - 1),
                                      rng.UniformInt(0, v - 1)}, 1);
          }
        }
        return *std::move(tree);
      },
      [v](Rng& rng) {
        return Entry{0, Tuple{rng.UniformInt(0, v - 1),
                              rng.UniformInt(0, v - 1)}, 1};
      },
  };
}

// One (workload, threads, morsel, batch) cell: fresh preloaded tree,
// SetThreads + SetMorselBytes, then the usual insert/retract alternation
// (even reps insert a fresh batch, odd ones negate it) so the database
// stays near its preloaded size. Returns ns/delta; *aggregate gets the
// final state fingerprint.
double MeasureCell(const Workload& w, size_t threads, size_t morsel_bytes,
                   int64_t batch_size, int64_t total_ops,
                   int64_t* aggregate) {
  ViewTree<IntRing> tree = w.build();
  tree.SetThreads(threads);
  tree.SetMorselBytes(morsel_bytes);
  int64_t reps = std::max<int64_t>(2, total_ops / batch_size);
  if (reps % 2 != 0) ++reps;
  Rng rng(13);
  std::vector<Entry> batch;
  double secs = 0;
  int64_t ops = 0;
  // One untimed insert+retract warm-up pair: touches the views, the pool,
  // and the allocator so short (smoke) runs measure steady state, not the
  // first batch's cold caches — the regression guard compares smoke runs
  // against full-run baselines.
  for (int64_t rep = -2; rep < reps; ++rep) {
    if (rep % 2 == 0) {  // -2 included: fresh batch, then its negation
      batch.clear();
      for (int64_t i = 0; i < batch_size; ++i) batch.push_back(w.draw(rng));
    } else {
      for (Entry& e : batch) e.delta = -e.delta;
    }
    if (rep < 0) {
      tree.ApplyBatch(std::span<const Entry>(batch));
      continue;
    }
    Stopwatch sw;
    tree.ApplyBatch(std::span<const Entry>(batch));
    secs += sw.ElapsedSeconds();
    ops += batch_size;
  }
  *aggregate = tree.Aggregate();
  return NsPerOp(secs, ops);
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const int64_t total_ops = smoke ? 4000 : 12000;
  const unsigned hw = std::thread::hardware_concurrency();
  Section("E15: morsel-parallel vs sequential batches (ns/delta)");
  std::printf(
      "hardware_concurrency %u; shards fixed at %zu; threads only decide "
      "who runs the morsel grid%s\n",
      hw, ViewTree<IntRing>::DefaultDeltaShards(),
      smoke ? "  [SMOKE]" : "");
  Row({"query", "batch", "threads", "ns/delta", "speedup"});
  JsonArrayWriter json;
  const std::vector<int64_t> batches =
      smoke ? std::vector<int64_t>{1000}
            : std::vector<int64_t>{100, 1000, 10000};
  const std::vector<size_t> thread_sweep =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  for (const Workload& w :
       {RetailerInventoryWorkload(), RetailerItemWorkload(),
        TriangleWorkload()}) {
    for (int64_t batch : batches) {
      double base_ns = 0;
      int64_t base_agg = 0;
      for (size_t threads : thread_sweep) {
        int64_t agg = 0;
        double ns =
            MeasureCell(w, threads, /*morsel_bytes=*/0, batch, total_ops,
                        &agg);
        if (threads == 1) {
          base_ns = ns;
          base_agg = agg;
        } else {
          // Determinism invariant: identical final state at every thread
          // count (aggregate as fingerprint; the test suite checks views).
          INCR_CHECK(agg == base_agg);
        }
        double speedup = ns > 0 ? base_ns / ns : 0;
        Row({w.name, FmtInt(batch), FmtInt(static_cast<int64_t>(threads)),
             Fmt(ns), Fmt(speedup, "%.2f")});
        json.BeginObject();
        json.Field("section", std::string("threads"));
        json.Field("query", w.name);
        json.Field("batch", batch);
        json.Field("threads", static_cast<int64_t>(threads));
        json.Field("morsel_bytes", static_cast<int64_t>(0));
        json.Field("ns_per_delta", ns);
        json.Field("speedup_vs_seq", speedup);
        json.EndObject();
      }
    }
  }

  // E18: the morsel-size sweep. Fixed thread count, fan-out workloads
  // (the ByRange path is the only consumer of the grid), morsel sizes
  // from one-cache-line to effectively-one-morsel. Scheduling only:
  // every cell must land on the same aggregate.
  Section("E18: morsel-size sweep (ns/delta)");
  const size_t sweep_threads = smoke ? 2 : 4;
  const int64_t sweep_batch = smoke ? 1000 : 10000;
  std::printf("threads fixed at %zu, batch %lld; 0 = cache-sized default\n",
              sweep_threads, static_cast<long long>(sweep_batch));
  Row({"query", "morsel B", "ns/delta", "vs default"});
  const std::vector<size_t> morsels =
      smoke ? std::vector<size_t>{0, 64, 65536}
            : std::vector<size_t>{0,    64,    1024, 4096,
                                  16384, 65536, size_t{1} << 20};
  for (const Workload& w : {RetailerItemWorkload(), TriangleWorkload()}) {
    double default_ns = 0;
    int64_t base_agg = 0;
    bool have_base = false;
    for (size_t morsel : morsels) {
      int64_t agg = 0;
      double ns = MeasureCell(w, sweep_threads, morsel, sweep_batch,
                              total_ops, &agg);
      if (!have_base) {
        default_ns = ns;
        base_agg = agg;
        have_base = true;
      } else {
        INCR_CHECK(agg == base_agg);  // morsel size is pure scheduling
      }
      double rel = ns > 0 ? default_ns / ns : 0;
      Row({w.name, FmtInt(static_cast<int64_t>(morsel)), Fmt(ns),
           Fmt(rel, "%.2f")});
      json.BeginObject();
      json.Field("section", std::string("morsel"));
      json.Field("query", w.name);
      json.Field("batch", sweep_batch);
      json.Field("threads", static_cast<int64_t>(sweep_threads));
      json.Field("morsel_bytes", static_cast<int64_t>(morsel));
      json.Field("ns_per_delta", ns);
      json.Field("speedup_vs_seq", rel);
      json.EndObject();
    }
  }

  if (json.WriteFile("BENCH_parallel.json")) {
    std::printf("\nwrote BENCH_parallel.json\n");
  }
  std::printf(
      "expected multi-core shape: retailer-item and triangle approach "
      "min(threads, cores) at batch 10k; retailer-inventory (O(1) deltas) "
      "stays flat — parallelism cannot beat constant-time sequential work; "
      "tiny morsels pay claim/steal overhead, huge morsels starve threads\n");
  return 0;
}
