// E3 (paper §5, Fig. 7): the preprocessing / update-time / enumeration-
// delay trade-off of IVMe for Q(A) = SUM_B R(A,B)*S(B), swept over eps.
//
// Paper's expected shape: O(N) preprocessing for every eps; update time
// O(N^eps); (amortized) enumeration delay O(N^{1-eps}). The eps=0 and
// eps=1 rows are the lazy and eager extremes; eps=1/2 touches the
// OMv-conditional lower-bound cuboid.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "incr/ivme/eps_tradeoff.h"
#include "incr/util/rng.h"

using namespace incr;
using namespace incr::bench;

namespace {

struct Point {
  double preprocess_ns_per_tuple;
  double update_ns;
  double delay_ns;  // amortized: total enumeration time / #output tuples
};

Point Measure(double eps, int64_t n, uint64_t seed) {
  Rng rng(seed);
  // |R| = n tuples, Zipf-skewed B; |S| = n/10 values.
  int64_t n_b = std::max<int64_t>(2, n / 10);
  ZipfSampler zipf(static_cast<uint64_t>(n_b), 1.1);
  std::vector<std::pair<Tuple, int64_t>> r;
  r.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    r.emplace_back(
        Tuple{rng.UniformInt(0, n / 2),
              static_cast<Value>(zipf.Sample(rng))},
        1);
  }
  std::vector<std::pair<Value, int64_t>> s;
  for (Value b = 0; b < n_b; ++b) s.emplace_back(b, 1);

  EpsTradeoffEngine e(eps);
  Stopwatch pre;
  e.BulkLoad(r, s);
  Point p;
  p.preprocess_ns_per_tuple = NsPerOp(pre.ElapsedSeconds(), n + n_b);

  // Steady-state single-tuple updates (insert+delete pairs keep N stable,
  // mixing dR and dS).
  const int64_t kOps = 4000;
  Stopwatch upd;
  for (int64_t i = 0; i < kOps / 4; ++i) {
    Value a = rng.UniformInt(0, n / 2);
    Value b = static_cast<Value>(zipf.Sample(rng));
    e.UpdateR(a, b, 1);
    e.UpdateS(b, 1);
    e.UpdateS(b, -1);
    e.UpdateR(a, b, -1);
  }
  p.update_ns = NsPerOp(upd.ElapsedSeconds(), kOps);

  // Amortized enumeration delay over a bounded output prefix (delay is a
  // per-tuple quantity; the full output would cost |out| * N^{1-eps}).
  const size_t kPrefix = 2000;
  Stopwatch enu;
  size_t out = e.EnumerateLimit(kPrefix, nullptr);
  p.delay_ns = NsPerOp(enu.ElapsedSeconds(), static_cast<int64_t>(out));
  return p;
}

}  // namespace

int main() {
  Section("E3: Fig. 7 — IVMe trade-off for Q(A)=SUM_B R(A,B)*S(B)");
  const std::vector<int64_t> kSizes = {20000, 80000, 320000};
  const std::vector<double> kEps = {0.0, 0.25, 0.5, 0.75, 1.0};
  // points[e][s]
  std::vector<std::vector<Point>> points(kEps.size());
  for (size_t ei = 0; ei < kEps.size(); ++ei) {
    for (int64_t n : kSizes) points[ei].push_back(Measure(kEps[ei], n, 3));
  }
  for (size_t si = 0; si < kSizes.size(); ++si) {
    std::printf("\n|R| = %lld (plus |S| = |R|/10)\n",
                static_cast<long long>(kSizes[si]));
    Row({"eps", "preproc(ns/t)", "update(ns)", "delay(ns)"});
    for (size_t ei = 0; ei < kEps.size(); ++ei) {
      const Point& p = points[ei][si];
      Row({Fmt(kEps[ei], "%.2f"), Fmt(p.preprocess_ns_per_tuple),
           Fmt(p.update_ns), Fmt(p.delay_ns)});
    }
  }

  Section("scaling exponents per eps (paper: update ~ eps, delay ~ 1-eps)");
  Row({"eps", "update-slope", "delay-slope"});
  for (size_t ei = 0; ei < kEps.size(); ++ei) {
    std::vector<double> xs, upd, del;
    for (size_t si = 0; si < kSizes.size(); ++si) {
      xs.push_back(static_cast<double>(kSizes[si]));
      upd.push_back(points[ei][si].update_ns);
      del.push_back(points[ei][si].delay_ns);
    }
    Row({Fmt(kEps[ei], "%.2f"), Fmt(LogLogSlope(xs, upd), "%.2f"),
         Fmt(LogLogSlope(xs, del), "%.2f")});
  }
  std::printf("\npaper shape: the (update, delay) exponents trace the line "
              "from (0,1) to (1,0); eps=1/2 is the weakly-Pareto-optimal "
              "point (1/2, 1/2)\n");
  return 0;
}
