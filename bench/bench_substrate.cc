// E12: substrate microbenchmarks (DESIGN.md). Verifies the data-structure
// contract of paper §2: amortized O(1) relation upsert/lookup/delete,
// constant-delay scans, grouped-index operations.
#include <benchmark/benchmark.h>

#include "incr/data/grouped_index.h"
#include "incr/data/relation.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

void BM_RelationInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Relation<IntRing> r(Schema{0, 1});
    r.Reserve(static_cast<size_t>(n));
    Rng rng(42);
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      r.Apply(Tuple{rng.UniformInt(0, n), rng.UniformInt(0, n)}, 1);
    }
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RelationInsert)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_RelationLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  Relation<IntRing> r(Schema{0, 1});
  Rng rng(42);
  for (int64_t i = 0; i < n; ++i) {
    r.Apply(Tuple{rng.UniformInt(0, n), rng.UniformInt(0, n)}, 1);
  }
  Rng probe(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        r.Payload(Tuple{probe.UniformInt(0, n), probe.UniformInt(0, n)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelationLookup)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_RelationScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  Relation<IntRing> r(Schema{0, 1});
  Rng rng(42);
  for (int64_t i = 0; i < n; ++i) {
    r.Apply(Tuple{rng.UniformInt(0, n), rng.UniformInt(0, n)}, 1);
  }
  for (auto _ : state) {
    int64_t acc = 0;
    for (const auto& e : r) acc += e.value;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_RelationScan)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_RelationInsertDeleteChurn(benchmark::State& state) {
  const int64_t n = state.range(0);
  Relation<IntRing> r(Schema{0, 1});
  Rng rng(42);
  for (int64_t i = 0; i < n; ++i) r.Apply(Tuple{i, i}, 1);
  int64_t k = 0;
  for (auto _ : state) {
    // Steady-state churn: one delete, one insert.
    r.Apply(Tuple{k % n, k % n}, -1);
    r.Apply(Tuple{k % n, k % n}, 1);
    ++k;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_RelationInsertDeleteChurn)->Arg(1 << 12)->Arg(1 << 20);

void BM_GroupedIndexInsertErase(benchmark::State& state) {
  const int64_t n = state.range(0);
  GroupedIndex idx(Schema{0, 1}, Schema{0});
  Rng rng(42);
  for (int64_t i = 0; i < n; ++i) {
    idx.Insert(Tuple{rng.UniformInt(0, 100), i});
  }
  int64_t k = n;
  for (auto _ : state) {
    Tuple t{k % 100, k};
    idx.Insert(t);
    idx.Erase(t);
    ++k;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_GroupedIndexInsertErase)->Arg(1 << 12)->Arg(1 << 18);

void BM_GroupedIndexGroupScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  GroupedIndex idx(Schema{0, 1}, Schema{0});
  for (int64_t i = 0; i < n; ++i) idx.Insert(Tuple{i % 64, i});
  for (auto _ : state) {
    const auto* g = idx.Group(Tuple{13});
    int64_t acc = 0;
    if (g != nullptr) {
      for (const Tuple& t : *g) acc += t[1];
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_GroupedIndexGroupScan)->Arg(1 << 12)->Arg(1 << 18);

}  // namespace
}  // namespace incr

BENCHMARK_MAIN();
