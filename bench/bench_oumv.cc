// E4 + E11 (paper §3.4, Thm. 3.4): the OuMv reduction in practice.
//
// Thm. 3.4 converts a triangle-detection maintainer with update time u(N)
// into an OuMv algorithm running in O(n * (n * u(n^2))) total. With the
// IVMe maintainer (u = sqrt(N) = n, worst case) each round is O(n^2) —
// ~n^3 total, exactly the conjectured OuMv boundary. Two instructive
// wrinkles the measurement surfaces:
//   * the first-order delta maintainer's *adaptive* cost on OuMv-shaped
//     databases is also ~n per update (every adjacency list in the
//     construction has length <= n = sqrt(N)), so its rounds are ~n^2 too
//     — its O(N) worst case simply cannot materialize on this family,
//     which is consistent with sqrt(N) being the true complexity frontier;
//   * the direct bitset solver short-circuits on the first hit, so with
//     non-trivial density its rounds are far below the n^2/64 full-scan
//     bound.
//
// Expected shape: per-round slopes (vs n) ~2 for both reduction-backed
// solvers; correctness of all solvers is asserted against brute force.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "incr/lowerbound/oumv.h"
#include "incr/util/check.h"

using namespace incr;
using namespace incr::bench;

namespace {

template <typename MakeCounter>
double MeasureReduction(const OuMvInstance& inst, MakeCounter make,
                        const std::vector<bool>& expect) {
  auto counter = make();
  Stopwatch sw;
  auto got = SolveOuMvViaIvm(inst, counter.get());
  double secs = sw.ElapsedSeconds();
  INCR_CHECK(got == expect);
  return secs * 1e9 / static_cast<double>(inst.n());  // ns per round
}

}  // namespace

int main() {
  Section("E4: OuMv via IVM triangle detection (Thm. 3.4 reduction)");
  Row({"n", "direct(ns/rd)", "ivm-eps(ns/rd)", "delta(ns/rd)"});
  std::vector<double> xs, direct, eps, delta;
  for (size_t n : {64, 128, 256, 512}) {
    OuMvInstance inst(n, /*density=*/0.15, /*seed=*/5);
    Stopwatch sw;
    auto expect = SolveOuMvDirect(inst);
    double direct_ns = sw.ElapsedSeconds() * 1e9 / static_cast<double>(n);

    double eps_ns = MeasureReduction(
        inst, [] { return std::make_unique<IvmEpsTriangleCounter>(0.5); },
        expect);
    double delta_ns = MeasureReduction(
        inst, [] { return std::make_unique<DeltaTriangleCounter>(); },
        expect);
    xs.push_back(static_cast<double>(n));
    direct.push_back(direct_ns);
    eps.push_back(eps_ns);
    delta.push_back(delta_ns);
    Row({FmtInt(static_cast<int64_t>(n)), Fmt(direct_ns), Fmt(eps_ns),
         Fmt(delta_ns)});
  }
  Section("per-round growth exponents vs n (expected ~2 for both "
          "reduction-backed solvers: ~n^3 total, the OuMv boundary)");
  Row({"series", "slope"});
  Row({"direct", Fmt(LogLogSlope(xs, direct), "%.2f")});
  Row({"ivm-eps", Fmt(LogLogSlope(xs, eps), "%.2f")});
  Row({"delta", Fmt(LogLogSlope(xs, delta), "%.2f")});
  return 0;
}
