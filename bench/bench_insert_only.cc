// E10 (paper §4.6): insert-only vs insert-delete for the alpha-acyclic,
// non-q-hierarchical path join R(A,B)*S(B,C)*T(C,D).
//
// Expected shape: the insert-only support-counter engine runs each insert
// in amortized O(1) (flat ns/insert, activation work ~ constant per
// insert); insert-delete maintenance of the same query on an eager view
// tree pays per-update costs that grow with the join fan-out (consistent
// with the Thm. 4.1 lower bound, which only bites when deletes are
// allowed).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "incr/core/view_tree.h"
#include "incr/insertonly/insert_only_engine.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

Query PathJoin() {
  return Query("path", Schema{A, B, C, D},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                Atom{"T", Schema{C, D}}});
}

}  // namespace

int main() {
  Section("E10: insert-only vs insert-delete, path join (§4.6)");
  Row({"N", "ins-only(ns)", "work/insert", "ins-del(ns)"});
  std::vector<double> xs, io_ns, id_ns;
  for (int64_t n : {30000, 120000, 480000}) {
    // Insert-only engine: stream 3N inserts.
    auto e = InsertOnlyEngine::Make(PathJoin());
    INCR_CHECK(e.ok());
    Rng rng(3);
    int64_t keys = std::max<int64_t>(2, n / 20);  // ~20 tuples per join key
    Stopwatch sw;
    for (int64_t i = 0; i < n; ++i) {
      e->Insert(0, Tuple{rng.UniformInt(0, n), rng.UniformInt(0, keys)});
      e->Insert(1, Tuple{rng.UniformInt(0, keys), rng.UniformInt(0, keys)});
      e->Insert(2, Tuple{rng.UniformInt(0, keys), rng.UniformInt(0, n)});
    }
    double ins_ns = NsPerOp(sw.ElapsedSeconds(), 3 * n);
    double work = static_cast<double>(e->activation_work()) /
                  static_cast<double>(3 * n);

    // Insert-delete on an eager enumerable view tree (order B,A,C,D).
    // Fixed key count so the per-key fan-out grows with N: the dS update
    // must touch ~N/64 A-partners (the Thm. 4.1 hard direction needs the
    // fan-out to scale, unlike the insert-only engine above, whose
    // amortized cost is fan-out independent).
    Query q = PathJoin();
    auto vo = VariableOrder::FromParents(q, {B, A, C, D}, {-1, 0, 0, 2});
    INCR_CHECK(vo.ok());
    auto tree = ViewTree<IntRing>::Make(q, *std::move(vo));
    INCR_CHECK(tree.ok());
    Rng rng2(3);
    // Only C is a fixed small domain: S then has ~N/64 *distinct* tuples
    // per C value, which is exactly the group a dT update must scan. Load
    // R and T before S (each dT also scans the S-group of its C value, so
    // loading T into a full S would itself be quadratic).
    const int64_t keys2 = 64;
    for (int64_t i = 0; i < n; ++i) {
      tree->UpdateAtom(0, Tuple{rng2.UniformInt(0, n),
                                rng2.UniformInt(0, n)}, 1);
      tree->UpdateAtom(2, Tuple{rng2.UniformInt(0, keys2),
                                rng2.UniformInt(0, n)}, 1);
    }
    for (int64_t i = 0; i < n; ++i) {
      tree->UpdateAtom(1, Tuple{rng2.UniformInt(0, n),
                                rng2.UniformInt(0, keys2)}, 1);
    }
    // The expensive insert-delete delta on this tree is dT(c,d): a fresh
    // d changes M_D(c), whose propagation scans the ~N/64 S-tuples with
    // that c.
    const int64_t kOps = 2000;
    Stopwatch sw2;
    for (int64_t i = 0; i < kOps / 2; ++i) {
      Tuple t{rng2.UniformInt(0, keys2), n + i};  // fresh D value
      tree->UpdateAtom(2, t, 1);
      tree->UpdateAtom(2, t, -1);
    }
    double del_ns = NsPerOp(sw2.ElapsedSeconds(), kOps);

    xs.push_back(static_cast<double>(n));
    io_ns.push_back(ins_ns);
    id_ns.push_back(del_ns);
    Row({FmtInt(n), Fmt(ins_ns), Fmt(work, "%.1f"), Fmt(del_ns)});
  }
  Section("slopes (paper: insert-only ~0 — amortized constant; "
          "insert-delete grows with fan-out/N)");
  Row({"insert-only", Fmt(LogLogSlope(xs, io_ns), "%.2f")});
  Row({"insert-delete", Fmt(LogLogSlope(xs, id_ns), "%.2f")});
  return 0;
}
