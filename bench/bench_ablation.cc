// Ablations for the design choices DESIGN.md calls out.
//
// A1: DenseMap (our open-addressing map with a dense entry array) vs
//     std::unordered_map as the relation substrate. The paper's §2 contract
//     needs constant-delay scans; node-based maps lose exactly there, and
//     on upsert/churn constants.
// A2: the epsilon parameter of the IVMe triangle maintainer: update cost
//     across eps on a skewed stream, showing the worst-case-optimal choice
//     eps = 1/2 is also the practical sweet spot between the lazy (eps=0)
//     and eager (eps=1) extremes.
#include <cstdio>
#include <unordered_map>

#include "bench_util.h"
#include "incr/data/dense_map.h"
#include "incr/data/tuple.h"
#include "incr/ivme/triangle.h"
#include "incr/util/rng.h"
#include "incr/workload/graph.h"

using namespace incr;
using namespace incr::bench;

namespace {

volatile int64_t benchmark_dummy_ = 0;

struct MapNumbers {
  double insert_ns;
  double lookup_ns;
  double scan_ns;
  double churn_ns;
};

MapNumbers MeasureDenseMap(int64_t n) {
  MapNumbers out{};
  Rng rng(1);
  DenseMap<Tuple, int64_t, TupleHash, TupleEq> m;
  Stopwatch ins;
  for (int64_t i = 0; i < n; ++i) {
    m.GetOrInsert(Tuple{rng.UniformInt(0, n), rng.UniformInt(0, n)}, 0) += 1;
  }
  out.insert_ns = NsPerOp(ins.ElapsedSeconds(), n);
  Rng probe(2);
  Stopwatch lk;
  int64_t acc = 0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t* v =
        m.Find(Tuple{probe.UniformInt(0, n), probe.UniformInt(0, n)});
    acc += v ? *v : 0;
  }
  out.lookup_ns = NsPerOp(lk.ElapsedSeconds(), n);
  Stopwatch sc;
  for (const auto& e : m) acc += e.value;
  out.scan_ns = NsPerOp(sc.ElapsedSeconds(), static_cast<int64_t>(m.size()));
  Stopwatch ch;
  const int64_t kChurn = 200000;
  for (int64_t i = 0; i < kChurn; ++i) {
    Tuple t{i % n, i % n};
    m.GetOrInsert(t, 0) += 1;
    m.Erase(t);
  }
  out.churn_ns = NsPerOp(ch.ElapsedSeconds(), 2 * kChurn);
  benchmark_dummy_ = benchmark_dummy_ + acc;
  return out;
}

MapNumbers MeasureUnorderedMap(int64_t n) {
  MapNumbers out{};
  Rng rng(1);
  struct H {
    size_t operator()(const Tuple& t) const { return TupleHash{}(t); }
  };
  std::unordered_map<Tuple, int64_t, H, TupleEq> m;
  Stopwatch ins;
  for (int64_t i = 0; i < n; ++i) {
    m[Tuple{rng.UniformInt(0, n), rng.UniformInt(0, n)}] += 1;
  }
  out.insert_ns = NsPerOp(ins.ElapsedSeconds(), n);
  Rng probe(2);
  Stopwatch lk;
  int64_t acc = 0;
  for (int64_t i = 0; i < n; ++i) {
    auto it = m.find(Tuple{probe.UniformInt(0, n), probe.UniformInt(0, n)});
    acc += it == m.end() ? 0 : it->second;
  }
  out.lookup_ns = NsPerOp(lk.ElapsedSeconds(), n);
  Stopwatch sc;
  for (const auto& [k, v] : m) acc += v;
  out.scan_ns = NsPerOp(sc.ElapsedSeconds(), static_cast<int64_t>(m.size()));
  Stopwatch ch;
  const int64_t kChurn = 200000;
  for (int64_t i = 0; i < kChurn; ++i) {
    Tuple t{i % n, i % n};
    m[t] += 1;
    m.erase(t);
  }
  out.churn_ns = NsPerOp(ch.ElapsedSeconds(), 2 * kChurn);
  benchmark_dummy_ = benchmark_dummy_ + acc;
  return out;
}

}  // namespace

int main() {
  Section("A1: DenseMap vs std::unordered_map (Tuple keys, |keys|=2^20)");
  const int64_t n = 1 << 20;
  MapNumbers dense = MeasureDenseMap(n);
  MapNumbers um = MeasureUnorderedMap(n);
  Row({"", "insert(ns)", "lookup(ns)", "scan(ns/e)", "churn(ns)"});
  Row({"DenseMap", Fmt(dense.insert_ns), Fmt(dense.lookup_ns),
       Fmt(dense.scan_ns), Fmt(dense.churn_ns)});
  Row({"unordered_map", Fmt(um.insert_ns), Fmt(um.lookup_ns),
       Fmt(um.scan_ns), Fmt(um.churn_ns)});

  Section("A2: IVMe epsilon ablation (skewed insert/delete stream, "
          "N ~ 60000)");
  Row({"eps", "update(ns)", "migrations", "rebalances"});
  for (double eps : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    IvmEpsTriangleCounter c(eps);
    GraphStream load(4000, 1.0, 0, 3);
    for (int i = 0; i < 60000; ++i) {
      auto e = load.Next();
      c.Update(static_cast<TriangleRel>(i % 3), e.src, e.dst, 1);
    }
    GraphStream stream(4000, 1.0, 60000, 4);
    const int64_t kOps = 4000;
    Stopwatch sw;
    for (int64_t i = 0; i < kOps; ++i) {
      auto e = stream.Next();
      c.Update(static_cast<TriangleRel>(i % 3), e.src, e.dst, e.delta);
    }
    Row({Fmt(eps, "%.2f"), Fmt(NsPerOp(sw.ElapsedSeconds(), kOps)),
         FmtInt(c.num_migrations()), FmtInt(c.num_major_rebalances())});
  }
  std::printf("\n(eps=0 keeps everything effectively heavy/lazy, eps=1 "
              "everything light/eager; 1/2 balances both delta paths)\n");
  return 0;
}
