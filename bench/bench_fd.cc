// E7 (paper §4.4, Thm. 4.11, Ex. 4.12): functional dependencies turn the
// non-hierarchical query Q(Z,Y,X,W) = R(X,W)*S(X,Y)*T(Y,Z) into a
// q-hierarchical Sigma-reduct under Sigma = {X->Y, Y->Z}.
//
// Thm. 4.11's guarantee is conditional on the *database* satisfying the
// dependencies: the FD-guided view tree's group scans (Y-values per X in
// S, Z-values per Y in T) are then bounded by 1. We measure the same
// engine and order on
//   (a) data satisfying Sigma        -> flat update time (the theorem), and
//   (b) data violating Sigma, where each X pairs with ~N/kx Y-values
//       -> update time grows with the violation degree.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "incr/core/view_tree.h"
#include "incr/query/fd.h"
#include "incr/query/properties.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { W = 0, X = 1, Y = 2, Z = 3 };

Query TheQuery() {
  return Query("Q", Schema{Z, Y, X, W},
               {Atom{"R", Schema{X, W}}, Atom{"S", Schema{X, Y}},
                Atom{"T", Schema{Y, Z}}});
}

std::unique_ptr<ViewTree<IntRing>> MakeTree(const VariableOrder& vo) {
  auto t = ViewTree<IntRing>::Make(TheQuery(), vo);
  INCR_CHECK(t.ok());
  return std::make_unique<ViewTree<IntRing>>(*std::move(t));
}

// Loads data and measures dR updates (the delta whose propagation crosses
// both FD-bounded scans, Fig. 6). `y_per_x` = 1 satisfies X->Y; larger
// values violate it with that degree.
double MeasureUpdates(ViewTree<IntRing>* tree, int64_t n, int64_t y_per_x,
                      uint64_t seed) {
  Rng rng(seed);
  int64_t n_x = std::max<int64_t>(2, n / (4 * y_per_x));
  for (int64_t i = 0; i < n; ++i) {
    Value x = rng.UniformInt(0, n_x - 1);
    Value y = x * y_per_x + rng.UniformInt(0, y_per_x - 1);
    tree->Update("R", Tuple{x, rng.UniformInt(0, 1000)}, 1);
    tree->Update("S", Tuple{x, y}, 1);
    tree->Update("T", Tuple{y, y % 977}, 1);  // one Z per Y (Y->Z holds)
  }
  const int64_t kOps = 4000;
  Stopwatch sw;
  for (int64_t i = 0; i < kOps / 2; ++i) {
    Value x = rng.UniformInt(0, n_x - 1);
    Value w = rng.UniformInt(0, 1000);
    tree->Update("R", Tuple{x, w}, 1);
    tree->Update("R", Tuple{x, w}, -1);
  }
  return NsPerOp(sw.ElapsedSeconds(), kOps);
}

}  // namespace

int main() {
  Query q = TheQuery();
  FdSet fds{{Schema{X}, Schema{Y}}, {Schema{Y}, Schema{Z}}};
  INCR_CHECK(!IsHierarchical(q));
  INCR_CHECK(IsQHierarchicalUnderFds(q, fds));
  auto vo = FdGuidedOrder(q, fds);
  INCR_CHECK(vo.ok());

  Section("E7a: FD-guided view tree, data satisfying Sigma (Thm. 4.11)");
  Row({"N", "dR-update(ns)"});
  std::vector<double> xs, sat;
  for (int64_t n : {20000, 80000, 320000}) {
    auto tree = MakeTree(*vo);
    double g = MeasureUpdates(tree.get(), n, /*y_per_x=*/1, 3);
    xs.push_back(static_cast<double>(n));
    sat.push_back(g);
    Row({FmtInt(n), Fmt(g)});
  }
  Row({"slope", Fmt(LogLogSlope(xs, sat), "%.2f")});
  std::printf("paper: ~0 — O(1) per update when the FDs hold\n");

  Section("E7b: same engine, data violating X->Y with degree d");
  Row({"d(Y per X)", "dR-update(ns)"});
  std::vector<double> ds, viol;
  for (int64_t d : {1, 8, 64, 512}) {
    auto tree = MakeTree(*vo);
    double v = MeasureUpdates(tree.get(), 160000, d, 3);
    ds.push_back(static_cast<double>(d));
    viol.push_back(v);
    Row({FmtInt(d), Fmt(v)});
  }
  Row({"slope", Fmt(LogLogSlope(ds, viol), "%.2f")});
  std::printf("update cost tracks the violation degree (~1): exactly the "
              "group scan the FD was bounding\n");
  return 0;
}
