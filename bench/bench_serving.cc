// E17: snapshot-isolated serving under sustained update load (DESIGN.md
// §concurrency).
//
// One maintainer thread streams 100-delta batches into a snapshot-enabled
// view-tree engine while reader threads enumerate via EnumerateSnapshot.
// Part 1 measures the idle baseline: snapshot-enumeration latency with no
// writer running. Part 2 turns the maintainer on and measures the same
// latency distribution under load, plus reader throughput and maintainer
// batch rate. Expected shape — and the acceptance bar — is that the p99
// snapshot-enumeration latency under load stays within 2x of idle: readers
// run on pinned immutable versions, so the writer should cost them nothing
// beyond cache pressure and the occasional allocator collision. Results
// land in BENCH_serving.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "incr/engines/engine.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"
#include "incr/util/stats.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2 };

bool SmokeMode() {
  const char* v = std::getenv("INCR_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

ViewTreeEngine<IntRing> MakeEngine() {
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  INCR_CHECK(tree.ok());
  return ViewTreeEngine<IntRing>(*std::move(tree));
}

std::vector<Delta<IntRing>> DrawUpdates(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Delta<IntRing>> out;
  out.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Delta<IntRing> d;
    d.relation.assign(rng.Chance(0.5) ? "R" : "S", 1);
    d.tuple = Tuple{rng.UniformInt(0, 499), rng.UniformInt(0, 999)};
    d.delta = 1;
    out.push_back(std::move(d));
  }
  return out;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runs `iters` timed EnumerateSnapshot calls; appends each latency (ns)
/// to `lat_ns` and returns the total tuples enumerated.
int64_t TimedEnumerations(IvmEngine<IntRing>& e, int64_t iters,
                          std::vector<double>* lat_ns) {
  int64_t tuples = 0;
  for (int64_t i = 0; i < iters; ++i) {
    const uint64_t t0 = NowNs();
    tuples += static_cast<int64_t>(e.EnumerateSnapshot(nullptr));
    lat_ns->push_back(static_cast<double>(NowNs() - t0));
  }
  return tuples;
}

void EmitLatencyRow(JsonArrayWriter* json, const char* section,
                    const std::vector<double>& lat_ns, int64_t enums,
                    int64_t tuples, double seconds) {
  const double p50 = Percentile(lat_ns, 50);
  const double p99 = Percentile(lat_ns, 99);
  Row({section, FmtInt(enums), Fmt(p50), Fmt(p99),
       Fmt(seconds == 0 ? 0.0 : static_cast<double>(enums) / seconds)});
  json->BeginObject();
  json->Field("section", std::string(section));
  json->Field("enumerations", enums);
  json->Field("tuples", tuples);
  json->Field("p50_ns", p50);
  json->Field("p99_ns", p99);
  json->Field("enums_per_s",
              seconds == 0 ? 0.0 : static_cast<double>(enums) / seconds);
  json->EndObject();
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const int64_t n_initial = smoke ? 5000 : 100000;
  const int64_t idle_iters = smoke ? 200 : 2000;
  const int64_t load_batches = smoke ? 300 : 3000;
  const size_t batch = 100;
  // Readers never exceed the cores left after the maintainer: on a
  // starved host extra readers only measure run-queue wait, not the
  // serving path.
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t n_readers =
      hw > 4 ? 4 : (hw > 1 ? static_cast<size_t>(hw) - 1 : 1);
  JsonArrayWriter json;

  ViewTreeEngine<IntRing> eng = MakeEngine();
  EngineOptions opts;
  opts.snapshot_reads = true;
  opts.max_retained_epochs = 4;
  eng.Configure(opts);

  // Initial database, applied as batches through the normal publish path.
  auto initial = DrawUpdates(n_initial, 42);
  for (size_t off = 0; off < initial.size(); off += batch) {
    size_t n = std::min(batch, initial.size() - off);
    eng.ApplyBatch(std::span<const Delta<IntRing>>(initial.data() + off, n));
  }

  Section("snapshot enumeration latency: idle vs under update load");
  Row({"mode", "enums", "p50 ns", "p99 ns", "enums/s"});

  // Part 1: idle baseline — no writer running.
  std::vector<double> idle_lat;
  idle_lat.reserve(static_cast<size_t>(idle_iters));
  const uint64_t idle_t0 = NowNs();
  int64_t idle_tuples = TimedEnumerations(eng, idle_iters, &idle_lat);
  const double idle_s = static_cast<double>(NowNs() - idle_t0) * 1e-9;
  EmitLatencyRow(&json, "idle", idle_lat, idle_iters, idle_tuples, idle_s);
  const double idle_p99 = Percentile(idle_lat, 99);

  // Part 2: the maintainer streams batches while readers enumerate.
  auto load = DrawUpdates(load_batches * static_cast<int64_t>(batch), 43);
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> reader_lat(n_readers);
  std::vector<int64_t> reader_tuples(n_readers, 0);
  std::vector<int64_t> reader_enums(n_readers, 0);
  std::vector<std::thread> readers;
  readers.reserve(n_readers);
  const uint64_t load_t0 = NowNs();
  for (size_t r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        reader_tuples[r] += TimedEnumerations(eng, 1, &reader_lat[r]);
        ++reader_enums[r];
      }
    });
  }
  for (int64_t b = 0; b < load_batches; ++b) {
    const auto* p = load.data() + b * static_cast<int64_t>(batch);
    eng.ApplyBatch(std::span<const Delta<IntRing>>(p, batch));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  const double load_s = static_cast<double>(NowNs() - load_t0) * 1e-9;

  std::vector<double> load_lat;
  int64_t load_tuples = 0;
  int64_t load_enums = 0;
  for (size_t r = 0; r < n_readers; ++r) {
    load_lat.insert(load_lat.end(), reader_lat[r].begin(),
                    reader_lat[r].end());
    load_tuples += reader_tuples[r];
    load_enums += reader_enums[r];
  }
  EmitLatencyRow(&json, "loaded", load_lat, load_enums, load_tuples, load_s);
  const double load_p99 = Percentile(load_lat, 99);

  const double batch_rate = static_cast<double>(load_batches) / load_s;
  std::printf("maintainer: %lld batches of %zu deltas in %.2f s (%.3g batches/s)\n",
              static_cast<long long>(load_batches), batch, load_s, batch_rate);
  json.BeginObject();
  json.Field("section", std::string("maintainer"));
  json.Field("batches", load_batches);
  json.Field("batch_deltas", static_cast<int64_t>(batch));
  json.Field("batches_per_s", batch_rate);
  json.EndObject();

  const double ratio = idle_p99 == 0 ? 0.0 : load_p99 / idle_p99;
  std::printf("acceptance: loaded p99 %.3g ns vs idle p99 %.3g ns = %.2fx %s 2x target\n",
              load_p99, idle_p99, ratio, ratio <= 2.0 ? "<=" : "EXCEEDS");
  if (hw < n_readers + 1) {
    // The 2x bar assumes the maintainer and each reader get a core. When
    // they time-share, p99 includes whole maintainer batches of run-queue
    // wait — scheduler preemption, not reader-writer interference (the
    // read path takes no locks either way).
    std::printf(
        "note: %u hardware thread(s) for %zu reader(s) + 1 maintainer — "
        "p99 is dominated by preemption; judge the 2x target on a host "
        "with >= %zu cores\n",
        hw, n_readers, n_readers + 1);
  }
  json.BeginObject();
  json.Field("section", std::string("acceptance"));
  json.Field("idle_p99_ns", idle_p99);
  json.Field("loaded_p99_ns", load_p99);
  json.Field("p99_ratio", ratio);
  json.Field("readers", static_cast<int64_t>(n_readers));
  json.Field("cores_contended",
             static_cast<int64_t>(hw < n_readers + 1 ? 1 : 0));
  json.EndObject();

  if (!json.WriteFile("BENCH_serving.json")) {
    std::fprintf(stderr, "failed to write BENCH_serving.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_serving.json\n");
  return 0;
}
