// E13 (paper §4.4, "Functional Dependencies"): the TPC-H classification
// census. The paper reports (citing the ICDE'09 study) that 8 Boolean and
// 13 non-Boolean TPC-H queries are hierarchical, with 4 + 4 more becoming
// hierarchical under the schema's functional dependencies. We reproduce
// the census on our documented flattening of the 22 join structures (see
// workload/tpch.h): per query, hierarchical / q-hierarchical with and
// without the key FDs, plus totals.
#include <cstdio>

#include "bench_util.h"
#include "incr/query/fd.h"
#include "incr/query/properties.h"
#include "incr/workload/tpch.h"

using namespace incr;
using namespace incr::bench;

int main() {
  Section("E13: TPC-H structural census (paper §4.4)");
  Row({"query", "hier", "hier+fd", "qh(full)", "qh+fd", "acyclic"}, 10);
  int hier = 0, hier_fd = 0, qh = 0, qh_fd = 0;
  for (const TpchQuery& q : TpchQueries()) {
    FdSet fds = TpchFdsFor(q.full);
    bool h = IsHierarchical(q.boolean);
    bool hf = IsQHierarchicalUnderFds(q.boolean, fds);  // Boolean: q == h
    bool qhier = IsQHierarchical(q.full);
    bool qhf = IsQHierarchicalUnderFds(q.full, fds);
    hier += h;
    hier_fd += hf;
    qh += qhier;
    qh_fd += qhf;
    Row({"Q" + std::to_string(q.number), h ? "yes" : "-", hf ? "yes" : "-",
         qhier ? "yes" : "-", qhf ? "yes" : "-",
         IsAlphaAcyclic(q.full) ? "yes" : "-"},
        10);
  }
  std::printf("\ntotals over 22 queries:\n");
  Row({"", "hier", "hier+fd", "qh(full)", "qh+fd"}, 10);
  Row({"count", FmtInt(hier), FmtInt(hier_fd), FmtInt(qh), FmtInt(qh_fd)},
      10);
  std::printf("\npaper (ICDE'09 encodings): 8 Boolean hierarchical -> 12 "
              "with FDs; 13 non-Boolean -> 17 with FDs. Our flattening "
              "differs in the subquery treatment, so totals differ; the "
              "reproduced phenomenon is the FD-driven jump.\n");
  return 0;
}
