// E16: write-ahead logging overhead and recovery throughput (DESIGN.md
// §durability).
//
// Part 1 measures the cost of durability on the q-hierarchical single-tuple
// fast path: the same update stream is driven through a bare ViewTreeEngine
// (no log), a DurableEngine with group commit (the default), and a
// DurableEngine flushing every append (group_commit_window_us = 0). All
// logged modes run with fsync off, so the comparison isolates the logging
// work (encode + CRC + buffered write) from disk latency. Expected shape:
// group-commit logging stays within 2x of the unlogged engine — the
// acceptance bar — while flush-per-append pays the syscall on every update.
//
// Part 2 measures batch logging (one record per 1k-delta batch), checkpoint
// cost, and recovery replay throughput (records/s through the normal
// Update/ApplyBatch path). Results land in BENCH_wal.json.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "incr/engines/durable_engine.h"
#include "incr/engines/engine.h"
#include "incr/ring/int_ring.h"
#include "incr/store/recover.h"
#include "incr/util/rng.h"
#include "incr/util/stopwatch.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2 };

bool SmokeMode() {
  const char* v = std::getenv("INCR_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

std::unique_ptr<IvmEngine<IntRing>> MakeEngine() {
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  INCR_CHECK(tree.ok());
  return std::make_unique<ViewTreeEngine<IntRing>>(*std::move(tree));
}

std::vector<Delta<IntRing>> DrawUpdates(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Delta<IntRing>> out;
  out.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Delta<IntRing> d;
    d.relation.assign(rng.Chance(0.5) ? "R" : "S", 1);
    d.tuple = Tuple{rng.UniformInt(0, n / 4 + 1), rng.UniformInt(0, 999)};
    d.delta = 1;
    out.push_back(std::move(d));
  }
  return out;
}

const char* kDir = "/tmp/incr_bench_wal";

void ResetDir() {
  std::remove(store::WalPath(kDir).c_str());
  std::remove(store::SnapshotPath(kDir).c_str());
}

EngineOptions DurableOpts(uint32_t window_us) {
  EngineOptions opts;
  opts.durability_dir = kDir;
  opts.fsync = false;  // isolate logging cost from disk latency
  opts.group_commit_window_us = window_us;
  return opts;
}

double RunSingles(IvmEngine<IntRing>& e,
                  const std::vector<Delta<IntRing>>& updates) {
  Stopwatch sw;
  for (const auto& d : updates) e.Update(d.relation, d.tuple, d.delta);
  return sw.ElapsedSeconds();
}

double RunBatches(IvmEngine<IntRing>& e,
                  const std::vector<Delta<IntRing>>& updates, size_t batch) {
  Stopwatch sw;
  for (size_t off = 0; off < updates.size(); off += batch) {
    size_t n = std::min(batch, updates.size() - off);
    e.ApplyBatch(std::span<const Delta<IntRing>>(updates.data() + off, n));
  }
  return sw.ElapsedSeconds();
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const int64_t n_single = smoke ? 20000 : 500000;
  const int64_t n_batch = smoke ? 20000 : 500000;
  const size_t batch = 1000;
  JsonArrayWriter json;

  INCR_CHECK(store::EnsureDir(kDir).ok());

  Section("single-tuple updates: logged vs unlogged");
  Row({"mode", "ops", "ns/op", "overhead"});
  auto updates = DrawUpdates(n_single, 42);

  auto unlogged = MakeEngine();
  double base_s = RunSingles(*unlogged, updates);
  double base_ns = NsPerOp(base_s, n_single);
  Row({"unlogged", FmtInt(n_single), Fmt(base_ns), "1.00x"});
  json.BeginObject();
  json.Field("section", std::string("single"));
  json.Field("mode", std::string("unlogged"));
  json.Field("ops", n_single);
  json.Field("ns_per_op", base_ns);
  json.Field("overhead_x", 1.0);
  json.EndObject();

  struct Mode {
    const char* name;
    uint32_t window_us;
  };
  double group_overhead = 0;
  for (Mode m : {Mode{"wal+groupcommit", 1000}, Mode{"wal+flush-each", 0}}) {
    ResetDir();
    auto durable = DurableEngine<IntRing>::Open(MakeEngine(), DurableOpts(m.window_us));
    INCR_CHECK(durable.ok());
    double s = RunSingles(**durable, updates);
    INCR_CHECK((*durable)->Sync().ok());
    double ns = NsPerOp(s, n_single);
    double overhead = ns / base_ns;
    if (m.window_us != 0) group_overhead = overhead;
    Row({m.name, FmtInt(n_single), Fmt(ns), Fmt(overhead, "%.2f") + "x"});
    json.BeginObject();
    json.Field("section", std::string("single"));
    json.Field("mode", std::string(m.name));
    json.Field("ops", n_single);
    json.Field("ns_per_op", ns);
    json.Field("overhead_x", overhead);
    json.Field("wal_bytes", static_cast<int64_t>((*durable)->wal_bytes()));
    json.EndObject();
  }
  std::printf("acceptance: group-commit overhead %.2fx %s 2x target\n",
              group_overhead, group_overhead <= 2.0 ? "<=" : "EXCEEDS");

  Section("1k-delta batches: logged vs unlogged");
  Row({"mode", "ops", "ns/op", "overhead"});
  auto batch_updates = DrawUpdates(n_batch, 43);
  auto unlogged_b = MakeEngine();
  double base_bs = RunBatches(*unlogged_b, batch_updates, batch);
  double base_bns = NsPerOp(base_bs, n_batch);
  Row({"unlogged", FmtInt(n_batch), Fmt(base_bns), "1.00x"});
  json.BeginObject();
  json.Field("section", std::string("batch"));
  json.Field("mode", std::string("unlogged"));
  json.Field("ops", n_batch);
  json.Field("ns_per_op", base_bns);
  json.Field("overhead_x", 1.0);
  json.EndObject();

  ResetDir();
  {
    auto durable = DurableEngine<IntRing>::Open(MakeEngine(), DurableOpts(1000));
    INCR_CHECK(durable.ok());
    double s = RunBatches(**durable, batch_updates, batch);
    INCR_CHECK((*durable)->Sync().ok());
    double ns = NsPerOp(s, n_batch);
    Row({"wal+groupcommit", FmtInt(n_batch), Fmt(ns),
         Fmt(ns / base_bns, "%.2f") + "x"});
    json.BeginObject();
    json.Field("section", std::string("batch"));
    json.Field("mode", std::string("wal+groupcommit"));
    json.Field("ops", n_batch);
    json.Field("ns_per_op", ns);
    json.Field("overhead_x", ns / base_bns);
    json.Field("wal_bytes", static_cast<int64_t>((*durable)->wal_bytes()));
    json.EndObject();

    // Checkpoint: snapshot the loaded state and truncate the log.
    Stopwatch sw;
    INCR_CHECK((*durable)->Checkpoint().ok());
    double ckpt_ms = sw.ElapsedMillis();
    std::printf("checkpoint: %.1f ms (wal truncated to %zu bytes)\n", ckpt_ms,
                (*durable)->wal_bytes());
    json.BeginObject();
    json.Field("section", std::string("checkpoint"));
    json.Field("mode", std::string("checkpoint"));
    json.Field("millis", ckpt_ms);
    json.EndObject();
  }

  Section("recovery replay throughput");
  // Rebuild a WAL-only log, then time Open()'s replay of every record.
  ResetDir();
  {
    auto durable = DurableEngine<IntRing>::Open(MakeEngine(), DurableOpts(1000));
    INCR_CHECK(durable.ok());
    RunSingles(**durable, updates);
    INCR_CHECK((*durable)->Sync().ok());
  }
  {
    auto recovered = DurableEngine<IntRing>::Open(MakeEngine(), DurableOpts(1000));
    INCR_CHECK(recovered.ok());
    const auto& info = (*recovered)->recovery_info();
    double replay_s = static_cast<double>(info.replay_ns) * 1e-9;
    double rate = replay_s == 0
                      ? 0.0
                      : static_cast<double>(info.replayed_records) / replay_s;
    std::printf("replayed %llu records in %.1f ms (%.3g records/s)\n",
                static_cast<unsigned long long>(info.replayed_records),
                replay_s * 1e3, rate);
    json.BeginObject();
    json.Field("section", std::string("recovery"));
    json.Field("mode", std::string("replay"));
    json.Field("ops", static_cast<int64_t>(info.replayed_records));
    json.Field("replay_ms", replay_s * 1e3);
    json.Field("records_per_s", rate);
    json.EndObject();
  }
  ResetDir();

  if (!json.WriteFile("BENCH_wal.json")) {
    std::fprintf(stderr, "failed to write BENCH_wal.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_wal.json\n");
  return 0;
}
