// E9 (paper §4.5, Ex. 4.14): static vs dynamic relations.
//
//   Q(A,B,C) = SUM_D R^d(A,D) * S^d(A,B) * T^s(B,C)
//
// With T static, the searched mixed view tree gives O(1) updates to R and
// S (flat in N). For contrast we adorn everything dynamic and maintain the
// same tree: updates to T then fan out over the A's joining each B.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "incr/engines/mixed_engine.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

Query TheQuery() {
  return Query("Q", Schema{A, B, C},
               {Atom{"R", Schema{A, D}}, Atom{"S", Schema{A, B}},
                Atom{"T", Schema{B, C}}});
}

}  // namespace

int main() {
  Query q = TheQuery();
  INCR_CHECK(!IsTractableMixed(q, {false, false, false}));
  INCR_CHECK(IsTractableMixed(q, {false, false, true}));

  Section("E9: Ex. 4.14 — updates to R,S with static T; ns per update");
  Row({"N", "dyn-update(ns)", "staticT-upd(ns)", "agg"});
  std::vector<double> xs, dyn_ns;
  for (int64_t n : {20000, 80000, 320000}) {
    auto e = MixedStaticDynamicEngine<IntRing>::Make(q, {false, false, true});
    INCR_CHECK(e.ok());
    Rng rng(5);
    int64_t n_b = std::max<int64_t>(2, n / 100);
    // Static T: each B joins ~100 C's... keep |T| = n with n_b B-values.
    for (int64_t i = 0; i < n; ++i) {
      e->Load(2, Tuple{rng.UniformInt(0, n_b - 1), rng.UniformInt(0, n)}, 1);
    }
    // Initial dynamic data.
    for (int64_t i = 0; i < n / 2; ++i) {
      e->Load(0, Tuple{rng.UniformInt(0, n), rng.UniformInt(0, 50)}, 1);
      e->Load(1, Tuple{rng.UniformInt(0, n), rng.UniformInt(0, n_b - 1)}, 1);
    }
    e->Seal();
    const int64_t kOps = 8000;
    Stopwatch sw;
    for (int64_t i = 0; i < kOps / 4; ++i) {
      Value a = rng.UniformInt(0, n);
      Tuple tr{a, rng.UniformInt(0, 50)};
      Tuple ts{a, rng.UniformInt(0, n_b - 1)};
      INCR_CHECK(e->UpdateDynamic(0, tr, 1).ok());
      INCR_CHECK(e->UpdateDynamic(1, ts, 1).ok());
      INCR_CHECK(e->UpdateDynamic(1, ts, -1).ok());
      INCR_CHECK(e->UpdateDynamic(0, tr, -1).ok());
    }
    double ns = NsPerOp(sw.ElapsedSeconds(), kOps);
    xs.push_back(static_cast<double>(n));
    dyn_ns.push_back(ns);
    Row({FmtInt(n), Fmt(ns), Fmt(ns),
         FmtInt(e->Aggregate())});
  }
  Section("slope (paper: ~0 — constant-time updates with static T)");
  Row({"staticT-updates", Fmt(LogLogSlope(xs, dyn_ns), "%.2f")});

  // Contrast: what a T update would cost if T were dynamic on this tree.
  Section("contrast: cost of one dT update on the same tree (grows with "
          "the B fan-out — why T must be static)");
  Row({"N", "dT-update(ns)"});
  std::vector<double> xs2, t_ns;
  for (int64_t n : {20000, 80000, 320000}) {
    auto vo = FindMixedOrder(q, {false, false, true});
    INCR_CHECK(vo.ok());
    auto tree = ViewTree<IntRing>::Make(q, *std::move(vo));
    INCR_CHECK(tree.ok());
    Rng rng(5);
    int64_t n_b = std::max<int64_t>(2, n / 100);
    for (int64_t i = 0; i < n; ++i) {
      tree->LoadAtom(2, Tuple{rng.UniformInt(0, n_b - 1),
                              rng.UniformInt(0, n)},
                     1);
    }
    for (int64_t i = 0; i < n / 2; ++i) {
      tree->LoadAtom(0, Tuple{rng.UniformInt(0, n), rng.UniformInt(0, 50)},
                     1);
      tree->LoadAtom(1, Tuple{rng.UniformInt(0, n),
                              rng.UniformInt(0, n_b - 1)},
                     1);
    }
    tree->Rebuild();
    const int64_t kOps = 200;
    Stopwatch sw;
    for (int64_t i = 0; i < kOps / 2; ++i) {
      Tuple tt{rng.UniformInt(0, n_b - 1), rng.UniformInt(0, n)};
      tree->UpdateAtom(2, tt, 1);
      tree->UpdateAtom(2, tt, -1);
    }
    double ns = NsPerOp(sw.ElapsedSeconds(), kOps);
    xs2.push_back(static_cast<double>(n));
    t_ns.push_back(ns);
    Row({FmtInt(n), Fmt(ns)});
  }
  Row({"dT-slope", Fmt(LogLogSlope(xs2, t_ns), "%.2f")});
  return 0;
}
