// E8 (paper §4.4, Ex. 4.13): PK-FK valid batches on the IMDB-like join
//
//   Q(mid, cid) = Title(mid) * MovieCompanies(mid, cid) * Company(cid)
//
// with adversarial intra-batch order (children before parents on insert,
// parents before children on delete). Expected shape: amortized per-update
// cost stays flat as the fan-out (movies per company) grows, even though
// individual Company updates cost O(fanout) — their cost is charged to the
// fanout child updates that each ran in O(1).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "incr/constraints/fk.h"
#include "incr/core/view_tree.h"
#include "incr/ring/int_ring.h"
#include "incr/workload/imdb.h"

using namespace incr;
using namespace incr::bench;

int main() {
  Section("E8: PK-FK valid batches, IMDB-like join (Ex. 4.13)");
  std::printf("per-update cost split by relation: Company rows resolve (or "
              "orphan) their `fanout` children at once\n");
  Row({"fanout", "amortized(ns)", "child(ns)", "company(ns)", "batch-viol",
       "consistent"});
  std::vector<double> xs, amort, comp;
  for (int64_t fanout : {4, 16, 64, 256}) {
    ImdbWorkload wl(21);
    auto tree = ViewTree<IntRing>::Make(wl.query(), wl.Order());
    INCR_CHECK(tree.ok());
    FkConsistencyTracker tracker({{"MovieCompanies", 0, "Title", 0},
                                  {"MovieCompanies", 1, "Company", 0}});
    int64_t updates = 0, company_updates = 0, child_updates = 0;
    int64_t max_violations = 0;
    double company_secs = 0, child_secs = 0;
    Stopwatch total;
    for (int round = 0; round < 8; ++round) {
      auto batch = wl.NextValidBatch(/*n_companies=*/4096 / fanout, fanout);
      for (const auto& u : batch) {
        Stopwatch one;
        tree->Update(u.rel, u.tuple, u.delta);
        double secs = one.ElapsedSeconds();
        if (u.rel == "Company") {
          company_secs += secs;
          ++company_updates;
        } else {
          child_secs += secs;
          ++child_updates;
        }
        tracker.OnUpdate(u.rel, u.tuple, u.delta);
        max_violations = std::max(max_violations, tracker.violations());
        ++updates;
      }
      INCR_CHECK(tracker.IsConsistent());
    }
    double a = NsPerOp(total.ElapsedSeconds(), updates);
    double c = NsPerOp(company_secs, company_updates);
    double ch = NsPerOp(child_secs, child_updates);
    xs.push_back(static_cast<double>(fanout));
    amort.push_back(a);
    comp.push_back(c);
    Row({FmtInt(fanout), Fmt(a), Fmt(ch), Fmt(c), FmtInt(max_violations),
         tracker.IsConsistent() ? "yes" : "NO"});
  }
  Section("slopes vs fanout (paper: amortized ~0; a single Company update "
          "grows ~1 — exactly the cost the amortization spreads over its "
          "children)");
  Row({"amortized", Fmt(LogLogSlope(xs, amort), "%.2f")});
  Row({"company", Fmt(LogLogSlope(xs, comp), "%.2f")});
  return 0;
}
