// E5 (paper Thm. 4.1): the q-hierarchical dichotomy, measured.
//
// For a q-hierarchical query under its canonical view tree, single-tuple
// update time and enumeration delay are O(1): flat as N grows. For a
// non-q-hierarchical query maintained eagerly (enumerable order), update
// time grows with N. Expected slopes: ~0 for q-hierarchical update and
// delay; clearly positive for the non-q-hierarchical eager updates.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "incr/core/view_tree.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2 };

// Q-hierarchical: Q(A,B,C) = R(A,B) * S(A,C).
double MeasureQhUpdate(int64_t n, double* delay_ns, double* first_ns) {
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  INCR_CHECK(tree.ok());
  Rng rng(9);
  for (int64_t i = 0; i < n; ++i) {
    // ~4 B's and 4 C's per A value: output ~ 8N tuples... keep fan-in 2x2.
    Value a = rng.UniformInt(0, n / 2);
    tree->Update(i % 2 == 0 ? "R" : "S", Tuple{a, rng.UniformInt(0, 1000)},
                 1);
  }
  const int64_t kOps = 20000;
  Stopwatch sw;
  for (int64_t i = 0; i < kOps / 2; ++i) {
    Value a = rng.UniformInt(0, n / 2);
    Value b = rng.UniformInt(0, 1000);
    tree->Update("R", Tuple{a, b}, 1);
    tree->Update("R", Tuple{a, b}, -1);
  }
  double update_ns = NsPerOp(sw.ElapsedSeconds(), kOps);

  // Enumeration delay: time-to-first and amortized per-tuple time over a
  // bounded prefix (so the measurement itself is O(1)-ish per N).
  Stopwatch first;
  ViewTreeEnumerator<IntRing> it(*tree);
  *first_ns = first.ElapsedMicros() * 1000.0;
  const int64_t kPrefix = 20000;
  Stopwatch en;
  int64_t taken = 0;
  for (; it.Valid() && taken < kPrefix; it.Next()) ++taken;
  *delay_ns = NsPerOp(en.ElapsedSeconds(), taken);
  return update_ns;
}

// Non-q-hierarchical Q(A) = SUM_B R(A,B)*S(B), maintained with the eager
// (enumerable) order A -> B: dS(b) fans out to all A partners of b.
double MeasureNonQhUpdate(int64_t n) {
  Query q("Q", Schema{A}, {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  auto vo = VariableOrder::FromPath(q, {A, B});
  INCR_CHECK(vo.ok());
  auto tree = ViewTree<IntRing>::Make(q, *vo);
  INCR_CHECK(tree.ok());
  Rng rng(9);
  int64_t n_b = 64;  // fixed #B-values: each b joins ~N/64 a's (fan-out
                     // grows with N, so dS updates must grow linearly)
  for (int64_t i = 0; i < n; ++i) {
    tree->Update("R", Tuple{rng.UniformInt(0, n), rng.UniformInt(0, n_b)},
                 1);
  }
  for (Value b = 0; b < n_b; ++b) tree->Update("S", Tuple{b}, 1);
  const int64_t kOps = 2000;
  Stopwatch sw;
  for (int64_t i = 0; i < kOps / 2; ++i) {
    Value b = rng.UniformInt(0, n_b - 1);
    tree->Update("S", Tuple{b}, 1);
    tree->Update("S", Tuple{b}, -1);
  }
  return NsPerOp(sw.ElapsedSeconds(), kOps);
}

}  // namespace

int main() {
  Section("E5: Thm. 4.1 dichotomy — update time and delay vs N");
  Row({"N", "qh-update(ns)", "qh-delay(ns)", "qh-first(ns)",
       "nonqh-update(ns)"});
  std::vector<double> xs, qh_upd, qh_del, nq_upd;
  for (int64_t n : {20000, 80000, 320000, 1280000}) {
    double delay = 0, first = 0;
    double upd = MeasureQhUpdate(n, &delay, &first);
    double nq = MeasureNonQhUpdate(n);
    xs.push_back(static_cast<double>(n));
    qh_upd.push_back(upd);
    qh_del.push_back(delay);
    nq_upd.push_back(nq);
    Row({FmtInt(n), Fmt(upd), Fmt(delay), Fmt(first), Fmt(nq)});
  }
  Section("slopes (paper: q-hierarchical ~0 update and delay; "
          "non-q-hierarchical update grows with N)");
  Row({"series", "slope"});
  Row({"qh-update", Fmt(LogLogSlope(xs, qh_upd), "%.2f")});
  Row({"qh-delay", Fmt(LogLogSlope(xs, qh_del), "%.2f")});
  Row({"nonqh-update", Fmt(LogLogSlope(xs, nq_upd), "%.2f")});
  return 0;
}
