// E14: the batched delta pipeline (DESIGN.md §"Delta pipeline").
//
// Part 1 sweeps batch sizes {1, 10, 100, 1k, 10k} over a q-hierarchical
// query, a non-q-hierarchical query under a path order, and the cyclic
// triangle query, comparing per-tuple application (ApplyBatchPerTuple)
// against node-at-a-time propagation (ApplyBatch). Expected shape: the
// two coincide at batch 1; node-at-a-time pulls ahead as batches grow,
// dramatically so on non-q-hierarchical queries where duplicate deltas
// merge before their O(N) fan-out programs run. Both trees receive the
// same deltas, so the final aggregates must agree — a built-in check of
// the §2 batch-commutativity claim. Results land in BENCH_batch.json.
//
// Part 2 drives every maintenance engine in the library through the
// unified IvmEngine<R> interface: named-delta batches in, output
// enumeration out, one code path for all of them.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "incr/cascade/cascade_engine.h"
#include "incr/core/view_tree.h"
#include "incr/cqap/cqap_engine.h"
#include "incr/engines/engine.h"
#include "incr/engines/mixed_engine.h"
#include "incr/engines/shattered_engine.h"
#include "incr/engines/strategies.h"
#include "incr/insertonly/insert_only_engine.h"
#include "incr/obs/metrics.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

using Entry = ViewTree<IntRing>::BatchEntry;

// INCR_BENCH_SMOKE=1 shrinks the sweep so CI can exercise the full binary
// (including the JSON/trace plumbing) in seconds instead of minutes.
bool SmokeMode() {
  const char* v = std::getenv("INCR_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

// A sweep workload: how to build a preloaded tree and how to draw one
// batch of insert deltas (deletions are the same batch negated).
struct Workload {
  std::string name;
  std::function<ViewTree<IntRing>()> build;
  std::function<Entry(Rng&)> draw;
};

Workload QHierarchicalWorkload() {
  // Q(A,B,C) = R(A,B), S(A,C), canonical order: O(1) per update.
  const int64_t n = 100000;
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  return {
      "qhierarchical",
      [q, n] {
        auto tree = ViewTree<IntRing>::Make(q);
        INCR_CHECK(tree.ok());
        Rng rng(7);
        for (int64_t i = 0; i < n; ++i) {
          tree->UpdateAtom(i % 2, Tuple{rng.UniformInt(0, n / 2),
                                        rng.UniformInt(0, 999)}, 1);
        }
        return *std::move(tree);
      },
      [n](Rng& rng) {
        return Entry{static_cast<size_t>(rng.UniformInt(0, 1)),
                     Tuple{rng.UniformInt(0, n / 2),
                           rng.UniformInt(0, 999)}, 1};
      },
  };
}

Workload NonQHierarchicalWorkload() {
  // Q(A) = SUM_B R(A,B)*S(B) under the path order A -> B. A delta to S(b)
  // fans out to every A-partner of b (~N/64 of them), so merging the ~64
  // distinct S-deltas of a large batch before propagation is the whole
  // game.
  const int64_t n = 200000;
  const int64_t n_b = 64;
  Query q("Q", Schema{A}, {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  return {
      "nonqh-fanout",
      [q, n, n_b] {
        auto vo = VariableOrder::FromPath(q, {A, B});
        INCR_CHECK(vo.ok());
        auto tree = ViewTree<IntRing>::Make(q, *vo);
        INCR_CHECK(tree.ok());
        Rng rng(7);
        for (int64_t i = 0; i < n; ++i) {
          tree->UpdateAtom(0, Tuple{rng.UniformInt(0, n - 1),
                                    rng.UniformInt(0, n_b - 1)}, 1);
        }
        for (Value b = 0; b < n_b; ++b) tree->UpdateAtom(1, Tuple{b}, 1);
        return *std::move(tree);
      },
      [n_b](Rng& rng) {
        return Entry{1, Tuple{rng.UniformInt(0, n_b - 1)}, 1};
      },
  };
}

Workload TriangleWorkload() {
  // Cyclic Q() = R(A,B), S(B,C), T(C,A) under the path order A -> B -> C
  // over a 256-node graph; a delta edge joins against both neighbor
  // relations.
  const int64_t v = 256;
  const int64_t edges = 20000;
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  return {
      "triangle",
      [q, v, edges] {
        auto vo = VariableOrder::FromPath(q, {A, B, C});
        INCR_CHECK(vo.ok());
        auto tree = ViewTree<IntRing>::Make(q, *vo);
        INCR_CHECK(tree.ok());
        Rng rng(7);
        for (size_t a = 0; a < 3; ++a) {
          for (int64_t i = 0; i < edges; ++i) {
            tree->UpdateAtom(a, Tuple{rng.UniformInt(0, v - 1),
                                      rng.UniformInt(0, v - 1)}, 1);
          }
        }
        return *std::move(tree);
      },
      [v](Rng& rng) {
        return Entry{0, Tuple{rng.UniformInt(0, v - 1),
                              rng.UniformInt(0, v - 1)}, 1};
      },
  };
}

// Measures one (workload, batch size) cell: the same delta stream is
// applied per-tuple to one tree and node-at-a-time to an identically
// preloaded second tree. Even repetitions insert a fresh batch, odd ones
// retract it, so the database stays near its preloaded size.
void MeasureCell(const Workload& w, int64_t batch_size, double* per_tuple_ns,
                 double* batched_ns, std::string* node_stats_json) {
  ViewTree<IntRing> seq_tree = w.build();
  ViewTree<IntRing> bat_tree = w.build();
  bat_tree.ResetNodeStats();  // drop the preload's share of the counters
  const int64_t total_ops = SmokeMode() ? 2000 : 20000;
  int64_t reps = std::max<int64_t>(2, total_ops / batch_size);
  if (reps % 2 != 0) ++reps;
  Rng rng(13);
  std::vector<Entry> batch;
  double seq_secs = 0, bat_secs = 0;
  int64_t ops = 0;
  for (int64_t rep = 0; rep < reps; ++rep) {
    if (rep % 2 == 0) {
      batch.clear();
      for (int64_t i = 0; i < batch_size; ++i) batch.push_back(w.draw(rng));
    } else {
      for (Entry& e : batch) e.delta = -e.delta;
    }
    Stopwatch seq;
    seq_tree.ApplyBatchPerTuple(batch);
    seq_secs += seq.ElapsedSeconds();
    Stopwatch bat;
    bat_tree.ApplyBatch(std::span<const Entry>(batch));
    bat_secs += bat.ElapsedSeconds();
    ops += batch_size;
  }
  // Ring-identical end states (§2 batch commutativity), checked for free.
  INCR_CHECK(seq_tree.Aggregate() == bat_tree.Aggregate());
  *per_tuple_ns = NsPerOp(seq_secs, ops);
  *batched_ns = NsPerOp(bat_secs, ops);
  *node_stats_json = bat_tree.NodeStatsJson();
}

// ---------------------------------------------------------------------
// Part 2: one driver for every engine in the library.

// Applies a named-delta batch and enumerates through nothing but the
// IvmEngine interface.
void DriveEngine(IvmEngine<IntRing>& e,
                 const std::vector<Delta<IntRing>>& deltas) {
  Stopwatch sw;
  e.ApplyBatch(deltas);
  double ms = sw.ElapsedMillis();
  size_t out = e.Enumerate(nullptr);
  Row({e.name(), FmtInt(static_cast<int64_t>(deltas.size())),
       FmtInt(static_cast<int64_t>(out)), Fmt(ms, "%.3f")});
}

std::vector<Delta<IntRing>> DrawNamedDeltas(
    const std::vector<std::pair<std::string, size_t>>& rels, int64_t count,
    int64_t domain, Rng& rng) {
  std::vector<Delta<IntRing>> out;
  for (int64_t i = 0; i < count; ++i) {
    const auto& [rel, arity] =
        rels[rng.UniformInt(0, static_cast<int64_t>(rels.size()) - 1)];
    Tuple t;
    for (size_t c = 0; c < arity; ++c) {
      t.push_back(rng.UniformInt(0, domain - 1));
    }
    out.push_back({rel, std::move(t), 1});
  }
  return out;
}

void RunAllEngines() {
  Section("E14b: every engine behind IvmEngine<R> (batch in, enum out)");
  Row({"engine", "deltas", "output", "ms"});
  Rng rng(21);
  const int64_t kBatch = 256;

  // The four Fig. 4 strategies + the bare view-tree engine over the
  // q-hierarchical Q(A,B,C) = R(A,B), S(A,C).
  Query qh("Q", Schema{A, B, C},
           {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto deltas = DrawNamedDeltas({{"R", 2}, {"S", 2}}, kBatch, 64, rng);
  for (auto& s : MakeAllStrategies<IntRing>(qh)) DriveEngine(*s, deltas);
  auto vt = ViewTree<IntRing>::Make(qh);
  INCR_CHECK(vt.ok());
  ViewTreeEngine<IntRing> vte(*std::move(vt));
  DriveEngine(vte, deltas);

  // Mixed static/dynamic (§4.5): S and T static, R and U dynamic.
  Query mq("Q", Schema{A, C, D},
           {Atom{"R", Schema{A, D}}, Atom{"S", Schema{A, B}},
            Atom{"T", Schema{B, C}}, Atom{"U", Schema{D}}});
  auto mixed = MixedStaticDynamicEngine<IntRing>::Make(
      mq, {false, true, true, false});
  INCR_CHECK(mixed.ok());
  for (int64_t i = 0; i < 256; ++i) {
    mixed->Load(1, Tuple{rng.UniformInt(0, 63), rng.UniformInt(0, 63)}, 1);
    mixed->Load(2, Tuple{rng.UniformInt(0, 63), rng.UniformInt(0, 63)}, 1);
  }
  mixed->Seal();
  DriveEngine(*mixed, DrawNamedDeltas({{"R", 2}, {"U", 1}}, kBatch, 64, rng));

  // Shattered small-domain engine (§4.4): Y ranges over 4 values.
  Query sq("Q", Schema{},
           {Atom{"R", Schema{A}}, Atom{"S", Schema{A, B}},
            Atom{"T", Schema{B}}});
  auto shat = ShatteredEngine<IntRing>::Make(sq, Schema{B});
  INCR_CHECK(shat.ok());
  std::vector<Delta<IntRing>> sdeltas;
  for (int64_t i = 0; i < kBatch; ++i) {
    switch (rng.UniformInt(0, 2)) {
      case 0: sdeltas.push_back({"R", Tuple{rng.UniformInt(0, 63)}, 1});
              break;
      case 1: sdeltas.push_back({"S", Tuple{rng.UniformInt(0, 63),
                                            rng.UniformInt(0, 3)}, 1});
              break;
      default: sdeltas.push_back({"T", Tuple{rng.UniformInt(0, 3)}, 1});
    }
  }
  DriveEngine(*shat, sdeltas);

  // Cascade (§4.2): Q1 over R,S,T rewritten through q-hierarchical Q2.
  Query q1("Q1", Schema{A, B, C, D},
           {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
            Atom{"T", Schema{C, D}}});
  Query q2("Q2", Schema{A, B, C},
           {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}});
  auto casc = CascadeEngine<IntRing>::Make(q1, q2);
  INCR_CHECK(casc.ok());
  DriveEngine(*casc,
              DrawNamedDeltas({{"R", 2}, {"S", 2}, {"T", 2}}, kBatch, 16,
                              rng));

  // CQAP with no input variables (§4.3): Enumerate() is the one access.
  auto cqap = CqapEngine<IntRing>::Make(CqapQuery::Make(
      "fig3", Schema{}, Schema{A, B, C},
      {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}}));
  INCR_CHECK(cqap.ok());
  DriveEngine(*cqap, DrawNamedDeltas({{"R", 2}, {"S", 2}}, kBatch, 64, rng));

  // Insert-only (§4.6): alpha-acyclic join, inserts only.
  Query joinq("Q", Schema{A, B, C},
              {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}});
  auto ins = InsertOnlyEngine::Make(joinq);
  INCR_CHECK(ins.ok());
  DriveEngine(*ins, DrawNamedDeltas({{"R", 2}, {"S", 2}}, kBatch, 64, rng));
}

}  // namespace

int main() {
  Section("E14a: per-tuple vs node-at-a-time batches (ns/delta)");
  Row({"query", "batch", "per-tuple", "batched", "speedup"});
  JsonArrayWriter json;
  const std::vector<int64_t> batches =
      SmokeMode() ? std::vector<int64_t>{1, 1000}
                  : std::vector<int64_t>{1, 10, 100, 1000, 10000};
  for (const Workload& w :
       {QHierarchicalWorkload(), NonQHierarchicalWorkload(),
        TriangleWorkload()}) {
    std::string node_stats;
    for (int64_t batch : batches) {
      double per_tuple = 0, batched = 0;
      MeasureCell(w, batch, &per_tuple, &batched, &node_stats);
      double speedup = batched > 0 ? per_tuple / batched : 0;
      Row({w.name, FmtInt(batch), Fmt(per_tuple), Fmt(batched),
           Fmt(speedup, "%.2f")});
      json.BeginObject();
      json.Field("query", w.name);
      json.Field("batch", batch);
      json.Field("per_tuple_ns", per_tuple);
      json.Field("batched_ns", batched);
      json.Field("speedup", speedup);
      json.EndObject();
    }
    // Per-node maintenance stats of the largest batched cell.
    json.RawSection("node_stats." + w.name, node_stats);
  }
  RunAllEngines();
  // Global metrics snapshot (counters, gauges, latency histograms) from
  // everything the run touched, embedded in the artifact.
  json.RawSection("stats", obs::MetricsRegistry::Global().Snapshot().ToJson());
  if (json.WriteFile("BENCH_batch.json")) {
    std::printf("\nwrote BENCH_batch.json\n");
  }
  return 0;
}
