// Shared helpers for the experiment harnesses: simple aligned table output
// and timing wrappers. Each bench binary regenerates one paper artifact
// (see DESIGN.md §3) and prints the measured series next to the paper's
// expected shape.
#ifndef INCR_BENCH_BENCH_UTIL_H_
#define INCR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "incr/util/stats.h"
#include "incr/util/stopwatch.h"

namespace incr::bench {

/// Prints a separator + title block.
inline void Section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Fixed-width row printing: Row({"a","b"}) with width 14.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, const char* fmt = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

/// Nanoseconds per op given total seconds and op count.
inline double NsPerOp(double seconds, int64_t ops) {
  return ops == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(ops);
}

}  // namespace incr::bench

#endif  // INCR_BENCH_BENCH_UTIL_H_
