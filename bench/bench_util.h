// Shared helpers for the experiment harnesses: simple aligned table output
// and timing wrappers. Each bench binary regenerates one paper artifact
// (see DESIGN.md §3) and prints the measured series next to the paper's
// expected shape.
#ifndef INCR_BENCH_BENCH_UTIL_H_
#define INCR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "incr/util/stats.h"
#include "incr/util/stopwatch.h"
#include "incr/version.h"

namespace incr::bench {

/// Accumulates flat objects and writes them as a JSON object — the
/// machine-readable BENCH_*.json artifacts next to the printed tables.
/// Layout: {"build": {...}, <raw sections>, "rows": [...]} where "build"
/// is BuildInfoJson() and raw sections are verbatim JSON values attached
/// via RawSection (e.g. a StatsSnapshot or per-node view-tree stats).
class JsonArrayWriter {
 public:
  void BeginObject() { fields_.clear(); }

  void Field(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + key + "\": \"" + Escape(value) + "\"");
  }
  void Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.push_back("\"" + key + "\": " + buf);
  }
  void Field(const std::string& key, int64_t value) {
    fields_.push_back("\"" + key + "\": " + std::to_string(value));
  }

  void EndObject() {
    std::string obj = "  {";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) obj += ", ";
      obj += fields_[i];
    }
    obj += "}";
    objects_.push_back(std::move(obj));
  }

  /// Attaches a top-level `"key": <json>` section, emitted before "rows".
  /// `json` must already be valid JSON (object, array, or scalar).
  void RawSection(const std::string& key, std::string json) {
    sections_.emplace_back(key, std::move(json));
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    // The build section additionally records the machine's hardware
    // concurrency and the bench's wall-clock duration (writer construction
    // to WriteFile) — enough to judge whether two BENCH_*.json artifacts
    // were produced under comparable conditions.
    std::string build = BuildInfoJson();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start_;
    char extra[96];
    std::snprintf(extra, sizeof(extra),
                  ", \"hardware_concurrency\": %u, \"wall_seconds\": %.3f}",
                  std::thread::hardware_concurrency(), wall.count());
    build.replace(build.rfind('}'), 1, extra);
    std::fprintf(f, "{\n\"build\": %s,\n", build.c_str());
    for (const auto& [key, json] : sections_) {
      std::fprintf(f, "\"%s\": %s,\n", Escape(key).c_str(), json.c_str());
    }
    std::fprintf(f, "\"rows\": [\n");
    for (size_t i = 0; i < objects_.size(); ++i) {
      std::fprintf(f, "%s%s\n", objects_[i].c_str(),
                   i + 1 < objects_.size() ? "," : "");
    }
    std::fprintf(f, "]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  // Escapes '"' and '\' so arbitrary query/engine names stay valid JSON.
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::string> fields_;
  std::vector<std::string> objects_;
  std::vector<std::pair<std::string, std::string>> sections_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Prints a separator + title block.
inline void Section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Fixed-width row printing: Row({"a","b"}) with width 14.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, const char* fmt = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

/// Nanoseconds per op given total seconds and op count.
inline double NsPerOp(double seconds, int64_t ops) {
  return ops == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(ops);
}

}  // namespace incr::bench

#endif  // INCR_BENCH_BENCH_UTIL_H_
