// E6 (paper §4.2, Ex. 4.5): cascading q-hierarchical queries.
//
// Maintaining {Q1, Q2} with Q1' = Q2 * T piggybacked on Q2's enumeration
// vs maintaining Q1 standalone with the eager-list strategy. Expected
// shape: cascade update cost is O(1) and stays flat as the per-key fan-out
// grows, while the standalone eager maintenance of Q1 degrades with the
// fan-out (each S update touches many Q1 output tuples).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "incr/cascade/cascade_engine.h"
#include "incr/engines/strategies.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

using namespace incr;
using namespace incr::bench;

namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

Query Q1() {
  return Query("Q1", Schema{A, B, C, D},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                Atom{"T", Schema{C, D}}});
}
Query Q2() {
  return Query("Q2", Schema{A, B, C},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}});
}

struct Load {
  int64_t n_keys;
  int64_t fanout;  // A's per B, C's per B, D's per C
};

// Streams: preload fanout-shaped data, then measure mixed dS updates and,
// separately, one final joint enumeration. Reporting update cost and
// enumeration cost apart makes the trade-off explicit: the cascade's
// updates are O(1) regardless of fan-out (the propagation into Q1 is
// deferred onto Q2's enumeration), while the standalone eager-list engine
// pays O(fanout^2) per update to keep Q1's output list current.
double MeasureCascade(const Load& load, double* enum_ns, size_t* out1) {
  auto e = CascadeEngine<IntRing>::Make(Q1(), Q2());
  INCR_CHECK(e.ok());
  Rng rng(13);
  for (int64_t k = 0; k < load.n_keys; ++k) {
    for (int64_t f = 0; f < load.fanout; ++f) {
      e->Update("R", Tuple{k * load.fanout + f, k}, 1);
      e->Update("S", Tuple{k, k * load.fanout + f}, 1);
      e->Update("T", Tuple{k * load.fanout + f, k}, 1);
    }
  }
  e->EnumerateQ2(nullptr);  // initial sync
  e->EnumerateQ1(nullptr);
  const int64_t kOps = 4000;
  Stopwatch sw;
  for (int64_t i = 0; i < kOps / 2; ++i) {
    Value b = rng.UniformInt(0, load.n_keys - 1);
    Value c = b * load.fanout + rng.UniformInt(0, load.fanout - 1);
    e->Update("S", Tuple{b, c}, 1);
    e->Update("S", Tuple{b, c}, -1);
  }
  double upd = NsPerOp(sw.ElapsedSeconds(), kOps);
  int64_t touched = 0;
  auto count_sink = [&](const Tuple&, const int64_t&) { ++touched; };
  Stopwatch en;
  size_t n2 = e->EnumerateQ2(count_sink);
  *out1 = e->EnumerateQ1(count_sink);
  *enum_ns = NsPerOp(en.ElapsedSeconds(), static_cast<int64_t>(n2 + *out1));
  return upd;
}

double MeasureStandalone(const Load& load, double* enum_ns, size_t* out1) {
  auto vo = VariableOrder::FromParents(Q1(), {B, A, C, D}, {-1, 0, 0, 2});
  INCR_CHECK(vo.ok());
  auto tree = ViewTree<IntRing>::Make(Q1(), *vo);
  INCR_CHECK(tree.ok());
  EagerListStrategy<IntRing> eager(*std::move(tree));
  Rng rng(13);
  for (int64_t k = 0; k < load.n_keys; ++k) {
    for (int64_t f = 0; f < load.fanout; ++f) {
      eager.Update(0, Tuple{k * load.fanout + f, k}, 1);
      eager.Update(1, Tuple{k, k * load.fanout + f}, 1);
      eager.Update(2, Tuple{k * load.fanout + f, k}, 1);
    }
  }
  const int64_t kOps = 4000;
  Stopwatch sw;
  for (int64_t i = 0; i < kOps / 2; ++i) {
    Value b = rng.UniformInt(0, load.n_keys - 1);
    Value c = b * load.fanout + rng.UniformInt(0, load.fanout - 1);
    eager.Update(1, Tuple{b, c}, 1);
    eager.Update(1, Tuple{b, c}, -1);
  }
  double upd = NsPerOp(sw.ElapsedSeconds(), kOps);
  int64_t touched = 0;
  auto count_sink = [&](const Tuple&, const int64_t&) { ++touched; };
  Stopwatch en;
  *out1 = eager.Enumerate(count_sink);
  *enum_ns = NsPerOp(en.ElapsedSeconds(), static_cast<int64_t>(*out1));
  return upd;
}

}  // namespace

int main() {
  Section("E6: cascade {Q1,Q2} vs standalone eager Q1 (Ex. 4.5)");
  std::printf("per-update cost of dS (the hot path) and per-tuple cost of "
              "a full joint enumeration\n");
  Row({"fanout", "cas-upd(ns)", "solo-upd(ns)", "cas-enum(ns/t)",
       "solo-enum(ns/t)", "|Q1|"});
  std::vector<double> xs, cas, alone;
  for (int64_t fanout : {4, 8, 16, 32, 64}) {
    Load load{/*n_keys=*/100, fanout};
    size_t out_c = 0, out_s = 0;
    double c_enum = 0, s_enum = 0;
    double c = MeasureCascade(load, &c_enum, &out_c);
    double s = MeasureStandalone(load, &s_enum, &out_s);
    INCR_CHECK(out_c == out_s);
    xs.push_back(static_cast<double>(fanout));
    cas.push_back(c);
    alone.push_back(s);
    Row({FmtInt(fanout), Fmt(c), Fmt(s), Fmt(c_enum), Fmt(s_enum),
         FmtInt(static_cast<int64_t>(out_c))});
  }
  Section("update-cost slopes vs fanout (paper: cascade ~0 — O(1) updates; "
          "standalone ~1 — each dS touches ~fanout output tuples)");
  Row({"cascade", Fmt(LogLogSlope(xs, cas), "%.2f")});
  Row({"standalone", Fmt(LogLogSlope(xs, alone), "%.2f")});
  return 0;
}
