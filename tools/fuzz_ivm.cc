// fuzz_ivm: the differential-testing CLI. Each seed deterministically
// generates a conjunctive query and an update stream, pushes them through
// every compatible engine configuration (check/differ.h), and reports the
// first disagreement — after shrinking it to a minimal failing pair and
// writing a replayable .repro file.
//
//   fuzz_ivm --seeds 256 --ops 1000          # fixed seed sweep
//   fuzz_ivm --seed 42 --ops 200             # one seed, verbose
//   fuzz_ivm --duration 30                   # run for ~30 seconds
//   fuzz_ivm --replay crash-42.repro         # re-run a written repro
//
// Exit status: 0 when every seed agreed, 1 on any mismatch, 2 on usage or
// I/O errors. Everything is deterministic in the seed set; --duration only
// decides how many consecutive seeds get run.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "incr/check/differ.h"
#include "incr/check/qgen.h"
#include "incr/check/repro.h"
#include "incr/check/shrink.h"
#include "incr/check/wgen.h"
#include "incr/store/recover.h"
#include "incr/util/rng.h"

namespace {

using incr::Dictionary;
using incr::Rng;
using incr::check::DifferOptions;
using incr::check::DiffResult;
using incr::check::GenerateQuery;
using incr::check::GenerateStream;
using incr::check::GenQuery;
using incr::check::QGenOptions;
using incr::check::Stream;
using incr::check::WGenOptions;

struct Args {
  uint64_t seeds = 64;        // number of consecutive seeds
  uint64_t first_seed = 0;    // starting seed
  bool single_seed = false;   // --seed: run exactly one
  size_t ops = 200;           // steps per stream
  double duration_s = 0;      // > 0: run until the wall clock says stop
  size_t check_every = 16;
  size_t threads = 4;
  size_t readers = 0;
  // SIZE_MAX = sweep the built-in morsel axis by seed; anything else
  // (including 0 = engine default) pins one morsel size for every seed.
  size_t morsel = SIZE_MAX;
  bool durable = true;
  bool shrink = true;
  bool quiet = false;
  std::string out_dir = ".";
  std::string replay;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seeds N       run seeds 0..N-1 (default 64)\n"
      "  --seed S        run exactly seed S\n"
      "  --first S       start the sweep at seed S\n"
      "  --ops N         stream steps per seed (default 200)\n"
      "  --duration SEC  run consecutive seeds for ~SEC seconds\n"
      "  --check-every N oracle-compare cadence in steps (default 16)\n"
      "  --threads N     parallel view-tree thread count (default 4)\n"
      "  --morsel BYTES  pin the parallel morsel size (0 = engine default;\n"
      "                  unset = sweep tiny/small/default/huge by seed)\n"
      "  --readers N     concurrent snapshot-reader threads (default 0 =\n"
      "                  skip the snapshot-isolation pass)\n"
      "  --no-durable    skip the WAL kill/recovery passes\n"
      "  --no-shrink     report failures unshrunk\n"
      "  --out-dir DIR   where .repro files and WAL scratch go (default .)\n"
      "  --replay FILE   re-run a .repro file instead of generating\n"
      "  --quiet         only print failures and the final summary\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* a) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--seeds") == 0 && (v = need(i))) {
      a->seeds = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0 && (v = need(i))) {
      a->first_seed = std::strtoull(v, nullptr, 10);
      a->seeds = 1;
      a->single_seed = true;
    } else if (std::strcmp(arg, "--first") == 0 && (v = need(i))) {
      a->first_seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--ops") == 0 && (v = need(i))) {
      a->ops = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--duration") == 0 && (v = need(i))) {
      a->duration_s = std::strtod(v, nullptr);
    } else if (std::strcmp(arg, "--check-every") == 0 && (v = need(i))) {
      a->check_every = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--threads") == 0 && (v = need(i))) {
      a->threads = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--morsel") == 0 && (v = need(i))) {
      a->morsel = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--readers") == 0 && (v = need(i))) {
      a->readers = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--no-durable") == 0) {
      a->durable = false;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      a->shrink = false;
    } else if (std::strcmp(arg, "--out-dir") == 0 && (v = need(i))) {
      a->out_dir = v;
    } else if (std::strcmp(arg, "--replay") == 0 && (v = need(i))) {
      a->replay = v;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      a->quiet = true;
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

DifferOptions MakeDifferOptions(const Args& a, uint64_t seed) {
  DifferOptions d;
  d.check_every = a.check_every;
  d.threads = a.threads;
  d.readers = a.readers;
  d.durable = a.durable;
  d.scratch_dir = a.out_dir + "/.fuzz_wal";
  d.seed = seed;
  // The morsel axis: unless pinned, sweep the differ's parallel variants
  // and snapshot/durability passes across pathological-to-huge morsel
  // grids by seed. 64 bytes forces one-entry morsels (maximal stealing
  // and segment count); 1 GiB degenerates to a single morsel per source.
  if (a.morsel != SIZE_MAX) {
    d.morsel_bytes = a.morsel;
  } else {
    static constexpr size_t kMorselAxis[] = {0, 64, 4096, size_t{1} << 30};
    d.morsel_bytes = kMorselAxis[seed % 4];
  }
  return d;
}

/// One seed: generate, run, and on failure shrink + write the repro.
/// Returns true when the differ agreed.
bool RunSeed(const Args& a, uint64_t seed) {
  Rng rng(seed);
  GenQuery q = GenerateQuery(rng, QGenOptions{});

  WGenOptions w;
  w.ops = a.ops;
  // A deterministic mix of regimes across the seed space: every fourth
  // seed is insert-only (unlocking the insert-only engine), half the
  // seeds intern fresh strings (exercising kDict WAL records).
  w.insert_only = (seed % 4) == 3;
  Dictionary dict;
  if ((seed % 2) == 0) w.dict = &dict;
  Stream stream = GenerateStream(rng, q, w);

  DifferOptions dopts = MakeDifferOptions(a, seed);
  DiffResult r = incr::check::RunDiffer(q, stream, dopts);
  if (r.ok) {
    if (!a.quiet) {
      std::printf("seed %llu: %s  [%s, %zu atoms, %zu steps%s]\n",
                  static_cast<unsigned long long>(seed), r.Summary().c_str(),
                  q.shape.c_str(), q.query.atoms().size(),
                  stream.steps.size(), stream.insert_only ? ", insert-only" : "");
    }
    return true;
  }

  std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
              r.Summary().c_str());
  std::printf("  query: %s\n", q.text.c_str());

  const GenQuery* final_q = &q;
  const Stream* final_s = &stream;
  incr::check::ShrinkResult shrunk;
  if (a.shrink) {
    shrunk = incr::check::Shrink(q, stream, dopts);
    final_q = &shrunk.query;
    final_s = &shrunk.stream;
    std::printf("  shrunk to %zu steps / %zu deltas / %zu atoms (%zu probes)\n",
                final_s->steps.size(), final_s->NumDeltas(),
                final_q->query.atoms().size(), shrunk.probes);
  }
  const std::string path =
      a.out_dir + "/fuzz-" + std::to_string(seed) + ".repro";
  incr::Status st = incr::check::WriteReproFile(path, *final_q, *final_s, seed);
  if (st.ok()) {
    std::printf("  repro written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  FAILED to write repro: %s\n",
                 st.message().c_str());
  }
  return false;
}

int Replay(const Args& a) {
  auto repro = incr::check::LoadReproFile(a.replay);
  if (!repro.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", a.replay.c_str(),
                 repro.status().message().c_str());
    return 2;
  }
  DifferOptions dopts = MakeDifferOptions(a, repro->seed);
  DiffResult r = incr::check::RunDiffer(repro->query, repro->stream, dopts);
  std::printf("replay %s (seed %llu): %s\n", a.replay.c_str(),
              static_cast<unsigned long long>(repro->seed),
              r.Summary().c_str());
  return r.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!ParseArgs(argc, argv, &a)) return 2;
  if (incr::Status st = incr::store::EnsureDir(a.out_dir); !st.ok()) {
    std::fprintf(stderr, "cannot create out dir %s: %s\n", a.out_dir.c_str(),
                 st.message().c_str());
    return 2;
  }
  if (!a.replay.empty()) return Replay(a);

  const auto t0 = std::chrono::steady_clock::now();
  auto out_of_time = [&] {
    if (a.duration_s <= 0) return false;
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    return dt.count() >= a.duration_s;
  };

  uint64_t run = 0;
  uint64_t failed = 0;
  uint64_t seed = a.first_seed;
  for (;;) {
    if (a.duration_s > 0) {
      if (out_of_time()) break;
    } else if (run >= a.seeds) {
      break;
    }
    if (!RunSeed(a, seed)) ++failed;
    ++run;
    ++seed;
  }
  std::printf("fuzz_ivm: %llu seeds, %llu failed\n",
              static_cast<unsigned long long>(run),
              static_cast<unsigned long long>(failed));
  return failed == 0 ? 0 : 1;
}
