// Change-data-capture / alerting on a maintained view (paper §1 fn. 2,
// "delta enumeration"): a monitoring rule is a query over event streams;
// the application wants to know exactly which output tuples appeared,
// changed, or disappeared after each update — not to rescan the output.
//
//   Alerts(host, service) = Failing(host, service), OnCall(service)
//
// An alert fires when a failing (host, service) pair has an on-call
// rotation; it clears when the failure resolves or the rotation ends.
#include <cstdio>

#include "incr/incr.h"

using namespace incr;

namespace {

enum : Var { kHost = 0, kService = 1 };

const char* Host(Value v) {
  static const char* names[] = {"web-1", "web-2", "db-1"};
  return names[v];
}
const char* Service(Value v) {
  static const char* names[] = {"http", "postgres"};
  return names[v];
}

}  // namespace

int main() {
  Query q("Alerts", Schema{kHost, kService},
          {Atom{"Failing", Schema{kHost, kService}},
           Atom{"OnCall", Schema{kService}}});
  auto tree = ViewTree<IntRing>::Make(q);
  if (!tree.ok()) return 1;

  auto apply = [&](const char* what, size_t atom, Tuple t, int64_t m) {
    std::printf("-- %s\n", what);
    tree->UpdateAtomWithDeltaEnum(
        atom, t, m,
        [&](const Tuple& out, const int64_t& before, const int64_t& now) {
          // Output order is (service, host): service is the shared root.
          const char* svc = Service(out[0]);
          const char* host = Host(out[1]);
          if (before == 0) {
            std::printf("   ALERT   %s on %s\n", svc, host);
          } else if (now == 0) {
            std::printf("   CLEAR   %s on %s\n", svc, host);
          } else {
            std::printf("   UPDATE  %s on %s (weight %lld -> %lld)\n", svc,
                        host, static_cast<long long>(before),
                        static_cast<long long>(now));
          }
        });
  };

  // Failures accumulate silently: nobody is on call yet.
  apply("web-1 http check fails", 0, Tuple{0, 0}, +1);
  apply("web-2 http check fails", 0, Tuple{1, 0}, +1);

  // The on-call rotation for http starts: both alerts fire at once.
  apply("http on-call rotation starts", 1, Tuple{0}, +1);

  // A second failing probe on web-1 bumps the alert weight.
  apply("web-1 http fails again", 0, Tuple{0, 0}, +1);

  // db-1 postgres fails while postgres has a rotation.
  apply("postgres on-call rotation starts", 1, Tuple{1}, +1);
  apply("db-1 postgres check fails", 0, Tuple{2, 1}, +1);

  // web-2 recovers; later the whole http rotation ends.
  apply("web-2 http recovers", 0, Tuple{1, 0}, -1);
  apply("http rotation ends", 1, Tuple{0}, -1);

  std::printf("-- final alert count: %lld\n",
              static_cast<long long>(tree->Aggregate()));
  return 0;
}
