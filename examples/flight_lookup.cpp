// CQAP example (paper §4.3): access-restricted lookups.
//
// Part 1 — the flight-booking motivation with the paper's tractable shape
// Q(A|B) = S(A,B)*T(B) (Ex. 4.6): to see flights one must supply the day
// and the route; the engine answers each access request with constant
// delay while schedule updates are O(1).
//
//   Q(flight | day, route) = Schedule(flight, day, route) * Active(route)
//
// Part 2 — the triangle-detection CQAP Q(.|A,B,C) = E(A,B)*E(B,C)*E(C,A)
// (Ex. 4.6): given three users, do they form a follow-cycle? Tractable
// even though the underlying query is cyclic.
//
// The example also shows the *dichotomy* side: attaching seat counts as a
// second output variable makes the CQAP intractable (an output variable
// would dominate an input variable), and the engine refuses it.
#include <cstdio>

#include "incr/incr.h"

using namespace incr;

int main() {
  enum : Var { kFlight = 0, kDay = 1, kRoute = 2, kSeats = 3,
               kA = 4, kB = 5, kC = 6 };

  // ---- Part 1: flight lookup ----
  CqapQuery flights = CqapQuery::Make(
      "flights", /*input=*/Schema{kDay, kRoute}, /*output=*/Schema{kFlight},
      {Atom{"Schedule", Schema{kFlight, kDay, kRoute}},
       Atom{"Active", Schema{kRoute}}});
  std::printf("flight lookup tractable: %s\n",
              IsTractableCqap(flights) ? "yes" : "no");
  auto engine = CqapEngine<IntRing>::Make(flights);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  const Value kZrhCdg = 1, kCdgZrh = 2;
  engine->Update("Active", Tuple{kZrhCdg}, 1);
  engine->Update("Active", Tuple{kCdgZrh}, 1);
  engine->Update("Schedule", Tuple{100, 5, kZrhCdg}, 1);
  engine->Update("Schedule", Tuple{101, 5, kZrhCdg}, 1);
  engine->Update("Schedule", Tuple{102, 5, kCdgZrh}, 1);

  auto show = [&](Value day, Value route) {
    std::printf("flights on day %lld route %lld:",
                static_cast<long long>(day), static_cast<long long>(route));
    size_t n = engine->Access(Tuple{day, route},
                              [](const Tuple& t, const int64_t&) {
                                std::printf(" %lld",
                                            static_cast<long long>(t[0]));
                              });
    std::printf(n == 0 ? " (none)\n" : "\n");
  };
  show(5, kZrhCdg);
  engine->Update("Schedule", Tuple{101, 5, kZrhCdg}, -1);  // cancelled
  std::printf("after cancelling flight 101:\n");
  show(5, kZrhCdg);
  engine->Update("Active", Tuple{kCdgZrh}, -1);  // route suspended
  std::printf("after suspending route %lld:\n",
              static_cast<long long>(kCdgZrh));
  show(5, kCdgZrh);

  // The intractable variant: seats as a second output.
  CqapQuery with_seats = CqapQuery::Make(
      "flights_seats", Schema{kDay, kRoute}, Schema{kFlight, kSeats},
      {Atom{"Schedule", Schema{kFlight, kDay, kRoute}},
       Atom{"Seats", Schema{kFlight, kSeats}}});
  std::printf("\nvariant with seat output tractable: %s (engine: %s)\n",
              IsTractableCqap(with_seats) ? "yes" : "no",
              CqapEngine<IntRing>::Make(with_seats).ok() ? "accepted"
                                                         : "rejected");

  // ---- Part 2: triangle detection with all-input access ----
  CqapQuery tri = CqapQuery::Make(
      "tri", Schema{kA, kB, kC}, Schema{},
      {Atom{"E", Schema{kA, kB}}, Atom{"E", Schema{kB, kC}},
       Atom{"E", Schema{kC, kA}}});
  auto tri_engine = CqapEngine<IntRing>::Make(tri);
  std::printf("\ntriangle detection tractable: %s\n",
              tri_engine.ok() ? "yes" : "no");
  tri_engine->Update("E", Tuple{1, 2}, 1);
  tri_engine->Update("E", Tuple{2, 3}, 1);
  tri_engine->Update("E", Tuple{3, 1}, 1);
  std::printf("follow-cycle 1->2->3->1: %s\n",
              tri_engine->Check(Tuple{1, 2, 3}) ? "yes" : "no");
  std::printf("follow-cycle 2->1->3->2: %s\n",
              tri_engine->Check(Tuple{2, 1, 3}) ? "yes" : "no");
  return 0;
}
