// Retailer dashboard (paper §4.1, Fig. 4 workload): maintain the 5-way
// Retailer join under a stream of Inventory inserts with the F-IVM view
// tree, and serve two "dashboard" requests between batches:
//   * full-output enumeration with constant delay (factorized output);
//   * the total join count via the root aggregate, O(1) to read.
#include <cstdio>

#include "incr/incr.h"

using namespace incr;

int main() {
  RetailerWorkload wl(/*n_locations=*/50, /*n_dates=*/10, /*n_items=*/200,
                      /*seed=*/1);
  auto tree = ViewTree<IntRing>::Make(wl.query(), wl.Order());
  if (!tree.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  std::printf("query: 5-way Retailer join; update programs for Inventory "
              "are O(1): %s\n",
              tree->plan().ProgramsConstantTimeFor(
                  {RetailerWorkload::kInventory})
                  ? "yes"
                  : "no");

  // Preload the dimension tables.
  for (const Tuple& t : wl.locations()) {
    tree->UpdateAtom(RetailerWorkload::kLocation, t, 1);
  }
  for (const Tuple& t : wl.censuses()) {
    tree->UpdateAtom(RetailerWorkload::kCensus, t, 1);
  }
  for (const Tuple& t : wl.items()) {
    tree->UpdateAtom(RetailerWorkload::kItem, t, 1);
  }
  for (const Tuple& t : wl.weathers()) {
    tree->UpdateAtom(RetailerWorkload::kWeather, t, 1);
  }

  // Stream Inventory inserts in batches; refresh the dashboard after each.
  for (int batch = 1; batch <= 5; ++batch) {
    for (int i = 0; i < 1000; ++i) {
      tree->UpdateAtom(RetailerWorkload::kInventory,
                       wl.NextInventoryInsert(), 1);
    }
    size_t rows = 0;
    for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
      ++rows;
    }
    std::printf("batch %d: output rows = %zu, total count = %lld\n", batch,
                rows, static_cast<long long>(tree->Aggregate()));
  }

  // Show a few output tuples (locn, date, ksn, zip order per the tree).
  std::printf("sample output tuples:\n");
  int shown = 0;
  for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid() && shown < 5;
       it.Next(), ++shown) {
    std::printf("  %s -> %lld\n", TupleToString(it.tuple()).c_str(),
                static_cast<long long>(it.payload()));
  }
  return 0;
}
