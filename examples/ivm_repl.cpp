// An interactive IVM shell: define a query, stream updates, and read the
// maintained output — the whole library behind a six-command language.
// Runs a scripted demo session when stdin is not a terminal or on EOF.
//
//   query Q(A, B) = R(A, B), S(B)        define + classify + build engine
//   +R 1 2          / +R 1 2 x3          insert (with multiplicity)
//   -R 1 2                               delete
//   enum                                 enumerate the current output
//   agg                                  the full aggregate (count)
//   classify                             structural report for the query
//   help / quit
//
// Values may be integers or identifiers (interned via Dictionary).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "incr/core/view_tree.h"
#include "incr/query/parser.h"
#include "incr/query/properties.h"
#include "incr/ring/int_ring.h"

using namespace incr;

namespace {

struct Session {
  VarRegistry vars;
  Dictionary dict;
  std::optional<Query> query;
  std::optional<ViewTree<IntRing>> tree;

  Value ParseValue(const std::string& tok) {
    char* end = nullptr;
    long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() && *end == '\0') return v;
    // Intern non-numeric tokens; offset to keep them apart from small ints.
    return 1'000'000'000 + dict.Intern(tok);
  }

  std::string RenderValue(Value v) {
    if (v >= 1'000'000'000) {
      const std::string* s = dict.Lookup(v - 1'000'000'000);
      if (s != nullptr) return *s;
    }
    return std::to_string(v);
  }

  void Classify() {
    if (!query) {
      std::printf("no query defined\n");
      return;
    }
    std::printf("  %s\n", query->ToString(vars).c_str());
    std::printf("  hierarchical:    %s\n",
                IsHierarchical(*query) ? "yes" : "no");
    std::printf("  q-hierarchical:  %s\n",
                IsQHierarchical(*query) ? "yes" : "no");
    std::printf("  alpha-acyclic:   %s\n",
                IsAlphaAcyclic(*query) ? "yes" : "no");
    std::printf("  free-connex:     %s\n",
                IsFreeConnex(*query) ? "yes" : "no");
    if (tree) {
      std::printf("  O(1) updates:    %s\n",
                  tree->plan().AllProgramsConstantTime() ? "yes" : "no");
      std::printf("  O(1) delay enum: %s\n",
                  tree->plan().CanEnumerate().ok() ? "yes" : "no");
    }
  }

  void Define(const std::string& text) {
    auto q = ParseQuery(text, &vars);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    StatusOr<ViewTree<IntRing>> t =
        IsHierarchical(*q)
            ? ViewTree<IntRing>::Make(*q)
            : [&]() -> StatusOr<ViewTree<IntRing>> {
                // Fall back to a path order over all variables.
                Schema all = q->AllVars();
                auto vo = VariableOrder::FromPath(
                    *q, std::vector<Var>(all.begin(), all.end()));
                if (!vo.ok()) return vo.status();
                return ViewTree<IntRing>::Make(*q, *std::move(vo));
              }();
    if (!t.ok()) {
      std::printf("error: %s\n", t.status().ToString().c_str());
      return;
    }
    query = *std::move(q);
    tree = *std::move(t);
    Classify();
  }

  void Update(const std::string& line, int64_t sign) {
    if (!tree) {
      std::printf("define a query first\n");
      return;
    }
    std::istringstream in(line);
    std::string rel, tok;
    in >> rel;
    Tuple t;
    int64_t mult = 1;
    while (in >> tok) {
      if (tok.size() > 1 && tok[0] == 'x') {
        char* end = nullptr;
        long long m = std::strtoll(tok.c_str() + 1, &end, 10);
        if (end != tok.c_str() + 1 && *end == '\0') {
          mult = m;
          continue;
        }
      }
      t.push_back(ParseValue(tok));
    }
    bool known = false;
    for (const Atom& a : query->atoms()) {
      if (a.relation == rel) {
        known = true;
        if (a.schema.size() != t.size()) {
          std::printf("arity mismatch: %s has %zu columns\n", rel.c_str(),
                      a.schema.size());
          return;
        }
      }
    }
    if (!known) {
      std::printf("unknown relation '%s'\n", rel.c_str());
      return;
    }
    tree->Update(rel, t, sign * mult);
    std::printf("ok (aggregate = %lld)\n",
                static_cast<long long>(tree->Aggregate()));
  }

  void Enumerate() {
    if (!tree) {
      std::printf("define a query first\n");
      return;
    }
    if (!tree->plan().CanEnumerate().ok()) {
      std::printf("output is not enumerable with this plan (%s); agg is "
                  "still maintained\n",
                  tree->plan().CanEnumerate().ToString().c_str());
      return;
    }
    Schema out = tree->OutputSchema();
    std::string header;
    for (Var v : out) header += vars.Name(v) + " ";
    std::printf("  %s-> payload\n", header.c_str());
    size_t n = 0;
    for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
      Tuple t = it.tuple();
      std::string row;
      for (Value v : t) row += RenderValue(v) + " ";
      std::printf("  %s-> %lld\n", row.c_str(),
                  static_cast<long long>(it.payload()));
      if (++n >= 50) {
        std::printf("  ... (output truncated at 50 rows)\n");
        break;
      }
    }
    std::printf("  (%zu row(s) shown)\n", n);
  }

  bool Handle(const std::string& line) {
    if (line.empty()) return true;
    if (line == "quit" || line == "exit") return false;
    if (line == "help") {
      std::printf("commands: query <def> | +Rel v1 v2 [xN] | -Rel v1 v2 | "
                  "enum | agg | classify | quit\n");
    } else if (line.rfind("query ", 0) == 0) {
      Define(line.substr(6));
    } else if (line[0] == '+') {
      Update(line.substr(1), +1);
    } else if (line[0] == '-') {
      Update(line.substr(1), -1);
    } else if (line == "enum") {
      Enumerate();
    } else if (line == "agg") {
      if (tree) {
        std::printf("%lld\n", static_cast<long long>(tree->Aggregate()));
      }
    } else if (line == "classify") {
      Classify();
    } else {
      std::printf("unrecognized; try 'help'\n");
    }
    return true;
  }
};

const char* kDemoScript[] = {
    "query Q(who, dept) = Emp(who, dept), Dept(dept)",
    "classify",
    "+Emp alice eng",
    "+Emp bob eng",
    "+Emp carol sales",
    "+Dept eng",
    "enum",
    "+Dept sales",
    "enum",
    "-Emp bob eng",
    "enum",
    "agg",
    "quit",
};

}  // namespace

int main() {
  Session session;
  std::printf("incr shell — 'help' for commands\n");
  std::string line;
  size_t demo_idx = 0;
  for (;;) {
    std::printf("ivm> ");
    if (!std::getline(std::cin, line)) {
      // No interactive input: run the scripted demo session.
      if (demo_idx >= sizeof(kDemoScript) / sizeof(kDemoScript[0])) break;
      line = kDemoScript[demo_idx++];
      std::printf("%s\n", line.c_str());
    }
    if (!session.Handle(line)) break;
  }
  return 0;
}
