// An interactive IVM shell: define a query, pick a maintenance engine,
// stream updates (single-tuple or batched), and read the maintained
// output — the whole library behind a small command language. Runs a
// scripted demo session when stdin is not a terminal or on EOF.
//
//   query Q(A, B) = R(A, B), S(B)        define + classify + build engine
//   engine <kind>                        eager-fact | eager-list |
//                                        lazy-fact | lazy-list | view-tree
//                                        (rebuilds empty; view-tree also
//                                        serves non-enumerable plans)
//   +R 1 2          / +R 1 2 x3          insert (with multiplicity)
//   -R 1 2                               delete
//   batch <file>                         apply a file of deltas as one
//                                        batch: `Rel v1 .. vn [xN]` per
//                                        line, optional +/- prefix
//   threads <n>                          batch maintenance on n threads
//                                        (1 = sequential, 0 = hardware;
//                                        results are thread-count
//                                        independent)
//   morsel <bytes>                       work-stealing morsel size for
//                                        parallel batches (0 = cache-sized
//                                        default; results are morsel-size
//                                        independent)
//   durable <dir>                        write-ahead-log every update to
//                                        <dir> and recover state from the
//                                        snapshot + log found there
//   checkpoint                           snapshot engine state to the
//                                        durable dir and truncate the log
//   serve <readers> [millis]             spawn N snapshot-reader threads
//                                        enumerating for ~millis while
//                                        this thread applies a churn load
//                                        (snapshot-capable engines serve
//                                        lock-free; others fall back to a
//                                        mutex-serialized enumeration)
//   options                              show the current EngineOptions
//   enum                                 enumerate the current output
//   agg                                  the full aggregate (count)
//   classify                             structural report for the query
//   stats [reset]                        runtime metrics snapshot (and
//                                        optionally reset counters)
//   trace on <file> / trace off          Chrome trace_event recording
//                                        (open the file in
//                                        chrome://tracing or Perfetto)
//   help / quit
//
// Values may be integers or identifiers (interned via Dictionary).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "incr/incr.h"

using namespace incr;

namespace {

struct Session {
  VarRegistry vars;
  Dictionary dict;
  std::optional<Query> query;
  std::unique_ptr<IvmEngine<IntRing>> engine;
  std::string kind = "eager-fact";
  // One options struct drives every engine rebuild (threads, shards,
  // durability); seeded from the environment, mutated by commands.
  EngineOptions opts = EngineOptions::FromEnv();
  Schema out_schema;  // free vars in the tree's enumeration order
  bool plan_o1_updates = false;
  bool plan_can_enum = false;

  Value ParseValue(const std::string& tok) {
    char* end = nullptr;
    long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() && *end == '\0') return v;
    // Intern non-numeric tokens; offset to keep them apart from small ints.
    return 1'000'000'000 + dict.Intern(tok);
  }

  std::string RenderValue(Value v) {
    if (v >= 1'000'000'000) {
      const std::string* s = dict.Lookup(v - 1'000'000'000);
      if (s != nullptr) return *s;
    }
    return std::to_string(v);
  }

  StatusOr<ViewTree<IntRing>> MakeTree() {
    if (IsHierarchical(*query)) return ViewTree<IntRing>::Make(*query);
    // Fall back to a path order over all variables.
    Schema all = query->AllVars();
    auto vo = VariableOrder::FromPath(
        *query, std::vector<Var>(all.begin(), all.end()));
    if (!vo.ok()) return vo.status();
    return ViewTree<IntRing>::Make(*query, *std::move(vo));
  }

  // (Re)builds `engine` of the requested kind over an empty database.
  Status BuildEngine() {
    auto t = MakeTree();
    if (!t.ok()) return t.status();
    plan_o1_updates = t->plan().AllProgramsConstantTime();
    plan_can_enum = t->plan().CanEnumerate().ok();
    out_schema = t->OutputSchema();
    if (!plan_can_enum && kind != "view-tree") {
      std::printf("note: plan is not enumerable; using the view-tree "
                  "engine (agg only)\n");
      kind = "view-tree";
    }
    std::unique_ptr<IvmEngine<IntRing>> inner;
    if (kind == "view-tree") {
      inner = std::make_unique<ViewTreeEngine<IntRing>>(*std::move(t), opts);
    } else if (kind == "eager-fact") {
      inner = std::make_unique<EagerFactStrategy<IntRing>>(*std::move(t),
                                                           opts);
    } else if (kind == "eager-list") {
      inner = std::make_unique<EagerListStrategy<IntRing>>(*std::move(t),
                                                           opts);
    } else if (kind == "lazy-fact") {
      inner = std::make_unique<LazyFactStrategy<IntRing>>(*std::move(t),
                                                          opts);
    } else if (kind == "lazy-list") {
      inner = std::make_unique<LazyListStrategy<IntRing>>(*std::move(t),
                                                          opts);
    } else {
      return Status::InvalidArgument("unknown engine kind '" + kind + "'");
    }
    if (opts.durability_dir.empty()) {
      engine = std::move(inner);
      return Status::Ok();
    }
    auto durable =
        DurableEngine<IntRing>::Open(std::move(inner), opts, &dict);
    if (!durable.ok()) return durable.status();
    const auto& info = (*durable)->recovery_info();
    if (info.snapshot_loaded || info.replayed_records > 0) {
      std::printf("recovered: snapshot lsn %llu, replayed %llu record(s) "
                  "(%llu delta(s), %llu dict string(s))%s\n",
                  static_cast<unsigned long long>(info.snapshot_lsn),
                  static_cast<unsigned long long>(info.replayed_records),
                  static_cast<unsigned long long>(info.replayed_deltas),
                  static_cast<unsigned long long>(info.dict_entries_restored),
                  info.wal_torn_tail ? "; dropped a torn log tail" : "");
    }
    engine = *std::move(durable);
    return Status::Ok();
  }

  void SetThreads(const std::string& arg) {
    char* end = nullptr;
    long n = std::strtol(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0' || n < 0) {
      std::printf("usage: threads <n>  (0 = hardware default)\n");
      return;
    }
    opts.threads = static_cast<size_t>(n);
    if (engine) engine->Configure(opts);
    std::printf("batch maintenance threads: %zu%s\n", opts.threads,
                opts.threads == 0 ? " (hardware default)" : "");
  }

  void SetMorsel(const std::string& arg) {
    char* end = nullptr;
    long n = std::strtol(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0' || n < 0) {
      std::printf("usage: morsel <bytes>  (0 = cache-sized default)\n");
      return;
    }
    opts.morsel_bytes = static_cast<size_t>(n);
    if (engine) engine->Configure(opts);
    std::printf("morsel size: %zu byte(s)%s\n", opts.morsel_bytes,
                opts.morsel_bytes == 0 ? " (cache-sized default)" : "");
  }

  // Enables durability in `dir`: the engine is rebuilt empty, then restored
  // from the snapshot + WAL found there (so pointing two sessions at the
  // same dir hands state from one to the next).
  void Durable(const std::string& dir) {
    if (dir.empty()) {
      std::printf("usage: durable <dir>\n");
      return;
    }
    opts.durability_dir = dir;
    if (!query) {
      std::printf("durability dir set; takes effect when a query is "
                  "defined\n");
      return;
    }
    Status st = BuildEngine();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      opts.durability_dir.clear();
      return;
    }
    std::printf("durable engine: %s (logging to %s)\n", engine->name(),
                dir.c_str());
  }

  void Checkpoint() {
    auto* durable = dynamic_cast<DurableEngine<IntRing>*>(engine.get());
    if (durable == nullptr) {
      std::printf("no durable engine; use 'durable <dir>' first\n");
      return;
    }
    Status st = durable->Checkpoint();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("checkpoint written at lsn %llu; log truncated\n",
                static_cast<unsigned long long>(durable->last_lsn()));
  }

  // serve <readers> [millis]: N reader threads enumerate snapshots while
  // this thread applies an insert/delete churn on the first atom (net-zero,
  // so the session's output is unchanged afterwards). Engines with a real
  // snapshot path (view-tree, possibly under the durable wrapper) serve
  // readers lock-free from pinned epochs; anything else degrades to a
  // mutex-serialized enumeration so the demo stays data-race free.
  void Serve(const std::string& arg) {
    if (!engine || !query) {
      std::printf("define a query first\n");
      return;
    }
    std::istringstream in(arg);
    size_t n_readers = 0;
    long long millis = 1000;
    if (!(in >> n_readers) || n_readers == 0) {
      std::printf("usage: serve <readers> [millis]\n");
      return;
    }
    long long m = 0;
    if (in >> m && m > 0) millis = m;

    if (!opts.snapshot_reads) {
      opts.snapshot_reads = true;
      engine->Configure(opts);
    }
    IvmEngine<IntRing>* target = engine.get();
    if (auto* d = dynamic_cast<DurableEngine<IntRing>*>(target)) {
      target = &d->inner();
    }
    auto* vt = dynamic_cast<ViewTreeEngine<IntRing>*>(target);
    const bool lock_free = vt != nullptr && vt->tree().snapshots_enabled();

    std::mutex mu;  // fallback path only
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> n_enums{0};
    std::atomic<uint64_t> n_tuples{0};
    std::vector<std::thread> readers;
    readers.reserve(n_readers);
    for (size_t r = 0; r < n_readers; ++r) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          size_t got;
          if (lock_free) {
            got = engine->EnumerateSnapshot(nullptr);
          } else {
            std::lock_guard<std::mutex> lock(mu);
            got = engine->EnumerateSnapshot(nullptr);
          }
          n_tuples.fetch_add(got, std::memory_order_relaxed);
          n_enums.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    const Atom& a = query->atoms()[0];
    Tuple churn_t;
    for (size_t i = 0; i < a.schema.size(); ++i) churn_t.push_back(0);
    uint64_t churn = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count() < static_cast<double>(millis)) {
      if (lock_free) {
        engine->Update(a.relation, churn_t, +1);
        engine->Update(a.relation, churn_t, -1);
      } else {
        std::lock_guard<std::mutex> lock(mu);
        engine->Update(a.relation, churn_t, +1);
        engine->Update(a.relation, churn_t, -1);
      }
      churn += 2;
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("served %llu enumeration(s) (%llu tuple(s)) from %zu "
                "reader(s) in %.2f s [%s] while applying %llu update(s); "
                "%.0f enums/s, aggregate = %lld\n",
                static_cast<unsigned long long>(n_enums.load()),
                static_cast<unsigned long long>(n_tuples.load()), n_readers,
                s, lock_free ? "lock-free snapshots" : "mutex fallback",
                static_cast<unsigned long long>(churn),
                s > 0 ? static_cast<double>(n_enums.load()) / s : 0.0,
                static_cast<long long>(Aggregate()));
  }

  void Options() {
    std::printf("  threads:            %zu%s\n", opts.threads,
                opts.threads == 0 ? " (hardware default)" : "");
    std::printf("  shards:             %zu%s\n", opts.shards,
                opts.shards == 0 ? " (process default)" : "");
    std::printf("  morsel_bytes:       %zu%s\n", opts.morsel_bytes,
                opts.morsel_bytes == 0 ? " (cache-sized default)" : "");
    std::printf("  obs:                %s\n",
                opts.obs.has_value() ? (*opts.obs ? "on" : "off")
                                     : (obs::Enabled() ? "on (process)"
                                                       : "off (process)"));
    std::printf("  durability_dir:     %s\n",
                opts.durability_dir.empty() ? "(none)"
                                            : opts.durability_dir.c_str());
    std::printf("  group_commit_us:    %u\n", opts.group_commit_window_us);
    std::printf("  fsync:              %s\n", opts.fsync ? "on" : "off");
    std::printf("  snapshot_reads:     %s\n",
                opts.snapshot_reads ? "on" : "off");
    std::printf("  max_retained_epochs: %zu\n", opts.max_retained_epochs);
  }

  void Classify() {
    if (!query) {
      std::printf("no query defined\n");
      return;
    }
    std::printf("  %s\n", query->ToString(vars).c_str());
    std::printf("  hierarchical:    %s\n",
                IsHierarchical(*query) ? "yes" : "no");
    std::printf("  q-hierarchical:  %s\n",
                IsQHierarchical(*query) ? "yes" : "no");
    std::printf("  alpha-acyclic:   %s\n",
                IsAlphaAcyclic(*query) ? "yes" : "no");
    std::printf("  free-connex:     %s\n",
                IsFreeConnex(*query) ? "yes" : "no");
    if (engine) {
      std::printf("  engine:          %s\n", engine->name());
      std::printf("  O(1) updates:    %s\n", plan_o1_updates ? "yes" : "no");
      std::printf("  O(1) delay enum: %s\n", plan_can_enum ? "yes" : "no");
    }
  }

  void Define(const std::string& text) {
    auto q = ParseQuery(text, &vars);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    query = *std::move(q);
    Status st = BuildEngine();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      query.reset();
      engine.reset();
      return;
    }
    Classify();
  }

  void SwitchEngine(const std::string& new_kind) {
    if (!query) {
      std::printf("define a query first\n");
      return;
    }
    // Validate before rebuilding: a typo must not wipe the session state.
    if (new_kind != "view-tree" && new_kind != "eager-fact" &&
        new_kind != "eager-list" && new_kind != "lazy-fact" &&
        new_kind != "lazy-list") {
      std::printf("unknown engine kind '%s'; try 'help'\n", new_kind.c_str());
      return;
    }
    kind = new_kind;
    Status st = BuildEngine();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("engine: %s (state cleared; replay your updates)\n",
                engine->name());
  }

  // Parses "Rel v1 .. vn [xN]" (optional +/- prefix on Rel) into a delta.
  // Returns false and prints a diagnostic on malformed input.
  bool ParseDelta(const std::string& line, Delta<IntRing>* out) {
    std::istringstream in(line);
    std::string rel, tok;
    in >> rel;
    int64_t sign = 1;
    if (!rel.empty() && (rel[0] == '+' || rel[0] == '-')) {
      if (rel[0] == '-') sign = -1;
      rel = rel.substr(1);
    }
    Tuple t;
    int64_t mult = 1;
    while (in >> tok) {
      if (tok.size() > 1 && tok[0] == 'x') {
        char* end = nullptr;
        long long m = std::strtoll(tok.c_str() + 1, &end, 10);
        if (end != tok.c_str() + 1 && *end == '\0') {
          mult = m;
          continue;
        }
      }
      t.push_back(ParseValue(tok));
    }
    bool known = false;
    for (const Atom& a : query->atoms()) {
      if (a.relation == rel) {
        known = true;
        if (a.schema.size() != t.size()) {
          std::printf("arity mismatch: %s has %zu columns\n", rel.c_str(),
                      a.schema.size());
          return false;
        }
      }
    }
    if (!known) {
      std::printf("unknown relation '%s'\n", rel.c_str());
      return false;
    }
    *out = Delta<IntRing>{rel, std::move(t), sign * mult};
    return true;
  }

  void Update(const std::string& line, int64_t sign) {
    if (!engine) {
      std::printf("define a query first\n");
      return;
    }
    Delta<IntRing> d;
    if (!ParseDelta(line, &d)) return;
    engine->Update(d.relation, d.tuple, sign * d.delta);
    std::printf("ok (aggregate = %lld)\n",
                static_cast<long long>(Aggregate()));
  }

  // Reads a file of deltas and applies it as ONE batch through the
  // engine's bulk path (node-at-a-time for view trees).
  void Batch(const std::string& path) {
    if (!engine) {
      std::printf("define a query first\n");
      return;
    }
    std::ifstream in(path);
    if (!in) {
      std::printf("cannot open '%s'\n", path.c_str());
      return;
    }
    std::vector<Delta<IntRing>> deltas;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      Delta<IntRing> d;
      if (!ParseDelta(line.substr(start), &d)) {
        std::printf("  (at %s:%zu; batch aborted)\n", path.c_str(), lineno);
        return;
      }
      deltas.push_back(std::move(d));
    }
    auto t0 = std::chrono::steady_clock::now();
    engine->ApplyBatch(deltas);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    double per_s = ms > 0 ? deltas.size() / ms * 1e3 : 0;
    std::printf("applied %zu delta(s) in %.3f ms (%.0f deltas/s), "
                "aggregate = %lld\n",
                deltas.size(), ms, per_s,
                static_cast<long long>(Aggregate()));
  }

  int64_t Aggregate() {
    // The view-tree fallback maintains the aggregate even when the output
    // is not enumerable; every other engine kind has an enumerable plan,
    // and the sum of output payloads IS the aggregate.
    IvmEngine<IntRing>* target = engine.get();
    if (auto* d = dynamic_cast<DurableEngine<IntRing>*>(target)) {
      target = &d->inner();
    }
    if (auto* vt = dynamic_cast<ViewTreeEngine<IntRing>*>(target)) {
      return vt->tree().Aggregate();
    }
    int64_t agg = 0;
    engine->Enumerate([&](const Tuple&, const int64_t& p) { agg += p; });
    return agg;
  }

  void Enumerate() {
    if (!engine) {
      std::printf("define a query first\n");
      return;
    }
    if (!plan_can_enum) {
      std::printf("output is not enumerable with this plan; agg is still "
                  "maintained\n");
      return;
    }
    std::string header;
    for (Var v : out_schema) header += vars.Name(v) + " ";
    std::printf("  %s-> payload\n", header.c_str());
    size_t n = 0;
    size_t total = engine->Enumerate([&](const Tuple& t, const int64_t& p) {
      if (n >= 50) return;
      std::string row;
      for (Value v : t) row += RenderValue(v) + " ";
      std::printf("  %s-> %lld\n", row.c_str(), static_cast<long long>(p));
      ++n;
    });
    if (total > n) std::printf("  ... (output truncated at 50 rows)\n");
    std::printf("  (%zu row(s))\n", total);
  }

  void Stats(bool reset) {
    auto& registry = obs::MetricsRegistry::Global();
    std::printf("%s", registry.Snapshot().ToText().c_str());
    if (!obs::Enabled()) {
      std::printf("(observability is disabled: INCR_OBS=off or compiled "
                  "out)\n");
    }
    if (reset) {
      registry.Reset();
      std::printf("metrics reset\n");
    }
  }

  void Trace(const std::string& arg) {
    auto& tracer = obs::Tracer::Global();
    if (arg == "off") {
      if (!tracer.Active()) {
        std::printf("tracing is not on\n");
        return;
      }
      tracer.StopSession();
      std::printf("trace written\n");
    } else if (arg.rfind("on ", 0) == 0 && arg.size() > 3) {
      if (!obs::Enabled()) {
        std::printf("observability is disabled; no events would be "
                    "recorded\n");
        return;
      }
      tracer.StartSession(arg.substr(3));
      std::printf("tracing to '%s' (trace off to write)\n",
                  arg.substr(3).c_str());
    } else {
      std::printf("usage: trace on <file> | trace off\n");
    }
  }

  bool Handle(const std::string& line) {
    if (line.empty()) return true;
    if (line == "quit" || line == "exit") return false;
    if (line == "help") {
      std::printf("commands: query <def> | engine <kind> | +Rel v1 v2 [xN] "
                  "| -Rel v1 v2 | batch <file> | threads <n> | morsel "
                  "<bytes> | durable <dir> | checkpoint | serve <readers> "
                  "[millis] | options | enum | agg | classify | stats "
                  "[reset] | trace on <file> | trace off | quit\n");
      std::printf("engine kinds: eager-fact eager-list lazy-fact lazy-list "
                  "view-tree\n");
    } else if (line.rfind("query ", 0) == 0) {
      Define(line.substr(6));
    } else if (line.rfind("engine ", 0) == 0) {
      SwitchEngine(line.substr(7));
    } else if (line.rfind("batch ", 0) == 0) {
      Batch(line.substr(6));
    } else if (line.rfind("threads ", 0) == 0) {
      SetThreads(line.substr(8));
    } else if (line.rfind("morsel ", 0) == 0) {
      SetMorsel(line.substr(7));
    } else if (line.rfind("durable ", 0) == 0) {
      Durable(line.substr(8));
    } else if (line == "checkpoint") {
      Checkpoint();
    } else if (line.rfind("serve ", 0) == 0) {
      Serve(line.substr(6));
    } else if (line == "options") {
      Options();
    } else if (line[0] == '+') {
      Update(line.substr(1), +1);
    } else if (line[0] == '-') {
      Update(line.substr(1), -1);
    } else if (line == "enum") {
      Enumerate();
    } else if (line == "agg") {
      if (engine) {
        std::printf("%lld\n", static_cast<long long>(Aggregate()));
      }
    } else if (line == "classify") {
      Classify();
    } else if (line == "stats" || line == "stats reset") {
      Stats(line == "stats reset");
    } else if (line.rfind("trace ", 0) == 0) {
      Trace(line.substr(6));
    } else {
      std::printf("unrecognized; try 'help'\n");
    }
    return true;
  }
};

const char* kDemoScript[] = {
    "query Q(who, dept) = Emp(who, dept), Dept(dept)",
    "classify",
    "+Emp alice eng",
    "+Emp bob eng",
    "+Emp carol sales",
    "+Dept eng",
    "enum",
    "+Dept sales",
    "enum",
    "-Emp bob eng",
    "enum",
    "agg",
    "quit",
};

}  // namespace

int main() {
  Session session;
  std::printf("incr shell — 'help' for commands\n");
  std::string line;
  size_t demo_idx = 0;
  for (;;) {
    std::printf("ivm> ");
    if (!std::getline(std::cin, line)) {
      // No interactive input: run the scripted demo session.
      if (demo_idx >= sizeof(kDemoScript) / sizeof(kDemoScript[0])) break;
      line = kDemoScript[demo_idx++];
      std::printf("%s\n", line.c_str());
    }
    if (!session.Handle(line)) break;
  }
  return 0;
}
