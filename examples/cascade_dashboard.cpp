// Cascading queries (paper §4.2, Ex. 4.5): maintain the pair
//   Q2(A,B,C) = R(A,B) * S(B,C)              (q-hierarchical)
//   Q1(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)   (not q-hierarchical)
// with Q1 rewritten as V_Q2 * T and piggybacked on Q2's enumeration: the
// textbook pattern of a drill-down dashboard where the coarse view (Q2) is
// always shown before the detailed one (Q1).
#include <cstdio>

#include "incr/incr.h"

using namespace incr;

int main() {
  enum : Var { A = 0, B = 1, C = 2, D = 3 };
  Query q1("Q1", Schema{A, B, C, D},
           {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
            Atom{"T", Schema{C, D}}});
  Query q2("Q2", Schema{A, B, C},
           {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}});

  auto engine = CascadeEngine<IntRing>::Make(q1, q2);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("rewritten Q1' is q-hierarchical: %s\n",
              engine->RewrittenIsQHierarchical() ? "yes" : "no");

  engine->Update("R", Tuple{1, 10}, 1);
  engine->Update("R", Tuple{2, 10}, 1);
  engine->Update("S", Tuple{10, 20}, 1);
  engine->Update("T", Tuple{20, 30}, 1);
  engine->Update("T", Tuple{20, 31}, 1);

  auto refresh = [&](const char* when) {
    std::printf("-- %s --\n", when);
    size_t n2 = engine->EnumerateQ2([](const Tuple& t, const int64_t&) {
      std::printf("  Q2 %s\n", TupleToString(t).c_str());
    });
    size_t n1 = engine->EnumerateQ1([](const Tuple& t, const int64_t&) {
      std::printf("  Q1 %s\n", TupleToString(t).c_str());
    });
    std::printf("  (|Q2| = %zu, |Q1| = %zu)\n", n2, n1);
  };

  refresh("initial load");
  engine->Update("S", Tuple{10, 20}, -1);  // breaks every Q1/Q2 tuple
  engine->Update("S", Tuple{10, 21}, 1);
  engine->Update("T", Tuple{21, 40}, 1);
  refresh("after rerouting S");
  return 0;
}
