// Social-network triangle counting (paper §3.3): maintain the triangle
// count of a skewed, sliding-window edge stream with the adaptive IVMe
// maintainer, and watch the heavy/light machinery (migrations, major
// rebalances) react to the skew.
#include <cstdio>

#include "incr/incr.h"

using namespace incr;

int main() {
  IvmEpsTriangleCounter counter(/*epsilon=*/0.5);
  // Power-law endpoints (celebrities!) over 2k vertices, window of 30k
  // edges, mirrored into all three relations (an undirected-ish encoding:
  // R = S = T = the edge set, counting directed 3-cycles).
  GraphStream stream(/*n_vertices=*/2000, /*s=*/1.0, /*window=*/30000,
                     /*seed=*/42);
  for (int step = 1; step <= 100000; ++step) {
    auto e = stream.Next();
    counter.Update(TriangleRel::kR, e.src, e.dst, e.delta);
    counter.Update(TriangleRel::kS, e.src, e.dst, e.delta);
    counter.Update(TriangleRel::kT, e.src, e.dst, e.delta);
    if (step % 20000 == 0) {
      std::printf("step %6d: 3-cycles = %10lld | theta = %lld, heavy "
                  "vertices = %zu, migrations = %lld, major rebalances = "
                  "%lld\n",
                  step, static_cast<long long>(counter.Count()),
                  static_cast<long long>(counter.theta()),
                  counter.NumHeavyKeys(0),
                  static_cast<long long>(counter.num_migrations()),
                  static_cast<long long>(counter.num_major_rebalances()));
    }
  }
  std::printf("final: count = %lld, detected = %s\n",
              static_cast<long long>(counter.Count()),
              counter.Detect() ? "yes" : "no");
  return 0;
}
