// In-database machine learning over a join (paper §6; the F-IVM use case
// [33, 22, 34]): maintain, under updates, the degree-2 statistics (count,
// sums, sums of products) of the features (price, units) spread across two
// relations — everything linear regression of units on price needs — by
// running one view tree over the covariance ring instead of Z.
//
//   Sales(store, item, units), Prices(item, price)
//   Q() = SUM_{store,item} Sales(store,item) * Prices(item)
// with lifting g_units / g_price injecting the feature values.
#include <cstdio>

#include "incr/incr.h"

using namespace incr;

using R2 = CovarRing<2>;  // feature 0: units, feature 1: price

int main() {
  enum : Var { kStore = 0, kItem = 1, kUnits = 2, kPrice = 3 };
  Query q("sales_stats", Schema{},
          {Atom{"Sales", Schema{kStore, kItem, kUnits}},
           Atom{"Prices", Schema{kItem, kPrice}}});
  auto tree = ViewTree<R2>::Make(q);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  // Lift the feature variables into the covariance ring.
  tree->SetLifting(kUnits, [](Value u) {
    return R2::Lift(0, static_cast<double>(u));
  });
  tree->SetLifting(kPrice, [](Value p) {
    return R2::Lift(1, static_cast<double>(p));
  });

  auto report = [&](const char* when) {
    CovarValue<2> v = tree->Aggregate();
    double n = static_cast<double>(v.count);
    if (v.count == 0) {
      std::printf("%s: no joined rows\n", when);
      return;
    }
    double mean_u = v.sum[0] / n, mean_p = v.sum[1] / n;
    double cov_up = v.prod[0 * 2 + 1] / n - mean_u * mean_p;
    double var_p = v.prod[1 * 2 + 1] / n - mean_p * mean_p;
    double slope = var_p == 0 ? 0 : cov_up / var_p;
    std::printf("%s: n=%lld mean(units)=%.2f mean(price)=%.2f "
                "cov=%.2f var(price)=%.2f OLS slope=%.3f\n",
                when, static_cast<long long>(v.count), mean_u, mean_p,
                cov_up, var_p, slope);
  };

  // Prices: item -> price.
  tree->Update("Prices", Tuple{1, 10}, R2::One());
  tree->Update("Prices", Tuple{2, 20}, R2::One());
  tree->Update("Prices", Tuple{3, 40}, R2::One());
  // Sales: cheaper items sell more.
  tree->Update("Sales", Tuple{100, 1, 90}, R2::One());
  tree->Update("Sales", Tuple{100, 2, 50}, R2::One());
  tree->Update("Sales", Tuple{100, 3, 20}, R2::One());
  tree->Update("Sales", Tuple{101, 1, 80}, R2::One());
  tree->Update("Sales", Tuple{101, 3, 25}, R2::One());
  report("initial");

  // A price change is a delete+insert on Prices; the statistics follow
  // incrementally — no rescan of Sales.
  tree->Update("Prices", Tuple{2, 20}, R2::Neg(R2::One()));
  tree->Update("Prices", Tuple{2, 30}, R2::One());
  report("after repricing item 2");

  // A returned sale (delete).
  tree->Update("Sales", Tuple{100, 3, 20}, R2::Neg(R2::One()));
  report("after a returned sale");
  return 0;
}
