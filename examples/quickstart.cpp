// Quickstart: the triangle count query of paper §3 (running example, Fig. 2)
// maintained under inserts and deletes over the ring of integers:
//
//   Q = SUM_{A,B,C} R(A,B) * S(B,C) * T(C,A)
//
// We load a small database with multiplicities, read off the count, apply
// the paper's delete deltaR = {(a2,b1) -> -2}, and read the updated count —
// all through the adaptive IVM^eps maintainer of §3.3, which processes each
// single-tuple update in O(sqrt N) worst-case time at eps = 1/2.
#include <cstdio>

#include "incr/incr.h"

int main() {
  using namespace incr;

  // Value encodings for the domain constants of Fig. 2.
  const Value a1 = 1, a2 = 2, b1 = 11, b2 = 12, c1 = 21, c2 = 22;

  IvmEpsTriangleCounter q(/*epsilon=*/0.5);

  std::printf("Loading the database...\n");
  q.Update(TriangleRel::kR, a1, b1, 1);  // R(a1,b1) -> 1
  q.Update(TriangleRel::kR, a2, b1, 3);  // R(a2,b1) -> 3
  q.Update(TriangleRel::kR, a2, b2, 1);  // R(a2,b2) -> 1
  q.Update(TriangleRel::kS, b1, c1, 2);  // S(b1,c1) -> 2
  q.Update(TriangleRel::kS, b1, c2, 1);  // S(b1,c2) -> 1
  q.Update(TriangleRel::kT, c1, a1, 1);  // T(c1,a1) -> 1
  q.Update(TriangleRel::kT, c2, a2, 1);  // T(c2,a2) -> 1

  // Derivations: (a1,b1,c1) contributes 1*2*1 = 2 and (a2,b1,c2)
  // contributes 3*1*1 = 3, so Q = 5.
  std::printf("Triangle count Q = %lld (expected 5)\n",
              static_cast<long long>(q.Count()));
  std::printf("Triangle detected (Q_b): %s\n", q.Detect() ? "yes" : "no");

  // The paper's update: deltaR = {(a2,b1) -> -2}, i.e. delete two copies.
  std::printf("Applying deltaR = {(a2,b1) -> -2}...\n");
  q.Update(TriangleRel::kR, a2, b1, -2);

  // (a2,b1,c2) now contributes 1*1*1 = 1, so Q = 3.
  std::printf("Triangle count Q = %lld (expected 3)\n",
              static_cast<long long>(q.Count()));

  // Deleting T(c1,a1) removes the remaining derivations through c1.
  q.Update(TriangleRel::kT, c1, a1, -1);
  std::printf("After deleting T(c1,a1): Q = %lld (expected 1)\n",
              static_cast<long long>(q.Count()));

  return 0;
}
