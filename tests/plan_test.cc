// White-box tests of the ViewTreePlan compiler: exact program shapes for
// known queries — every probe of a q-hierarchical canonical plan is fully
// keyed, group scans appear exactly where the theory predicts, index
// requirements are deduplicated.
#include <gtest/gtest.h>

#include "incr/core/view_tree_plan.h"
#include "incr/query/properties.h"
#include "incr/workload/retailer.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, X = 3, Y = 4, Z = 5 };

TEST(PlanTest, Fig3Shapes) {
  // Q(Y,X,Z) = R(Y,X) * S(Y,Z): root Y with children X (atom R) and Z
  // (atom S).
  Query q("Q", Schema{Y, X, Z},
          {Atom{"R", Schema{Y, X}}, Atom{"S", Schema{Y, Z}}});
  auto vo = VariableOrder::Canonical(q);
  ASSERT_TRUE(vo.ok());
  auto plan = ViewTreePlan::Make(q, *vo);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->nodes().size(), 3u);
  ASSERT_EQ(plan->roots().size(), 1u);
  const PlanNode& root = plan->nodes()[static_cast<size_t>(plan->roots()[0])];
  EXPECT_EQ(root.var, Y);
  EXPECT_TRUE(root.atoms.empty());
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_TRUE(root.key.empty());
  EXPECT_EQ(root.w_schema, (Schema{Y}));
  // Each child program at the root joins the sibling child's M with a
  // fully-keyed probe.
  for (const DeltaProgram& p : root.child_programs) {
    ASSERT_EQ(p.steps.size(), 1u);
    EXPECT_TRUE(p.steps[0].full_key);
    EXPECT_EQ(p.steps[0].factor.kind, FactorRef::kChild);
    EXPECT_TRUE(p.constant_time);
  }
  // Leaf nodes: one atom, no steps.
  for (int c : root.children) {
    const PlanNode& leaf = plan->nodes()[static_cast<size_t>(c)];
    ASSERT_EQ(leaf.atoms.size(), 1u);
    ASSERT_EQ(leaf.atom_programs.size(), 1u);
    EXPECT_TRUE(leaf.atom_programs[0].steps.empty());
    EXPECT_EQ(leaf.key, (Schema{Y}));
  }
  EXPECT_TRUE(plan->AllProgramsConstantTime());
}

TEST(PlanTest, GroupScanAppearsForNonQHierarchicalOrder) {
  // Q(A) = R(A,B)*S(B) with eager order A->B: the dS program at node B
  // must scan R's group by B (introducing A).
  Query q("Q", Schema{A}, {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  auto vo = VariableOrder::FromPath(q, {A, B});
  ASSERT_TRUE(vo.ok());
  auto plan = ViewTreePlan::Make(q, *vo);
  ASSERT_TRUE(plan.ok());
  const PlanNode& node_b = plan->nodes()[1];
  EXPECT_EQ(node_b.var, B);
  ASSERT_EQ(node_b.atoms.size(), 2u);  // R and S anchored at B
  // Find S's program: its only step probes R partially (new var A).
  bool found_scan = false;
  for (size_t k = 0; k < node_b.atoms.size(); ++k) {
    if (q.atoms()[node_b.atoms[k]].relation != "S") continue;
    const DeltaProgram& p = node_b.atom_programs[k];
    ASSERT_EQ(p.steps.size(), 1u);
    EXPECT_FALSE(p.steps[0].full_key);
    EXPECT_FALSE(p.constant_time);
    EXPECT_EQ(p.steps[0].new_cols.size(), 1u);
    found_scan = true;
  }
  EXPECT_TRUE(found_scan);
  EXPECT_FALSE(plan->AllProgramsConstantTime());
  EXPECT_TRUE(plan->ProgramsConstantTimeFor({0}));   // dR is O(1)
  EXPECT_FALSE(plan->ProgramsConstantTimeFor({1}));  // dS is not
}

TEST(PlanTest, IndexRequirementsAreDeduplicated) {
  // Two delta sources needing the same index on the same storage share it.
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{B}}});
  auto vo = VariableOrder::FromPath(q, {A, B, C});
  ASSERT_TRUE(vo.ok());
  auto plan = ViewTreePlan::Make(q, *vo);
  ASSERT_TRUE(plan.ok());
  for (const IndexRequirements& reqs : plan->atom_indexes()) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      for (size_t j = i + 1; j < reqs.size(); ++j) {
        EXPECT_FALSE(reqs[i] == reqs[j]);
      }
    }
  }
}

TEST(PlanTest, RetailerOrderShapes) {
  RetailerWorkload wl(10, 3, 10, 1);
  auto plan = ViewTreePlan::Make(wl.query(), wl.Order());
  ASSERT_TRUE(plan.ok());
  // Inventory anchored at ksn (locn -> date -> ksn path).
  int ksn_node = -1;
  for (size_t i = 0; i < plan->nodes().size(); ++i) {
    if (plan->nodes()[i].var == RetailerWorkload::kKsn) {
      ksn_node = static_cast<int>(i);
    }
  }
  ASSERT_GE(ksn_node, 0);
  EXPECT_EQ(plan->atom_node()[RetailerWorkload::kInventory], ksn_node);
  const PlanNode& ksn = plan->nodes()[static_cast<size_t>(ksn_node)];
  EXPECT_EQ(ksn.key, (Schema{RetailerWorkload::kLocn,
                             RetailerWorkload::kDate}));
  // The Inventory program probes Item fully keyed.
  for (size_t k = 0; k < ksn.atoms.size(); ++k) {
    if (ksn.atoms[k] != RetailerWorkload::kInventory) continue;
    for (const JoinStep& s : ksn.atom_programs[k].steps) {
      EXPECT_TRUE(s.full_key);
    }
    EXPECT_TRUE(ksn.atom_programs[k].constant_time);
  }
}

TEST(PlanTest, RepeatedVariableInAtomRejected) {
  // R(A,A) would need an equality check the probes do not emit.
  Query q("Q", Schema{A}, {Atom{"R", Schema{A, A}}});
  auto vo = VariableOrder::FromPath(q, {A});
  ASSERT_TRUE(vo.ok());
  EXPECT_FALSE(ViewTreePlan::Make(q, *vo).ok());
}

TEST(PlanTest, EnumNodesArePreorderFreePrefix) {
  Query q("Q", Schema{Y, X},
          {Atom{"R", Schema{Y, X}}, Atom{"S", Schema{Y, Z}}});
  auto vo = VariableOrder::Canonical(q);
  ASSERT_TRUE(vo.ok());
  auto plan = ViewTreePlan::Make(q, *vo);
  ASSERT_TRUE(plan.ok());
  // Free: Y (root), X; bound: Z. Enum nodes = [Y's node, X's node].
  ASSERT_EQ(plan->enum_nodes().size(), 2u);
  EXPECT_EQ(plan->nodes()[static_cast<size_t>(plan->enum_nodes()[0])].var, Y);
  EXPECT_EQ(plan->nodes()[static_cast<size_t>(plan->enum_nodes()[1])].var, X);
  EXPECT_TRUE(plan->CanEnumerate().ok());
}

}  // namespace
}  // namespace incr
