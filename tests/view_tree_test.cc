// View-tree engine tests (DESIGN.md invariant 5): maintenance equals
// from-scratch recomputation for a catalog of queries under random update
// streams; constant-delay enumeration matches the oracle's output; lifting,
// bindings, bulk rebuild, and non-integer rings all work.
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "incr/core/view_tree.h"
#include "incr/engines/join.h"
#include "incr/query/properties.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/provenance.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

// Shared variable ids for readability.
enum : Var { A = 0, B = 1, C = 2, D = 3, X = 4, Y = 5, Z = 6 };

// Oracle comparison: engine enumeration == EvaluateQuery, tuple for tuple.
void ExpectMatchesOracle(const ViewTree<IntRing>& tree,
                         const LiftMap<IntRing>* lifts = nullptr) {
  const Query& q = tree.query();
  std::vector<const Relation<IntRing>*> rels;
  for (size_t a = 0; a < q.atoms().size(); ++a) {
    rels.push_back(&tree.AtomRelation(a));
  }
  // Aggregate check (free vars also marginalized => compare against the
  // empty-free version of the query).
  Query agg_q(q.name(), Schema{}, q.atoms());
  Relation<IntRing> agg = EvaluateQuery<IntRing>(agg_q, rels, lifts);
  EXPECT_EQ(tree.Aggregate(), agg.Payload(Tuple{}));

  if (!tree.plan().CanEnumerate().ok()) return;

  // Output check: enumerate and compare to the oracle output. The oracle
  // groups by q.free() in declaration order; the enumerator emits free vars
  // in preorder, so project accordingly.
  Relation<IntRing> oracle = EvaluateQuery<IntRing>(q, rels, lifts);
  Schema out_schema = tree.OutputSchema();
  auto positions = ProjectionPositions(out_schema, q.free());
  size_t n = 0;
  std::set<Tuple> seen;
  for (ViewTreeEnumerator<IntRing> it(tree); it.Valid(); it.Next()) {
    Tuple t = it.tuple();
    ASSERT_TRUE(seen.insert(t).second) << "duplicate " << TupleToString(t);
    Tuple key = ProjectTuple(t, positions);
    ASSERT_EQ(it.payload(), oracle.Payload(key))
        << "payload mismatch at " << TupleToString(t);
    ASSERT_NE(oracle.Payload(key), 0) << "spurious " << TupleToString(t);
    ++n;
  }
  EXPECT_EQ(n, oracle.size());
}

Query Fig3Query() {
  // Q(Y,X,Z) = R(Y,X) * S(Y,Z): the q-hierarchical example of Fig. 3.
  return Query("Q", Schema{Y, X, Z},
               {Atom{"R", Schema{Y, X}}, Atom{"S", Schema{Y, Z}}});
}

TEST(ViewTreeTest, Fig3StructureAndMaintenance) {
  Query q = Fig3Query();
  ASSERT_TRUE(IsQHierarchical(q));
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE(tree->plan().AllProgramsConstantTime());
  EXPECT_TRUE(tree->plan().CanEnumerate().ok());

  tree->Update("R", Tuple{1, 10}, 1);   // R(y=1, x=10)
  tree->Update("S", Tuple{1, 20}, 2);   // S(y=1, z=20)
  tree->Update("S", Tuple{1, 21}, 1);
  tree->Update("R", Tuple{2, 11}, 1);   // y=2 has no S partner
  ExpectMatchesOracle(*tree);

  ViewTreeEnumerator<IntRing> it(*tree);
  ASSERT_TRUE(it.Valid());
  size_t count = 0;
  for (; it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 2u);  // (1,10,20) and (1,10,21)

  // Delete the S tuples: y=1 no longer joins.
  tree->Update("S", Tuple{1, 20}, -2);
  tree->Update("S", Tuple{1, 21}, -1);
  ExpectMatchesOracle(*tree);
  ViewTreeEnumerator<IntRing> it2(*tree);
  EXPECT_FALSE(it2.Valid());
}

TEST(ViewTreeTest, AggregateOnlyHierarchicalQuery) {
  // Q(A) = SUM_B R(A,B)*S(B) (Ex. 4.3 / Fig. 7): hierarchical but not
  // q-hierarchical. The canonical order roots B, so the aggregate is O(1)
  // maintainable but the output cannot be enumerated with constant delay.
  Query q("Q", Schema{A},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  ASSERT_TRUE(IsHierarchical(q));
  ASSERT_FALSE(IsQHierarchical(q));
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->plan().AllProgramsConstantTime());
  EXPECT_FALSE(tree->plan().CanEnumerate().ok());

  tree->Update("R", Tuple{1, 5}, 1);
  tree->Update("R", Tuple{2, 5}, 3);
  tree->Update("S", Tuple{5}, 2);
  ExpectMatchesOracle(*tree);  // aggregate = (1+3)*2 = 8
  EXPECT_EQ(tree->Aggregate(), 8);
}

TEST(ViewTreeTest, EagerOrderForNonQHierarchicalEnumerates) {
  // Same query with A above B: updates cost group scans but the output is
  // enumerable — the "eager" corner of Fig. 7's trade-off space.
  Query q("Q", Schema{A},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  auto vo = VariableOrder::FromPath(q, {A, B});
  ASSERT_TRUE(vo.ok());
  auto tree = ViewTree<IntRing>::Make(q, *vo);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->plan().AllProgramsConstantTime());
  EXPECT_TRUE(tree->plan().CanEnumerate().ok());

  tree->Update("R", Tuple{1, 5}, 1);
  tree->Update("R", Tuple{2, 5}, 3);
  tree->Update("R", Tuple{3, 6}, 1);  // b=6 not in S
  tree->Update("S", Tuple{5}, 2);
  ExpectMatchesOracle(*tree);
}

TEST(ViewTreeTest, TriangleViaPathOrder) {
  // Non-hierarchical: the triangle query as a generic view tree.
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  ASSERT_FALSE(IsHierarchical(q));
  auto vo = VariableOrder::FromPath(q, {A, B, C});
  ASSERT_TRUE(vo.ok());
  auto tree = ViewTree<IntRing>::Make(q, *vo);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->plan().AllProgramsConstantTime());

  tree->Update("R", Tuple{1, 11, }, 1);
  tree->Update("R", Tuple{2, 11}, 3);
  tree->Update("S", Tuple{11, 21}, 2);
  tree->Update("S", Tuple{11, 22}, 1);
  tree->Update("T", Tuple{21, 1}, 1);
  tree->Update("T", Tuple{22, 2}, 1);
  EXPECT_EQ(tree->Aggregate(), 5);  // the §3 running example
  tree->Update("R", Tuple{2, 11}, -2);
  EXPECT_EQ(tree->Aggregate(), 3);
  ExpectMatchesOracle(*tree);
}

TEST(ViewTreeTest, SelfJoinAppliesToAllOccurrences) {
  // Q(A,B,C) = E(A,B) * E(B,C): edges joined with themselves.
  Query q("Q", Schema{A, B, C},
          {Atom{"E", Schema{A, B}}, Atom{"E", Schema{B, C}}});
  ASSERT_FALSE(q.IsSelfJoinFree());
  auto vo = VariableOrder::FromPath(q, {B, A, C});
  ASSERT_TRUE(vo.ok());
  auto tree = ViewTree<IntRing>::Make(q, *vo);
  ASSERT_TRUE(tree.ok());
  tree->Update("E", Tuple{1, 2}, 1);
  tree->Update("E", Tuple{2, 3}, 1);
  tree->Update("E", Tuple{2, 2}, 1);  // self-loop
  ExpectMatchesOracle(*tree);
  // Output: paths of length 2: (1,2,3), (1,2,2), (2,2,3), (2,2,2).
  size_t n = 0;
  for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) ++n;
  EXPECT_EQ(n, 4u);
  tree->Update("E", Tuple{2, 2}, -1);
  ExpectMatchesOracle(*tree);
}

TEST(ViewTreeTest, DisconnectedQueryCrossProduct) {
  Query q("Q", Schema{X, Y}, {Atom{"R", Schema{X}}, Atom{"S", Schema{Y}}});
  ASSERT_TRUE(IsQHierarchical(q));
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  tree->Update("R", Tuple{1}, 1);
  tree->Update("R", Tuple{2}, 1);
  tree->Update("S", Tuple{7}, 2);
  tree->Update("S", Tuple{8}, 1);
  ExpectMatchesOracle(*tree);
  size_t n = 0;
  for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) ++n;
  EXPECT_EQ(n, 4u);
}

TEST(ViewTreeTest, NoFreeVarsYieldsSingleEmptyTuple) {
  Query q("Q", Schema{}, {Atom{"R", Schema{A}}});
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  {
    ViewTreeEnumerator<IntRing> it(*tree);
    EXPECT_FALSE(it.Valid());  // empty database => empty output
  }
  tree->Update("R", Tuple{3}, 2);
  {
    ViewTreeEnumerator<IntRing> it(*tree);
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.tuple().size(), 0u);
    EXPECT_EQ(it.payload(), 2);
    it.Next();
    EXPECT_FALSE(it.Valid());
  }
}

TEST(ViewTreeTest, BindingRestrictsEnumeration) {
  Query q = Fig3Query();
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  tree->Update("R", Tuple{1, 10}, 1);
  tree->Update("R", Tuple{1, 11}, 1);
  tree->Update("R", Tuple{2, 12}, 1);
  tree->Update("S", Tuple{1, 20}, 1);
  tree->Update("S", Tuple{2, 21}, 1);

  Binding b;
  b.Bind(Y, 1);
  size_t n = 0;
  for (ViewTreeEnumerator<IntRing> it(*tree, b); it.Valid(); it.Next()) {
    EXPECT_EQ(it.tuple()[0], 1);  // Y is the first output var
    ++n;
  }
  EXPECT_EQ(n, 2u);  // (1,10,20), (1,11,20)

  Binding none;
  none.Bind(Y, 99);
  ViewTreeEnumerator<IntRing> it(*tree, none);
  EXPECT_FALSE(it.Valid());

  // Binding a non-root variable: correct, possibly with skips.
  Binding deep;
  deep.Bind(X, 11);
  n = 0;
  for (ViewTreeEnumerator<IntRing> it2(*tree, deep); it2.Valid();
       it2.Next()) {
    EXPECT_EQ(it2.tuple()[1], 11);
    ++n;
  }
  EXPECT_EQ(n, 1u);  // (1,11,20)
}

TEST(ViewTreeTest, LiftingComputesSumAggregates) {
  // Q(A) = SUM_B R(A,B) * g(B) with g(b)=b: SUM(B) group-by A, maintained
  // incrementally.
  Query q("Q", Schema{A}, {Atom{"R", Schema{A, B}}});
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  tree->SetLifting(B, [](Value b) { return b; });
  tree->Update("R", Tuple{1, 10}, 1);
  tree->Update("R", Tuple{1, 5}, 2);   // contributes 2*5
  tree->Update("R", Tuple{2, 7}, 1);
  LiftMap<IntRing> lifts;
  lifts[B] = [](Value b) { return b; };
  ExpectMatchesOracle(*tree, &lifts);
  // Spot-check: group A=1 has 10 + 2*5 = 20.
  ViewTreeEnumerator<IntRing> it(*tree);
  std::map<Value, int64_t> got;
  for (; it.Valid(); it.Next()) got[it.tuple()[0]] = it.payload();
  EXPECT_EQ(got[1], 20);
  EXPECT_EQ(got[2], 7);
}

TEST(ViewTreeTest, RebuildMatchesIncremental) {
  Query q = Fig3Query();
  auto inc = ViewTree<IntRing>::Make(q);
  auto bulk = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(inc.ok() && bulk.ok());
  Rng rng(3);
  // Valid update stream: deletes target live tuples only, so payloads stay
  // non-negative (the paper's valid-database assumption; see the
  // enumeration caveat in view_tree.h).
  std::vector<std::pair<size_t, Tuple>> live;
  for (int i = 0; i < 300; ++i) {
    size_t atom;
    Tuple t;
    int64_t m;
    if (!live.empty() && rng.Chance(0.3)) {
      size_t k = rng.Uniform(live.size());
      atom = live[k].first;
      t = live[k].second;
      m = -1;
      live[k] = live.back();
      live.pop_back();
    } else {
      atom = rng.Chance(0.5) ? 0 : 1;
      t = Tuple{rng.UniformInt(0, 20), rng.UniformInt(0, 20)};
      m = 1;
      live.emplace_back(atom, t);
    }
    inc->UpdateAtom(atom, t, m);
    bulk->LoadAtom(atom, t, m);
  }
  bulk->Rebuild();
  ExpectMatchesOracle(*inc);
  ExpectMatchesOracle(*bulk);
  EXPECT_EQ(inc->Aggregate(), bulk->Aggregate());
  // Views must be identical, entry for entry.
  for (size_t n = 0; n < inc->plan().nodes().size(); ++n) {
    const auto& wi = inc->NodeW(static_cast<int>(n));
    const auto& wb = bulk->NodeW(static_cast<int>(n));
    ASSERT_EQ(wi.size(), wb.size());
    for (const auto& e : wi) ASSERT_EQ(wb.Payload(e.key), e.value);
  }
}

// ---------------------------------------------------------------------
// Randomized property suite over a catalog of queries.

struct CatalogCase {
  const char* label;
  Query query;
  // Empty => canonical order; otherwise a path order over these vars.
  std::vector<Var> path;
  int domain;
  int steps;
};

class ViewTreePropertyTest : public ::testing::TestWithParam<int> {};

std::vector<CatalogCase> Catalog() {
  std::vector<CatalogCase> cases;
  cases.push_back({"fig3", Fig3Query(), {}, 8, 600});
  cases.push_back({"agg-only",
                   Query("Q", Schema{A},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}}),
                   {},
                   8,
                   600});
  cases.push_back({"eager-nonq",
                   Query("Q", Schema{A},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}}),
                   {A, B},
                   8,
                   600});
  cases.push_back({"triangle",
                   Query("Q", Schema{},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                          Atom{"T", Schema{C, A}}}),
                   {A, B, C},
                   6,
                   500});
  cases.push_back({"path4-all-free",
                   Query("Q", Schema{A, B, C, D},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                          Atom{"T", Schema{C, D}}}),
                   {B, A, C, D},
                   5,
                   500});
  cases.push_back({"star-qh",
                   Query("Q", Schema{A, B, C},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}},
                          Atom{"U", Schema{A}}}),
                   {},
                   6,
                   600});
  cases.push_back({"selfjoin-2path",
                   Query("Q", Schema{A, B, C},
                         {Atom{"E", Schema{A, B}}, Atom{"E", Schema{B, C}}}),
                   {B, A, C},
                   6,
                   400});
  cases.push_back({"boolean-2way",
                   Query("Q", Schema{},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}}),
                   {},
                   8,
                   500});
  // Multiple atoms anchored at one node plus bound leaves: stresses
  // multi-factor programs and the M-of-bound-children payload path.
  cases.push_back({"multi-atom-node",
                   Query("Q", Schema{A, B},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, B}},
                          Atom{"T", Schema{A, B, C}}, Atom{"U", Schema{A}}}),
                   {},
                   5,
                   500});
  // Wide q-hierarchical star with mixed bound branches.
  cases.push_back({"wide-star",
                   Query("Q", Schema{A, B},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}},
                          Atom{"T", Schema{A, D}}, Atom{"U", Schema{A}}}),
                   {},
                   5,
                   500});
  return cases;
}

TEST_P(ViewTreePropertyTest, MatchesOracleUnderRandomStreams) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  for (const CatalogCase& c : Catalog()) {
    SCOPED_TRACE(c.label);
    StatusOr<ViewTree<IntRing>> tree =
        c.path.empty()
            ? ViewTree<IntRing>::Make(c.query)
            : [&] {
                auto vo = VariableOrder::FromPath(c.query, c.path);
                EXPECT_TRUE(vo.ok());
                return ViewTree<IntRing>::Make(c.query, *vo);
              }();
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();

    Rng rng(seed * 1000 + 7);
    std::vector<std::pair<size_t, Tuple>> live;
    for (int step = 0; step < c.steps; ++step) {
      if (!live.empty() && rng.Chance(0.35)) {
        size_t i = rng.Uniform(live.size());
        tree->UpdateAtom(live[i].first, live[i].second, -1);
        live[i] = live.back();
        live.pop_back();
      } else {
        size_t atom = rng.Uniform(c.query.atoms().size());
        Tuple t;
        for (size_t k = 0; k < c.query.atoms()[atom].schema.size(); ++k) {
          t.push_back(rng.UniformInt(0, c.domain - 1));
        }
        int64_t m = rng.Chance(0.2) ? 2 : 1;
        tree->UpdateAtom(atom, t, m);
        live.emplace_back(atom, t);
        if (m == 2) live.emplace_back(atom, t);
      }
      if (step % 97 == 0) ExpectMatchesOracle(*tree);
    }
    ExpectMatchesOracle(*tree);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewTreePropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(ViewTreeProvenanceTest, PayloadsTrackDerivations) {
  // Over the provenance ring, the aggregate of a join is the polynomial sum
  // of products of the input annotations.
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  auto tree = ViewTree<ProvenanceRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  tree->Update("R", Tuple{1, 5}, Polynomial::Var(0));  // annotation x0
  tree->Update("R", Tuple{2, 5}, Polynomial::Var(1));  // x1
  tree->Update("S", Tuple{5}, Polynomial::Var(2));     // x2
  Polynomial agg = tree->Aggregate();
  // (x0 + x1) * x2
  Polynomial expect =
      (Polynomial::Var(0) + Polynomial::Var(1)) * Polynomial::Var(2);
  EXPECT_TRUE(agg == expect) << agg.ToString();

  // Deleting R(1,5) (inserting -x0) removes that derivation.
  tree->Update("R", Tuple{1, 5}, -Polynomial::Var(0));
  EXPECT_TRUE(tree->Aggregate() ==
              Polynomial::Var(1) * Polynomial::Var(2));
}

}  // namespace
}  // namespace incr
