// Workload generator invariants: the synthetic substitutes must actually
// have the structure the experiments assume (DESIGN.md substitution table).
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "incr/core/view_tree_plan.h"
#include "incr/query/properties.h"
#include "incr/workload/graph.h"
#include "incr/workload/imdb.h"
#include "incr/workload/retailer.h"

namespace incr {
namespace {

TEST(RetailerWorkloadTest, StructureMatchesFig4Setup) {
  RetailerWorkload wl(100, 10, 50, 1);
  // The query is NOT q-hierarchical (Ex. 4.10)...
  EXPECT_FALSE(IsQHierarchical(wl.query()));
  EXPECT_FALSE(IsHierarchical(wl.query()));
  // ...but the F-IVM order exists and handles the fact-table stream in
  // O(1) with constant-delay enumeration.
  auto plan = ViewTreePlan::Make(wl.query(), wl.Order());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->CanEnumerate().ok());
  EXPECT_TRUE(plan->ProgramsConstantTimeFor({RetailerWorkload::kInventory}));

  // Location: every location in exactly one zip (the fd locn -> zip of
  // Ex. 4.10's discussion) and every zip in Census.
  std::set<Value> zips;
  std::map<Value, Value> locn_zip;
  for (const Tuple& t : wl.locations()) {
    auto [it, fresh] = locn_zip.emplace(t[0], t[1]);
    EXPECT_TRUE(fresh || it->second == t[1]);
    zips.insert(t[1]);
  }
  std::set<Value> census_zips;
  for (const Tuple& t : wl.censuses()) census_zips.insert(t[0]);
  EXPECT_EQ(zips, census_zips);
  EXPECT_EQ(wl.locations().size(), 100u);
  EXPECT_EQ(wl.weathers().size(), 100u * 10u);

  // Inventory inserts reference existing dimensions (valid joins).
  for (int i = 0; i < 500; ++i) {
    Tuple t = wl.NextInventoryInsert();
    EXPECT_GE(t[0], 0);
    EXPECT_LT(t[0], 100);
    EXPECT_GE(t[1], 0);
    EXPECT_LT(t[1], 10);
    EXPECT_GE(t[2], 0);
    EXPECT_LT(t[2], 50);
  }
}

TEST(RetailerWorkloadTest, ItemStreamIsSkewed) {
  RetailerWorkload wl(10, 5, 1000, 2);
  std::map<Value, int> freq;
  for (int i = 0; i < 5000; ++i) ++freq[wl.NextInventoryInsert()[2]];
  // Zipf-ish: the most popular item should dwarf the uniform share.
  int max_freq = 0;
  for (const auto& [k, f] : freq) max_freq = std::max(max_freq, f);
  EXPECT_GT(max_freq, 5 * 5000 / 1000);
}

TEST(ImdbWorkloadTest, BatchesAreValidAndAdversarial) {
  ImdbWorkload wl(3);
  std::map<Tuple, int64_t> titles, companies, mc;
  for (int round = 0; round < 10; ++round) {
    auto batch = wl.NextValidBatch(5, 7);
    bool child_before_parent = false;
    std::set<Value> seen_cids;
    for (const auto& u : batch) {
      if (u.rel == "MovieCompanies" && u.delta > 0 &&
          companies.count(Tuple{u.tuple[1]}) == 0 &&
          seen_cids.count(u.tuple[1]) == 0) {
        child_before_parent = true;
      }
      if (u.rel == "Company" && u.delta > 0) seen_cids.insert(u.tuple[0]);
      auto& rel = u.rel == "Title" ? titles
                  : u.rel == "Company" ? companies
                                       : mc;
      rel[u.tuple] += u.delta;
      if (rel[u.tuple] == 0) rel.erase(u.tuple);
    }
    EXPECT_TRUE(child_before_parent);
    // Batch boundary: consistent (every FK has its PK).
    for (const auto& [t, m] : mc) {
      EXPECT_TRUE(titles.count(Tuple{t[0]}) > 0) << TupleToString(t);
      EXPECT_TRUE(companies.count(Tuple{t[1]}) > 0) << TupleToString(t);
    }
    // No negative multiplicities at the boundary.
    for (const auto& [t, m] : titles) EXPECT_GT(m, 0);
    for (const auto& [t, m] : companies) EXPECT_GT(m, 0);
  }
}

TEST(GraphStreamTest, WindowBoundsLiveEdges) {
  GraphStream stream(100, 0.5, /*window=*/200, 9);
  int64_t live = 0;
  for (int i = 0; i < 5000; ++i) {
    auto e = stream.Next();
    live += e.delta;
    EXPECT_LE(live, 202);  // window + in-flight slack
    EXPECT_GE(live, 0);
  }
}

TEST(GraphStreamTest, NoWindowMeansInsertOnly) {
  GraphStream stream(50, 1.0, /*window=*/0, 9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(stream.Next().delta, 1);
}

}  // namespace
}  // namespace incr
