// Tests for the observability layer (src/incr/obs/): striped metric
// correctness under concurrency, histogram quantiles against the exact
// Percentile, the registry/snapshot plumbing, allocation-freedom of the
// recording hot path, the Chrome tracer, and the instrumentation hooks in
// the view tree and the engine facade. Suite names start with "Obs" so the
// TSan CI job picks them up via its -R filter.
// The counting operator-new replacement below is malloc/free based; GCC's
// -Wmismatched-new-delete cannot see through the replacement and flags
// every new/delete pair in the TU, so silence it here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "incr/core/view_tree.h"
#include "incr/engines/strategies.h"
#include "incr/obs/metrics.h"
#include "incr/obs/trace.h"
#include "incr/ring/int_ring.h"
#include "incr/util/stats.h"
#include "incr/version.h"

namespace incr {
namespace {

// ---------------------------------------------------------------------
// Global allocation counter: lets ObsDisabledTest assert that recording
// never allocates. Counts every operator-new in the test binary; tests
// only compare deltas across a controlled region.
std::atomic<uint64_t> g_allocs{0};

}  // namespace
}  // namespace incr

void* operator new(std::size_t n) {
  incr::g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  incr::g_allocs.fetch_add(1, std::memory_order_relaxed);
  size_t a = static_cast<size_t>(al);
  void* p = std::aligned_alloc(a, (n + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
// The nothrow variants must be replaced too: libstdc++'s temporary
// buffers (stable_sort) allocate with nothrow new but release through
// sized operator delete, so a partial replacement set pairs the default
// allocator with free() — an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  incr::g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  incr::g_allocs.fetch_add(1, std::memory_order_relaxed);
  size_t a = static_cast<size_t>(al);
  return std::aligned_alloc(a, (n + a - 1) / a * a);
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t& t) noexcept {
  return ::operator new(n, al, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

// Restores the runtime toggle on scope exit so tests cannot leak state.
struct EnabledGuard {
  bool was = obs::Enabled();
  ~EnabledGuard() { obs::SetEnabled(was); }
};

TEST(ObsCounterTest, ConcurrentIncrementsMergeExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&c] {
      for (uint64_t j = 0; j < kPerThread; ++j) c.Inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsCounterTest, ThreadSlotIsStableAndBounded) {
  size_t here = obs::ThreadSlot();
  EXPECT_LT(here, obs::kStripes);
  EXPECT_EQ(here, obs::ThreadSlot());
  size_t other = here;
  std::thread([&other] { other = obs::ThreadSlot(); }).join();
  EXPECT_LT(other, obs::kStripes);
}

TEST(ObsHistogramTest, ConcurrentRecordsMergeExactly) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&h] {
      for (uint64_t j = 0; j < kPerThread; ++j) h.Record(j % 1000 + 1);
    });
  }
  for (auto& t : ts) t.join();
  obs::HistogramStats s = h.Stats();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  uint64_t per_thread_sum = 0;
  for (uint64_t j = 0; j < kPerThread; ++j) per_thread_sum += j % 1000 + 1;
  EXPECT_EQ(s.sum, kThreads * per_thread_sum);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
}

TEST(ObsHistogramTest, EmptyAndConstantDistributions) {
  obs::Histogram h;
  obs::HistogramStats empty = h.Stats();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.Quantile(50), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);

  for (int i = 0; i < 100; ++i) h.Record(7);
  obs::HistogramStats s = h.Stats();
  // All mass in one bucket with min == max == 7: every quantile clamps
  // to the exact value.
  EXPECT_EQ(s.Quantile(0), 7.0);
  EXPECT_EQ(s.Quantile(50), 7.0);
  EXPECT_EQ(s.Quantile(100), 7.0);
  EXPECT_EQ(s.Mean(), 7.0);

  h.Reset();
  EXPECT_EQ(h.Stats().count, 0u);
}

TEST(ObsHistogramTest, QuantileTracksExactPercentileWithinABucket) {
  // Log bucketing quantizes values to a factor of sqrt(2) around the
  // geometric bucket midpoint, so the histogram quantile must stay within
  // [exact/sqrt2, exact*sqrt2] of the exact nearest-rank percentile.
  obs::Histogram h;
  std::vector<double> exact;
  uint64_t v = 1;
  for (int i = 0; i < 4000; ++i) {
    v = v * 1103515245 + 12345;
    uint64_t sample = v % 1000000 + 1;
    h.Record(sample);
    exact.push_back(static_cast<double>(sample));
  }
  obs::HistogramStats s = h.Stats();
  const double kSqrt2 = 1.41421356237;
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0}) {
    double want = Percentile(exact, p);
    double got = s.Quantile(p);
    EXPECT_GE(got, want / kSqrt2) << "p=" << p;
    EXPECT_LE(got, want * kSqrt2) << "p=" << p;
  }
}

TEST(ObsRegistryTest, HandlesAreStableAndSnapshotSeesValues) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("test.registry.counter");
  EXPECT_EQ(c, reg.GetCounter("test.registry.counter"));
  obs::Gauge* g = reg.GetGauge("test.registry.gauge");
  obs::Histogram* h = reg.GetHistogram("test.registry.hist");
  c->Add(5);
  g->Set(-3);
  h->Record(42);

  obs::StatsSnapshot snap = reg.Snapshot();
  bool saw_c = false, saw_g = false, saw_h = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.registry.counter") {
      saw_c = true;
      EXPECT_GE(value, 5u);
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.registry.gauge") {
      saw_g = true;
      EXPECT_EQ(value, -3);
    }
  }
  for (const auto& [name, stats] : snap.histograms) {
    if (name == "test.registry.hist") {
      saw_h = true;
      EXPECT_GE(stats.count, 1u);
    }
  }
  EXPECT_TRUE(saw_c);
  EXPECT_TRUE(saw_g);
  EXPECT_TRUE(saw_h);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"build\""), std::string::npos);
  EXPECT_NE(json.find("\"test.registry.counter\""), std::string::npos);
  std::string text = snap.ToText();
  EXPECT_NE(text.find("test.registry.gauge"), std::string::npos);
}

TEST(ObsRegistryTest, ResetZeroesEverythingButKeepsRegistration) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("test.reset.counter");
  c->Add(9);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(c, reg.GetCounter("test.reset.counter"));
}

TEST(ObsRegistryTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("line\nbreak"), "line\\nbreak");
}

TEST(ObsDisabledTest, RecordingHotPathDoesNotAllocate) {
  EnabledGuard guard;
  auto& reg = obs::MetricsRegistry::Global();
  // Registration (allowed to allocate) happens before the measured region.
  obs::Counter* c = reg.GetCounter("test.noalloc.counter");
  obs::Histogram* h = reg.GetHistogram("test.noalloc.hist");
  // Constructing the tracer singleton allocates once; do it up front like
  // any real process would before its hot loop.
  const bool tracing = obs::Tracer::Global().Active();
  obs::SetEnabled(false);

  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    // The call-site pattern used across the library: gate, then record.
    if (obs::Enabled()) {
      c->Inc();
      h->Record(static_cast<uint64_t>(i));
    }
    // Spans with no active session must also stay allocation-free.
    obs::TraceSpan span("test.noalloc.span");
    span.AddArg("i", static_cast<uint64_t>(i));
  }
  // Recording itself is allocation-free even when enabled (striped
  // relaxed atomics only) — as long as no trace session is active.
  if (obs::kObsCompiledIn && !tracing) {
    obs::SetEnabled(true);
    for (int i = 0; i < 1000; ++i) {
      c->Inc();
      h->Record(static_cast<uint64_t>(i));
    }
    obs::SetEnabled(false);
  }
  uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

TEST(ObsDisabledTest, RuntimeToggleFlipsEnabled) {
  if (!obs::kObsCompiledIn) {
    EXPECT_FALSE(obs::Enabled());
    GTEST_SKIP() << "observability compiled out";
  }
  EnabledGuard guard;
  obs::SetEnabled(false);
  EXPECT_FALSE(obs::Enabled());
  obs::SetEnabled(true);
  EXPECT_TRUE(obs::Enabled());
}

TEST(ObsTracerTest, SessionWritesValidChromeTrace) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  EnabledGuard guard;
  obs::SetEnabled(true);
  auto& tracer = obs::Tracer::Global();
  if (tracer.Active()) GTEST_SKIP() << "INCR_TRACE session already active";

  std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(tracer.StartSession(path));
  EXPECT_FALSE(tracer.StartSession(path));  // no nested sessions
  {
    obs::TraceSpan span("test.traced.span");
    span.AddArg("items", static_cast<uint64_t>(3));
    span.AddArg("label", std::string("hello \"quoted\""));
  }
  std::thread([] { obs::TraceSpan span("test.other.thread"); }).join();
  ASSERT_TRUE(tracer.StopSession());
  EXPECT_FALSE(tracer.Active());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string trace = buf.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.traced.span\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.other.thread\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"items\": 3"), std::string::npos);
  // Events dropped outside a session: a span now must not corrupt state.
  { obs::TraceSpan span("test.after.session"); }
  std::remove(path.c_str());
}

TEST(ObsViewTreeTest, NodeStatsCountBatchWork) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  EnabledGuard guard;
  obs::SetEnabled(true);
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  using Entry = ViewTree<IntRing>::BatchEntry;
  std::vector<Entry> batch;
  for (int64_t i = 0; i < 32; ++i) {
    batch.push_back(Entry{static_cast<size_t>(i % 2), Tuple{i % 4, i}, 1});
  }
  tree->ApplyBatch(std::span<const Entry>(batch));

  const size_t num_nodes = tree->plan().nodes().size();
  uint64_t total_in = 0, calls = 0;
  for (size_t n = 0; n < num_nodes; ++n) {
    total_in += tree->node_stats(static_cast<int>(n)).tuples_in;
    calls += tree->node_stats(static_cast<int>(n)).batch_calls;
  }
  EXPECT_GE(total_in, batch.size());  // every delta entered some node
  EXPECT_GE(calls, 1u);

  std::string json = tree->NodeStatsJson();
  EXPECT_NE(json.find("\"apply_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"tuples_in\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');

  tree->ResetNodeStats();
  for (size_t n = 0; n < num_nodes; ++n) {
    EXPECT_EQ(tree->node_stats(static_cast<int>(n)).tuples_in, 0u);
  }
}

TEST(ObsEngineTest, FacadeRecordsPerEngineHistograms) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  EnabledGuard guard;
  obs::SetEnabled(true);
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  EagerFactStrategy<IntRing> engine(*std::move(tree));

  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram* update_ns =
      reg.GetHistogram("engine.eager-fact.update_ns");
  obs::Histogram* enum_ns = reg.GetHistogram("engine.eager-fact.enum_ns");
  obs::Histogram* delay_ns =
      reg.GetHistogram("engine.eager-fact.enum_delay_ns");
  uint64_t updates0 = update_ns->Stats().count;
  uint64_t enums0 = enum_ns->Stats().count;
  uint64_t delays0 = delay_ns->Stats().count;

  engine.Update("R", Tuple{1, 2}, 1);
  engine.Update("S", Tuple{1, 3}, 1);
  std::vector<Delta<IntRing>> batch{{"R", Tuple{4, 5}, 1},
                                    {"S", Tuple{4, 6}, 1}};
  engine.ApplyBatch(batch);
  size_t out = engine.Enumerate(nullptr);
  EXPECT_EQ(out, 2u);

  EXPECT_EQ(update_ns->Stats().count, updates0 + 2);
  EXPECT_EQ(enum_ns->Stats().count, enums0 + 1);
  // Enumeration produced tuples, so a per-tuple delay sample landed.
  EXPECT_EQ(delay_ns->Stats().count, delays0 + 1);
}

TEST(ObsConfigTest, ShardCountComesFromEnvAndIsRecorded) {
  size_t shards = NumShards();
  EXPECT_GE(shards, 1u);
  const char* env = std::getenv("INCR_SHARDS");
  if (env == nullptr || *env == '\0') {
    EXPECT_EQ(shards, 16u);
  }
  EXPECT_EQ(ViewTree<IntRing>::DefaultDeltaShards(), shards);
  auto* gauge = obs::MetricsRegistry::Global().GetGauge("config.shards");
  EXPECT_EQ(gauge->Value(), static_cast<int64_t>(shards));
}

TEST(ObsBuildInfoTest, BuildJsonNamesTheToolchain) {
  std::string info = BuildInfoJson();
  EXPECT_NE(info.find("\"commit\""), std::string::npos);
  EXPECT_NE(info.find("\"compiler\""), std::string::npos);
  EXPECT_NE(info.find("\"sanitizer\""), std::string::npos);
  EXPECT_NE(info.find("\"threads\""), std::string::npos);
}

TEST(ObsStatsTest, NearestRankMatchesPercentileContract) {
  // The histogram quantile and util/stats Percentile share NearestRank;
  // spot-check the shared rank logic on a known distribution.
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_EQ(NearestRank(5, 0.0), 0u);
  EXPECT_EQ(NearestRank(5, 100.0), 4u);
  EXPECT_EQ(Percentile(v, 50), 30.0);
  EXPECT_EQ(Percentile(v, 10), 10.0);
  EXPECT_EQ(Percentile(v, 90), 50.0);
}

}  // namespace
}  // namespace incr
