// Leapfrog Triejoin tests: counts and enumerations equal the backtracking
// oracle on random databases, across query shapes and variable orders.
#include <map>

#include <gtest/gtest.h>

#include "incr/engines/join.h"
#include "incr/engines/leapfrog.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

TEST(LeapfrogTest, TriangleHandCheck) {
  // The §3 running example: count 5.
  Relation<IntRing> r(Schema{A, B}), s(Schema{B, C}), t(Schema{C, A});
  r.Apply(Tuple{1, 11}, 1);
  r.Apply(Tuple{2, 11}, 3);
  r.Apply(Tuple{2, 12}, 1);
  s.Apply(Tuple{11, 21}, 2);
  s.Apply(Tuple{11, 22}, 1);
  t.Apply(Tuple{21, 1}, 1);
  t.Apply(Tuple{22, 2}, 1);
  Query q("tri", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
           Atom{"T", Schema{C, A}}});
  EXPECT_EQ(LeapfrogCount(q, {&r, &s, &t}, {A, B, C}), 5);
  // Any variable order gives the same count.
  EXPECT_EQ(LeapfrogCount(q, {&r, &s, &t}, {C, A, B}), 5);
  EXPECT_EQ(LeapfrogCount(q, {&r, &s, &t}, {B, C, A}), 5);
}

TEST(LeapfrogTest, EnumerationProducesAssignments) {
  Relation<IntRing> r(Schema{A, B}), s(Schema{B, C});
  r.Apply(Tuple{1, 10}, 2);
  r.Apply(Tuple{2, 10}, 1);
  s.Apply(Tuple{10, 5}, 3);
  Query q("q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}});
  std::map<Tuple, int64_t> out;
  int64_t total = LeapfrogJoin(q, {&r, &s}, {A, B, C},
                               [&](const Tuple& t, int64_t p) {
                                 out[t] = p;
                               });
  EXPECT_EQ(total, 9);  // 2*3 + 1*3
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[(Tuple{1, 10, 5})], 6);
  EXPECT_EQ(out[(Tuple{2, 10, 5})], 3);
}

struct LfCase {
  const char* label;
  Query query;
  std::vector<Var> order;
  int domain;
};

class LeapfrogPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeapfrogPropertyTest, MatchesOracle) {
  std::vector<LfCase> cases;
  cases.push_back({"triangle",
                   Query("t", Schema{},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                          Atom{"T", Schema{C, A}}}),
                   {B, A, C},
                   8});
  cases.push_back({"path",
                   Query("p", Schema{},
                         {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                          Atom{"T", Schema{C, D}}}),
                   {A, B, C, D},
                   6});
  cases.push_back({"loomis-whitney",
                   Query("lw", Schema{},
                         {Atom{"R1", Schema{A, B, C}},
                          Atom{"R2", Schema{A, B, D}},
                          Atom{"R3", Schema{A, C, D}},
                          Atom{"R4", Schema{B, C, D}}}),
                   {A, B, C, D},
                   5});
  cases.push_back({"selfjoin",
                   Query("sj", Schema{},
                         {Atom{"E", Schema{A, B}}, Atom{"E", Schema{B, C}}}),
                   {A, B, C},
                   8});
  Rng rng(GetParam());
  for (const LfCase& c : cases) {
    SCOPED_TRACE(c.label);
    // One relation per distinct name.
    std::map<std::string, Relation<IntRing>> by_name;
    for (const Atom& a : c.query.atoms()) {
      by_name.emplace(a.relation, Relation<IntRing>(a.schema));
    }
    for (auto& [name, rel] : by_name) {
      int n = 40 + static_cast<int>(rng.Uniform(40));
      for (int i = 0; i < n; ++i) {
        Tuple t;
        for (size_t k = 0; k < rel.schema().size(); ++k) {
          t.push_back(rng.UniformInt(0, c.domain - 1));
        }
        rel.Apply(t, rng.Chance(0.2) ? 2 : 1);
      }
    }
    std::vector<const Relation<IntRing>*> rels;
    for (const Atom& a : c.query.atoms()) {
      rels.push_back(&by_name.at(a.relation));
    }
    // Oracle: aggregate over the empty-free version.
    Query agg("agg", Schema{}, c.query.atoms());
    auto oracle = EvaluateQuery<IntRing>(agg, rels);
    EXPECT_EQ(LeapfrogCount(c.query, rels, c.order),
              oracle.Payload(Tuple{}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeapfrogPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace incr
