// Golden-value lock on the PRNG stream. Everything downstream of Rng —
// workload generators, the fuzzer's query/stream sampling, .repro seeds,
// property-test cases — assumes that Rng(seed) produces the same sequence
// on every build and platform forever. A silent change to the seeding or
// the generator would invalidate every recorded seed and repro, so the
// exact xoshiro256** output is pinned here: if one of these values ever
// changes, the change is breaking and must be treated as a format bump,
// not fixed by re-recording the constants.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "incr/util/rng.h"

namespace incr {
namespace {

TEST(RngGoldenTest, Seed42RawStream) {
  Rng rng(42);
  const std::vector<uint64_t> want = {
      0xbe15272cdf80b6c2ull, 0xaf6e2ee49ff5d0e3ull, 0xca56edd0338a318full,
      0x4945f1d915ae1af2ull, 0x0ddbfbac9994b020ull, 0x3427202c1d3400bcull,
      0xde14ff6e4026b899ull, 0x0b6b22a8945cbe3full,
  };
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(rng.Next(), want[i]) << "position " << i;
  }
}

TEST(RngGoldenTest, SeedZeroIsValid) {
  // SplitMix64 seeding must turn the all-zero seed into a healthy state
  // (raw xoshiro would be stuck at zero forever).
  Rng rng(0);
  EXPECT_EQ(rng.Next(), 0x422ea740d0977210ull);
  EXPECT_EQ(rng.Next(), 0xe062b061b42e2928ull);
}

TEST(RngGoldenTest, DerivedDrawsAreLockedToo) {
  // Uniform/UniformInt/NextDouble sit between the raw stream and every
  // generator decision, so their reduction scheme is part of the format.
  Rng u(42);
  const std::vector<uint64_t> uniform = {66, 83, 39, 38, 84, 36};
  for (size_t i = 0; i < uniform.size(); ++i) {
    EXPECT_EQ(u.Uniform(100), uniform[i]) << "position " << i;
  }
  Rng s(42);
  const std::vector<int64_t> spans = {-3, -2, 0, 1, -3, 0};
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(s.UniformInt(-3, 3), spans[i]) << "position " << i;
  }
  Rng d(42);
  EXPECT_DOUBLE_EQ(d.NextDouble(), 0.74251026959928157);
  EXPECT_DOUBLE_EQ(d.NextDouble(), 0.68527501184140438);
}

TEST(RngGoldenTest, ZipfSamplerStream) {
  Rng rng(7);
  ZipfSampler zipf(8, 0.8);
  const std::vector<uint64_t> want = {1, 1, 6, 1, 2, 2, 2, 3, 5, 3};
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(zipf.Sample(rng), want[i]) << "position " << i;
  }
}

TEST(RngGoldenTest, DrawsAreWithinBounds) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace incr
