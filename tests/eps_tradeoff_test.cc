// EpsTradeoffEngine tests (paper Fig. 7): correctness against an oracle at
// every eps, invariants under skewed streams, bulk load == incremental.
#include <map>

#include <gtest/gtest.h>

#include "incr/ivme/eps_tradeoff.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

// Oracle: plain maps.
struct Oracle {
  std::map<Tuple, int64_t> r;  // (a,b) -> payload
  std::map<Value, int64_t> s;

  std::map<Value, int64_t> Output() const {
    std::map<Value, int64_t> q;
    for (const auto& [t, m] : r) {
      auto it = s.find(t[1]);
      if (it == s.end()) continue;
      q[t[0]] += m * it->second;
    }
    for (auto it = q.begin(); it != q.end();) {
      it = it->second == 0 ? q.erase(it) : std::next(it);
    }
    return q;
  }
};

void ExpectMatches(const EpsTradeoffEngine& e, const Oracle& o) {
  std::map<Value, int64_t> got;
  size_t n = e.Enumerate([&](Value a, int64_t q) { got[a] = q; });
  EXPECT_EQ(n, got.size());
  EXPECT_EQ(got, o.Output());
}

class EpsTradeoffTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsTradeoffTest, MatchesOracleUnderSkewedStream) {
  double eps = GetParam();
  EpsTradeoffEngine e(eps);
  Oracle o;
  Rng rng(42);
  ZipfSampler zipf(50, 1.2);
  std::vector<std::pair<bool, Tuple>> live;  // (is_r, tuple)
  for (int step = 0; step < 4000; ++step) {
    if (!live.empty() && rng.Chance(0.35)) {
      size_t i = rng.Uniform(live.size());
      auto [is_r, t] = live[i];
      live[i] = live.back();
      live.pop_back();
      if (is_r) {
        e.UpdateR(t[0], t[1], -1);
        if (--o.r[t] == 0) o.r.erase(t);
      } else {
        e.UpdateS(t[0], -1);
        if (--o.s[t[0]] == 0) o.s.erase(t[0]);
      }
    } else if (rng.Chance(0.7)) {
      Value a = rng.UniformInt(0, 40);
      Value b = static_cast<Value>(zipf.Sample(rng));
      e.UpdateR(a, b, 1);
      ++o.r[Tuple{a, b}];
      live.emplace_back(true, Tuple{a, b});
    } else {
      Value b = static_cast<Value>(zipf.Sample(rng));
      e.UpdateS(b, 1);
      ++o.s[b];
      live.emplace_back(false, Tuple{b});
    }
    if (step % 251 == 0) {
      ASSERT_TRUE(e.InvariantsHold()) << "eps=" << eps << " step=" << step;
      ExpectMatches(e, o);
    }
  }
  ASSERT_TRUE(e.InvariantsHold());
  ExpectMatches(e, o);
  // Spot-check point queries too.
  for (Value a = 0; a <= 40; a += 7) {
    auto out = o.Output();
    auto it = out.find(a);
    EXPECT_EQ(e.QueryOne(a), it == out.end() ? 0 : it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, EpsTradeoffTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(EpsTradeoffTest, BulkLoadMatchesIncremental) {
  Rng rng(7);
  std::vector<std::pair<Tuple, int64_t>> r;
  std::vector<std::pair<Value, int64_t>> s;
  for (int i = 0; i < 500; ++i) {
    r.emplace_back(Tuple{rng.UniformInt(0, 30), rng.UniformInt(0, 20)}, 1);
  }
  for (Value b = 0; b <= 20; ++b) s.emplace_back(b, rng.UniformInt(1, 3));

  EpsTradeoffEngine bulk(0.5);
  bulk.BulkLoad(r, s);
  EpsTradeoffEngine inc(0.5);
  for (const auto& [t, m] : r) inc.UpdateR(t[0], t[1], m);
  for (const auto& [b, m] : s) inc.UpdateS(b, m);

  EXPECT_TRUE(bulk.InvariantsHold());
  EXPECT_TRUE(inc.InvariantsHold());
  std::map<Value, int64_t> a, b2;
  bulk.Enumerate([&](Value v, int64_t q) { a[v] = q; });
  inc.Enumerate([&](Value v, int64_t q) { b2[v] = q; });
  EXPECT_EQ(a, b2);
}

TEST(EpsTradeoffTest, MigrationsHappenUnderSkew) {
  EpsTradeoffEngine e(0.5);
  // One hot B value accumulates degree, then drains.
  for (Value a = 0; a < 300; ++a) e.UpdateR(a, 7, 1);
  e.UpdateS(7, 1);
  for (Value a = 0; a < 300; ++a) e.UpdateR(a, 7, -1);
  EXPECT_GT(e.num_migrations(), 0);
  EXPECT_GT(e.num_major_rebalances(), 0);
  EXPECT_TRUE(e.InvariantsHold());
  EXPECT_EQ(e.Enumerate(nullptr), 0u);
}

TEST(EpsTradeoffTest, ExtremesBehaveAsLazyAndEager) {
  // eps=1: threshold ~ N, so nothing is heavy (pure eager view).
  EpsTradeoffEngine eager(1.0);
  for (Value a = 0; a < 50; ++a) eager.UpdateR(a, a % 5, 1);
  for (Value b = 0; b < 5; ++b) eager.UpdateS(b, 1);
  EXPECT_EQ(eager.NumHeavyKeys(), 0u);
  EXPECT_EQ(eager.Enumerate(nullptr), 50u);
  // eps=0: threshold 1, every key with degree >= 2 is heavy.
  EpsTradeoffEngine lazy(0.0);
  for (Value a = 0; a < 50; ++a) lazy.UpdateR(a, a % 5, 1);
  for (Value b = 0; b < 5; ++b) lazy.UpdateS(b, 1);
  EXPECT_GT(lazy.NumHeavyKeys(), 0u);
  EXPECT_EQ(lazy.Enumerate(nullptr), 50u);
  EXPECT_TRUE(lazy.InvariantsHold());
}

}  // namespace
}  // namespace incr
