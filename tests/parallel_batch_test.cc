// The parallel batch-maintenance layer: ThreadPool, DeltaShards,
// ShardedRelation, and the headline invariant — parallel ViewTree::ApplyBatch
// is ring-identical to the sequential path for every ring and every thread
// count (results must not depend on threads; shard partition is fixed).
#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "incr/core/view_tree.h"
#include "incr/data/delta.h"
#include "incr/data/sharded_relation.h"
#include "incr/engines/engine.h"
#include "incr/ring/covar_ring.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/product_ring.h"
#include "incr/util/rng.h"
#include "incr/util/thread_pool.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

// Q-hierarchical: both atom sources bind the node keys (ByKey sharding).
Query TheQuery() {
  return Query("Q", Schema{A, B, C},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
}

// Non-q-hierarchical fan-out under a path order: the S(B) source does not
// bind node B's key (A), forcing the ByRange fallback with shard-local
// accumulators.
Query FanoutQuery() {
  return Query("Q", Schema{A}, {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
}

// Cyclic triangle under a path order: multi-atom nodes where every atom
// misses part of the node key — the ByRange path under heavy churn.
Query TriangleQuery() {
  return Query("Q", Schema{},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                Atom{"T", Schema{C, A}}});
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  const size_t n = 10000;
  std::vector<std::atomic<int>> counts(n);
  pool.ParallelFor(n, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 100; ++job) {
    pool.ParallelFor(17, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 1700u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);  // spawns no worker threads
  EXPECT_EQ(pool.num_threads(), 1u);
  size_t sum = 0;  // safe unsynchronized: everything runs on this thread
  pool.ParallelFor(100, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, FewerTasksThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(3);
  pool.ParallelFor(3, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < 3; ++i) ASSERT_EQ(counts[i].load(), 1);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "n == 0 must run nothing"; });
}

// ---------------------------------------------------------------------------
// ThreadPool::ParallelMorsels — the work-stealing morsel scheduler. Suite
// name carries "Morsel" so the TSan CI pass picks it up.

TEST(ThreadPoolMorselTest, CoversEveryIndexOnTheFixedGrid) {
  ThreadPool pool(4);
  const size_t n = 10000;
  const size_t morsel = 7;
  std::vector<std::atomic<int>> counts(n);
  pool.ParallelMorsels(n, morsel, [&](size_t begin, size_t end) {
    // Cells always sit on the fixed grid, never merged or split.
    EXPECT_EQ(begin % morsel, 0u);
    EXPECT_EQ(end, std::min(begin + morsel, n));
    for (size_t i = begin; i < end; ++i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolMorselTest, GridIsIndependentOfThreadCount) {
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> cells;
    pool.ParallelMorsels(103, 10, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      cells.emplace(begin, end);
    });
    return cells;
  };
  const auto one = run(1);
  EXPECT_EQ(one.size(), 11u);  // ceil(103 / 10)
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(4));
  EXPECT_EQ(one, run(8));
}

TEST(ThreadPoolMorselTest, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  size_t sum = 0;  // safe unsynchronized: everything runs on this thread
  pool.ParallelMorsels(100, 9, [&](size_t begin, size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolMorselTest, SingleMorselRunsInlineEvenWithWorkers) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelMorsels(5, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  // morsel == 0 clamps to one morsel spanning the whole input.
  calls = 0;
  pool.ParallelMorsels(17, 0, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 17u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  pool.ParallelMorsels(0, 8,
                       [](size_t, size_t) { FAIL() << "n == 0 runs nothing"; });
}

TEST(ThreadPoolMorselTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelMorsels(99, 3,
                                    [](size_t begin, size_t) {
                                      if (begin == 33) {
                                        throw std::runtime_error("boom");
                                      }
                                    }),
               std::runtime_error);
  std::atomic<size_t> total{0};
  pool.ParallelMorsels(50, 5, [&](size_t begin, size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 50u);
}

TEST(ThreadPoolMorselTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 100; ++job) {
    pool.ParallelMorsels(17, 4, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 1700u);
}

// ---------------------------------------------------------------------------
// DeltaShards

using IntEntry = DeltaBatch<IntRing>::Entry;

TEST(DeltaShardsTest, ByKeyIsCompleteDisjointAndStable) {
  // value = input position, so stability is checkable per shard.
  std::vector<IntEntry> entries;
  Rng rng(21);
  for (int64_t i = 0; i < 500; ++i) {
    entries.push_back({Tuple{rng.UniformInt(0, 40), rng.UniformInt(0, 5)}, i});
  }
  const uint32_t proj[] = {0};
  auto shards =
      DeltaShards<IntRing>::ByKey(entries, std::span<const uint32_t>(proj), 7);
  ASSERT_EQ(shards.num_shards(), 7u);
  size_t total = 0;
  std::vector<int64_t> key_shard(41, -1);  // every key in exactly one shard
  for (size_t s = 0; s < 7; ++s) {
    int64_t prev = -1;
    for (const IntEntry& e : shards.shard(s)) {
      ASSERT_GT(e.value, prev) << "shard order must preserve input order";
      prev = e.value;
      int64_t& seen = key_shard[static_cast<size_t>(e.key[0])];
      if (seen == -1) {
        seen = static_cast<int64_t>(s);
      } else {
        ASSERT_EQ(seen, static_cast<int64_t>(s))
            << "same key split across shards";
      }
      ++total;
    }
  }
  EXPECT_EQ(total, entries.size());
}

TEST(DeltaShardsTest, ByRangeConcatenatesToInput) {
  std::vector<IntEntry> entries;
  for (int64_t i = 0; i < 23; ++i) entries.push_back({Tuple{i}, i});
  auto shards = DeltaShards<IntRing>::ByRange(
      std::span<const IntEntry>(entries), 5);
  ASSERT_EQ(shards.num_shards(), 5u);
  int64_t next = 0;
  for (size_t s = 0; s < 5; ++s) {
    for (const IntEntry& e : shards.shard(s)) ASSERT_EQ(e.value, next++);
  }
  EXPECT_EQ(next, 23);
}

TEST(DeltaShardsTest, InputSmallerThanShardCount) {
  std::vector<IntEntry> entries;
  for (int64_t i = 0; i < 3; ++i) entries.push_back({Tuple{i, i}, i + 1});
  const uint32_t proj[] = {0, 1};
  for (auto& shards :
       {DeltaShards<IntRing>::ByKey(entries, std::span<const uint32_t>(proj),
                                    16),
        DeltaShards<IntRing>::ByRange(std::span<const IntEntry>(entries),
                                      16)}) {
    size_t total = 0;
    for (size_t s = 0; s < shards.num_shards(); ++s) {
      total += shards.shard(s).size();
    }
    EXPECT_EQ(total, 3u);
  }
}

// ---------------------------------------------------------------------------
// ShardedRelation

TEST(ShardedRelationTest, MatchesPlainRelationAndSurvivesReshard) {
  ShardedRelation<IntRing> sharded(Schema{A, B}, /*key_prefix=*/1,
                                   /*num_shards=*/8);
  Relation<IntRing> plain(Schema{A, B});
  sharded.AddIndex(Schema{A});
  plain.AddIndex(Schema{A});
  Rng rng(22);
  for (int i = 0; i < 800; ++i) {
    Tuple t{rng.UniformInt(0, 30), rng.UniformInt(0, 6)};
    int64_t d = rng.Chance(0.3) ? -1 : 1;
    sharded.Apply(t, d);
    plain.Apply(t, d);
  }
  auto check = [&] {
    ASSERT_EQ(sharded.size(), plain.size());
    size_t seen = 0;
    for (const auto& e : sharded) {
      ASSERT_EQ(plain.Payload(e.key), e.value);
      ASSERT_TRUE(sharded.Contains(e.key));
      ++seen;
    }
    ASSERT_EQ(seen, plain.size());
    for (Value a = 0; a <= 30; ++a) {
      const auto* group = sharded.GroupByKey(0, Tuple{a});
      const auto* expect = plain.index(0).Group(Tuple{a});
      if (expect == nullptr) {
        ASSERT_TRUE(group == nullptr || group->empty());
      } else {
        ASSERT_NE(group, nullptr);
        ASSERT_EQ(group->size(), expect->size());
      }
    }
  };
  check();
  sharded.Reshard(3);
  check();
  sharded.Reshard(1);
  check();
}

// ---------------------------------------------------------------------------
// Parallel ApplyBatch == sequential ApplyBatch, across rings/threads

// Every W and M view must hold ring-identical payloads.
template <RingType R>
void ExpectViewsIdentical(const ViewTree<R>& a, const ViewTree<R>& b) {
  for (size_t n = 0; n < a.plan().nodes().size(); ++n) {
    const auto& wa = a.NodeW(static_cast<int>(n));
    const auto& wb = b.NodeW(static_cast<int>(n));
    ASSERT_EQ(wa.size(), wb.size()) << "W of node " << n;
    for (const auto& e : wa) ASSERT_EQ(wb.Payload(e.key), e.value);
    const Relation<R>& ma = a.NodeM(static_cast<int>(n));
    const Relation<R>& mb = b.NodeM(static_cast<int>(n));
    ASSERT_EQ(ma.size(), mb.size()) << "M of node " << n;
    for (const auto& e : ma) ASSERT_EQ(mb.Payload(e.key), e.value);
  }
}

// Applies the same random batches to a sequential tree and to parallel
// trees at thread counts {1, 2, 7}, checking every view after every batch.
// Batch sizes start below the shard count (16) on purpose.
template <RingType R, typename DrawFn>
void CheckParallelVsSequential(const Query& q, const VariableOrder* vo,
                               DrawFn&& draw, uint64_t seed) {
  auto make = [&] {
    auto t = vo == nullptr ? ViewTree<R>::Make(q) : ViewTree<R>::Make(q, *vo);
    EXPECT_TRUE(t.ok());
    return *std::move(t);
  };
  for (size_t threads : {1u, 2u, 7u}) {
    ViewTree<R> sequential = make();
    ViewTree<R> parallel = make();
    parallel.SetThreads(threads);
    Rng rng(seed);
    for (size_t size : {3u, 7u, 40u, 200u}) {
      std::vector<typename ViewTree<R>::BatchEntry> batch;
      for (size_t i = 0; i < size; ++i) batch.push_back(draw(rng));
      sequential.ApplyBatch(
          std::span<const typename ViewTree<R>::BatchEntry>(batch));
      parallel.ApplyBatch(
          std::span<const typename ViewTree<R>::BatchEntry>(batch));
      ExpectViewsIdentical(parallel, sequential);
    }
  }
}

TEST(ParallelBatchTest, MatchesSequentialIntRing) {
  CheckParallelVsSequential<IntRing>(
      TheQuery(), nullptr,
      [](Rng& rng) {
        return ViewTree<IntRing>::BatchEntry{
            rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
            rng.Chance(0.4) ? -1 : 2};
      },
      31);
}

TEST(ParallelBatchTest, MatchesSequentialProductRing) {
  using PR = ProductRing<IntRing, IntRing>;
  CheckParallelVsSequential<PR>(
      TheQuery(), nullptr,
      [](Rng& rng) {
        int64_t m = rng.Chance(0.4) ? -1 : 1;
        return ViewTree<PR>::BatchEntry{
            rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
            {m, 2 * m}};
      },
      32);
}

TEST(ParallelBatchTest, MatchesSequentialCovarRing) {
  using CR = CovarRing<2>;
  CheckParallelVsSequential<CR>(
      TheQuery(), nullptr,
      [](Rng& rng) {
        CR::Value v = CR::Lift(rng.Uniform(2),
                               static_cast<double>(rng.UniformInt(1, 9)));
        return ViewTree<CR>::BatchEntry{
            rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
            rng.Chance(0.3) ? CR::Neg(v) : v};
      },
      33);
}

TEST(ParallelBatchTest, MatchesSequentialFanout) {
  // ByRange fallback: S(B) cannot be partitioned by node B's key (A).
  Query q = FanoutQuery();
  auto vo = VariableOrder::FromPath(q, {A, B});
  ASSERT_TRUE(vo.ok());
  CheckParallelVsSequential<IntRing>(
      q, &*vo,
      [](Rng& rng) {
        if (rng.Chance(0.5)) {
          return ViewTree<IntRing>::BatchEntry{
              0, Tuple{rng.UniformInt(0, 20), rng.UniformInt(0, 3)}, 1};
        }
        return ViewTree<IntRing>::BatchEntry{
            1, Tuple{rng.UniformInt(0, 3)}, rng.Chance(0.4) ? -1 : 1};
      },
      34);
}

TEST(ParallelBatchTest, MatchesSequentialTriangle) {
  Query q = TriangleQuery();
  auto vo = VariableOrder::FromPath(q, {A, B, C});
  ASSERT_TRUE(vo.ok());
  CheckParallelVsSequential<IntRing>(
      q, &*vo,
      [](Rng& rng) {
        return ViewTree<IntRing>::BatchEntry{
            rng.Uniform(3), Tuple{rng.UniformInt(0, 4), rng.UniformInt(0, 4)},
            rng.Chance(0.4) ? -1 : 1};
      },
      35);
}

TEST(ParallelBatchTest, ResultsInvariantUnderThreadCount) {
  // Not just payload-equal to sequential: two parallel trees at different
  // thread counts share the same fixed shard partition, so even the
  // physical shard layouts coincide.
  auto make = [] {
    auto t = ViewTree<IntRing>::Make(TheQuery());
    EXPECT_TRUE(t.ok());
    return *std::move(t);
  };
  ViewTree<IntRing> two = make();
  ViewTree<IntRing> seven = make();
  two.SetThreads(2);
  seven.SetThreads(7);
  Rng rng(36);
  for (int round = 0; round < 10; ++round) {
    std::vector<ViewTree<IntRing>::BatchEntry> batch;
    for (int i = 0; i < 150; ++i) {
      batch.push_back({rng.Uniform(2),
                       Tuple{rng.UniformInt(0, 9), rng.UniformInt(0, 9)},
                       rng.Chance(0.4) ? -1 : 1});
    }
    two.ApplyBatch(std::span<const ViewTree<IntRing>::BatchEntry>(batch));
    seven.ApplyBatch(std::span<const ViewTree<IntRing>::BatchEntry>(batch));
    ExpectViewsIdentical(two, seven);
    for (size_t n = 0; n < two.plan().nodes().size(); ++n) {
      const auto& wa = two.NodeW(static_cast<int>(n));
      const auto& wb = seven.NodeW(static_cast<int>(n));
      ASSERT_EQ(wa.num_shards(), wb.num_shards());
      for (size_t s = 0; s < wa.num_shards(); ++s) {
        ASSERT_EQ(wa.shard(s).size(), wb.shard(s).size())
            << "node " << n << " shard " << s;
      }
    }
  }
}

TEST(ParallelBatchTest, SelfCancellingBatchIsNoOp) {
  auto make = [] {
    auto t = ViewTree<IntRing>::Make(TheQuery());
    EXPECT_TRUE(t.ok());
    t->SetThreads(7);
    Rng rng(37);
    for (int i = 0; i < 100; ++i) {
      t->UpdateAtom(rng.Uniform(2),
                    Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)}, 1);
    }
    return *std::move(t);
  };
  ViewTree<IntRing> tree = make();
  ViewTree<IntRing> untouched = make();
  Rng rng(38);
  std::vector<ViewTree<IntRing>::BatchEntry> batch;
  for (int i = 0; i < 50; ++i) {
    ViewTree<IntRing>::BatchEntry e{
        rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
        rng.UniformInt(1, 3)};
    ViewTree<IntRing>::BatchEntry neg = e;
    neg.delta = -neg.delta;
    batch.push_back(e);
    batch.push_back(neg);
  }
  tree.ApplyBatch(std::span<const ViewTree<IntRing>::BatchEntry>(batch));
  ExpectViewsIdentical(tree, untouched);
}

TEST(ParallelBatchTest, EngineNamedBatchMatchesSequential) {
  // The IvmEngine wiring: SetThreads + the parallel named-batch merge.
  Query q = FanoutQuery();
  auto vo = VariableOrder::FromPath(q, {A, B});
  ASSERT_TRUE(vo.ok());
  auto make = [&] {
    auto t = ViewTree<IntRing>::Make(q, *vo);
    EXPECT_TRUE(t.ok());
    return ViewTreeEngine<IntRing>(*std::move(t));
  };
  ViewTreeEngine<IntRing> sequential = make();
  ViewTreeEngine<IntRing> parallel = make();
  parallel.SetThreads(4);
  Rng rng(39);
  for (int round = 0; round < 5; ++round) {
    std::vector<Delta<IntRing>> batch;
    for (int i = 0; i < 300; ++i) {
      if (rng.Chance(0.5)) {
        batch.push_back({"R",
                         Tuple{rng.UniformInt(0, 20), rng.UniformInt(0, 3)},
                         rng.Chance(0.4) ? -1 : 1});
      } else {
        batch.push_back(
            {"S", Tuple{rng.UniformInt(0, 3)}, rng.Chance(0.4) ? -1 : 1});
      }
    }
    sequential.ApplyBatch(std::span<const Delta<IntRing>>(batch));
    parallel.ApplyBatch(std::span<const Delta<IntRing>>(batch));
    ExpectViewsIdentical(parallel.tree(), sequential.tree());
  }
}

// ---------------------------------------------------------------------------
// Morsel-mode equivalence: the morsel size is pure scheduling. Results must
// be bit-identical to the sequential path at every point of the
// threads x morsel-size grid, for every ring. Suite name carries "Morsel"
// for the TSan CI pass.

// Applies the same random batches to a sequential tree and to parallel
// trees across threads {1, 2, 4, 8} x morsel sizes {one-entry, tiny,
// default, effectively-single-morsel}, checking every view after every
// batch. A 1-byte morsel clamps to one delta per cell (maximal grid and
// stealing); 1 MiB degenerates to one morsel per source at these sizes.
template <RingType R, typename DrawFn>
void CheckMorselEquivalence(const Query& q, const VariableOrder* vo,
                            DrawFn&& draw, uint64_t seed) {
  auto make = [&] {
    auto t = vo == nullptr ? ViewTree<R>::Make(q) : ViewTree<R>::Make(q, *vo);
    EXPECT_TRUE(t.ok());
    return *std::move(t);
  };
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (size_t morsel :
         {size_t{1}, size_t{64}, size_t{0}, size_t{1} << 20}) {
      ViewTree<R> sequential = make();
      ViewTree<R> parallel = make();
      parallel.SetThreads(threads);
      parallel.SetMorselBytes(morsel);
      Rng rng(seed);
      for (size_t size : {3u, 40u, 200u}) {
        std::vector<typename ViewTree<R>::BatchEntry> batch;
        for (size_t i = 0; i < size; ++i) batch.push_back(draw(rng));
        sequential.ApplyBatch(
            std::span<const typename ViewTree<R>::BatchEntry>(batch));
        parallel.ApplyBatch(
            std::span<const typename ViewTree<R>::BatchEntry>(batch));
        ExpectViewsIdentical(parallel, sequential);
      }
    }
  }
}

TEST(MorselBatchTest, MatchesSequentialIntRingTriangle) {
  // Cyclic query under a path order: every source takes the ByRange
  // morsel-grid path, so this sweep exercises the emit segments hardest.
  Query q = TriangleQuery();
  auto vo = VariableOrder::FromPath(q, {A, B, C});
  ASSERT_TRUE(vo.ok());
  CheckMorselEquivalence<IntRing>(
      q, &*vo,
      [](Rng& rng) {
        return ViewTree<IntRing>::BatchEntry{
            rng.Uniform(3), Tuple{rng.UniformInt(0, 4), rng.UniformInt(0, 4)},
            rng.Chance(0.4) ? -1 : 1};
      },
      41);
}

TEST(MorselBatchTest, MatchesSequentialIntRingByKey) {
  // Q-hierarchical: ByKey sources ignore the morsel grid, and must keep
  // ignoring it — the knob may not perturb the hash-partitioned path.
  CheckMorselEquivalence<IntRing>(
      TheQuery(), nullptr,
      [](Rng& rng) {
        return ViewTree<IntRing>::BatchEntry{
            rng.Uniform(2), Tuple{rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
            rng.Chance(0.4) ? -1 : 2};
      },
      42);
}

TEST(MorselBatchTest, MatchesSequentialProductRingFanout) {
  using PR = ProductRing<IntRing, IntRing>;
  Query q = FanoutQuery();
  auto vo = VariableOrder::FromPath(q, {A, B});
  ASSERT_TRUE(vo.ok());
  CheckMorselEquivalence<PR>(
      q, &*vo,
      [](Rng& rng) {
        int64_t m = rng.Chance(0.4) ? -1 : 1;
        if (rng.Chance(0.5)) {
          return ViewTree<PR>::BatchEntry{
              0, Tuple{rng.UniformInt(0, 20), rng.UniformInt(0, 3)},
              {m, 2 * m}};
        }
        return ViewTree<PR>::BatchEntry{1, Tuple{rng.UniformInt(0, 3)},
                                        {m, 2 * m}};
      },
      43);
}

TEST(MorselBatchTest, MatchesSequentialCovarRingFanout) {
  using CR = CovarRing<2>;
  Query q = FanoutQuery();
  auto vo = VariableOrder::FromPath(q, {A, B});
  ASSERT_TRUE(vo.ok());
  CheckMorselEquivalence<CR>(
      q, &*vo,
      [](Rng& rng) {
        CR::Value v = CR::Lift(rng.Uniform(2),
                               static_cast<double>(rng.UniformInt(1, 9)));
        if (rng.Chance(0.3)) v = CR::Neg(v);
        if (rng.Chance(0.5)) {
          return ViewTree<CR>::BatchEntry{
              0, Tuple{rng.UniformInt(0, 20), rng.UniformInt(0, 3)}, v};
        }
        return ViewTree<CR>::BatchEntry{1, Tuple{rng.UniformInt(0, 3)}, v};
      },
      44);
}

TEST(MorselBatchTest, ShardLayoutInvariantUnderMorselSize) {
  // Stronger than payload equality: at a fixed thread count, trees run at
  // different morsel sizes share the same fixed shard partition, so even
  // the physical shard layouts coincide.
  Query q = TriangleQuery();
  auto vo = VariableOrder::FromPath(q, {A, B, C});
  ASSERT_TRUE(vo.ok());
  std::vector<ViewTree<IntRing>> trees;
  for (size_t morsel :
       {size_t{1}, size_t{64}, size_t{0}, size_t{1} << 20}) {
    auto t = ViewTree<IntRing>::Make(q, *vo);
    ASSERT_TRUE(t.ok());
    trees.push_back(*std::move(t));
    trees.back().SetThreads(4);
    trees.back().SetMorselBytes(morsel);
  }
  Rng rng(45);
  for (int round = 0; round < 8; ++round) {
    std::vector<ViewTree<IntRing>::BatchEntry> batch;
    for (int i = 0; i < 150; ++i) {
      batch.push_back({rng.Uniform(3),
                       Tuple{rng.UniformInt(0, 4), rng.UniformInt(0, 4)},
                       rng.Chance(0.4) ? -1 : 1});
    }
    for (auto& t : trees) {
      t.ApplyBatch(std::span<const ViewTree<IntRing>::BatchEntry>(batch));
    }
    for (size_t k = 1; k < trees.size(); ++k) {
      ExpectViewsIdentical(trees[k], trees[0]);
      for (size_t n = 0; n < trees[0].plan().nodes().size(); ++n) {
        const auto& wa = trees[0].NodeW(static_cast<int>(n));
        const auto& wb = trees[k].NodeW(static_cast<int>(n));
        ASSERT_EQ(wa.num_shards(), wb.num_shards());
        for (size_t s = 0; s < wa.num_shards(); ++s) {
          ASSERT_EQ(wa.shard(s).size(), wb.shard(s).size())
              << "tree " << k << " node " << n << " shard " << s;
        }
      }
    }
  }
}

TEST(MorselBatchTest, SetMorselBytesZeroRestoresDefault) {
  auto t = ViewTree<IntRing>::Make(TheQuery());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->morsel_bytes(), ViewTree<IntRing>::kDefaultMorselBytes);
  t->SetMorselBytes(4096);
  EXPECT_EQ(t->morsel_bytes(), 4096u);
  t->SetMorselBytes(0);
  EXPECT_EQ(t->morsel_bytes(), ViewTree<IntRing>::kDefaultMorselBytes);
}

TEST(ParallelBatchTest, SetThreadsMidStreamPreservesState) {
  // Reshard with data in place: sequential -> parallel -> sequential.
  auto make = [] {
    auto t = ViewTree<IntRing>::Make(TheQuery());
    EXPECT_TRUE(t.ok());
    return *std::move(t);
  };
  ViewTree<IntRing> toggled = make();
  ViewTree<IntRing> reference = make();
  Rng rng(40);
  for (int phase = 0; phase < 3; ++phase) {
    toggled.SetThreads(phase == 1 ? 4 : 1);
    std::vector<ViewTree<IntRing>::BatchEntry> batch;
    for (int i = 0; i < 120; ++i) {
      batch.push_back({rng.Uniform(2),
                       Tuple{rng.UniformInt(0, 6), rng.UniformInt(0, 6)},
                       rng.Chance(0.4) ? -1 : 1});
    }
    toggled.ApplyBatch(std::span<const ViewTree<IntRing>::BatchEntry>(batch));
    reference.ApplyBatch(
        std::span<const ViewTree<IntRing>::BatchEntry>(batch));
    ExpectViewsIdentical(toggled, reference);
  }
}

}  // namespace
}  // namespace incr
