// Fig. 4 strategy tests: all four strategies produce identical outputs
// under interleaved updates and enumerations, on both a q-hierarchical
// query and the retailer workload with its F-IVM order.
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "incr/engines/strategies.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"
#include "incr/workload/retailer.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

using Output = std::map<Tuple, int64_t>;

Output Collect(IvmStrategy<IntRing>& s) {
  Output out;
  size_t n = s.Enumerate([&](const Tuple& t, const int64_t& p) {
    out[t] = p;
  });
  EXPECT_EQ(n, out.size());
  return out;
}

TEST(StrategiesTest, AllFourAgreeOnQHierarchicalQuery) {
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto strategies = MakeAllStrategies<IntRing>(q);
  ASSERT_EQ(strategies.size(), 4u);

  Rng rng(17);
  std::vector<std::pair<size_t, Tuple>> live;
  for (int round = 0; round < 20; ++round) {
    for (int step = 0; step < 50; ++step) {
      size_t atom;
      Tuple t;
      int64_t m;
      if (!live.empty() && rng.Chance(0.3)) {
        size_t i = rng.Uniform(live.size());
        atom = live[i].first;
        t = live[i].second;
        m = -1;
        live[i] = live.back();
        live.pop_back();
      } else {
        atom = rng.Uniform(2);
        t = Tuple{rng.UniformInt(0, 10), rng.UniformInt(0, 10)};
        m = 1;
        live.emplace_back(atom, t);
      }
      for (auto& s : strategies) s->Update(atom, t, m);
    }
    Output ref = Collect(*strategies[0]);
    for (size_t i = 1; i < strategies.size(); ++i) {
      Output got = Collect(*strategies[i]);
      ASSERT_EQ(got, ref) << strategies[i]->name() << " round " << round;
    }
  }
}

TEST(StrategiesTest, NamesAreDistinct) {
  Query q("Q", Schema{A}, {Atom{"R", Schema{A}}});
  auto strategies = MakeAllStrategies<IntRing>(q);
  std::map<std::string, int> names;
  for (auto& s : strategies) names[s->name()]++;
  EXPECT_EQ(names.size(), 4u);
}

TEST(StrategiesTest, RetailerWorkloadAllStrategiesAgree) {
  RetailerWorkload wl(/*n_locations=*/20, /*n_dates=*/5, /*n_items=*/30,
                      /*seed=*/3);
  VariableOrder vo = wl.Order();
  auto strategies = MakeAllStrategies<IntRing>(wl.query(), &vo);
  // Preload dimensions through updates (they are part of the maintained
  // database).
  auto preload = [&](size_t atom, const std::vector<Tuple>& rows) {
    for (const Tuple& t : rows) {
      for (auto& s : strategies) s->Update(atom, t, 1);
    }
  };
  preload(RetailerWorkload::kLocation, wl.locations());
  preload(RetailerWorkload::kCensus, wl.censuses());
  preload(RetailerWorkload::kItem, wl.items());
  preload(RetailerWorkload::kWeather, wl.weathers());

  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 200; ++i) {
      Tuple t = wl.NextInventoryInsert();
      for (auto& s : strategies) {
        s->Update(RetailerWorkload::kInventory, t, 1);
      }
    }
    Output ref = Collect(*strategies[0]);
    EXPECT_GT(ref.size(), 0u);
    for (size_t i = 1; i < strategies.size(); ++i) {
      ASSERT_EQ(Collect(*strategies[i]), ref) << strategies[i]->name();
    }
  }
}

TEST(StrategiesTest, RetailerOrderIsConstantTimeForFactTable) {
  RetailerWorkload wl(10, 3, 10, 1);
  VariableOrder vo = wl.Order();
  auto plan = ViewTreePlan::Make(wl.query(), vo);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->CanEnumerate().ok());
  // Inventory, Location, Weather propagate in O(1); Item and Census need
  // group scans (they are static dimension tables in the experiment).
  EXPECT_TRUE(plan->ProgramsConstantTimeFor({RetailerWorkload::kInventory,
                                             RetailerWorkload::kLocation,
                                             RetailerWorkload::kWeather}));
  EXPECT_FALSE(plan->ProgramsConstantTimeFor({RetailerWorkload::kItem}));
}

}  // namespace
}  // namespace incr
