// Odds and ends: rendering helpers, status factories, OuMv instance edge
// cases, bounded enumeration, version string.
#include <gtest/gtest.h>

#include "incr/ivme/eps_tradeoff.h"
#include "incr/lowerbound/oumv.h"
#include "incr/query/variable_order.h"
#include "incr/ring/provenance.h"
#include "incr/util/status.h"
#include "incr/version.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1 };

TEST(MiscTest, RenderingHelpers) {
  VarRegistry vars;
  Var a = vars.GetOrCreate("A");
  Var b = vars.GetOrCreate("B");
  EXPECT_EQ(SchemaToString(Schema{a, b}, vars), "(A, B)");
  EXPECT_EQ(vars.Name(99), "?99");
  EXPECT_EQ(TupleToString(Tuple{1, -2, 3}), "(1, -2, 3)");
  EXPECT_EQ(TupleToString(Tuple{}), "()");

  Query q("Q", Schema{a}, {Atom{"R", Schema{a, b}}});
  EXPECT_EQ(q.ToString(vars), "Q(A) = R(A, B)");
  auto vo = VariableOrder::Canonical(q);
  ASSERT_TRUE(vo.ok());
  std::string rendered = vo->ToString(vars);
  EXPECT_NE(rendered.find("A*"), std::string::npos);  // free marker
}

TEST(MiscTest, StatusFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").ToString(), "Internal: boom");
}

TEST(MiscTest, VersionIsWellFormed) {
  std::string v = Version();
  EXPECT_EQ(v, INCR_VERSION_STRING);
  EXPECT_NE(v.find('.'), std::string::npos);
}

TEST(MiscTest, OuMvDegenerateInstances) {
  // n=1 and extreme densities.
  OuMvInstance tiny(1, 1.0, 3);
  auto out = SolveOuMvDirect(tiny);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0]);  // density 1: everything set
  DeltaTriangleCounter c;
  EXPECT_EQ(SolveOuMvViaIvm(tiny, &c), out);

  OuMvInstance empty(5, 0.0, 3);
  auto out0 = SolveOuMvDirect(empty);
  for (bool b : out0) EXPECT_FALSE(b);
  IvmEpsTriangleCounter e(0.5);
  EXPECT_EQ(SolveOuMvViaIvm(empty, &e), out0);
}

TEST(MiscTest, EpsEnumerateLimitStopsEarly) {
  EpsTradeoffEngine e(0.5);
  for (Value a = 0; a < 100; ++a) e.UpdateR(a, a % 10, 1);
  for (Value b = 0; b < 10; ++b) e.UpdateS(b, 1);
  size_t limited = e.EnumerateLimit(7, nullptr);
  EXPECT_EQ(limited, 7u);
  EXPECT_EQ(e.Enumerate(nullptr), 100u);
}

TEST(MiscTest, PolynomialEvalTreatsMissingAsOne) {
  // Multiplicity semantics: unassigned annotations count as one copy.
  Polynomial p = Polynomial::Var(0) * Polynomial::Var(1) +
                 Polynomial::Constant(2);
  EXPECT_EQ(p.Eval({{0, 5}}), 5 + 2);  // x1 defaults to 1
  EXPECT_EQ(p.Eval({}), 1 + 2);
}

}  // namespace
}  // namespace incr
