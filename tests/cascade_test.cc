// Cascade tests (paper §4.2, Ex. 4.5): rewriting discovery, and the engine
// against oracles under interleaved updates and enumerations at arbitrary
// points (DESIGN.md invariant 12).
#include <map>

#include <gtest/gtest.h>

#include "incr/cascade/cascade_engine.h"
#include "incr/engines/join.h"
#include "incr/query/rewriting.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

Query Q1() {
  // Ex. 4.5: Q1(A,B,C,D) = R(A,B) * S(B,C) * T(C,D) — not q-hierarchical.
  return Query("Q1", Schema{A, B, C, D},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                Atom{"T", Schema{C, D}}});
}

Query Q2() {
  // Ex. 4.5: Q2(A,B,C) = R(A,B) * S(B,C) — q-hierarchical.
  return Query("Q2", Schema{A, B, C},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}});
}

TEST(RewritingTest, Example45RewriteFound) {
  auto rw = FindViewRewriting(Q1(), Q2(), "V", Schema{A, B, C});
  ASSERT_TRUE(rw.ok()) << rw.status().ToString();
  // Identity homomorphism; R and S covered.
  EXPECT_EQ(rw->hom.at(A), A);
  EXPECT_EQ(rw->hom.at(B), B);
  EXPECT_EQ(rw->hom.at(C), C);
  EXPECT_EQ(rw->covered_atoms, (std::vector<size_t>{0, 1}));
  // Q1'(A,B,C,D) = V(A,B,C) * T(C,D) is q-hierarchical (the paper's point).
  EXPECT_TRUE(IsQHierarchical(rw->rewritten));
}

TEST(RewritingTest, RejectsWhenBoundVarLeaks) {
  // Q2'(A,C) = SUM_B R(A,B)*S(B,C): its bound B maps to Q1's B, which Q1
  // exposes as free => the rewriting would lose B.
  Query q2b("Q2b", Schema{A, C},
            {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}}});
  auto rw = FindViewRewriting(Q1(), q2b, "V", Schema{A, C});
  EXPECT_FALSE(rw.ok());
}

TEST(RewritingTest, RejectsWhenNoHomomorphismExists) {
  Query q2 = Query("Qx", Schema{A, B}, {Atom{"X", Schema{A, B}}});
  EXPECT_FALSE(FindViewRewriting(Q1(), q2, "V", Schema{A, B}).ok());
}

TEST(CascadeEngineTest, PaperExampleMaintainsBothQueries) {
  auto e = CascadeEngine<IntRing>::Make(Q1(), Q2());
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_TRUE(e->RewrittenIsQHierarchical());

  e->Update("R", Tuple{1, 10}, 1);
  e->Update("S", Tuple{10, 20}, 1);
  e->Update("T", Tuple{20, 30}, 1);
  e->Update("T", Tuple{20, 31}, 2);

  std::map<Tuple, int64_t> q2_out;
  size_t n2 = e->EnumerateQ2([&](const Tuple& t, const int64_t& p) {
    q2_out[t] = p;
  });
  EXPECT_EQ(n2, 1u);

  std::map<Tuple, int64_t> q1_out;
  size_t n1 = e->EnumerateQ1([&](const Tuple& t, const int64_t& p) {
    q1_out[t] = p;
  });
  EXPECT_EQ(n1, 2u);  // (1,10,20,30) and (1,10,20,31)
  int64_t total = 0;
  for (const auto& [t, p] : q1_out) total += p;
  EXPECT_EQ(total, 3);  // payloads 1 and 2
}

TEST(CascadeEngineTest, DeletionsFlowThroughTheSweep) {
  auto e = CascadeEngine<IntRing>::Make(Q1(), Q2());
  ASSERT_TRUE(e.ok());
  e->Update("R", Tuple{1, 10}, 1);
  e->Update("S", Tuple{10, 20}, 1);
  e->Update("T", Tuple{20, 30}, 1);
  EXPECT_EQ(e->EnumerateQ1(nullptr), 1u);
  // Delete S: Q2 loses its tuple; the next Q2 enumeration sweeps it out of
  // V_Q2 and Q1 follows.
  e->Update("S", Tuple{10, 20}, -1);
  EXPECT_EQ(e->EnumerateQ2(nullptr), 0u);
  EXPECT_EQ(e->EnumerateQ1(nullptr), 0u);
}

TEST(CascadeEngineTest, RandomStreamMatchesOracles) {
  Query q1 = Q1(), q2 = Q2();
  auto e = CascadeEngine<IntRing>::Make(q1, q2);
  ASSERT_TRUE(e.ok());
  Relation<IntRing> r(Schema{A, B}), s(Schema{B, C}), t(Schema{C, D});
  Rng rng(21);
  std::vector<std::pair<int, Tuple>> live;
  auto apply = [&](int which, const Tuple& tp, int64_t m) {
    const char* names[3] = {"R", "S", "T"};
    e->Update(names[which], tp, m);
    (which == 0 ? r : which == 1 ? s : t).Apply(tp, m);
  };
  for (int step = 0; step < 3000; ++step) {
    if (!live.empty() && rng.Chance(0.35)) {
      size_t i = rng.Uniform(live.size());
      apply(live[i].first, live[i].second, -1);
      live[i] = live.back();
      live.pop_back();
    } else {
      int which = static_cast<int>(rng.Uniform(3));
      Tuple tp{rng.UniformInt(0, 8), rng.UniformInt(0, 8)};
      apply(which, tp, 1);
      live.emplace_back(which, tp);
    }
    if (step % 311 != 0) continue;
    // Oracles.
    auto q2_oracle = EvaluateQuery<IntRing>(q2, {&r, &s});
    auto q1_oracle = EvaluateQuery<IntRing>(q1, {&r, &s, &t});
    // Sometimes enumerate Q2 first (the paper's condition), sometimes go
    // straight to Q1 (engine must self-sync).
    if (rng.Chance(0.5)) {
      std::map<Tuple, int64_t> got2;
      size_t n2 = e->EnumerateQ2(
          [&](const Tuple& tp, const int64_t& p) { got2[tp] = p; });
      ASSERT_EQ(n2, q2_oracle.size());
      auto pos2 = ProjectionPositions(e->OutputSchemaQ2(), q2.free());
      for (const auto& [tp, p] : got2) {
        ASSERT_EQ(q2_oracle.Payload(ProjectTuple(tp, pos2)), p);
      }
    }
    std::map<Tuple, int64_t> got1;
    size_t n1 = e->EnumerateQ1(
        [&](const Tuple& tp, const int64_t& p) { got1[tp] = p; });
    ASSERT_EQ(n1, q1_oracle.size()) << "step " << step;
    // Q1's enumerator emits free vars in preorder of the rewritten query;
    // project the oracle keys accordingly.
    Schema out_schema = e->OutputSchemaQ1();
    auto pos = ProjectionPositions(out_schema, q1.free());
    for (const auto& [tp, p] : got1) {
      ASSERT_EQ(q1_oracle.Payload(ProjectTuple(tp, pos)), p);
    }
  }
}

}  // namespace
}  // namespace incr
