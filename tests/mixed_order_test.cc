// The remaining §4.5 example: Q(A,C,D) = SUM_B R^d(A,D) * S^s(A,B) *
// T^s(B,C) * U^d(D). The paper notes it is maintainable "albeit after
// quadratic time preprocessing needed to join the static relations S and T
// on the bound variable B". The order search should find exactly such a
// tree: the static subtree materializes S JOIN T (the quadratic object),
// and the dynamic atoms R and U propagate in O(1).
#include <gtest/gtest.h>

#include "incr/engines/join.h"
#include "incr/engines/mixed_engine.h"
#include "incr/query/static_dynamic.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

Query TheQuery() {
  return Query("Q", Schema{A, C, D},
               {Atom{"R", Schema{A, D}}, Atom{"S", Schema{A, B}},
                Atom{"T", Schema{B, C}}, Atom{"U", Schema{D}}});
}

TEST(MixedOrderTest, SecondExample45IsFoundAndConstantForDynamics) {
  Query q = TheQuery();
  // Dynamic R (atom 0) and U (atom 3); static S, T.
  std::vector<bool> is_static{false, true, true, false};
  auto vo = FindMixedOrder(q, is_static);
  ASSERT_TRUE(vo.ok()) << vo.status().ToString();
  auto plan = ViewTreePlan::Make(q, *vo);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->CanEnumerate().ok());
  EXPECT_TRUE(plan->ProgramsConstantTimeFor({0, 3}));
  // All-dynamic, the query is NOT tractable (B sits between free vars).
  EXPECT_FALSE(IsTractableMixed(q, {false, false, false, false}));
}

TEST(MixedOrderTest, SecondExample45MaintenanceMatchesOracle) {
  Query q = TheQuery();
  auto e = MixedStaticDynamicEngine<IntRing>::Make(
      q, {false, true, true, false});
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  Relation<IntRing> r(Schema{A, D}), s(Schema{A, B}), t(Schema{B, C}),
      u(Schema{D});
  Rng rng(17);
  for (int i = 0; i < 80; ++i) {
    Tuple ts{rng.UniformInt(0, 8), rng.UniformInt(0, 5)};
    Tuple tt{rng.UniformInt(0, 5), rng.UniformInt(0, 8)};
    e->Load(1, ts, 1);
    s.Apply(ts, 1);
    e->Load(2, tt, 1);
    t.Apply(tt, 1);
  }
  e->Seal();
  std::vector<std::pair<size_t, Tuple>> live;
  for (int step = 0; step < 1500; ++step) {
    size_t atom;
    Tuple tp;
    int64_t m;
    if (!live.empty() && rng.Chance(0.3)) {
      size_t i = rng.Uniform(live.size());
      atom = live[i].first;
      tp = live[i].second;
      m = -1;
      live[i] = live.back();
      live.pop_back();
    } else {
      atom = rng.Chance(0.5) ? 0 : 3;
      tp = atom == 0 ? Tuple{rng.UniformInt(0, 8), rng.UniformInt(0, 6)}
                     : Tuple{rng.UniformInt(0, 6)};
      m = 1;
      live.emplace_back(atom, tp);
    }
    ASSERT_TRUE(e->UpdateDynamic(atom, tp, m).ok());
    (atom == 0 ? r : u).Apply(tp, m);
    if (step % 311 != 0) continue;
    auto oracle = EvaluateQuery<IntRing>(q, {&r, &s, &t, &u});
    auto pos = ProjectionPositions(e->tree().OutputSchema(), q.free());
    size_t n = 0;
    for (ViewTreeEnumerator<IntRing> it(e->tree()); it.Valid(); it.Next()) {
      ASSERT_EQ(oracle.Payload(ProjectTuple(it.tuple(), pos)), it.payload());
      ++n;
    }
    ASSERT_EQ(n, oracle.size()) << "step " << step;
  }
}

}  // namespace
}  // namespace incr
