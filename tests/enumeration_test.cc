// Extended enumeration and ring-through-the-stack coverage: structural
// delay properties, bindings under churn, Boolean and min-plus semirings,
// covariance-ring aggregates maintained by the view tree.
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "incr/core/view_tree.h"
#include "incr/ring/bool_semiring.h"
#include "incr/ring/covar_ring.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/minplus_semiring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

TEST(EnumerationTest, IteratorContractBasics) {
  Query q("Q", Schema{A, B}, {Atom{"R", Schema{A, B}}});
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  {
    ViewTreeEnumerator<IntRing> it(*tree);
    EXPECT_FALSE(it.Valid());  // empty
  }
  tree->Update("R", Tuple{1, 2}, 1);
  ViewTreeEnumerator<IntRing> it(*tree);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.tuple(), (Tuple{1, 2}));
  EXPECT_EQ(it.payload(), 1);
  it.Next();
  EXPECT_FALSE(it.Valid());
}

TEST(EnumerationTest, EachTupleExactlyOnceUnderChurn) {
  // After heavy churn (inserts, deletes, re-inserts), enumeration yields
  // each live tuple exactly once with the correct payload.
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  Rng rng(8);
  std::map<Tuple, int64_t> r_live, s_live;
  for (int i = 0; i < 5000; ++i) {
    bool is_r = rng.Chance(0.5);
    Tuple t{rng.UniformInt(0, 12), rng.UniformInt(0, 12)};
    auto& live = is_r ? r_live : s_live;
    if (live.count(t) > 0 && rng.Chance(0.5)) {
      tree->Update(is_r ? "R" : "S", t, -live[t]);
      live.erase(t);
    } else {
      tree->Update(is_r ? "R" : "S", t, 1);
      ++live[t];
    }
  }
  std::set<Tuple> seen;
  for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
    Tuple t = it.tuple();
    ASSERT_TRUE(seen.insert(t).second);
    auto ri = r_live.find(Tuple{t[0], t[1]});
    auto si = s_live.find(Tuple{t[0], t[2]});
    ASSERT_TRUE(ri != r_live.end() && si != s_live.end());
    ASSERT_EQ(it.payload(), ri->second * si->second);
  }
  // Completeness.
  size_t expect = 0;
  for (const auto& [rt, rm] : r_live) {
    for (const auto& [st, sm] : s_live) {
      if (rt[0] == st[0]) ++expect;
    }
  }
  EXPECT_EQ(seen.size(), expect);
}

TEST(EnumerationTest, StructuralDelayIsBounded) {
  // Constant-delay claim, checked structurally rather than by wall clock:
  // every W-group visited during enumeration is non-empty and every
  // candidate yields an output tuple — no skips, so the work between
  // consecutive outputs is O(#free vars).
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  Rng rng(15);
  for (int i = 0; i < 800; ++i) {
    tree->Update(rng.Chance(0.5) ? "R" : "S",
                 Tuple{rng.UniformInt(0, 40), rng.UniformInt(0, 40)}, 1);
  }
  size_t outputs = 0;
  for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
    ASSERT_NE(it.payload(), 0);  // every emitted tuple is real
    ++outputs;
  }
  // Cross-check count against the factorized views: for this query,
  // |out| = sum over a of |R[a]| * |S[a]|.
  size_t expect = 0;
  const auto& w_root = tree->NodeW(tree->plan().roots()[0]);
  for (const auto& e : w_root) {
    Value a = e.key.back();
    size_t rn = 0, sn = 0;
    for (const auto& re : tree->AtomRelation(0)) rn += re.key[0] == a;
    for (const auto& se : tree->AtomRelation(1)) sn += se.key[0] == a;
    expect += rn * sn;
    ASSERT_GT(rn * sn, 0u);  // calibration: every root value joins below
  }
  EXPECT_EQ(outputs, expect);
}

TEST(EnumerationTest, BindingsComposeAcrossTrees) {
  // Disconnected query: bindings restrict each tree independently.
  Query q("Q", Schema{A, B},
          {Atom{"R", Schema{A}}, Atom{"S", Schema{B}}});
  auto tree = ViewTree<IntRing>::Make(q);
  ASSERT_TRUE(tree.ok());
  for (Value v = 0; v < 5; ++v) {
    tree->Update("R", Tuple{v}, 1);
    tree->Update("S", Tuple{v + 100}, 1);
  }
  Binding b;
  b.Bind(A, 3);
  size_t n = 0;
  for (ViewTreeEnumerator<IntRing> it(*tree, b); it.Valid(); it.Next()) {
    EXPECT_EQ(it.tuple()[0], 3);
    ++n;
  }
  EXPECT_EQ(n, 5u);
  Binding both;
  both.Bind(A, 3);
  both.Bind(B, 102);
  ViewTreeEnumerator<IntRing> it(*tree, both);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.tuple(), (Tuple{3, 102}));
  it.Next();
  EXPECT_FALSE(it.Valid());
}

TEST(EnumerationTest, BoolSemiringSetSemantics) {
  // Insert-only Boolean maintenance: payloads are presence bits; repeated
  // inserts are idempotent.
  Query q("Q", Schema{A},
          {Atom{"R", Schema{A, B}}});
  auto tree = ViewTree<BoolSemiring>::Make(q);
  ASSERT_TRUE(tree.ok());
  tree->Update("R", Tuple{1, 5}, true);
  tree->Update("R", Tuple{1, 5}, true);
  tree->Update("R", Tuple{1, 6}, true);
  tree->Update("R", Tuple{2, 5}, true);
  size_t n = 0;
  for (ViewTreeEnumerator<BoolSemiring> it(*tree); it.Valid(); it.Next()) {
    EXPECT_TRUE(it.payload());
    ++n;
  }
  EXPECT_EQ(n, 2u);  // A in {1, 2}
  EXPECT_TRUE(tree->Aggregate());
}

TEST(EnumerationTest, MinPlusShortestJoinCost) {
  // Q() = min over (A,B) of R(A,B) + S(B): cheapest two-hop path cost,
  // maintained under inserts (min-plus has no deletes).
  Query q("Q", Schema{},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  auto tree = ViewTree<MinPlusSemiring>::Make(q);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(MinPlusSemiring::IsZero(tree->Aggregate()));  // empty: +inf
  tree->Update("R", Tuple{1, 10}, 7);
  tree->Update("S", Tuple{10}, 5);
  EXPECT_EQ(tree->Aggregate(), 12);
  tree->Update("R", Tuple{2, 11}, 1);
  tree->Update("S", Tuple{11}, 2);
  EXPECT_EQ(tree->Aggregate(), 3);
  // A cheaper S(10) improves the first path but not below 3.
  tree->Update("S", Tuple{10}, 1);
  EXPECT_EQ(tree->Aggregate(), 3);
}

TEST(EnumerationTest, CovarRingGroupedStatistics) {
  // Per-group (free variable) covariance payloads through enumeration.
  using R1 = CovarRing<1>;
  Query q("Q", Schema{A}, {Atom{"R", Schema{A, B}}});
  auto tree = ViewTree<R1>::Make(q);
  ASSERT_TRUE(tree.ok());
  tree->SetLifting(B, [](Value b) {
    return R1::Lift(0, static_cast<double>(b));
  });
  tree->Update("R", Tuple{1, 10}, R1::One());
  tree->Update("R", Tuple{1, 20}, R1::One());
  tree->Update("R", Tuple{2, 5}, R1::One());
  std::map<Value, CovarValue<1>> got;
  for (ViewTreeEnumerator<R1> it(*tree); it.Valid(); it.Next()) {
    // payload() multiplies atom payloads only (B is free? no — B is bound,
    // so groups fold through M). Read group statistics from M of the bound
    // child instead: the root W payload carries them.
  }
  // Group stats live in W at the root (A) since B is marginalized below.
  const auto& w = tree->NodeW(tree->plan().roots()[0]);
  ASSERT_EQ(w.size(), 2u);
  CovarValue<1> g1 = w.Payload(Tuple{1});
  EXPECT_EQ(g1.count, 2);
  EXPECT_DOUBLE_EQ(g1.sum[0], 30.0);
  EXPECT_DOUBLE_EQ(g1.prod[0], 100.0 + 400.0);
  CovarValue<1> g2 = w.Payload(Tuple{2});
  EXPECT_EQ(g2.count, 1);
  EXPECT_DOUBLE_EQ(g2.sum[0], 5.0);
}

}  // namespace
}  // namespace incr
