// Query text parser tests.
#include <gtest/gtest.h>

#include "incr/query/parser.h"
#include "incr/query/properties.h"

namespace incr {
namespace {

TEST(ParserTest, BasicQuery) {
  VarRegistry vars;
  auto q = ParseQuery("Q(A, B, C) = R(A, B), S(B, C)", &vars);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name(), "Q");
  EXPECT_EQ(q->free().size(), 3u);
  ASSERT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->atoms()[0].relation, "R");
  EXPECT_EQ(q->atoms()[1].relation, "S");
  // Shared variable B is the same id in both atoms.
  EXPECT_EQ(q->atoms()[0].schema[1], q->atoms()[1].schema[0]);
}

TEST(ParserTest, EmptyHeadIsAggregate) {
  VarRegistry vars;
  auto q = ParseQuery("Count() = R(A, B)", &vars);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->free().empty());
  EXPECT_EQ(q->AllVars().size(), 2u);
}

TEST(ParserTest, StarSeparatorAndWhitespace) {
  VarRegistry vars;
  auto q = ParseQuery("  Q ( A )=R( A , B ) * S(B)  ", &vars);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms().size(), 2u);
  EXPECT_TRUE(IsHierarchical(*q));
}

TEST(ParserTest, SharedRegistryAcrossQueries) {
  VarRegistry vars;
  auto q1 = ParseQuery("Q1(A) = R(A, B)", &vars);
  auto q2 = ParseQuery("Q2(B) = S(B)", &vars);
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_EQ(q1->atoms()[0].schema[1], q2->atoms()[0].schema[0]);  // same B
}

TEST(ParserTest, Errors) {
  VarRegistry vars;
  EXPECT_FALSE(ParseQuery("", &vars).ok());
  EXPECT_FALSE(ParseQuery("Q(A)", &vars).ok());            // missing body
  EXPECT_FALSE(ParseQuery("Q(A) = ", &vars).ok());         // empty body
  EXPECT_FALSE(ParseQuery("Q(A) = R", &vars).ok());        // missing parens
  EXPECT_FALSE(ParseQuery("Q(A) = R()", &vars).ok());      // nullary atom
  EXPECT_FALSE(ParseQuery("Q(A,) = R(A)", &vars).ok());    // dangling comma
  EXPECT_FALSE(ParseQuery("Q(A) = R(A) S(A)", &vars).ok());  // no separator
  EXPECT_FALSE(ParseQuery("Q(A|B) = R(A,B)", &vars).ok());  // CQAP head
}

TEST(ParserTest, ErrorsCarryLineAndColumn) {
  VarRegistry vars;
  // Single line: the missing body is discovered at the end of line 1.
  auto q = ParseQuery("Q(A)", &vars);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("line 1"), std::string::npos)
      << q.status().message();

  // Multi-line input (as in a .repro or REPL paste): the bad atom sits on
  // line 3 and the error says so.
  auto m = ParseQuery("Q(A, B) =\n  R(A, B),\n  S(", &vars);
  ASSERT_FALSE(m.ok());
  EXPECT_NE(m.status().message().find("line 3"), std::string::npos)
      << m.status().message();
  EXPECT_NE(m.status().message().find("column"), std::string::npos);
}

TEST(ParserTest, SelfJoinSharesOneRelation) {
  VarRegistry vars;
  auto q = ParseQuery("Q(A, B, C) = E(A, B), E(B, C)", &vars);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms().size(), 2u);
}

TEST(ParserTest, SameRelationDifferentArityIsRejected) {
  VarRegistry vars;
  auto q = ParseQuery("Q(A, B, C) = R(A, B), R(A, B, C)", &vars);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("'R'"), std::string::npos)
      << q.status().message();
  EXPECT_NE(q.status().message().find("arity"), std::string::npos);
}

TEST(ParserTest, RepeatedVariableWithinAtomIsRejected) {
  VarRegistry vars;
  auto q = ParseQuery("Q(A) = R(A, A)", &vars);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("'A'"), std::string::npos)
      << q.status().message();
  // Across different atoms a repeat is just a join — fine.
  EXPECT_TRUE(ParseQuery("Q(A) = R(A), S(A)", &vars).ok());
}

TEST(ParserTest, DuplicateHeadVariableIsRejected) {
  VarRegistry vars;
  auto q = ParseQuery("Q(A, A) = R(A, B)", &vars);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("twice"), std::string::npos)
      << q.status().message();
  EXPECT_FALSE(ParseCqap("Q(A | B, B) = R(A, B)", &vars).ok());
}

TEST(ParserTest, MissingQueryNameIsRejected) {
  VarRegistry vars;
  EXPECT_FALSE(ParseQuery("(A) = R(A)", &vars).ok());
  EXPECT_FALSE(ParseQuery("= R(A)", &vars).ok());
}

TEST(ParserTest, UnboundHeadVariableIsRejected) {
  VarRegistry vars;
  auto q = ParseQuery("Q(A, X) = R(A, B), S(B, C)", &vars);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("'X'"), std::string::npos)
      << q.status().message();

  // Both the output and the input side of a CQAP head are checked.
  EXPECT_FALSE(ParseCqap("Q(A | Y) = R(A, B)", &vars).ok());
  EXPECT_FALSE(ParseCqap("Q(Z | A) = R(A, B)", &vars).ok());
  EXPECT_TRUE(ParseCqap("Q(A | B) = R(A, B)", &vars).ok());
}

TEST(ParserTest, CqapHead) {
  VarRegistry vars;
  auto q = ParseCqap("Q(A | B) = S(A, B), T(B)", &vars);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->output.size(), 1u);
  EXPECT_EQ(q->input.size(), 1u);
  EXPECT_EQ(q->query.free().size(), 2u);
  EXPECT_TRUE(IsTractableCqap(*q));
}

TEST(ParserTest, CqapAllInput) {
  VarRegistry vars;
  auto q = ParseCqap("Tri(| A, B, C) = E(A,B), E(B,C), E(C,A)", &vars);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->output.empty());
  EXPECT_EQ(q->input.size(), 3u);
}

TEST(ParserTest, CqapWithoutPipeHasEmptyInput) {
  VarRegistry vars;
  auto q = ParseCqap("Q(A, B) = R(A, B)", &vars);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->input.empty());
  EXPECT_EQ(q->output.size(), 2u);
}

}  // namespace
}  // namespace incr
