// Metamorphic consistency of the theory stack on random queries: the
// syntactic classifications of §4 must agree with what the compiled plans
// actually guarantee.
//
//   (1) IsHierarchical(q)  <=>  the canonical variable order exists;
//   (2) for hierarchical q, every canonical delta program is O(1);
//   (3) for hierarchical q, the canonical order supports constant-delay
//       enumeration  <=>  IsQHierarchical(q)   (Thm. 4.1's upper side);
//   (4) q-hierarchical  =>  free-connex alpha-acyclic (strict subclass,
//       §4.1);
//   (5) maintenance on the canonical order matches the oracle (spot).
#include <gtest/gtest.h>

#include "incr/core/view_tree.h"
#include "incr/cqap/cqap_engine.h"
#include "incr/engines/join.h"
#include "incr/query/cqap.h"
#include "incr/query/properties.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

// Random query generator: up to 4 variables, up to 4 atoms with random
// non-empty schemas, random free set.
Query RandomQuery(Rng& rng) {
  int n_vars = 1 + static_cast<int>(rng.Uniform(4));
  int n_atoms = 1 + static_cast<int>(rng.Uniform(4));
  std::vector<Atom> atoms;
  Schema used;
  for (int a = 0; a < n_atoms; ++a) {
    Schema s;
    for (Var v = 0; v < static_cast<Var>(n_vars); ++v) {
      if (rng.Chance(0.5)) s.push_back(v);
    }
    if (s.empty()) s.push_back(static_cast<Var>(rng.Uniform(n_vars)));
    used = SchemaUnion(used, s);
    atoms.push_back(Atom{"R" + std::to_string(a), s});
  }
  Schema free;
  for (Var v : used) {
    if (rng.Chance(0.5)) free.push_back(v);
  }
  return Query("rand", free, std::move(atoms));
}

class DichotomyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DichotomyTest, ClassifiersAgreeWithCompiledPlans) {
  Rng rng(GetParam());
  int hierarchical_seen = 0, qh_seen = 0, non_seen = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Query q = RandomQuery(rng);
    bool hier = IsHierarchical(q);
    bool qh = IsQHierarchical(q);
    auto vo = VariableOrder::Canonical(q);

    // (1) canonical order exists iff hierarchical.
    ASSERT_EQ(vo.ok(), hier) << q.ToString(VarRegistry());
    if (!hier) {
      ASSERT_FALSE(qh);
      ++non_seen;
      continue;
    }
    ++hierarchical_seen;
    auto plan = ViewTreePlan::Make(q, *vo);
    ASSERT_TRUE(plan.ok());
    // (2) canonical programs are all O(1) for hierarchical queries.
    ASSERT_TRUE(plan->AllProgramsConstantTime())
        << q.ToString(VarRegistry());
    // (3) constant-delay enumerability iff q-hierarchical.
    ASSERT_EQ(plan->CanEnumerate().ok(), qh) << q.ToString(VarRegistry());
    // (4) q-hierarchical => free-connex acyclic.
    if (qh) {
      ++qh_seen;
      ASSERT_TRUE(IsAlphaAcyclic(q));
      ASSERT_TRUE(IsFreeConnex(q));
    }
  }
  // The generator must actually exercise all three regions.
  EXPECT_GT(hierarchical_seen, 30);
  EXPECT_GT(qh_seen, 10);
  EXPECT_GT(non_seen, 30);
}

TEST_P(DichotomyTest, CanonicalMaintenanceMatchesOracle) {
  Rng rng(GetParam() + 100);
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 25; ++trial) {
    Query q = RandomQuery(rng);
    if (!IsQHierarchical(q)) continue;
    ++checked;
    auto tree = ViewTree<IntRing>::Make(q);
    ASSERT_TRUE(tree.ok());
    // Random valid update stream per-atom.
    std::vector<std::pair<size_t, Tuple>> live;
    for (int step = 0; step < 250; ++step) {
      if (!live.empty() && rng.Chance(0.3)) {
        size_t i = rng.Uniform(live.size());
        tree->UpdateAtom(live[i].first, live[i].second, -1);
        live[i] = live.back();
        live.pop_back();
      } else {
        size_t atom = rng.Uniform(q.atoms().size());
        Tuple t;
        for (size_t k = 0; k < q.atoms()[atom].schema.size(); ++k) {
          t.push_back(rng.UniformInt(0, 4));
        }
        tree->UpdateAtom(atom, t, 1);
        live.emplace_back(atom, t);
      }
    }
    std::vector<const Relation<IntRing>*> rels;
    for (size_t a = 0; a < q.atoms().size(); ++a) {
      rels.push_back(&tree->AtomRelation(a));
    }
    auto oracle = EvaluateQuery<IntRing>(q, rels);
    auto positions = ProjectionPositions(tree->OutputSchema(), q.free());
    size_t n = 0;
    for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
      ASSERT_EQ(oracle.Payload(ProjectTuple(it.tuple(), positions)),
                it.payload())
          << q.ToString(VarRegistry());
      ++n;
    }
    ASSERT_EQ(n, oracle.size()) << q.ToString(VarRegistry());
  }
  EXPECT_EQ(checked, 25);
}

// Random CQAPs: tractability decisions are stable under fracturing (the
// fracture of a fracture's components is itself) and the tractable ones
// build working engines.
TEST_P(DichotomyTest, CqapTractabilityConsistency) {
  Rng rng(GetParam() + 999);
  int tractable_seen = 0, intractable_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Query q = RandomQuery(rng);
    Schema all = q.AllVars();
    // Random input/output split of the free variables.
    Schema input, output;
    for (Var v : q.free()) {
      (rng.Chance(0.5) ? input : output).push_back(v);
    }
    CqapQuery cq;
    cq.query = q;
    cq.input = input;
    cq.output = output;
    Fracture f = ComputeFracture(cq);
    // Component atoms partition the original atoms.
    size_t total = 0;
    for (const auto& comp : f.components) total += comp.atom_ids.size();
    ASSERT_EQ(total, q.atoms().size());
    bool tractable = IsTractableCqap(cq);
    auto engine = CqapEngine<IntRing>::Make(cq);
    ASSERT_EQ(engine.ok(), tractable) << q.ToString(VarRegistry());
    (tractable ? tractable_seen : intractable_seen)++;
  }
  EXPECT_GT(tractable_seen, 20);
  EXPECT_GT(intractable_seen, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DichotomyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace incr
