// Triangle maintainer tests (DESIGN.md invariants 6-7): all four strategies
// of paper §3 agree with each other under random insert/delete streams,
// including skewed streams that force heavy/light migrations and major
// rebalances; IVMe partition and view invariants hold after every update.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "incr/ivme/heavy_light.h"
#include "incr/ivme/triangle.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

TEST(HeavyLightTest, AppliesAndTracksDegrees) {
  HeavyLightRelation r(/*theta=*/4);
  r.Apply(1, 10, 2);
  r.Apply(1, 11, 1);
  r.Apply(2, 20, 1);
  EXPECT_EQ(r.Degree(1), 2);
  EXPECT_EQ(r.Degree(2), 1);
  EXPECT_EQ(r.Payload(1, 10), 2);
  EXPECT_EQ(r.PartOf(1), HeavyLightRelation::kLight);
  EXPECT_TRUE(r.InvariantsHold());

  // Payload update without tuple-count change keeps degree.
  r.Apply(1, 10, 5);
  EXPECT_EQ(r.Degree(1), 2);

  // Deleting to zero reduces the degree.
  r.Apply(1, 11, -1);
  EXPECT_EQ(r.Degree(1), 1);
}

TEST(HeavyLightTest, PromotionAndDemotionThresholds) {
  HeavyLightRelation r(/*theta=*/2);
  for (Value b = 0; b < 4; ++b) r.Apply(7, b, 1);
  EXPECT_TRUE(r.ShouldPromote(7));  // degree 4 >= 2*theta
  r.Migrate(7);
  EXPECT_EQ(r.PartOf(7), HeavyLightRelation::kHeavy);
  EXPECT_EQ(r.heavy().size(), 4u);
  EXPECT_EQ(r.light().size(), 0u);
  EXPECT_TRUE(r.InvariantsHold());
  EXPECT_EQ(r.Payload(7, 2), 1);

  for (Value b = 0; b < 4; ++b) r.Apply(7, b, -1);
  EXPECT_TRUE(r.ShouldDemote(7));  // degree 0, 2*0 < theta
  r.Migrate(7);
  EXPECT_EQ(r.PartOf(7), HeavyLightRelation::kLight);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.InvariantsHold());
}

TEST(HeavyLightTest, GroupLookupsSpanTheCorrectPart) {
  HeavyLightRelation r(/*theta=*/1);
  r.Apply(5, 50, 1);
  r.Apply(5, 51, 1);
  if (r.ShouldPromote(5)) r.Migrate(5);
  EXPECT_EQ(r.PartOf(5), HeavyLightRelation::kHeavy);
  const auto* g = r.Group(5);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->size(), 2u);
  EXPECT_NE(r.GroupByOther(HeavyLightRelation::kHeavy, 50), nullptr);
  EXPECT_EQ(r.GroupByOther(HeavyLightRelation::kLight, 50), nullptr);
}

TEST(HeavyLightTest, ExtractAllSeesBothParts) {
  HeavyLightRelation r(/*theta=*/1);
  r.Apply(1, 10, 3);
  r.Apply(2, 20, 4);
  r.Apply(2, 21, 5);
  if (r.ShouldPromote(2)) r.Migrate(2);
  std::vector<std::pair<Tuple, int64_t>> all;
  r.ExtractAll(&all);
  EXPECT_EQ(all.size(), 3u);
}

TEST(TriangleCountersTest, PaperExampleAllStrategies) {
  // The running example of §3 (Fig. 2): count 5, then deltaR -> count 3.
  std::vector<std::unique_ptr<TriangleCounter>> counters;
  counters.push_back(std::make_unique<NaiveTriangleCounter>());
  counters.push_back(std::make_unique<DeltaTriangleCounter>());
  counters.push_back(std::make_unique<MaterializedTriangleCounter>());
  counters.push_back(std::make_unique<IvmEpsTriangleCounter>(0.5));
  for (auto& c : counters) {
    c->Update(TriangleRel::kR, 1, 11, 1);
    c->Update(TriangleRel::kR, 2, 11, 3);
    c->Update(TriangleRel::kR, 2, 12, 1);
    c->Update(TriangleRel::kS, 11, 21, 2);
    c->Update(TriangleRel::kS, 11, 22, 1);
    c->Update(TriangleRel::kT, 21, 1, 1);
    c->Update(TriangleRel::kT, 22, 2, 1);
    EXPECT_EQ(c->Count(), 5) << c->name();
    EXPECT_TRUE(c->Detect()) << c->name();
    c->Update(TriangleRel::kR, 2, 11, -2);
    EXPECT_EQ(c->Count(), 3) << c->name();
  }
}

struct StreamParams {
  uint64_t seed;
  double epsilon;
  double zipf_skew;      // skew of the key domain (drives migrations)
  int64_t domain;        // value domain size
  int steps;
  double delete_prob;
};

class TriangleStreamTest : public ::testing::TestWithParam<StreamParams> {};

TEST_P(TriangleStreamTest, AllStrategiesAgreeAndInvariantsHold) {
  const StreamParams p = GetParam();
  Rng rng(p.seed);
  ZipfSampler zipf(static_cast<uint64_t>(p.domain), p.zipf_skew);

  NaiveTriangleCounter naive;
  DeltaTriangleCounter delta;
  MaterializedTriangleCounter mat;
  IvmEpsTriangleCounter eps(p.epsilon);

  // Track inserted tuples so deletes hit existing data.
  std::vector<std::pair<TriangleRel, Tuple>> live;

  for (int step = 0; step < p.steps; ++step) {
    TriangleRel rel;
    Value x, y;
    int64_t m;
    if (!live.empty() && rng.Chance(p.delete_prob)) {
      size_t i = rng.Uniform(live.size());
      rel = live[i].first;
      x = live[i].second[0];
      y = live[i].second[1];
      m = -1;
      live[i] = live.back();
      live.pop_back();
    } else {
      rel = static_cast<TriangleRel>(rng.Uniform(3));
      x = static_cast<Value>(zipf.Sample(rng));
      y = static_cast<Value>(zipf.Sample(rng));
      m = rng.Chance(0.2) ? 2 : 1;  // occasional multiplicity > 1
      live.emplace_back(rel, Tuple{x, y});
    }
    naive.Update(rel, x, y, m);
    delta.Update(rel, x, y, m);
    mat.Update(rel, x, y, m);
    eps.Update(rel, x, y, m);

    ASSERT_EQ(delta.Count(), eps.Count()) << "step " << step;
    ASSERT_EQ(mat.Count(), eps.Count()) << "step " << step;
    if (step % 257 == 0) {
      ASSERT_EQ(naive.Count(), eps.Count()) << "step " << step;
      ASSERT_TRUE(eps.InvariantsHold()) << "step " << step;
    }
  }
  EXPECT_EQ(naive.Count(), eps.Count());
  EXPECT_TRUE(eps.InvariantsHold());
}

INSTANTIATE_TEST_SUITE_P(
    Streams, TriangleStreamTest,
    ::testing::Values(
        // Uniform, balanced: exercises major rebalances as N grows.
        StreamParams{1, 0.5, 0.0, 40, 4000, 0.2},
        // Heavy skew: forces promotions/demotions of hot keys.
        StreamParams{2, 0.5, 1.3, 60, 4000, 0.3},
        // Eps extremes: eps=0 (everything effectively light-threshold 1),
        // eps=1 (threshold N, everything light).
        StreamParams{3, 0.0, 1.0, 30, 2500, 0.25},
        StreamParams{4, 1.0, 1.0, 30, 2500, 0.25},
        // Small dense domain: many multiplicity updates and zero-crossings.
        StreamParams{5, 0.5, 0.5, 12, 3000, 0.45},
        // Delete-heavy: shrinking phases trigger downward major rebalances.
        StreamParams{6, 0.75, 0.8, 25, 3000, 0.48}));

TEST(IvmEpsTriangleTest, MigrationsAndRebalancesActuallyHappen) {
  // Sanity that the adaptive machinery is exercised: a hot key grows far
  // past any fixed threshold, then shrinks back.
  IvmEpsTriangleCounter eps(0.5);
  for (Value i = 0; i < 400; ++i) eps.Update(TriangleRel::kR, 7, i, 1);
  for (Value i = 0; i < 400; ++i) eps.Update(TriangleRel::kR, 7, i, -1);
  EXPECT_GT(eps.num_migrations(), 0);
  EXPECT_GT(eps.num_major_rebalances(), 1);
  EXPECT_EQ(eps.Count(), 0);
  EXPECT_TRUE(eps.InvariantsHold());
}

TEST(IvmEpsTriangleTest, CountSurvivesMajorRebalance) {
  IvmEpsTriangleCounter eps(0.5);
  NaiveTriangleCounter naive;
  // Build a clique-ish structure, then grow N by 4x to force rebalances.
  for (Value v = 0; v < 12; ++v) {
    for (Value w = 0; w < 12; ++w) {
      eps.Update(TriangleRel::kR, v, w, 1);
      eps.Update(TriangleRel::kS, v, w, 1);
      eps.Update(TriangleRel::kT, v, w, 1);
      naive.Update(TriangleRel::kR, v, w, 1);
      naive.Update(TriangleRel::kS, v, w, 1);
      naive.Update(TriangleRel::kT, v, w, 1);
    }
  }
  EXPECT_EQ(eps.Count(), naive.Count());
  EXPECT_EQ(eps.Count(), 12 * 12 * 12);
  EXPECT_TRUE(eps.InvariantsHold());
}

TEST(TriangleCountersTest, NegativeTransientsCancelOut)  {
  // Out-of-order execution (paper §2): delete before insert; the cumulative
  // effect must match in-order execution.
  IvmEpsTriangleCounter eps(0.5);
  eps.Update(TriangleRel::kR, 1, 2, -1);  // delete first (payload -1)
  eps.Update(TriangleRel::kS, 2, 3, 1);
  eps.Update(TriangleRel::kT, 3, 1, 1);
  EXPECT_EQ(eps.Count(), -1);  // transient negative count
  eps.Update(TriangleRel::kR, 1, 2, 2);   // now insert twice
  EXPECT_EQ(eps.Count(), 1);
}

}  // namespace
}  // namespace incr
