// Tests for PK-FK tracking (Ex. 4.13) and static/dynamic tractability
// (§4.5, Ex. 4.14) + the mixed engine.
#include <gtest/gtest.h>

#include "incr/constraints/fk.h"
#include "incr/engines/join.h"
#include "incr/engines/mixed_engine.h"
#include "incr/query/properties.h"
#include "incr/query/static_dynamic.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"
#include "incr/workload/imdb.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

TEST(FkTrackerTest, TracksDanglingChildren) {
  FkConsistencyTracker tracker(
      {{"M", 1, "C", 0}});  // M(mid, cid) references C(cid)
  EXPECT_TRUE(tracker.IsConsistent());
  tracker.OnUpdate("M", Tuple{1, 100}, 1);
  EXPECT_FALSE(tracker.IsConsistent());
  EXPECT_EQ(tracker.violations(), 1);
  tracker.OnUpdate("M", Tuple{2, 100}, 1);
  EXPECT_EQ(tracker.violations(), 2);
  // The parent arrives: both resolved at once.
  tracker.OnUpdate("C", Tuple{100}, 1);
  EXPECT_TRUE(tracker.IsConsistent());
  // Deleting the parent first re-dangles them.
  tracker.OnUpdate("C", Tuple{100}, -1);
  EXPECT_EQ(tracker.violations(), 2);
  tracker.OnUpdate("M", Tuple{1, 100}, -1);
  tracker.OnUpdate("M", Tuple{2, 100}, -1);
  EXPECT_TRUE(tracker.IsConsistent());
}

TEST(FkTrackerTest, MultipleConstraints) {
  FkConsistencyTracker tracker(
      {{"M", 0, "T", 0}, {"M", 1, "C", 0}});
  tracker.OnUpdate("M", Tuple{1, 2}, 1);
  EXPECT_EQ(tracker.violations(), 2);  // both FKs dangling
  tracker.OnUpdate("T", Tuple{1}, 1);
  EXPECT_EQ(tracker.violations(), 1);
  tracker.OnUpdate("C", Tuple{2}, 1);
  EXPECT_TRUE(tracker.IsConsistent());
}

TEST(FkTrackerTest, ImdbValidBatchesRestoreConsistency) {
  ImdbWorkload wl(5);
  FkConsistencyTracker tracker({{"MovieCompanies", 0, "Title", 0},
                                {"MovieCompanies", 1, "Company", 0}});
  for (int round = 0; round < 10; ++round) {
    auto batch = wl.NextValidBatch(/*n_companies=*/8, /*fanout=*/5);
    bool saw_inconsistent = false;
    for (const auto& u : batch) {
      tracker.OnUpdate(u.rel, u.tuple, u.delta);
      saw_inconsistent |= !tracker.IsConsistent();
    }
    EXPECT_TRUE(saw_inconsistent);          // adversarial order inside
    EXPECT_TRUE(tracker.IsConsistent());    // valid at the boundary
  }
}

TEST(FkMaintenanceTest, ImdbJoinMatchesOracleUnderValidBatches) {
  // The non-hierarchical IMDB join maintained by the generic view tree:
  // correct at every step; amortized O(1) is measured in bench_fk.
  ImdbWorkload wl(7);
  auto tree = ViewTree<IntRing>::Make(wl.query(), wl.Order());
  ASSERT_TRUE(tree.ok());
  Relation<IntRing> t_rel(Schema{ImdbWorkload::kMid});
  Relation<IntRing> m_rel(Schema{ImdbWorkload::kMid, ImdbWorkload::kCid});
  Relation<IntRing> c_rel(Schema{ImdbWorkload::kCid});
  for (int round = 0; round < 6; ++round) {
    for (const auto& u : wl.NextValidBatch(6, 4)) {
      tree->Update(u.rel, u.tuple, u.delta);
      (u.rel == "Title" ? t_rel : u.rel == "MovieCompanies" ? m_rel : c_rel)
          .Apply(u.tuple, u.delta);
    }
    auto oracle = EvaluateQuery<IntRing>(wl.query(), {&t_rel, &m_rel, &c_rel});
    size_t n = 0;
    for (ViewTreeEnumerator<IntRing> it(*tree); it.Valid(); it.Next()) {
      Schema out = tree->OutputSchema();
      auto pos = ProjectionPositions(out, wl.query().free());
      ASSERT_EQ(oracle.Payload(ProjectTuple(it.tuple(), pos)), it.payload());
      ++n;
    }
    ASSERT_EQ(n, oracle.size());
  }
}

TEST(StaticDynamicTest, Example414IsMixedTractable) {
  // Q(A,B,C) = SUM_D R^d(A,D) * S^d(A,B) * T^s(B,C).
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, D}}, Atom{"S", Schema{A, B}},
           Atom{"T", Schema{B, C}}});
  EXPECT_FALSE(IsQHierarchical(q));
  // All-dynamic: not tractable.
  EXPECT_FALSE(IsTractableMixed(q, {false, false, false}));
  // T static: tractable (the paper's point).
  EXPECT_TRUE(IsTractableMixed(q, {false, false, true}));
  auto vo = FindMixedOrder(q, {false, false, true});
  ASSERT_TRUE(vo.ok());
  auto plan = ViewTreePlan::Make(q, *vo);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->ProgramsConstantTimeFor({0, 1}));
  EXPECT_TRUE(plan->CanEnumerate().ok());
}

TEST(StaticDynamicTest, QHierarchicalAlwaysTractableAllDynamic) {
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  EXPECT_TRUE(IsTractableMixed(q, {false, false}));
}

TEST(StaticDynamicTest, NonHierarchicalExample43WithStaticMiddle) {
  // Ex. 4.14 end: Q(A,B) = R^d(A) * S^s(A,B) * T^d(B). The paper notes
  // this *can* be maintained but only with exponential preprocessing; the
  // syntactic search (which only builds linear-preprocessing view trees)
  // correctly fails to find a constant-time order.
  Query q("Q", Schema{A, B},
          {Atom{"R", Schema{A}}, Atom{"S", Schema{A, B}},
           Atom{"T", Schema{B}}});
  EXPECT_FALSE(IsTractableMixed(q, {false, true, false}));
}

TEST(MixedEngineTest, Example414MaintenanceMatchesOracle) {
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, D}}, Atom{"S", Schema{A, B}},
           Atom{"T", Schema{B, C}}});
  auto e = MixedStaticDynamicEngine<IntRing>::Make(q, {false, false, true});
  ASSERT_TRUE(e.ok()) << e.status().ToString();

  Relation<IntRing> r(Schema{A, D}), s(Schema{A, B}), t(Schema{B, C});
  Rng rng(31);
  // Static T preloaded.
  for (int i = 0; i < 60; ++i) {
    Tuple tt{rng.UniformInt(0, 6), rng.UniformInt(0, 6)};
    e->Load(2, tt, 1);
    t.Apply(tt, 1);
  }
  e->Seal();
  EXPECT_FALSE(e->UpdateDynamic(2, Tuple{0, 0}, 1).ok());

  std::vector<std::pair<size_t, Tuple>> live;
  for (int step = 0; step < 1200; ++step) {
    size_t atom;
    Tuple tt;
    int64_t m;
    if (!live.empty() && rng.Chance(0.3)) {
      size_t i = rng.Uniform(live.size());
      atom = live[i].first;
      tt = live[i].second;
      m = -1;
      live[i] = live.back();
      live.pop_back();
    } else {
      atom = rng.Uniform(2);  // R or S
      tt = Tuple{rng.UniformInt(0, 6), rng.UniformInt(0, 6)};
      m = 1;
      live.emplace_back(atom, tt);
    }
    ASSERT_TRUE(e->UpdateDynamic(atom, tt, m).ok());
    (atom == 0 ? r : s).Apply(tt, m);
    if (step % 149 != 0) continue;
    auto oracle = EvaluateQuery<IntRing>(q, {&r, &s, &t});
    size_t n = 0;
    Schema out = e->tree().OutputSchema();
    auto pos = ProjectionPositions(out, q.free());
    for (ViewTreeEnumerator<IntRing> it(e->tree()); it.Valid(); it.Next()) {
      ASSERT_EQ(oracle.Payload(ProjectTuple(it.tuple(), pos)), it.payload());
      ++n;
    }
    ASSERT_EQ(n, oracle.size()) << "step " << step;
  }
}

}  // namespace
}  // namespace incr
