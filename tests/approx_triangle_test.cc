// Approximate triangle counter (§3.3's [29] pointer): estimator sanity,
// delete-consistency of the deterministic sampling, degenerate p=1 case.
#include <cmath>

#include <gtest/gtest.h>

#include "incr/ivme/approx_triangle.h"
#include "incr/util/rng.h"
#include "incr/workload/graph.h"

namespace incr {
namespace {

TEST(ApproxTriangleTest, FullRateIsExact) {
  ApproxTriangleCounter approx(1.0, 0.5, 1);
  NaiveTriangleCounter exact;
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    auto rel = static_cast<TriangleRel>(rng.Uniform(3));
    Value a = rng.UniformInt(0, 30), b = rng.UniformInt(0, 30);
    approx.Update(rel, a, b, 1);
    exact.Update(rel, a, b, 1);
  }
  EXPECT_DOUBLE_EQ(approx.Estimate(),
                   static_cast<double>(exact.Count()));
}

TEST(ApproxTriangleTest, DeletesAreSampleConsistent) {
  // Insert then delete the same stream: the sampled sub-database must be
  // empty again regardless of which tuples were sampled.
  ApproxTriangleCounter approx(0.3, 0.5, 7);
  Rng rng(3);
  std::vector<std::pair<TriangleRel, Tuple>> stream;
  for (int i = 0; i < 3000; ++i) {
    auto rel = static_cast<TriangleRel>(rng.Uniform(3));
    Tuple t{rng.UniformInt(0, 40), rng.UniformInt(0, 40)};
    stream.emplace_back(rel, t);
    approx.Update(rel, t[0], t[1], 1);
  }
  for (const auto& [rel, t] : stream) approx.Update(rel, t[0], t[1], -1);
  EXPECT_EQ(approx.SampledCount(), 0);
  EXPECT_DOUBLE_EQ(approx.Estimate(), 0.0);
}

TEST(ApproxTriangleTest, SamplingRateIsRespected) {
  ApproxTriangleCounter approx(0.25, 0.5, 11);
  Rng rng(4);
  const int kUpdates = 20000;
  for (int i = 0; i < kUpdates; ++i) {
    approx.Update(static_cast<TriangleRel>(rng.Uniform(3)),
                  rng.UniformInt(0, 1 << 20), rng.UniformInt(0, 1 << 20), 1);
  }
  double rate = static_cast<double>(approx.sampled_updates()) / kUpdates;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(ApproxTriangleTest, EstimatorIsInTheRightBallpark) {
  // Dense-ish random digraph: many triangles; the p=0.5 estimate should
  // land within a loose relative error band (this is a smoke bound, not a
  // concentration proof; seeds fixed).
  const int kV = 60;
  NaiveTriangleCounter exact;
  ApproxTriangleCounter approx(0.5, 0.5, 13);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    auto rel = static_cast<TriangleRel>(rng.Uniform(3));
    Value a = rng.UniformInt(0, kV - 1), b = rng.UniformInt(0, kV - 1);
    exact.Update(rel, a, b, 1);
    approx.Update(rel, a, b, 1);
  }
  double truth = static_cast<double>(exact.Count());
  ASSERT_GT(truth, 1000);
  EXPECT_NEAR(approx.Estimate() / truth, 1.0, 0.35);
}

}  // namespace
}  // namespace incr
