// Standalone heavy/light partition property suite (DESIGN.md invariant 7),
// independent of the triangle counter: random streams with owner-driven
// migrations, against a flat oracle.
#include <map>

#include <gtest/gtest.h>

#include "incr/ivme/heavy_light.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

struct HlParams {
  uint64_t seed;
  int64_t theta;
  double skew;
  int steps;
};

class HeavyLightPropertyTest : public ::testing::TestWithParam<HlParams> {};

TEST_P(HeavyLightPropertyTest, PartitionMatchesOracleWithInvariants) {
  const HlParams p = GetParam();
  HeavyLightRelation hl(p.theta);
  std::map<Tuple, int64_t> oracle;
  Rng rng(p.seed);
  ZipfSampler zipf(40, p.skew);
  std::vector<Tuple> live;
  for (int step = 0; step < p.steps; ++step) {
    if (!live.empty() && rng.Chance(0.4)) {
      size_t i = rng.Uniform(live.size());
      Tuple t = live[i];
      live[i] = live.back();
      live.pop_back();
      hl.Apply(t[0], t[1], -1);
      if (--oracle[t] == 0) oracle.erase(t);
      hl.ShouldDemote(t[0]) ? hl.Migrate(t[0]) : void();
    } else {
      Value key = static_cast<Value>(zipf.Sample(rng));
      Value other = rng.UniformInt(0, 200);
      hl.Apply(key, other, 1);
      ++oracle[Tuple{key, other}];
      live.push_back(Tuple{key, other});
      if (hl.ShouldPromote(key)) hl.Migrate(key);
    }
    if (step % 97 != 0) continue;
    ASSERT_TRUE(hl.InvariantsHold()) << "step " << step;
    // Contents: union of parts == oracle, parts disjoint by key.
    ASSERT_EQ(hl.size(), oracle.size());
    for (const auto& [t, m] : oracle) {
      ASSERT_EQ(hl.Payload(t[0], t[1]), m);
      // The tuple lives in exactly the part PartOf says.
      auto part = hl.PartOf(t[0]);
      auto other_part = part == HeavyLightRelation::kLight
                            ? HeavyLightRelation::kHeavy
                            : HeavyLightRelation::kLight;
      ASSERT_EQ(hl.part(part).Payload(t), m);
      ASSERT_EQ(hl.part(other_part).Payload(t), 0);
    }
    // Degrees match distinct-tuple counts per key.
    std::map<Value, int64_t> degrees;
    for (const auto& [t, m] : oracle) ++degrees[t[0]];
    for (const auto& [k, d] : degrees) ASSERT_EQ(hl.Degree(k), d);
  }
  // Drain everything; the structure must end empty and demotions clean.
  for (const Tuple& t : live) {
    hl.Apply(t[0], t[1], -1);
    if (hl.ShouldDemote(t[0])) hl.Migrate(t[0]);
  }
  EXPECT_EQ(hl.size(), 0u);
  EXPECT_TRUE(hl.InvariantsHold());
  EXPECT_EQ(hl.heavy_keys().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, HeavyLightPropertyTest,
    ::testing::Values(HlParams{1, 1, 0.0, 3000},   // minimal threshold
                      HlParams{2, 4, 1.2, 3000},   // skewed, small theta
                      HlParams{3, 16, 1.2, 3000},  // larger theta
                      HlParams{4, 4, 0.0, 3000},   // uniform
                      HlParams{5, 64, 2.0, 3000}   // extreme skew
                      ));

TEST(HeavyLightEdgeTest, ZeroDeltaIsNoop) {
  HeavyLightRelation hl(4);
  hl.Apply(1, 2, 0);
  EXPECT_EQ(hl.size(), 0u);
  EXPECT_EQ(hl.Degree(1), 0);
}

TEST(HeavyLightEdgeTest, MultiplicityChangesDoNotChangeDegree) {
  HeavyLightRelation hl(2);
  for (int i = 0; i < 10; ++i) hl.Apply(5, 7, 1);
  EXPECT_EQ(hl.Degree(5), 1);  // one distinct tuple
  EXPECT_FALSE(hl.ShouldPromote(5));
  EXPECT_EQ(hl.Payload(5, 7), 10);
}

}  // namespace
}  // namespace incr
