// Bounded-degree and small-domain constraints (paper §4.4's [5] and the
// bounded-degree generalization of FDs): classifiers plus the shattered
// engine against the oracle.
#include <map>

#include <gtest/gtest.h>

#include "incr/engines/join.h"
#include "incr/engines/shattered_engine.h"
#include "incr/query/degree_constraints.h"
#include "incr/query/properties.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { W = 0, X = 1, Y = 2, Z = 3 };

TEST(DegreeConstraintTest, GeneralizesFds) {
  // Ex. 4.12's query under bounded-degree (k=3) versions of the FDs: same
  // classification as with the k=1 FDs.
  Query q("Q", Schema{Z, Y, X, W},
          {Atom{"R", Schema{X, W}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y, Z}}});
  DegreeConstraintSet dcs{{Schema{X}, Schema{Y}, 3},
                          {Schema{Y}, Schema{Z}, 3}};
  EXPECT_FALSE(IsHierarchical(q));
  EXPECT_TRUE(IsQHierarchicalUnderDegreeConstraints(q, dcs));
  EXPECT_EQ(AsFds(dcs).size(), 2u);
  // An unrelated constraint does not help.
  DegreeConstraintSet useless{{Schema{W}, Schema{X}, 2}};
  EXPECT_FALSE(IsQHierarchicalUnderDegreeConstraints(q, useless));
}

TEST(SmallDomainTest, ShatteringClassification) {
  // Ex. 4.3's non-hierarchical Q = R(X)*S(X,Y)*T(Y): with small-domain Y
  // the residual R(X)*S(X) is q-hierarchical.
  Query q("Q", Schema{},
          {Atom{"R", Schema{X}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y}}});
  EXPECT_FALSE(IsHierarchical(q));
  EXPECT_TRUE(IsQHierarchicalUnderSmallDomains(q, Schema{Y}));
  // Small X also works (residual S(Y)*T(Y)); small nothing does not.
  EXPECT_TRUE(IsQHierarchicalUnderSmallDomains(q, Schema{X}));
  Query residual = ShatterSmallDomains(q, Schema{Y});
  EXPECT_EQ(residual.atoms().size(), 2u);  // T dropped
  EXPECT_TRUE(IsQHierarchical(residual));
}

TEST(SmallDomainTest, ShatteringKeepsFreeVars) {
  Query q("Q", Schema{X, Y},
          {Atom{"R", Schema{X}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y}}});
  Query residual = ShatterSmallDomains(q, Schema{Y});
  EXPECT_EQ(residual.free(), (Schema{X}));
}

TEST(ShatteredEngineTest, RejectsUnhelpfulShattering) {
  Query tri("tri", Schema{},
            {Atom{"R", Schema{X, Y}}, Atom{"S", Schema{Y, Z}},
             Atom{"T", Schema{Z, X}}});
  // One small variable still leaves a non-q-hierarchical residual.
  EXPECT_FALSE(ShatteredEngine<IntRing>::Make(tri, Schema{X}).ok());
  // Two small variables shatter the triangle into R(Y)*S(Y) + scalars.
  EXPECT_TRUE(ShatteredEngine<IntRing>::Make(tri, Schema{X, Z}).ok());
}

TEST(ShatteredEngineTest, MatchesOracleUnderChurn) {
  // Q() = R(X) * S(X,Y) * T(Y) with small Y over a tiny domain.
  Query q("Q", Schema{},
          {Atom{"R", Schema{X}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y}}});
  auto e = ShatteredEngine<IntRing>::Make(q, Schema{Y});
  ASSERT_TRUE(e.ok()) << e.status().ToString();

  Relation<IntRing> r(Schema{X}), s(Schema{X, Y}), t(Schema{Y});
  Rng rng(11);
  std::vector<std::pair<size_t, Tuple>> live;
  const Value kSmallDomain = 4;
  for (int step = 0; step < 2500; ++step) {
    size_t atom;
    Tuple tp;
    int64_t m;
    if (!live.empty() && rng.Chance(0.35)) {
      size_t i = rng.Uniform(live.size());
      atom = live[i].first;
      tp = live[i].second;
      m = -1;
      live[i] = live.back();
      live.pop_back();
    } else {
      atom = rng.Uniform(3);
      switch (atom) {
        case 0: tp = Tuple{rng.UniformInt(0, 30)}; break;
        case 1:
          tp = Tuple{rng.UniformInt(0, 30),
                     rng.UniformInt(0, kSmallDomain - 1)};
          break;
        case 2: tp = Tuple{rng.UniformInt(0, kSmallDomain - 1)}; break;
      }
      m = 1;
      live.emplace_back(atom, tp);
    }
    e->Update(atom, tp, m);
    (atom == 0 ? r : atom == 1 ? s : t).Apply(tp, m);
    if (step % 313 != 0) continue;
    auto oracle = EvaluateQuery<IntRing>(q, {&r, &s, &t});
    ASSERT_EQ(e->Aggregate(), oracle.Payload(Tuple{})) << "step " << step;
  }
  EXPECT_LE(e->NumShards(), static_cast<size_t>(kSmallDomain));
}

TEST(ShatteredEngineTest, EnumerationWithFreeResidualVars) {
  // Q(X, Y) with small Y: outputs (assignment, residual tuple, payload).
  Query q("Q", Schema{X, Y},
          {Atom{"R", Schema{X}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y}}});
  auto e = ShatteredEngine<IntRing>::Make(q, Schema{Y});
  ASSERT_TRUE(e.ok());
  e->Update(0, Tuple{1}, 1);
  e->Update(0, Tuple{2}, 1);
  e->Update(1, Tuple{1, 7}, 1);
  e->Update(1, Tuple{2, 8}, 2);
  e->Update(2, Tuple{7}, 1);

  std::map<std::pair<Tuple, Tuple>, int64_t> got;
  size_t n = e->Enumerate(
      [&](const Tuple& small, const Tuple& rest, const int64_t& p) {
        got[{small, rest}] = p;
      });
  // Only shard y=7 has T support: (y=7, x=1) -> 1.
  ASSERT_EQ(n, 1u);
  EXPECT_EQ((got[{Tuple{7}, Tuple{1}}]), 1);
  // Adding T(8) lights up the second shard with payload 2*1*... R(2)*S(2,8)*T(8) = 1*2*1.
  e->Update(2, Tuple{8}, 1);
  got.clear();
  n = e->Enumerate(
      [&](const Tuple& small, const Tuple& rest, const int64_t& p) {
        got[{small, rest}] = p;
      });
  ASSERT_EQ(n, 2u);
  EXPECT_EQ((got[{Tuple{8}, Tuple{2}}]), 2);
}

TEST(ShatteredEngineTest, LateShardCreationReplaysBase) {
  // Tuples inserted before a shard exists must appear once the shard is
  // activated by a later small-value arrival.
  Query q("Q", Schema{},
          {Atom{"R", Schema{X}}, Atom{"S", Schema{X, Y}},
           Atom{"T", Schema{Y}}});
  auto e = ShatteredEngine<IntRing>::Make(q, Schema{Y});
  ASSERT_TRUE(e.ok());
  for (Value x = 0; x < 10; ++x) e->Update(0, Tuple{x}, 1);
  EXPECT_EQ(e->NumShards(), 0u);  // no Y value seen yet
  e->Update(1, Tuple{3, 42}, 1);  // activates shard y=42, replaying R
  EXPECT_EQ(e->NumShards(), 1u);
  e->Update(2, Tuple{42}, 5);
  EXPECT_EQ(e->Aggregate(), 5);  // R(3)*S(3,42)*T(42) = 1*1*5
}

}  // namespace
}  // namespace incr
