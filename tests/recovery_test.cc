// DurableEngine end-to-end recovery tests: WAL-only recovery, checkpoint +
// tail replay, the crash-between-snapshot-and-truncate window, dictionary
// restore, and fault injection (kill/corrupt the log at arbitrary byte
// offsets, recover, demand *bit-identical* state versus a shadow engine fed
// the surviving prefix — compared via the serialized DumpState blobs, which
// capture every W/M payload byte-for-byte).
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "incr/engines/durable_engine.h"
#include "incr/engines/engine.h"
#include "incr/ring/covar_ring.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/product_ring.h"
#include "incr/ring/provenance.h"
#include "incr/store/recover.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

// One WAL record's worth of input: a single update or one batch.
template <RingType R>
struct Record {
  bool is_batch = false;
  std::vector<Delta<R>> deltas;
};

template <RingType R>
std::unique_ptr<IvmEngine<R>> MakeInner() {
  Query q("Q", Schema{A, B, C},
          {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  auto tree = ViewTree<R>::Make(q);
  INCR_CHECK(tree.ok());
  return std::make_unique<ViewTreeEngine<R>>(*std::move(tree));
}

EngineOptions DurOpts(const std::string& dir) {
  EngineOptions opts;
  opts.durability_dir = dir;
  opts.fsync = false;  // page-cache durability is enough for kill tests
  return opts;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "recov_" + name;
  // Create up front: fault-injection trials write WAL bytes directly into
  // the directory before any engine ever opens it.
  INCR_CHECK(store::EnsureDir(dir).ok());
  std::remove(store::WalPath(dir).c_str());
  std::remove(store::SnapshotPath(dir).c_str());
  return dir;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Size of a WAL file containing only a header for ring `R` — the smallest
// prefix fault injection may leave behind (shorter would fail Open).
template <RingType R>
size_t WalHeaderSize() {
  std::string header;
  store::EncodeWalHeader(&header, store::RingSerdeName<R>(), 0);
  return header.size();
}

template <RingType R>
void ApplyRecord(IvmEngine<R>& e, const Record<R>& rec) {
  if (rec.is_batch) {
    e.ApplyBatch(std::span<const Delta<R>>(rec.deltas));
  } else {
    e.Update(rec.deltas[0].relation, rec.deltas[0].tuple, rec.deltas[0].delta);
  }
}

template <RingType R>
std::string DumpBytes(IvmEngine<R>& e) {
  store::ByteWriter w;
  Status st = e.DumpState(w);
  EXPECT_TRUE(st.ok()) << st.message();
  return w.Take();
}

template <RingType R>
std::map<Tuple, typename R::Value> Collect(IvmEngine<R>& e) {
  std::map<Tuple, typename R::Value> out;
  e.Enumerate([&](const Tuple& t, const typename R::Value& p) { out[t] = p; });
  return out;
}

// Per-ring delta generators. Payload values are chosen so that float rings
// exercise non-trivially-representable sums (the bit-identical part).
template <RingType R>
struct Gen;

template <>
struct Gen<IntRing> {
  static int64_t Payload(Rng& rng) {
    int64_t d = rng.UniformInt(-3, 3);
    return d == 0 ? 1 : d;
  }
};

template <>
struct Gen<ProductRing<IntRing, RealRing>> {
  static std::pair<int64_t, double> Payload(Rng& rng) {
    return {Gen<IntRing>::Payload(rng), rng.NextDouble() - 0.3};
  }
};

template <>
struct Gen<CovarRing<2>> {
  static CovarValue<2> Payload(Rng& rng) {
    CovarValue<2> v =
        CovarRing<2>::Lift(rng.Uniform(2), rng.NextDouble() * 10 - 3);
    return rng.Chance(0.3) ? CovarRing<2>::Neg(v) : v;
  }
};

template <>
struct Gen<ProvenanceRing> {
  // No negation: provenance streams are insert-only.
  static Polynomial Payload(Rng& rng) {
    return Polynomial::Var(static_cast<uint32_t>(rng.Uniform(6)));
  }
};

template <RingType R>
std::vector<Record<R>> MakeRecords(Rng& rng, int n) {
  std::vector<Record<R>> records;
  records.reserve(n);
  auto delta = [&] {
    Delta<R> d;
    d.relation.assign(rng.Chance(0.5) ? "R" : "S", 1);
    d.tuple = Tuple{rng.UniformInt(0, 8), rng.UniformInt(0, 8)};
    d.delta = Gen<R>::Payload(rng);
    return d;
  };
  for (int i = 0; i < n; ++i) {
    Record<R> rec;
    rec.is_batch = rng.Chance(0.3);
    size_t count = rec.is_batch ? 1 + rng.Uniform(5) : 1;
    for (size_t j = 0; j < count; ++j) rec.deltas.push_back(delta());
    records.push_back(std::move(rec));
  }
  return records;
}

// Shadow state: a fresh (non-durable) engine fed records [0, k).
template <RingType R>
std::unique_ptr<IvmEngine<R>> Shadow(const std::vector<Record<R>>& records,
                                     size_t k) {
  auto e = MakeInner<R>();
  for (size_t i = 0; i < k; ++i) ApplyRecord(*e, records[i]);
  return e;
}

TEST(RecoveryTest, WalOnlyRoundTrip) {
  const std::string dir = FreshDir("roundtrip");
  Rng rng(11);
  auto records = MakeRecords<IntRing>(rng, 200);
  std::string live_dump;
  {
    auto durable =
        DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
    ASSERT_TRUE(durable.ok()) << durable.status().message();
    for (const auto& rec : records) ApplyRecord<IntRing>(**durable, rec);
    live_dump = DumpBytes<IntRing>(**durable);
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  auto recovered =
      DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  const auto& info = (*recovered)->recovery_info();
  EXPECT_FALSE(info.snapshot_loaded);
  EXPECT_EQ(info.replayed_records, records.size());
  EXPECT_FALSE(info.wal_torn_tail);
  EXPECT_FALSE(info.wal_corrupt);
  EXPECT_EQ(DumpBytes<IntRing>(**recovered), live_dump);
  auto shadow = Shadow<IntRing>(records, records.size());
  EXPECT_EQ(Collect<IntRing>(**recovered), Collect<IntRing>(*shadow));
}

TEST(RecoveryTest, CheckpointTruncatesLogAndRecoversTail) {
  const std::string dir = FreshDir("checkpoint");
  Rng rng(13);
  auto records = MakeRecords<IntRing>(rng, 150);
  const size_t ckpt_at = 100;
  uint64_t ckpt_lsn = 0;
  {
    auto durable =
        DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
    ASSERT_TRUE(durable.ok());
    for (size_t i = 0; i < records.size(); ++i) {
      ApplyRecord<IntRing>(**durable, records[i]);
      if (i + 1 == ckpt_at) {
        ASSERT_TRUE((*durable)->Checkpoint().ok());
        ckpt_lsn = (*durable)->last_lsn();
        EXPECT_EQ(ckpt_lsn, ckpt_at);
      }
    }
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  // The truncated log holds only the tail records, LSNs continuing.
  auto scan = store::ScanWal(store::WalPath(dir));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->base_lsn, ckpt_lsn);
  EXPECT_EQ(scan->records.size(), records.size() - ckpt_at);

  auto recovered =
      DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  const auto& info = (*recovered)->recovery_info();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.snapshot_lsn, ckpt_lsn);
  EXPECT_EQ(info.replayed_records, records.size() - ckpt_at);
  auto shadow = Shadow<IntRing>(records, records.size());
  EXPECT_EQ(DumpBytes<IntRing>(**recovered), DumpBytes<IntRing>(*shadow));
}

TEST(RecoveryTest, CrashBetweenSnapshotAndLogTruncation) {
  const std::string dir = FreshDir("snapwindow");
  Rng rng(17);
  auto records = MakeRecords<IntRing>(rng, 80);
  {
    auto durable =
        DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
    ASSERT_TRUE(durable.ok());
    for (const auto& rec : records) ApplyRecord<IntRing>(**durable, rec);
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  // Simulate the crash window: a snapshot covering LSN 50 exists, but the
  // log was never truncated and still holds LSNs 1..80. Replay must skip
  // records the snapshot already covers.
  const size_t covered = 50;
  auto prefix = Shadow<IntRing>(records, covered);
  store::SnapshotData snap;
  snap.ring_name = store::RingSerdeName<IntRing>();
  snap.lsn = covered;
  snap.state = DumpBytes<IntRing>(*prefix);
  ASSERT_TRUE(store::WriteSnapshotFile(store::SnapshotPath(dir), snap).ok());

  auto recovered =
      DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  const auto& info = (*recovered)->recovery_info();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.snapshot_lsn, covered);
  EXPECT_EQ(info.replayed_records, records.size() - covered);
  auto shadow = Shadow<IntRing>(records, records.size());
  EXPECT_EQ(DumpBytes<IntRing>(**recovered), DumpBytes<IntRing>(*shadow));
}

TEST(RecoveryTest, DictionaryRestoredFromSnapshot) {
  const std::string dir = FreshDir("dict");
  Dictionary dict;
  Value apple = dict.Intern("apple");
  Value pear = dict.Intern("pear");
  {
    auto durable = DurableEngine<IntRing>::Open(MakeInner<IntRing>(),
                                                DurOpts(dir), &dict);
    ASSERT_TRUE(durable.ok());
    (*durable)->Update("R", Tuple{apple, pear}, 1);
    (*durable)->Update("S", Tuple{apple, apple}, 2);
    ASSERT_TRUE((*durable)->Checkpoint().ok());
  }
  Dictionary dict2;
  auto recovered = DurableEngine<IntRing>::Open(MakeInner<IntRing>(),
                                                DurOpts(dir), &dict2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  ASSERT_EQ(dict2.size(), 2u);
  EXPECT_EQ(*dict2.Lookup(apple), "apple");
  EXPECT_EQ(*dict2.Lookup(pear), "pear");
  EXPECT_EQ(Collect<IntRing>(**recovered).size(), 1u);
}

// Strings interned after the last checkpoint live only in the WAL (kDict
// records); losing them would make replayed tuples decode to raw codes.
TEST(RecoveryTest, DictionaryGrowthAfterCheckpointSurvivesRecovery) {
  const std::string dir = FreshDir("dictgrow");
  Dictionary dict;
  Value apple = dict.Intern("apple");
  Value pear;
  Value plum;
  {
    auto durable = DurableEngine<IntRing>::Open(MakeInner<IntRing>(),
                                                DurOpts(dir), &dict);
    ASSERT_TRUE(durable.ok());
    (*durable)->Update("R", Tuple{apple, apple}, 1);
    ASSERT_TRUE((*durable)->Checkpoint().ok());
    // Growth past the snapshot: these exist only as a WAL kDict record.
    pear = dict.Intern("pear");
    plum = dict.Intern("plum");
    (*durable)->Update("R", Tuple{pear, plum}, 1);
    (*durable)->Update("S", Tuple{pear, apple}, 1);
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  Dictionary dict2;
  auto recovered = DurableEngine<IntRing>::Open(MakeInner<IntRing>(),
                                                DurOpts(dir), &dict2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  const auto& info = (*recovered)->recovery_info();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.replayed_records, 2u);  // kDict records are not counted
  EXPECT_EQ(info.dict_entries_restored, 2u);
  ASSERT_EQ(dict2.size(), 3u);
  EXPECT_EQ(*dict2.Lookup(pear), "pear");
  EXPECT_EQ(*dict2.Lookup(plum), "plum");
  EXPECT_EQ(Collect<IntRing>(**recovered).size(), 1u);  // pear joins R and S
}

// A crash can land between the kDict record and the delta that references
// it (the strings flush first). Kill at every byte of the tail and check
// recovery never errors and never loses a string a surviving delta needs.
TEST(RecoveryTest, KillInsideDictRecordNeverStrandsADelta) {
  const std::string dir = FreshDir("dictkill");
  Dictionary dict;
  {
    auto durable = DurableEngine<IntRing>::Open(MakeInner<IntRing>(),
                                                DurOpts(dir), &dict);
    ASSERT_TRUE(durable.ok());
    for (int i = 0; i < 6; ++i) {
      Value a = dict.Intern("user" + std::to_string(i));
      Value b = dict.Intern("item" + std::to_string(i));
      (*durable)->Update(i % 2 == 0 ? "R" : "S", Tuple{a, b}, 1);
    }
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  const std::string wal_path = store::WalPath(dir);
  const std::string good = FileBytes(wal_path);
  for (size_t cut = WalHeaderSize<IntRing>(); cut <= good.size(); ++cut) {
    WriteBytes(wal_path, good.substr(0, cut));
    std::remove(store::SnapshotPath(dir).c_str());
    Dictionary dict2;
    auto recovered = DurableEngine<IntRing>::Open(MakeInner<IntRing>(),
                                                  DurOpts(dir), &dict2);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    const auto& info = (*recovered)->recovery_info();
    // Every surviving delta's strings precede it in the log, so the
    // restored dictionary covers at least one pair per replayed record.
    EXPECT_GE(info.dict_entries_restored,
              info.replayed_records >= 1 ? 2 * info.replayed_records : 0)
        << "cut=" << cut;
  }
}

TEST(RecoveryTest, RecoverOnOpenFalseIgnoresExistingState) {
  const std::string dir = FreshDir("norecover");
  {
    auto durable =
        DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
    ASSERT_TRUE(durable.ok());
    (*durable)->Update("R", Tuple{1, 2}, 1);
    (*durable)->Update("S", Tuple{1, 3}, 1);
  }
  EngineOptions opts = DurOpts(dir);
  opts.recover_on_open = false;
  auto fresh = DurableEngine<IntRing>::Open(MakeInner<IntRing>(), opts);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->recovery_info().replayed_records, 0u);
  EXPECT_TRUE(Collect<IntRing>(**fresh).empty());
}

TEST(RecoveryTest, RingMismatchOnRecoveryFails) {
  const std::string dir = FreshDir("ringmismatch");
  {
    auto durable =
        DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
    ASSERT_TRUE(durable.ok());
    (*durable)->Update("R", Tuple{1, 2}, 1);
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  auto wrong =
      DurableEngine<RealRing>::Open(MakeInner<RealRing>(), DurOpts(dir));
  EXPECT_FALSE(wrong.ok());
}

// Kill the process at an arbitrary byte of the log: recovery must come back
// with exactly the state reachable from the surviving record prefix.
TEST(RecoveryTest, FaultInjectionKillAtRandomByteOffsets) {
  const std::string build_dir = FreshDir("killbuild");
  Rng rng(23);
  auto records = MakeRecords<IntRing>(rng, 60);
  {
    auto durable = DurableEngine<IntRing>::Open(MakeInner<IntRing>(),
                                                DurOpts(build_dir));
    ASSERT_TRUE(durable.ok());
    for (const auto& rec : records) ApplyRecord<IntRing>(**durable, rec);
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  const std::string full = FileBytes(store::WalPath(build_dir));
  const size_t header = WalHeaderSize<IntRing>();
  ASSERT_GT(full.size(), header);

  const std::string dir = FreshDir("kill");
  for (int trial = 0; trial < 40; ++trial) {
    // Include both endpoints: header-only (k=0) and the whole file.
    size_t cut = header + rng.Uniform(full.size() - header + 1);
    WriteBytes(store::WalPath(dir), full.substr(0, cut));
    std::remove(store::SnapshotPath(dir).c_str());

    auto recovered =
        DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.status().message();
    const auto& info = (*recovered)->recovery_info();
    EXPECT_FALSE(info.wal_corrupt) << "cut=" << cut;
    size_t k = info.replayed_records;
    ASSERT_LE(k, records.size());
    EXPECT_EQ(info.last_lsn, k) << "cut=" << cut;
    auto shadow = Shadow<IntRing>(records, k);
    EXPECT_EQ(DumpBytes<IntRing>(**recovered), DumpBytes<IntRing>(*shadow))
        << "cut=" << cut << " k=" << k;
  }
}

// Flip a byte anywhere in the record region: the scan must stop at the
// damaged record and recovery must restore the prefix before it.
TEST(RecoveryTest, FaultInjectionCorruptByte) {
  const std::string build_dir = FreshDir("corruptbuild");
  Rng rng(29);
  auto records = MakeRecords<IntRing>(rng, 60);
  {
    auto durable = DurableEngine<IntRing>::Open(MakeInner<IntRing>(),
                                                DurOpts(build_dir));
    ASSERT_TRUE(durable.ok());
    for (const auto& rec : records) ApplyRecord<IntRing>(**durable, rec);
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  const std::string full = FileBytes(store::WalPath(build_dir));
  const size_t header = WalHeaderSize<IntRing>();

  const std::string dir = FreshDir("corrupt");
  for (int trial = 0; trial < 40; ++trial) {
    size_t off = header + rng.Uniform(full.size() - header);
    std::string damaged = full;
    damaged[off] ^= 0xA5;
    WriteBytes(store::WalPath(dir), damaged);
    std::remove(store::SnapshotPath(dir).c_str());

    auto recovered =
        DurableEngine<IntRing>::Open(MakeInner<IntRing>(), DurOpts(dir));
    ASSERT_TRUE(recovered.ok())
        << "off=" << off << ": " << recovered.status().message();
    const auto& info = (*recovered)->recovery_info();
    EXPECT_TRUE(info.wal_corrupt || info.wal_torn_tail) << "off=" << off;
    size_t k = info.replayed_records;
    ASSERT_LT(k, records.size()) << "off=" << off;
    auto shadow = Shadow<IntRing>(records, k);
    EXPECT_EQ(DumpBytes<IntRing>(**recovered), DumpBytes<IntRing>(*shadow))
        << "off=" << off << " k=" << k;
  }
}

// The full stress: random update/batch streams with a checkpoint somewhere
// in the middle, killed at a random byte offset, across rings whose
// payloads are floats (bit-identity is the hard part), products, and
// provenance polynomials.
template <RingType R>
void StressKills(uint64_t seed, const std::string& tag) {
  Rng rng(seed);
  for (int round = 0; round < 6; ++round) {
    const std::string dir =
        FreshDir("stress_" + tag + "_" + std::to_string(round));
    auto records = MakeRecords<R>(rng, 80);
    size_t ckpt_at = rng.Uniform(records.size());
    {
      auto durable = DurableEngine<R>::Open(MakeInner<R>(), DurOpts(dir));
      ASSERT_TRUE(durable.ok());
      for (size_t i = 0; i < records.size(); ++i) {
        ApplyRecord<R>(**durable, records[i]);
        if (i + 1 == ckpt_at) {
          ASSERT_TRUE((*durable)->Checkpoint().ok());
        }
      }
      ASSERT_TRUE((*durable)->Sync().ok());
    }
    // Kill: truncate the (already checkpoint-truncated) log at a random
    // byte. The snapshot always survives — it was atomically renamed.
    const std::string wal_path = store::WalPath(dir);
    const std::string full = FileBytes(wal_path);
    const size_t header = WalHeaderSize<R>();
    size_t cut = header + rng.Uniform(full.size() - header + 1);
    WriteBytes(wal_path, full.substr(0, cut));

    auto recovered = DurableEngine<R>::Open(MakeInner<R>(), DurOpts(dir));
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    const auto& info = (*recovered)->recovery_info();
    EXPECT_EQ(info.snapshot_loaded, ckpt_at > 0);
    // Surviving state = snapshot coverage plus the replayed tail (the tail
    // LSNs continue right after the snapshot LSN, so this is a record count).
    size_t k =
        static_cast<size_t>(info.snapshot_lsn + info.replayed_records);
    ASSERT_GE(k, ckpt_at);
    ASSERT_LE(k, records.size());
    auto shadow = Shadow<R>(records, k);
    EXPECT_EQ(DumpBytes<R>(**recovered), DumpBytes<R>(*shadow))
        << tag << " round=" << round << " k=" << k;
    EXPECT_EQ(Collect<R>(**recovered), Collect<R>(*shadow));
  }
}

TEST(RecoveryTest, StressKillsIntRing) { StressKills<IntRing>(101, "int"); }

TEST(RecoveryTest, StressKillsProductRing) {
  StressKills<ProductRing<IntRing, RealRing>>(103, "product");
}

TEST(RecoveryTest, StressKillsCovarRing) {
  StressKills<CovarRing<2>>(107, "covar");
}

TEST(RecoveryTest, StressKillsProvenanceRing) {
  StressKills<ProvenanceRing>(109, "provenance");
}

}  // namespace
}  // namespace incr
