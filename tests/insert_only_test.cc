// Insert-only engine tests (paper §4.6): output equals recomputation,
// alive sets are monotone, amortized work is linear (DESIGN.md inv. 10).
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "incr/engines/join.h"
#include "incr/insertonly/insert_only_engine.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3, E = 4 };

Query PathJoin() {
  // The alpha-acyclic, non-q-hierarchical path join of §4.6's discussion.
  return Query("path", Schema{A, B, C, D},
               {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
                Atom{"T", Schema{C, D}}});
}

TEST(InsertOnlyTest, RejectsCyclicAndProjectedQueries) {
  Query tri("tri", Schema{A, B, C},
            {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B, C}},
             Atom{"T", Schema{C, A}}});
  EXPECT_FALSE(InsertOnlyEngine::Make(tri).ok());
  Query proj("p", Schema{A},
             {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  EXPECT_FALSE(InsertOnlyEngine::Make(proj).ok());
}

TEST(InsertOnlyTest, SmallPathJoin) {
  auto e = InsertOnlyEngine::Make(PathJoin());
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  e->Insert("R", Tuple{1, 10});
  EXPECT_EQ(e->Enumerate(nullptr), 0u);  // dangling
  e->Insert("S", Tuple{10, 20});
  EXPECT_EQ(e->Enumerate(nullptr), 0u);
  e->Insert("T", Tuple{20, 30});
  EXPECT_EQ(e->Enumerate(nullptr), 1u);
  e->Insert("T", Tuple{20, 31}, 2);  // multiplicity 2
  std::map<Tuple, int64_t> out;
  e->Enumerate([&](const Tuple& t, int64_t p) { out[t] = p; });
  ASSERT_EQ(out.size(), 2u);
  // Output schema is (A,B,C,D).
  EXPECT_EQ(out[(Tuple{1, 10, 20, 30})], 1);
  EXPECT_EQ(out[(Tuple{1, 10, 20, 31})], 2);
}

TEST(InsertOnlyTest, LateArrivalActivatesChains) {
  // Build two long dangling chains; the last insert activates everything.
  auto e = InsertOnlyEngine::Make(PathJoin());
  ASSERT_TRUE(e.ok());
  for (Value i = 0; i < 50; ++i) {
    e->Insert("R", Tuple{i, 100});
    e->Insert("T", Tuple{200, 300 + i});
  }
  EXPECT_EQ(e->Enumerate(nullptr), 0u);
  e->Insert("S", Tuple{100, 200});  // the missing middle
  EXPECT_EQ(e->Enumerate(nullptr), 50u * 50u);
}

class InsertOnlyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InsertOnlyPropertyTest, MatchesOracleOnRandomStreams) {
  struct Case {
    const char* label;
    Query q;
  };
  std::vector<Case> cases;
  cases.push_back({"path", PathJoin()});
  cases.push_back({"star", Query("star", Schema{A, B, C, D},
                                 {Atom{"R", Schema{A, B}},
                                  Atom{"S", Schema{A, C}},
                                  Atom{"U", Schema{A, D}}})});
  cases.push_back({"snowflake",
                   Query("snow", Schema{A, B, C, D, E},
                         {Atom{"F", Schema{A, B, C}}, Atom{"D1", Schema{B, D}},
                          Atom{"D2", Schema{C, E}}})});
  for (const auto& c : cases) {
    SCOPED_TRACE(c.label);
    auto e = InsertOnlyEngine::Make(c.q);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    std::vector<Relation<IntRing>> rels;
    for (const Atom& a : c.q.atoms()) rels.emplace_back(a.schema);

    Rng rng(GetParam());
    size_t prev_alive = 0;
    for (int step = 0; step < 1500; ++step) {
      size_t atom = rng.Uniform(c.q.atoms().size());
      Tuple t;
      for (size_t k = 0; k < c.q.atoms()[atom].schema.size(); ++k) {
        t.push_back(rng.UniformInt(0, 6));
      }
      e->Insert(atom, t, 1);
      rels[atom].Apply(t, 1);
      // Monotonicity: alive sets only grow.
      size_t alive = e->NumAliveTuples();
      ASSERT_GE(alive, prev_alive);
      prev_alive = alive;
      if (step % 157 != 0) continue;
      std::vector<const Relation<IntRing>*> ptrs;
      for (const auto& r : rels) ptrs.push_back(&r);
      auto oracle = EvaluateQuery<IntRing>(c.q, ptrs);
      std::map<Tuple, int64_t> got;
      size_t n = e->Enumerate([&](const Tuple& tp, int64_t p) {
        got[tp] += p;
      });
      ASSERT_EQ(n, oracle.size()) << "step " << step;
      // Enumerator emits over AllVars order; oracle groups by free() which
      // is the same set (join query) but possibly another order.
      auto pos = ProjectionPositions(e->OutputSchema(), c.q.free());
      for (const auto& [tp, p] : got) {
        ASSERT_EQ(oracle.Payload(ProjectTuple(tp, pos)), p);
      }
    }
    // Amortized-O(1) evidence: total activation work is linear in inserts.
    EXPECT_LT(e->activation_work(), 1500 * 64);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InsertOnlyPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace incr
