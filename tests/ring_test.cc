// Ring axiom property tests over the whole ring zoo (DESIGN.md invariant 1),
// plus behavior tests for provenance polynomials and the covariance ring.
#include <map>

#include <gtest/gtest.h>

#include "incr/ring/bool_semiring.h"
#include "incr/ring/covar_ring.h"
#include "incr/ring/int_ring.h"
#include "incr/ring/minplus_semiring.h"
#include "incr/ring/product_ring.h"
#include "incr/ring/provenance.h"
#include "incr/ring/ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

static_assert(RingType<IntRing>);
static_assert(RingType<RealRing>);
static_assert(RingType<BoolSemiring>);
static_assert(RingType<MinPlusSemiring>);
static_assert(RingType<ProvenanceRing>);
static_assert(RingType<CovarRing<2>>);
static_assert(RingType<ProductRing<IntRing, RealRing>>);
static_assert(RingWithNegation<IntRing>);
static_assert(RingWithNegation<ProvenanceRing>);
static_assert(!RingWithNegation<BoolSemiring>);
static_assert(!RingWithNegation<MinPlusSemiring>);

// Generic axiom checker: takes a generator of random ring values.
template <typename R, typename Gen>
void CheckSemiringAxioms(Gen gen, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto a = gen(), b = gen(), c = gen();
    // Additive commutative monoid.
    EXPECT_TRUE(R::Add(a, b) == R::Add(b, a));
    EXPECT_TRUE(R::Add(R::Add(a, b), c) == R::Add(a, R::Add(b, c)));
    EXPECT_TRUE(R::Add(a, R::Zero()) == a);
    // Multiplicative monoid.
    EXPECT_TRUE(R::Mul(R::Mul(a, b), c) == R::Mul(a, R::Mul(b, c)));
    EXPECT_TRUE(R::Mul(a, R::One()) == a);
    EXPECT_TRUE(R::Mul(R::One(), a) == a);
    // Distributivity (both sides; Mul need not be commutative in general).
    EXPECT_TRUE(R::Mul(a, R::Add(b, c)) == R::Add(R::Mul(a, b), R::Mul(a, c)));
    EXPECT_TRUE(R::Mul(R::Add(a, b), c) == R::Add(R::Mul(a, c), R::Mul(b, c)));
    // Zero annihilates.
    EXPECT_TRUE(R::IsZero(R::Mul(a, R::Zero())));
    EXPECT_TRUE(R::IsZero(R::Mul(R::Zero(), a)));
    // IsZero is consistent with Zero().
    EXPECT_TRUE(R::IsZero(R::Zero()));
  }
}

template <typename R, typename Gen>
void CheckNegation(Gen gen, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto a = gen();
    EXPECT_TRUE(R::IsZero(R::Add(a, R::Neg(a))));
  }
}

TEST(RingAxiomsTest, IntRing) {
  Rng rng(1);
  auto gen = [&] { return rng.UniformInt(-50, 50); };
  CheckSemiringAxioms<IntRing>(gen, 200);
  CheckNegation<IntRing>(gen, 200);
}

TEST(RingAxiomsTest, BoolSemiring) {
  Rng rng(2);
  auto gen = [&] { return rng.Chance(0.5); };
  CheckSemiringAxioms<BoolSemiring>(gen, 100);
}

TEST(RingAxiomsTest, MinPlusSemiring) {
  Rng rng(3);
  auto gen = [&]() -> int64_t {
    if (rng.Chance(0.1)) return MinPlusSemiring::Zero();
    return rng.UniformInt(-1000, 1000);
  };
  CheckSemiringAxioms<MinPlusSemiring>(gen, 200);
}

TEST(RingAxiomsTest, ProvenanceRing) {
  Rng rng(4);
  auto gen = [&] {
    Polynomial p = Polynomial::Constant(rng.UniformInt(-3, 3));
    for (int t = 0; t < 2; ++t) {
      Polynomial term = Polynomial::Constant(rng.UniformInt(-2, 2));
      term = term * Polynomial::Var(static_cast<uint32_t>(rng.Uniform(4)));
      p = p + term;
    }
    return p;
  };
  CheckSemiringAxioms<ProvenanceRing>(gen, 50);
  CheckNegation<ProvenanceRing>(gen, 50);
}

TEST(RingAxiomsTest, CovarRing) {
  Rng rng(5);
  auto gen = [&] {
    CovarValue<2> v;
    v.count = rng.UniformInt(-3, 3);
    for (auto& s : v.sum) s = static_cast<double>(rng.UniformInt(-4, 4));
    // Symmetric product matrix, as produced by lifting/multiplication.
    double q00 = static_cast<double>(rng.UniformInt(-4, 4));
    double q01 = static_cast<double>(rng.UniformInt(-4, 4));
    double q11 = static_cast<double>(rng.UniformInt(-4, 4));
    v.prod = {q00, q01, q01, q11};
    return v;
  };
  CheckSemiringAxioms<CovarRing<2>>(gen, 100);
  CheckNegation<CovarRing<2>>(gen, 100);
}

TEST(RingAxiomsTest, ProductRing) {
  using PR = ProductRing<IntRing, BoolSemiring>;
  static_assert(!PR::kHasNegation);
  using PR2 = ProductRing<IntRing, RealRing>;
  static_assert(PR2::kHasNegation);
  Rng rng(6);
  auto gen = [&]() -> PR2::Value {
    return {rng.UniformInt(-20, 20),
            static_cast<double>(rng.UniformInt(-20, 20))};
  };
  CheckSemiringAxioms<PR2>(gen, 100);
  CheckNegation<PR2>(gen, 100);
}

TEST(ProvenanceTest, PolynomialAlgebra) {
  // (x0 + x1) * (x0 + 2) = x0^2 + x0*x1 + 2*x0 + 2*x1
  Polynomial p = Polynomial::Var(0) + Polynomial::Var(1);
  Polynomial q = Polynomial::Var(0) + Polynomial::Constant(2);
  Polynomial prod = p * q;
  EXPECT_EQ(prod.NumTerms(), 4u);
  std::map<uint32_t, int64_t> assign{{0, 3}, {1, 5}};
  // (3+5)*(3+2) = 40
  EXPECT_EQ(prod.Eval(assign), 40);
}

TEST(ProvenanceTest, CancellationRemovesTerms) {
  Polynomial p = Polynomial::Var(0);
  Polynomial sum = p + (-p);
  EXPECT_TRUE(sum.IsZero());
  EXPECT_EQ(sum.NumTerms(), 0u);
}

TEST(ProvenanceTest, ToStringIsReadable) {
  Polynomial p = Polynomial::Constant(2) * Polynomial::Var(1) +
                 Polynomial::Var(3) * Polynomial::Var(3);
  std::string s = p.ToString();
  EXPECT_NE(s.find("2*x1"), std::string::npos);
  EXPECT_NE(s.find("x3^2"), std::string::npos);
}

TEST(CovarRingTest, LiftAndMultiplyComputesStatistics) {
  // Two "relations" each contributing one feature; the product payload must
  // hold count, sums, and cross products of the joined tuple.
  using R = CovarRing<2>;
  auto a = R::Lift(0, 3.0);  // feature 0 value 3
  auto b = R::Lift(1, 4.0);  // feature 1 value 4
  auto ab = R::Mul(a, b);
  EXPECT_EQ(ab.count, 1);
  EXPECT_DOUBLE_EQ(ab.sum[0], 3.0);
  EXPECT_DOUBLE_EQ(ab.sum[1], 4.0);
  EXPECT_DOUBLE_EQ(ab.prod[0 * 2 + 0], 9.0);
  EXPECT_DOUBLE_EQ(ab.prod[0 * 2 + 1], 12.0);
  EXPECT_DOUBLE_EQ(ab.prod[1 * 2 + 0], 12.0);
  EXPECT_DOUBLE_EQ(ab.prod[1 * 2 + 1], 16.0);

  // Summing two joined tuples accumulates.
  auto ab2 = R::Add(ab, R::Mul(R::Lift(0, 1.0), R::Lift(1, 2.0)));
  EXPECT_EQ(ab2.count, 2);
  EXPECT_DOUBLE_EQ(ab2.sum[0], 4.0);
  EXPECT_DOUBLE_EQ(ab2.prod[0 * 2 + 1], 14.0);
}

}  // namespace
}  // namespace incr
