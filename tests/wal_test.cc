// WAL framing tests: append/scan round trips, torn tails, corruption,
// group commit, LSN continuity across reopen and Restart.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "incr/store/wal.h"
#include "incr/util/rng.h"

namespace incr::store {
namespace {

std::string TestPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "wal_test_" + name + ".log";
  std::remove(path.c_str());
  return path;
}

WalOptions NoSyncOpts() {
  WalOptions opts;
  opts.fsync = false;
  opts.group_commit_window_us = 0;  // flush every append
  return opts;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(WalTest, AppendScanRoundTrip) {
  const std::string path = TestPath("roundtrip");
  {
    auto wal = Wal::Open(path, "int", NoSyncOpts());
    ASSERT_TRUE(wal.ok()) << wal.status().message();
    EXPECT_EQ((*wal)->last_lsn(), 0u);
    for (int i = 0; i < 100; ++i) {
      std::string payload(static_cast<size_t>(i % 17), 'a' + i % 26);
      uint64_t lsn = (*wal)->Append(
          i % 3 == 0 ? WalRecordType::kBatch : WalRecordType::kUpdate,
          payload);
      EXPECT_EQ(lsn, static_cast<uint64_t>(i + 1));
    }
    EXPECT_EQ((*wal)->last_lsn(), 100u);
  }
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status().message();
  EXPECT_EQ(scan->ring_name, "int");
  EXPECT_EQ(scan->base_lsn, 0u);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_FALSE(scan->corrupt);
  ASSERT_EQ(scan->records.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(scan->records[i].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(scan->records[i].type, i % 3 == 0 ? WalRecordType::kBatch
                                                : WalRecordType::kUpdate);
    EXPECT_EQ(scan->records[i].payload,
              std::string(static_cast<size_t>(i % 17), 'a' + i % 26));
  }
}

TEST(WalTest, MissingFileIsNotFound) {
  auto scan = ScanWal(TestPath("missing"));
  EXPECT_EQ(scan.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, TornTailIsDroppedAtEveryTruncationPoint) {
  const std::string path = TestPath("torn");
  {
    auto wal = Wal::Open(path, "int", NoSyncOpts());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) (*wal)->Append(WalRecordType::kUpdate, "pppp");
  }
  const std::string full = FileBytes(path);
  // Frame = 8B framing + 9B (lsn+type) + 4B payload.
  const size_t frame = 8 + 9 + 4;
  const size_t header = full.size() - 10 * frame;
  // Every truncation point inside the file yields the longest whole-record
  // prefix plus a torn-tail diagnosis (unless the cut is on a boundary).
  for (size_t cut = header; cut < full.size(); ++cut) {
    WriteBytes(path, full.substr(0, cut));
    auto scan = ScanWal(path);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut;
    EXPECT_EQ(scan->records.size(), (cut - header) / frame) << "cut=" << cut;
    EXPECT_EQ(scan->torn_tail, (cut - header) % frame != 0) << "cut=" << cut;
    EXPECT_FALSE(scan->corrupt);
    EXPECT_EQ(scan->valid_bytes, header + scan->records.size() * frame);
    for (size_t i = 0; i < scan->records.size(); ++i) {
      EXPECT_EQ(scan->records[i].lsn, i + 1);
    }
  }
}

TEST(WalTest, CorruptByteStopsScanAtThatRecord) {
  const std::string path = TestPath("corrupt");
  {
    auto wal = Wal::Open(path, "int", NoSyncOpts());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) (*wal)->Append(WalRecordType::kUpdate, "pppp");
  }
  const std::string full = FileBytes(path);
  const size_t frame = 8 + 9 + 4;
  const size_t header = full.size() - 10 * frame;
  Rng rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    size_t off = header + rng.Uniform(full.size() - header);
    std::string damaged = full;
    damaged[off] ^= 0x5A;
    WriteBytes(path, damaged);
    auto scan = ScanWal(path);
    ASSERT_TRUE(scan.ok()) << "off=" << off;
    // The flip lands in record k's frame: records 0..k-1 survive, the scan
    // stops there. A corrupted length field may masquerade as a plausible
    // longer frame, which then reads past EOF — reported as a torn tail.
    size_t k = (off - header) / frame;
    EXPECT_EQ(scan->records.size(), k) << "off=" << off;
    EXPECT_TRUE(scan->corrupt || scan->torn_tail) << "off=" << off;
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(scan->records[i].lsn, i + 1);
  }
}

TEST(WalTest, GroupCommitBuffersUntilWindowOrSize) {
  const std::string path = TestPath("groupcommit");
  WalOptions opts;
  opts.fsync = false;
  opts.group_commit_window_us = 60 * 1000 * 1000;  // effectively never
  opts.buffer_bytes = 1 << 20;
  auto wal = Wal::Open(path, "int", opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 50; ++i) (*wal)->Append(WalRecordType::kUpdate, "x");
  // Nothing flushed yet: the file holds only the header.
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 0u);
  EXPECT_EQ((*wal)->last_lsn(), 50u);

  ASSERT_TRUE((*wal)->Flush().ok());
  scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 50u);

  // A tiny buffer forces a flush on (nearly) every append.
  opts.buffer_bytes = 1;
  auto wal2 = Wal::Open(TestPath("smallbuf"), "int", opts);
  ASSERT_TRUE(wal2.ok());
  for (int i = 0; i < 20; ++i) (*wal2)->Append(WalRecordType::kUpdate, "x");
  auto scan2 = ScanWal((*wal2)->path());
  ASSERT_TRUE(scan2.ok());
  EXPECT_GE(scan2->records.size(), 19u);
}

TEST(WalTest, ReopenContinuesLsnAfterTornTail) {
  const std::string path = TestPath("reopen");
  {
    auto wal = Wal::Open(path, "int", NoSyncOpts());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) (*wal)->Append(WalRecordType::kUpdate, "pppp");
  }
  // Simulate a crash that tore the last record.
  std::string bytes = FileBytes(path);
  WriteBytes(path, bytes.substr(0, bytes.size() - 3));
  {
    auto wal = Wal::Open(path, "int", NoSyncOpts());
    ASSERT_TRUE(wal.ok());
    // Record 5 was torn away; the next append must reuse LSN 5, keeping
    // the on-disk sequence gapless.
    EXPECT_EQ((*wal)->last_lsn(), 4u);
    EXPECT_EQ((*wal)->Append(WalRecordType::kUpdate, "qqqq"), 5u);
  }
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 5u);
  EXPECT_EQ(scan->records.back().payload, "qqqq");
  EXPECT_FALSE(scan->torn_tail);
}

TEST(WalTest, RingNameMismatchFailsOpen) {
  const std::string path = TestPath("ringname");
  { ASSERT_TRUE(Wal::Open(path, "int", NoSyncOpts()).ok()); }
  auto wal = Wal::Open(path, "real", NoSyncOpts());
  EXPECT_EQ(wal.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WalTest, RestartTruncatesAndContinuesLsns) {
  const std::string path = TestPath("restart");
  auto wal = Wal::Open(path, "int", NoSyncOpts());
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 7; ++i) (*wal)->Append(WalRecordType::kUpdate, "pppp");
  size_t size_before = (*wal)->SizeBytes();
  ASSERT_TRUE((*wal)->Restart().ok());
  EXPECT_LT((*wal)->SizeBytes(), size_before);
  EXPECT_EQ((*wal)->last_lsn(), 7u);
  EXPECT_EQ((*wal)->Append(WalRecordType::kUpdate, "tail"), 8u);
  ASSERT_TRUE((*wal)->Flush().ok());

  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->base_lsn, 7u);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].lsn, 8u);
  EXPECT_EQ(scan->records[0].payload, "tail");
}

TEST(WalTest, SyncMakesEverythingScannable) {
  const std::string path = TestPath("sync");
  WalOptions opts;
  opts.fsync = true;  // exercise the fsync path
  opts.group_commit_window_us = 60 * 1000 * 1000;
  auto wal = Wal::Open(path, "int", opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 10; ++i) (*wal)->Append(WalRecordType::kUpdate, "pppp");
  ASSERT_TRUE((*wal)->Sync().ok());
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 10u);
}

}  // namespace
}  // namespace incr::store
