// DenseMap unit + property tests: oracle comparison against
// std::unordered_map under random operation streams (DESIGN.md invariant 2).
#include <cstdint>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "incr/data/dense_map.h"
#include "incr/data/tuple.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

TEST(DenseMapTest, InsertFindErase) {
  DenseMap<int64_t, int64_t> m;
  EXPECT_TRUE(m.empty());
  m.GetOrInsert(1, 10);
  m.GetOrInsert(2, 20);
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 10);
  EXPECT_EQ(m.Find(3), nullptr);
  EXPECT_TRUE(m.Erase(1));
  EXPECT_FALSE(m.Erase(1));
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(DenseMapTest, GetOrInsertReturnsExisting) {
  DenseMap<int64_t, int64_t> m;
  m.GetOrInsert(5, 50);
  int64_t& v = m.GetOrInsert(5, 999);
  EXPECT_EQ(v, 50);
  v = 51;
  EXPECT_EQ(*m.Find(5), 51);
}

TEST(DenseMapTest, DenseIterationSeesAllEntries) {
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 100; ++i) m.GetOrInsert(i, i * 2);
  int64_t sum = 0;
  size_t count = 0;
  for (const auto& e : m) {
    sum += e.value;
    ++count;
  }
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(sum, 99 * 100);  // 2 * (0+...+99)
}

TEST(DenseMapTest, GrowsThroughRehash) {
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 10000; ++i) m.GetOrInsert(i, i);
  EXPECT_EQ(m.size(), 10000u);
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i);
  }
}

TEST(DenseMapTest, TombstonePurgeKeepsLookupsCorrect) {
  DenseMap<int64_t, int64_t> m;
  // Repeated insert/erase at steady size forces tombstone-purging rebuilds.
  for (int64_t round = 0; round < 50; ++round) {
    for (int64_t i = 0; i < 100; ++i) m.GetOrInsert(round * 1000 + i, i);
    for (int64_t i = 0; i < 100; ++i) EXPECT_TRUE(m.Erase(round * 1000 + i));
  }
  EXPECT_TRUE(m.empty());
}

TEST(DenseMapTest, SwapRemovePatchesMovedSlot) {
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 10; ++i) m.GetOrInsert(i, i);
  // Erase an element in the middle of the dense array; the last element is
  // moved into its place and must still be findable.
  EXPECT_TRUE(m.Erase(0));
  for (int64_t i = 1; i < 10; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i);
  }
}

TEST(DenseMapTest, TupleKeys) {
  DenseMap<Tuple, int64_t, TupleHash, TupleEq> m;
  m.GetOrInsert(Tuple{1, 2}, 12);
  m.GetOrInsert(Tuple{2, 1}, 21);
  EXPECT_EQ(*m.Find(Tuple{1, 2}), 12);
  EXPECT_EQ(*m.Find(Tuple{2, 1}), 21);
  EXPECT_EQ(m.Find(Tuple{1, 1}), nullptr);
}

TEST(DenseMapTest, ReserveDoesNotLoseEntries) {
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 10; ++i) m.GetOrInsert(i, i);
  m.Reserve(100000);
  for (int64_t i = 0; i < 10; ++i) ASSERT_NE(m.Find(i), nullptr);
}

// Property test: random streams of insert/update/erase against an oracle.
class DenseMapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DenseMapPropertyTest, MatchesUnorderedMapOracle) {
  Rng rng(GetParam());
  DenseMap<int64_t, int64_t> m;
  std::unordered_map<int64_t, int64_t> oracle;
  const int64_t kKeySpace = 200;  // small key space => many collisions/reuse
  for (int step = 0; step < 20000; ++step) {
    int64_t key = rng.UniformInt(0, kKeySpace - 1);
    switch (rng.Uniform(3)) {
      case 0: {  // upsert
        int64_t val = rng.UniformInt(-100, 100);
        m.GetOrInsert(key, 0) = val;
        oracle[key] = val;
        break;
      }
      case 1: {  // erase
        bool a = m.Erase(key);
        bool b = oracle.erase(key) > 0;
        ASSERT_EQ(a, b);
        break;
      }
      case 2: {  // lookup
        const int64_t* v = m.Find(key);
        auto it = oracle.find(key);
        if (it == oracle.end()) {
          ASSERT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), oracle.size());
  }
  // Final full-content check via dense iteration.
  size_t seen = 0;
  for (const auto& e : m) {
    auto it = oracle.find(e.key);
    ASSERT_NE(it, oracle.end());
    ASSERT_EQ(e.value, it->second);
    ++seen;
  }
  ASSERT_EQ(seen, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseMapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace incr
