// DenseMap unit + property tests: oracle comparison against
// std::unordered_map under random operation streams (DESIGN.md invariant 2).
#include <cstdint>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "incr/data/dense_map.h"
#include "incr/data/tuple.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

TEST(DenseMapTest, InsertFindErase) {
  DenseMap<int64_t, int64_t> m;
  EXPECT_TRUE(m.empty());
  m.GetOrInsert(1, 10);
  m.GetOrInsert(2, 20);
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 10);
  EXPECT_EQ(m.Find(3), nullptr);
  EXPECT_TRUE(m.Erase(1));
  EXPECT_FALSE(m.Erase(1));
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(DenseMapTest, GetOrInsertReturnsExisting) {
  DenseMap<int64_t, int64_t> m;
  m.GetOrInsert(5, 50);
  int64_t& v = m.GetOrInsert(5, 999);
  EXPECT_EQ(v, 50);
  v = 51;
  EXPECT_EQ(*m.Find(5), 51);
}

TEST(DenseMapTest, DenseIterationSeesAllEntries) {
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 100; ++i) m.GetOrInsert(i, i * 2);
  int64_t sum = 0;
  size_t count = 0;
  for (const auto& e : m) {
    sum += e.value;
    ++count;
  }
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(sum, 99 * 100);  // 2 * (0+...+99)
}

TEST(DenseMapTest, GrowsThroughRehash) {
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 10000; ++i) m.GetOrInsert(i, i);
  EXPECT_EQ(m.size(), 10000u);
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i);
  }
}

TEST(DenseMapTest, TombstonePurgeKeepsLookupsCorrect) {
  DenseMap<int64_t, int64_t> m;
  // Repeated insert/erase at steady size forces tombstone-purging rebuilds.
  for (int64_t round = 0; round < 50; ++round) {
    for (int64_t i = 0; i < 100; ++i) m.GetOrInsert(round * 1000 + i, i);
    for (int64_t i = 0; i < 100; ++i) EXPECT_TRUE(m.Erase(round * 1000 + i));
  }
  EXPECT_TRUE(m.empty());
}

TEST(DenseMapTest, SwapRemovePatchesMovedSlot) {
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 10; ++i) m.GetOrInsert(i, i);
  // Erase an element in the middle of the dense array; the last element is
  // moved into its place and must still be findable.
  EXPECT_TRUE(m.Erase(0));
  for (int64_t i = 1; i < 10; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i);
  }
}

TEST(DenseMapTest, TupleKeys) {
  DenseMap<Tuple, int64_t, TupleHash, TupleEq> m;
  m.GetOrInsert(Tuple{1, 2}, 12);
  m.GetOrInsert(Tuple{2, 1}, 21);
  EXPECT_EQ(*m.Find(Tuple{1, 2}), 12);
  EXPECT_EQ(*m.Find(Tuple{2, 1}), 21);
  EXPECT_EQ(m.Find(Tuple{1, 1}), nullptr);
}

TEST(DenseMapTest, ReserveDoesNotLoseEntries) {
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 10; ++i) m.GetOrInsert(i, i);
  m.Reserve(100000);
  for (int64_t i = 0; i < 10; ++i) ASSERT_NE(m.Find(i), nullptr);
}

// ---------------------------------------------------------------------------
// Adversarial probing: hash functors chosen to break the group-probing
// slot table — every key in one probe chain, false-positive control
// matches, tombstone-saturated chains.

// Every key lands in group 0 with H2 fragment 0: inserts form one long
// probe chain across consecutive groups, and every lookup walks it.
struct CollidingHash {
  size_t operator()(int64_t) const { return 0; }
};

// Two hash values that share H1 (group index) but differ in H2 only in the
// lowest bit: control-byte matches hit the wrong key's slots constantly,
// and the full key compare must reject them.
struct TwoFragmentHash {
  size_t operator()(int64_t k) const { return static_cast<size_t>(k) & 1; }
};

TEST(DenseMapAdversarialTest, CollidingHashChainStaysCorrect) {
  DenseMap<int64_t, int64_t, CollidingHash> m;
  for (int64_t i = 0; i < 500; ++i) m.GetOrInsert(i, i * 3);
  EXPECT_EQ(m.size(), 500u);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i * 3);
  }
  EXPECT_EQ(m.Find(500), nullptr);  // full-chain walk ending in "absent"
  for (int64_t i = 0; i < 500; i += 2) ASSERT_TRUE(m.Erase(i));
  for (int64_t i = 0; i < 500; ++i) {
    if (i % 2 == 0) {
      ASSERT_EQ(m.Find(i), nullptr) << i;
    } else {
      ASSERT_NE(m.Find(i), nullptr) << i;
      EXPECT_EQ(*m.Find(i), i * 3);
    }
  }
  EXPECT_EQ(m.size(), 250u);
}

TEST(DenseMapAdversarialTest, FalsePositiveControlMatchesAreRejected) {
  Rng rng(77);
  DenseMap<int64_t, int64_t, TwoFragmentHash> m;
  std::unordered_map<int64_t, int64_t> oracle;
  for (int step = 0; step < 5000; ++step) {
    int64_t key = rng.UniformInt(0, 99);
    if (rng.Chance(0.6)) {
      int64_t val = rng.UniformInt(-50, 50);
      m.GetOrInsert(key, 0) = val;
      oracle[key] = val;
    } else {
      ASSERT_EQ(m.Erase(key), oracle.erase(key) > 0);
    }
    ASSERT_EQ(m.size(), oracle.size());
  }
  for (const auto& [key, val] : oracle) {
    ASSERT_NE(m.Find(key), nullptr) << key;
    ASSERT_EQ(*m.Find(key), val);
  }
}

TEST(DenseMapAdversarialTest, TombstoneChurnTriggersPurgeNotUnboundedGrowth) {
  // Steady-state size, but each round's keys live in fresh home groups, so
  // the previous round's tombstones are never on a new insert's probe path
  // and cannot be reused in place — they pile up until load crosses 7/8
  // and a same-size purge rebuild collects them. The table must keep
  // answering correctly and must not grow without bound.
  DenseMap<int64_t, int64_t> m;
  for (int64_t i = 0; i < 100; ++i) m.GetOrInsert(i, i);
  const size_t baseline = m.MemoryBytes();
  const size_t rehashes_before = m.rehashes();
  for (int64_t round = 1; round <= 100; ++round) {
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(m.Erase((round - 1) * 100000 + i));
      m.GetOrInsert(round * 100000 + i, i);
    }
    ASSERT_EQ(m.size(), 100u);
  }
  EXPECT_GT(m.rehashes(), rehashes_before);  // churn forced purge rebuilds
  EXPECT_LE(m.MemoryBytes(), baseline * 4);  // purged, not grown 100x
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_NE(m.Find(100 * 100000 + i), nullptr) << i;
    EXPECT_EQ(*m.Find(100 * 100000 + i), i);
  }
}

TEST(DenseMapAdversarialTest, TombstonesOnTheProbeChainAreReusedInPlace) {
  // The mirror image: with every key in ONE probe chain, an insert always
  // walks past the freshest tombstone and must reuse it — 1:1 erase/insert
  // churn then needs no rebuild at all, and the table stays at its size.
  DenseMap<int64_t, int64_t, CollidingHash> m;
  for (int64_t i = 0; i < 64; ++i) m.GetOrInsert(i, i);
  const size_t baseline = m.MemoryBytes();
  const size_t rehashes_before = m.rehashes();
  for (int64_t round = 1; round <= 200; ++round) {
    for (int64_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(m.Erase((round - 1) * 64 + i));
      m.GetOrInsert(round * 64 + i, i);
    }
    ASSERT_EQ(m.size(), 64u);
  }
  EXPECT_EQ(m.rehashes(), rehashes_before);  // every tombstone reused
  EXPECT_EQ(m.MemoryBytes(), baseline);
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_NE(m.Find(200 * 64 + i), nullptr) << i;
    EXPECT_EQ(*m.Find(200 * 64 + i), i);
  }
}

TEST(DenseMapAdversarialTest, EraseDuringHighLoadKeepsChainsReachable) {
  // Drive the table to its load ceiling, then erase from the middle of
  // long chains while inserting replacements — tombstones must keep probe
  // chains alive for keys displaced past them.
  DenseMap<int64_t, int64_t, CollidingHash> m;
  m.Reserve(256);
  const size_t cap_before = m.MemoryBytes();
  for (int64_t i = 0; i < 200; ++i) m.GetOrInsert(i, i);
  EXPECT_EQ(m.MemoryBytes(), cap_before);  // still within the reservation
  Rng rng(78);
  std::unordered_map<int64_t, int64_t> oracle;
  for (int64_t i = 0; i < 200; ++i) oracle[i] = i;
  for (int step = 0; step < 2000; ++step) {
    // Erase one resident key, insert one fresh key: stays at the ceiling.
    int64_t victim = rng.UniformInt(0, 10000);
    auto it = oracle.find(victim);
    if (it != oracle.end()) {
      ASSERT_TRUE(m.Erase(victim));
      oracle.erase(it);
      int64_t fresh = 10001 + step;
      m.GetOrInsert(fresh, -fresh);
      oracle[fresh] = -fresh;
    } else {
      ASSERT_EQ(m.Find(victim) != nullptr, false) << victim;
    }
  }
  ASSERT_EQ(m.size(), oracle.size());
  for (const auto& [key, val] : oracle) {
    ASSERT_NE(m.Find(key), nullptr) << key;
    ASSERT_EQ(*m.Find(key), val);
  }
}

TEST(DenseMapAdversarialTest, DeepCopyIsIndependentAndEqual) {
  DenseMap<Tuple, int64_t, TupleHash, TupleEq> m;
  for (int64_t i = 0; i < 300; ++i) m.GetOrInsert(Tuple{i, i % 7}, i);
  for (int64_t i = 0; i < 100; ++i) m.Erase(Tuple{i * 3, (i * 3) % 7});
  DenseMap<Tuple, int64_t, TupleHash, TupleEq> copy = m;
  // Same contents, same dense enumeration order.
  ASSERT_EQ(copy.size(), m.size());
  auto it = copy.begin();
  for (const auto& e : m) {
    ASSERT_EQ(it->key, e.key);
    ASSERT_EQ(it->value, e.value);
    ++it;
  }
  // The copy's slot table must be self-consistent, not aliased: mutate the
  // original heavily and re-check the copy.
  DenseMap<Tuple, int64_t, TupleHash, TupleEq> snapshot = copy;
  for (int64_t i = 0; i < 300; ++i) m.Erase(Tuple{i, i % 7});
  ASSERT_TRUE(m.empty());
  ASSERT_EQ(copy.size(), snapshot.size());
  for (const auto& e : snapshot) {
    ASSERT_NE(copy.Find(e.key), nullptr);
    ASSERT_EQ(*copy.Find(e.key), e.value);
  }
  // And the copy keeps working as a live map (erase through its own slots).
  size_t live = copy.size();
  for (const auto& e : snapshot) {
    ASSERT_TRUE(copy.Erase(e.key));
    ASSERT_EQ(copy.size(), --live);
  }
  EXPECT_TRUE(copy.empty());
}

TEST(DenseMapAdversarialTest, GoldenEnumerationOrderIsDenseArrayOrder) {
  // Snapshot serialization depends on enumeration being exactly the dense
  // array: insertion order with swap-remove holes. Golden sequence check.
  DenseMap<int64_t, int64_t> m;
  auto order = [&] {
    std::vector<int64_t> keys;
    for (const auto& e : m) keys.push_back(e.key);
    return keys;
  };
  for (int64_t i = 0; i < 10; ++i) m.GetOrInsert(i, i);
  EXPECT_EQ(order(), (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  m.Erase(3);  // last entry (9) moves into slot 3
  EXPECT_EQ(order(), (std::vector<int64_t>{0, 1, 2, 9, 4, 5, 6, 7, 8}));
  m.Erase(0);  // last entry (8) moves into slot 0
  EXPECT_EQ(order(), (std::vector<int64_t>{8, 1, 2, 9, 4, 5, 6, 7}));
  m.GetOrInsert(10, 10);  // appends
  EXPECT_EQ(order(), (std::vector<int64_t>{8, 1, 2, 9, 4, 5, 6, 7, 10}));
  m.Erase(7);  // last entry (10) moves into its place
  EXPECT_EQ(order(), (std::vector<int64_t>{8, 1, 2, 9, 4, 5, 6, 10}));
  // Rehashing reorders slots, never the dense array.
  m.Reserve(100000);
  EXPECT_EQ(order(), (std::vector<int64_t>{8, 1, 2, 9, 4, 5, 6, 10}));
}

// Property test: random streams of insert/update/erase against an oracle.
class DenseMapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DenseMapPropertyTest, MatchesUnorderedMapOracle) {
  Rng rng(GetParam());
  DenseMap<int64_t, int64_t> m;
  std::unordered_map<int64_t, int64_t> oracle;
  const int64_t kKeySpace = 200;  // small key space => many collisions/reuse
  for (int step = 0; step < 20000; ++step) {
    int64_t key = rng.UniformInt(0, kKeySpace - 1);
    switch (rng.Uniform(3)) {
      case 0: {  // upsert
        int64_t val = rng.UniformInt(-100, 100);
        m.GetOrInsert(key, 0) = val;
        oracle[key] = val;
        break;
      }
      case 1: {  // erase
        bool a = m.Erase(key);
        bool b = oracle.erase(key) > 0;
        ASSERT_EQ(a, b);
        break;
      }
      case 2: {  // lookup
        const int64_t* v = m.Find(key);
        auto it = oracle.find(key);
        if (it == oracle.end()) {
          ASSERT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), oracle.size());
  }
  // Final full-content check via dense iteration.
  size_t seen = 0;
  for (const auto& e : m) {
    auto it = oracle.find(e.key);
    ASSERT_NE(it, oracle.end());
    ASSERT_EQ(e.value, it->second);
    ++seen;
  }
  ASSERT_EQ(seen, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseMapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace incr
