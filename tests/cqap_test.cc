// CQAP tests (paper §4.3): fracture construction, the tractability
// dichotomy on the paper's Ex. 4.6 catalog, and the access engine against
// an oracle.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "incr/cqap/cqap_engine.h"
#include "incr/engines/join.h"
#include "incr/query/cqap.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2, D = 3 };

CqapQuery TriangleDetection() {
  // Ex. 4.6: Q(.|A,B,C) = E(A,B)*E(B,C)*E(C,A) — tractable.
  return CqapQuery::Make("tri", Schema{A, B, C}, Schema{},
                         {Atom{"E", Schema{A, B}}, Atom{"E", Schema{B, C}},
                          Atom{"E", Schema{C, A}}});
}

CqapQuery EdgeTriangleListing() {
  // Ex. 4.6: Q(C|A,B) = E(A,B)*E(B,C)*E(C,A) — NOT tractable.
  return CqapQuery::Make("etl", Schema{A, B}, Schema{C},
                         {Atom{"E", Schema{A, B}}, Atom{"E", Schema{B, C}},
                          Atom{"E", Schema{C, A}}});
}

CqapQuery LookupQuery() {
  // Ex. 4.6: Q(A|B) = S(A,B)*T(B) — tractable.
  return CqapQuery::Make("lookup", Schema{B}, Schema{A},
                         {Atom{"S", Schema{A, B}}, Atom{"T", Schema{B}}});
}

TEST(CqapTest, FractureOfTriangleDetection) {
  Fracture f = ComputeFracture(TriangleDetection());
  // Every atom becomes its own component: input vars disconnect the query.
  EXPECT_EQ(f.components.size(), 3u);
  for (const auto& comp : f.components) {
    EXPECT_EQ(comp.query.atoms().size(), 1u);
    EXPECT_EQ(comp.inputs.size(), 2u);
    EXPECT_TRUE(comp.output.empty());
  }
  EXPECT_EQ(f.fractured_input.size(), 6u);
}

TEST(CqapTest, FractureOfEdgeListing) {
  Fracture f = ComputeFracture(EdgeTriangleListing());
  // E(A,B) splits off; E(B,C)*E(C,A) stay connected through output C.
  ASSERT_EQ(f.components.size(), 2u);
  size_t sizes[2] = {f.components[0].query.atoms().size(),
                     f.components[1].query.atoms().size()};
  EXPECT_EQ(sizes[0] + sizes[1], 3u);
  EXPECT_TRUE((sizes[0] == 1 && sizes[1] == 2) ||
              (sizes[0] == 2 && sizes[1] == 1));
}

TEST(CqapTest, TractabilityDichotomyOnPaperCatalog) {
  EXPECT_TRUE(IsTractableCqap(TriangleDetection()));
  EXPECT_FALSE(IsTractableCqap(EdgeTriangleListing()));
  EXPECT_TRUE(IsTractableCqap(LookupQuery()));
  // A q-hierarchical query with no input vars is a tractable CQAP (§4.3:
  // "the q-hierarchical queries are the tractable CQAPs without input
  // variables").
  CqapQuery fig3 = CqapQuery::Make(
      "fig3", Schema{}, Schema{A, B, C},
      {Atom{"R", Schema{A, B}}, Atom{"S", Schema{A, C}}});
  EXPECT_TRUE(IsTractableCqap(fig3));
  // A non-q-hierarchical query with no input vars is not tractable.
  CqapQuery nonq = CqapQuery::Make(
      "nonq", Schema{}, Schema{A},
      {Atom{"R", Schema{A, B}}, Atom{"S", Schema{B}}});
  EXPECT_FALSE(IsTractableCqap(nonq));
}

TEST(CqapTest, EngineRejectsIntractable) {
  EXPECT_FALSE(CqapEngine<IntRing>::Make(EdgeTriangleListing()).ok());
}

TEST(CqapEngineTest, TriangleDetectionAccess) {
  auto e = CqapEngine<IntRing>::Make(TriangleDetection());
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  e->Update("E", Tuple{1, 2}, 1);
  e->Update("E", Tuple{2, 3}, 1);
  e->Update("E", Tuple{3, 1}, 1);
  e->Update("E", Tuple{2, 4}, 1);
  EXPECT_TRUE(e->Check(Tuple{1, 2, 3}));
  EXPECT_FALSE(e->Check(Tuple{1, 2, 4}));  // E(4,1) missing
  EXPECT_FALSE(e->Check(Tuple{3, 2, 1}));  // orientation matters
  // Deleting an edge breaks the triangle.
  e->Update("E", Tuple{2, 3}, -1);
  EXPECT_FALSE(e->Check(Tuple{1, 2, 3}));
}

TEST(CqapEngineTest, LookupQueryAccess) {
  auto e = CqapEngine<IntRing>::Make(LookupQuery());
  ASSERT_TRUE(e.ok());
  e->Update("S", Tuple{10, 1}, 1);
  e->Update("S", Tuple{11, 1}, 2);
  e->Update("S", Tuple{12, 2}, 1);
  e->Update("T", Tuple{1}, 3);

  std::map<Value, int64_t> got;
  size_t n = e->Access(Tuple{1}, [&](const Tuple& t, const int64_t& p) {
    got[t[0]] = p;
  });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(got[10], 3);      // S(10,1)*T(1) = 1*3
  EXPECT_EQ(got[11], 6);      // 2*3
  EXPECT_EQ(e->Access(Tuple{2}, nullptr), 0u);  // T(2) missing
  e->Update("T", Tuple{2}, 1);
  EXPECT_EQ(e->Access(Tuple{2}, nullptr), 1u);
}

TEST(CqapEngineTest, RandomStreamMatchesOracle) {
  // Property: Access(input) == from-scratch evaluation of the query with
  // input variables substituted, under random insert/delete streams.
  CqapQuery q = LookupQuery();
  auto e = CqapEngine<IntRing>::Make(q);
  ASSERT_TRUE(e.ok());
  Relation<IntRing> s_rel(Schema{A, B});
  Relation<IntRing> t_rel(Schema{B});
  Rng rng(99);
  std::vector<std::pair<int, Tuple>> live;
  for (int step = 0; step < 2000; ++step) {
    if (!live.empty() && rng.Chance(0.35)) {
      size_t i = rng.Uniform(live.size());
      auto [which, t] = live[i];
      live[i] = live.back();
      live.pop_back();
      if (which == 0) {
        e->Update("S", t, -1);
        s_rel.Apply(t, -1);
      } else {
        e->Update("T", t, -1);
        t_rel.Apply(t, -1);
      }
    } else if (rng.Chance(0.6)) {
      Tuple t{rng.UniformInt(0, 15), rng.UniformInt(0, 5)};
      e->Update("S", t, 1);
      s_rel.Apply(t, 1);
      live.emplace_back(0, t);
    } else {
      Tuple t{rng.UniformInt(0, 5)};
      e->Update("T", t, 1);
      t_rel.Apply(t, 1);
      live.emplace_back(1, t);
    }
    if (step % 201 != 0) continue;
    for (Value b = 0; b <= 5; ++b) {
      // Oracle: Q_b(A) = S(A,b)*T(b) via full evaluation with B pinned by
      // an auxiliary singleton relation.
      Relation<IntRing> pin(Schema{B});
      pin.Apply(Tuple{b}, 1);
      Query flat("flat", Schema{A},
                 {Atom{"S", Schema{A, B}}, Atom{"T", Schema{B}},
                  Atom{"Pin", Schema{B}}});
      auto oracle = EvaluateQuery<IntRing>(
          flat, {&s_rel, &t_rel, &pin});
      std::map<Value, int64_t> got;
      size_t n = e->Access(Tuple{b}, [&](const Tuple& t, const int64_t& p) {
        got[t[0]] = p;
      });
      ASSERT_EQ(n, oracle.size()) << "b=" << b << " step=" << step;
      for (const auto& entry : oracle) {
        ASSERT_EQ(got[entry.key[0]], entry.value) << "b=" << b;
      }
    }
  }
}

}  // namespace
}  // namespace incr
