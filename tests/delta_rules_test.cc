// The delta rules of paper §3.1, tested as stated:
//
//   (1)  d(V1 ⊎ V2) = dV1 ⊎ dV2
//   (2)  d(V1 ⋈ V2) = (dV1 ⋈ V2) ⊎ (V1 ⋈ dV2) ⊎ (dV1 ⋈ dV2)
//   (3)  d(SUM_X V)  = SUM_X dV
//
// where dOp is defined extensionally: Op(new inputs) − Op(old inputs).
// Checked on random ring relations with test-local algebra helpers.
#include <gtest/gtest.h>

#include "incr/data/relation.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

enum : Var { A = 0, B = 1, C = 2 };

using Rel = Relation<IntRing>;

Rel Union(const Rel& a, const Rel& b) {
  Rel out(a.schema());
  for (const auto& e : a) out.Apply(e.key, e.value);
  for (const auto& e : b) out.Apply(e.key, e.value);
  return out;
}

Rel Negate(const Rel& a) {
  Rel out(a.schema());
  for (const auto& e : a) out.Apply(e.key, -e.value);
  return out;
}

Rel Join(const Rel& a, const Rel& b) {
  Schema schema = SchemaUnion(a.schema(), b.schema());
  Rel out(schema);
  auto a_pos = ProjectionPositions(schema, a.schema());
  auto b_pos = ProjectionPositions(schema, b.schema());
  Schema shared = SchemaIntersect(a.schema(), b.schema());
  auto a_shared = ProjectionPositions(a.schema(), shared);
  auto b_shared = ProjectionPositions(b.schema(), shared);
  Schema b_only = SchemaMinus(b.schema(), a.schema());
  auto b_only_in_b = ProjectionPositions(b.schema(), b_only);
  auto b_only_in_out = ProjectionPositions(schema, b_only);
  for (const auto& ea : a) {
    for (const auto& eb : b) {
      if (ProjectTuple(ea.key, a_shared) != ProjectTuple(eb.key, b_shared)) {
        continue;
      }
      Tuple t;
      t.resize(schema.size(), 0);
      for (size_t i = 0; i < a_pos.size(); ++i) t[a_pos[i]] = ea.key[i];
      for (size_t i = 0; i < b_only_in_out.size(); ++i) {
        t[b_only_in_out[i]] = eb.key[b_only_in_b[i]];
      }
      out.Apply(t, ea.value * eb.value);
    }
  }
  (void)b_pos;
  return out;
}

Rel Marginalize(const Rel& a, Var x) {
  Schema schema = SchemaMinus(a.schema(), Schema{x});
  auto pos = ProjectionPositions(a.schema(), schema);
  Rel out(schema);
  for (const auto& e : a) out.Apply(ProjectTuple(e.key, pos), e.value);
  return out;
}

bool Equal(const Rel& a, const Rel& b) {
  if (a.size() != b.size()) return false;
  for (const auto& e : a) {
    if (b.Payload(e.key) != e.value) return false;
  }
  return true;
}

Rel RandomRel(Rng& rng, const Schema& schema, int n, int domain) {
  Rel out(schema);
  for (int i = 0; i < n; ++i) {
    Tuple t;
    for (size_t k = 0; k < schema.size(); ++k) {
      t.push_back(rng.UniformInt(0, domain - 1));
    }
    out.Apply(t, rng.UniformInt(-3, 3));
  }
  return out;
}

class DeltaRulesTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaRulesTest, EquationsHoldOnRandomRelations) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    Rel v1 = RandomRel(rng, Schema{A, B}, 25, 5);
    Rel v2 = RandomRel(rng, Schema{B, C}, 25, 5);
    Rel d1 = RandomRel(rng, Schema{A, B}, 8, 5);
    Rel d2 = RandomRel(rng, Schema{B, C}, 8, 5);
    Rel v1_new = Union(v1, d1);
    Rel v2_new = Union(v2, d2);

    // (1) d(V1 u V2) with V1, V2 over the same schema.
    {
      Rel w1 = RandomRel(rng, Schema{A, B}, 20, 5);
      Rel dw1 = RandomRel(rng, Schema{A, B}, 6, 5);
      Rel lhs = Union(Union(Union(v1, d1), Union(w1, dw1)),
                      Negate(Union(v1, w1)));  // extensional delta
      Rel rhs = Union(d1, dw1);
      ASSERT_TRUE(Equal(lhs, rhs)) << "Eq. (1), round " << round;
    }
    // (2) d(V1 x V2) = dV1 x V2 u V1 x dV2 u dV1 x dV2.
    {
      Rel lhs = Union(Join(v1_new, v2_new), Negate(Join(v1, v2)));
      Rel rhs = Union(Union(Join(d1, v2), Join(v1, d2)), Join(d1, d2));
      ASSERT_TRUE(Equal(lhs, rhs)) << "Eq. (2), round " << round;
    }
    // (3) d(SUM_B V1) = SUM_B dV1.
    {
      Rel lhs = Union(Marginalize(v1_new, B), Negate(Marginalize(v1, B)));
      Rel rhs = Marginalize(d1, B);
      ASSERT_TRUE(Equal(lhs, rhs)) << "Eq. (3), round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaRulesTest, ::testing::Values(1, 2, 3));

TEST(DeltaRulesTest, Example31DeltaQuery) {
  // Ex. 3.1: dQ for the triangle query under dR = {(a2,b1) -> -2} equals
  // dR(a2,b1) * SUM_C S(b1,C)*T(C,a2) = -2 * 1 = -2 (count 5 -> 3).
  Rel r(Schema{A, B}), s(Schema{B, C}), t(Schema{C, A});
  r.Apply(Tuple{1, 11}, 1);
  r.Apply(Tuple{2, 11}, 3);
  r.Apply(Tuple{2, 12}, 1);
  s.Apply(Tuple{11, 21}, 2);
  s.Apply(Tuple{11, 22}, 1);
  t.Apply(Tuple{21, 1}, 1);
  t.Apply(Tuple{22, 2}, 1);
  Rel dr(Schema{A, B});
  dr.Apply(Tuple{2, 11}, -2);
  Rel dq = Marginalize(
      Marginalize(Marginalize(Join(Join(dr, s), t), A), B), C);
  EXPECT_EQ(dq.Payload(Tuple{}), -2);
}

}  // namespace
}  // namespace incr
