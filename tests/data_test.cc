// Tests for schema ops, dictionary, grouped index, relation, database
// (DESIGN.md invariants 2-3).
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "incr/data/database.h"
#include "incr/data/grouped_index.h"
#include "incr/data/relation.h"
#include "incr/data/schema.h"
#include "incr/data/value.h"
#include "incr/ring/int_ring.h"
#include "incr/util/rng.h"

namespace incr {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  Value a = dict.Intern("alpha");
  Value b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  ASSERT_NE(dict.Lookup(a), nullptr);
  EXPECT_EQ(*dict.Lookup(a), "alpha");
  EXPECT_EQ(dict.Lookup(999), nullptr);
}

TEST(SchemaTest, RegistryRoundTrip) {
  VarRegistry vars;
  Var a = vars.GetOrCreate("A");
  Var b = vars.GetOrCreate("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(vars.GetOrCreate("A"), a);
  EXPECT_EQ(vars.Name(a), "A");
  EXPECT_TRUE(vars.Get("B").has_value());
  EXPECT_FALSE(vars.Get("C").has_value());
}

TEST(SchemaTest, SetOperations) {
  Schema ab{0, 1};
  Schema bc{1, 2};
  EXPECT_TRUE(SchemaContains(ab, 1));
  EXPECT_FALSE(SchemaContains(ab, 2));
  EXPECT_TRUE(SchemaSubset(Schema{1}, ab));
  EXPECT_FALSE(SchemaSubset(bc, ab));
  EXPECT_EQ(SchemaIntersect(ab, bc), (Schema{1}));
  EXPECT_EQ(SchemaUnion(ab, bc), (Schema{0, 1, 2}));
  EXPECT_EQ(SchemaMinus(ab, bc), (Schema{0}));
}

TEST(SchemaTest, ProjectionPositions) {
  Schema from{10, 20, 30};
  auto pos = ProjectionPositions(from, Schema{30, 10});
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], 2u);
  EXPECT_EQ(pos[1], 0u);
  Tuple t{100, 200, 300};
  EXPECT_EQ(ProjectTuple(t, pos), (Tuple{300, 100}));
}

TEST(GroupedIndexTest, InsertEraseGroups) {
  Schema base{0, 1};      // (A, B)
  GroupedIndex idx(base, Schema{0});  // group by A
  idx.Insert(Tuple{1, 10});
  idx.Insert(Tuple{1, 11});
  idx.Insert(Tuple{2, 20});
  EXPECT_EQ(idx.NumGroups(), 2u);
  EXPECT_EQ(idx.GroupSize(Tuple{1}), 2u);
  EXPECT_EQ(idx.GroupSize(Tuple{2}), 1u);
  EXPECT_EQ(idx.GroupSize(Tuple{3}), 0u);

  EXPECT_TRUE(idx.Erase(Tuple{1, 10}));
  EXPECT_FALSE(idx.Erase(Tuple{1, 10}));
  EXPECT_EQ(idx.GroupSize(Tuple{1}), 1u);
  const auto* g = idx.Group(Tuple{1});
  ASSERT_NE(g, nullptr);
  EXPECT_EQ((*g)[0], (Tuple{1, 11}));

  EXPECT_TRUE(idx.Erase(Tuple{1, 11}));
  EXPECT_EQ(idx.Group(Tuple{1}), nullptr);
  EXPECT_EQ(idx.NumGroups(), 1u);
}

// Property: group contents equal a filter of the inserted set.
class GroupedIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupedIndexPropertyTest, MatchesFilterOracle) {
  Rng rng(GetParam());
  Schema base{0, 1};
  GroupedIndex idx(base, Schema{1});  // group by B
  std::set<Tuple> oracle;
  for (int step = 0; step < 5000; ++step) {
    Tuple t{rng.UniformInt(0, 30), rng.UniformInt(0, 10)};
    if (oracle.count(t) == 0 && rng.Chance(0.6)) {
      idx.Insert(t);
      oracle.insert(t);
    } else if (oracle.count(t) > 0) {
      EXPECT_TRUE(idx.Erase(t));
      oracle.erase(t);
    } else {
      EXPECT_FALSE(idx.Erase(t));
    }
  }
  // Check each group against the oracle filter.
  std::map<Value, std::set<Tuple>> expect;
  for (const Tuple& t : oracle) expect[t[1]].insert(t);
  EXPECT_EQ(idx.NumEntries(), oracle.size());
  EXPECT_EQ(idx.NumGroups(), expect.size());
  for (const auto& [b, members] : expect) {
    const auto* g = idx.Group(Tuple{b});
    ASSERT_NE(g, nullptr);
    std::set<Tuple> got(g->begin(), g->end());
    EXPECT_EQ(got, members);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedIndexPropertyTest,
                         ::testing::Values(1, 7, 42, 1234));

TEST(RelationTest, ApplyAccumulatesAndErasesZero) {
  Relation<IntRing> r(Schema{0, 1});
  r.Apply(Tuple{1, 2}, 3);
  EXPECT_EQ(r.Payload(Tuple{1, 2}), 3);
  EXPECT_EQ(r.size(), 1u);
  r.Apply(Tuple{1, 2}, -1);
  EXPECT_EQ(r.Payload(Tuple{1, 2}), 2);
  r.Apply(Tuple{1, 2}, -2);
  EXPECT_EQ(r.Payload(Tuple{1, 2}), 0);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.Contains(Tuple{1, 2}));
  // Zero delta is a no-op and does not materialize a zero tuple.
  r.Apply(Tuple{5, 5}, 0);
  EXPECT_EQ(r.size(), 0u);
}

TEST(RelationTest, NegativePayloadsAreKept) {
  // Out-of-order deletes may transiently produce negative multiplicities
  // (paper S2); they must be represented, not dropped.
  Relation<IntRing> r(Schema{0});
  r.Apply(Tuple{1}, -2);
  EXPECT_EQ(r.Payload(Tuple{1}), -2);
  EXPECT_EQ(r.size(), 1u);
  r.Apply(Tuple{1}, 2);
  EXPECT_EQ(r.size(), 0u);
}

TEST(RelationTest, IndexesStayInSync) {
  Relation<IntRing> r(Schema{0, 1});
  size_t by_a = r.AddIndex(Schema{0});
  r.Apply(Tuple{1, 10}, 1);
  r.Apply(Tuple{1, 11}, 1);
  r.Apply(Tuple{2, 20}, 1);
  EXPECT_EQ(r.index(by_a).GroupSize(Tuple{1}), 2u);
  // Payload update without zero-crossing must not duplicate index entries.
  r.Apply(Tuple{1, 10}, 5);
  EXPECT_EQ(r.index(by_a).GroupSize(Tuple{1}), 2u);
  // Zero-crossing removes from the index.
  r.Apply(Tuple{1, 10}, -6);
  EXPECT_EQ(r.index(by_a).GroupSize(Tuple{1}), 1u);
}

TEST(RelationTest, AddIndexOnPopulatedRelation) {
  Relation<IntRing> r(Schema{0, 1});
  r.Apply(Tuple{1, 10}, 1);
  r.Apply(Tuple{2, 20}, 1);
  size_t by_b = r.AddIndex(Schema{1});
  EXPECT_EQ(r.index(by_b).GroupSize(Tuple{10}), 1u);
  EXPECT_EQ(r.index(by_b).GroupSize(Tuple{20}), 1u);
}

TEST(RelationTest, ClearEmptiesIndexes) {
  Relation<IntRing> r(Schema{0, 1});
  size_t by_a = r.AddIndex(Schema{0});
  r.Apply(Tuple{1, 10}, 1);
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.index(by_a).NumEntries(), 0u);
}

TEST(DatabaseTest, NamedRelations) {
  Database<IntRing> db;
  RelId rid = db.AddRelation("R", Schema{0, 1});
  RelId sid = db.AddRelation("S", Schema{1, 2});
  EXPECT_EQ(db.NumRelations(), 2u);
  EXPECT_EQ(db.Id("R"), rid);
  EXPECT_EQ(db.Name(sid), "S");
  db.relation(rid).Apply(Tuple{1, 2}, 1);
  db.relation(sid).Apply(Tuple{2, 3}, 1);
  EXPECT_EQ(db.TotalSize(), 2u);
  EXPECT_NE(db.Find("R"), nullptr);
  EXPECT_EQ(db.Find("X"), nullptr);
}

}  // namespace
}  // namespace incr
