// EngineOptions::FromEnv hardening: environment variables come from shells
// and CI configs, so malformed or absurd values must degrade to defaults
// with a warning — never crash, never smuggle a nonsense value into the
// engine layer. Table-driven over every variable the bridge reads.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "incr/engines/engine_options.h"

namespace incr {
namespace {

const char* const kAllVars[] = {
    "INCR_THREADS",    "INCR_SHARDS",           "INCR_MORSEL_BYTES",
    "INCR_OBS",        "INCR_FSYNC",            "INCR_WAL_BUFFER_BYTES",
    "INCR_GROUP_COMMIT_US",
};

// Clears every FromEnv variable around each test so cases are independent
// of each other and of the invoking shell.
class EngineOptionsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearAll(); }
  void TearDown() override { ClearAll(); }

  static void ClearAll() {
    for (const char* v : kAllVars) unsetenv(v);
  }
};

TEST_F(EngineOptionsEnvTest, UnsetEnvironmentYieldsDefaults) {
  EngineOptions opts = EngineOptions::FromEnv();
  EngineOptions defaults;
  EXPECT_EQ(opts.threads, defaults.threads);
  EXPECT_EQ(opts.shards, defaults.shards);
  EXPECT_FALSE(opts.obs.has_value());
  EXPECT_EQ(opts.fsync, defaults.fsync);
  EXPECT_EQ(opts.wal_buffer_bytes, defaults.wal_buffer_bytes);
  EXPECT_EQ(opts.group_commit_window_us, defaults.group_commit_window_us);
}

TEST_F(EngineOptionsEnvTest, ValidValuesAreApplied) {
  setenv("INCR_THREADS", "8", 1);
  setenv("INCR_SHARDS", "32", 1);
  setenv("INCR_MORSEL_BYTES", "4096", 1);
  setenv("INCR_WAL_BUFFER_BYTES", "65536", 1);
  setenv("INCR_GROUP_COMMIT_US", "0", 1);
  setenv("INCR_FSYNC", "off", 1);
  setenv("INCR_OBS", "1", 1);
  EngineOptions opts = EngineOptions::FromEnv();
  EXPECT_EQ(opts.threads, 8u);
  EXPECT_EQ(opts.shards, 32u);
  EXPECT_EQ(opts.morsel_bytes, 4096u);
  EXPECT_EQ(opts.wal_buffer_bytes, 65536u);
  EXPECT_EQ(opts.group_commit_window_us, 0u);
  EXPECT_FALSE(opts.fsync);
  ASSERT_TRUE(opts.obs.has_value());
  EXPECT_TRUE(*opts.obs);
}

TEST_F(EngineOptionsEnvTest, MalformedNumbersFallBackToDefaults) {
  const EngineOptions defaults;
  // Leading whitespace is not here: strtol conventionally skips it, and
  // " 4" meaning 4 surprises nobody. Trailing junk does get rejected.
  const std::vector<std::string> bad = {"abc", "12abc", "",    "4 ",
                                        "0x10", "1e3",  "--2", "+"};
  for (const std::string& v : bad) {
    ClearAll();
    setenv("INCR_THREADS", v.c_str(), 1);
    setenv("INCR_SHARDS", v.c_str(), 1);
    setenv("INCR_WAL_BUFFER_BYTES", v.c_str(), 1);
    setenv("INCR_GROUP_COMMIT_US", v.c_str(), 1);
    EngineOptions opts = EngineOptions::FromEnv();
    EXPECT_EQ(opts.threads, defaults.threads) << "value '" << v << "'";
    EXPECT_EQ(opts.shards, defaults.shards) << "value '" << v << "'";
    EXPECT_EQ(opts.wal_buffer_bytes, defaults.wal_buffer_bytes)
        << "value '" << v << "'";
    EXPECT_EQ(opts.group_commit_window_us, defaults.group_commit_window_us)
        << "value '" << v << "'";
  }
}

TEST_F(EngineOptionsEnvTest, OutOfRangeValuesFallBackToDefaults) {
  const EngineOptions defaults;
  struct Case {
    const char* var;
    const char* value;
  };
  const std::vector<Case> cases = {
      {"INCR_THREADS", "-1"},
      {"INCR_THREADS", "1000000"},
      {"INCR_SHARDS", "0"},        // zero shards is meaningless
      {"INCR_SHARDS", "-4"},
      {"INCR_SHARDS", "999999999"},
      {"INCR_WAL_BUFFER_BYTES", "0"},
      {"INCR_WAL_BUFFER_BYTES", "-1"},
      {"INCR_WAL_BUFFER_BYTES", "99999999999999999"},
      {"INCR_GROUP_COMMIT_US", "-5"},
      {"INCR_GROUP_COMMIT_US", "999999999999"},  // ~11.6 days
      {"INCR_MORSEL_BYTES", "-1"},
      {"INCR_MORSEL_BYTES", "99999999999999999"},
  };
  for (const Case& c : cases) {
    ClearAll();
    setenv(c.var, c.value, 1);
    EngineOptions opts = EngineOptions::FromEnv();
    EXPECT_EQ(opts.threads, defaults.threads)
        << c.var << "=" << c.value;
    EXPECT_EQ(opts.shards, defaults.shards) << c.var << "=" << c.value;
    EXPECT_EQ(opts.morsel_bytes, defaults.morsel_bytes)
        << c.var << "=" << c.value;
    EXPECT_EQ(opts.wal_buffer_bytes, defaults.wal_buffer_bytes)
        << c.var << "=" << c.value;
    EXPECT_EQ(opts.group_commit_window_us, defaults.group_commit_window_us)
        << c.var << "=" << c.value;
  }
}

TEST_F(EngineOptionsEnvTest, BoundaryValuesAreAccepted) {
  setenv("INCR_THREADS", "0", 1);  // 0 = auto is a valid request
  EngineOptions opts = EngineOptions::FromEnv();
  EXPECT_EQ(opts.threads, 0u);

  ClearAll();
  setenv("INCR_THREADS", std::to_string(EngineOptions::kMaxThreads).c_str(),
         1);
  setenv("INCR_SHARDS", std::to_string(EngineOptions::kMaxShards).c_str(),
         1);
  opts = EngineOptions::FromEnv();
  EXPECT_EQ(opts.threads, EngineOptions::kMaxThreads);
  EXPECT_EQ(opts.shards, EngineOptions::kMaxShards);
}

TEST_F(EngineOptionsEnvTest, FlagVariablesAcceptTheOffSpellings) {
  for (const char* off : {"off", "0", "false"}) {
    ClearAll();
    setenv("INCR_OBS", off, 1);
    setenv("INCR_FSYNC", off, 1);
    EngineOptions opts = EngineOptions::FromEnv();
    ASSERT_TRUE(opts.obs.has_value()) << off;
    EXPECT_FALSE(*opts.obs) << off;
    EXPECT_FALSE(opts.fsync) << off;
  }
  // Anything else — including garbage — reads as "on"; a typo enabling
  // observability or fsync is safe, a typo disabling durability is not.
  ClearAll();
  setenv("INCR_FSYNC", "fales", 1);
  EXPECT_TRUE(EngineOptions::FromEnv().fsync);
}

}  // namespace
}  // namespace incr
