// OuMv tests (paper §3.4, Thm. 3.4): the reduction via any triangle
// maintainer gives exactly the direct solver's answers (DESIGN.md
// invariant 8).
#include <memory>

#include <gtest/gtest.h>

#include "incr/lowerbound/oumv.h"

namespace incr {
namespace {

TEST(OuMvTest, InstanceBitsAreDeterministic) {
  OuMvInstance a(10, 0.3, 5);
  OuMvInstance b(10, 0.3, 5);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_EQ(a.Matrix(i, j), b.Matrix(i, j));
      EXPECT_EQ(a.U(i, j), b.U(i, j));
      EXPECT_EQ(a.V(i, j), b.V(i, j));
    }
  }
}

TEST(OuMvTest, DirectSolverHandcheck) {
  // Paper's worked example: u = (0,1,0), M = [[0,1,0],[1,0,0],[0,0,1]],
  // v = (1,0,0): u^T M v = 1. Build via a crafted instance is awkward, so
  // verify the direct solver against brute force on random instances.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    OuMvInstance inst(17, 0.2, seed);
    auto direct = SolveOuMvDirect(inst);
    for (size_t r = 0; r < inst.n(); ++r) {
      bool expect = false;
      for (size_t i = 0; i < inst.n() && !expect; ++i) {
        for (size_t j = 0; j < inst.n() && !expect; ++j) {
          expect = inst.U(r, i) && inst.Matrix(i, j) && inst.V(r, j);
        }
      }
      ASSERT_EQ(direct[r], expect) << "seed " << seed << " round " << r;
    }
  }
}

class OuMvReductionTest : public ::testing::TestWithParam<double> {};

TEST_P(OuMvReductionTest, ReductionMatchesDirectAllMaintainers) {
  double density = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    OuMvInstance inst(24, density, seed);
    auto direct = SolveOuMvDirect(inst);

    DeltaTriangleCounter delta;
    EXPECT_EQ(SolveOuMvViaIvm(inst, &delta), direct);

    MaterializedTriangleCounter mat;
    EXPECT_EQ(SolveOuMvViaIvm(inst, &mat), direct);

    IvmEpsTriangleCounter eps(0.5);
    EXPECT_EQ(SolveOuMvViaIvm(inst, &eps), direct);
    EXPECT_TRUE(eps.InvariantsHold());
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, OuMvReductionTest,
                         ::testing::Values(0.05, 0.3, 0.7));

TEST(OuMvTest, ReductionLeavesCounterReusable) {
  // After a full OuMv run the triangle database holds only S(=M); the
  // count must equal 0 because R and T were emptied in the last round's
  // rewrite... no: the last round's vectors are still loaded. Run a tiny
  // instance and check the final state is consistent with the last round.
  OuMvInstance inst(6, 0.5, 9);
  IvmEpsTriangleCounter eps(0.5);
  auto out = SolveOuMvViaIvm(inst, &eps);
  EXPECT_EQ(eps.Detect(), out.back());
}

}  // namespace
}  // namespace incr
