// Property suite for the differential-testing harness (src/incr/check/):
// the differ runs clean on generated (query, stream) pairs, the metamorphic
// laws the engine layer documents actually hold, an injected sign-flip bug
// is caught and shrunk to a tiny repro, the snapshot-isolation pass runs
// clean (and catches an injected torn publish), and .repro files
// round-trip.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "incr/check/differ.h"
#include "incr/check/oracle.h"
#include "incr/check/qgen.h"
#include "incr/check/repro.h"
#include "incr/check/shrink.h"
#include "incr/check/wgen.h"
#include "incr/engines/durable_engine.h"
#include "incr/engines/engine.h"
#include "incr/ring/bool_semiring.h"
#include "incr/ring/int_ring.h"
#include "incr/store/recover.h"
#include "incr/util/rng.h"

namespace incr {
namespace check {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "check_" + name;
  INCR_CHECK(store::EnsureDir(dir).ok());
  std::remove(store::WalPath(dir).c_str());
  std::remove(store::SnapshotPath(dir).c_str());
  return dir;
}

DifferOptions Opts(const std::string& scratch, uint64_t seed) {
  DifferOptions opts;
  opts.scratch_dir = scratch;
  opts.seed = seed;
  opts.check_every = 25;
  return opts;
}

// A (query, stream) pair sampled exactly like fuzz_ivm does for `seed`.
struct Sample {
  GenQuery q;
  Stream stream;
  Dictionary dict;  // generation-side dictionary (when churn is on)
};

Sample MakeSample(uint64_t seed, size_t ops) {
  Sample s;
  Rng rng(seed);
  s.q = GenerateQuery(rng, QGenOptions{});
  WGenOptions w;
  w.ops = ops;
  w.insert_only = (seed % 4 == 3);
  if (seed % 2 == 0) w.dict = &s.dict;
  s.stream = GenerateStream(rng, s.q, w);
  return s;
}

void ApplyStep(IvmEngine<IntRing>& e, const StreamStep& s, bool batch_mode) {
  if (s.is_batch && batch_mode) {
    e.ApplyBatch(std::span<const Delta<IntRing>>(s.deltas));
    return;
  }
  for (const Delta<IntRing>& d : s.deltas) e.Update(d.relation, d.tuple, d.delta);
}

std::unique_ptr<ViewTreeEngine<IntRing>> MakeTreeEngine(const GenQuery& q) {
  auto tree = ViewTree<IntRing>::Make(q.query, q.vo);
  INCR_CHECK(tree.ok());
  return std::make_unique<ViewTreeEngine<IntRing>>(*std::move(tree));
}

std::string DumpBytes(IvmEngine<IntRing>& e) {
  store::ByteWriter w;
  Status st = e.DumpState(w);
  EXPECT_TRUE(st.ok()) << st.message();
  return w.Take();
}

// ----------------------------------------------------------------------
// The differ itself runs clean on generated pairs: every compatible engine
// agrees with the oracle and with its dump group, and both durability
// passes recover bit-identical state.

TEST(CheckDifferTest, CleanOnGeneratedSeeds) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Sample s = MakeSample(seed, 100);
    DiffResult r = RunDiffer(s.q, s.stream,
                             Opts(FreshDir("clean"), seed));
    EXPECT_TRUE(r.ok) << "seed " << seed << " query " << s.q.text << "\n"
                      << r.Summary();
    EXPECT_GE(r.variants, 8u);
    EXPECT_GT(r.oracle_checks, 0u);
  }
}

TEST(CheckDifferTest, GeneratedStreamsKeepMultisetContract) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Sample s = MakeSample(seed, 150);
    EXPECT_TRUE(StreamIsNonNegative(s.stream)) << "seed " << seed;
  }
}

// ----------------------------------------------------------------------
// Metamorphic laws.

// Batch application and per-delta application of the same stream reach the
// same output (they are distinct dump groups — merged batches legitimately
// build state in a different order — so the law is semantic, not bitwise).
TEST(CheckMetamorphicTest, BatchEqualsSequentialApplication) {
  for (uint64_t seed = 20; seed < 24; ++seed) {
    Sample s = MakeSample(seed, 120);
    auto batched = MakeTreeEngine(s.q);
    auto sequential = MakeTreeEngine(s.q);
    for (const StreamStep& st : s.stream.steps) {
      ApplyStep(*batched, st, /*batch_mode=*/true);
      ApplyStep(*sequential, st, /*batch_mode=*/false);
    }
    const Schema out = batched->tree().OutputSchema();
    auto want = OracleOutput<IntRing>(s.q.query, s.stream,
                                      [](int64_t d) { return d; });
    EXPECT_EQ(ProjectedOutput(*batched, out, s.q.query.free()), want)
        << "seed " << seed;
    EXPECT_EQ(ProjectedOutput(*sequential, out, s.q.query.free()), want)
        << "seed " << seed;
  }
}

// The parallel batch path is thread-count invariant: any two thread counts
// produce byte-identical serialized state.
TEST(CheckMetamorphicTest, ThreadCountInvariance) {
  for (uint64_t seed = 30; seed < 33; ++seed) {
    Sample s = MakeSample(seed, 120);
    auto t2 = MakeTreeEngine(s.q);
    auto t4 = MakeTreeEngine(s.q);
    EngineOptions o2;
    o2.threads = 2;
    EngineOptions o4;
    o4.threads = 4;
    t2->Configure(o2);
    t4->Configure(o4);
    for (const StreamStep& st : s.stream.steps) {
      ApplyStep(*t2, st, /*batch_mode=*/true);
      ApplyStep(*t4, st, /*batch_mode=*/true);
    }
    EXPECT_EQ(DumpBytes(*t2), DumpBytes(*t4)) << "seed " << seed;
  }
}

// Checkpoint + recover is idempotent: recovering reproduces the live state
// byte-for-byte, and recovering again from the recovered files changes
// nothing further.
TEST(CheckMetamorphicTest, CheckpointRecoverIdempotent) {
  Sample s = MakeSample(21, 120);  // odd seed: no dictionary churn
  const std::string dir = FreshDir("idem");
  EngineOptions opts;
  opts.durability_dir = dir;
  opts.fsync = false;

  auto live = DurableEngine<IntRing>::Open(MakeTreeEngine(s.q), opts, nullptr);
  ASSERT_TRUE(live.ok()) << live.status().message();
  for (size_t i = 0; i < s.stream.steps.size(); ++i) {
    ApplyStep(**live, s.stream.steps[i], /*batch_mode=*/true);
    if (i == s.stream.steps.size() / 2) {
      ASSERT_TRUE((*live)->Checkpoint().ok());
    }
  }
  ASSERT_TRUE((*live)->Sync().ok());
  const std::string want = DumpBytes(**live);
  live->reset();

  for (int round = 0; round < 2; ++round) {
    auto rec = DurableEngine<IntRing>::Open(MakeTreeEngine(s.q), opts, nullptr);
    ASSERT_TRUE(rec.ok()) << rec.status().message();
    EXPECT_EQ(DumpBytes(**rec), want) << "recovery round " << round;
    rec->reset();
  }
}

// On insert-only streams, evaluating over Z and collapsing to support
// equals evaluating over the Boolean semiring directly: multiplicity
// erasure is a (semi)ring homomorphism, and with no deletes no Boolean
// information is lost to cancellation.
TEST(CheckMetamorphicTest, ZToBoolHomomorphismOnInsertOnlyStreams) {
  for (uint64_t seed = 3; seed < 20; seed += 4) {  // seeds with insert_only
    Sample s = MakeSample(seed, 120);
    ASSERT_TRUE(s.stream.insert_only);
    auto z = OracleOutput<IntRing>(s.q.query, s.stream,
                                   [](int64_t d) { return d; });
    auto b = OracleOutput<BoolSemiring>(s.q.query, s.stream,
                                        [](int64_t d) { return d > 0; });
    std::map<Tuple, bool> support;
    for (const auto& [t, v] : z) {
      if (v != 0) support.emplace(t, true);
    }
    EXPECT_EQ(support, b) << "seed " << seed << " query " << s.q.text;
  }
}

// ----------------------------------------------------------------------
// Fault injection: a deliberately buggy engine must be caught, and the
// shrinker must cut the failure down to a tiny replayable repro.

// Sign-flip bug: deletes are applied as inserts. Correct on insert-only
// prefixes, wrong from the first retraction onward.
class SignFlipEngine : public IvmEngine<IntRing> {
 public:
  explicit SignFlipEngine(ViewTree<IntRing> tree)
      : inner_(std::move(tree)) {}

  const char* name() const override { return "buggy-sign-flip"; }

  ViewTreeEngine<IntRing>& inner() { return inner_; }

 protected:
  void UpdateImpl(const std::string& rel, const Tuple& t,
                  const RV& d) override {
    inner_.Update(rel, t, d < 0 ? -d : d);
  }

  size_t EnumerateImpl(const Sink& sink) override {
    return inner_.Enumerate(sink);
  }

 private:
  ViewTreeEngine<IntRing> inner_;
};

TEST(CheckShrinkTest, InjectedSignFlipIsCaughtAndShrunk) {
  Sample s = MakeSample(1, 60);  // odd seed: deletes, no dictionary
  ASSERT_FALSE(s.stream.insert_only);

  DifferOptions opts = Opts(FreshDir("signflip"), 1);
  opts.durable = false;  // the bug is in live maintenance; keep probes fast
  opts.extra.push_back([](const GenQuery& q, const Stream&) {
    std::vector<EngineVariant> out;
    EngineVariant v;
    v.label = "buggy-sign-flip";
    auto tree = ViewTree<IntRing>::Make(q.query, q.vo);
    INCR_CHECK(tree.ok());
    v.out_schema = tree->OutputSchema();
    v.make = [&q]() -> std::unique_ptr<IvmEngine<IntRing>> {
      auto t = ViewTree<IntRing>::Make(q.query, q.vo);
      INCR_CHECK(t.ok());
      return std::make_unique<SignFlipEngine>(*std::move(t));
    };
    out.push_back(std::move(v));
    return out;
  });

  DiffResult verdict = RunDiffer(s.q, s.stream, opts);
  ASSERT_FALSE(verdict.ok) << "sign-flip bug not detected";
  bool blamed = false;
  for (const DiffFailure& f : verdict.failures) {
    if (f.label == "buggy-sign-flip") blamed = true;
  }
  EXPECT_TRUE(blamed) << verdict.Summary();

  ShrinkResult shrunk = Shrink(s.q, s.stream, opts);
  EXPECT_FALSE(shrunk.failure.ok);
  EXPECT_LE(shrunk.stream.NumDeltas(), 5u)
      << "shrinker left " << shrunk.stream.NumDeltas() << " deltas";
  EXPECT_TRUE(StreamIsNonNegative(shrunk.stream));
  // The minimized stream must still contain the retraction that triggers
  // the sign flip.
  bool has_delete = false;
  for (const StreamStep& st : shrunk.stream.steps) {
    for (const Delta<IntRing>& d : st.deltas) {
      if (d.delta < 0) has_delete = true;
    }
  }
  EXPECT_TRUE(has_delete);

  // The minimized pair replays through the .repro format.
  std::string text = RenderRepro(shrunk.query, shrunk.stream, 1);
  auto repro = ParseRepro(text);
  ASSERT_TRUE(repro.ok()) << repro.status().message();
  DiffResult replay = RunDiffer(repro->query, repro->stream, opts);
  EXPECT_FALSE(replay.ok) << "repro does not reproduce the failure";
}

// ----------------------------------------------------------------------
// Snapshot-isolation pass (tier 4): reader threads on a live
// snapshot-enabled engine, checked against the sequential ledger.

TEST(CheckConcurrentTest, SnapshotPassCleanOnGeneratedSeeds) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Sample s = MakeSample(seed, 80);
    DifferOptions opts = Opts(FreshDir("conc"), seed);
    opts.durable = false;  // exercise the concurrent pass in isolation
    opts.readers = 2;
    DiffResult r = RunDiffer(s.q, s.stream, opts);
    EXPECT_TRUE(r.ok) << "seed " << seed << "\n" << r.Summary();
  }
}

TEST(CheckConcurrentTest, InjectedTornPublishIsCaught) {
  // Find a generated pair whose plan enumerates and whose stream has a
  // multi-delta step — the injection splits that step into two publishes.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Sample s = MakeSample(seed, 80);
    if (!MakeTreeEngine(s.q)->tree().plan().CanEnumerate().ok()) continue;
    size_t torn = SIZE_MAX;
    size_t idx = 0;  // index among NON-EMPTY steps, the differ's numbering
    for (const StreamStep& st : s.stream.steps) {
      if (st.deltas.empty()) continue;
      if (st.deltas.size() >= 2) {
        torn = idx;
        break;
      }
      ++idx;
    }
    if (torn == SIZE_MAX) continue;

    DifferOptions opts = Opts(FreshDir("torn"), seed);
    opts.durable = false;
    opts.builtin = false;  // tiers 1-3 are not under test here
    opts.readers = 2;
    opts.inject_torn_step = torn;
    DiffResult r = RunDiffer(s.q, s.stream, opts);
    ASSERT_FALSE(r.ok) << "seed " << seed
                       << ": torn publish went undetected";
    bool concurrent_blamed = false;
    for (const DiffFailure& f : r.failures) {
      if (f.label.rfind("concurrent:", 0) == 0) concurrent_blamed = true;
    }
    EXPECT_TRUE(concurrent_blamed) << r.Summary();
    return;
  }
  FAIL() << "no enumerable sample with a multi-delta step in seeds 0..9";
}

// ----------------------------------------------------------------------
// Repro format.

TEST(CheckReproTest, RenderParseRoundTrip) {
  for (uint64_t seed = 40; seed < 44; ++seed) {
    Sample s = MakeSample(seed, 30);
    std::string text = RenderRepro(s.q, s.stream, seed);
    auto repro = ParseRepro(text);
    ASSERT_TRUE(repro.ok()) << repro.status().message() << "\n" << text;
    EXPECT_EQ(repro->seed, seed);
    EXPECT_EQ(repro->query.text, s.q.text);
    EXPECT_EQ(repro->stream.insert_only, s.stream.insert_only);
    ASSERT_EQ(repro->stream.steps.size(), s.stream.steps.size());
    for (size_t i = 0; i < s.stream.steps.size(); ++i) {
      const StreamStep& a = s.stream.steps[i];
      const StreamStep& b = repro->stream.steps[i];
      EXPECT_EQ(a.is_batch, b.is_batch) << "step " << i;
      EXPECT_EQ(a.dict_grow, b.dict_grow) << "step " << i;
      ASSERT_EQ(a.deltas.size(), b.deltas.size()) << "step " << i;
      for (size_t j = 0; j < a.deltas.size(); ++j) {
        EXPECT_EQ(a.deltas[j].relation, b.deltas[j].relation);
        EXPECT_EQ(a.deltas[j].tuple, b.deltas[j].tuple);
        EXPECT_EQ(a.deltas[j].delta, b.deltas[j].delta);
      }
    }
    // Canonical: rendering the parse renders the same bytes.
    EXPECT_EQ(RenderRepro(repro->query, repro->stream, seed), text);
  }
}

TEST(CheckReproTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseRepro("").ok());
  EXPECT_FALSE(ParseRepro("# incr-fuzz repro v1\nseed 1\n").ok());
  // Delta for a relation the query does not mention.
  EXPECT_FALSE(ParseRepro("# incr-fuzz repro v1\n"
                          "seed 1\ninsert_only 0\n"
                          "query Q(A) = R(A)\n"
                          "step update\n  S (1) 1\n")
                   .ok());
  // Arity mismatch against the parsed query.
  EXPECT_FALSE(ParseRepro("# incr-fuzz repro v1\n"
                          "seed 1\ninsert_only 0\n"
                          "query Q(A) = R(A)\n"
                          "step update\n  R (1, 2) 1\n")
                   .ok());
  // `update` steps carry exactly one delta.
  EXPECT_FALSE(ParseRepro("# incr-fuzz repro v1\n"
                          "seed 1\ninsert_only 0\n"
                          "query Q(A) = R(A)\n"
                          "step update\n  R (1) 1\n  R (2) 1\n")
                   .ok());
}

}  // namespace
}  // namespace check
}  // namespace incr
